// Quickstart: build a simulated SNFS deployment (one server, two client
// workstations), run file operations through the Unix-like VFS API, and
// watch the consistency protocol at work.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/testbed/machine.h"

using testbed::ClientMachine;
using testbed::ServerMachine;
using testbed::ServerProtocol;

namespace {

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }
std::string Str(const std::vector<uint8_t>& v) { return {v.begin(), v.end()}; }

}  // namespace

int main() {
  // One simulated world: a virtual clock, an Ethernet, machines.
  sim::Simulator simulator;
  net::Network network(simulator, net::NetworkParams{});

  // A file server speaking the SNFS protocol and two diskless clients.
  ServerMachine server(simulator, network, "server", ServerProtocol::kSnfs);
  ClientMachine alice(simulator, network, "alice");
  ClientMachine bob(simulator, network, "bob");
  snfs::SnfsClient& alice_fs = alice.MountSnfs("/data", server.address(), server.root());
  bob.MountSnfs("/data", server.address(), server.root());
  server.Start();
  alice.Start();
  bob.Start();

  // Client workloads are coroutines running in simulated time.
  simulator.Spawn([](ClientMachine& alice, ClientMachine& bob, ServerMachine& server,
                     snfs::SnfsClient& alice_fs) -> sim::Task<void> {
    vfs::Vfs& a = alice.vfs();
    vfs::Vfs& b = bob.vfs();

    // Alice creates a file. The write is DELAYED: it lives in her cache,
    // and closing the file does not flush it (that is the point of SNFS).
    auto st = co_await a.WriteFile("/data/notes.txt", Bytes("meeting at noon"));
    std::printf("[%8.3fs] alice wrote notes.txt: %s\n", sim::ToSeconds(alice.simulator().Now()),
                st.ok() ? "ok" : "FAILED");
    std::printf("           write RPCs so far: %llu (delayed write-back!)\n",
                static_cast<unsigned long long>(
                    alice.peer().client_ops().Get(proto::OpKind::kWrite)));

    // Bob opens the file. The server knows Alice may hold dirty blocks
    // (CLOSED_DIRTY) and calls her back to retrieve them before Bob's open
    // completes — Bob always sees current data.
    auto data = co_await b.ReadFile("/data/notes.txt");
    std::printf("[%8.3fs] bob read notes.txt: \"%s\"\n", sim::ToSeconds(bob.simulator().Now()),
                data.ok() ? Str(*data).c_str() : "FAILED");
    std::printf("           callbacks served by alice: %llu\n",
                static_cast<unsigned long long>(alice_fs.callbacks_served()));

    // A temporary file that dies young never reaches the server at all.
    uint64_t writes_before = alice.peer().client_ops().Get(proto::OpKind::kWrite);
    (void)co_await a.WriteFile("/data/scratch.tmp", std::vector<uint8_t>(64 * 1024, 0x5A));
    (void)co_await a.Unlink("/data/scratch.tmp");
    std::printf("[%8.3fs] alice created+deleted a 64 KB temp file: %llu write RPCs\n",
                sim::ToSeconds(alice.simulator().Now()),
                static_cast<unsigned long long>(
                    alice.peer().client_ops().Get(proto::OpKind::kWrite) - writes_before));

    // The server's state table tracks every active file.
    const snfs::StateTable::Entry* entry = server.snfs_server()->state_table().Lookup(
        proto::FileHandle{server.fs().fsid(), 2, 0});
    if (entry != nullptr) {
      std::printf("           server state for notes.txt: %s (version %llu)\n",
                  std::string(snfs::FileStateName(entry->state)).c_str(),
                  static_cast<unsigned long long>(entry->version));
    }
  }(alice, bob, server, alice_fs));

  simulator.Run();
  std::printf("\nSimulation finished at t=%.3fs\n", sim::ToSeconds(simulator.Now()));
  return 0;
}
