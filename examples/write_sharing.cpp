// Demonstrates the paper's central correctness claim side by side: under
// concurrent write-sharing, an NFS reader sees stale data for up to its
// attribute-probe interval, while SNFS disables caching and keeps every
// read current.
//
//   ./build/examples/write_sharing
#include <cstdio>
#include <string>

#include "src/testbed/machine.h"

using testbed::ClientMachine;
using testbed::ServerMachine;
using testbed::ServerProtocol;

namespace {

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }
std::string Str(const std::vector<uint8_t>& v) { return {v.begin(), v.end()}; }

sim::Task<void> Scenario(sim::Simulator& simulator, ClientMachine& writer,
                         ClientMachine& reader, const char* label, int* stale_reads) {
  vfs::Vfs& w = writer.vfs();
  vfs::Vfs& r = reader.vfs();
  (void)co_await w.WriteFile("/data/ticker", Bytes("gen-0"));

  auto rfd = co_await r.Open("/data/ticker", vfs::OpenFlags::ReadOnly());
  auto wfd = co_await w.Open("/data/ticker", vfs::OpenFlags::ReadWrite());
  if (!rfd.ok() || !wfd.ok()) {
    co_return;
  }
  std::printf("--- %s: writer updates every 500 ms; reader polls right after ---\n", label);
  for (int gen = 1; gen <= 6; ++gen) {
    std::string value = "gen-" + std::to_string(gen);
    (void)co_await w.Pwrite(*wfd, 0, Bytes(value));
    auto got = co_await r.Pread(*rfd, 0, 16);
    bool stale = !got.ok() || Str(*got) != value;
    if (stale) {
      ++*stale_reads;
    }
    std::printf("  t=%6.2fs  wrote \"%s\"  reader saw \"%s\"%s\n",
                sim::ToSeconds(simulator.Now()), value.c_str(),
                got.ok() ? Str(*got).c_str() : "<error>", stale ? "   <-- STALE" : "");
    co_await sim::Sleep(simulator, sim::Msec(500));
  }
  (void)co_await w.Close(*wfd);
  (void)co_await r.Close(*rfd);
}

}  // namespace

int main() {
  int nfs_stale = 0;
  {
    sim::Simulator simulator;
    net::Network network(simulator, {});
    ServerMachine server(simulator, network, "server", ServerProtocol::kNfs);
    ClientMachine writer(simulator, network, "writer");
    ClientMachine reader(simulator, network, "reader");
    writer.MountNfs("/data", server.address(), server.root());
    reader.MountNfs("/data", server.address(), server.root());
    server.Start();
    writer.Start();
    reader.Start();
    simulator.Spawn(Scenario(simulator, writer, reader, "NFS", &nfs_stale));
    simulator.Run();
  }

  int snfs_stale = 0;
  {
    sim::Simulator simulator;
    net::Network network(simulator, {});
    ServerMachine server(simulator, network, "server", ServerProtocol::kSnfs);
    ClientMachine writer(simulator, network, "writer");
    ClientMachine reader(simulator, network, "reader");
    writer.MountSnfs("/data", server.address(), server.root());
    reader.MountSnfs("/data", server.address(), server.root());
    server.Start();
    writer.Start();
    reader.Start();
    simulator.Spawn(Scenario(simulator, writer, reader, "SNFS", &snfs_stale));
    simulator.Run();
  }

  std::printf("\nStale reads: NFS %d, SNFS %d\n", nfs_stale, snfs_stale);
  std::printf("\"Spritely NFS guarantees that no two clients will have inconsistent\n");
  std::printf(" cached copies of a file.\" — and here it shows.\n");
  return snfs_stale == 0 ? 0 : 1;
}
