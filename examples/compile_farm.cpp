// Runs a compact Andrew-style build (the paper's motivating workload: a
// compiler alternating computation with disk output, rereading popular
// headers, and churning short-lived temporaries) on NFS and on SNFS, and
// prints the per-phase comparison.
//
//   ./build/examples/compile_farm
#include <cstdio>

#include "src/testbed/rig.h"
#include "src/workload/andrew.h"

using testbed::Protocol;
using testbed::Rig;
using testbed::RigOptions;

namespace {

workload::AndrewReport RunOn(Protocol protocol) {
  RigOptions options;
  options.protocol = protocol;
  options.remote_tmp = true;  // diskless workstation: even /tmp is remote
  Rig rig(options);

  workload::AndrewShape shape;
  shape.dirs = 3;
  shape.files_per_dir = 8;  // a compact tree so the example runs instantly
  rig.simulator().Spawn(workload::PopulateAndrewTree(rig.data_fs(), rig.data_parent(), shape));
  rig.simulator().Run();

  workload::AndrewConfig config;
  config.src_root = rig.data_root() + "/src";
  config.target_root = rig.data_root() + "/target";
  config.tmp_dir = rig.tmp_dir();
  config.shape = shape;

  workload::AndrewReport report;
  rig.simulator().Spawn([](Rig& rig, workload::AndrewConfig config,
                           workload::AndrewReport& report) -> sim::Task<void> {
    auto result = co_await workload::RunAndrew(rig.simulator(), rig.client().vfs(),
                                               rig.client().cpu(), config);
    if (result.ok()) {
      report = *result;
    }
  }(rig, config, report));
  rig.simulator().Run();
  return report;
}

}  // namespace

int main() {
  std::printf("Building a 24-file project on a diskless workstation...\n\n");
  workload::AndrewReport nfs = RunOn(Protocol::kNfs);
  workload::AndrewReport snfs = RunOn(Protocol::kSnfs);

  std::printf("%-10s %12s %12s %10s\n", "Phase", "NFS (s)", "SNFS (s)", "speedup");
  for (int p = 0; p < workload::kNumAndrewPhases; ++p) {
    double n = sim::ToSeconds(nfs.phase_time[p]);
    double s = sim::ToSeconds(snfs.phase_time[p]);
    std::printf("%-10s %12.2f %12.2f %9.2fx\n",
                std::string(workload::AndrewPhaseName(static_cast<workload::AndrewPhase>(p)))
                    .c_str(),
                n, s, s > 0 ? n / s : 0);
  }
  std::printf("%-10s %12.2f %12.2f %9.2fx\n", "Total", sim::ToSeconds(nfs.total),
              sim::ToSeconds(snfs.total), sim::ToSeconds(nfs.total) / sim::ToSeconds(snfs.total));
  std::printf("\nThe Make phase gains the most: the compiler's writes overlap with its\n");
  std::printf("computation under SNFS, and its temporaries die before ever being sent\n");
  std::printf("to the server.\n");
  return 0;
}
