// Walks through the §2.4 crash-recovery story: a stateful server loses its
// state table in a crash, clients detect the reboot through keepalive
// epochs and re-assert their opens, and consistency survives — including
// dirty data that existed only in a client's cache at crash time.
//
//   ./build/examples/crash_recovery
#include <cstdio>

#include "src/testbed/machine.h"

using testbed::ClientMachine;
using testbed::ServerMachine;
using testbed::ServerProtocol;

namespace {

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

void PrintState(ServerMachine& server, const char* when) {
  proto::FileHandle fh{server.fs().fsid(), 2, 0};
  const snfs::StateTable::Entry* entry = server.snfs_server()->state_table().Lookup(fh);
  std::printf("  [%s] server state table: %s\n", when,
              entry == nullptr ? "(no entry)"
                               : std::string(snfs::FileStateName(entry->state)).c_str());
}

}  // namespace

int main() {
  sim::Simulator simulator;
  net::Network network(simulator, {});

  testbed::ServerMachineParams server_params;
  server_params.snfs.enable_recovery = true;
  server_params.snfs.recovery_grace = sim::Sec(15);
  ServerMachine server(simulator, network, "server", ServerProtocol::kSnfs, server_params);

  snfs::SnfsClientParams client_params;
  client_params.enable_recovery = true;
  client_params.keepalive_interval = sim::Sec(10);
  ClientMachine alice(simulator, network, "alice");
  ClientMachine bob(simulator, network, "bob");
  alice.MountSnfs("/data", server.address(), server.root(), client_params);
  bob.MountSnfs("/data", server.address(), server.root(), client_params);
  server.Start();
  alice.Start();
  bob.Start();

  simulator.Spawn([](sim::Simulator& simulator, ServerMachine& server, ClientMachine& alice,
                     ClientMachine& bob, net::Network& network) -> sim::Task<void> {
    vfs::Vfs& a = alice.vfs();

    // Alice writes a report; the data is dirty in her cache only.
    (void)co_await a.WriteFile("/data/report", Bytes("quarterly numbers"));
    std::printf("t=%5.1fs alice wrote /data/report (dirty in her cache; %llu write RPCs)\n",
                sim::ToSeconds(simulator.Now()),
                static_cast<unsigned long long>(
                    alice.peer().client_ops().Get(proto::OpKind::kWrite)));
    PrintState(server, "before crash");

    // The server crashes: its state table was kernel memory.
    server.Crash(network);
    std::printf("t=%5.1fs *** server crashed ***\n", sim::ToSeconds(simulator.Now()));
    co_await sim::Sleep(simulator, sim::Sec(3));
    server.Reboot(network);
    std::printf("t=%5.1fs server rebooted (epoch %llu), in recovery grace period\n",
                sim::ToSeconds(simulator.Now()),
                static_cast<unsigned long long>(server.snfs_server()->epoch()));
    PrintState(server, "after reboot ");

    // Keepalives notice the epoch change; clients reopen their files.
    co_await sim::Sleep(simulator, sim::Sec(25));
    PrintState(server, "post recovery");

    // Bob reads the report: the callback retrieves Alice's dirty blocks —
    // data that never touched the server before the crash survives it.
    auto got = co_await bob.vfs().ReadFile("/data/report");
    std::printf("t=%5.1fs bob read /data/report: \"%s\"\n", sim::ToSeconds(simulator.Now()),
                got.ok() ? std::string(got->begin(), got->end()).c_str() : "<error>");
    std::printf("\n\"The clients together 'know' who is caching the file, and the server\n");
    std::printf(" can reconstruct its state from the clients.\"\n");
  }(simulator, server, alice, bob, network));

  simulator.RunUntil(sim::Sec(120));
  return 0;
}
