# Empty compiler generated dependencies file for snfs_test.
# This may be replaced when dependencies are built.
