file(REMOVE_RECURSE
  "CMakeFiles/snfs_test.dir/snfs_test.cc.o"
  "CMakeFiles/snfs_test.dir/snfs_test.cc.o.d"
  "snfs_test"
  "snfs_test.pdb"
  "snfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
