file(REMOVE_RECURSE
  "CMakeFiles/state_table_test.dir/state_table_test.cc.o"
  "CMakeFiles/state_table_test.dir/state_table_test.cc.o.d"
  "state_table_test"
  "state_table_test.pdb"
  "state_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
