# Empty dependencies file for state_table_test.
# This may be replaced when dependencies are built.
