# Empty dependencies file for spritely_bench_util.
# This may be replaced when dependencies are built.
