file(REMOVE_RECURSE
  "libspritely_bench_util.a"
)
