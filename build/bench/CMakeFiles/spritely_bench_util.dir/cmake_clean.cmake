file(REMOVE_RECURSE
  "CMakeFiles/spritely_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/spritely_bench_util.dir/bench_util.cc.o.d"
  "libspritely_bench_util.a"
  "libspritely_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
