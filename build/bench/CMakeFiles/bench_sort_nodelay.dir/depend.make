# Empty dependencies file for bench_sort_nodelay.
# This may be replaced when dependencies are built.
