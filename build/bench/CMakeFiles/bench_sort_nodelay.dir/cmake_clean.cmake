file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_nodelay.dir/bench_sort_nodelay.cc.o"
  "CMakeFiles/bench_sort_nodelay.dir/bench_sort_nodelay.cc.o.d"
  "bench_sort_nodelay"
  "bench_sort_nodelay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_nodelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
