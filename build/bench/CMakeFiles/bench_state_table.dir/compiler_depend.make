# Empty compiler generated dependencies file for bench_state_table.
# This may be replaced when dependencies are built.
