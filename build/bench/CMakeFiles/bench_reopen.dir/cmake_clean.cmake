file(REMOVE_RECURSE
  "CMakeFiles/bench_reopen.dir/bench_reopen.cc.o"
  "CMakeFiles/bench_reopen.dir/bench_reopen.cc.o.d"
  "bench_reopen"
  "bench_reopen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reopen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
