# Empty compiler generated dependencies file for bench_reopen.
# This may be replaced when dependencies are built.
