file(REMOVE_RECURSE
  "CMakeFiles/spritely_proto.dir/messages.cc.o"
  "CMakeFiles/spritely_proto.dir/messages.cc.o.d"
  "libspritely_proto.a"
  "libspritely_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
