# Empty compiler generated dependencies file for spritely_proto.
# This may be replaced when dependencies are built.
