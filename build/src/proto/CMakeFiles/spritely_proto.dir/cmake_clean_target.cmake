file(REMOVE_RECURSE
  "libspritely_proto.a"
)
