
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/machine.cc" "src/testbed/CMakeFiles/spritely_testbed.dir/machine.cc.o" "gcc" "src/testbed/CMakeFiles/spritely_testbed.dir/machine.cc.o.d"
  "/root/repo/src/testbed/rig.cc" "src/testbed/CMakeFiles/spritely_testbed.dir/rig.cc.o" "gcc" "src/testbed/CMakeFiles/spritely_testbed.dir/rig.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfs/CMakeFiles/spritely_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/snfs/CMakeFiles/spritely_snfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/spritely_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spritely_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/spritely_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spritely_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/spritely_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/spritely_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/spritely_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/spritely_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spritely_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spritely_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
