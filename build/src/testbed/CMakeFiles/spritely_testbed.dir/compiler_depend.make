# Empty compiler generated dependencies file for spritely_testbed.
# This may be replaced when dependencies are built.
