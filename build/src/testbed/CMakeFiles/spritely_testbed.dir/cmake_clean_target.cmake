file(REMOVE_RECURSE
  "libspritely_testbed.a"
)
