file(REMOVE_RECURSE
  "CMakeFiles/spritely_testbed.dir/machine.cc.o"
  "CMakeFiles/spritely_testbed.dir/machine.cc.o.d"
  "CMakeFiles/spritely_testbed.dir/rig.cc.o"
  "CMakeFiles/spritely_testbed.dir/rig.cc.o.d"
  "libspritely_testbed.a"
  "libspritely_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
