# Empty compiler generated dependencies file for spritely_net.
# This may be replaced when dependencies are built.
