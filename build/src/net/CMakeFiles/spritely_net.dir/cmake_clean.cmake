file(REMOVE_RECURSE
  "CMakeFiles/spritely_net.dir/network.cc.o"
  "CMakeFiles/spritely_net.dir/network.cc.o.d"
  "libspritely_net.a"
  "libspritely_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
