file(REMOVE_RECURSE
  "libspritely_net.a"
)
