file(REMOVE_RECURSE
  "libspritely_cache.a"
)
