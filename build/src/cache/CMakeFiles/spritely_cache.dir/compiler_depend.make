# Empty compiler generated dependencies file for spritely_cache.
# This may be replaced when dependencies are built.
