file(REMOVE_RECURSE
  "CMakeFiles/spritely_cache.dir/buffer_cache.cc.o"
  "CMakeFiles/spritely_cache.dir/buffer_cache.cc.o.d"
  "libspritely_cache.a"
  "libspritely_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
