file(REMOVE_RECURSE
  "CMakeFiles/spritely_workload.dir/andrew.cc.o"
  "CMakeFiles/spritely_workload.dir/andrew.cc.o.d"
  "CMakeFiles/spritely_workload.dir/sort.cc.o"
  "CMakeFiles/spritely_workload.dir/sort.cc.o.d"
  "libspritely_workload.a"
  "libspritely_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
