# Empty compiler generated dependencies file for spritely_workload.
# This may be replaced when dependencies are built.
