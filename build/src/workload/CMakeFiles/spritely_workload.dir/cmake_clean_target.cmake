file(REMOVE_RECURSE
  "libspritely_workload.a"
)
