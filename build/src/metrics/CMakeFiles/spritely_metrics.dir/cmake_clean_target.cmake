file(REMOVE_RECURSE
  "libspritely_metrics.a"
)
