# Empty compiler generated dependencies file for spritely_metrics.
# This may be replaced when dependencies are built.
