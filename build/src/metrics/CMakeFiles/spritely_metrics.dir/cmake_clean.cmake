file(REMOVE_RECURSE
  "CMakeFiles/spritely_metrics.dir/table.cc.o"
  "CMakeFiles/spritely_metrics.dir/table.cc.o.d"
  "CMakeFiles/spritely_metrics.dir/time_series.cc.o"
  "CMakeFiles/spritely_metrics.dir/time_series.cc.o.d"
  "libspritely_metrics.a"
  "libspritely_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
