file(REMOVE_RECURSE
  "CMakeFiles/spritely_rpc.dir/peer.cc.o"
  "CMakeFiles/spritely_rpc.dir/peer.cc.o.d"
  "libspritely_rpc.a"
  "libspritely_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
