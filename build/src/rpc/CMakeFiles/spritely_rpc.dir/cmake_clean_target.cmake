file(REMOVE_RECURSE
  "libspritely_rpc.a"
)
