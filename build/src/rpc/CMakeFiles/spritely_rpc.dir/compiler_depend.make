# Empty compiler generated dependencies file for spritely_rpc.
# This may be replaced when dependencies are built.
