file(REMOVE_RECURSE
  "libspritely_snfs.a"
)
