# Empty dependencies file for spritely_snfs.
# This may be replaced when dependencies are built.
