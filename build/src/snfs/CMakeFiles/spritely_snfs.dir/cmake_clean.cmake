file(REMOVE_RECURSE
  "CMakeFiles/spritely_snfs.dir/client.cc.o"
  "CMakeFiles/spritely_snfs.dir/client.cc.o.d"
  "CMakeFiles/spritely_snfs.dir/hybrid.cc.o"
  "CMakeFiles/spritely_snfs.dir/hybrid.cc.o.d"
  "CMakeFiles/spritely_snfs.dir/server.cc.o"
  "CMakeFiles/spritely_snfs.dir/server.cc.o.d"
  "CMakeFiles/spritely_snfs.dir/state_table.cc.o"
  "CMakeFiles/spritely_snfs.dir/state_table.cc.o.d"
  "libspritely_snfs.a"
  "libspritely_snfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_snfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
