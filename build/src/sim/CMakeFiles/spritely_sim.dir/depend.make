# Empty dependencies file for spritely_sim.
# This may be replaced when dependencies are built.
