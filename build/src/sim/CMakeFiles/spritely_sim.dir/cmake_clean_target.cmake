file(REMOVE_RECURSE
  "libspritely_sim.a"
)
