file(REMOVE_RECURSE
  "CMakeFiles/spritely_sim.dir/simulator.cc.o"
  "CMakeFiles/spritely_sim.dir/simulator.cc.o.d"
  "libspritely_sim.a"
  "libspritely_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
