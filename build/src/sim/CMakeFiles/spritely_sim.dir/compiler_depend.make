# Empty compiler generated dependencies file for spritely_sim.
# This may be replaced when dependencies are built.
