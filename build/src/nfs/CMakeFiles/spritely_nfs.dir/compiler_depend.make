# Empty compiler generated dependencies file for spritely_nfs.
# This may be replaced when dependencies are built.
