file(REMOVE_RECURSE
  "libspritely_nfs.a"
)
