file(REMOVE_RECURSE
  "CMakeFiles/spritely_nfs.dir/client.cc.o"
  "CMakeFiles/spritely_nfs.dir/client.cc.o.d"
  "CMakeFiles/spritely_nfs.dir/server.cc.o"
  "CMakeFiles/spritely_nfs.dir/server.cc.o.d"
  "libspritely_nfs.a"
  "libspritely_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
