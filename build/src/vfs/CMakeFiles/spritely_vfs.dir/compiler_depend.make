# Empty compiler generated dependencies file for spritely_vfs.
# This may be replaced when dependencies are built.
