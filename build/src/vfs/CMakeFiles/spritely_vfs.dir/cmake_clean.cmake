file(REMOVE_RECURSE
  "CMakeFiles/spritely_vfs.dir/vfs.cc.o"
  "CMakeFiles/spritely_vfs.dir/vfs.cc.o.d"
  "libspritely_vfs.a"
  "libspritely_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
