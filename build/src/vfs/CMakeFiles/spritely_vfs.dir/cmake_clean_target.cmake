file(REMOVE_RECURSE
  "libspritely_vfs.a"
)
