file(REMOVE_RECURSE
  "CMakeFiles/spritely_base.dir/log.cc.o"
  "CMakeFiles/spritely_base.dir/log.cc.o.d"
  "CMakeFiles/spritely_base.dir/status.cc.o"
  "CMakeFiles/spritely_base.dir/status.cc.o.d"
  "libspritely_base.a"
  "libspritely_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
