# Empty compiler generated dependencies file for spritely_base.
# This may be replaced when dependencies are built.
