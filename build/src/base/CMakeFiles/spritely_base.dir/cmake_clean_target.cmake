file(REMOVE_RECURSE
  "libspritely_base.a"
)
