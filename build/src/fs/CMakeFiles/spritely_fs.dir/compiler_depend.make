# Empty compiler generated dependencies file for spritely_fs.
# This may be replaced when dependencies are built.
