file(REMOVE_RECURSE
  "CMakeFiles/spritely_fs.dir/local_fs.cc.o"
  "CMakeFiles/spritely_fs.dir/local_fs.cc.o.d"
  "CMakeFiles/spritely_fs.dir/local_mount.cc.o"
  "CMakeFiles/spritely_fs.dir/local_mount.cc.o.d"
  "libspritely_fs.a"
  "libspritely_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spritely_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
