file(REMOVE_RECURSE
  "libspritely_fs.a"
)
