file(REMOVE_RECURSE
  "CMakeFiles/compile_farm.dir/compile_farm.cpp.o"
  "CMakeFiles/compile_farm.dir/compile_farm.cpp.o.d"
  "compile_farm"
  "compile_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
