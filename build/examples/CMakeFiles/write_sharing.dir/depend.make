# Empty dependencies file for write_sharing.
# This may be replaced when dependencies are built.
