file(REMOVE_RECURSE
  "CMakeFiles/write_sharing.dir/write_sharing.cpp.o"
  "CMakeFiles/write_sharing.dir/write_sharing.cpp.o.d"
  "write_sharing"
  "write_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
