#!/usr/bin/env bash
# Tier-1 verification plus static analysis and the sanitizer pass.
#
#  1. ROADMAP tier-1: configure, build, run the full test suite.
#  2. snfslint: the repo's own static-analysis pass (tools/lint) over src,
#     tests, bench, and examples — coroutine lifetime, stale pointers across
#     suspension points, dropped tasks, determinism, status discipline, lock
#     discipline (lock-balance / double-acquire / lock-order), and
#     suppression auditing. (Also runs inside ctest as `lint_repo`.)
#  3. clang-tidy (if installed): generic bug-pattern checks per .clang-tidy,
#     driven by the exported compile_commands.json; warnings are errors.
#  4. ASan/UBSan: rebuild under -fsanitize=address,undefined (the `asan`
#     CMake preset) and run fault_injection_test — the crash/restart and
#     fault-injection paths are where lifetime bugs (coroutines outliving
#     peers, use-after-free on restart) would hide.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== snfslint: simulator-aware static analysis =="
# The interprocedural passes (call graph, may-suspend fixpoint, and the
# lock-discipline summaries) run on every build and inside ctest, so their
# wall time is part of the edit loop; budget it at 10s and fail loudly if it
# regresses. snfslint prints a per-rule finding tally on stderr either way.
lint_start_ns=$(date +%s%N)
./build/tools/lint/snfslint --root . src tests bench examples
lint_ms=$(( ($(date +%s%N) - lint_start_ns) / 1000000 ))
echo "snfslint wall time: ${lint_ms} ms (budget 10000 ms)"
if [ "$lint_ms" -gt 10000 ]; then
  echo "FAIL: snfslint exceeded its 10s wall-time budget" >&2
  exit 1
fi
# The lock-summary dump backs the lock rules (acquires/releases/may-acquire
# per function); make sure it stays producible and non-empty.
lock_lines=$(./build/tools/lint/snfslint --root . --format=locks src | wc -l)
echo "snfslint --format=locks: ${lock_lines} lock summaries"
if [ "$lock_lines" -lt 1 ]; then
  echo "FAIL: lock-summary dump is empty" >&2
  exit 1
fi

echo "== trace checker: one fault-sweep seed with causal-trace validation =="
# Records every cell of the sweep — all five fault profiles by all three
# protocols (NFS, SNFS, NQNFS) — and runs the stale-read / concurrent-dirty /
# retransmit-once / lease-invariant checker over the trace; any violation
# aborts the cell.
./build/bench/bench_fault_sweep --trace-check --seeds=1 >/dev/null

echo "== simperf smoke: simulator hot path still runs all four loads =="
./build/bench/bench_simperf --smoke >/dev/null

echo "== fleet smoke: sharded rig, metadata tier, trace-checked fault seeds =="
# Scaled-down hotset/boot-storm sweeps plus the fleet fault seeds
# (shard crash, cache partition) with the shard-aware stale-read checker;
# any trace violation aborts the run. Budgeted like snfslint: the smoke
# sweep is part of the edit loop and must stay in the 10s class.
fleet_start_ns=$(date +%s%N)
./build/bench/bench_fleet --smoke >/dev/null
fleet_ms=$(( ($(date +%s%N) - fleet_start_ns) / 1000000 ))
echo "bench_fleet --smoke wall time: ${fleet_ms} ms (budget 10000 ms)"
if [ "$fleet_ms" -gt 10000 ]; then
  echo "FAIL: bench_fleet --smoke exceeded its 10s wall-time budget" >&2
  exit 1
fi

echo "== calibrated benches: byte-identical to pinned baselines =="
# Deterministic bench output — elapsed times, three-way (NFS/SNFS/NQNFS)
# RPC matrices, trace checksums — must never move unnoticed: it is diffed
# byte-for-byte against the pinned goldens. The final "wrote
# <path>" stdout line echoes the --json argument and is excluded.
baseline_tmp=$(mktemp -d)
trap 'rm -rf "$baseline_tmp"' EXIT
./build/bench/bench_andrew --json="$baseline_tmp/andrew.json" \
  > "$baseline_tmp/andrew_stdout.txt"
./build/bench/bench_sort --json="$baseline_tmp/sort.json" \
  > "$baseline_tmp/sort_stdout.txt"
diff bench/baselines/BENCH_andrew.json "$baseline_tmp/andrew.json"
diff bench/baselines/BENCH_sort.json "$baseline_tmp/sort.json"
diff <(grep -v '^wrote ' bench/baselines/bench_andrew_stdout.txt) \
     <(grep -v '^wrote ' "$baseline_tmp/andrew_stdout.txt")
diff <(grep -v '^wrote ' bench/baselines/bench_sort_stdout.txt) \
     <(grep -v '^wrote ' "$baseline_tmp/sort_stdout.txt")

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy: generic bug patterns (gating) =="
  mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
  clang-tidy -p build --quiet -warnings-as-errors='*' "${tidy_sources[@]}"
else
  echo "== clang-tidy not installed; skipping =="
fi

echo "== sanitizers: ASan/UBSan on the fault harness =="
cmake --preset asan
# fs_test and hybrid_test carry the stale-pointer regressions (remove racing
# a suspended create/read, lease expiry mid-upgrade): their bugs only show
# as use-after-free, so they run under the sanitizers too.
cmake --build build-asan -j --target fault_injection_test rpc_test recovery_test \
  fs_test hybrid_test nqnfs_test fleet_test
# Leak detection stays off: coroutine frames still suspended when a Simulator
# is torn down are reported as leaks. This is a pre-existing, codebase-wide
# pattern (the seed's sim_test reports the same under ASan); ASan/UBSan still
# catch use-after-free, heap overflow, and UB with leak checking disabled.
export ASAN_OPTIONS=detect_leaks=0
./build-asan/tests/rpc_test
./build-asan/tests/recovery_test
./build-asan/tests/fault_injection_test
./build-asan/tests/fs_test
./build-asan/tests/hybrid_test
# NQNFS lease expiry races whole-file flushes and vacate callbacks race
# crashes: one more place lifetime bugs only show as use-after-free.
./build-asan/tests/nqnfs_test
# The metadata tier coalesces concurrent fills onto one shard RPC: parked
# handler coroutines joining another request's future are exactly where a
# frame-lifetime bug would surface as use-after-free.
./build-asan/tests/fleet_test

echo "All checks passed."
