// snfslint: project-specific static analysis for the Spritely NFS simulator.
//
// Usage: snfslint [--root DIR] [--format=gcc|json|sarif|suspend|locks] [path...]
//
// Paths (files or directories, searched recursively for .h/.cc/.cpp/.hpp)
// are taken relative to --root (default: current directory); with no paths,
// `src` is linted. The default gcc format prints `file:line: rule-id:
// message` lines (clickable in editors and CI logs); --format=json prints a
// machine-readable array of {file, line, rule, message} objects;
// --format=sarif prints a SARIF 2.1.0 log for GitHub code-scanning upload.
// All three exit 1 when any diagnostic is found, with a per-rule count
// summary on stderr (printed even when clean, so CI logs show each rule ran).
// --format=suspend instead dumps the repo-wide may-suspend classification —
// one `file:line: Qualified::Name: verdict (reason)` line per known function
// — and always exits 0; it exists for auditing the interprocedural fixpoint
// (see tools/lint/callgraph.h). --format=locks likewise dumps the
// per-function lock summaries — acquires/releases, the transitive
// may-acquire closure, and lock-escapes status — for auditing the
// lock-discipline rules (see tools/lint/locks.h). See tools/lint/lint.h for
// the rule list and the `// lint: <rule>-ok` suppression syntax.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "tools/lint/lint.h"

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

// Collects source files under `path` (or `path` itself) into `files`,
// sorted so diagnostics are stable across platforms.
bool CollectFiles(const fs::path& path, std::vector<fs::path>& files) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (fs::recursive_directory_iterator it(path, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        return false;
      }
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        files.push_back(it->path());
      }
    }
    return true;
  }
  if (fs::is_regular_file(path, ec)) {
    files.push_back(path);
    return true;
  }
  return false;
}

// Minimal JSON string escaping: messages contain backticks and quotes but
// never non-ASCII, so escaping quotes, backslashes, and control bytes is
// enough.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string format = "gcc";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "gcc" && format != "json" && format != "sarif" && format != "suspend" &&
          format != "locks") {
        std::fprintf(
            stderr,
            "snfslint: unknown format '%s' (expected gcc, json, sarif, suspend, or locks)\n",
            format.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: snfslint [--root DIR] [--format=gcc|json|sarif|suspend|locks] [path...]\n");
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    args.push_back("src");
  }

  std::vector<fs::path> files;
  for (const std::string& arg : args) {
    fs::path p = fs::path(arg).is_absolute() ? fs::path(arg) : root / arg;
    if (!CollectFiles(p, files)) {
      std::fprintf(stderr, "snfslint: cannot read %s\n", p.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  lint::Linter linter;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "snfslint: cannot open %s\n", file.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    // Report paths relative to --root so diagnostics are stable regardless
    // of where the tool is invoked from.
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    linter.AddFile((ec || rel.empty()) ? file.generic_string() : rel.generic_string(),
                   buf.str());
  }

  std::vector<lint::Diagnostic> diags = linter.Run();
  if (format == "suspend") {
    // Classification dump: one line per known function, sorted for diffing.
    std::vector<const lint::Function*> fns;
    for (const lint::Function& f : linter.callgraph().functions()) {
      fns.push_back(&f);
    }
    std::sort(fns.begin(), fns.end(), [](const lint::Function* a, const lint::Function* b) {
      return std::tie(a->file, a->line, a->qual) < std::tie(b->file, b->line, b->qual);
    });
    for (const lint::Function* f : fns) {
      std::printf("%s:%d: %s: %s%s%s%s\n", f->file.c_str(), f->line, f->qual.c_str(),
                  f->may_suspend ? "may-suspend" : "no", f->why.empty() ? "" : " (",
                  f->why.c_str(), f->why.empty() ? "" : ")");
    }
    return 0;
  }
  if (format == "locks") {
    // Lock-summary dump: one line per function with any lock activity,
    // sorted for diffing. `!` marks a lock-escapes exit.
    std::vector<const lint::FnLocks*> fns;
    for (const auto& [qual, fl] : linter.locks().functions()) {
      if (fl.acquires.empty() && fl.releases.empty() && fl.may_acquire.empty() &&
          !fl.escapes) {
        continue;
      }
      fns.push_back(&fl);
    }
    std::sort(fns.begin(), fns.end(), [](const lint::FnLocks* a, const lint::FnLocks* b) {
      return std::tie(a->file, a->line, a->qual) < std::tie(b->file, b->line, b->qual);
    });
    auto join = [](const std::set<std::string>& s) {
      std::string out;
      for (const std::string& e : s) {
        if (!out.empty()) {
          out += ", ";
        }
        out += e;
      }
      return out.empty() ? std::string("-") : out;
    };
    for (const lint::FnLocks* f : fns) {
      std::printf("%s:%d: %s:%s acquires={%s} releases={%s} may-acquire={%s}\n",
                  f->file.c_str(), f->line, f->qual.c_str(),
                  f->escapes ? " escapes!" : "", join(f->acquires).c_str(),
                  join(f->releases).c_str(), join(f->may_acquire).c_str());
    }
    return 0;
  }
  if (format == "sarif") {
    // SARIF 2.1.0, the minimal shape GitHub code scanning accepts. The rules
    // array lists every rule the tool knows, fired or not, so code-scanning
    // dashboards show the full rule inventory.
    const std::vector<std::string>& rule_ids = lint::Linter::KnownRules();
    std::printf("{\n");
    std::printf("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    std::printf("  \"version\": \"2.1.0\",\n");
    std::printf("  \"runs\": [\n    {\n");
    std::printf("      \"tool\": {\n        \"driver\": {\n");
    std::printf("          \"name\": \"snfslint\",\n");
    std::printf("          \"informationUri\": \"tools/lint/lint.h\",\n");
    std::printf("          \"rules\": [");
    for (size_t i = 0; i < rule_ids.size(); ++i) {
      std::printf("%s\n            {\"id\": \"%s\"}", i == 0 ? "" : ",",
                  JsonEscape(rule_ids[i]).c_str());
    }
    std::printf("%s]\n        }\n      },\n", rule_ids.empty() ? "" : "\n          ");
    std::printf("      \"results\": [");
    for (size_t i = 0; i < diags.size(); ++i) {
      const lint::Diagnostic& d = diags[i];
      std::printf("%s\n        {\"ruleId\": \"%s\", \"level\": \"error\", "
                  "\"message\": {\"text\": \"%s\"}, \"locations\": [{\"physicalLocation\": "
                  "{\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": {\"startLine\": "
                  "%d}}}]}",
                  i == 0 ? "" : ",", JsonEscape(d.rule).c_str(), JsonEscape(d.message).c_str(),
                  JsonEscape(d.file).c_str(), d.line);
    }
    std::printf("%s]\n    }\n  ]\n}\n", diags.empty() ? "" : "\n      ");
  } else if (format == "json") {
    std::printf("[");
    for (size_t i = 0; i < diags.size(); ++i) {
      const lint::Diagnostic& d = diags[i];
      std::printf("%s\n  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\"}",
                  i == 0 ? "" : ",", JsonEscape(d.file).c_str(), d.line,
                  JsonEscape(d.rule).c_str(), JsonEscape(d.message).c_str());
    }
    std::printf("%s]\n", diags.empty() ? "" : "\n");
  } else {
    for (const lint::Diagnostic& d : diags) {
      std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(), d.message.c_str());
    }
  }
  // Per-rule counts, printed even on a clean run so CI logs show every rule
  // was exercised (zeros elided; rule inventory comes from KnownRules()).
  std::map<std::string, int> by_rule;
  for (const lint::Diagnostic& d : diags) {
    ++by_rule[d.rule];
  }
  std::fprintf(stderr, "snfslint: %zu diagnostic(s)", diags.size());
  if (!by_rule.empty()) {
    std::fprintf(stderr, ":");
    for (const auto& [rule, count] : by_rule) {
      std::fprintf(stderr, " %s=%d", rule.c_str(), count);
    }
  }
  std::fprintf(stderr, "\n");
  return diags.empty() ? 0 : 1;
}
