// snfslint: project-specific static analysis for the Spritely NFS simulator.
//
// Usage: snfslint [--root DIR] [path...]
//
// Paths (files or directories, searched recursively for .h/.cc/.cpp/.hpp)
// are taken relative to --root (default: current directory); with no paths,
// `src` is linted. Prints `file:line: rule-id: message` diagnostics and
// exits 1 when any are found. See tools/lint/lint.h for the rule list and
// the `// lint: <rule>-ok` suppression syntax.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

// Collects source files under `path` (or `path` itself) into `files`,
// sorted so diagnostics are stable across platforms.
bool CollectFiles(const fs::path& path, std::vector<fs::path>& files) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (fs::recursive_directory_iterator it(path, ec), end; it != end; it.increment(ec)) {
      if (ec) {
        return false;
      }
      if (it->is_regular_file() && IsSourceFile(it->path())) {
        files.push_back(it->path());
      }
    }
    return true;
  }
  if (fs::is_regular_file(path, ec)) {
    files.push_back(path);
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: snfslint [--root DIR] [path...]\n");
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    args.push_back("src");
  }

  std::vector<fs::path> files;
  for (const std::string& arg : args) {
    fs::path p = fs::path(arg).is_absolute() ? fs::path(arg) : root / arg;
    if (!CollectFiles(p, files)) {
      std::fprintf(stderr, "snfslint: cannot read %s\n", p.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  lint::Linter linter;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "snfslint: cannot open %s\n", file.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    // Report paths relative to --root so diagnostics are stable regardless
    // of where the tool is invoked from.
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    linter.AddFile((ec || rel.empty()) ? file.generic_string() : rel.generic_string(),
                   buf.str());
  }

  std::vector<lint::Diagnostic> diags = linter.Run();
  for (const lint::Diagnostic& d : diags) {
    std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(), d.message.c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "snfslint: %zu diagnostic(s)\n", diags.size());
    return 1;
  }
  return 0;
}
