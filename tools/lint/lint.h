// snfslint rule engine.
//
// The linter runs in two passes over a set of files:
//
//  Pass 1 collects declarations: names of functions returning sim::Task<...>
//  (and whether the task's payload is a base::Status / base::Result), names
//  of functions returning base::Status / base::Result directly, and names of
//  variables declared as std::unordered_map / std::unordered_set.
//
//  Pass 2 applies the rules to each file's token stream, consulting the
//  collected declarations. Function names are matched repo-wide (call sites
//  routinely cross files); unordered-container variable names are matched
//  per file plus its paired header/source (x.cc <-> x.h), which keeps an
//  unordered member in one class from tainting a same-named ordered local
//  elsewhere.
//
// Rules (diagnostic ids; suppress with `// lint: <id>-ok` on the line or a
// standalone comment on the line above):
//
//  coro-ref      A sim::Task-returning function takes a parameter that can
//                dangle across a suspension point: const lvalue reference
//                (binds temporaries), rvalue reference, std::string_view, or
//                std::span. Non-const lvalue references are allowed: they
//                cannot bind temporaries and idiomatically name long-lived
//                services (sim::Simulator&, vfs::Vfs&).
//  coro-lambda   A lambda with a reference capture whose body contains
//                co_await / co_return / co_yield: the closure lives in the
//                coroutine frame and its captures can outlive the enclosing
//                scope.
//  task-dropped  A call to a Task-returning function used as a bare
//                statement: the task is neither co_awaited, stored, nor
//                spawned, so (tasks being lazy) the body silently never runs.
//  nondet        Use of a wall-clock or ambient-randomness source (rand,
//                srand, std::random_device, std::chrono::system_clock,
//                time()) inside the simulation: all stochastic behaviour
//                must flow from sim::Rng seeds.
//  ordered       Range-for over an unordered container in an
//                order-sensitive directory (src/sim, src/net, src/rpc,
//                src/nfs, src/snfs, src/cache): hash-iteration order can
//                silently change simulated event ordering.
//  unused-status A base::Status / base::Result return value (including the
//                payload of `co_await SomeTask(...)`) dropped without an
//                explicit (void) cast.
//  trace-span-balance
//                A manual trace span (TRACE_SPAN_BEGIN) that can leak: a
//                `return` / `co_return` is reached while the span is still
//                open, or the begin's enclosing block closes without any
//                matching TRACE_SPAN_END. The walk is textual: it stops at
//                the first `TRACE_SPAN_END(var, ...)`, so ending the span
//                separately before each early exit is clean. Prefer the
//                trace::Span RAII guard wherever a block scope fits.
//
// Flow-sensitive rules (see flow.cc). These walk each function body as a
// statement tree with suspension points marked and track which locals hold
// values that another interleaved coroutine can invalidate while this one
// is suspended. A suspension point is a literal `co_await`/`co_yield` *or a
// call to a may-suspend function*: the repo-wide call graph (callgraph.h)
// classifies every function by a fixpoint — it may suspend when its body
// contains `co_await`/`co_yield`, resumes a coroutine handle, is a
// `Task<...>`-returning declaration with no visible body, or calls a
// may-suspend function. `// lint: no-suspend` on a declaration pins a
// function non-suspending (audited; see below):
//
//  await-stale-ref    A local bound to an *unstable source* — a function
//                     returning a raw pointer/reference into a container
//                     (`Entry* Find(...)`, `Result<Inode*> Resolve(...)`,
//                     anything annotated `// lint: unstable-source`), a
//                     container lookup (`.find()`, `.begin()`,
//                     `operator[]`, `.at()`), or `&container[key]` — is
//                     dereferenced after a suspension point (a co_await or
//                     a may-suspend call) without being re-acquired. Fix:
//                     re-lookup after the await, or copy the needed values
//                     before suspending.
//  await-cached-size  A container size/emptiness snapshot (`.size()`,
//                     `.empty()`, `.count()`) taken before a suspension
//                     point is branched on after it; the container may have
//                     changed while the coroutine slept.
//  suspend-escape     A tracked pointer/iterator/reference is passed, as a
//                     whole argument, *into* a may-suspend callee: the
//                     callee can hold it across its own suspension while
//                     another coroutine invalidates it, which no
//                     per-function analysis of either side can see. Pass
//                     the key (let the callee re-look-up) or copied values
//                     instead. Reading *through* the handle in the argument
//                     list (`f(e->size)`) is a pre-suspension value read
//                     and stays quiet.
//  suppression-audit  A `// lint: <rule>-ok` comment that no longer
//                     suppresses any diagnostic (the code was fixed, the
//                     rule changed, or the id is misspelled) is itself an
//                     error, keeping the suppression inventory honest.
//                     Also audits `// lint: no-suspend` annotations: one
//                     that pins no function, pins a function that was never
//                     may-suspend, or tries to waive a literal
//                     co_await/.resume() is an error. And audits
//                     `// lint: lock-escapes` annotations: one that attaches
//                     to no function, or to a function no analyzed path of
//                     which exits holding a lock, is an error.
//
// Lock-discipline rules (see locks.h for the full contract). These run on
// the same statement-tree walk and call graph; lock classes are sim::Mutex /
// sim::Semaphore members and `sim::Mutex&`-returning accessors, harvested
// repo-wide:
//
//  lock-balance       A `co_await m.Acquire()` that can reach a function
//                     exit — including early `co_return` error paths and
//                     the hidden exits inside `[CO_]RETURN_IF_ERROR` —
//                     without `m.Release()`. Locks are tracked through alias
//                     bindings and the sim::ScopedLock RAII guard; a
//                     function that intentionally exits holding a lock
//                     carries `// lint: lock-escapes` (audited), and a
//                     caller binding `x = co_await Escaper(...)` from an
//                     annotated escaper inherits a must-release obligation.
//  double-acquire     Re-acquiring a sim::Mutex the current path already
//                     holds — directly or by calling a function whose
//                     transitive may-acquire set contains the held mutex.
//                     On a FIFO mutex this is a guaranteed self-deadlock.
//  lock-order         A cycle in the repo-wide lock-order graph (edge A->B
//                     when B is acquired, directly or via a callee, while A
//                     is held): two activities can each hold one lock and
//                     block forever on the other.
//
// Unstable sources are inferred from declarations repo-wide: any function
// declared to return `T*` or `base::Result<T*>`, plus any function whose
// declaration line carries `// lint: unstable-source` (for functions that
// return references into containers, which the return type cannot reveal).
// Bindings whose initializer contains `co_await` are treated as stable: the
// value was produced fresh at the suspension point.
#ifndef TOOLS_LINT_LINT_H_
#define TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "tools/lint/callgraph.h"
#include "tools/lint/lexer.h"
#include "tools/lint/locks.h"

namespace lint {

struct Diagnostic {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

// Declarations harvested from one file in pass 1.
struct FileDecls {
  // Function name -> payload bitmask: kStatusPayload when the Task payload
  // is Status/Result-like, kOtherPayload otherwise. A name declared both
  // ways (e.g. Write in vfs and disk) has both bits set.
  static constexpr int kStatusPayload = 1;
  static constexpr int kOtherPayload = 2;
  std::map<std::string, int> task_fns;
  std::set<std::string> status_fns;
  // Functions declared with a non-Task, non-Status return type; a name that
  // also appears here is ambiguous and the statement rules stay quiet
  // (e.g. Simulator::Run() vs. a Task-returning Run elsewhere).
  std::set<std::string> other_fns;
  std::set<std::string> unordered_vars;
  // Functions returning raw pointers (`T*`), pointer payloads
  // (`Result<T*>`), or carrying a `// lint: unstable-source` annotation.
  std::set<std::string> unstable_fns;
};

class Linter {
 public:
  // Pass 1: lex `source` and harvest declarations. `path` is the name used
  // in diagnostics and for the ordered-rule directory check.
  void AddFile(const std::string& path, const std::string& source);

  // Pass 2: apply all rules to every added file. Returns diagnostics sorted
  // by (file, line, rule).
  std::vector<Diagnostic> Run();

  // True when `path` is under a directory where iteration order feeds the
  // event queue (the `ordered` rule's scope).
  static bool InOrderSensitiveDir(const std::string& path);

  // The repo-wide call graph with may-suspend classifications. Valid after
  // Run(); drives `--format=suspend`.
  const CallGraph& callgraph() const { return callgraph_; }

  // The lock pass with per-function acquire/release/may-acquire summaries.
  // Valid after Run(); drives `--format=locks`.
  const LockPass& locks() const { return lockpass_; }

  // Every rule id the linter can emit, sorted. Drives the SARIF rules array,
  // the per-rule count summary, and the suppression-audit spell check.
  static const std::vector<std::string>& KnownRules();

 private:
  struct FileState {
    std::string path;
    LexResult lex;
    FileDecls decls;
  };

  void CollectDecls(FileState& fs);
  void LintFile(const FileState& fs, std::vector<Diagnostic>& out);

  // Rules. `unordered` is the effective unordered-variable set for the file.
  void CheckCoroParams(const FileState& fs, std::vector<Diagnostic>& out);
  void CheckCoroLambdas(const FileState& fs, std::vector<Diagnostic>& out);
  void CheckNondet(const FileState& fs, std::vector<Diagnostic>& out);
  void CheckOrderedIteration(const FileState& fs, const std::set<std::string>& unordered,
                             std::vector<Diagnostic>& out);
  void CheckStatements(const FileState& fs, std::vector<Diagnostic>& out);
  void CheckTraceSpanBalance(const FileState& fs, std::vector<Diagnostic>& out);
  // Flow-sensitive pass: await-stale-ref and await-cached-size (flow.cc).
  void CheckFlow(const FileState& fs, std::vector<Diagnostic>& out);
  // Post-pass over every file's suppression notes (needs the used_ set
  // filled in by all other rules, so it runs last).
  void CheckSuppressions(const FileState& fs, std::vector<Diagnostic>& out);

  bool Suppressed(const FileState& fs, int line, const std::string& rule);
  void Emit(const FileState& fs, int line, const std::string& rule, std::string message,
            std::vector<Diagnostic>& out);

  std::vector<FileState> files_;
  // Repo-wide call graph + may-suspend fixpoint (rebuilt in Run()).
  CallGraph callgraph_;
  // Lock-discipline pass (rebuilt in Run(); consults callgraph_).
  LockPass lockpass_;
  // Global function tables (populated after all AddFile calls, in Run()).
  std::map<std::string, int> task_fns_;
  std::set<std::string> status_fns_;
  std::set<std::string> other_fns_;
  std::set<std::string> unstable_fns_;
  // (file, line, rule) triples where a suppression absorbed a diagnostic;
  // suppression-audit flags notes that never land here.
  std::set<std::tuple<std::string, int, std::string>> used_;
};

}  // namespace lint

#endif  // TOOLS_LINT_LINT_H_
