// Repo-wide symbol table, call graph, and transitive may-suspend
// classification for snfslint.
//
// The flow rules in flow.cc need to know which *calls* are suspension
// points, not just which tokens spell `co_await`: a helper that posts a
// coroutine, a method that pumps the simulator, or a `Task<...>`-returning
// function awaited two hops away all interleave other coroutines while the
// caller holds pointers into shared containers. This module builds that
// knowledge from the same token streams the rest of the linter uses:
//
//  1. Symbol table. Every function *definition* (a body we can see, inline
//     in a class or out of line) and every `Task<...>`-returning
//     *declaration* is recorded under a qualified name — `Class::Method`
//     for members (the enclosing class is tracked for inline bodies;
//     out-of-line definitions carry the qualifier themselves) and the bare
//     name for free functions. Declarations and definitions of the same
//     qualified name merge into one record, so an annotation on the header
//     declaration governs the body in the .cc file. Non-Task declarations
//     without a visible body are not recorded — they cannot suspend a
//     caller the analysis could reason about, and leaving them out keeps
//     the bare-name candidate sets small — unless they carry a
//     `// lint: no-suspend` pin, which is itself the claim the record
//     encodes (a known, non-suspending function).
//
//  2. Call graph. Each body's call sites (`Name(...)`, `obj.Name(...)`,
//     `Class::Name(...)`) are extracted; nested lambda bodies are skipped (a
//     lambda is its own function and runs on its own schedule). A call site
//     resolves to the exact qualified record when the spelling provides one
//     (`A::B(...)`, or an unqualified call inside a member of `A` when
//     `A::B` exists); otherwise to *every* record sharing the last name —
//     the same textual-overload approximation the statement rules use.
//
//  3. May-suspend fixpoint. A function may suspend when
//       * its body contains a literal `co_await` / `co_yield`, or
//       * its body resumes a coroutine handle (`.resume()`) — that is the
//         primitive every simulator pump loop is built on, or
//       * it is declared to return `sim::Task<...>` and no body is visible
//         anywhere in the scanned tree (conservatively: almost every Task
//         function suspends), or
//       * any of its call sites resolves to a may-suspend function —
//         computed as a fixpoint over the call graph.
//     A call site counts as suspending only when it resolves to at least
//     one known function and *every* candidate may suspend: a name declared
//     both ways is an unresolvable textual overload, and the established
//     convention (see lint.h) is to stay quiet on those rather than taint
//     half the tree.
//
//  4. The `// lint: no-suspend` escape hatch. A function whose declaration
//     or definition line (or the line under a standalone comment) carries
//     `// lint: no-suspend` is pinned non-suspending and does not propagate
//     suspension to its callers — for audited cases like "posts the task;
//     it only runs after the caller itself suspends". The annotation cannot
//     waive a literal `co_await`/`.resume()` (that would be a lie, and the
//     pin is ignored), and one that pins nothing — no function on the line,
//     or a function that was never going to be may-suspend — is an error,
//     surfaced through the suppression-audit rule.
#ifndef TOOLS_LINT_CALLGRAPH_H_
#define TOOLS_LINT_CALLGRAPH_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lexer.h"

namespace lint {

// One call site inside a function body, as spelled.
struct CallSite {
  std::string name;       // last name component, e.g. "Flush"
  std::string qualifier;  // explicit `A::` qualifier when spelled, else ""
  int line = 0;
};

// One function (declaration and/or definition), merged across files by
// qualified name.
struct Function {
  std::string qual;  // "Class::Method" or "Name"
  std::string name;  // last component
  std::string file;  // definition site when seen, else first declaration
  int line = 0;
  bool has_body = false;
  bool returns_task = false;
  bool direct_suspend = false;  // literal co_await / co_yield / .resume()
  int direct_suspend_line = 0;
  bool no_suspend = false;  // pinned by // lint: no-suspend
  bool may_suspend = false;
  // Annotated `// lint: lock-escapes`: the function intentionally exits with
  // a lock held (ownership transfers to the caller or a spawned coroutine),
  // so the lock-balance held-at-exit check is waived for it (locks.h).
  bool lock_escapes = false;
  std::string why;  // human-readable reason for the classification
  std::vector<CallSite> calls;
};

class CallGraph {
 public:
  // Harvests function records and call sites from one lexed file. Call once
  // per file, then Finalize() exactly once.
  void AddFile(const std::string& path, const LexResult& lex);

  // Runs the may-suspend fixpoint and computes annotation-audit statuses.
  void Finalize();

  // True when a call spelled `qualifier::name(...)` (qualifier may be
  // empty) is a suspension point: it resolves to at least one known
  // function and every candidate may suspend.
  bool CallSuspends(const std::string& qualifier, const std::string& name) const;

  // All records, in discovery order (callers sort for display). Valid after
  // Finalize(); drives `--format=suspend` and the acceptance sweep.
  const std::vector<Function>& functions() const { return fns_; }

  // Audit result for a `// lint: no-suspend` annotation covering `line` of
  // `file` (see lexer.h for which lines an annotation covers).
  enum class NoSuspendUse {
    kNone,          // no function declared on that line
    kUnneeded,      // pinned a function that was never may-suspend
    kUsed,          // pinned a function that would otherwise be may-suspend
    kLiteralAwait,  // function contains co_await/.resume(); pin ignored
  };
  struct NoSuspendStatus {
    NoSuspendUse use = NoSuspendUse::kNone;
    std::string qual;  // the pinned function, when any
  };
  NoSuspendStatus NoSuspendStatusAt(const std::string& file, int line) const;

  // The record registered under `qual`, or nullptr. Valid any time after the
  // AddFile calls; classification fields are meaningful after Finalize().
  const Function* Lookup(const std::string& qual) const;

  // Candidate records for a call spelled `qualifier::name(...)` made from
  // inside `caller_class` (either may be empty): the exact qualified record
  // when the spelling provides one, else every record sharing the bare name.
  // Empty when the name is unknown. This is the same resolution order the
  // may-suspend fixpoint uses; the lock pass (locks.h) propagates its
  // may-acquire sets through it.
  std::vector<const Function*> Resolve(const std::string& qualifier,
                                       const std::string& caller_class,
                                       const std::string& name) const;

  // Qualified name of the function whose declaration or definition line
  // carries a `// lint: lock-escapes` annotation covering (file, line);
  // empty when the annotation attaches to no recorded function. Drives the
  // lock-escapes audit.
  std::string LockEscapeQualAt(const std::string& file, int line) const;

 private:
  struct PendingCall {
    size_t fn;  // index into fns_
    CallSite site;
  };

  Function& Intern(const std::string& qual, const std::string& name, const std::string& file,
                   int line, bool is_definition);
  // True when the call site resolves to candidates that all may suspend,
  // under the current fixpoint state. `out_callee` names one candidate.
  bool SiteSuspends(const CallSite& site, const std::string& caller_class,
                    std::string* out_callee) const;

  std::vector<Function> fns_;
  std::map<std::string, size_t> by_qual_;
  std::map<std::string, std::vector<size_t>> by_name_;
  // (file, line of a no-suspend-annotated function name) -> fns_ index.
  std::map<std::pair<std::string, int>, size_t> annot_sites_;
  std::map<std::pair<std::string, int>, NoSuspendStatus> annot_status_;
  // (file, line of a lock-escapes-annotated function name) -> fns_ index.
  std::map<std::pair<std::string, int>, size_t> lock_annot_sites_;
  bool finalized_ = false;
};

}  // namespace lint

#endif  // TOOLS_LINT_CALLGRAPH_H_
