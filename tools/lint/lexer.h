// A minimal C++ lexer for snfslint.
//
// Produces a flat token stream (identifiers, numbers, literals, punctuation)
// with line numbers, plus the side tables the lint rules need:
//
//  * suppressions: `// lint: <rule>-ok` comments, attached to the line they
//    appear on (and to the following line when the comment stands alone);
//  * preprocessor directives and comments are consumed, not emitted.
//
// The lexer is deliberately not a preprocessor: macros are not expanded and
// string concatenation is not performed. Lint rules operate on the token
// stream of the file as written, which is what a reviewer reads.
#ifndef TOOLS_LINT_LEXER_H_
#define TOOLS_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals
  kString,  // string and character literals (text excludes quotes)
  kPunct,   // operators and punctuation; multi-char ops merged (see lexer.cc)
};

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

// One `<rule>-ok` word from a `// lint:` comment, kept positionally so the
// suppression-audit rule can verify it still suppresses a live diagnostic.
struct SuppressionNote {
  std::string rule;
  int comment_line = 0;       // line the comment itself is on
  std::vector<int> covered;   // lines the suppression applies to
};

struct LexResult {
  std::vector<Token> tokens;
  // line -> rule ids suppressed on that line via `// lint: <rule>-ok`.
  std::map<int, std::set<std::string>> suppressions;
  // Every suppression word, in file order (audited by suppression-audit).
  std::vector<SuppressionNote> notes;
  // Lines carrying a `// lint: unstable-source` annotation: the function
  // declared on (or directly below) such a line returns a pointer/reference
  // into a container even though the return type does not say so.
  std::set<int> unstable_source_lines;
  // Lines carrying a `// lint: no-suspend` annotation: the function declared
  // on (or directly below) such a line is pinned non-suspending in the call
  // graph even though it calls may-suspend functions (see callgraph.h). The
  // annotation is audited: one that pins nothing is an error.
  std::set<int> no_suspend_lines;
  // Every `no-suspend` annotation positionally, for the audit (rule field is
  // always "no-suspend").
  std::vector<SuppressionNote> no_suspend_notes;
  // Lines carrying a `// lint: lock-escapes` annotation: the function
  // declared on (or directly below) such a line intentionally transfers
  // ownership of a held lock out of its own frame (returns it held, or hands
  // it to a spawned coroutine), so the lock-balance held-at-exit check is
  // waived for it. Audited: an annotation on a function with nothing held at
  // any exit is an error.
  std::set<int> lock_escapes_lines;
  // Every `lock-escapes` annotation positionally, for the audit (rule field
  // is always "lock-escapes").
  std::vector<SuppressionNote> lock_escapes_notes;
};

// Tokenizes `source`. Never fails: unrecognized bytes are skipped.
LexResult Lex(const std::string& source);

}  // namespace lint

#endif  // TOOLS_LINT_LEXER_H_
