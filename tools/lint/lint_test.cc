// Tests for snfslint: every rule has a _bad fixture that must fire and a
// _good fixture that must stay clean, plus direct lexer/suppression checks.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/lexer.h"
#include "tools/lint/lint.h"

namespace lint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(LINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lints one fixture registered under `as_path` and returns the rule ids of
// every diagnostic.
std::vector<std::string> RulesFiredOn(const std::string& fixture, const std::string& as_path) {
  Linter linter;
  linter.AddFile(as_path, ReadFixture(fixture));
  std::vector<std::string> rules;
  for (const Diagnostic& d : linter.Run()) {
    rules.push_back(d.rule);
  }
  return rules;
}

int CountRule(const std::vector<std::string>& rules, const std::string& rule) {
  int n = 0;
  for (const std::string& r : rules) {
    if (r == rule) {
      ++n;
    }
  }
  return n;
}

TEST(SnfslintTest, CoroRefFires) {
  std::vector<std::string> rules = RulesFiredOn("coro_ref_bad.cc", "coro_ref_bad.cc");
  EXPECT_EQ(CountRule(rules, "coro-ref"), 4);
}

TEST(SnfslintTest, CoroRefQuiet) {
  std::vector<std::string> rules = RulesFiredOn("coro_ref_good.cc", "coro_ref_good.cc");
  EXPECT_EQ(CountRule(rules, "coro-ref"), 0) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, CoroLambdaFires) {
  std::vector<std::string> rules = RulesFiredOn("coro_lambda_bad.cc", "coro_lambda_bad.cc");
  EXPECT_EQ(CountRule(rules, "coro-lambda"), 1);
}

TEST(SnfslintTest, CoroLambdaQuiet) {
  std::vector<std::string> rules = RulesFiredOn("coro_lambda_good.cc", "coro_lambda_good.cc");
  EXPECT_EQ(CountRule(rules, "coro-lambda"), 0) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, TaskDroppedFires) {
  std::vector<std::string> rules = RulesFiredOn("task_dropped_bad.cc", "task_dropped_bad.cc");
  EXPECT_EQ(CountRule(rules, "task-dropped"), 2);
}

TEST(SnfslintTest, TaskDroppedQuiet) {
  std::vector<std::string> rules = RulesFiredOn("task_dropped_good.cc", "task_dropped_good.cc");
  EXPECT_EQ(CountRule(rules, "task-dropped"), 0) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, NondetFires) {
  std::vector<std::string> rules = RulesFiredOn("nondet_bad.cc", "nondet_bad.cc");
  EXPECT_EQ(CountRule(rules, "nondet"), 5);
}

TEST(SnfslintTest, NondetQuiet) {
  std::vector<std::string> rules = RulesFiredOn("nondet_good.cc", "nondet_good.cc");
  EXPECT_EQ(CountRule(rules, "nondet"), 0) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, OrderedFiresInSensitiveDir) {
  std::vector<std::string> rules = RulesFiredOn("ordered_bad.cc", "src/sim/ordered_bad.cc");
  EXPECT_EQ(CountRule(rules, "ordered"), 2);
}

TEST(SnfslintTest, OrderedQuietOnSuppressionsAndSnapshots) {
  std::vector<std::string> rules = RulesFiredOn("ordered_good.cc", "src/sim/ordered_good.cc");
  EXPECT_EQ(CountRule(rules, "ordered"), 0) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, OrderedScopedToSensitiveDirs) {
  // The same hazardous fixture is fine outside the order-sensitive tree.
  std::vector<std::string> rules = RulesFiredOn("ordered_bad.cc", "src/workload/ordered_bad.cc");
  EXPECT_EQ(CountRule(rules, "ordered"), 0);
}

TEST(SnfslintTest, UnusedStatusFires) {
  std::vector<std::string> rules = RulesFiredOn("unused_status_bad.cc", "unused_status_bad.cc");
  EXPECT_EQ(CountRule(rules, "unused-status"), 3);
}

TEST(SnfslintTest, UnusedStatusQuiet) {
  std::vector<std::string> rules = RulesFiredOn("unused_status_good.cc", "unused_status_good.cc");
  EXPECT_EQ(CountRule(rules, "unused-status"), 0) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, AwaitStaleRefFires) {
  // Pointer from a `T*`-returning function, iterator from `.find()`,
  // reference from an `// lint: unstable-source` function, and a loop
  // back-edge use.
  std::vector<std::string> rules = RulesFiredOn("await_stale_ref_bad.cc", "await_stale_ref_bad.cc");
  EXPECT_EQ(CountRule(rules, "await-stale-ref"), 4) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, AwaitStaleRefQuiet) {
  // Re-acquisition, value copies, await-produced values, pruned suspending
  // branches, and a binding-line suppression are all clean — and the
  // suppression counts as used, so suppression-audit stays quiet too.
  std::vector<std::string> rules =
      RulesFiredOn("await_stale_ref_good.cc", "await_stale_ref_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, AwaitCachedSizeFires) {
  std::vector<std::string> rules =
      RulesFiredOn("await_cached_size_bad.cc", "await_cached_size_bad.cc");
  EXPECT_EQ(CountRule(rules, "await-cached-size"), 2) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, AwaitCachedSizeQuiet) {
  std::vector<std::string> rules =
      RulesFiredOn("await_cached_size_good.cc", "await_cached_size_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, TransitiveSuspendFires) {
  // The suspension is two call-graph hops from the victims: a pointer held
  // across the helper call and a size snapshot branched on after it.
  std::vector<std::string> rules =
      RulesFiredOn("transitive_suspend_bad.cc", "transitive_suspend_bad.cc");
  EXPECT_EQ(CountRule(rules, "await-stale-ref"), 1) << ::testing::PrintToString(rules);
  EXPECT_EQ(CountRule(rules, "await-cached-size"), 1) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, TransitiveSuspendQuiet) {
  // A visibly non-suspending callee, re-acquisition after the helper call,
  // and a value copy before it are all clean.
  std::vector<std::string> rules =
      RulesFiredOn("transitive_suspend_good.cc", "transitive_suspend_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, SuspendEscapeFires) {
  // A pointer, an iterator, and a reference each passed whole into a
  // may-suspend callee.
  std::vector<std::string> rules =
      RulesFiredOn("suspend_escape_bad.cc", "suspend_escape_bad.cc");
  EXPECT_EQ(CountRule(rules, "suspend-escape"), 3) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, SuspendEscapeQuiet) {
  // Value reads through the handle, an opaque (never-shown-to-suspend)
  // callee, and an audited handoff are all clean.
  std::vector<std::string> rules =
      RulesFiredOn("suspend_escape_good.cc", "suspend_escape_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, NoSuspendPinQuiet) {
  // The pinned helper call is not a suspension point, and the honest pin
  // audits as used.
  std::vector<std::string> rules = RulesFiredOn("no_suspend_good.cc", "no_suspend_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, NoSuspendPinAudited) {
  // A pin attached to nothing, a pin on a never-suspending declaration, and
  // a pin over a literal co_await are each suppression-audit errors.
  std::vector<std::string> rules = RulesFiredOn("no_suspend_bad.cc", "no_suspend_bad.cc");
  EXPECT_EQ(CountRule(rules, "suppression-audit"), 3) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, MaySuspendPropagatesAcrossFiles) {
  // A header-only Task declaration seeds the fixpoint; an out-of-line body
  // in another file that calls it classifies may-suspend.
  Linter linter;
  linter.AddFile("s.h", "struct S {\n  sim::Task<void> Sync();\n  void Kick();\n  "
                        "sim::Task<void> pending_;\n};\n");
  linter.AddFile("s.cc", "void S::Kick() { pending_ = Sync(); }\n");
  (void)linter.Run();
  bool found = false;
  for (const Function& f : linter.callgraph().functions()) {
    if (f.qual == "S::Kick") {
      found = true;
      EXPECT_TRUE(f.may_suspend) << f.why;
    }
    if (f.qual == "S::Sync") {
      EXPECT_TRUE(f.may_suspend) << f.why;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SnfslintTest, MixedCandidatesDoNotSuspend) {
  // A bare name declared both as a may-suspend Task and as a visibly
  // non-suspending body is an unresolvable textual overload: call sites
  // stay quiet rather than tainting half the tree.
  Linter linter;
  linter.AddFile("a.h", "struct A { sim::Task<void> Run(); };\n");
  linter.AddFile("b.h", "struct B { int Run() { return 1; } };\n");
  (void)linter.Run();
  EXPECT_FALSE(linter.callgraph().CallSuspends("", "Run"));
  EXPECT_TRUE(linter.callgraph().CallSuspends("A", "Run"));
  EXPECT_FALSE(linter.callgraph().CallSuspends("B", "Run"));
}

TEST(SnfslintTest, TraceSpanBalanceFires) {
  // A begin with no end, a co_return past an open span, and an early return
  // before the first end.
  std::vector<std::string> rules =
      RulesFiredOn("trace_span_balance_bad.cc", "trace_span_balance_bad.cc");
  EXPECT_EQ(CountRule(rules, "trace-span-balance"), 3) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, TraceSpanBalanceQuiet) {
  // End-before-each-exit, per-iteration loop spans, the RAII guard, and a
  // suppressed handoff are all clean (and the suppression counts as used).
  std::vector<std::string> rules =
      RulesFiredOn("trace_span_balance_good.cc", "trace_span_balance_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, LockBalanceFires) {
  // An early co_return, a fall-off-the-end with an accessor-minted lock, a
  // maybe-held acquire never released, the hidden CO_RETURN_IF_ERROR exit,
  // and a dropped escaped-lock obligation.
  std::vector<std::string> rules = RulesFiredOn("lock_balance_bad.cc", "lock_balance_bad.cc");
  EXPECT_EQ(CountRule(rules, "lock-balance"), 5) << ::testing::PrintToString(rules);
  EXPECT_EQ(CountRule(rules, "suppression-audit"), 0) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, LockBalanceQuiet) {
  // Release-on-every-path, ScopedLock, the null-guard pattern, a discharged
  // escaped-lock obligation, an annotated semaphore handoff, and the
  // receiving side's bare Release are all clean — including both
  // lock-escapes annotations auditing as used.
  std::vector<std::string> rules = RulesFiredOn("lock_balance_good.cc", "lock_balance_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, DoubleAcquireFires) {
  // Direct re-acquire, an unreleased loop back-edge, and a callee whose
  // may-acquire set contains the held mutex.
  std::vector<std::string> rules =
      RulesFiredOn("double_acquire_bad.cc", "double_acquire_bad.cc");
  EXPECT_EQ(CountRule(rules, "double-acquire"), 3) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, DoubleAcquireQuiet) {
  // Re-acquire after release, counting semaphores, distinct accessor
  // instances, calls after release, and accessor families across calls.
  std::vector<std::string> rules =
      RulesFiredOn("double_acquire_good.cc", "double_acquire_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, LockOrderFires) {
  // Two balanced functions acquiring the same pair in opposite orders: one
  // diagnostic per cycle, not per edge.
  std::vector<std::string> rules = RulesFiredOn("lock_order_bad.cc", "lock_order_bad.cc");
  EXPECT_EQ(CountRule(rules, "lock-order"), 1) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, LockOrderQuiet) {
  // A consistent global order, including an edge contributed through a
  // callee's may-acquire set.
  std::vector<std::string> rules = RulesFiredOn("lock_order_good.cc", "lock_order_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, LockEscapesAnnotationAudited) {
  // An annotation attached to nothing and one pinning a function that never
  // exits holding a lock are each suppression-audit errors.
  Linter linter;
  linter.AddFile("q.h",
                 "struct Q {\n"
                 "  // lint: lock-escapes\n"
                 "  sim::Task<void> Balanced();\n"
                 "  sim::Mutex mu_;\n"
                 "};\n"
                 "// lint: lock-escapes\n"
                 "int stray = 0;\n");
  linter.AddFile("q.cc",
                 "sim::Task<void> Q::Balanced() {\n"
                 "  co_await mu_.Acquire();\n"
                 "  mu_.Release();\n"
                 "}\n");
  std::vector<std::string> rules;
  for (const Diagnostic& d : linter.Run()) {
    rules.push_back(d.rule);
  }
  EXPECT_EQ(CountRule(rules, "suppression-audit"), 2) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, LockSummariesExposed) {
  // The --format=locks surface: per-function summaries with the transitive
  // may-acquire closure, harvested classes, and escape status.
  Linter linter;
  linter.AddFile("lock_order_good.cc", ReadFixture("lock_order_good.cc"));
  linter.AddFile("lock_balance_good.cc", ReadFixture("lock_balance_good.cc"));
  (void)linter.Run();
  const LockPass& locks = linter.locks();
  ASSERT_EQ(locks.classes().count("Pair::flush_"), 1u);
  ASSERT_EQ(locks.classes().count("Store::FileLock"), 1u);
  EXPECT_TRUE(locks.classes().at("Store::FileLock").is_accessor);
  EXPECT_FALSE(locks.classes().at("Store::slots_").is_mutex);
  auto it = locks.functions().find("Pair::FlushThenLogViaCallee");
  ASSERT_NE(it, locks.functions().end());
  EXPECT_EQ(it->second.may_acquire.count("Pair::flush_"), 1u);
  EXPECT_EQ(it->second.may_acquire.count("Pair::log_"), 1u)
      << "callee's acquire should propagate through the fixpoint";
  EXPECT_TRUE(locks.Escapes("Store::TakeForWrite"));
  EXPECT_FALSE(locks.Escapes("Store::ReleaseOnEveryPath"));
}

TEST(SnfslintTest, SuppressionAuditFires) {
  // One suppression that absorbs nothing and one naming an unknown rule.
  std::vector<std::string> rules =
      RulesFiredOn("suppression_audit_bad.cc", "suppression_audit_bad.cc");
  EXPECT_EQ(CountRule(rules, "suppression-audit"), 2) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, SuppressionAuditQuiet) {
  std::vector<std::string> rules =
      RulesFiredOn("suppression_audit_good.cc", "suppression_audit_good.cc");
  EXPECT_TRUE(rules.empty()) << ::testing::PrintToString(rules);
}

TEST(SnfslintTest, UnstableSourceInferredAcrossFiles) {
  // A `T*`-returning declaration in a header taints call sites in another
  // file, exactly like the Task-function tables.
  Linter linter;
  linter.AddFile("decl.h", "struct E { int v; };\nE* Find(int key);\nsim::Task<void> Nap();\n");
  linter.AddFile("use.cc",
                 "sim::Task<int> F() {\n"
                 "  E* e = Find(1);\n"
                 "  co_await Nap();\n"
                 "  co_return e->v;\n"
                 "}\n");
  std::vector<Diagnostic> diags = linter.Run();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "await-stale-ref");
  EXPECT_EQ(diags[0].file, "use.cc");
  EXPECT_EQ(diags[0].line, 4);
}

TEST(SnfslintTest, TaskFunctionsMatchedAcrossFiles) {
  // A Task-returning function declared in one file is tracked at call sites
  // in another.
  Linter linter;
  linter.AddFile("decl.h", "namespace x { sim::Task<void> Background(); }\n");
  linter.AddFile("use.cc", "void F() { x::Background(); }\n");
  std::vector<Diagnostic> diags = linter.Run();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "task-dropped");
  EXPECT_EQ(diags[0].file, "use.cc");
}

TEST(SnfslintTest, AmbiguousNamesStayQuiet) {
  // `Run` is Task-returning in one class and void in another; the textual
  // matcher cannot resolve the overload, so neither statement rule fires.
  Linter linter;
  linter.AddFile("a.h", "struct A { sim::Task<void> Run(); };\n");
  linter.AddFile("b.h", "struct B { void Run(); };\n");
  linter.AddFile("use.cc", "void F(B& b) { b.Run(); }\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(SnfslintTest, MixedTaskPayloadSkipsUnusedStatus) {
  // `Write` returns Task<Result<...>> in one class and Task<void> in
  // another: awaiting it without consuming the value is not flaggable.
  Linter linter;
  linter.AddFile("a.h", "struct A { sim::Task<base::Result<void>> Write(int fd); };\n");
  linter.AddFile("b.h", "struct B { sim::Task<void> Write(int bytes); };\n");
  linter.AddFile("use.cc", "sim::Task<void> F(B& b) { co_await b.Write(1); }\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(SnfslintTest, UnorderedVarsScopedToPairedFiles) {
  // An unordered member in one class must not taint a same-named ordered
  // container in an unrelated file.
  Linter linter;
  linter.AddFile("src/rpc/a.h", "struct A { std::unordered_map<int, int> items_; };\n");
  linter.AddFile("src/rpc/a.cc",
                 "int A::Sum() { int t = 0; for (auto& [k, v] : items_) t += v; return t; }\n");
  linter.AddFile("src/rpc/b.cc",
                 "int Other() { std::map<int, int> items_; int t = 0;"
                 " for (auto& [k, v] : items_) t += v; return t; }\n");
  std::vector<Diagnostic> diags = linter.Run();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "ordered");
  EXPECT_EQ(diags[0].file, "src/rpc/a.cc");
}

TEST(LexerTest, SuppressionOnOwnAndNextLine) {
  LexResult lex = Lex(
      "int a;  // lint: ordered-ok\n"
      "// lint: coro-ref-ok nondet-ok\n"
      "int b;\n");
  EXPECT_TRUE(lex.suppressions.at(1).count("ordered"));
  EXPECT_TRUE(lex.suppressions.at(2).count("coro-ref"));
  EXPECT_TRUE(lex.suppressions.at(3).count("coro-ref"));
  EXPECT_TRUE(lex.suppressions.at(3).count("nondet"));
  EXPECT_EQ(lex.suppressions.count(4), 0u);
}

TEST(LexerTest, BannedNamesInLiteralsAndCommentsIgnored) {
  Linter linter;
  linter.AddFile("src/sim/x.cc",
                 "// rand() in a comment\n"
                 "const char* kMsg = \"call rand() later\";\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(LexerTest, TracksLinesThroughBlockCommentsAndStrings) {
  LexResult lex = Lex("/* line1\nline2 */\nint x;\n");
  ASSERT_EQ(lex.tokens.size(), 3u);
  EXPECT_EQ(lex.tokens[0].text, "int");
  EXPECT_EQ(lex.tokens[0].line, 3);
}

}  // namespace
}  // namespace lint
