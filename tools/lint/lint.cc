#include "tools/lint/lint.h"

#include <algorithm>
#include <cstddef>

namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);
// Guards against runaway scans when a `<` is really a comparison.
constexpr size_t kScanBudget = 4000;

bool IsIdent(const std::vector<Token>& t, size_t i, const char* text = nullptr) {
  return i < t.size() && t[i].kind == TokKind::kIdent && (text == nullptr || t[i].text == text);
}

bool IsPunct(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == text;
}

// tokens[i] must be `<`; returns the index just past the matching `>`, or
// kNpos when the scan runs into statement punctuation (so `<` was a
// comparison, not a template argument list).
size_t MatchTemplate(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  size_t budget = kScanBudget;
  for (; i < t.size() && budget > 0; ++i, --budget) {
    if (t[i].kind != TokKind::kPunct) {
      continue;
    }
    const std::string& p = t[i].text;
    if (p == "<") {
      ++depth;
    } else if (p == ">") {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (p == ";" || p == "{" || p == "}") {
      return kNpos;
    }
  }
  return kNpos;
}

// tokens[i] must be `(`; returns the index just past the matching `)`.
size_t MatchParens(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  size_t budget = kScanBudget;
  for (; i < t.size() && budget > 0; ++i, --budget) {
    if (t[i].kind != TokKind::kPunct) {
      continue;
    }
    const std::string& p = t[i].text;
    if (p == "(") {
      ++depth;
    } else if (p == ")") {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return kNpos;
}

// tokens[i] must be `{`; returns the index just past the matching `}`.
size_t MatchBraces(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  size_t budget = kScanBudget * 16;
  for (; i < t.size() && budget > 0; ++i, --budget) {
    if (t[i].kind != TokKind::kPunct) {
      continue;
    }
    const std::string& p = t[i].text;
    if (p == "{") {
      ++depth;
    } else if (p == "}") {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return kNpos;
}

// Parses `ident (:: ident)*` starting at i. On success sets `last` to the
// final identifier and returns the index just past the chain; else kNpos.
size_t ParseScopedName(const std::vector<Token>& t, size_t i, std::string& last) {
  if (!IsIdent(t, i)) {
    return kNpos;
  }
  last = t[i].text;
  ++i;
  while (IsPunct(t, i, "::") && IsIdent(t, i + 1)) {
    last = t[i + 1].text;
    i += 2;
  }
  return i;
}

// Parses a call chain `ident ((:: | . | ->) ident)*` starting at i.
size_t ParseCallChain(const std::vector<Token>& t, size_t i, std::string& last) {
  if (!IsIdent(t, i)) {
    return kNpos;
  }
  last = t[i].text;
  ++i;
  while (i + 1 < t.size() && t[i].kind == TokKind::kPunct &&
         (t[i].text == "::" || t[i].text == "." || t[i].text == "->") && IsIdent(t, i + 1)) {
    last = t[i + 1].text;
    i += 2;
  }
  return i;
}

// Joins tokens [begin, end) into a readable snippet for messages.
std::string Snippet(const std::vector<Token>& t, size_t begin, size_t end) {
  std::string s;
  for (size_t i = begin; i < end && i < t.size(); ++i) {
    if (!s.empty() && (t[i].kind == TokKind::kIdent || t[i].kind == TokKind::kNumber) &&
        s.back() != ':' && s.back() != '<' && s.back() != '(' && s.back() != '&' &&
        s.back() != '*') {
      s += ' ';
    }
    s += t[i].text;
    if (s.size() > 60) {
      s += "...";
      break;
    }
  }
  return s;
}

// Keywords that begin statements we never treat as droppable calls.
bool IsStatementKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return", "co_return", "co_yield", "throw",  "delete",   "new",     "goto",
      "break",  "continue",  "using",    "typedef", "template", "public",  "private",
      "protected", "case",   "default",  "static_assert", "namespace", "struct", "class",
      "enum",   "friend",    "operator", "sizeof", "static", "constexpr", "const",
      "virtual", "inline",   "explicit", "typename", "else", "do", "try", "catch"};
  return kKeywords.count(s) > 0;
}

}  // namespace

const std::vector<std::string>& Linter::KnownRules() {
  static const std::vector<std::string> kRules = {
      "await-cached-size", "await-stale-ref", "coro-lambda",        "coro-ref",
      "double-acquire",    "lock-balance",    "lock-order",         "nondet",
      "ordered",           "suppression-audit", "suspend-escape",   "task-dropped",
      "trace-span-balance", "unused-status"};
  return kRules;
}

bool Linter::InOrderSensitiveDir(const std::string& path) {
  static const char* kDirs[] = {"src/sim/",  "src/net/",   "src/rpc/",  "src/nfs/",
                                "src/snfs/", "src/nqnfs/", "src/cache/"};
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  for (const char* dir : kDirs) {
    if (p.rfind(dir, 0) == 0 || p.find(std::string("/") + dir) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void Linter::AddFile(const std::string& path, const std::string& source) {
  FileState fs;
  fs.path = path;
  fs.lex = Lex(source);
  CollectDecls(fs);
  files_.push_back(std::move(fs));
}

void Linter::CollectDecls(FileState& fs) {
  const std::vector<Token>& t = fs.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& id = t[i].text;
    if (id == "Task" && IsPunct(t, i + 1, "<")) {
      size_t after = MatchTemplate(t, i + 1);
      if (after == kNpos) {
        continue;
      }
      // Is the task payload Status/Result-like?
      bool status_payload = false;
      for (size_t j = i + 2; j + 1 < after; ++j) {
        if (IsIdent(t, j, "Status") || IsIdent(t, j, "Result")) {
          status_payload = true;
          break;
        }
      }
      if (IsPunct(t, after, "&") || IsPunct(t, after, "&&") || IsPunct(t, after, "*")) {
        continue;  // returns a reference/pointer to a task; not a coroutine
      }
      std::string name;
      size_t k = ParseScopedName(t, after, name);
      if (k != kNpos && IsPunct(t, k, "(")) {
        fs.decls.task_fns[name] |=
            status_payload ? FileDecls::kStatusPayload : FileDecls::kOtherPayload;
      }
    } else if (id == "Status" && !IsPunct(t, i + 1, "<")) {
      std::string name;
      size_t k = ParseScopedName(t, i + 1, name);
      if (k != kNpos && IsPunct(t, k, "(")) {
        fs.decls.status_fns.insert(name);
      }
    } else if (id == "Result" && IsPunct(t, i + 1, "<")) {
      size_t after = MatchTemplate(t, i + 1);
      if (after == kNpos) {
        continue;
      }
      std::string name;
      size_t k = ParseScopedName(t, after, name);
      if (k != kNpos && IsPunct(t, k, "(")) {
        fs.decls.status_fns.insert(name);
        // `Result<T*>`: the payload is a raw pointer into some container —
        // an unstable source for the flow rules (`after - 1` is the closing
        // `>`, so `after - 2` is the last payload token).
        if (after >= 2 && IsPunct(t, after - 2, "*")) {
          fs.decls.unstable_fns.insert(name);
        }
      }
    } else if (id == "unordered_map" || id == "unordered_set") {
      if (!IsPunct(t, i + 1, "<")) {
        continue;
      }
      size_t after = MatchTemplate(t, i + 1);
      if (after == kNpos) {
        continue;
      }
      while (IsPunct(t, after, "&") || IsPunct(t, after, "*")) {
        ++after;
      }
      if (IsIdent(t, after)) {
        fs.decls.unordered_vars.insert(t[after].text);
      }
    } else if (IsIdent(t, i + 1) && IsPunct(t, i + 2, "(")) {
      // `SomeType name(`: a declaration with a non-Task, non-Status return
      // type — unless `id` is really a keyword and this is a call like
      // `return time(...)`.
      static const std::set<std::string> kCallContexts = {
          "return", "co_return", "co_await", "co_yield", "else",
          "do",     "case",      "new",      "throw",    "goto"};
      if (id != "Status" && id != "Result" && id != "Task" && kCallContexts.count(id) == 0) {
        fs.decls.other_fns.insert(t[i + 1].text);
      }
    }
  }

  // Unstable-source inference for the flow rules: `Type* Name(` declarations
  // (raw-pointer returns) and functions annotated `// lint: unstable-source`
  // (reference-returners the type system cannot reveal).
  for (size_t i = 0; i < t.size(); ++i) {
    if (IsIdent(t, i) && IsPunct(t, i + 1, "(") &&
        fs.lex.unstable_source_lines.count(t[i].line) > 0) {
      fs.decls.unstable_fns.insert(t[i].text);
    }
    if (!IsPunct(t, i, "*")) {
      continue;
    }
    size_t star_end = i;
    while (IsPunct(t, star_end + 1, "*")) {
      ++star_end;
    }
    std::string name;
    size_t k = ParseScopedName(t, star_end + 1, name);
    if (k == kNpos || !IsPunct(t, k, "(")) {
      continue;
    }
    // Walk back over the return type's scoped-name chain to its head...
    if (i == 0 || !IsIdent(t, i - 1)) {
      continue;
    }
    size_t head = i - 1;
    while (head >= 2 && IsPunct(t, head - 1, "::") && IsIdent(t, head - 2)) {
      head -= 2;
    }
    if (IsStatementKeyword(t[head].text)) {
      continue;
    }
    // ...which must sit at a declaration boundary, so `x = a * b(c)` and
    // `return a * b(c)` (multiplications) are not mistaken for declarations.
    bool at_decl_boundary = head == 0;
    if (!at_decl_boundary) {
      const Token& g = t[head - 1];
      if (g.kind == TokKind::kPunct) {
        at_decl_boundary = g.text == ";" || g.text == "{" || g.text == "}" || g.text == ":";
      } else if (g.kind == TokKind::kIdent) {
        static const std::set<std::string> kDeclPrefix = {
            "const", "static", "inline", "constexpr", "virtual", "friend",
            "explicit", "typename", "mutable"};
        at_decl_boundary = kDeclPrefix.count(g.text) > 0;
      }
    }
    if (at_decl_boundary) {
      fs.decls.unstable_fns.insert(name);
    }
  }
}

std::vector<Diagnostic> Linter::Run() {
  task_fns_.clear();
  status_fns_.clear();
  other_fns_.clear();
  unstable_fns_.clear();
  used_.clear();
  for (const FileState& fs : files_) {
    for (const auto& [name, payload] : fs.decls.task_fns) {
      task_fns_[name] |= payload;
    }
    status_fns_.insert(fs.decls.status_fns.begin(), fs.decls.status_fns.end());
    other_fns_.insert(fs.decls.other_fns.begin(), fs.decls.other_fns.end());
    unstable_fns_.insert(fs.decls.unstable_fns.begin(), fs.decls.unstable_fns.end());
  }
  // Repo-wide call graph + transitive may-suspend fixpoint; the flow rules
  // consult it to treat calls to may-suspend functions as suspension points.
  callgraph_ = CallGraph();
  for (const FileState& fs : files_) {
    callgraph_.AddFile(fs.path, fs.lex);
  }
  callgraph_.Finalize();

  std::vector<Diagnostic> out;

  // Lock-discipline pass: harvest lock classes repo-wide, flow-analyze every
  // body, then run the may-acquire fixpoint + lock-order cycle check. The
  // sink maps a (use line, binding line) pair onto the suppression machinery:
  // a `-ok` comment on either line absorbs the diagnostic, matching how the
  // flow rules treat bindings.
  lockpass_ = LockPass(&callgraph_);
  for (const FileState& fs : files_) {
    lockpass_.CollectClasses(fs.path, fs.lex);
  }
  std::map<std::string, const FileState*> by_path;
  for (const FileState& fs : files_) {
    by_path[fs.path] = &fs;
  }
  LockPass::EmitFn lock_emit = [&](const std::string& file, int line, int bind_line,
                                   const std::string& rule, std::string message) {
    auto it = by_path.find(file);
    if (it == by_path.end()) {
      return;
    }
    if (bind_line != line && Suppressed(*it->second, bind_line, rule)) {
      return;
    }
    Emit(*it->second, line, rule, std::move(message), out);
  };
  for (const FileState& fs : files_) {
    lockpass_.AnalyzeFile(fs.path, fs.lex, lock_emit);
  }
  lockpass_.Finalize(lock_emit);

  for (const FileState& fs : files_) {
    LintFile(fs, out);
  }
  // The audit needs every rule's suppression hits, so it runs after all
  // files have been linted.
  for (const FileState& fs : files_) {
    CheckSuppressions(fs, out);
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

bool Linter::Suppressed(const FileState& fs, int line, const std::string& rule) {
  auto it = fs.lex.suppressions.find(line);
  if (it == fs.lex.suppressions.end() || it->second.count(rule) == 0) {
    return false;
  }
  used_.insert({fs.path, line, rule});
  return true;
}

void Linter::Emit(const FileState& fs, int line, const std::string& rule, std::string message,
                  std::vector<Diagnostic>& out) {
  if (Suppressed(fs, line, rule)) {
    return;
  }
  out.push_back(Diagnostic{fs.path, line, rule, std::move(message)});
}

// --- rule: suppression-audit -------------------------------------------------

void Linter::CheckSuppressions(const FileState& fs, std::vector<Diagnostic>& out) {
  const std::vector<std::string>& known = KnownRules();
  for (const SuppressionNote& note : fs.lex.notes) {
    // Auditing audit suppressions would make `suppression-audit-ok`
    // self-justifying; leave them alone.
    if (note.rule == "suppression-audit") {
      continue;
    }
    if (std::find(known.begin(), known.end(), note.rule) == known.end()) {
      Emit(fs, note.comment_line, "suppression-audit",
           "`// lint: " + note.rule + "-ok` names an unknown rule id; fix the spelling or "
           "remove the comment",
           out);
      continue;
    }
    bool hit = false;
    for (int line : note.covered) {
      if (used_.count({fs.path, line, note.rule}) > 0) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      Emit(fs, note.comment_line, "suppression-audit",
           "`// lint: " + note.rule + "-ok` no longer suppresses any diagnostic; the code was "
           "fixed or the suppression is misplaced — remove it",
           out);
    }
  }
  // `// lint: no-suspend` annotations: each must pin exactly the thing it
  // claims — a function that would otherwise classify may-suspend.
  for (const SuppressionNote& note : fs.lex.no_suspend_notes) {
    CallGraph::NoSuspendStatus best;  // strongest status across covered lines
    for (int line : note.covered) {
      CallGraph::NoSuspendStatus s = callgraph_.NoSuspendStatusAt(fs.path, line);
      if (static_cast<int>(s.use) > static_cast<int>(best.use)) {
        best = s;
      }
    }
    switch (best.use) {
      case CallGraph::NoSuspendUse::kUsed:
        break;  // honest pin
      case CallGraph::NoSuspendUse::kNone:
        Emit(fs, note.comment_line, "suppression-audit",
             "`// lint: no-suspend` is not attached to any function declaration; move it onto "
             "the declaration line (or the line above) or remove it",
             out);
        break;
      case CallGraph::NoSuspendUse::kUnneeded:
        Emit(fs, note.comment_line, "suppression-audit",
             "`// lint: no-suspend` pins `" + best.qual +
                 "`, which is already classified non-suspending; remove the annotation",
             out);
        break;
      case CallGraph::NoSuspendUse::kLiteralAwait:
        Emit(fs, note.comment_line, "suppression-audit",
             "`// lint: no-suspend` cannot waive `" + best.qual +
                 "`: its body contains a literal co_await/co_yield/.resume(); the pin is "
                 "ignored — remove the annotation",
             out);
        break;
    }
  }
  // `// lint: lock-escapes` annotations: each must pin a function some
  // analyzed path of which really does exit holding a lock — otherwise the
  // waiver is dead weight (or worse, masks a future leak).
  for (const SuppressionNote& note : fs.lex.lock_escapes_notes) {
    std::string qual;
    for (int line : note.covered) {
      qual = callgraph_.LockEscapeQualAt(fs.path, line);
      if (!qual.empty()) {
        break;
      }
    }
    if (qual.empty()) {
      Emit(fs, note.comment_line, "suppression-audit",
           "`// lint: lock-escapes` is not attached to any function declaration; move it onto "
           "the declaration line (or the line above) or remove it",
           out);
    } else if (!lockpass_.Escapes(qual)) {
      Emit(fs, note.comment_line, "suppression-audit",
           "`// lint: lock-escapes` pins `" + qual +
               "`, but no analyzed path of it exits holding a lock; remove the annotation",
           out);
    }
  }
}

void Linter::LintFile(const FileState& fs, std::vector<Diagnostic>& out) {
  CheckCoroParams(fs, out);
  CheckCoroLambdas(fs, out);
  CheckNondet(fs, out);
  if (InOrderSensitiveDir(fs.path)) {
    // Effective unordered-variable set: this file plus its paired .h/.cc.
    std::set<std::string> unordered = fs.decls.unordered_vars;
    std::string stem = fs.path;
    size_t dot = stem.rfind('.');
    if (dot != std::string::npos) {
      stem.resize(dot);
    }
    for (const FileState& other : files_) {
      std::string ostem = other.path;
      size_t odot = ostem.rfind('.');
      if (odot != std::string::npos) {
        ostem.resize(odot);
      }
      if (ostem == stem) {
        unordered.insert(other.decls.unordered_vars.begin(), other.decls.unordered_vars.end());
      }
    }
    CheckOrderedIteration(fs, unordered, out);
  }
  CheckStatements(fs, out);
  CheckTraceSpanBalance(fs, out);
  CheckFlow(fs, out);
}

// --- rule: coro-ref ----------------------------------------------------------

void Linter::CheckCoroParams(const FileState& fs, std::vector<Diagnostic>& out) {
  const std::vector<Token>& t = fs.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i, "Task") || !IsPunct(t, i + 1, "<")) {
      continue;
    }
    size_t after = MatchTemplate(t, i + 1);
    if (after == kNpos) {
      continue;
    }
    if (IsPunct(t, after, "&") || IsPunct(t, after, "&&") || IsPunct(t, after, "*")) {
      continue;  // reference/pointer to Task, not a coroutine declaration
    }
    size_t lparen = kNpos;
    std::string name;
    if (IsPunct(t, after, "(")) {
      lparen = after;  // function type, e.g. inside std::function<Task<..>(..)>
      name = "<function type>";
    } else {
      size_t k = ParseScopedName(t, after, name);
      if (k == kNpos || !IsPunct(t, k, "(")) {
        continue;
      }
      lparen = k;
    }
    size_t rparen = MatchParens(t, lparen);
    if (rparen == kNpos) {
      continue;
    }
    // Split the parameter list on top-level commas.
    size_t param_begin = lparen + 1;
    int angle = 0, paren = 0, brace = 0;
    for (size_t j = lparen + 1; j < rparen; ++j) {
      bool at_end = (j == rparen - 1);
      bool at_comma = false;
      if (t[j].kind == TokKind::kPunct) {
        const std::string& p = t[j].text;
        if (p == "<") ++angle;
        else if (p == ">") --angle;
        else if (p == "(") ++paren;
        else if (p == ")") --paren;
        else if (p == "{") ++brace;
        else if (p == "}") --brace;
        else if (p == "," && angle == 0 && paren == 0 && brace == 0) at_comma = true;
      }
      if (!at_comma && !at_end) {
        continue;
      }
      size_t param_end = at_comma ? j : rparen - 1;
      bool has_const = false, has_ref = false, has_rvref = false, has_view = false;
      for (size_t p = param_begin; p < param_end; ++p) {
        if (t[p].kind == TokKind::kIdent) {
          if (t[p].text == "const") has_const = true;
          if (t[p].text == "string_view" || t[p].text == "span") has_view = true;
        } else if (t[p].kind == TokKind::kPunct) {
          if (t[p].text == "&") has_ref = true;
          if (t[p].text == "&&") has_rvref = true;
        }
      }
      const char* why = nullptr;
      if (has_view) {
        why = "string_view/span parameter";
      } else if (has_const && has_ref) {
        why = "const reference parameter";
      } else if (has_rvref) {
        why = "rvalue reference parameter";
      }
      if (why != nullptr && param_end > param_begin) {
        int line = t[param_begin].line;
        Emit(fs, line, "coro-ref",
             "coroutine " + name + " takes " + why + " `" +
                 Snippet(t, param_begin, param_end) +
                 "`; the frame may outlive the referent across co_await (pass by value)",
             out);
      }
      param_begin = j + 1;
    }
    i = rparen - 1;
  }
}

// --- rule: coro-lambda -------------------------------------------------------

void Linter::CheckCoroLambdas(const FileState& fs, std::vector<Diagnostic>& out) {
  const std::vector<Token>& t = fs.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsPunct(t, i, "[")) {
      continue;
    }
    // Attribute [[...]] or subscript `expr[...]`.
    if (IsPunct(t, i + 1, "[")) {
      continue;
    }
    if (i > 0 && (t[i - 1].kind == TokKind::kIdent || t[i - 1].kind == TokKind::kNumber ||
                  IsPunct(t, i - 1, ")") || IsPunct(t, i - 1, "]"))) {
      continue;  // subscript
    }
    // Scan the capture list for a reference capture.
    size_t close = kNpos;
    bool ref_capture = false;
    for (size_t j = i + 1; j < t.size() && j < i + 40; ++j) {
      if (IsPunct(t, j, "]")) {
        close = j;
        break;
      }
      if (IsPunct(t, j, "&")) {
        ref_capture = true;
      }
      if (IsPunct(t, j, ";") || IsPunct(t, j, "{")) {
        break;  // not a capture list
      }
    }
    if (close == kNpos || !ref_capture) {
      continue;
    }
    // Find the body: optional (params), optional -> type, then {.
    size_t j = close + 1;
    if (IsPunct(t, j, "(")) {
      j = MatchParens(t, j);
      if (j == kNpos) {
        continue;
      }
    }
    size_t lbrace = kNpos;
    for (size_t k = j; k < t.size() && k < j + 40; ++k) {
      if (IsPunct(t, k, "{")) {
        lbrace = k;
        break;
      }
      if (IsPunct(t, k, ";") || IsPunct(t, k, ")") || IsPunct(t, k, ",")) {
        break;
      }
    }
    if (lbrace == kNpos) {
      continue;
    }
    size_t rbrace = MatchBraces(t, lbrace);
    if (rbrace == kNpos) {
      continue;
    }
    for (size_t k = lbrace + 1; k + 1 < rbrace; ++k) {
      if (t[k].kind == TokKind::kIdent &&
          (t[k].text == "co_await" || t[k].text == "co_return" || t[k].text == "co_yield")) {
        Emit(fs, t[i].line, "coro-lambda",
             "reference-capturing lambda is a coroutine; captures live in the frame and can "
             "dangle (capture by value or pass state as parameters)",
             out);
        break;
      }
    }
  }
}

// --- rule: nondet ------------------------------------------------------------

void Linter::CheckNondet(const FileState& fs, std::vector<Diagnostic>& out) {
  const std::vector<Token>& t = fs.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& id = t[i].text;
    bool member = i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"));
    bool foreign_scope = false;  // qualified by something other than std
    if (i > 1 && IsPunct(t, i - 1, "::") && IsIdent(t, i - 2) && t[i - 2].text != "std" &&
        t[i - 2].text != "chrono") {
      foreign_scope = true;
    }
    if (member || foreign_scope) {
      continue;
    }
    // A type name directly before `name(` makes this a declaration of an
    // unrelated function that merely shares the banned name.
    bool declaration = false;
    if (i > 0 && t[i - 1].kind == TokKind::kIdent) {
      const std::string& prev = t[i - 1].text;
      declaration = prev != "return" && prev != "co_return" && prev != "co_await" &&
                    prev != "co_yield" && prev != "else" && prev != "do" && prev != "case";
    }
    if ((id == "rand" || id == "srand" || id == "time") && IsPunct(t, i + 1, "(") &&
        !declaration) {
      Emit(fs, t[i].line, "nondet",
           "`" + id + "()` is nondeterministic; derive all randomness/time from sim::Rng / "
           "Simulator::Now()",
           out);
    } else if (id == "random_device" || id == "system_clock") {
      Emit(fs, t[i].line, "nondet",
           "`std::" + id + "` is nondeterministic; derive all randomness/time from sim::Rng / "
           "Simulator::Now()",
           out);
    }
  }
}

// --- rule: ordered -----------------------------------------------------------

void Linter::CheckOrderedIteration(const FileState& fs, const std::set<std::string>& unordered,
                                   std::vector<Diagnostic>& out) {
  const std::vector<Token>& t = fs.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i, "for") || !IsPunct(t, i + 1, "(")) {
      continue;
    }
    size_t rparen = MatchParens(t, i + 1);
    if (rparen == kNpos) {
      continue;
    }
    // Find the range-for colon at parenthesis depth 1.
    size_t colon = kNpos;
    int depth = 0;
    for (size_t j = i + 1; j < rparen; ++j) {
      if (t[j].kind != TokKind::kPunct) {
        continue;
      }
      if (t[j].text == "(") ++depth;
      else if (t[j].text == ")") --depth;
      else if (t[j].text == ":" && depth == 1) {
        colon = j;
        break;
      } else if (t[j].text == ";") {
        break;  // classic for loop
      }
    }
    if (colon == kNpos) {
      continue;
    }
    size_t expr_begin = colon + 1;
    size_t expr_end = rparen - 1;  // token index of the closing `)`
    if (expr_begin >= expr_end) {
      continue;
    }
    bool hazard = false;
    // Direct mention of an unordered container type in the range expression.
    for (size_t j = expr_begin; j < expr_end; ++j) {
      if (IsIdent(t, j, "unordered_map") || IsIdent(t, j, "unordered_set")) {
        hazard = true;
      }
    }
    // A plain variable / member chain ending in a known unordered variable.
    if (!hazard && t[expr_end - 1].kind == TokKind::kIdent &&
        unordered.count(t[expr_end - 1].text) > 0) {
      hazard = true;
    }
    if (hazard) {
      Emit(fs, t[i].line, "ordered",
           "range-for over unordered container `" + Snippet(t, expr_begin, expr_end) +
               "`: hash order can change simulated event ordering (iterate a sorted snapshot, "
               "use an ordered container, or annotate `// lint: ordered-ok` if order is "
               "provably immaterial)",
           out);
    }
  }
}

// --- rules: task-dropped / unused-status ------------------------------------

void Linter::CheckStatements(const FileState& fs, std::vector<Diagnostic>& out) {
  const std::vector<Token>& t = fs.lex.tokens;
  bool at_stmt_start = true;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct &&
        (t[i].text == ";" || t[i].text == "{" || t[i].text == "}")) {
      at_stmt_start = true;
      continue;
    }
    if (!at_stmt_start) {
      continue;
    }
    at_stmt_start = false;
    if (t[i].kind != TokKind::kIdent && !IsPunct(t, i, "(")) {
      continue;
    }
    // `if (...)` / `while (...)` / `for (...)` / `switch (...)`: the
    // controlled statement starts after the condition.
    if (t[i].kind == TokKind::kIdent &&
        (t[i].text == "if" || t[i].text == "while" || t[i].text == "for" ||
         t[i].text == "switch")) {
      if (IsPunct(t, i + 1, "(")) {
        size_t close = MatchParens(t, i + 1);
        if (close != kNpos) {
          i = close - 1;
          at_stmt_start = true;
        }
      }
      continue;
    }
    if (t[i].kind == TokKind::kIdent && IsStatementKeyword(t[i].text)) {
      continue;
    }
    size_t j = i;
    bool voided = false;
    if (IsPunct(t, j, "(") && IsIdent(t, j + 1, "void") && IsPunct(t, j + 2, ")")) {
      voided = true;
      j += 3;
    }
    bool awaited = false;
    if (IsIdent(t, j, "co_await")) {
      awaited = true;
      ++j;
    }
    std::string callee;
    size_t k = ParseCallChain(t, j, callee);
    if (k == kNpos || !IsPunct(t, k, "(")) {
      continue;
    }
    size_t close = MatchParens(t, k);
    if (close == kNpos || !IsPunct(t, close, ";")) {
      continue;  // not a bare call statement
    }
    // A name also declared with a non-Task/Status return type is ambiguous;
    // the textual matcher cannot resolve overloads, so it stays quiet.
    bool ambiguous = other_fns_.count(callee) > 0;
    auto task_it = task_fns_.find(callee);
    if (task_it != task_fns_.end() && !ambiguous && status_fns_.count(callee) == 0) {
      if (!awaited) {
        Emit(fs, t[j].line, "task-dropped",
             "task from `" + callee +
                 "(...)` is neither co_awaited, stored, nor spawned; lazy tasks never run when "
                 "dropped",
             out);
      } else if (task_it->second == FileDecls::kStatusPayload && !voided) {
        Emit(fs, t[j].line, "unused-status",
             "Status/Result from `co_await " + callee +
                 "(...)` is dropped; handle it or cast to (void)",
             out);
      }
    } else if (!awaited && !voided && !ambiguous && status_fns_.count(callee) > 0 &&
               task_it == task_fns_.end()) {
      Emit(fs, t[j].line, "unused-status",
           "Status/Result from `" + callee + "(...)` is dropped; handle it or cast to (void)",
           out);
    }
  }
}

// --- rule: trace-span-balance ------------------------------------------------

// Manual spans (TRACE_SPAN_BEGIN / TRACE_SPAN_END) have no destructor to end
// them: an exit taken while the span is open leaks it, and every trace the
// checker or the Chrome exporter sees afterwards carries a span that never
// closes. The walk is textual and per-begin: from each TRACE_SPAN_BEGIN it
// scans forward, flagging a `return` / `co_return` seen before the first
// `TRACE_SPAN_END(var, ...)`, or the begin itself when its enclosing block
// closes without any end. Stopping at the first end keeps the
// end-before-each-exit idiom clean.
void Linter::CheckTraceSpanBalance(const FileState& fs, std::vector<Diagnostic>& out) {
  const std::vector<Token>& t = fs.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i, "TRACE_SPAN_BEGIN") || !IsPunct(t, i + 1, "(") || !IsIdent(t, i + 2)) {
      continue;
    }
    const std::string var = t[i + 2].text;
    const int begin_line = t[i].line;
    size_t after = MatchParens(t, i + 1);
    if (after == kNpos) {
      continue;
    }
    // Brace depth relative to the block the begin lives in; once it drops
    // below zero `var` is out of scope and no end can follow.
    int depth = 0;
    bool ended = false;
    bool reported = false;
    size_t budget = kScanBudget * 16;
    for (size_t j = after; j < t.size() && budget > 0; ++j, --budget) {
      const Token& tok = t[j];
      if (tok.kind == TokKind::kPunct) {
        if (tok.text == "{") {
          ++depth;
        } else if (tok.text == "}" && --depth < 0) {
          break;  // enclosing block closed
        }
        continue;
      }
      if (tok.kind != TokKind::kIdent) {
        continue;
      }
      if (tok.text == "TRACE_SPAN_END" && IsPunct(t, j + 1, "(") &&
          IsIdent(t, j + 2, var.c_str())) {
        ended = true;
        break;
      }
      if (tok.text == "return" || tok.text == "co_return") {
        Emit(fs, tok.line, "trace-span-balance",
             "`" + tok.text + "` exits while span `" + var + "` (TRACE_SPAN_BEGIN, line " +
                 std::to_string(begin_line) +
                 ") is still open; call TRACE_SPAN_END on this path or use the trace::Span "
                 "RAII guard",
             out);
        reported = true;
        break;
      }
    }
    if (!ended && !reported) {
      Emit(fs, begin_line, "trace-span-balance",
           "TRACE_SPAN_BEGIN(" + var +
               ", ...) never reaches a matching TRACE_SPAN_END in its enclosing block; end the "
               "span or use the trace::Span RAII guard",
           out);
    }
  }
}

}  // namespace lint
