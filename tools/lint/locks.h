// Lock-discipline analysis for snfslint (rules: lock-balance,
// double-acquire, lock-order).
//
// The simulator's sim::Mutex is FIFO and non-reentrant, and the protocol
// servers hang their correctness on per-file mutexes held across awaits —
// which makes three bug classes statically checkable from the same token
// streams and call graph the suspension rules use:
//
//  lock-balance    Every `co_await m.Acquire()` must reach `m.Release()` on
//                  every path out of the function, including early
//                  `co_return`s on error paths and the hidden exit inside
//                  `[CO_]RETURN_IF_ERROR`. Locks are tracked through alias
//                  bindings (`sim::Mutex& lock = FileLock(fh);`, `sim::Mutex*
//                  gate = &FileGate(fk);`) and the `sim::ScopedLock` RAII
//                  guard (released by its scope; never a balance error). A
//                  lock acquired only on some paths (`if (...) { co_await
//                  g->Acquire(); }`) is *maybe-held*: releasing it under a
//                  null-guard is the accepted pattern and stays quiet, but a
//                  maybe-held lock that reaches an exit with no release
//                  anywhere is reported. Functions that intentionally exit
//                  holding a lock — returning it to the caller or handing it
//                  to a spawned coroutine — carry `// lint: lock-escapes` on
//                  their declaration (audited; see below), and a caller that
//                  binds `x = co_await Escaper(...)` from an annotated
//                  escaper inherits a must-release obligation for `x`.
//
//  double-acquire  Acquiring a sim::Mutex the current path already holds —
//                  directly, or by calling a function whose transitive
//                  *may-acquire* set (propagated through the call graph like
//                  the may-suspend fixpoint) contains a member mutex that is
//                  firmly held at the call site. On a FIFO mutex this is a
//                  guaranteed self-deadlock, not a latent risk. Semaphores
//                  are counting and exempt. Accessor-minted locks
//                  (`FileLock(fh)`) are compared intraprocedurally by their
//                  spelled argument (`FileLock(a)` vs `FileLock(b)` differ);
//                  interprocedurally only single-instance member locks are
//                  reported, since an accessor names a family.
//
//  lock-order      A repo-wide lock-order graph: an edge A -> B is recorded
//                  whenever lock class B is acquired (directly or via a
//                  callee's may-acquire set) while A is held. A cycle means
//                  two activities can block on each other's held lock —
//                  reported as a potential deadlock at one acquire site per
//                  cycle. Self-edges are excluded (double-acquire owns
//                  those).
//
// Lock *classes* are harvested repo-wide before any body is analyzed:
// `sim::Mutex` / `sim::Semaphore` members declared in class bodies
// (`BufferCache::flush_behind_`), and `sim::Mutex&`-returning accessors
// (`SnfsServer::FileLock`) whose every call mints a lock of that class.
// Receivers that resolve to no known class stay conservative-quiet.
//
// The `// lint: lock-escapes` annotation is audited through
// suppression-audit: one that attaches to no recorded function, or to a
// function no analyzed path of which exits holding a lock, is an error. The
// annotation waives the held-at-exit check for the whole function — its
// paths transfer ownership by design and are reviewed by hand (see the
// PrepareForeignWrite anatomy in DESIGN.md §7).
//
// Deliberate approximations: lambda bodies are not analyzed (none in the
// tree takes locks); `m.Acquire()` without co_await acquires nothing at
// runtime and is ignored; conditional release under a guard that the
// analysis cannot correlate with the acquire condition is resolved by the
// runtime owner CHECKs in sim::Mutex rather than statically.
#ifndef TOOLS_LINT_LOCKS_H_
#define TOOLS_LINT_LOCKS_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/callgraph.h"
#include "tools/lint/lexer.h"

namespace lint {

// One lock class: a Mutex/Semaphore member or a Mutex&-returning accessor.
struct LockClass {
  std::string id;           // "SnfsServer::FileLock", "BufferCache::flush_behind_"
  bool is_mutex = true;     // false: counting semaphore (no double-acquire)
  bool is_accessor = false; // a family of locks minted per argument
};

// Per-function lock summary: drives --format=locks and the interprocedural
// fixpoint. Keyed by the callgraph qualified name.
struct FnLocks {
  std::string qual;
  std::string file;
  int line = 0;
  std::set<std::string> acquires;     // lock classes directly acquired
  std::set<std::string> releases;     // lock classes directly released
  std::set<std::string> may_acquire;  // transitive closure (Finalize)
  bool escapes = false;               // some exit waived by lock-escapes held a lock
  bool lock_escapes_annot = false;
  // Call sites with the firmly-held lock classes at the call, for the
  // interprocedural double-acquire check and call-edge harvesting.
  struct Call {
    std::string qualifier;  // explicit `A::` spelling, else ""
    std::string name;
    int line = 0;
    std::set<std::string> held_classes;          // firmly held at the site
    std::map<std::string, int> held_lines;       // class -> acquire line
  };
  std::vector<Call> calls;
  // Direct order edges (held class, acquired class) -> acquire line.
  std::map<std::pair<std::string, std::string>, int> edges;
};

class LockPass {
 public:
  // Sink: (file, use line, binding/acquire line, rule, message). A
  // suppression on either line absorbs the diagnostic.
  using EmitFn =
      std::function<void(const std::string&, int, int, const std::string&, std::string)>;

  LockPass() = default;
  explicit LockPass(const CallGraph* cg) : cg_(cg) {}

  // Phase 1: harvest lock classes (members + accessors) from one file. Run
  // over every file before any AnalyzeFile call.
  void CollectClasses(const std::string& path, const LexResult& lex);

  // Phase 2: flow analysis of every function body in one file. Emits
  // lock-balance and intraprocedural double-acquire diagnostics; fills the
  // per-function summaries.
  void AnalyzeFile(const std::string& path, const LexResult& lex, const EmitFn& emit);

  // Phase 3: may-acquire fixpoint over the call graph, interprocedural
  // double-acquire, and lock-order cycle detection. Call exactly once,
  // after every AnalyzeFile.
  void Finalize(const EmitFn& emit);

  // True when the analyzed function `qual` exits holding a lock under a
  // `// lint: lock-escapes` waiver (drives the annotation audit).
  bool Escapes(const std::string& qual) const;

  const std::map<std::string, LockClass>& classes() const { return classes_; }
  // Summaries keyed by qualified name; may_acquire valid after Finalize().
  const std::map<std::string, FnLocks>& functions() const { return fns_; }

 private:
  const CallGraph* cg_ = nullptr;
  std::map<std::string, LockClass> classes_;
  std::map<std::string, FnLocks> fns_;
  bool finalized_ = false;
};

}  // namespace lint

#endif  // TOOLS_LINT_LOCKS_H_
