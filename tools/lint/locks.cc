// Lock-discipline flow analysis (see locks.h for the contract).
//
// Structure mirrors flow.cc: a per-file token-geometry scan, a per-function
// statement walker over an abstract state, and branch/scope merge rules. The
// state here tracks held lock *instances* (keyed by class id, plus the
// spelled accessor argument for accessor-minted locks), alias bindings from
// local names to instances, and ScopedLock guards (released by the block
// that declares them).
#include "tools/lint/locks.h"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <tuple>

namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsIdent(const std::vector<Token>& t, size_t i, const char* text = nullptr) {
  return i < t.size() && t[i].kind == TokKind::kIdent && (text == nullptr || t[i].text == text);
}

bool IsPunct(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == text;
}

// Keywords that look like call sites (`ident (`) but are not.
bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "while",     "for",      "switch",   "catch",  "return", "co_return",
      "co_await", "co_yield", "sizeof",  "alignof",  "typeid", "new",    "delete",
      "throw",  "noexcept",  "decltype", "alignas",  "assert", "static_assert",
      "defined", "operator"};
  return kKeywords.count(s) > 0;
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "while" || s == "for" || s == "switch" || s == "catch";
}

// Per-file token geometry: bracket matching, class context, lambda bounds,
// function-signature location. Same shape as callgraph.cc's FileScan.
struct Scan {
  const std::vector<Token>& t;
  std::vector<size_t> match;
  std::vector<size_t> open_of;
  std::vector<std::string> cls;
  // Class body ranges (open brace index, name) for member-lock harvesting.
  std::vector<std::pair<size_t, std::string>> class_bodies;

  explicit Scan(const std::vector<Token>& tokens) : t(tokens) {
    BuildMatchTables();
    BuildClassContext();
  }

  void BuildMatchTables() {
    match.assign(t.size(), kNpos);
    open_of.assign(t.size(), kNpos);
    std::vector<size_t> stack;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t[i].text;
      if (p == "(" || p == "{" || p == "[") {
        stack.push_back(i);
      } else if (p == ")" || p == "}" || p == "]") {
        const char* want = p == ")" ? "(" : p == "}" ? "{" : "[";
        while (!stack.empty() && t[stack.back()].text != want) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          match[stack.back()] = i;
          open_of[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  void BuildClassContext() {
    cls.assign(t.size(), std::string());
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (!IsIdent(t, i) ||
          (t[i].text != "class" && t[i].text != "struct" && t[i].text != "union")) {
        continue;
      }
      if (i > 0 && IsIdent(t, i - 1, "enum")) {
        continue;
      }
      size_t j = i + 1;
      std::string name;
      while (IsIdent(t, j)) {
        name = t[j].text;
        ++j;
      }
      if (name.empty()) {
        continue;
      }
      for (size_t k = j; k < t.size() && k < j + 64; ++k) {
        if (IsPunct(t, k, ";") || IsPunct(t, k, ")") || IsPunct(t, k, "=")) {
          break;
        }
        if (IsPunct(t, k, "{")) {
          if (match[k] != kNpos) {
            class_bodies.push_back({k, name});
          }
          break;
        }
      }
    }
    std::vector<std::pair<size_t, std::string>> stack;  // (closer index, name)
    size_t next_open = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      while (!stack.empty() && i > stack.back().first) {
        stack.pop_back();
      }
      if (next_open < class_bodies.size() && class_bodies[next_open].first == i) {
        stack.push_back({match[i], class_bodies[next_open].second});
        ++next_open;
      }
      if (!stack.empty()) {
        cls[i] = stack.back().second;
      }
    }
  }

  bool IsLambdaStart(size_t i) const {
    if (!IsPunct(t, i, "[") || IsPunct(t, i + 1, "[")) {
      return false;
    }
    if (i > 0 && (t[i - 1].kind == TokKind::kIdent || t[i - 1].kind == TokKind::kNumber ||
                  IsPunct(t, i - 1, ")") || IsPunct(t, i - 1, "]"))) {
      return false;
    }
    return true;
  }

  size_t SkipLambda(size_t i) const {
    size_t close = match[i];
    if (close == kNpos) {
      return kNpos;
    }
    size_t j = close + 1;
    if (IsPunct(t, j, "(")) {
      if (match[j] == kNpos) {
        return kNpos;
      }
      j = match[j] + 1;
    }
    for (size_t k = j; k < t.size() && k < j + 40; ++k) {
      if (IsPunct(t, k, "{")) {
        return match[k] == kNpos ? kNpos : match[k] + 1;
      }
      if (IsPunct(t, k, ";") || IsPunct(t, k, ")") || IsPunct(t, k, ",")) {
        break;
      }
    }
    return kNpos;
  }

  // For a function body opening at `{` index b, the index of the function
  // name's last component (kNpos for control blocks, lambdas, namespaces).
  size_t SignatureName(size_t b) const {
    size_t j = b;
    while (j > 0) {
      --j;
      const Token& tok = t[j];
      if (tok.kind == TokKind::kIdent) {
        continue;
      }
      if (tok.kind == TokKind::kPunct &&
          (tok.text == "::" || tok.text == "<" || tok.text == ">" || tok.text == "*" ||
           tok.text == "&" || tok.text == "->" || tok.text == ",")) {
        continue;
      }
      break;
    }
    while (true) {
      if (!IsPunct(t, j, ")") && !IsPunct(t, j, "}")) {
        return kNpos;
      }
      size_t open = open_of[j];
      if (open == kNpos || open == 0 || !IsIdent(t, open - 1)) {
        return kNpos;
      }
      size_t head = open - 1;
      while (head >= 2 && IsPunct(t, head - 1, "::") && IsIdent(t, head - 2)) {
        head -= 2;
      }
      if (head > 0 && (IsPunct(t, head - 1, ":") || IsPunct(t, head - 1, ","))) {
        if (head < 2) {
          return kNpos;
        }
        j = head - 2;
        continue;
      }
      size_t name = open - 1;
      if (IsControlKeyword(t[name].text) || (name > 0 && IsIdent(t, name - 1, "operator")) ||
          t[name].text == "operator") {
        return kNpos;
      }
      return name;
    }
  }
};

// One held lock on the current path.
struct HeldLock {
  int line = 0;        // acquire line
  bool firm = true;    // held on every path reaching here (vs maybe)
  bool scoped = false; // ScopedLock guard: released by its declaring scope
  std::string cls;     // lock class id; empty for escaped-lock obligations
};

struct LockState {
  std::map<std::string, HeldLock> held;          // instance key -> info
  std::map<std::string, std::string> aliases;    // local name -> instance key
  std::map<std::string, std::string> scoped_vars;  // ScopedLock name -> key
  std::set<std::string> released;                // keys released on this path
  bool reachable = true;
};

// Re-scopes `inner` (a nested block's exit state) onto `outer`. Held and
// released sets propagate wholesale (a lock acquired in a block stays held
// past it); ScopedLock guards declared inside the block release at its
// closing brace; aliases propagate too (the FlushFile pattern binds an alias
// inside an `if` arm and releases through it afterwards).
void MergeScope(LockState& outer, const LockState& inner) {
  LockState merged = inner;
  for (const auto& [var, key] : inner.scoped_vars) {
    if (outer.scoped_vars.count(var) == 0) {
      merged.held.erase(key);
      merged.released.insert(key);
    }
  }
  merged.scoped_vars = outer.scoped_vars;
  outer = std::move(merged);
}

// Joins two branch exit states into `out` (the state at the branch point).
// A key held in every reachable branch stays held (firm = all-firm); a key
// held in only some branches becomes maybe-held — unless some reachable
// non-holding branch explicitly released it and the entry state did not
// firmly hold it, the conditional-release (null-guard) pattern, which drops
// the key quietly.
void MergeBranches(LockState& out, const LockState& a, const LockState& b) {
  const LockState* branches[2] = {&a, &b};
  int reachable_n = 0;
  for (const LockState* s : branches) {
    if (s->reachable) {
      ++reachable_n;
    }
  }
  std::map<std::string, HeldLock> merged;
  std::map<std::string, std::vector<const HeldLock*>> views;
  for (const LockState* s : branches) {
    if (!s->reachable) {
      continue;
    }
    for (const auto& [k, h] : s->held) {
      views[k].push_back(&h);
    }
  }
  for (const auto& [k, hs] : views) {
    HeldLock h = *hs[0];
    for (const HeldLock* other : hs) {
      h.firm = h.firm && other->firm;
      h.scoped = h.scoped || other->scoped;
      h.line = std::min(h.line, other->line);
    }
    if (static_cast<int>(hs.size()) == reachable_n) {
      merged[k] = h;
      continue;
    }
    bool released_elsewhere = false;
    for (const LockState* s : branches) {
      if (s->reachable && s->held.count(k) == 0 && s->released.count(k) > 0) {
        released_elsewhere = true;
      }
    }
    auto entry = out.held.find(k);
    bool entry_firm = entry != out.held.end() && entry->second.firm;
    if (released_elsewhere && !entry_firm) {
      continue;  // null-guard conditional release: drop quietly
    }
    h.firm = false;
    merged[k] = h;
  }
  std::set<std::string> rel = out.released;
  std::map<std::string, std::string> aliases = out.aliases;
  std::map<std::string, std::string> scoped = out.scoped_vars;
  for (const LockState* s : branches) {
    rel.insert(s->released.begin(), s->released.end());
    for (const auto& [name, key] : s->aliases) {
      auto [it, inserted] = aliases.insert({name, key});
      if (!inserted && it->second != key) {
        aliases.erase(it);  // conflicting rebinds: unknown
      }
    }
    for (const auto& [name, key] : s->scoped_vars) {
      scoped.insert({name, key});
    }
  }
  out.held = std::move(merged);
  out.released = std::move(rel);
  out.aliases = std::move(aliases);
  out.scoped_vars = std::move(scoped);
  out.reachable = a.reachable || b.reachable;
}

// Statement walker for one function body.
class FnAnalyzer {
 public:
  FnAnalyzer(const Scan& scan, const std::map<std::string, LockClass>& classes,
             const CallGraph* cg, FnLocks& fn, bool annotated,
             const LockPass::EmitFn& emit, const std::string& path)
      : t_(scan.t),
        scan_(scan),
        classes_(classes),
        cg_(cg),
        fn_(fn),
        annotated_(annotated),
        emit_(emit),
        path_(path) {
    size_t qpos = fn_.qual.find("::");
    if (qpos != std::string::npos) {
      caller_class_ = fn_.qual.substr(0, qpos);
    }
  }

  void Run(size_t body_open) {
    LockState st;
    AnalyzeStmtList(body_open + 1, scan_.match[body_open], st);
    if (st.reachable) {
      size_t close = scan_.match[body_open];
      ExitCheck(st, close < t_.size() ? t_[close].line : 0);
    }
  }

 private:
  // --- statement walker (structure mirrors flow.cc) -------------------------

  size_t StmtEnd(size_t pos, size_t end) const {
    for (size_t i = pos; i < end; ++i) {
      if (t_[i].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t_[i].text;
      if (p == "(" || p == "[" || p == "{") {
        if (scan_.match[i] != kNpos && scan_.match[i] < end) {
          i = scan_.match[i];
          continue;
        }
        return end;
      }
      if (p == ";" || p == "}") {
        return i;
      }
    }
    return end;
  }

  void AnalyzeStmtList(size_t begin, size_t end, LockState& st) {
    size_t pos = begin;
    size_t guard = 0;
    while (pos < end && guard++ < t_.size()) {
      pos = AnalyzeStmt(pos, end, st);
    }
  }

  size_t AnalyzeStmt(size_t pos, size_t end, LockState& st) {
    if (pos >= end) {
      return end;
    }
    if (IsPunct(t_, pos, ";")) {
      return pos + 1;
    }
    if (IsPunct(t_, pos, "{")) {
      size_t close = scan_.match[pos];
      if (close == kNpos || close > end) {
        return end;
      }
      LockState inner = st;
      AnalyzeStmtList(pos + 1, close, inner);
      MergeScope(st, inner);
      return close + 1;
    }
    if (t_[pos].kind == TokKind::kIdent) {
      const std::string& kw = t_[pos].text;
      if (kw == "if") {
        return AnalyzeIf(pos, end, st);
      }
      if (kw == "while") {
        return AnalyzeWhile(pos, end, st);
      }
      if (kw == "do") {
        return AnalyzeDo(pos, end, st);
      }
      if (kw == "for") {
        return AnalyzeFor(pos, end, st);
      }
      if (kw == "switch") {
        return AnalyzeSwitch(pos, end, st);
      }
      if (kw == "try") {
        return AnalyzeTry(pos, end, st);
      }
      if (kw == "return" || kw == "co_return") {
        size_t semi = StmtEnd(pos + 1, end);
        ProcessStmt(pos + 1, semi, st);
        if (st.reachable) {
          ExitCheck(st, t_[pos].line);
        }
        st.reachable = false;
        return semi + 1;
      }
      if (kw == "throw") {
        size_t semi = StmtEnd(pos + 1, end);
        ProcessStmt(pos + 1, semi, st);
        st.reachable = false;  // unwinds; catch-side release is out of scope
        return semi + 1;
      }
      if (kw == "CO_RETURN_IF_ERROR" || kw == "RETURN_IF_ERROR" ||
          kw == "CO_ASSIGN_OR_RETURN" || kw == "ASSIGN_OR_RETURN") {
        // Hidden conditional exit: the error branch leaves the function here.
        size_t semi = StmtEnd(pos, end);
        ProcessStmt(pos, semi, st);
        if (st.reachable) {
          ExitCheck(st, t_[pos].line);
        }
        return semi + 1;
      }
      if (kw == "break" || kw == "continue" || kw == "goto") {
        st.reachable = false;
        return StmtEnd(pos, end) + 1;
      }
      if (kw == "case") {
        for (size_t i = pos + 1; i < end; ++i) {
          if (IsPunct(t_, i, ":")) {
            return i + 1;
          }
        }
        return end;
      }
      if (kw == "default" && IsPunct(t_, pos + 1, ":")) {
        return pos + 2;
      }
      if (kw == "else") {
        return AnalyzeStmt(pos + 1, end, st);
      }
    }
    size_t semi = StmtEnd(pos, end);
    ProcessStmt(pos, semi, st);
    return semi + 1;
  }

  size_t AnalyzeIf(size_t pos, size_t end, LockState& st) {
    size_t lparen = pos + 1;
    if (IsIdent(t_, lparen, "constexpr")) {
      ++lparen;
    }
    if (!IsPunct(t_, lparen, "(") || scan_.match[lparen] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    size_t cclose = scan_.match[lparen];
    ProcessStmt(lparen + 1, cclose, st);
    LockState then_state = st;
    size_t after_then = AnalyzeStmt(cclose + 1, end, then_state);
    if (IsIdent(t_, after_then, "else") && after_then < end) {
      LockState else_state = st;
      size_t after_else = AnalyzeStmt(after_then + 1, end, else_state);
      MergeBranches(st, then_state, else_state);
      return after_else;
    }
    LockState skip_state = st;
    MergeBranches(st, then_state, skip_state);
    return after_then;
  }

  size_t AnalyzeWhile(size_t pos, size_t end, LockState& st) {
    size_t lparen = pos + 1;
    if (!IsPunct(t_, lparen, "(") || scan_.match[lparen] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    size_t cclose = scan_.match[lparen];
    LockState s = st;
    size_t after = cclose + 1;
    // Two passes: the second sees locks still held from the first iteration
    // (that is what makes an unreleased loop re-acquire a double-acquire).
    for (int pass = 0; pass < 2; ++pass) {
      ProcessStmt(lparen + 1, cclose, s);
      LockState body = s;
      after = AnalyzeStmt(cclose + 1, end, body);
      MergeScope(s, body);
      if (!s.reachable) {
        break;
      }
    }
    LockState pre = st;
    MergeBranches(st, s, pre);
    st.reachable = true;
    return after;
  }

  size_t AnalyzeDo(size_t pos, size_t end, LockState& st) {
    LockState s = st;
    size_t after_body = pos + 1;
    for (int pass = 0; pass < 2; ++pass) {
      LockState body = s;
      after_body = AnalyzeStmt(pos + 1, end, body);
      MergeScope(s, body);
      if (!s.reachable) {
        s.reachable = true;
      }
      if (IsIdent(t_, after_body, "while") && IsPunct(t_, after_body + 1, "(") &&
          scan_.match[after_body + 1] != kNpos) {
        ProcessStmt(after_body + 2, scan_.match[after_body + 1], s);
      }
    }
    MergeScope(st, s);
    if (IsIdent(t_, after_body, "while") && IsPunct(t_, after_body + 1, "(") &&
        scan_.match[after_body + 1] != kNpos) {
      return StmtEnd(scan_.match[after_body + 1], end) + 1;
    }
    return after_body;
  }

  size_t AnalyzeFor(size_t pos, size_t end, LockState& st) {
    size_t lparen = pos + 1;
    if (!IsPunct(t_, lparen, "(") || scan_.match[lparen] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    size_t cclose = scan_.match[lparen];
    size_t colon = kNpos, semi1 = kNpos, semi2 = kNpos;
    int depth = 0;
    for (size_t j = lparen; j < cclose; ++j) {
      if (t_[j].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t_[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      else if (depth == 1 && p == ":" && semi1 == kNpos) { colon = j; break; }
      else if (depth == 1 && p == ";") {
        (semi1 == kNpos ? semi1 : semi2) = j;
      }
    }
    LockState s = st;
    if (colon != kNpos) {
      ProcessStmt(colon + 1, cclose, s);
    } else if (semi1 != kNpos) {
      ProcessStmt(lparen + 1, semi1, s);
    }
    size_t after = cclose + 1;
    for (int pass = 0; pass < 2; ++pass) {
      if (colon == kNpos && semi1 != kNpos) {
        ProcessStmt(semi1 + 1, semi2 == kNpos ? cclose : semi2, s);
      }
      LockState body = s;
      after = AnalyzeStmt(cclose + 1, end, body);
      MergeScope(s, body);
      if (!s.reachable) {
        break;
      }
      if (colon == kNpos && semi2 != kNpos) {
        ProcessStmt(semi2 + 1, cclose, s);
      }
    }
    LockState pre = st;
    MergeBranches(st, s, pre);
    st.reachable = true;
    return after;
  }

  size_t AnalyzeSwitch(size_t pos, size_t end, LockState& st) {
    size_t lparen = pos + 1;
    if (!IsPunct(t_, lparen, "(") || scan_.match[lparen] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    size_t cclose = scan_.match[lparen];
    ProcessStmt(lparen + 1, cclose, st);
    if (IsPunct(t_, cclose + 1, "{") && scan_.match[cclose + 1] != kNpos) {
      LockState inner = st;
      AnalyzeStmtList(cclose + 2, scan_.match[cclose + 1], inner);
      inner.reachable = true;
      MergeScope(st, inner);
      return scan_.match[cclose + 1] + 1;
    }
    return AnalyzeStmt(cclose + 1, end, st);
  }

  size_t AnalyzeTry(size_t pos, size_t end, LockState& st) {
    if (!IsPunct(t_, pos + 1, "{") || scan_.match[pos + 1] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    LockState entry = st;
    LockState try_state = st;
    AnalyzeStmtList(pos + 2, scan_.match[pos + 1], try_state);
    MergeScope(st, try_state);
    size_t next = scan_.match[pos + 1] + 1;
    while (IsIdent(t_, next, "catch") && IsPunct(t_, next + 1, "(") &&
           scan_.match[next + 1] != kNpos && IsPunct(t_, scan_.match[next + 1] + 1, "{") &&
           scan_.match[scan_.match[next + 1] + 1] != kNpos) {
      size_t body_open = scan_.match[next + 1] + 1;
      LockState catch_state = entry;
      AnalyzeStmtList(body_open + 1, scan_.match[body_open], catch_state);
      LockState main_path = st;
      MergeBranches(st, main_path, catch_state);
      next = scan_.match[body_open] + 1;
    }
    return next;
  }

  // --- lock events ----------------------------------------------------------

  // Class id of the accessor named `name` callable from this function:
  // caller-class-qualified first, else a unique suffix match repo-wide.
  std::string ResolveAccessor(const std::string& name) const {
    if (!caller_class_.empty()) {
      auto it = classes_.find(caller_class_ + "::" + name);
      if (it != classes_.end() && it->second.is_accessor) {
        return it->first;
      }
    }
    std::string found;
    for (const auto& [id, c] : classes_) {
      if (!c.is_accessor) {
        continue;
      }
      if (id.size() > name.size() + 2 &&
          id.compare(id.size() - name.size(), name.size(), name) == 0 &&
          id[id.size() - name.size() - 1] == ':') {
        if (!found.empty()) {
          return std::string();  // ambiguous
        }
        found = id;
      }
    }
    return found;
  }

  // The lock instance named by the receiver chain ending at token `j` (the
  // token just before `.Acquire` / `->Release` / the ScopedLock ctor's `)`).
  // Empty when the receiver resolves to no known lock (conservative-quiet).
  std::string KeyEndingAt(size_t j, const LockState& st, std::string* cls) const {
    cls->clear();
    if (IsPunct(t_, j, ")")) {
      // Accessor call: `FileLock(req.fh)`.
      size_t open = scan_.open_of[j];
      if (open == kNpos || open == 0 || !IsIdent(t_, open - 1)) {
        return std::string();
      }
      std::string id = ResolveAccessor(t_[open - 1].text);
      if (id.empty()) {
        return std::string();
      }
      std::string arg;
      for (size_t k = open + 1; k < j; ++k) {
        arg += t_[k].text;
      }
      *cls = id;
      return id + "(" + arg + ")";
    }
    if (IsIdent(t_, j)) {
      const std::string& name = t_[j].text;
      auto al = st.aliases.find(name);
      if (al != st.aliases.end()) {
        std::string key = al->second;
        size_t paren = key.find('(');
        std::string id = paren == std::string::npos ? key : key.substr(0, paren);
        if (classes_.count(id) > 0) {
          *cls = id;
        }
        return key;
      }
      if (!caller_class_.empty()) {
        auto it = classes_.find(caller_class_ + "::" + name);
        if (it != classes_.end() && !it->second.is_accessor) {
          *cls = it->first;
          return it->first;
        }
      }
    }
    return std::string();
  }

  void DoAcquire(const std::string& key, const std::string& cls, int line, bool scoped,
                 LockState& st) {
    if (!cls.empty()) {
      fn_.acquires.insert(cls);
    }
    bool is_mutex = !cls.empty() && classes_.at(cls).is_mutex;
    auto it = st.held.find(key);
    if (it != st.held.end() && it->second.firm && is_mutex &&
        reported_.insert({key + "#da", line}).second) {
      emit_(path_, line, it->second.line, "double-acquire",
            "`" + key + "` is already held on this path (acquired at line " +
                std::to_string(it->second.line) +
                "); a second co_await ...Acquire() on a FIFO sim::Mutex queues this "
                "activity behind itself and never returns (self-deadlock)");
    }
    if (!cls.empty()) {
      for (const auto& [k, h] : st.held) {
        if (h.firm && !h.cls.empty() && h.cls != cls) {
          fn_.edges.insert({{h.cls, cls}, line});
        }
      }
    }
    st.held[key] = HeldLock{line, true, scoped, cls};
    st.released.erase(key);
  }

  void DoRelease(const std::string& key, const std::string& cls, LockState& st) {
    if (!cls.empty()) {
      fn_.releases.insert(cls);
    }
    // Releasing a key this path never acquired stays quiet: ownership may
    // have been received from an annotated escaper (the AsyncStore pattern).
    st.held.erase(key);
    st.released.insert(key);
  }

  void ExitCheck(const LockState& st, int line) {
    for (const auto& [key, h] : st.held) {
      if (h.scoped) {
        continue;  // the guard's destructor releases during unwind
      }
      if (annotated_) {
        fn_.escapes = true;  // waived by // lint: lock-escapes (audited)
        continue;
      }
      if (!reported_.insert({key, line}).second) {
        continue;
      }
      if (h.firm) {
        emit_(path_, line, h.line, "lock-balance",
              "`" + key + "` acquired at line " + std::to_string(h.line) +
                  " is still held when this path exits the function; release it on every "
                  "path, use sim::ScopedLock, or annotate the function `// lint: "
                  "lock-escapes` if ownership intentionally transfers out");
      } else {
        emit_(path_, line, h.line, "lock-balance",
              "`" + key + "` acquired at line " + std::to_string(h.line) +
                  " (on only some paths) may still be held when this path exits the "
                  "function and is never released; release it under the same condition "
                  "or annotate `// lint: lock-escapes`");
      }
    }
  }

  // `sim::ScopedLock name(receiver);` — binds a guard.
  void DetectScopedDecl(size_t begin, size_t end, LockState& st) {
    size_t k = begin;
    if (IsIdent(t_, k, "sim") && IsPunct(t_, k + 1, "::")) {
      k += 2;
    }
    if (!IsIdent(t_, k, "ScopedLock") || !IsIdent(t_, k + 1) || !IsPunct(t_, k + 2, "(")) {
      return;
    }
    size_t rp = scan_.match[k + 2];
    if (rp == kNpos || rp > end) {
      return;
    }
    std::string cls;
    std::string key = KeyEndingAt(rp - 1, st, &cls);
    if (!key.empty()) {
      st.scoped_vars[t_[k + 1].text] = key;
    }
  }

  // `lhs = rhs` at depth 0: alias bindings (`sim::Mutex& lock = FileLock(fh)`,
  // `gate = &FileGate(fk)`) and escaped-lock obligations
  // (`write_lock = co_await PrepareForeignWrite(...)`).
  void DetectBinding(size_t begin, size_t end, LockState& st) {
    size_t eq = kNpos;
    int depth = 0;
    for (size_t j = begin; j < end; ++j) {
      if (t_[j].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t_[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      else if (p == "=" && depth == 0) {
        eq = j;
        break;
      }
    }
    if (eq == kNpos || eq + 1 >= end) {
      return;
    }
    std::string name;
    for (size_t j = begin; j < eq; ++j) {
      if (t_[j].kind == TokKind::kPunct &&
          (t_[j].text == "." || t_[j].text == "->" || t_[j].text == "[")) {
        return;  // member / subscript store
      }
      if (t_[j].kind == TokKind::kIdent) {
        name = t_[j].text;
      }
    }
    if (name.empty()) {
      return;
    }
    size_t r = eq + 1;
    if (IsIdent(t_, r, "co_await")) {
      // `x = co_await F(...)`: an annotated escaper hands its lock to us.
      size_t c = r + 1;
      std::string qualifier;
      while (IsIdent(t_, c) && IsPunct(t_, c + 1, "::")) {
        qualifier = t_[c].text;
        c += 2;
      }
      if (!IsIdent(t_, c) || !IsPunct(t_, c + 1, "(") || cg_ == nullptr) {
        return;
      }
      for (const Function* cand : cg_->Resolve(qualifier, caller_class_, t_[c].text)) {
        if (cand->lock_escapes) {
          std::string key = "lock returned by `" + cand->qual + "`";
          st.aliases[name] = key;
          st.held[key] = HeldLock{t_[c].line, false, false, std::string()};
          st.released.erase(key);
          return;
        }
      }
      return;
    }
    if (IsPunct(t_, r, "&")) {
      ++r;
    }
    std::string cls;
    std::string key;
    if (IsIdent(t_, r) && IsPunct(t_, r + 1, "(") && scan_.match[r + 1] != kNpos &&
        scan_.match[r + 1] < end) {
      key = KeyEndingAt(scan_.match[r + 1], st, &cls);  // accessor call
    } else if (IsIdent(t_, r) && (r + 1 >= end || IsPunct(t_, r + 1, ";"))) {
      key = KeyEndingAt(r, st, &cls);  // alias copy or member name
    }
    if (!key.empty()) {
      st.aliases[name] = key;
    } else if (st.aliases.count(name) > 0 && IsIdent(t_, r, "nullptr")) {
      st.aliases.erase(name);
    }
  }

  void ProcessStmt(size_t begin, size_t end, LockState& st) {
    if (!st.reachable || begin >= end) {
      return;
    }
    DetectScopedDecl(begin, end, st);
    DetectBinding(begin, end, st);
    bool has_await = false;
    for (size_t i = begin; i < end; ++i) {
      if (IsIdent(t_, i, "co_await")) {
        has_await = true;
        break;
      }
    }
    for (size_t i = begin; i < end; ++i) {
      if (scan_.IsLambdaStart(i)) {
        size_t past = scan_.SkipLambda(i);
        if (past != kNpos && past <= end) {
          i = past - 1;
          continue;
        }
      }
      if (t_[i].kind != TokKind::kIdent) {
        continue;
      }
      const std::string& id = t_[i].text;
      if (id == "co_await" && IsIdent(t_, i + 1) && i + 2 >= end) {
        // `co_await guard;` — a ScopedLock acquiring.
        auto sv = st.scoped_vars.find(t_[i + 1].text);
        if (sv != st.scoped_vars.end()) {
          std::string key = sv->second;
          size_t paren = key.find('(');
          std::string cls = paren == std::string::npos ? key : key.substr(0, paren);
          if (classes_.count(cls) == 0) {
            cls.clear();
          }
          DoAcquire(key, cls, t_[i + 1].line, /*scoped=*/true, st);
        }
        continue;
      }
      bool method = IsPunct(t_, i + 1, "(") && i > 0 &&
                    (IsPunct(t_, i - 1, ".") || IsPunct(t_, i - 1, "->"));
      if (id == "Acquire" && method) {
        // Without co_await the Acquirer is discarded and nothing locks.
        if (has_await && i >= 2) {
          std::string cls;
          std::string key = KeyEndingAt(i - 2, st, &cls);
          if (!key.empty()) {
            DoAcquire(key, cls, t_[i].line, /*scoped=*/false, st);
          }
        }
        continue;
      }
      if (id == "Release" && method) {
        if (i >= 2) {
          std::string cls;
          std::string key = KeyEndingAt(i - 2, st, &cls);
          if (!key.empty()) {
            DoRelease(key, cls, st);
          }
        }
        continue;
      }
      if (id == "Acquire" || id == "Release") {
        continue;
      }
      if (!IsPunct(t_, i + 1, "(") || IsCallKeyword(id)) {
        continue;
      }
      if (i > 0 && IsPunct(t_, i - 1, "~")) {
        continue;
      }
      FnLocks::Call call;
      call.name = id;
      call.line = t_[i].line;
      if (i >= 2 && IsPunct(t_, i - 1, "::") && IsIdent(t_, i - 2)) {
        call.qualifier = t_[i - 2].text;
      }
      for (const auto& [k, h] : st.held) {
        if (h.firm && !h.cls.empty()) {
          call.held_classes.insert(h.cls);
          call.held_lines.insert({h.cls, h.line});
        }
      }
      if (seen_calls_.insert({call.qualifier, call.name, call.line}).second) {
        fn_.calls.push_back(std::move(call));
      }
    }
  }

  const std::vector<Token>& t_;
  const Scan& scan_;
  const std::map<std::string, LockClass>& classes_;
  const CallGraph* cg_;
  FnLocks& fn_;
  bool annotated_;
  const LockPass::EmitFn& emit_;
  const std::string& path_;
  std::string caller_class_;
  std::set<std::pair<std::string, int>> reported_;
  std::set<std::tuple<std::string, std::string, int>> seen_calls_;
};

}  // namespace

void LockPass::CollectClasses(const std::string& path, const LexResult& lex) {
  (void)path;
  const std::vector<Token>& t = lex.tokens;
  Scan scan(t);
  // Mutex&-returning accessors: `Mutex& Name(` anywhere (in-class declaration
  // or out-of-line `Mutex& Class::Name(` definition).
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!IsIdent(t, i, "Mutex") || !IsPunct(t, i + 1, "&")) {
      continue;
    }
    size_t j = i + 2;
    std::string explicit_cls;
    std::string name;
    if (!IsIdent(t, j)) {
      continue;
    }
    name = t[j].text;
    while (IsPunct(t, j + 1, "::") && IsIdent(t, j + 2)) {
      explicit_cls = name.empty() ? explicit_cls : t[j].text;
      name = t[j + 2].text;
      j += 2;
    }
    if (!IsPunct(t, j + 1, "(")) {
      continue;
    }
    std::string cls = !explicit_cls.empty() ? explicit_cls : scan.cls[j];
    if (cls.empty()) {
      continue;  // free function returning Mutex&: no class to key by
    }
    std::string id = cls + "::" + name;
    classes_[id] = LockClass{id, /*is_mutex=*/true, /*is_accessor=*/true};
  }
  // Mutex / Semaphore members at class-body depth 1 (skipping nested braces
  // keeps method-body locals out).
  for (const auto& [open, cls_name] : scan.class_bodies) {
    size_t close = scan.match[open];
    for (size_t i = open + 1; i < close; ++i) {
      if (IsPunct(t, i, "{")) {
        if (scan.match[i] != kNpos && scan.match[i] < close) {
          i = scan.match[i];
        }
        continue;
      }
      bool is_mutex = IsIdent(t, i, "Mutex");
      bool is_sem = IsIdent(t, i, "Semaphore");
      if (!is_mutex && !is_sem) {
        continue;
      }
      if (!IsIdent(t, i + 1)) {
        continue;
      }
      // `Mutex name_;`, `Semaphore budget_{4};`, `Semaphore s_ = ...;` — but
      // `Mutex Name(` here would be a member function returning Mutex.
      if (!(IsPunct(t, i + 2, ";") || IsPunct(t, i + 2, "{") || IsPunct(t, i + 2, "="))) {
        continue;
      }
      std::string id = cls_name + "::" + t[i + 1].text;
      classes_[id] = LockClass{id, is_mutex, /*is_accessor=*/false};
    }
  }
}

void LockPass::AnalyzeFile(const std::string& path, const LexResult& lex,
                           const EmitFn& emit) {
  const std::vector<Token>& t = lex.tokens;
  Scan scan(t);
  for (size_t b = 0; b < t.size(); ++b) {
    if (!IsPunct(t, b, "{") || scan.match[b] == kNpos) {
      continue;
    }
    size_t name = scan.SignatureName(b);
    if (name == kNpos) {
      continue;
    }
    std::string last = t[name].text;
    std::string qual = last;
    if (name >= 2 && IsPunct(t, name - 1, "::") && IsIdent(t, name - 2)) {
      qual = t[name - 2].text + "::" + last;
    } else if (!scan.cls[name].empty()) {
      qual = scan.cls[name] + "::" + last;
    }
    FnLocks& fn = fns_[qual];
    if (fn.qual.empty()) {
      fn.qual = qual;
      fn.file = path;
      fn.line = t[name].line;
    }
    const Function* cf = cg_ != nullptr ? cg_->Lookup(qual) : nullptr;
    bool annotated = cf != nullptr && cf->lock_escapes;
    fn.lock_escapes_annot = fn.lock_escapes_annot || annotated;
    FnAnalyzer analyzer(scan, classes_, cg_, fn, annotated, emit, path);
    analyzer.Run(b);
  }
}

bool LockPass::Escapes(const std::string& qual) const {
  auto it = fns_.find(qual);
  return it != fns_.end() && it->second.escapes;
}

void LockPass::Finalize(const EmitFn& emit) {
  finalized_ = true;
  for (auto& [qual, fn] : fns_) {
    fn.may_acquire = fn.acquires;
  }
  // Callee may-acquire sets, under the all-candidates-agree convention the
  // may-suspend fixpoint uses: a class propagates through a call site only
  // when every candidate the name resolves to may acquire it; a candidate
  // with no analyzed body contributes nothing.
  auto callee_acquires = [&](const FnLocks& fn, const FnLocks::Call& call,
                             std::set<std::string>& out) {
    out.clear();
    if (cg_ == nullptr) {
      return;
    }
    std::string caller_class;
    size_t qpos = fn.qual.find("::");
    if (qpos != std::string::npos) {
      caller_class = fn.qual.substr(0, qpos);
    }
    std::vector<const Function*> cands = cg_->Resolve(call.qualifier, caller_class, call.name);
    bool first = true;
    for (const Function* cand : cands) {
      auto it = fns_.find(cand->qual);
      std::set<std::string> ma =
          it == fns_.end() ? std::set<std::string>() : it->second.may_acquire;
      if (first) {
        out = std::move(ma);
        first = false;
      } else {
        std::set<std::string> inter;
        std::set_intersection(out.begin(), out.end(), ma.begin(), ma.end(),
                              std::inserter(inter, inter.begin()));
        out = std::move(inter);
      }
      if (out.empty()) {
        return;
      }
    }
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [qual, fn] : fns_) {
      std::set<std::string> ma;
      for (const FnLocks::Call& call : fn.calls) {
        callee_acquires(fn, call, ma);
        for (const std::string& cls : ma) {
          if (fn.may_acquire.insert(cls).second) {
            changed = true;
          }
        }
      }
    }
  }
  // Interprocedural double-acquire and call-propagated order edges.
  std::map<std::pair<std::string, std::string>, std::pair<std::string, int>> edges;
  for (const auto& [qual, fn] : fns_) {
    for (const auto& [e, line] : fn.edges) {
      edges.insert({e, {fn.file, line}});
    }
  }
  for (const auto& [qual, fn] : fns_) {
    std::set<std::string> ma;
    for (const FnLocks::Call& call : fn.calls) {
      if (call.held_classes.empty()) {
        continue;
      }
      callee_acquires(fn, call, ma);
      for (const std::string& cls : ma) {
        auto lc = classes_.find(cls);
        if (lc == classes_.end()) {
          continue;
        }
        if (call.held_classes.count(cls) > 0) {
          // A single-instance member mutex the callee re-acquires is a
          // guaranteed self-deadlock; an accessor class names a family of
          // locks whose arguments may differ across the call, so it stays
          // conservative-quiet interprocedurally.
          if (lc->second.is_mutex && !lc->second.is_accessor) {
            emit(fn.file, call.line, call.held_lines.at(cls), "double-acquire",
                 "calling `" + call.name + "(...)` while `" + cls +
                     "` is held (acquired at line " +
                     std::to_string(call.held_lines.at(cls)) +
                     "); every candidate for the call may acquire `" + cls +
                     "` again — self-deadlock on a FIFO sim::Mutex");
          }
          continue;
        }
        for (const std::string& held : call.held_classes) {
          if (held != cls) {
            edges.insert({{held, cls}, {fn.file, call.line}});
          }
        }
      }
    }
  }
  // Lock-order cycles: Tarjan SCC over the class-level graph; every SCC with
  // two or more nodes is a set of locks some two activities can acquire in
  // opposite orders. Self-edges cannot occur (filtered above; double-acquire
  // owns same-lock re-acquisition).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [e, site] : edges) {
    adj[e.first].push_back(e.second);
    adj[e.second];  // ensure the node exists
  }
  std::map<std::string, int> index, low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int next_index = 0;
  std::function<void(const std::string&)> strongconnect = [&](const std::string& v) {
    index[v] = low[v] = next_index++;
    stack.push_back(v);
    on_stack.insert(v);
    for (const std::string& w : adj[v]) {
      if (index.count(w) == 0) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack.count(w) > 0) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        scc.push_back(w);
        if (w == v) {
          break;
        }
      }
      if (scc.size() >= 2) {
        sccs.push_back(std::move(scc));
      }
    }
  };
  for (const auto& [v, nbrs] : adj) {
    if (index.count(v) == 0) {
      strongconnect(v);
    }
  }
  for (std::vector<std::string>& scc : sccs) {
    std::sort(scc.begin(), scc.end());
    std::set<std::string> members(scc.begin(), scc.end());
    std::string cycle;
    for (const std::string& m : scc) {
      cycle += (cycle.empty() ? "" : ", ") + m;
    }
    // Report at the first (sorted) in-cycle edge's acquire site.
    for (const auto& [e, site] : edges) {
      if (members.count(e.first) == 0 || members.count(e.second) == 0) {
        continue;
      }
      emit(site.first, site.second, site.second, "lock-order",
           "lock-order cycle among {" + cycle + "}: `" + e.second +
               "` is acquired here while `" + e.first +
               "` is held, and another path acquires them in the opposite order — two "
               "activities can each hold one lock and wait forever on the other; pick one "
               "global order and acquire in it everywhere");
      break;
    }
  }
}

}  // namespace lint
