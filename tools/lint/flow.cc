// Flow-sensitive suspension-point analysis (rules: await-stale-ref,
// await-cached-size, suspend-escape).
//
// The pass walks every function body that contains a suspension point — a
// literal `co_await` / `co_yield`, or a call that the repo-wide call graph
// (callgraph.h) classifies as may-suspend — parsing the token stream into a
// statement tree. An abstract state maps local variable names to the *unstable source*
// they were bound from — a function returning a raw pointer / reference into
// a container, a container lookup (`.find()`, `.begin()`, `operator[]`,
// `.at()`), the address of a container element, or a size/emptiness snapshot.
// Crossing a suspension point marks every tracked binding stale; a stale
// binding that is subsequently dereferenced (await-stale-ref) or branched on
// (await-cached-size) without re-acquisition is diagnosed.
//
// Deliberate approximations, chosen to keep the idiomatic repair patterns
// quiet (re-lookup after the await, value-copy before it):
//  * An initializer containing `co_await` produces a *stable* value: it was
//    created fresh at the suspension point itself.
//  * Value copies of a member through a tracked pointer (`FileSystem* fs =
//    mount->fs;`) are stable — copying before suspension is the fix.
//    Reference bindings into the pointee (`auto& e = it->second;`) inherit
//    instability.
//  * Branches that end in `return` / `co_return` / `break` / `continue` /
//    `throw` do not merge their state into the fall-through path.
//  * Loop bodies are analyzed twice so a binding made before (or during) the
//    first iteration is seen stale by the second when the body suspends.
//  * Range-for declarations and structured bindings are not tracked, and
//    nested lambdas are skipped (a lambda body is analyzed as its own
//    function; its suspensions do not suspend the enclosing function).
//  * Size snapshots are tracked only when taken from a member container
//    (root identifier ending in `_`, or reached through `->`): a snapshot of
//    a function-local container cannot be invalidated by another coroutine.
//  * A call site counts as suspending only when every candidate it resolves
//    to may suspend (see callgraph.h); unresolvable names stay quiet.
//
// suspend-escape extends the lifetime reasoning across the call boundary: a
// tracked pointer / iterator / reference passed as a *whole argument* into a
// may-suspend callee can be held by the callee across its own suspension,
// where neither side's per-function analysis can see the invalidation. The
// scan runs before staleness is applied, so even a freshly bound handle
// fires. Reading a value *through* the handle inside the argument list
// (`f(e->size)`) stays quiet — that is a pre-suspension value read.
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lint.h"

namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsIdent(const std::vector<Token>& t, size_t i, const char* text = nullptr) {
  return i < t.size() && t[i].kind == TokKind::kIdent && (text == nullptr || t[i].text == text);
}

bool IsPunct(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == text;
}

// Container member functions returning iterators into the container.
bool IsIteratorFn(const std::string& s) {
  static const std::set<std::string> kFns = {"find",    "begin",      "end",
                                             "rbegin",  "rend",       "cbegin",
                                             "cend",    "lower_bound", "upper_bound"};
  return kFns.count(s) > 0;
}

// Container member functions returning a reference to an element.
bool IsElementFn(const std::string& s) {
  return s == "at" || s == "front" || s == "back";
}

bool IsSizeFn(const std::string& s) { return s == "size" || s == "empty" || s == "count"; }

// What a tracked local holds.
struct VarInfo {
  enum Kind {
    kPtr,   // raw pointer into a container (uses: ->, unary *, [])
    kIter,  // iterator (uses: ->, unary *, ++/--)
    kRef,   // reference to a container element (uses: any mention)
    kSize,  // size/emptiness snapshot (uses: mention in a branch condition)
  };
  Kind kind = kPtr;
  int bind_line = 0;
  std::string source;    // human-readable origin for the message
  bool stale = false;    // a suspension point intervened since binding
};

struct FlowState {
  std::map<std::string, VarInfo> vars;
  bool reachable = true;
};

const char* KindNoun(VarInfo::Kind k) {
  switch (k) {
    case VarInfo::kPtr: return "a pointer";
    case VarInfo::kIter: return "an iterator";
    case VarInfo::kRef: return "a reference";
    case VarInfo::kSize: return "a size snapshot";
  }
  return "a value";
}

// Sink for diagnostics: (use line, binding line, rule, message). A
// suppression on either line absorbs the diagnostic, so one annotation on a
// binding can waive every downstream use of that binding.
using EmitFn = std::function<void(int, int, const std::string&, std::string)>;

class FlowPass {
 public:
  FlowPass(const std::vector<Token>& t, const std::set<std::string>& unstable_fns,
           const CallGraph* cg, EmitFn emit)
      : t_(t), unstable_fns_(unstable_fns), cg_(cg), emit_(std::move(emit)) {
    BuildMatchTables();
  }

  void Run() {
    for (size_t i = 0; i < t_.size(); ++i) {
      if (!IsPunct(t_, i, "{")) {
        continue;
      }
      size_t close = match_[i];
      if (close == kNpos || !IsFunctionBody(i) ||
          !ContainsSuspension(i + 1, close)) {
        continue;
      }
      FlowState st;
      AnalyzeStmtList(i + 1, close, st);
    }
  }

 private:
  // --- token geometry --------------------------------------------------------

  void BuildMatchTables() {
    match_.assign(t_.size(), kNpos);
    open_of_.assign(t_.size(), kNpos);
    std::vector<size_t> stack;
    for (size_t i = 0; i < t_.size(); ++i) {
      if (t_[i].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t_[i].text;
      if (p == "(" || p == "{" || p == "[") {
        stack.push_back(i);
      } else if (p == ")" || p == "}" || p == "]") {
        const char* want = p == ")" ? "(" : p == "}" ? "{" : "[";
        // Pop until the matching opener kind; tolerates unbalanced input.
        while (!stack.empty() && t_[stack.back()].text != want) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          match_[stack.back()] = i;
          open_of_[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  // `[` beginning a lambda introducer (not a subscript or attribute).
  bool IsLambdaStart(size_t i) const {
    if (!IsPunct(t_, i, "[") || IsPunct(t_, i + 1, "[")) {
      return false;
    }
    if (i > 0 && (t_[i - 1].kind == TokKind::kIdent || t_[i - 1].kind == TokKind::kNumber ||
                  IsPunct(t_, i - 1, ")") || IsPunct(t_, i - 1, "]"))) {
      return false;
    }
    return true;
  }

  // For a lambda starting at `[` index i, returns the index just past its
  // body's closing `}` (or kNpos when no body is found nearby).
  size_t SkipLambda(size_t i) const {
    size_t close = match_[i];
    if (close == kNpos) {
      return kNpos;
    }
    size_t j = close + 1;
    if (IsPunct(t_, j, "(")) {
      if (match_[j] == kNpos) {
        return kNpos;
      }
      j = match_[j] + 1;
    }
    for (size_t k = j; k < t_.size() && k < j + 40; ++k) {
      if (IsPunct(t_, k, "{")) {
        return match_[k] == kNpos ? kNpos : match_[k] + 1;
      }
      if (IsPunct(t_, k, ";") || IsPunct(t_, k, ")") || IsPunct(t_, k, ",")) {
        break;
      }
    }
    return kNpos;
  }

  // True when the identifier at `i` names a call (`name(...)`) whose every
  // call-graph candidate may suspend. Names the call graph cannot resolve
  // yield false (conservative-quiet, matching the statement rules).
  bool SuspendingCallAt(size_t i) const {
    if (cg_ == nullptr || !IsIdent(t_, i) || !IsPunct(t_, i + 1, "(")) {
      return false;
    }
    std::string qualifier;
    if (i >= 2 && IsPunct(t_, i - 1, "::") && IsIdent(t_, i - 2)) {
      qualifier = t_[i - 2].text;
    }
    return cg_->CallSuspends(qualifier, t_[i].text);
  }

  // True when [begin, end) contains a suspension point — co_await /
  // co_yield, or a call to a may-suspend function — outside nested lambda
  // bodies (a lambda is its own coroutine; its suspensions do not suspend
  // the enclosing function).
  bool ContainsSuspension(size_t begin, size_t end) const {
    for (size_t i = begin; i < end; ++i) {
      if (IsLambdaStart(i)) {
        size_t past = SkipLambda(i);
        if (past != kNpos && past <= end) {
          i = past - 1;
          continue;
        }
      }
      if (IsIdent(t_, i) && (t_[i].text == "co_await" || t_[i].text == "co_yield")) {
        return true;
      }
      if (SuspendingCallAt(i)) {
        return true;
      }
    }
    return false;
  }

  // Is the `{` at index b the body of a function (or lambda)? Walk back over
  // cv-qualifiers and a trailing return type to the parameter list's `)`,
  // then reject control statements (`if (...) {`) by inspecting the token
  // before the matching `(`.
  bool IsFunctionBody(size_t b) const {
    size_t j = b;
    while (j > 0) {
      --j;
      const Token& tok = t_[j];
      if (tok.kind == TokKind::kIdent) {
        continue;  // qualifier or trailing-return-type component
      }
      if (tok.kind == TokKind::kPunct &&
          (tok.text == "::" || tok.text == "<" || tok.text == ">" || tok.text == "*" ||
           tok.text == "&" || tok.text == "->" || tok.text == ",")) {
        continue;
      }
      break;
    }
    if (IsPunct(t_, j, "]") && open_of_[j] != kNpos && IsLambdaStart(open_of_[j])) {
      return true;  // `[captures] { ... }` lambda with no parameter list
    }
    if (!IsPunct(t_, j, ")") || open_of_[j] == kNpos) {
      return false;
    }
    size_t open = open_of_[j];
    if (open == 0) {
      return false;
    }
    if (IsIdent(t_, open - 1)) {
      static const std::set<std::string> kControl = {"if", "while", "for", "switch", "catch"};
      return kControl.count(t_[open - 1].text) == 0;
    }
    // `](...)` lambda parameter list.
    return IsPunct(t_, open - 1, "]");
  }

  // Index of the token terminating the statement starting at `pos`: the
  // first top-level `;` (nested (), [], {} skipped), bounded by `end`.
  size_t StmtEnd(size_t pos, size_t end) const {
    for (size_t i = pos; i < end; ++i) {
      if (t_[i].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t_[i].text;
      if (p == "(" || p == "[" || p == "{") {
        if (match_[i] != kNpos && match_[i] < end) {
          i = match_[i];
          continue;
        }
        return end;
      }
      if (p == ";") {
        return i;
      }
      if (p == "}") {
        return i;  // malformed; stop at block edge
      }
    }
    return end;
  }

  // --- state -----------------------------------------------------------------

  static void MarkAllStale(FlowState& st) {
    for (auto& [name, info] : st.vars) {
      info.stale = true;
    }
  }

  // Re-scopes `inner` (a nested block's exit state) onto `outer`: staleness
  // of pre-existing vars propagates; block-local bindings die.
  static void MergeScope(FlowState& outer, const FlowState& inner) {
    for (auto& [name, info] : outer.vars) {
      auto it = inner.vars.find(name);
      if (it != inner.vars.end()) {
        info = it->second;
      }
    }
    outer.reachable = inner.reachable;
  }

  // Joins two branch exit states into `out` (entry state of the branches).
  // A branch that cannot fall through (ended in return/break/...) does not
  // contribute.
  static void MergeBranches(FlowState& out, const FlowState& a, const FlowState& b) {
    for (auto& [name, info] : out.vars) {
      bool stale = false;
      bool fresh_somewhere = false;
      for (const FlowState* s : {&a, &b}) {
        if (!s->reachable) {
          continue;
        }
        auto it = s->vars.find(name);
        if (it != s->vars.end()) {
          stale = stale || it->second.stale;
          fresh_somewhere = fresh_somewhere || !it->second.stale;
          (void)fresh_somewhere;
        }
      }
      info.stale = stale;
    }
    out.reachable = a.reachable || b.reachable;
  }

  // --- statement walker ------------------------------------------------------

  void AnalyzeStmtList(size_t begin, size_t end, FlowState& st) {
    size_t pos = begin;
    size_t guard = 0;
    while (pos < end && guard++ < t_.size()) {
      pos = AnalyzeStmt(pos, end, st);
    }
  }

  // Analyzes one statement starting at `pos`; returns the index just past it.
  size_t AnalyzeStmt(size_t pos, size_t end, FlowState& st) {
    if (pos >= end) {
      return end;
    }
    if (IsPunct(t_, pos, ";")) {
      return pos + 1;
    }
    if (IsPunct(t_, pos, "{")) {
      size_t close = match_[pos];
      if (close == kNpos || close > end) {
        return end;
      }
      FlowState inner = st;
      AnalyzeStmtList(pos + 1, close, inner);
      MergeScope(st, inner);
      return close + 1;
    }
    if (t_[pos].kind == TokKind::kIdent) {
      const std::string& kw = t_[pos].text;
      if (kw == "if") {
        return AnalyzeIf(pos, end, st);
      }
      if (kw == "while") {
        return AnalyzeWhile(pos, end, st);
      }
      if (kw == "do") {
        return AnalyzeDo(pos, end, st);
      }
      if (kw == "for") {
        return AnalyzeFor(pos, end, st);
      }
      if (kw == "switch") {
        return AnalyzeSwitch(pos, end, st);
      }
      if (kw == "try") {
        return AnalyzeTry(pos, end, st);
      }
      if (kw == "return" || kw == "co_return" || kw == "throw") {
        size_t semi = StmtEnd(pos + 1, end);
        ProcessExpr(pos + 1, semi, st, /*is_cond=*/false);
        st.reachable = false;
        return semi + 1;
      }
      if (kw == "co_yield") {
        size_t semi = StmtEnd(pos + 1, end);
        ProcessExpr(pos + 1, semi, st, /*is_cond=*/false);
        MarkAllStale(st);  // co_yield itself suspends
        return semi + 1;
      }
      if (kw == "break" || kw == "continue" || kw == "goto") {
        st.reachable = false;
        return StmtEnd(pos, end) + 1;
      }
      if (kw == "case") {
        // `case expr:` — skip the label.
        for (size_t i = pos + 1; i < end; ++i) {
          if (IsPunct(t_, i, ":")) {
            return i + 1;
          }
        }
        return end;
      }
      if (kw == "default" && IsPunct(t_, pos + 1, ":")) {
        return pos + 2;
      }
      if (kw == "else") {
        return AnalyzeStmt(pos + 1, end, st);  // stray else (shouldn't happen)
      }
    }
    size_t semi = StmtEnd(pos, end);
    ProcessExpr(pos, semi, st, /*is_cond=*/false);
    return semi + 1;
  }

  size_t AnalyzeIf(size_t pos, size_t end, FlowState& st) {
    size_t lparen = pos + 1;
    if (IsIdent(t_, lparen, "constexpr")) {
      ++lparen;
    }
    if (!IsPunct(t_, lparen, "(") || match_[lparen] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    size_t cclose = match_[lparen];
    ProcessExpr(lparen + 1, cclose, st, /*is_cond=*/true);
    FlowState then_state = st;
    size_t after_then = AnalyzeStmt(cclose + 1, end, then_state);
    if (IsIdent(t_, after_then, "else") && after_then < end) {
      FlowState else_state = st;
      size_t after_else = AnalyzeStmt(after_then + 1, end, else_state);
      MergeBranches(st, then_state, else_state);
      return after_else;
    }
    // No else: fall-through keeps the pre-branch state as the other path.
    FlowState skip_state = st;
    MergeBranches(st, then_state, skip_state);
    return after_then;
  }

  size_t AnalyzeWhile(size_t pos, size_t end, FlowState& st) {
    size_t lparen = pos + 1;
    if (!IsPunct(t_, lparen, "(") || match_[lparen] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    size_t cclose = match_[lparen];
    FlowState s = st;
    size_t after = cclose + 1;
    // Two passes over cond+body: the second sees bindings of the first as
    // stale when the body suspends (the back edge).
    for (int pass = 0; pass < 2; ++pass) {
      ProcessExpr(lparen + 1, cclose, s, /*is_cond=*/true);
      FlowState body = s;
      after = AnalyzeStmt(cclose + 1, end, body);
      MergeScope(s, body);
      if (!s.reachable) {
        break;
      }
    }
    // The loop may run zero times: join with the pre-loop state.
    FlowState pre = st;
    MergeBranches(st, s, pre);
    st.reachable = true;
    return after;
  }

  size_t AnalyzeDo(size_t pos, size_t end, FlowState& st) {
    FlowState s = st;
    size_t after_body = pos + 1;
    for (int pass = 0; pass < 2; ++pass) {
      FlowState body = s;
      after_body = AnalyzeStmt(pos + 1, end, body);
      MergeScope(s, body);
      if (!s.reachable) {
        s.reachable = true;  // `continue` re-enters the condition
      }
      if (IsIdent(t_, after_body, "while") && IsPunct(t_, after_body + 1, "(") &&
          match_[after_body + 1] != kNpos) {
        ProcessExpr(after_body + 2, match_[after_body + 1], s, /*is_cond=*/true);
      }
    }
    MergeScope(st, s);
    if (IsIdent(t_, after_body, "while") && IsPunct(t_, after_body + 1, "(") &&
        match_[after_body + 1] != kNpos) {
      return StmtEnd(match_[after_body + 1], end) + 1;
    }
    return after_body;
  }

  size_t AnalyzeFor(size_t pos, size_t end, FlowState& st) {
    size_t lparen = pos + 1;
    if (!IsPunct(t_, lparen, "(") || match_[lparen] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    size_t cclose = match_[lparen];
    // Split the header: range-for (`decl : expr`) or classic
    // (`init; cond; inc`), at paren depth 1 only.
    size_t colon = kNpos, semi1 = kNpos, semi2 = kNpos;
    int depth = 0;
    for (size_t j = lparen; j < cclose; ++j) {
      if (t_[j].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t_[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      else if (depth == 1 && p == ":" && semi1 == kNpos) { colon = j; break; }
      else if (depth == 1 && p == ";") {
        (semi1 == kNpos ? semi1 : semi2) = j;
      }
    }
    FlowState s = st;
    if (colon != kNpos) {
      // Range-for: the loop variable is not tracked (references into a local
      // snapshot are the dominant idiom); the range expression is.
      ProcessExpr(colon + 1, cclose, s, /*is_cond=*/false);
      size_t after = cclose + 1;
      for (int pass = 0; pass < 2; ++pass) {
        FlowState body = s;
        after = AnalyzeStmt(cclose + 1, end, body);
        MergeScope(s, body);
        if (!s.reachable) {
          break;
        }
      }
      FlowState pre = st;
      MergeBranches(st, s, pre);
      st.reachable = true;
      return after;
    }
    if (semi1 != kNpos) {
      ProcessExpr(lparen + 1, semi1, s, /*is_cond=*/false);  // init
    }
    size_t after = cclose + 1;
    for (int pass = 0; pass < 2; ++pass) {
      if (semi1 != kNpos) {
        ProcessExpr(semi1 + 1, semi2 == kNpos ? cclose : semi2, s, /*is_cond=*/true);
      }
      FlowState body = s;
      after = AnalyzeStmt(cclose + 1, end, body);
      MergeScope(s, body);
      if (!s.reachable) {
        break;
      }
      if (semi2 != kNpos) {
        ProcessExpr(semi2 + 1, cclose, s, /*is_cond=*/false);  // increment
      }
    }
    FlowState pre = st;
    MergeBranches(st, s, pre);
    st.reachable = true;
    return after;
  }

  size_t AnalyzeSwitch(size_t pos, size_t end, FlowState& st) {
    size_t lparen = pos + 1;
    if (!IsPunct(t_, lparen, "(") || match_[lparen] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    size_t cclose = match_[lparen];
    ProcessExpr(lparen + 1, cclose, st, /*is_cond=*/true);
    if (IsPunct(t_, cclose + 1, "{") && match_[cclose + 1] != kNpos) {
      // Linear walk; `break` prunes the remainder of its case, which makes
      // the analysis conservative-quiet across cases. Restore reachability
      // afterwards: a switch as a whole falls through.
      FlowState inner = st;
      AnalyzeStmtList(cclose + 2, match_[cclose + 1], inner);
      inner.reachable = true;
      MergeScope(st, inner);
      return match_[cclose + 1] + 1;
    }
    return AnalyzeStmt(cclose + 1, end, st);
  }

  size_t AnalyzeTry(size_t pos, size_t end, FlowState& st) {
    if (!IsPunct(t_, pos + 1, "{") || match_[pos + 1] == kNpos) {
      return StmtEnd(pos, end) + 1;
    }
    FlowState entry = st;
    FlowState try_state = st;
    AnalyzeStmtList(pos + 2, match_[pos + 1], try_state);
    MergeScope(st, try_state);
    size_t next = match_[pos + 1] + 1;
    while (IsIdent(t_, next, "catch") && IsPunct(t_, next + 1, "(") &&
           match_[next + 1] != kNpos && IsPunct(t_, match_[next + 1] + 1, "{") &&
           match_[match_[next + 1] + 1] != kNpos) {
      size_t body_open = match_[next + 1] + 1;
      FlowState catch_state = entry;
      MarkAllStale(catch_state);  // the try body may have suspended anywhere
      AnalyzeStmtList(body_open + 1, match_[body_open], catch_state);
      FlowState main_path = st;
      MergeBranches(st, main_path, catch_state);
      next = match_[body_open] + 1;
    }
    return next;
  }

  // --- expression / binding analysis ----------------------------------------

  void ProcessExpr(size_t begin, size_t end, FlowState& st, bool is_cond) {
    if (!st.reachable || begin >= end) {
      return;
    }
    bool suspends = ContainsSuspension(begin, end);
    // Escapes-into-callee are checked first: handing a tracked handle to a
    // may-suspend callee is a hazard even when the handle is still fresh.
    ScanEscapes(begin, end, st);
    // Uses are evaluated before the statement's own suspension resolves
    // (`co_await Write(entry->data)` reads entry pre-suspension).
    ScanUses(begin, end, st, is_cond);
    if (suspends) {
      MarkAllStale(st);
    }
    DetectBinding(begin, end, st);
  }

  // suspend-escape: a tracked pointer/iterator/reference passed as a whole
  // argument into a may-suspend call within [begin, end). "Whole argument"
  // means the variable is the entire expression between separators (next
  // token `,` or `)`, not preceded by `.`/`->`/`::`): `Consume(e)` escapes,
  // `Record(e->size)` is a value read and stays quiet.
  void ScanEscapes(size_t begin, size_t end, FlowState& st) {
    for (size_t i = begin; i < end; ++i) {
      if (IsLambdaStart(i)) {
        size_t past = SkipLambda(i);
        if (past != kNpos && past <= end) {
          i = past - 1;
          continue;
        }
      }
      if (!SuspendingCallAt(i)) {
        continue;
      }
      size_t lparen = i + 1;
      size_t close = match_[lparen];
      if (close == kNpos || close > end) {
        continue;
      }
      std::string callee = t_[i].text;
      if (i >= 2 && IsPunct(t_, i - 1, "::") && IsIdent(t_, i - 2)) {
        callee = t_[i - 2].text + "::" + callee;
      }
      for (size_t j = lparen + 1; j < close; ++j) {
        if (IsLambdaStart(j)) {
          size_t past = SkipLambda(j);
          if (past != kNpos && past <= close) {
            j = past - 1;
            continue;
          }
        }
        if (t_[j].kind != TokKind::kIdent) {
          continue;
        }
        auto it = st.vars.find(t_[j].text);
        if (it == st.vars.end() || it->second.kind == VarInfo::kSize) {
          continue;
        }
        if (IsPunct(t_, j - 1, ".") || IsPunct(t_, j - 1, "->") || IsPunct(t_, j - 1, "::")) {
          continue;  // member of some other object, or qualified name
        }
        if (!(IsPunct(t_, j + 1, ",") || IsPunct(t_, j + 1, ")"))) {
          continue;  // part of a larger expression (e.g. a read through it)
        }
        int line = t_[j].line;
        if (!reported_.insert({it->first, line}).second) {
          continue;
        }
        const VarInfo& info = it->second;
        emit_(line, info.bind_line, "suspend-escape",
              "`" + it->first + "` holds " + std::string(KindNoun(info.kind)) + " from " +
                  info.source + " bound at line " + std::to_string(info.bind_line) +
                  " and is passed into may-suspend `" + callee +
                  "(...)`, which can hold it across a suspension while another coroutine "
                  "invalidates it — pass the key (and re-look-up in the callee) or copied "
                  "values instead");
      }
    }
  }

  void ScanUses(size_t begin, size_t end, FlowState& st, bool is_cond) {
    for (size_t i = begin; i < end; ++i) {
      if (IsLambdaStart(i)) {
        size_t past = SkipLambda(i);
        if (past != kNpos && past <= end) {
          i = past - 1;
          continue;
        }
      }
      if (t_[i].kind != TokKind::kIdent) {
        continue;
      }
      auto it = st.vars.find(t_[i].text);
      if (it == st.vars.end() || !it->second.stale) {
        continue;
      }
      // Member of some other object (`x.entry`), or qualified name.
      if (i > 0 && (IsPunct(t_, i - 1, ".") || IsPunct(t_, i - 1, "->") ||
                    IsPunct(t_, i - 1, "::"))) {
        continue;
      }
      const VarInfo& info = it->second;
      bool next_eq = IsPunct(t_, i + 1, "==") || IsPunct(t_, i + 1, "!=") ||
                     IsPunct(t_, i + 1, "=");
      bool prev_eq = i > 0 && (IsPunct(t_, i - 1, "==") || IsPunct(t_, i - 1, "!="));
      if (next_eq || prev_eq) {
        continue;  // comparison or re-assignment, not a dereference
      }
      bool prev_unary_star =
          i > 0 && IsPunct(t_, i - 1, "*") &&
          (i == 1 || !(t_[i - 2].kind == TokKind::kIdent || t_[i - 2].kind == TokKind::kNumber ||
                       IsPunct(t_, i - 2, ")") || IsPunct(t_, i - 2, "]")));
      bool used = false;
      switch (info.kind) {
        case VarInfo::kPtr:
          used = IsPunct(t_, i + 1, "->") || IsPunct(t_, i + 1, "[") || prev_unary_star;
          break;
        case VarInfo::kIter:
          used = IsPunct(t_, i + 1, "->") || prev_unary_star || IsPunct(t_, i + 1, "++") ||
                 IsPunct(t_, i + 1, "--") ||
                 (i > 0 && (IsPunct(t_, i - 1, "++") || IsPunct(t_, i - 1, "--")));
          break;
        case VarInfo::kRef:
          used = true;  // any mention touches the (possibly dead) element
          break;
        case VarInfo::kSize:
          used = is_cond;
          break;
      }
      if (!used) {
        continue;
      }
      int line = t_[i].line;
      if (!reported_.insert({it->first, line}).second) {
        continue;
      }
      if (info.kind == VarInfo::kSize) {
        emit_(line, info.bind_line, "await-cached-size",
              "`" + it->first + "` caches " + info.source + " taken at line " +
                  std::to_string(info.bind_line) +
                  ", but a co_await intervened; the container may have changed while "
                  "suspended — re-query it after the suspension");
      } else {
        emit_(line, info.bind_line, "await-stale-ref",
              "`" + it->first + "` holds " + std::string(KindNoun(info.kind)) + " from " +
                  info.source + " bound at line " + std::to_string(info.bind_line) +
                  ", but a co_await intervened; another coroutine may have invalidated "
                  "it — re-acquire after the suspension or copy the value before it");
      }
    }
  }

  // Locates `lhs = rhs` (or [CO_]ASSIGN_OR_RETURN(lhs, rhs)) in the
  // statement and binds/kills the target variable according to the RHS.
  void DetectBinding(size_t begin, size_t end, FlowState& st) {
    size_t lhs_begin = begin, lhs_end = kNpos, rhs_begin = kNpos, rhs_end = end;
    if (IsIdent(t_, begin) &&
        (t_[begin].text == "ASSIGN_OR_RETURN" || t_[begin].text == "CO_ASSIGN_OR_RETURN") &&
        IsPunct(t_, begin + 1, "(") && match_[begin + 1] != kNpos) {
      size_t close = match_[begin + 1];
      int depth = 0;
      for (size_t j = begin + 2; j < close; ++j) {
        if (t_[j].kind != TokKind::kPunct) {
          continue;
        }
        const std::string& p = t_[j].text;
        if (p == "(" || p == "[" || p == "{" || p == "<") ++depth;
        else if (p == ")" || p == "]" || p == "}" || p == ">") --depth;
        else if (p == "," && depth == 0) {
          lhs_begin = begin + 2;
          lhs_end = j;
          rhs_begin = j + 1;
          rhs_end = close;
          break;
        }
      }
    } else {
      int depth = 0;
      for (size_t j = begin; j < end; ++j) {
        if (t_[j].kind != TokKind::kPunct) {
          continue;
        }
        const std::string& p = t_[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        else if (p == ")" || p == "]" || p == "}") --depth;
        else if (p == "=" && depth == 0) {
          lhs_end = j;
          rhs_begin = j + 1;
          break;
        }
      }
    }
    if (lhs_end == kNpos || rhs_begin == kNpos) {
      return;
    }

    // LHS shape: a declaration (`Type* name`, `auto& name`) or a plain
    // re-assignment (`name`). Member stores (`x->f = ...`), subscript stores
    // and structured bindings are not tracked.
    bool has_star = false, has_amp = false, has_auto = false;
    std::string name;
    for (size_t j = lhs_begin; j < lhs_end; ++j) {
      if (t_[j].kind == TokKind::kPunct) {
        const std::string& p = t_[j].text;
        if (p == "*") has_star = true;
        else if (p == "&" || p == "&&") has_amp = true;
        else if (p == "." || p == "->" || p == "[") return;  // member/subscript store
      } else if (t_[j].kind == TokKind::kIdent) {
        if (t_[j].text == "auto") has_auto = true;
        name = t_[j].text;
      }
    }
    if (name.empty()) {
      return;
    }
    bool single_token = (lhs_end - lhs_begin) == 1;
    bool tracked = st.vars.count(name) > 0;
    int line = t_[lhs_end - 1 < lhs_begin ? lhs_begin : lhs_end - 1].line;

    // RHS classification.
    if (ContainsSuspension(rhs_begin, rhs_end)) {
      st.vars.erase(name);  // produced fresh at the suspension point
      return;
    }
    // A call to a known unstable source anywhere in the initializer.
    for (size_t j = rhs_begin; j < rhs_end; ++j) {
      if (IsIdent(t_, j) && IsPunct(t_, j + 1, "(") && unstable_fns_.count(t_[j].text) > 0) {
        if (has_star || has_auto || has_amp || single_token) {
          st.vars[name] = {has_amp && !has_star ? VarInfo::kRef : VarInfo::kPtr, line,
                           "`" + t_[j].text + "(...)`", false};
        } else {
          st.vars.erase(name);  // value copy of the pointee
        }
        return;
      }
    }
    // Iterator-returning container method: `c.find(k)`, `m.begin()`, ...
    for (size_t j = rhs_begin; j + 2 < rhs_end; ++j) {
      if ((IsPunct(t_, j, ".") || IsPunct(t_, j, "->")) && IsIdent(t_, j + 1) &&
          IsPunct(t_, j + 2, "(") && IsIteratorFn(t_[j + 1].text)) {
        if (has_auto || has_star || has_amp || single_token) {
          st.vars[name] = {VarInfo::kIter, line, "`." + t_[j + 1].text + "(...)`", false};
          return;
        }
      }
    }
    // Address of a container element (`&entries_[k]`, `&list.back()`), or a
    // reference binding to one (`auto& e = node->partial[b];`).
    bool rhs_addr_of = IsPunct(t_, rhs_begin, "&");
    bool rhs_element = false;
    std::string element_src = "a container element";
    for (size_t j = rhs_begin; j < rhs_end; ++j) {
      if (IsPunct(t_, j, "[") && j > rhs_begin &&
          (t_[j - 1].kind == TokKind::kIdent || IsPunct(t_, j - 1, ")") ||
           IsPunct(t_, j - 1, "]"))) {
        rhs_element = true;
        element_src = "`operator[]`";
      }
      if ((IsPunct(t_, j, ".") || IsPunct(t_, j, "->")) && IsIdent(t_, j + 1) &&
          IsPunct(t_, j + 2, "(") && IsElementFn(t_[j + 1].text)) {
        rhs_element = true;
        element_src = "`." + t_[j + 1].text + "(...)`";
      }
    }
    if (rhs_element && (rhs_addr_of || has_amp) && (has_star || has_amp || single_token)) {
      st.vars[name] = {rhs_addr_of && !has_amp ? VarInfo::kPtr : VarInfo::kRef, line,
                       element_src, false};
      return;
    }
    // Chain rooted in a tracked variable: an alias (`e2 = e;`) or a
    // reference into the pointee (`auto& entry = it->second;`) inherits the
    // origin; a *value copy* through the pointer is stable.
    if (IsIdent(t_, rhs_begin) || (rhs_addr_of && IsIdent(t_, rhs_begin + 1))) {
      size_t root = rhs_begin + (rhs_addr_of ? 1 : 0);
      auto it = st.vars.find(t_[root].text);
      if (it != st.vars.end()) {
        bool whole_chain = true;  // rhs is just root(.member / ->member)*
        for (size_t j = root + 1; j < rhs_end; ++j) {
          if (t_[j].kind == TokKind::kIdent) {
            continue;
          }
          if (IsPunct(t_, j, ".") || IsPunct(t_, j, "->")) {
            continue;
          }
          whole_chain = false;
          break;
        }
        bool is_alias = whole_chain && root + 1 == rhs_end && !rhs_addr_of;
        if (is_alias && (has_star || has_auto || single_token)) {
          VarInfo inherited = it->second;
          inherited.bind_line = line;
          st.vars[name] = inherited;
          return;
        }
        if (whole_chain && (has_amp || rhs_addr_of)) {
          st.vars[name] = {rhs_addr_of && !has_amp ? VarInfo::kPtr : VarInfo::kRef, line,
                           "`" + it->second.source + "` (via `" + it->first + "`)",
                           it->second.stale};
          return;
        }
      }
    }
    // Size/emptiness snapshot of a *member* container.
    for (size_t j = rhs_begin; j + 2 < rhs_end; ++j) {
      if ((IsPunct(t_, j, ".") || IsPunct(t_, j, "->")) && IsIdent(t_, j + 1) &&
          IsPunct(t_, j + 2, "(") && IsSizeFn(t_[j + 1].text)) {
        // Walk the receiver chain back to its root identifier.
        bool member_chain = false;
        size_t k = j;
        while (k > rhs_begin) {
          if (IsPunct(t_, k, "->")) {
            member_chain = true;
          }
          if (t_[k - 1].kind == TokKind::kIdent &&
              (k - 1 == rhs_begin || !(IsPunct(t_, k - 2, ".") || IsPunct(t_, k - 2, "->") ||
                                        IsPunct(t_, k - 2, "::")))) {
            const std::string& rootname = t_[k - 1].text;
            member_chain = member_chain || (!rootname.empty() && rootname.back() == '_');
            break;
          }
          --k;
        }
        if (member_chain) {
          st.vars[name] = {VarInfo::kSize, line,
                           "`." + t_[j + 1].text + "()` of a shared container", false};
          return;
        }
      }
    }
    // Anything else produces a stable value; a rebind clears prior tracking.
    if (tracked) {
      st.vars.erase(name);
    }
  }

  const std::vector<Token>& t_;
  const std::set<std::string>& unstable_fns_;
  const CallGraph* cg_;
  EmitFn emit_;
  std::vector<size_t> match_;    // opener index -> matching closer index
  std::vector<size_t> open_of_;  // closer index -> matching opener index
  std::set<std::pair<std::string, int>> reported_;  // (var, line) dedupe
};

}  // namespace

void Linter::CheckFlow(const FileState& fs, std::vector<Diagnostic>& out) {
  FlowPass pass(fs.lex.tokens, unstable_fns_, &callgraph_,
                [&](int line, int bind_line, const std::string& rule, std::string message) {
                  if (bind_line != line && Suppressed(fs, bind_line, rule)) {
                    return;  // waived at the binding
                  }
                  Emit(fs, line, rule, std::move(message), out);
                });
  pass.Run();
}

}  // namespace lint
