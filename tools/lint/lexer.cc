#include "tools/lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace lint {
namespace {

// Multi-character punctuation we merge into single tokens. `<<` and `>>` are
// intentionally absent: the rules match template argument lists with a
// balanced <...> scan, and splitting shifts into two tokens keeps that scan
// simple (a stray `<` outside a scan is harmless).
bool IsMergedPunct(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '-' || b == '=';
    case '&': return b == '&' || b == '=';
    case '|': return b == '|' || b == '=';
    case '+': return b == '+' || b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=';
    case '>': return b == '=';
    case '*': return b == '=';
    case '/': return b == '=';
    case '^': return b == '=';
    case '%': return b == '=';
    default: return false;
  }
}

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Records `// lint: ordered-ok coro-ref-ok` style suppressions from a
// comment body. The comment suppresses its own line; when it is the only
// thing on its line it also covers the next line, so a rule can be waived
// with a standalone comment above a long statement.
void RecordSuppressions(const std::string& comment, int line, bool standalone,
                        LexResult& out) {
  size_t pos = comment.find("lint:");
  if (pos == std::string::npos) {
    return;
  }
  pos += 5;
  while (pos < comment.size()) {
    while (pos < comment.size() && std::isspace(static_cast<unsigned char>(comment[pos]))) {
      ++pos;
    }
    size_t start = pos;
    while (pos < comment.size() && !std::isspace(static_cast<unsigned char>(comment[pos]))) {
      ++pos;
    }
    std::string word = comment.substr(start, pos - start);
    if (word.size() > 3 && word.rfind("-ok") == word.size() - 3) {
      std::string rule = word.substr(0, word.size() - 3);
      out.suppressions[line].insert(rule);
      SuppressionNote note;
      note.rule = rule;
      note.comment_line = line;
      note.covered.push_back(line);
      if (standalone) {
        out.suppressions[line + 1].insert(rule);
        note.covered.push_back(line + 1);
      }
      out.notes.push_back(std::move(note));
    } else if (word == "unstable-source") {
      out.unstable_source_lines.insert(line);
      if (standalone) {
        out.unstable_source_lines.insert(line + 1);
      }
    } else if (word == "no-suspend") {
      out.no_suspend_lines.insert(line);
      SuppressionNote note;
      note.rule = "no-suspend";
      note.comment_line = line;
      note.covered.push_back(line);
      if (standalone) {
        out.no_suspend_lines.insert(line + 1);
        note.covered.push_back(line + 1);
      }
      out.no_suspend_notes.push_back(std::move(note));
    } else if (word == "lock-escapes") {
      out.lock_escapes_lines.insert(line);
      SuppressionNote note;
      note.rule = "lock-escapes";
      note.comment_line = line;
      note.covered.push_back(line);
      if (standalone) {
        out.lock_escapes_lines.insert(line + 1);
        note.covered.push_back(line + 1);
      }
      out.lock_escapes_notes.push_back(std::move(note));
    } else if (!word.empty()) {
      break;  // first non-rule word ends the suppression list
    }
  }
}

}  // namespace

LexResult Lex(const std::string& source) {
  LexResult out;
  size_t i = 0;
  const size_t n = source.size();
  int line = 1;
  bool code_on_line = false;  // any token emitted on the current line?

  auto advance_newline = [&] {
    ++line;
    code_on_line = false;
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      advance_newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: consume to end of line (honoring \-splices).
    if (c == '#' && !code_on_line) {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          i += 2;
          advance_newline();
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t start = i + 2;
      while (i < n && source[i] != '\n') {
        ++i;
      }
      RecordSuppressions(source.substr(start, i - start), line, !code_on_line, out);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      int comment_line = line;
      bool standalone = !code_on_line;
      size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          advance_newline();
        }
        ++i;
      }
      size_t end = (i + 1 < n) ? i : n;
      RecordSuppressions(source.substr(start, end - start), comment_line, standalone, out);
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t d = i + 2;
      std::string delim;
      while (d < n && source[d] != '(') {
        delim += source[d++];
      }
      std::string closer = ")" + delim + "\"";
      size_t close = source.find(closer, d);
      size_t end = (close == std::string::npos) ? n : close + closer.size();
      out.tokens.push_back({TokKind::kString, source.substr(i, end - i), line});
      for (size_t j = i; j < end; ++j) {
        if (source[j] == '\n') {
          ++line;
        }
      }
      code_on_line = true;
      i = end;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = ++i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (source[i] == '\n') {
          break;  // unterminated on this line; bail
        }
        ++i;
      }
      out.tokens.push_back({TokKind::kString, source.substr(start, i - start), line});
      code_on_line = true;
      if (i < n && source[i] == quote) {
        ++i;
      }
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) {
        ++i;
      }
      out.tokens.push_back({TokKind::kIdent, source.substr(start, i - start), line});
      code_on_line = true;
      continue;
    }
    // Number (good enough: leading digit, then ident chars, dots, quotes).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsIdentChar(source[i]) || source[i] == '.' || source[i] == '\'')) {
        ++i;
      }
      out.tokens.push_back({TokKind::kNumber, source.substr(start, i - start), line});
      code_on_line = true;
      continue;
    }
    // Punctuation.
    std::string text(1, c);
    if (i + 1 < n && IsMergedPunct(c, source[i + 1])) {
      text += source[i + 1];
      ++i;
    }
    out.tokens.push_back({TokKind::kPunct, text, line});
    code_on_line = true;
    ++i;
  }
  return out;
}

}  // namespace lint
