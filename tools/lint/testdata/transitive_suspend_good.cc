// Fixture: the interprocedural suspension rules must stay quiet when the
// called helper provably cannot suspend (its body is visible and contains no
// suspension point), and when the caller uses one of the idiomatic repairs
// around a genuinely may-suspend helper call.
#include <map>

#include "src/sim/task.h"

struct Entry {
  int value;
};

struct Store {
  Entry* Find(int key);    // unstable: returns a raw pointer
  sim::Task<void> Sync();  // no body anywhere: conservatively suspends
  void Drain() { pending_ = Sync(); }
  void Settle() { Drain(); }
  int Tally() {
    int total = 0;
    for (auto& [key, entry] : entries_) {
      total += entry.value;
    }
    return total;
  }
  sim::Task<void> pending_;
  std::map<int, Entry> entries_;
};

// A call to a function whose visible body cannot suspend is not a
// suspension point.
sim::Task<int> PointerAcrossNonSuspendingCall(Store& store) {
  co_await store.Sync();
  Entry* e = store.Find(1);
  int total = store.Tally();   // quiet: Tally's body has no suspensions
  co_return e->value + total;  // quiet: still fresh
}

// Re-acquiring after the may-suspend helper call is one fix.
sim::Task<int> ReacquireAfterHelper(Store& store) {
  Entry* e = store.Find(1);
  store.Settle();
  e = store.Find(1);
  co_return e->value;  // quiet: re-acquired
}

// Copying the needed value before the helper call is the other fix.
sim::Task<int> CopyBeforeHelper(Store& store) {
  Entry* e = store.Find(1);
  int value = e->value;
  store.Settle();
  co_return value;  // quiet: plain int copy
}
