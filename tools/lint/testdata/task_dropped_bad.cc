// Fixture: task-dropped must fire on a bare (or (void)-cast) call to a
// Task-returning function: lazy tasks never run when dropped.
#include "src/sim/task.h"

sim::Task<void> Background();

void Caller() {
  Background();        // fires
  (void)Background();  // fires: a never-started task is destroyed unrun
}
