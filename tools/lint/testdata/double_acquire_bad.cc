// Fixture: double-acquire must fire on re-acquiring a held sim::Mutex —
// directly, on a loop back-edge that never released, and through a callee
// whose may-acquire set contains the held mutex.
#include "src/sim/sync.h"
#include "src/sim/task.h"

struct Queue {
  sim::Task<bool> Drain();
  sim::Task<void> DirectReacquire();
  sim::Task<void> LoopReacquire(int n);
  sim::Task<void> LockedHelper();
  sim::Task<void> CallsHelperWhileHeld();
  sim::Mutex mu_;
};

sim::Task<void> Queue::DirectReacquire() {
  co_await mu_.Acquire();
  co_await mu_.Acquire();  // fires: FIFO mutex queues this activity behind itself
  mu_.Release();
}

sim::Task<void> Queue::LoopReacquire(int n) {
  for (int i = 0; i < n; ++i) {
    co_await mu_.Acquire();  // fires: still held from the previous iteration
  }
  mu_.Release();
}

sim::Task<void> Queue::LockedHelper() {
  co_await mu_.Acquire();
  co_await Drain();
  mu_.Release();
}

sim::Task<void> Queue::CallsHelperWhileHeld() {
  co_await mu_.Acquire();
  co_await LockedHelper();  // fires: the callee re-acquires mu_
  mu_.Release();
}
