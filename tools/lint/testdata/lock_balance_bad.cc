// Fixture: lock-balance must fire when an acquired lock can reach a
// function exit unreleased — an early co_return, a fall-off-the-end, a
// maybe-held acquire with no release anywhere, the hidden exit inside
// CO_RETURN_IF_ERROR, and an escaped-lock obligation the caller forgets.
#include "src/sim/sync.h"
#include "src/sim/task.h"

struct Store {
  sim::Task<bool> Flush();
  sim::Mutex& FileLock(int id);
  // lint: lock-escapes
  sim::Task<sim::Mutex*> TakeForWrite(int id);
  sim::Task<void> LeakOnEarlyReturn(bool fail);
  sim::Task<void> LeakOnFallOff(int id);
  sim::Task<int> MaybeHeldNeverReleased(bool flag);
  sim::Task<void> LeakThroughMacroExit();
  sim::Task<void> ForgetEscapedLock();
  sim::Mutex mu_;
};

sim::Task<void> Store::LeakOnEarlyReturn(bool fail) {
  co_await mu_.Acquire();
  if (fail) {
    co_return;  // fires: mu_ still held on the error path
  }
  mu_.Release();
}

sim::Task<void> Store::LeakOnFallOff(int id) {
  sim::Mutex& lock = FileLock(id);
  co_await lock.Acquire();
  co_await Flush();
}  // fires: the accessor-minted lock is never released

sim::Task<int> Store::MaybeHeldNeverReleased(bool flag) {
  if (flag) {
    co_await mu_.Acquire();
  }
  co_return 1;  // fires: maybe-held and never released anywhere
}

sim::Task<void> Store::LeakThroughMacroExit() {
  co_await mu_.Acquire();
  CO_RETURN_IF_ERROR(co_await Flush());  // fires: hidden exit with mu_ held
  mu_.Release();
}

// The escaper itself is waived by the annotation; the obligation moves to
// its caller, which here drops the returned lock on the floor.
sim::Task<sim::Mutex*> Store::TakeForWrite(int id) {
  sim::Mutex& lock = FileLock(id);
  co_await lock.Acquire();
  co_return &lock;
}

sim::Task<void> Store::ForgetEscapedLock() {
  sim::Mutex* lock = co_await TakeForWrite(3);
  co_await Flush();
}  // fires: the escaped lock is never released
