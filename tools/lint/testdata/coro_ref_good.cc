// Fixture: coro-ref must stay quiet on by-value and non-const lvalue
// reference parameters (long-lived services), and on suppressed lines.
#include <string>

#include "src/sim/simulator.h"
#include "src/sim/task.h"

sim::Task<void> ByValue(std::string name, int count);
sim::Task<void> ServiceRef(sim::Simulator& simulator, std::string path);
sim::Task<void> Waived(const std::string& name);  // lint: coro-ref-ok

// A non-coroutine that merely forwards a Task is also not a declaration of
// interest when it returns a reference.
sim::Task<void>& TaskRef();
