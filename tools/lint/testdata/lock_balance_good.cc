// Fixture: lock-balance must stay quiet on the accepted disciplines —
// release on every path, sim::ScopedLock, the null-guard conditional
// release, a caller that releases an escaped lock, a semaphore handed to a
// spawned worker under `// lint: lock-escapes`, and the worker's bare
// ownership-receipt Release.
#include "src/sim/sync.h"
#include "src/sim/task.h"

struct Store {
  sim::Task<bool> Flush();
  sim::Mutex& FileLock(int id);
  // lint: lock-escapes
  sim::Task<sim::Mutex*> TakeForWrite(int id);
  sim::Task<void> ReleaseOnEveryPath(bool fail);
  sim::Task<int> WithScopedGuard(int id);
  sim::Task<void> NullGuard(bool flush, int id);
  sim::Task<void> ReleaseEscapedLock(int id);
  // Exits holding write-behind slots that FinishWriteBehind releases.
  // lint: lock-escapes
  sim::Task<void> PumpWriteBehind(int n);
  sim::Task<void> FinishWriteBehind();
  sim::Task<void> MacroAfterRelease();
  sim::Mutex mu_;
  sim::Semaphore slots_{4};
};

sim::Task<void> Store::ReleaseOnEveryPath(bool fail) {
  co_await mu_.Acquire();
  if (fail) {
    mu_.Release();
    co_return;  // quiet: released before the early exit
  }
  co_await Flush();
  mu_.Release();
}

sim::Task<int> Store::WithScopedGuard(int id) {
  sim::ScopedLock guard(FileLock(id));
  co_await guard;
  bool dirty = co_await Flush();
  if (dirty) {
    co_return 1;  // quiet: the guard releases on every exit
  }
  co_return 0;
}

sim::Task<void> Store::NullGuard(bool flush, int id) {
  sim::Mutex* gate = nullptr;
  if (flush) {
    gate = &FileLock(id);
    co_await gate->Acquire();
  }
  co_await Flush();
  if (gate != nullptr) {
    gate->Release();  // quiet: released under the acquire's condition
  }
}

sim::Task<sim::Mutex*> Store::TakeForWrite(int id) {
  sim::Mutex& lock = FileLock(id);
  co_await lock.Acquire();
  co_return &lock;  // waived: annotated lock-escapes
}

sim::Task<void> Store::ReleaseEscapedLock(int id) {
  sim::Mutex* lock = co_await TakeForWrite(id);
  co_await Flush();
  if (lock != nullptr) {
    lock->Release();  // quiet: the inherited obligation is discharged
  }
}

sim::Task<void> Store::PumpWriteBehind(int n) {
  for (int i = 0; i < n; ++i) {
    co_await slots_.Acquire();  // handed to a spawned worker; waived
  }
}

sim::Task<void> Store::FinishWriteBehind() {
  co_await Flush();
  slots_.Release();  // quiet: ownership received from PumpWriteBehind
}

sim::Task<void> Store::MacroAfterRelease() {
  co_await mu_.Acquire();
  mu_.Release();
  CO_RETURN_IF_ERROR(co_await Flush());  // quiet: nothing held at the exit
}
