// Fixture: `// lint: no-suspend` on a declaration pins the function
// non-suspending for the whole analysis — the call below would otherwise be
// a suspension point via its Task-creating body — and the pin audits as
// used, so suppression-audit stays quiet.
#include <map>

#include "src/sim/task.h"

struct Entry {
  int value;
};

struct Scheduler {
  Entry* Find(int key);  // unstable: returns a raw pointer
  sim::Task<void> Flush();
  // Posting only creates the lazy task; it first runs after the caller
  // itself suspends, so holding handles across this call is safe.
  void ScheduleFlush();  // lint: no-suspend
  sim::Task<void> pending_;
  std::map<int, Entry> entries_;
};

void Scheduler::ScheduleFlush() { pending_ = Flush(); }

sim::Task<int> HoldAcrossPinnedCall(Scheduler& sched) {
  co_await sched.Flush();
  Entry* e = sched.Find(1);
  sched.ScheduleFlush();  // pinned: not a suspension point
  co_return e->value;     // quiet
}
