// Fixture: coro-ref must fire on const-ref / string_view / span / rvalue-ref
// parameters of Task-returning functions.
#include <span>
#include <string>
#include <string_view>

#include "src/sim/task.h"

sim::Task<void> ConstRefParam(const std::string& name);            // fires
sim::Task<int> ViewParam(std::string_view path);                   // fires
sim::Task<void> SpanParam(std::span<const char> bytes);            // fires
sim::Task<void> RvalueParam(std::string&& sink);                   // fires
