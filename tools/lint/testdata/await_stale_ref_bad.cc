// Fixture: await-stale-ref must fire when a pointer, iterator, or reference
// obtained from an unstable source before a suspension point is dereferenced
// after it without being re-acquired.
#include <map>

#include "src/sim/task.h"

struct Entry {
  int value;
};

struct Table {
  Entry* Find(int key);         // unstable: returns a raw pointer
  Entry& GetOrCreate(int key);  // lint: unstable-source
  sim::Task<void> Flush();
  std::map<int, Entry> entries_;
};

sim::Task<int> PointerAfterAwait(Table& table) {
  Entry* e = table.Find(1);
  co_await table.Flush();
  co_return e->value;  // fires
}

sim::Task<int> IteratorAfterAwait(Table& table) {
  auto it = table.entries_.find(1);
  co_await table.Flush();
  co_return it->second.value;  // fires
}

sim::Task<int> RefAfterAwait(Table& table) {
  Entry& e = table.GetOrCreate(1);
  co_await table.Flush();
  co_return e.value;  // fires
}

sim::Task<int> LoopBackEdge(Table& table) {
  int total = 0;
  Entry* e = table.Find(1);
  for (int i = 0; i < 3; ++i) {
    total += e->value;  // fires: stale on every iteration after the first
    co_await table.Flush();
  }
  co_return total;
}
