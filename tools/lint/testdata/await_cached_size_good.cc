// Fixture: await-cached-size must stay quiet when the snapshot is taken
// after the last suspension, re-taken after it, or only read before it.
#include <map>

#include "src/sim/task.h"

struct Server {
  sim::Task<void> Drain();
  sim::Task<int> FreshSize();
  sim::Task<int> ResnapshotSize();
  sim::Task<int> ReadBeforeAwait();
  std::map<int, int> sessions_;
};

sim::Task<int> Server::FreshSize() {
  co_await Drain();
  size_t n = sessions_.size();
  co_return n > 0 ? 1 : 0;
}

sim::Task<int> Server::ResnapshotSize() {
  size_t n = sessions_.size();
  if (n == 0) {
    co_return 0;
  }
  co_await Drain();
  n = sessions_.size();
  co_return n > 0 ? 1 : 0;
}

sim::Task<int> Server::ReadBeforeAwait() {
  bool none = sessions_.empty();
  int result = none ? 0 : 1;
  co_await Drain();
  co_return result;
}
