// Fixture: suspend-escape must fire when a tracked pointer, iterator, or
// reference from an unstable source is passed as a whole argument into a
// may-suspend callee — the callee can hold it across its own suspension
// while another coroutine invalidates it, which neither side's per-function
// analysis can see.
#include <map>

#include "src/sim/task.h"

struct Entry {
  int value;
};

struct Table {
  Entry* Find(int key);         // unstable: returns a raw pointer
  Entry& GetOrCreate(int key);  // lint: unstable-source
  sim::Task<void> Consume(Entry* e);
  sim::Task<void> Erase(std::map<int, Entry>::iterator it);
  sim::Task<void> Borrow(Entry& e);
  std::map<int, Entry> entries_;
};

sim::Task<void> PointerIntoSuspendingCallee(Table& table) {
  Entry* e = table.Find(1);
  co_await table.Consume(e);  // fires suspend-escape
}

sim::Task<void> IteratorIntoSuspendingCallee(Table& table) {
  auto it = table.entries_.find(1);
  co_await table.Erase(it);  // fires suspend-escape
}

sim::Task<void> RefIntoSuspendingCallee(Table& table) {
  Entry& e = table.GetOrCreate(1);
  co_await table.Borrow(e);  // fires suspend-escape
}
