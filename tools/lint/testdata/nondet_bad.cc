// Fixture: nondet must fire on ambient randomness and wall-clock time.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned AmbientEntropy() {
  std::random_device rd;                                   // fires
  std::srand(rd());                                        // fires
  unsigned r = std::rand();                                // fires
  r += static_cast<unsigned>(time(nullptr));               // fires
  auto now = std::chrono::system_clock::now();             // fires
  return r + static_cast<unsigned>(now.time_since_epoch().count());
}
