// Fixture: ordered must stay quiet on ordered containers, on suppressed
// lines, and on sorted snapshots of unordered containers.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct Table {
  std::map<uint64_t, int> ordered_entries_;
  std::unordered_map<uint64_t, int> entries_;

  int Sum() const {
    int total = 0;
    for (const auto& [key, value] : ordered_entries_) {
      total += value;
    }
    // Aggregation is insensitive to iteration order.
    for (const auto& [key, value] : entries_) {  // lint: ordered-ok
      total += value;
    }
    std::vector<uint64_t> keys;
    keys.reserve(entries_.size());
    for (const auto& [key, value] : entries_) {  // lint: ordered-ok
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    for (uint64_t key : keys) {
      total += static_cast<int>(key);
    }
    return total;
  }
};
