// Fixture for the trace-span-balance rule: manual spans that leak on some
// path. Three diagnostics expected.
#include "src/trace/trace.h"

namespace demo {

// 1. No TRACE_SPAN_END anywhere in the enclosing block.
void NeverEnded(int machine) {
  TRACE_SPAN_BEGIN(span, "demo.never", machine, "");
  DoWork();
}

// 2. co_return on the error path leaks the span (the end only covers the
// fall-through path).
sim::Task<void> EarlyCoReturn(int machine, bool fail) {
  TRACE_SPAN_BEGIN(span, "demo.early", machine, "");
  if (fail) {
    co_return;
  }
  TRACE_SPAN_END(span, "status=done");
}

// 3. A plain return before the first end.
int EarlyReturn(int machine, int v) {
  TRACE_SPAN_BEGIN(span, "demo.ret", machine, "");
  if (v < 0) {
    return -1;
  }
  TRACE_SPAN_END(span, "");
  return v;
}

}  // namespace demo
