// Fixture for the trace-span-balance rule: balanced manual spans, the RAII
// guard, and a suppressed deliberate handoff all stay quiet.
#include "src/trace/trace.h"

namespace demo {

// Ending the span before each early exit is the sanctioned manual idiom.
sim::Task<void> EndedOnEveryPath(int machine, bool fail) {
  TRACE_SPAN_BEGIN(span, "demo.ok", machine, "");
  if (fail) {
    TRACE_SPAN_END(span, "status=error");
    co_return;
  }
  co_await DoWork();
  TRACE_SPAN_END(span, "status=done");
}

// The macro's stated use case: one span per iteration of a daemon loop.
sim::Task<void> DaemonLoop(int machine, bool stop) {
  while (!stop) {
    TRACE_SPAN_BEGIN(iter, "demo.iter", machine, "");
    co_await Tick();
    TRACE_SPAN_END(iter, "");
  }
}

// The RAII guard needs no manual end; the rule only watches the macros.
void RaiiGuard(int machine) {
  trace::Span span;
  span.Begin("demo.raii", machine);
  DoWork();
}

// A span deliberately left open (the peer ends it later) is suppressed on
// the begin line — and the suppression absorbs a live diagnostic, so the
// suppression-audit rule stays quiet too.
void HandoffBegin(int machine, uint64_t* out) {
  TRACE_SPAN_BEGIN(span, "demo.handoff", machine, "");  // lint: trace-span-balance-ok
  *out = span;
}

}  // namespace demo
