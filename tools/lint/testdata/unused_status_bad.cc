// Fixture: unused-status must fire when a Status/Result return value is
// silently dropped, including the payload of an awaited task.
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/sim/task.h"

base::Status Apply();
base::Result<int> Compute();
sim::Task<base::Result<void>> Flush();

sim::Task<void> Caller() {
  Apply();            // fires
  Compute();          // fires
  co_await Flush();   // fires: the awaited Result is dropped
}
