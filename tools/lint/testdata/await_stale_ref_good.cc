// Fixture: await-stale-ref must stay quiet when the value is re-acquired
// after the suspension, copied out before it, produced by the await itself,
// or suppressed at the binding.
#include <map>

#include "src/sim/task.h"

struct Entry {
  int value;
};

struct Table {
  Entry* Find(int key);  // unstable: returns a raw pointer
  sim::Task<void> Flush();
  sim::Task<Entry> Fetch(int key);
  std::map<int, Entry> entries_;
};

sim::Task<int> ReacquireAfterAwait(Table& table) {
  Entry* e = table.Find(1);
  co_await table.Flush();
  e = table.Find(1);
  co_return e->value;
}

sim::Task<int> CopyBeforeAwait(Table& table) {
  Entry* e = table.Find(1);
  int value = e->value;
  co_await table.Flush();
  co_return value;
}

sim::Task<int> ProducedByAwait(Table& table) {
  Entry fresh = co_await table.Fetch(1);
  co_await table.Flush();
  co_return fresh.value;
}

sim::Task<int> SuspendingBranchReturns(Table& table, bool flush) {
  Entry* e = table.Find(1);
  if (flush) {
    co_await table.Flush();
    co_return 0;
  }
  co_return e->value;  // quiet: the branch that suspended already returned
}

sim::Task<int> SuppressedAtBinding(Table& table) {
  Entry* e = table.Find(1);  // lint: await-stale-ref-ok
  co_await table.Flush();
  co_return e->value;
}
