// Fixture: lock-order must fire when two functions acquire the same pair of
// locks in opposite orders — each path is locally balanced, but two
// activities interleaving them can each hold one lock and wait forever on
// the other.
#include "src/sim/sync.h"
#include "src/sim/task.h"

struct Pair {
  sim::Task<bool> Work();
  sim::Task<void> FlushThenLog();
  sim::Task<void> LogThenFlush();
  sim::Mutex flush_;
  sim::Mutex log_;
};

sim::Task<void> Pair::FlushThenLog() {
  co_await flush_.Acquire();
  co_await log_.Acquire();  // edge flush_ -> log_
  co_await Work();
  log_.Release();
  flush_.Release();
}

sim::Task<void> Pair::LogThenFlush() {
  co_await log_.Acquire();
  co_await flush_.Acquire();  // fires: edge log_ -> flush_ closes the cycle
  co_await Work();
  flush_.Release();
  log_.Release();
}
