// Fixture: coro-lambda must fire on a reference-capturing coroutine lambda.
#include "src/sim/simulator.h"
#include "src/sim/task.h"

void Spawner(sim::Simulator& simulator, int& counter) {
  simulator.Spawn([&]() -> sim::Task<void> {  // fires
    ++counter;
    co_return;
  }());
}
