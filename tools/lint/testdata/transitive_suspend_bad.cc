// Fixture: the flow rules must treat a call to a *transitively* may-suspend
// function as a suspension point. Nothing in the victim functions spells
// co_await next to the hazard: the suspension is two call-graph hops away
// (Settle -> Drain -> Sync, where Sync is a Task-returning declaration with
// no visible body and therefore conservatively suspends).
#include <map>

#include "src/sim/task.h"

struct Entry {
  int value;
};

struct Store {
  Entry* Find(int key);    // unstable: returns a raw pointer
  sim::Task<void> Sync();  // no body anywhere: conservatively suspends
  void Drain() { pending_ = Sync(); }  // hop 1: calls Sync
  void Settle() { Drain(); }           // hop 2: calls Drain
  sim::Task<void> pending_;
  std::map<int, Entry> entries_;
};

sim::Task<int> PointerAcrossHelper(Store& store) {
  Entry* e = store.Find(1);
  store.Settle();      // a suspension point via the two-hop call chain
  co_return e->value;  // fires await-stale-ref
}

struct Batcher {
  sim::Task<int> CountAfterSettle() {
    bool had_any = !store_.entries_.empty();
    store_.Settle();  // may-suspend: the snapshot can go stale
    if (had_any) {    // fires await-cached-size
      co_return 1;
    }
    co_return 0;
  }
  Store store_;
};
