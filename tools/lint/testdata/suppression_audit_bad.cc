// Fixture: suppression-audit must fire on a suppression that no longer
// absorbs any diagnostic and on a suppression naming an unknown rule.
#include "src/sim/task.h"

sim::Task<void> Work();

sim::Task<void> Caller() {
  co_await Work();  // lint: task-dropped-ok
  int x = 0;        // lint: not-a-rule-ok
  (void)x;
  co_return;
}
