// Fixture: every dishonest or dangling `// lint: no-suspend` annotation is
// a suppression-audit error — one that pins no function, one that pins a
// function that could never classify may-suspend, and one that tries to
// waive a literal co_await.
#include "src/sim/task.h"

struct Worker {
  sim::Task<void> Flush();
  int counter_ = 0;
};

// fires suppression-audit: not attached to any function declaration.
// lint: no-suspend
static int kBatchLimit = 8;

// fires suppression-audit: pins a plain declaration that was never going to
// be classified may-suspend.
int Tally(const Worker& w);  // lint: no-suspend

// fires suppression-audit: a literal co_await cannot be waived.
// lint: no-suspend
sim::Task<void> PumpOnce(Worker& w) {
  co_await w.Flush();
}
