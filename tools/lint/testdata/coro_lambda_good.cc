// Fixture: coro-lambda must stay quiet on value-capturing coroutine lambdas
// and on reference-capturing lambdas that are plain functions.
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/task.h"

void Spawner(sim::Simulator& simulator, int counter) {
  simulator.Spawn([counter]() -> sim::Task<void> { co_return; }());

  int total = 0;
  auto accumulate = [&total](int x) { total += x; };
  accumulate(counter);

  std::vector<int> values{1, 2, 3};
  int first = values[0];  // subscript, not a lambda
  accumulate(first);
}
