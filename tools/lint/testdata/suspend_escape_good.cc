// Fixture: suspend-escape must stay quiet for value reads through the
// handle in the argument list, for callees the call graph cannot show to
// suspend, and for an audited handoff waived at the escape site.
#include <map>

#include "src/sim/task.h"

struct Entry {
  int value;
};

struct Table {
  Entry* Find(int key);  // unstable: returns a raw pointer
  int Peek(Entry* e);    // plain declaration: never shown to suspend
  sim::Task<void> Record(int value);
  sim::Task<void> Consume(Entry* e);
  std::map<int, Entry> entries_;
};

// Reading a value *through* the handle inside the argument list is a
// pre-suspension read, not an escape.
sim::Task<void> ValueReadIntoCallee(Table& table) {
  Entry* e = table.Find(1);
  co_await table.Record(e->value);  // quiet
}

// Passing the handle to a function with no call-graph evidence of
// suspension stays quiet (conservative, matching the statement rules).
sim::Task<void> PointerIntoOpaqueCallee(Table& table) {
  co_await table.Record(0);
  Entry* e = table.Find(1);
  int n = table.Peek(e);  // quiet: Peek cannot be shown to suspend
  co_await table.Record(n);
}

// An audited handoff: the suppression on the escape line is honored (and
// counted by suppression-audit as used).
sim::Task<void> AuditedHandoff(Table& table) {
  Entry* e = table.Find(1);
  // The callee reads the entry before its first suspension only.
  // lint: suspend-escape-ok
  co_await table.Consume(e);  // quiet: waived
}
