// Fixture: task-dropped must stay quiet when the task is awaited, stored,
// spawned, or returned.
#include <utility>

#include "src/sim/simulator.h"
#include "src/sim/task.h"

sim::Task<void> Background();

sim::Task<void> Caller(sim::Simulator& simulator) {
  co_await Background();
  sim::Task<void> kept = Background();
  simulator.Spawn(std::move(kept));
  simulator.Spawn(Background());
}

sim::Task<void> Forwarder() { return Background(); }
