// Fixture: nondet must stay quiet on the simulator's seeded RNG and clock,
// on members that merely share a banned name, and on suppressed lines.
#include <ctime>

#include "src/sim/random.h"
#include "src/sim/simulator.h"

struct Telemetry {
  unsigned time(int scale) { return 7u * scale; }
};

uint64_t SeededDraw(sim::Simulator& simulator, sim::Rng& rng) {
  Telemetry t;
  uint64_t x = rng.Next() + t.time(2);
  x += static_cast<uint64_t>(simulator.Now());
  x += static_cast<uint64_t>(time(nullptr));  // lint: nondet-ok
  return x;
}
