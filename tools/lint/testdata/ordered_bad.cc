// Fixture: ordered must fire on range-for over an unordered container when
// the file lives in an order-sensitive directory (the test registers this
// fixture under src/sim/).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Table {
  std::unordered_map<uint64_t, int> entries_;
  std::unordered_set<uint64_t> live_;

  int Sum() const {
    int total = 0;
    for (const auto& [key, value] : entries_) {  // fires
      total += value;
    }
    for (uint64_t id : live_) {  // fires
      total += static_cast<int>(id);
    }
    return total;
  }
};
