// Fixture: lock-order must stay quiet when every path acquires the locks in
// one global order, including an edge contributed through a callee's
// may-acquire set rather than a direct nested acquire.
#include "src/sim/sync.h"
#include "src/sim/task.h"

struct Pair {
  sim::Task<bool> Work();
  sim::Task<void> FlushThenLog();
  sim::Task<void> LockLog();
  sim::Task<void> FlushThenLogViaCallee();
  sim::Mutex flush_;
  sim::Mutex log_;
};

sim::Task<void> Pair::FlushThenLog() {
  co_await flush_.Acquire();
  co_await log_.Acquire();  // edge flush_ -> log_
  co_await Work();
  log_.Release();
  flush_.Release();
}

sim::Task<void> Pair::LockLog() {
  co_await log_.Acquire();
  co_await Work();
  log_.Release();
}

sim::Task<void> Pair::FlushThenLogViaCallee() {
  co_await flush_.Acquire();
  co_await LockLog();  // propagated edge flush_ -> log_: same order, quiet
  flush_.Release();
}
