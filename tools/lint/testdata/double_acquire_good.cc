// Fixture: double-acquire must stay quiet on re-acquire after release, on
// counting semaphores, on distinct accessor-minted instances, on a call made
// after releasing, and on accessor families held across a call (the
// arguments may differ, so the family stays conservative-quiet).
#include "src/sim/sync.h"
#include "src/sim/task.h"

struct Queue {
  sim::Task<bool> Drain();
  sim::Mutex& FileLock(int id);
  sim::Task<void> ReacquireAfterRelease();
  sim::Task<void> SemReacquire();
  sim::Task<void> TwoInstances();
  sim::Task<void> LockedHelper();
  sim::Task<void> CallsHelperAfterRelease();
  sim::Task<void> LockOther(int id);
  sim::Task<void> HoldOneLockAnother();
  sim::Mutex mu_;
  sim::Semaphore slots_{2};
};

sim::Task<void> Queue::ReacquireAfterRelease() {
  co_await mu_.Acquire();
  mu_.Release();
  co_await mu_.Acquire();  // quiet: nothing held at this point
  mu_.Release();
}

sim::Task<void> Queue::SemReacquire() {
  co_await slots_.Acquire();
  co_await slots_.Acquire();  // quiet: counting semaphore, not a mutex
  slots_.Release();
  slots_.Release();
}

sim::Task<void> Queue::TwoInstances() {
  sim::Mutex& one = FileLock(1);
  sim::Mutex& two = FileLock(2);
  co_await one.Acquire();
  co_await two.Acquire();  // quiet: a different instance of the family
  two.Release();
  one.Release();
}

sim::Task<void> Queue::LockedHelper() {
  co_await mu_.Acquire();
  co_await Drain();
  mu_.Release();
}

sim::Task<void> Queue::CallsHelperAfterRelease() {
  co_await mu_.Acquire();
  mu_.Release();
  co_await LockedHelper();  // quiet: mu_ already released
}

sim::Task<void> Queue::LockOther(int id) {
  sim::Mutex& lock = FileLock(id);
  co_await lock.Acquire();
  lock.Release();
}

sim::Task<void> Queue::HoldOneLockAnother() {
  sim::Mutex& one = FileLock(1);
  co_await one.Acquire();
  co_await LockOther(2);  // quiet: same family, different instance
  one.Release();
}
