// Fixture: unused-status must stay quiet when the value is consumed,
// explicitly discarded with (void), or suppressed.
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/sim/task.h"

base::Status Apply();
base::Result<int> Compute();
sim::Task<base::Result<void>> Flush();

sim::Task<base::Status> Caller() {
  base::Status status = Apply();
  if (!status.ok()) {
    co_return status;
  }
  base::Result<int> result = Compute();
  (void)Compute();
  (void)co_await Flush();
  Apply();  // lint: unused-status-ok
  co_return base::OkStatus();
}
