// Fixture: suppression-audit must stay quiet when every suppression absorbs
// a real diagnostic.
#include "src/sim/task.h"

sim::Task<void> Background();

void Caller() {
  Background();  // lint: task-dropped-ok
}
