// Fixture: await-cached-size must fire when a container size or emptiness
// snapshot taken before a suspension point is read after it.
#include <map>

#include "src/sim/task.h"

struct Server {
  sim::Task<void> Drain();
  sim::Task<int> SizeAfterAwait();
  sim::Task<int> EmptyAfterAwait();
  std::map<int, int> sessions_;
};

sim::Task<int> Server::SizeAfterAwait() {
  size_t n = sessions_.size();
  co_await Drain();
  if (n > 0) {  // fires: the map may have changed while draining
    co_return 1;
  }
  co_return 0;
}

sim::Task<int> Server::EmptyAfterAwait() {
  bool none = sessions_.empty();
  co_await Drain();
  if (none) {  // fires
    co_return 0;
  }
  co_return 1;
}
