// Symbol table, call graph, and transitive may-suspend fixpoint (see
// callgraph.h for the contract).
#include "tools/lint/callgraph.h"

#include <set>
#include <string>
#include <vector>

namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsIdent(const std::vector<Token>& t, size_t i, const char* text = nullptr) {
  return i < t.size() && t[i].kind == TokKind::kIdent && (text == nullptr || t[i].text == text);
}

bool IsPunct(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == text;
}

// Keywords that look like call sites (`ident (`) but are not.
bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "while",     "for",      "switch",   "catch",  "return", "co_return",
      "co_await", "co_yield", "sizeof",  "alignof",  "typeid", "new",    "delete",
      "throw",  "noexcept",  "decltype", "alignas",  "assert", "static_assert",
      "defined", "operator"};
  return kKeywords.count(s) > 0;
}

// Control keywords that own a `(...)` before a block.
bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "while" || s == "for" || s == "switch" || s == "catch";
}

// Per-file token geometry: bracket matching, class context, lambda bounds.
struct FileScan {
  const std::vector<Token>& t;
  std::vector<size_t> match;    // opener index -> closer index
  std::vector<size_t> open_of;  // closer index -> opener index
  std::vector<std::string> cls;  // innermost enclosing class name per token

  explicit FileScan(const std::vector<Token>& tokens) : t(tokens) {
    BuildMatchTables();
    BuildClassContext();
  }

  void BuildMatchTables() {
    match.assign(t.size(), kNpos);
    open_of.assign(t.size(), kNpos);
    std::vector<size_t> stack;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t[i].text;
      if (p == "(" || p == "{" || p == "[") {
        stack.push_back(i);
      } else if (p == ")" || p == "}" || p == "]") {
        const char* want = p == ")" ? "(" : p == "}" ? "{" : "[";
        while (!stack.empty() && t[stack.back()].text != want) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          match[stack.back()] = i;
          open_of[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  // Marks, for every token, the innermost `class`/`struct`/`union` body it
  // sits in (empty outside class bodies; namespaces are not part of
  // qualified names in this codebase's out-of-line definitions).
  void BuildClassContext() {
    cls.assign(t.size(), std::string());
    // Class-body braces: `class|struct|union NAME ... {` with no `;` before
    // the `{` (which would make it a forward declaration).
    std::vector<std::pair<size_t, std::string>> class_open;  // (brace index, name)
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (!IsIdent(t, i) ||
          (t[i].text != "class" && t[i].text != "struct" && t[i].text != "union")) {
        continue;
      }
      if (i > 0 && IsIdent(t, i - 1, "enum")) {
        continue;  // enum class
      }
      // Name: the last of the consecutive identifiers after the keyword
      // (tolerates an export macro between keyword and name).
      size_t j = i + 1;
      std::string name;
      while (IsIdent(t, j)) {
        name = t[j].text;
        ++j;
      }
      if (name.empty()) {
        continue;  // anonymous struct / lambda-local
      }
      // Find the body brace before any `;` (base lists contain no braces).
      for (size_t k = j; k < t.size() && k < j + 64; ++k) {
        if (IsPunct(t, k, ";") || IsPunct(t, k, ")") || IsPunct(t, k, "=")) {
          break;  // forward declaration / parameter / alias
        }
        if (IsPunct(t, k, "{")) {
          if (match[k] != kNpos) {
            class_open.push_back({k, name});
          }
          break;
        }
      }
    }
    std::vector<std::pair<size_t, std::string>> stack;  // (closer index, name)
    size_t next_open = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      while (!stack.empty() && i > stack.back().first) {
        stack.pop_back();
      }
      if (next_open < class_open.size() && class_open[next_open].first == i) {
        stack.push_back({match[i], class_open[next_open].second});
        ++next_open;
      }
      if (!stack.empty()) {
        cls[i] = stack.back().second;
      }
    }
  }

  // `[` beginning a lambda introducer (not a subscript or attribute).
  bool IsLambdaStart(size_t i) const {
    if (!IsPunct(t, i, "[") || IsPunct(t, i + 1, "[")) {
      return false;
    }
    if (i > 0 && (t[i - 1].kind == TokKind::kIdent || t[i - 1].kind == TokKind::kNumber ||
                  IsPunct(t, i - 1, ")") || IsPunct(t, i - 1, "]"))) {
      return false;
    }
    return true;
  }

  // For a lambda starting at `[` index i, the index just past its body's
  // closing `}` (kNpos when no body is found nearby).
  size_t SkipLambda(size_t i) const {
    size_t close = match[i];
    if (close == kNpos) {
      return kNpos;
    }
    size_t j = close + 1;
    if (IsPunct(t, j, "(")) {
      if (match[j] == kNpos) {
        return kNpos;
      }
      j = match[j] + 1;
    }
    for (size_t k = j; k < t.size() && k < j + 40; ++k) {
      if (IsPunct(t, k, "{")) {
        return match[k] == kNpos ? kNpos : match[k] + 1;
      }
      if (IsPunct(t, k, ";") || IsPunct(t, k, ")") || IsPunct(t, k, ",")) {
        break;
      }
    }
    return kNpos;
  }

  // For a function body opening at `{` index b, the index of the function
  // name's last component, or kNpos when b is not a named function body
  // (control block, lambda, namespace, initializer list, ...). Walks back
  // over cv-qualifiers and trailing return types to the parameter list, then
  // back through constructor member-initializers (`: a_(x), b_{y}`) to the
  // real signature.
  size_t SignatureName(size_t b) const {
    size_t j = b;
    while (j > 0) {
      --j;
      const Token& tok = t[j];
      if (tok.kind == TokKind::kIdent) {
        continue;  // qualifier or trailing-return-type component
      }
      if (tok.kind == TokKind::kPunct &&
          (tok.text == "::" || tok.text == "<" || tok.text == ">" || tok.text == "*" ||
           tok.text == "&" || tok.text == "->" || tok.text == ",")) {
        continue;
      }
      break;
    }
    // The walk must land on the `)` of a parameter list (or of the last
    // member initializer, which the loop below unwinds).
    while (true) {
      if (!IsPunct(t, j, ")") && !IsPunct(t, j, "}")) {
        return kNpos;
      }
      size_t open = open_of[j];
      if (open == kNpos || open == 0 || !IsIdent(t, open - 1)) {
        return kNpos;  // `](...)` lambda parameter list, or malformed
      }
      size_t head = open - 1;
      while (head >= 2 && IsPunct(t, head - 1, "::") && IsIdent(t, head - 2)) {
        head -= 2;
      }
      if (head > 0 && (IsPunct(t, head - 1, ":") || IsPunct(t, head - 1, ","))) {
        // Constructor member initializer `name(...)` / `name{...}`: step
        // back past the `:`/`,` to the previous `)`/`}` and keep walking.
        if (head < 2) {
          return kNpos;
        }
        j = head - 2;
        continue;
      }
      size_t name = open - 1;
      if (IsControlKeyword(t[name].text) || (name > 0 && IsIdent(t, name - 1, "operator")) ||
          t[name].text == "operator") {
        return kNpos;
      }
      return name;
    }
  }

  // Does the window of tokens before the name chain spell a Task return
  // type?
  bool ReturnsTask(size_t name) const {
    size_t head = name;
    while (head >= 2 && IsPunct(t, head - 1, "::") && IsIdent(t, head - 2)) {
      head -= 2;
    }
    size_t lo = head > 18 ? head - 18 : 0;
    for (size_t j = head; j > lo; --j) {
      const Token& tok = t[j - 1];
      if (tok.kind == TokKind::kPunct &&
          (tok.text == ";" || tok.text == "{" || tok.text == "}" || tok.text == "(")) {
        break;
      }
      if (tok.kind == TokKind::kIdent && tok.text == "Task") {
        return true;
      }
    }
    return false;
  }
};

}  // namespace

Function& CallGraph::Intern(const std::string& qual, const std::string& name,
                            const std::string& file, int line, bool is_definition) {
  auto [it, inserted] = by_qual_.try_emplace(qual, fns_.size());
  if (inserted) {
    Function f;
    f.qual = qual;
    f.name = name;
    f.file = file;
    f.line = line;
    fns_.push_back(std::move(f));
    by_name_[name].push_back(it->second);
  }
  Function& f = fns_[it->second];
  if (is_definition && !f.has_body) {
    // Prefer the definition site for display.
    f.file = file;
    f.line = line;
  }
  return f;
}

void CallGraph::AddFile(const std::string& path, const LexResult& lex) {
  const std::vector<Token>& t = lex.tokens;
  FileScan scan(t);

  // --- pass A: Task-returning declarations (decl-only conservatism) -------
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t, i, "Task") || !IsPunct(t, i + 1, "<")) {
      continue;
    }
    // Balanced template scan, bounded by statement punctuation.
    size_t after = kNpos;
    int depth = 0;
    for (size_t j = i + 1; j < t.size() && j < i + 1 + 400; ++j) {
      if (t[j].kind != TokKind::kPunct) {
        continue;
      }
      const std::string& p = t[j].text;
      if (p == "<") {
        ++depth;
      } else if (p == ">") {
        if (--depth == 0) {
          after = j + 1;
          break;
        }
      } else if (p == ";" || p == "{" || p == "}") {
        break;
      }
    }
    if (after == kNpos) {
      continue;
    }
    if (IsPunct(t, after, "&") || IsPunct(t, after, "&&") || IsPunct(t, after, "*")) {
      continue;  // reference/pointer to a task, not a coroutine declaration
    }
    // Scoped name chain, then `(`.
    if (!IsIdent(t, after)) {
      continue;
    }
    size_t name = after;
    size_t k = after + 1;
    while (IsPunct(t, k, "::") && IsIdent(t, k + 1)) {
      name = k + 1;
      k += 2;
    }
    if (!IsPunct(t, k, "(")) {
      continue;
    }
    size_t rparen = scan.match[k];
    if (rparen == kNpos) {
      continue;
    }
    // Declaration when qualifiers lead to `;`; a `{` means the definition
    // pass will record it.
    bool is_decl = false;
    for (size_t j = rparen + 1; j < t.size() && j < rparen + 16; ++j) {
      if (IsPunct(t, j, ";")) {
        is_decl = true;
        break;
      }
      if (IsPunct(t, j, "{") || IsPunct(t, j, ":")) {
        break;
      }
    }
    if (!is_decl) {
      continue;
    }
    std::string last = t[name].text;
    std::string qual = last;
    if (name >= 2 && IsPunct(t, name - 1, "::") && IsIdent(t, name - 2)) {
      qual = t[name - 2].text + "::" + last;
    } else if (!scan.cls[name].empty()) {
      qual = scan.cls[name] + "::" + last;
    }
    Function& f = Intern(qual, last, path, t[name].line, /*is_definition=*/false);
    f.returns_task = true;
    if (lex.no_suspend_lines.count(t[name].line) > 0) {
      f.no_suspend = true;
      annot_sites_[{path, t[name].line}] = by_qual_.at(qual);
    }
    if (lex.lock_escapes_lines.count(t[name].line) > 0) {
      f.lock_escapes = true;
      lock_annot_sites_[{path, t[name].line}] = by_qual_.at(qual);
    }
  }

  // --- pass A2: annotated plain declarations ------------------------------
  // Non-Task declarations are normally not recorded (callgraph.h), but a
  // `// lint: no-suspend` pin on one must still attach — the natural home
  // for the annotation is the header declaration, not the definition. The
  // record it creates is exactly the claim the pin makes: a known,
  // non-suspending function.
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    if (!IsIdent(t, i) || !IsPunct(t, i + 1, "(") || IsCallKeyword(t[i].text)) {
      continue;
    }
    if (lex.no_suspend_lines.count(t[i].line) == 0) {
      continue;
    }
    // Declaration shape: a return-type token right before the name (a call
    // starts a statement or follows `.`/`->`), and a `;` after the
    // parameter list.
    if (!((IsIdent(t, i - 1) && !IsCallKeyword(t[i - 1].text)) || IsPunct(t, i - 1, "*") ||
          IsPunct(t, i - 1, "&") || IsPunct(t, i - 1, ">"))) {
      continue;
    }
    size_t rparen = scan.match[i + 1];
    if (rparen == kNpos) {
      continue;
    }
    bool is_decl = false;
    for (size_t j = rparen + 1; j < t.size() && j < rparen + 16; ++j) {
      if (IsPunct(t, j, ";")) {
        is_decl = true;
        break;
      }
      if (IsPunct(t, j, "{") || IsPunct(t, j, ":") || IsPunct(t, j, "=")) {
        break;
      }
    }
    if (!is_decl) {
      continue;
    }
    std::string last = t[i].text;
    std::string qual = scan.cls[i].empty() ? last : scan.cls[i] + "::" + last;
    Function& f = Intern(qual, last, path, t[i].line, /*is_definition=*/false);
    f.no_suspend = true;
    annot_sites_[{path, t[i].line}] = by_qual_.at(qual);
  }

  // --- pass B: function definitions + their call sites --------------------
  for (size_t b = 0; b < t.size(); ++b) {
    if (!IsPunct(t, b, "{") || scan.match[b] == kNpos) {
      continue;
    }
    size_t name = scan.SignatureName(b);
    if (name == kNpos) {
      continue;
    }
    size_t close = scan.match[b];
    std::string last = t[name].text;
    std::string qual = last;
    if (name >= 2 && IsPunct(t, name - 1, "::") && IsIdent(t, name - 2)) {
      qual = t[name - 2].text + "::" + last;
    } else if (!scan.cls[name].empty()) {
      qual = scan.cls[name] + "::" + last;
    }
    Function& f = Intern(qual, last, path, t[name].line, /*is_definition=*/true);
    size_t fn_idx = by_qual_.at(qual);
    f.has_body = true;
    if (scan.ReturnsTask(name)) {
      f.returns_task = true;
    }
    if (lex.no_suspend_lines.count(t[name].line) > 0) {
      f.no_suspend = true;
      annot_sites_[{path, t[name].line}] = fn_idx;
    }
    if (lex.lock_escapes_lines.count(t[name].line) > 0) {
      f.lock_escapes = true;
      lock_annot_sites_[{path, t[name].line}] = fn_idx;
    }
    // Walk the body: direct suspensions and call sites, skipping nested
    // lambda bodies (a lambda is its own function on its own schedule).
    // Unqualified calls carry no qualifier here; SiteSuspends resolves them
    // against the enclosing class (derived from `qual`), which keeps the
    // resolution independent of file scan order.
    std::set<std::pair<std::string, std::string>> seen;
    for (size_t i = b + 1; i < close; ++i) {
      if (scan.IsLambdaStart(i)) {
        size_t past = scan.SkipLambda(i);
        if (past != kNpos && past <= close) {
          i = past - 1;
          continue;
        }
      }
      if (t[i].kind != TokKind::kIdent) {
        continue;
      }
      const std::string& id = t[i].text;
      if (id == "co_await" || id == "co_yield") {
        if (!f.direct_suspend) {
          f.direct_suspend = true;
          f.direct_suspend_line = t[i].line;
          f.why = "contains " + id + " (line " + std::to_string(t[i].line) + ")";
        }
        continue;
      }
      if (id == "resume" && IsPunct(t, i + 1, "(") &&
          (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"))) {
        // Resuming a coroutine handle is the primitive every pump loop is
        // built on: other coroutines run inside this call.
        if (!f.direct_suspend) {
          f.direct_suspend = true;
          f.direct_suspend_line = t[i].line;
          f.why = "resumes a coroutine handle (line " + std::to_string(t[i].line) + ")";
        }
        continue;
      }
      if (!IsPunct(t, i + 1, "(") || IsCallKeyword(id)) {
        continue;
      }
      if (i > 0 && IsPunct(t, i - 1, "~")) {
        continue;  // destructor call
      }
      CallSite site;
      site.name = id;
      site.line = t[i].line;
      if (i >= 2 && IsPunct(t, i - 1, "::") && IsIdent(t, i - 2)) {
        site.qualifier = t[i - 2].text;
      }
      if (seen.insert({site.qualifier, site.name}).second) {
        // fns_ may have grown since `f` was bound; re-index.
        fns_[fn_idx].calls.push_back(std::move(site));
      }
    }
  }
}

bool CallGraph::SiteSuspends(const CallSite& site, const std::string& caller_class,
                             std::string* out_callee) const {
  // Exact qualified resolution first.
  for (const std::string* cls : {&site.qualifier, &caller_class}) {
    if (cls->empty()) {
      continue;
    }
    auto it = by_qual_.find(*cls + "::" + site.name);
    if (it != by_qual_.end()) {
      const Function& f = fns_[it->second];
      if (f.may_suspend && out_callee != nullptr) {
        *out_callee = f.qual;
      }
      return f.may_suspend;
    }
  }
  // Bare-name resolution: every candidate must suspend.
  auto it = by_name_.find(site.name);
  if (it == by_name_.end() || it->second.empty()) {
    return false;
  }
  for (size_t idx : it->second) {
    if (!fns_[idx].may_suspend) {
      return false;
    }
  }
  if (out_callee != nullptr) {
    *out_callee = fns_[it->second.front()].qual;
  }
  return true;
}

bool CallGraph::CallSuspends(const std::string& qualifier, const std::string& name) const {
  CallSite site;
  site.name = name;
  site.qualifier = qualifier;
  return SiteSuspends(site, std::string(), nullptr);
}

void CallGraph::Finalize() {
  finalized_ = true;
  // Seed: literal suspensions and body-less Task declarations. A no-suspend
  // pin is honored unless the body visibly suspends (that would be a lie;
  // the audit reports it and the pin is ignored).
  for (Function& f : fns_) {
    bool pinned = f.no_suspend && !f.direct_suspend;
    f.may_suspend = !pinned && (f.direct_suspend || (f.returns_task && !f.has_body));
    if (pinned) {
      f.why = "pinned by // lint: no-suspend";
    } else if (f.may_suspend && !f.direct_suspend) {
      f.why = "Task-returning declaration without a visible body";
    }
  }
  // Fixpoint: a caller of a may-suspend function may suspend. Monotone
  // (flags only flip false -> true), so iteration order is immaterial.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Function& f : fns_) {
      if (f.may_suspend || !f.has_body || (f.no_suspend && !f.direct_suspend)) {
        continue;
      }
      std::string caller_class;
      size_t qpos = f.qual.find("::");
      if (qpos != std::string::npos) {
        caller_class = f.qual.substr(0, qpos);
      }
      for (const CallSite& site : f.calls) {
        std::string callee;
        if (SiteSuspends(site, caller_class, &callee)) {
          f.may_suspend = true;
          f.why = "calls " + callee + " (line " + std::to_string(site.line) + ")";
          changed = true;
          break;
        }
      }
    }
  }
  // Audit every annotation site against the final state.
  for (const auto& [site, idx] : annot_sites_) {
    const Function& f = fns_[idx];
    NoSuspendStatus status;
    status.qual = f.qual;
    if (f.direct_suspend) {
      status.use = NoSuspendUse::kLiteralAwait;
    } else {
      bool would = f.returns_task && !f.has_body;
      std::string caller_class;
      size_t qpos = f.qual.find("::");
      if (qpos != std::string::npos) {
        caller_class = f.qual.substr(0, qpos);
      }
      for (const CallSite& cs : f.calls) {
        if (would) {
          break;
        }
        would = SiteSuspends(cs, caller_class, nullptr);
      }
      status.use = would ? NoSuspendUse::kUsed : NoSuspendUse::kUnneeded;
    }
    annot_status_[site] = status;
  }
}

CallGraph::NoSuspendStatus CallGraph::NoSuspendStatusAt(const std::string& file,
                                                        int line) const {
  auto it = annot_status_.find({file, line});
  if (it == annot_status_.end()) {
    return NoSuspendStatus{};
  }
  return it->second;
}

const Function* CallGraph::Lookup(const std::string& qual) const {
  auto it = by_qual_.find(qual);
  return it == by_qual_.end() ? nullptr : &fns_[it->second];
}

std::vector<const Function*> CallGraph::Resolve(const std::string& qualifier,
                                                const std::string& caller_class,
                                                const std::string& name) const {
  for (const std::string* cls : {&qualifier, &caller_class}) {
    if (cls->empty()) {
      continue;
    }
    auto it = by_qual_.find(*cls + "::" + name);
    if (it != by_qual_.end()) {
      return {&fns_[it->second]};
    }
  }
  std::vector<const Function*> out;
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    for (size_t idx : it->second) {
      out.push_back(&fns_[idx]);
    }
  }
  return out;
}

std::string CallGraph::LockEscapeQualAt(const std::string& file, int line) const {
  auto it = lock_annot_sites_.find({file, line});
  return it == lock_annot_sites_.end() ? std::string() : fns_[it->second].qual;
}

}  // namespace lint
