// Raw simulator throughput: events/sec and sim-time-per-wall-second across
// four microloads, from the bare event queue up to a full protocol stack.
//
//   pure-timer  self-rescheduling closure timers with mixed near/far delays
//               (exercises the timer queue: fast lane and far-timer heap);
//   ping-pong   coroutine pairs bouncing tokens through channels (exercises
//               the Ready() resumption path, the dominant event kind);
//   rpc-echo    closed-loop NullReq RPCs between two peers over the
//               simulated network (resumptions + packet delivery closures);
//   andrew     one Andrew-benchmark trial on the SNFS remote-tmp rig (the
//               realistic mix: cache, disk, RPC, workload coroutines).
//
// This is the one bench family whose headline numbers depend on wall-clock
// time; everything else the repo measures is virtual. The JSON therefore
// separates deterministic fields (events, work units, simulated seconds)
// from machine-dependent ones (wall seconds, events/sec). Snapshots are
// checked in at the repo root as BENCH_simperf.json per the ROADMAP's
// perf-trajectory item; see EXPERIMENTS.md for how to read them.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/table.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/workload/andrew.h"

namespace {

using metrics::Table;

struct LoadResult {
  std::string name;
  uint64_t events = 0;      // simulator events processed
  uint64_t work_units = 0;  // load-specific: timer hops, rounds, calls, trials
  double sim_sec = 0;       // virtual time elapsed
  double wall_sec = 0;      // host time elapsed (machine-dependent)

  double events_per_sec() const { return wall_sec > 0 ? events / wall_sec : 0; }
  double sim_per_wall() const { return wall_sec > 0 ? sim_sec / wall_sec : 0; }
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// --- pure-timer -------------------------------------------------------------

// A battery of timers, each rescheduling itself with a rotating delay mix:
// mostly near-future (fast-lane territory), occasionally seconds out (heap
// territory), so both sides of the timer queue are exercised.
struct SelfTimer {
  sim::Simulator& simulator;
  uint64_t& hops;
  uint64_t target;
  int step;

  void Fire() {
    static constexpr sim::Duration kDelays[] = {sim::Usec(50), sim::Usec(700), sim::Msec(3),
                                                sim::Msec(40), sim::Sec(2)};
    if (hops >= target) {
      return;
    }
    ++hops;
    ++step;
    simulator.Schedule(kDelays[step % 5], [this] { Fire(); });
  }
};

LoadResult RunPureTimer(uint64_t hops_target) {
  sim::Simulator simulator;
  uint64_t hops = 0;
  std::vector<SelfTimer> timers;
  timers.reserve(64);
  for (int i = 0; i < 64; ++i) {
    timers.push_back(SelfTimer{simulator, hops, hops_target, i});
  }
  WallTimer wall;
  for (SelfTimer& t : timers) {
    t.Fire();
  }
  simulator.Run();
  LoadResult r;
  r.name = "pure_timer";
  r.events = simulator.events_processed();
  r.work_units = hops;
  r.sim_sec = sim::ToSeconds(simulator.Now());
  r.wall_sec = wall.Seconds();
  return r;
}

// --- coroutine ping-pong ----------------------------------------------------

sim::Task<void> Pinger(sim::Channel<int>& tx, sim::Channel<int>& rx, uint64_t rounds) {
  for (uint64_t i = 0; i < rounds; ++i) {
    tx.Send(static_cast<int>(i));
    co_await rx.Recv();
  }
  tx.Close();
}

sim::Task<void> Ponger(sim::Channel<int>& rx, sim::Channel<int>& tx) {
  while (true) {
    std::optional<int> v = co_await rx.Recv();
    if (!v.has_value()) {
      co_return;
    }
    tx.Send(*v);
  }
}

LoadResult RunPingPong(uint64_t rounds_per_pair) {
  sim::Simulator simulator;
  constexpr int kPairs = 8;
  std::vector<std::unique_ptr<sim::Channel<int>>> channels;
  for (int i = 0; i < 2 * kPairs; ++i) {
    channels.push_back(std::make_unique<sim::Channel<int>>(simulator));
  }
  WallTimer wall;
  for (int i = 0; i < kPairs; ++i) {
    simulator.Spawn(Pinger(*channels[2 * i], *channels[2 * i + 1], rounds_per_pair));
    simulator.Spawn(Ponger(*channels[2 * i], *channels[2 * i + 1]));
  }
  simulator.Run();
  LoadResult r;
  r.name = "ping_pong";
  r.events = simulator.events_processed();
  r.work_units = rounds_per_pair * kPairs;
  r.sim_sec = sim::ToSeconds(simulator.Now());
  r.wall_sec = wall.Seconds();
  return r;
}

// --- rpc-echo ---------------------------------------------------------------

sim::Task<void> EchoCaller(rpc::Peer& client, net::Address server, uint64_t calls,
                           uint64_t& completed) {
  for (uint64_t i = 0; i < calls; ++i) {
    auto reply = co_await client.Call(server, proto::NullReq{});
    CHECK(reply.ok());
    ++completed;
  }
}

LoadResult RunRpcEcho(uint64_t calls_per_caller) {
  sim::Simulator simulator;
  net::Network network(simulator, {}, /*seed=*/42);
  sim::Cpu client_cpu(simulator);
  sim::Cpu server_cpu(simulator);
  rpc::Peer client(simulator, network, client_cpu, "client");
  rpc::Peer server(simulator, network, server_cpu, "server");
  server.set_handler([](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
    co_return proto::OkReply(proto::NullRep{});
  });
  client.Start();
  server.Start();

  constexpr int kCallers = 4;
  uint64_t completed = 0;
  WallTimer wall;
  for (int i = 0; i < kCallers; ++i) {
    simulator.Spawn(EchoCaller(client, server.address(), calls_per_caller, completed));
  }
  simulator.Run();
  LoadResult r;
  r.name = "rpc_echo";
  r.events = simulator.events_processed();
  r.work_units = completed;
  r.sim_sec = sim::ToSeconds(simulator.Now());
  r.wall_sec = wall.Seconds();
  CHECK_EQ(completed, calls_per_caller * kCallers);
  client.Shutdown();
  server.Shutdown();
  return r;
}

// --- andrew replay ----------------------------------------------------------

LoadResult RunAndrewReplay(int trials) {
  testbed::RigOptions options;
  options.protocol = testbed::Protocol::kSnfs;
  options.remote_tmp = true;
  testbed::Rig rig(options);

  workload::AndrewShape shape;
  rig.simulator().Spawn(workload::PopulateAndrewTree(rig.data_fs(), rig.data_parent(), shape));
  rig.simulator().Run();

  uint64_t events0 = rig.simulator().events_processed();
  sim::Time sim0 = rig.simulator().Now();
  WallTimer wall;
  for (int trial = 0; trial < trials; ++trial) {
    workload::AndrewConfig config;
    config.src_root = rig.data_root() + "/src";
    config.target_root = rig.data_root() + "/t" + std::to_string(trial);
    config.tmp_dir = rig.tmp_dir();
    config.shape = shape;
    bool ok = false;
    rig.simulator().Spawn(
        [](testbed::Rig& rig, workload::AndrewConfig config, bool* ok) -> sim::Task<void> {
          auto report = co_await workload::RunAndrew(rig.simulator(), rig.client().vfs(),
                                                     rig.client().cpu(), config);
          CHECK(report.ok());
          *ok = true;
        }(rig, config, &ok));
    rig.simulator().Run();
    CHECK(ok);
  }
  LoadResult r;
  r.name = "andrew_replay";
  r.events = rig.simulator().events_processed() - events0;
  r.work_units = static_cast<uint64_t>(trials);
  r.sim_sec = sim::ToSeconds(rig.simulator().Now() - sim0);
  r.wall_sec = wall.Seconds();
  return r;
}

// --- output -----------------------------------------------------------------

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string LoadJson(const LoadResult& r) {
  std::string out = "{";
  out += "\"events\":" + std::to_string(r.events);
  out += ",\"work_units\":" + std::to_string(r.work_units);
  out += ",\"sim_elapsed_s\":" + JsonNum(r.sim_sec);
  out += ",\"wall_s\":" + JsonNum(r.wall_sec);
  out += ",\"events_per_sec\":" + JsonNum(r.events_per_sec());
  out += ",\"sim_s_per_wall_s\":" + JsonNum(r.sim_per_wall());
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json=<path>] [--smoke]\n", argv[0]);
      return 2;
    }
  }

  // Smoke sizes keep the whole binary under ~1s for scripts/check.sh; full
  // sizes run each load long enough for stable events/sec.
  uint64_t timer_hops = smoke ? 50'000 : 2'000'000;
  uint64_t pingpong_rounds = smoke ? 20'000 : 500'000;  // per pair
  uint64_t echo_calls = smoke ? 2'000 : 50'000;         // per caller
  int andrew_trials = smoke ? 1 : 2;

  std::printf("=== bench_simperf: raw simulator throughput ===\n\n");
  std::vector<LoadResult> results;
  results.push_back(RunPureTimer(timer_hops));
  results.push_back(RunPingPong(pingpong_rounds));
  results.push_back(RunRpcEcho(echo_calls));
  results.push_back(RunAndrewReplay(andrew_trials));

  Table t({"Load", "Events", "Work units", "Sim s", "Wall s", "Events/s", "Sim s/wall s"});
  for (const LoadResult& r : results) {
    t.AddRow({r.name, Table::Int(r.events), Table::Int(r.work_units), Table::Num(r.sim_sec, 2),
              Table::Num(r.wall_sec, 3), Table::Num(r.events_per_sec(), 0),
              Table::Num(r.sim_per_wall(), 1)});
  }
  t.Print();

  if (!json_path.empty()) {
    std::vector<std::pair<std::string, std::string>> configs;
    for (const LoadResult& r : results) {
      configs.emplace_back(r.name, LoadJson(r));
    }
    bench::WriteBenchJson(json_path, "simperf", configs);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
