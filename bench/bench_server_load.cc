// Reproduces paper Figures 5-1 and 5-2: server CPU utilization and RPC call
// rates (total, read, write) over time while the Andrew benchmark runs with
// /tmp remotely mounted, for NFS and for SNFS.
//
// The figures' headline observation: "The load ... was strongly correlated
// with the aggregate rate of RPC calls; it was NOT correlated with the rate
// of read or write calls", and the SNFS run completes faster with a
// slightly lower load integral but slightly higher (burstier) average load.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/metrics/table.h"
#include "src/metrics/time_series.h"
#include "src/testbed/rig.h"
#include "src/workload/andrew.h"

namespace {

using metrics::TimeSeries;
using testbed::Protocol;
using testbed::Rig;
using testbed::RigOptions;

constexpr sim::Duration kWindow = sim::Sec(10);

struct LoadTrace {
  TimeSeries utilization;   // server CPU busy fraction per window
  TimeSeries total_rate;    // RPC calls/s per window
  TimeSeries read_rate;
  TimeSeries write_rate;
  sim::Duration elapsed = 0;
  sim::Duration cpu_integral = 0;  // total busy time
};

LoadTrace RunTrace(Protocol protocol) {
  RigOptions options;
  options.protocol = protocol;
  options.remote_tmp = true;
  Rig rig(options);

  workload::AndrewShape shape;
  rig.simulator().Spawn(workload::PopulateAndrewTree(rig.data_fs(), rig.data_parent(), shape));
  rig.simulator().Run();

  workload::AndrewConfig config;
  config.src_root = rig.data_root() + "/src";
  config.target_root = rig.data_root() + "/target";
  config.tmp_dir = rig.tmp_dir();
  config.shape = shape;

  LoadTrace trace;
  bool done = false;

  // Sampler daemon: every window, record utilization and rates.
  rig.simulator().Spawn([](Rig& rig, LoadTrace& trace, bool& done) -> sim::Task<void> {
    sim::Duration last_busy = rig.server()->cpu().busy_time();
    metrics::OpCounters last_ops = rig.server()->peer().server_ops();
    while (!done) {
      co_await sim::Sleep(rig.simulator(), kWindow, /*background=*/true);
      sim::Time now = rig.simulator().Now();
      sim::Duration busy = rig.server()->cpu().busy_time();
      metrics::OpCounters ops = rig.server()->peer().server_ops();
      metrics::OpCounters delta = ops.Diff(last_ops);
      double seconds = sim::ToSeconds(kWindow);
      trace.utilization.Push(now, sim::ToSeconds(busy - last_busy) / seconds);
      trace.total_rate.Push(now, static_cast<double>(delta.Total()) / seconds);
      trace.read_rate.Push(now, static_cast<double>(delta.Get(proto::OpKind::kRead)) / seconds);
      trace.write_rate.Push(now, static_cast<double>(delta.Get(proto::OpKind::kWrite)) / seconds);
      last_busy = busy;
      last_ops = ops;
    }
  }(rig, trace, done));

  rig.simulator().Spawn([](Rig& rig, workload::AndrewConfig config, LoadTrace& trace,
                           bool& done) -> sim::Task<void> {
    sim::Duration busy0 = rig.server()->cpu().busy_time();
    auto report = co_await workload::RunAndrew(rig.simulator(), rig.client().vfs(),
                                               rig.client().cpu(), config);
    CHECK(report.ok());
    trace.elapsed = report->total;
    trace.cpu_integral = rig.server()->cpu().busy_time() - busy0;
    done = true;
  }(rig, config, trace, done));
  rig.simulator().Run();
  return trace;
}

void PrintTrace(const char* name, const LoadTrace& trace) {
  std::printf("\n--- %s: server utilization and call rates vs time (10 s windows) ---\n", name);
  std::printf("%8s %12s %12s %10s %10s\n", "t (s)", "util (%)", "calls/s", "reads/s",
              "writes/s");
  const auto& u = trace.utilization.samples();
  const auto& t = trace.total_rate.samples();
  const auto& r = trace.read_rate.samples();
  const auto& w = trace.write_rate.samples();
  for (size_t i = 0; i < u.size(); ++i) {
    // An ASCII bar makes the utilization curve legible in a terminal.
    int bar = static_cast<int>(u[i].value * 40);
    std::printf("%8.0f %11.1f%% %12.1f %10.1f %10.1f  |%.*s\n", sim::ToSeconds(u[i].at),
                u[i].value * 100, t[i].value, r[i].value, w[i].value, bar,
                "########################################");
  }
}

void PrintShapeCheck(const char* what, double measured, double lo, double hi) {
  bool ok = measured >= lo && measured <= hi;
  std::printf("  [%s] %-58s measured=%6.3f expected=[%.2f, %.2f]\n", ok ? "ok" : "!!", what,
              measured, lo, hi);
}

}  // namespace

int main() {
  std::printf("=== Figures 5-1 / 5-2: Andrew benchmark with /tmp remote ===\n");

  LoadTrace nfs = RunTrace(Protocol::kNfs);
  LoadTrace snfs = RunTrace(Protocol::kSnfs);

  PrintTrace("Figure 5-1 (NFS)", nfs);
  PrintTrace("Figure 5-2 (SNFS)", snfs);

  double nfs_corr_total = TimeSeries::Correlation(nfs.utilization, nfs.total_rate);
  double nfs_corr_read = TimeSeries::Correlation(nfs.utilization, nfs.read_rate);
  double nfs_corr_write = TimeSeries::Correlation(nfs.utilization, nfs.write_rate);
  double snfs_corr_total = TimeSeries::Correlation(snfs.utilization, snfs.total_rate);

  std::printf("\nCorrelation of server load with call rates:\n");
  std::printf("  NFS : total %.3f, read %.3f, write %.3f\n", nfs_corr_total, nfs_corr_read,
              nfs_corr_write);
  std::printf("  SNFS: total %.3f\n", snfs_corr_total);
  std::printf("CPU integral over the run: NFS %.1f s, SNFS %.1f s\n",
              sim::ToSeconds(nfs.cpu_integral), sim::ToSeconds(snfs.cpu_integral));
  std::printf("Mean utilization during the run: NFS %.1f%%, SNFS %.1f%%\n",
              nfs.utilization.Mean() * 100, snfs.utilization.Mean() * 100);

  std::printf("\n=== Shape checks against the paper ===\n");
  PrintShapeCheck("load/total-call-rate correlation, NFS (paper: strong)", nfs_corr_total, 0.7,
                  1.0);
  PrintShapeCheck("load/total-call-rate correlation, SNFS (paper: strong)", snfs_corr_total,
                  0.7, 1.0);
  PrintShapeCheck("load/write-rate correlation, NFS (paper: weak, below total's)",
                  nfs_corr_write, -1.0, nfs_corr_total - 0.05);
  PrintShapeCheck("SNFS/NFS server CPU integral (paper: slightly lower, ~0.85-1.0)",
                  sim::ToSeconds(snfs.cpu_integral) / sim::ToSeconds(nfs.cpu_integral), 0.6,
                  1.05);
  PrintShapeCheck("SNFS/NFS elapsed (SNFS completes significantly faster)",
                  sim::ToSeconds(snfs.elapsed) / sim::ToSeconds(nfs.elapsed), 0.6, 0.95);
  return 0;
}
