// Client-scaling experiment. The paper argues but never measures (§2.3):
// "while the NFS server may be able to 'handle' an arbitrary number of
// clients, the Sprite server should be able to provide acceptable
// performance to a larger number of simultaneously active clients" —
// and cites Sprite's claim of supporting ~4x the clients of NFS (§5.2).
//
// We run N clients, each performing an independent compile-like loop
// against one shared server, and report mean completion time and server
// utilization as N grows. The capacity argument shows up as NFS completion
// times degrading much faster with N (every client's writes serialize on
// the server disk) than SNFS's.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/metrics/table.h"
#include "src/testbed/machine.h"

namespace {

using testbed::ClientMachine;
using testbed::ServerMachine;
using testbed::ServerProtocol;

// One client's workload: an edit-compile loop (read sources, burn CPU,
// write objects and short-lived temporaries, delete the temporaries).
sim::Task<void> CompileLoop(sim::Simulator& simulator, ClientMachine& client, int rounds,
                            sim::Duration* elapsed, sim::WaitGroup& wg) {
  vfs::Vfs& v = client.vfs();
  sim::Time start = simulator.Now();
  std::string dir = "/data/" + client.name();
  (void)co_await v.MkdirPath(dir);
  std::vector<uint8_t> source(12 * 1024, 0x42);
  (void)co_await v.WriteFile(dir + "/src.c", source);
  for (int r = 0; r < rounds; ++r) {
    auto src = co_await v.ReadFile(dir + "/src.c");
    if (!src.ok()) {
      break;
    }
    co_await client.cpu().Run(sim::Msec(800));  // compile
    std::vector<uint8_t> temp(24 * 1024, static_cast<uint8_t>(r));
    (void)co_await v.WriteFile(dir + "/tmp.s", temp);
    (void)co_await v.ReadFile(dir + "/tmp.s");
    std::vector<uint8_t> object(16 * 1024, static_cast<uint8_t>(r * 3));
    (void)co_await v.WriteFile(dir + "/obj.o", object);
    (void)co_await v.Unlink(dir + "/tmp.s");
  }
  *elapsed = simulator.Now() - start;
  wg.Done();
}

struct ScalePoint {
  double mean_completion_s = 0;
  double server_utilization = 0;
};

ScalePoint RunScale(ServerProtocol protocol, int num_clients) {
  sim::Simulator simulator;
  net::Network network(simulator, {});
  ServerMachine server(simulator, network, "server", protocol);
  std::vector<std::unique_ptr<ClientMachine>> clients;
  for (int i = 0; i < num_clients; ++i) {
    auto c = std::make_unique<ClientMachine>(simulator, network, "c" + std::to_string(i));
    if (protocol == ServerProtocol::kNfs) {
      c->MountNfs("/data", server.address(), server.root());
    } else {
      c->MountSnfs("/data", server.address(), server.root());
    }
    clients.push_back(std::move(c));
  }
  server.Start();
  for (auto& c : clients) {
    c->Start();
  }

  constexpr int kRounds = 20;
  sim::WaitGroup wg(simulator);
  std::vector<sim::Duration> elapsed(static_cast<size_t>(num_clients), 0);
  for (int i = 0; i < num_clients; ++i) {
    wg.Add();
    simulator.Spawn(CompileLoop(simulator, *clients[static_cast<size_t>(i)], kRounds,
                                &elapsed[static_cast<size_t>(i)], wg));
  }
  sim::Time start = simulator.Now();
  simulator.Run();
  sim::Time wall = simulator.Now() - start;

  ScalePoint point;
  for (sim::Duration e : elapsed) {
    point.mean_completion_s += sim::ToSeconds(e);
  }
  point.mean_completion_s /= num_clients;
  point.server_utilization =
      wall > 0 ? sim::ToSeconds(server.cpu().busy_time()) / sim::ToSeconds(wall) : 0;
  return point;
}

void PrintShapeCheck(const char* what, double measured, double lo, double hi) {
  bool ok = measured >= lo && measured <= hi;
  std::printf("  [%s] %-58s measured=%6.3f expected=[%.2f, %.2f]\n", ok ? "ok" : "!!", what,
              measured, lo, hi);
}

}  // namespace

int main() {
  std::printf("=== Client scaling (extension): N clients x 20 compile rounds ===\n");
  std::printf("(the paper's §2.3 capacity argument, measured)\n\n");

  const int kClients[] = {1, 2, 4, 8, 16};
  metrics::Table table({"Clients", "NFS mean completion", "SNFS mean completion",
                        "NFS server util", "SNFS server util"});
  double nfs1 = 0;
  double nfs16 = 0;
  double snfs1 = 0;
  double snfs16 = 0;
  for (int n : kClients) {
    ScalePoint nfs = RunScale(ServerProtocol::kNfs, n);
    ScalePoint snfs = RunScale(ServerProtocol::kSnfs, n);
    if (n == 1) {
      nfs1 = nfs.mean_completion_s;
      snfs1 = snfs.mean_completion_s;
    }
    if (n == 16) {
      nfs16 = nfs.mean_completion_s;
      snfs16 = snfs.mean_completion_s;
    }
    table.AddRow({metrics::Table::Int(static_cast<uint64_t>(n)),
                  metrics::Table::Seconds(nfs.mean_completion_s),
                  metrics::Table::Seconds(snfs.mean_completion_s),
                  metrics::Table::Pct(nfs.server_utilization),
                  metrics::Table::Pct(snfs.server_utilization)});
  }
  table.Print();

  double nfs_slowdown = nfs16 / nfs1;
  double snfs_slowdown = snfs16 / snfs1;
  std::printf("\nSlowdown going from 1 to 16 clients: NFS %.2fx, SNFS %.2fx\n", nfs_slowdown,
              snfs_slowdown);
  std::printf("Capacity at equal degradation: SNFS supports ~%.1fx the clients\n",
              nfs_slowdown / snfs_slowdown);

  std::printf("\n=== Shape checks against the paper's argument ===\n");
  PrintShapeCheck("SNFS degrades less than NFS with client count",
                  nfs_slowdown / snfs_slowdown, 1.2, 100.0);
  PrintShapeCheck("single-client SNFS at least as fast as NFS", snfs1 / nfs1, 0.0, 1.0);
  return 0;
}
