// google-benchmark microbenchmarks for the hot paths of the implementation
// itself: simulator event dispatch, coroutine round trips, state-table
// transitions, buffer-cache operations, and simulated RPC round trips.
// These measure host-CPU cost (how fast the simulator runs), not simulated
// time.
#include <benchmark/benchmark.h>

#include "src/cache/buffer_cache.h"
#include "src/net/network.h"
#include "src/rpc/peer.h"
#include "src/sim/simulator.h"
#include "src/snfs/state_table.h"

namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 1000; ++i) {
      simulator.Schedule(i, [] {});
    }
    simulator.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventDispatch);

sim::Task<void> PingPong(sim::Simulator& simulator, int depth) {
  for (int i = 0; i < depth; ++i) {
    co_await sim::Sleep(simulator, 1);
  }
}

void BM_CoroutineSleepLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    simulator.Spawn(PingPong(simulator, 1000));
    simulator.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineSleepLoop);

void BM_StateTableOpenClose(benchmark::State& state) {
  snfs::StateTable table;
  proto::FileHandle fh{1, 42, 0};
  for (auto _ : state) {
    table.OnOpen(fh, 1, true, 1);
    table.OnClose(fh, 1, true, false);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_StateTableOpenClose);

void BM_StateTableWriteSharingTransition(benchmark::State& state) {
  proto::FileHandle fh{1, 42, 0};
  for (auto _ : state) {
    snfs::StateTable table;
    table.OnOpen(fh, 1, false, 1);
    table.OnOpen(fh, 2, false, 1);
    benchmark::DoNotOptimize(table.OnOpen(fh, 3, true, 1));  // callbacks computed
    table.OnClose(fh, 1, false, false);
    table.OnClose(fh, 2, false, false);
    table.OnClose(fh, 3, true, false);
  }
  state.SetItemsProcessed(state.iterations() * 6);
}
BENCHMARK(BM_StateTableWriteSharingTransition);

void BM_BufferCacheHitRead(benchmark::State& state) {
  sim::Simulator simulator;
  cache::BufferCacheParams params;
  params.enable_sync_daemon = false;
  cache::BufferCache cache(simulator, params);
  cache::Backing backing;
  backing.fetch = [](uint64_t, uint64_t) -> sim::Task<base::Result<std::vector<uint8_t>>> {
    co_return std::vector<uint8_t>(cache::kBlockSize, 1);
  };
  backing.store = [](uint64_t, uint64_t, std::vector<uint8_t>) -> sim::Task<base::Result<void>> {
    co_return base::OkStatus();
  };
  int mount = cache.RegisterMount(std::move(backing));
  // Warm one block.
  simulator.Spawn([](cache::BufferCache& cache, int mount) -> sim::Task<void> {
    (void)co_await cache.Read(mount, 1, 0, cache::kBlockSize, cache::kBlockSize, false);
  }(cache, mount));
  simulator.Run();

  for (auto _ : state) {
    simulator.Spawn([](cache::BufferCache& cache, int mount) -> sim::Task<void> {
      auto r = co_await cache.Read(mount, 1, 0, cache::kBlockSize, cache::kBlockSize, false);
      benchmark::DoNotOptimize(r);
    }(cache, mount));
    simulator.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheHitRead);

void BM_SimulatedRpcRoundTrip(benchmark::State& state) {
  sim::Simulator simulator;
  net::Network network(simulator, {});
  sim::Cpu client_cpu(simulator);
  sim::Cpu server_cpu(simulator);
  rpc::Peer client(simulator, network, client_cpu, "client");
  rpc::Peer server(simulator, network, server_cpu, "server");
  server.set_handler([](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
    co_return proto::OkReply(proto::NullRep{});
  });
  client.Start();
  server.Start();

  for (auto _ : state) {
    simulator.Spawn([](rpc::Peer& client, net::Address dst) -> sim::Task<void> {
      auto r = co_await client.Call(dst, proto::Request(proto::NullReq{}));
      benchmark::DoNotOptimize(r);
    }(client, server.address()));
    simulator.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedRpcRoundTrip);

}  // namespace

BENCHMARK_MAIN();
