// Shared helpers for the table/figure reproduction binaries: run one
// workload on one Rig configuration and collect elapsed time, RPC counts,
// and disk counters.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/metrics/op_counters.h"
#include "src/metrics/table.h"
#include "src/testbed/rig.h"
#include "src/workload/andrew.h"
#include "src/workload/sort.h"

namespace bench {

struct AndrewRun {
  workload::AndrewReport report;
  metrics::OpCounters rpcs;       // client-issued RPCs during the run
  uint64_t server_disk_writes = 0;
  uint64_t server_disk_reads = 0;
  sim::Duration server_cpu_busy = 0;
  sim::Duration wall = 0;  // == report.total
};

struct SortRun {
  workload::SortReport report;
  metrics::OpCounters rpcs;
  uint64_t server_disk_writes = 0;
  double client_cpu_utilization = 0.0;
};

// Run the full-size Andrew benchmark once on the given configuration.
// `trials` > 1 reuses the rig (warm caches, fresh target subtree per trial)
// and reports the last trial, as the paper ran repeated trials back to back
// "so that NFS would not be charged for writes incurred by SNFS".
AndrewRun RunAndrewConfig(testbed::Protocol protocol, bool remote_tmp,
                          testbed::RigOptions options = {}, int trials = 2);

// Run the sort benchmark once; `input_bytes` selects the paper's row;
// `sync_daemon` false reproduces the "infinite write-delay" §5.4 variant.
// `usable_cache_blocks` sets the client cache share available to the sort:
// the Table 5-3 regime leaves it under pressure (the kernel owns part of
// the 16 MB), while the §5.4 experiment needs the temporaries to "fit
// easily into the client cache" (§5.1).
SortRun RunSortConfig(testbed::Protocol protocol, uint64_t input_bytes, bool sync_daemon = true,
                      size_t usable_cache_blocks = 1280, testbed::RigOptions options = {});

inline double Ratio(double a, double b) { return b == 0 ? 0 : a / b; }

}  // namespace bench

#endif  // BENCH_BENCH_UTIL_H_
