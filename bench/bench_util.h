// Shared helpers for the table/figure reproduction binaries: run one
// workload on one Rig configuration and collect elapsed time, RPC counts,
// and disk counters.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/metrics/op_counters.h"
#include "src/metrics/table.h"
#include "src/testbed/rig.h"
#include "src/workload/andrew.h"
#include "src/workload/sort.h"

namespace bench {

// Command-line surface shared by the bench binaries. With neither flag the
// binaries behave exactly as before (tracing stays off and the human tables
// are byte-identical).
struct BenchFlags {
  std::string json_path;   // --json=<path>: machine-readable results
  std::string trace_path;  // --trace=<path>: Chrome trace_event JSON dump

  // Either flag turns tracing on: --json needs the rpc.call spans for its
  // latency percentiles, --trace needs the whole event stream.
  bool tracing() const { return !json_path.empty() || !trace_path.empty(); }
};

// Parses --json=<path> / --trace=<path>; any other argument prints usage
// and exits with status 2.
BenchFlags ParseBenchFlags(int argc, char** argv);

struct AndrewRun {
  workload::AndrewReport report;
  metrics::OpCounters rpcs;       // client-issued RPCs during the run
  uint64_t server_disk_writes = 0;
  uint64_t server_disk_reads = 0;
  sim::Duration server_cpu_busy = 0;
  sim::Duration wall = 0;  // == report.total

  // Filled only when the run was traced. Latency is the duration of
  // completed rpc.call spans in virtual microseconds, bucketed by op.
  std::map<std::string, metrics::Histogram> rpc_latency;
  uint64_t trace_events = 0;
  uint64_t trace_checksum = 0;
  std::string chrome_json;
};

struct SortRun {
  workload::SortReport report;
  metrics::OpCounters rpcs;
  uint64_t server_disk_writes = 0;
  double client_cpu_utilization = 0.0;

  // Filled only when the run was traced (see AndrewRun).
  std::map<std::string, metrics::Histogram> rpc_latency;
  uint64_t trace_events = 0;
  uint64_t trace_checksum = 0;
  std::string chrome_json;
};

// Run the full-size Andrew benchmark once on the given configuration.
// `trials` > 1 reuses the rig (warm caches, fresh target subtree per trial)
// and reports the last trial, as the paper ran repeated trials back to back
// "so that NFS would not be charged for writes incurred by SNFS".
// `enable_trace` records a causal trace of each trial (fresh recorder per
// trial, so the reported trial's trace is clean) and fills the trace fields.
AndrewRun RunAndrewConfig(testbed::Protocol protocol, bool remote_tmp,
                          testbed::RigOptions options = {}, int trials = 2,
                          bool enable_trace = false);

// Run the sort benchmark once; `input_bytes` selects the paper's row;
// `sync_daemon` false reproduces the "infinite write-delay" §5.4 variant.
// `usable_cache_blocks` sets the client cache share available to the sort:
// the Table 5-3 regime leaves it under pressure (the kernel owns part of
// the 16 MB), while the §5.4 experiment needs the temporaries to "fit
// easily into the client cache" (§5.1).
SortRun RunSortConfig(testbed::Protocol protocol, uint64_t input_bytes, bool sync_daemon = true,
                      size_t usable_cache_blocks = 1280, testbed::RigOptions options = {},
                      bool enable_trace = false);

inline double Ratio(double a, double b) { return b == 0 ? 0 : a / b; }

// --- machine-readable output (--json) -------------------------------------

// One run as a JSON object. Key order is fixed (struct order; RPC counts in
// OpKind declaration order via ForEachNonZero) so the output is byte-stable
// for a given build.
std::string AndrewRunJson(const AndrewRun& run);
std::string SortRunJson(const SortRun& run);

// Building blocks for custom bench JSON (bench_fleet): {"op":count,...} in
// OpKind declaration order, and {"op":{count,mean,p50,p95,p99},...}.
std::string RpcCountsJson(const metrics::OpCounters& rpcs);
std::string LatencyJson(const std::map<std::string, metrics::Histogram>& by_op);

// Per-machine forms, keyed "m<id>" in ascending machine-id order so the
// output is deterministic regardless of collection order.
std::string RpcByMachineJson(std::vector<metrics::MachineOps> machines);
std::string LatencyByMachineJson(
    const std::map<int, std::map<std::string, metrics::Histogram>>& by_machine);

// Wraps named config objects as {"bench": <name>, "configs": {...}} and
// writes the file (aborts on I/O failure, which a bench run should surface).
void WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<std::pair<std::string, std::string>>& configs);

void WriteTextFile(const std::string& path, const std::string& content);

// Per-op latency percentile table (count / p50 / p95 / p99 in milliseconds),
// printed by the benches when tracing is enabled.
void PrintLatencyTable(const std::string& title,
                       const std::map<std::string, metrics::Histogram>& by_op);

}  // namespace bench

#endif  // BENCH_BENCH_UTIL_H_
