// bench_fleet: the sharded-fleet experiments — aggregate throughput as the
// shard count grows, and the effect of the network metadata-cache tier
// (src/fleet) on the NFS metadata storms the Spritely paper measures per
// machine.
//
// Sections (all N-server × M-client topologies via RigOptions::fleet):
//
//   1. Zipf hotset scaling     NFS, 1/2/4 shards: open-read-close over a
//                              shared catalog, client caches kept small so
//                              the shards are the bottleneck. Acceptance:
//                              >= 1.7x aggregate throughput from 1 to 4.
//   2. Metadata tier           the same hotset and a boot storm with the
//                              fleet::MetaCache interposed. Acceptance: the
//                              tier absorbs >= 50% of the getattr+lookup
//                              RPCs that would reach the shards on the
//                              boot storm.
//   3. Protocol rows           SNFS and NQNFS on the same 4-shard hotset:
//                              their client-side consistency state makes
//                              the cache tier unnecessary (no per-open
//                              probes to absorb).
//   4. Fault sweep             one-shard crash + reboot mid-hotset, and a
//                              meta-cache network partition, each with a
//                              writer in the mix; the causal trace must
//                              pass trace::CheckTrace with no violations.
//
// Flags: --json=<path> --trace=<path> --smoke (small sizes) --faults
// (fault sweep only).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/trace/checker.h"
#include "src/trace/trace.h"
#include "src/workload/fleet.h"

namespace {

using testbed::Protocol;
using testbed::Rig;
using testbed::RigOptions;

struct FleetFlags {
  std::string json_path;
  std::string trace_path;
  bool smoke = false;
  bool faults_only = false;

  bool tracing() const { return !json_path.empty() || !trace_path.empty(); }
};

FleetFlags ParseFleetFlags(int argc, char** argv) {
  FleetFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--trace=", 0) == 0) {
      flags.trace_path = arg.substr(8);
    } else if (arg == "--smoke") {
      flags.smoke = true;
    } else if (arg == "--faults") {
      flags.faults_only = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json=<path>] [--trace=<path>] [--smoke] [--faults]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return flags;
}

enum class FleetWork { kHotset, kBootStorm };
enum class FleetFault { kNone, kShardCrash, kCachePartition };

struct FleetBenchConfig {
  Protocol protocol = Protocol::kNfs;
  int shards = 1;
  int clients = 8;
  bool cache = false;
  FleetWork work = FleetWork::kHotset;
  int ops_per_client = 400;  // hotset only
  workload::FleetTreeShape shape;
  bool trace_on = false;
  // Fault script: one shard crash + reboot, or a meta-cache partition.
  FleetFault fault = FleetFault::kNone;
  sim::Duration fault_at = sim::Sec(1);
  sim::Duration fault_duration = sim::Sec(2);
  int mutator_writes = 0;  // periodic writes to the hottest file
};

struct FleetRunStats {
  uint64_t ops = 0;
  uint64_t bytes = 0;
  uint64_t errors = 0;
  double elapsed_s = 0;
  double ops_per_s = 0;
  metrics::OpCounters client_rpcs;  // summed across all clients
  std::vector<metrics::MachineOps> server_rpcs;
  uint64_t shard_meta_rpcs = 0;  // getattr+lookup that reached the shards

  // Filled when tracing was on.
  std::map<int, std::map<std::string, metrics::Histogram>> latency_by_machine;
  uint64_t trace_events = 0;
  std::string chrome_json;
  bool trace_checked = false;
  std::vector<trace::Violation> violations;

  // Filled when the metadata tier was interposed.
  bool has_cache = false;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_coalesced = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
};

const char* TreeName(FleetWork work) { return work == FleetWork::kHotset ? "hot" : "boot"; }

FleetRunStats RunFleet(const FleetBenchConfig& config) {
  RigOptions options;
  options.protocol = config.protocol;
  options.fleet.servers = config.shards;
  options.fleet.clients = config.clients;
  options.fleet.meta_cache = config.cache;
  if (config.work == FleetWork::kHotset) {
    // Keep the client caches too small to hold the hotset so every read
    // reaches a shard: the experiment measures server-side scaling, and a
    // 16 MB client cache would absorb the whole catalog after one pass.
    options.client.cache.capacity_blocks = 8;
  }
  Rig rig(options);

  // Populate each shard's slice out of band (direct fs access, no RPCs).
  rig.simulator().Spawn([](Rig& rig, const FleetBenchConfig& config) -> sim::Task<void> {
    for (int s = 0; s < rig.num_shards(); ++s) {
      co_await workload::PopulateFleetTree(rig.shard_fs(s), rig.shard_data_parent(s),
                                           TreeName(config.work), config.shape);
    }
  }(rig, config));
  rig.simulator().Run();

  std::vector<std::string> shard_roots;
  for (int s = 0; s < config.shards; ++s) {
    shard_roots.push_back(Rig::ShardRoot(s));
  }

  std::vector<metrics::OpCounters> client_before(static_cast<size_t>(config.clients));
  std::vector<metrics::OpCounters> server_before(static_cast<size_t>(config.shards));
  for (int c = 0; c < config.clients; ++c) {
    client_before[static_cast<size_t>(c)] = rig.client(c).peer().client_ops();
  }
  for (int s = 0; s < config.shards; ++s) {
    server_before[static_cast<size_t>(s)] = rig.shard(s).peer().server_ops();
  }

  bool check_trace = config.fault != FleetFault::kNone;
  std::unique_ptr<trace::Recorder> recorder;
  if (config.trace_on || check_trace) {
    recorder = std::make_unique<trace::Recorder>(rig.simulator());
    trace::SetActive(recorder.get());
  }

  // Fault script. The crash target is shard 1 (never the shard the writer
  // mutates); the partition target is the cache itself.
  if (config.fault == FleetFault::kShardCrash) {
    rig.simulator().Spawn([](Rig& rig, const FleetBenchConfig& config) -> sim::Task<void> {
      co_await sim::Sleep(rig.simulator(), config.fault_at);
      rig.shard(1).Crash(rig.network());
      co_await sim::Sleep(rig.simulator(), config.fault_duration);
      rig.shard(1).Reboot(rig.network());
    }(rig, config));
  } else if (config.fault == FleetFault::kCachePartition) {
    rig.simulator().Spawn([](Rig& rig, const FleetBenchConfig& config) -> sim::Task<void> {
      co_await sim::Sleep(rig.simulator(), config.fault_at);
      rig.network().SetHostUp(rig.meta_cache()->address(), false);
      co_await sim::Sleep(rig.simulator(), config.fault_duration);
      rig.network().SetHostUp(rig.meta_cache()->address(), true);
    }(rig, config));
  }

  // Optional writer: periodic whole-file rewrites of the hottest file, so
  // the fault runs exercise the stale-read rule (mutations race with the
  // cache tier's serves) instead of being read-only.
  if (config.mutator_writes > 0) {
    rig.simulator().Spawn([](Rig& rig, const FleetBenchConfig& config) -> sim::Task<void> {
      std::string path =
          Rig::ShardRoot(0) + "/" + TreeName(config.work) + "/d0/f0";
      for (int w = 0; w < config.mutator_writes; ++w) {
        co_await sim::Sleep(rig.simulator(), sim::Msec(100));
        std::vector<uint8_t> data(config.shape.file_bytes,
                                  static_cast<uint8_t>(w));
        // Failures during the outage window are expected; readers and the
        // trace checker judge the outcome, not this status.
        (void)co_await rig.client(0).vfs().WriteFile(path, std::move(data));
      }
    }(rig, config));
  }

  std::vector<workload::HotsetReport> hot(static_cast<size_t>(config.clients));
  std::vector<workload::BootStormReport> boot(static_cast<size_t>(config.clients));
  int done = 0;
  for (int c = 0; c < config.clients; ++c) {
    if (config.work == FleetWork::kHotset) {
      workload::HotsetConfig hc;
      hc.shard_roots = shard_roots;
      hc.shape = config.shape;
      hc.ops = config.ops_per_client;
      hc.seed = 1000 + static_cast<uint64_t>(c);
      // The shards are the resource under test; per-op client CPU would
      // serialize the clients instead.
      hc.cpu.stat_per_file = sim::Usec(100);
      hc.cpu.read_per_kb = sim::Usec(50);
      rig.simulator().Spawn([](Rig& rig, workload::HotsetConfig hc, int c,
                               std::vector<workload::HotsetReport>* out,
                               int* done) -> sim::Task<void> {
        auto report = co_await workload::RunHotset(rig.simulator(), rig.client(c).vfs(),
                                                   rig.client(c).cpu(), hc);
        CHECK(report.ok());
        (*out)[static_cast<size_t>(c)] = *report;
        ++*done;
      }(rig, hc, c, &hot, &done));
    } else {
      workload::BootStormConfig bc;
      bc.shard_roots = shard_roots;
      bc.shape = config.shape;
      rig.simulator().Spawn([](Rig& rig, workload::BootStormConfig bc, int c,
                               std::vector<workload::BootStormReport>* out,
                               int* done) -> sim::Task<void> {
        auto report = co_await workload::RunBootStorm(rig.simulator(), rig.client(c).vfs(),
                                                      rig.client(c).cpu(), bc);
        CHECK(report.ok());
        (*out)[static_cast<size_t>(c)] = *report;
        ++*done;
      }(rig, bc, c, &boot, &done));
    }
  }
  rig.simulator().Run();
  CHECK(done == config.clients);

  FleetRunStats stats;
  sim::Duration elapsed = 0;
  for (int c = 0; c < config.clients; ++c) {
    if (config.work == FleetWork::kHotset) {
      const workload::HotsetReport& r = hot[static_cast<size_t>(c)];
      stats.ops += r.ops_done;
      stats.bytes += r.bytes_read;
      stats.errors += r.errors;
      elapsed = std::max(elapsed, r.elapsed);
    } else {
      const workload::BootStormReport& r = boot[static_cast<size_t>(c)];
      stats.ops += r.files_read;
      stats.bytes += r.bytes_read;
      stats.errors += r.errors;
      elapsed = std::max(elapsed, r.elapsed);
    }
  }
  stats.elapsed_s = sim::ToSeconds(elapsed);
  stats.ops_per_s = stats.elapsed_s > 0 ? static_cast<double>(stats.ops) / stats.elapsed_s : 0;

  std::vector<metrics::MachineOps> clients;
  for (int c = 0; c < config.clients; ++c) {
    clients.push_back(metrics::MachineOps{
        rig.client(c).address().host,
        rig.client(c).peer().client_ops().Diff(client_before[static_cast<size_t>(c)])});
  }
  stats.client_rpcs = metrics::SumAcrossMachines(clients);
  for (int s = 0; s < config.shards; ++s) {
    metrics::OpCounters ops =
        rig.shard(s).peer().server_ops().Diff(server_before[static_cast<size_t>(s)]);
    stats.shard_meta_rpcs +=
        ops.Get(proto::OpKind::kGetAttr) + ops.Get(proto::OpKind::kLookup);
    stats.server_rpcs.push_back(metrics::MachineOps{rig.shard(s).address().host, ops});
  }

  if (recorder != nullptr) {
    trace::SetActive(nullptr);
    stats.latency_by_machine = recorder->SpanDurationsByMachine("rpc.call", "op");
    stats.trace_events = recorder->events().size();
    stats.chrome_json = recorder->ToChromeJson();
    if (check_trace) {
      stats.trace_checked = true;
      stats.violations = trace::CheckTrace(*recorder);
    }
  }

  if (rig.meta_cache() != nullptr) {
    fleet::MetaCache& cache = *rig.meta_cache();
    stats.has_cache = true;
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    stats.cache_coalesced = cache.coalesced();
    stats.cache_evictions = cache.evictions();
    stats.cache_invalidations = cache.invalidations();
  }
  return stats;
}

// --- output ----------------------------------------------------------------

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Int(uint64_t v) { return std::to_string(v); }

std::string FleetRunJson(const FleetRunStats& s) {
  std::string out = "{";
  out += "\"elapsed_s\":" + Num(s.elapsed_s);
  out += ",\"ops\":" + Int(s.ops);
  out += ",\"bytes\":" + Int(s.bytes);
  out += ",\"errors\":" + Int(s.errors);
  out += ",\"ops_per_s\":" + Num(s.ops_per_s);
  out += ",\"rpc\":" + bench::RpcCountsJson(s.client_rpcs);
  out += ",\"rpc_total\":" + Int(s.client_rpcs.Total());
  out += ",\"rpc_by_server\":" + bench::RpcByMachineJson(s.server_rpcs);
  out += ",\"shard_meta_rpcs\":" + Int(s.shard_meta_rpcs);
  if (s.has_cache) {
    out += ",\"cache\":{\"hits\":" + Int(s.cache_hits) + ",\"misses\":" + Int(s.cache_misses) +
           ",\"coalesced\":" + Int(s.cache_coalesced) +
           ",\"evictions\":" + Int(s.cache_evictions) +
           ",\"invalidations\":" + Int(s.cache_invalidations) + "}";
  }
  if (s.trace_events > 0) {
    out += ",\"rpc_latency_by_machine_us\":" + bench::LatencyByMachineJson(s.latency_by_machine);
    out += ",\"trace_events\":" + Int(s.trace_events);
  }
  if (s.trace_checked) {
    out += ",\"trace_violations\":" + Int(s.violations.size());
  }
  out += "}";
  return out;
}

void PrintRunRow(metrics::Table& table, const std::string& label, const FleetRunStats& s) {
  table.AddRow({label, metrics::Table::Int(s.ops), metrics::Table::Num(s.elapsed_s, 2),
                metrics::Table::Num(s.ops_per_s, 1), metrics::Table::Int(s.client_rpcs.Total()),
                metrics::Table::Int(s.shard_meta_rpcs), metrics::Table::Int(s.errors)});
}

void ReportViolations(const std::string& label, const FleetRunStats& s) {
  std::printf("%-24s errors=%llu trace_events=%llu violations=%zu\n", label.c_str(),
              static_cast<unsigned long long>(s.errors),
              static_cast<unsigned long long>(s.trace_events), s.violations.size());
  for (const trace::Violation& v : s.violations) {
    std::printf("  VIOLATION [%s] %s\n", v.rule.c_str(), v.message.c_str());
  }
  CHECK(s.violations.empty());
}

}  // namespace

int main(int argc, char** argv) {
  FleetFlags flags = ParseFleetFlags(argc, argv);
  bool trace_on = flags.tracing();
  std::vector<std::pair<std::string, std::string>> configs;

  workload::FleetTreeShape shape;
  int hot_ops = flags.smoke ? 60 : 400;
  int clients = flags.smoke ? 4 : 8;
  std::vector<int> shard_counts = flags.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  int max_shards = shard_counts.back();
  std::string last_chrome_json;

  if (!flags.faults_only) {
    // --- 1. Zipf hotset scaling (NFS) --------------------------------------
    std::printf("Zipf hotset: %d clients, %d ops/client, catalog spread round-robin\n", clients,
                hot_ops);
    metrics::Table table(
        {"Config", "ops", "elapsed s", "ops/s", "client RPC", "shard getattr+lookup", "errors"});
    double thr_first = 0, thr_last = 0;
    for (int shards : shard_counts) {
      FleetBenchConfig config;
      config.shards = shards;
      config.clients = clients;
      config.ops_per_client = hot_ops;
      config.shape = shape;
      config.trace_on = trace_on;
      FleetRunStats s = RunFleet(config);
      if (shards == shard_counts.front()) {
        thr_first = s.ops_per_s;
      }
      if (shards == max_shards) {
        thr_last = s.ops_per_s;
      }
      PrintRunRow(table, "NFS " + std::to_string(shards) + " shard", s);
      configs.emplace_back("hotset_nfs_s" + std::to_string(shards), FleetRunJson(s));
      if (!s.chrome_json.empty()) {
        last_chrome_json = std::move(s.chrome_json);
      }
    }

    // Hotset behind the metadata tier, at the widest fleet.
    {
      FleetBenchConfig config;
      config.shards = max_shards;
      config.clients = clients;
      config.cache = true;
      config.ops_per_client = hot_ops;
      config.shape = shape;
      config.trace_on = trace_on;
      FleetRunStats s = RunFleet(config);
      PrintRunRow(table, "NFS " + std::to_string(max_shards) + " shard+cache", s);
      configs.emplace_back("hotset_nfs_s" + std::to_string(max_shards) + "_cache",
                           FleetRunJson(s));
    }

    // --- 3. Protocol rows ---------------------------------------------------
    for (Protocol protocol : {Protocol::kSnfs, Protocol::kNqnfs}) {
      FleetBenchConfig config;
      config.protocol = protocol;
      config.shards = max_shards;
      config.clients = clients;
      config.ops_per_client = hot_ops;
      config.shape = shape;
      config.trace_on = trace_on;
      FleetRunStats s = RunFleet(config);
      std::string name(ProtocolName(protocol));
      PrintRunRow(table, name + " " + std::to_string(max_shards) + " shard", s);
      for (char& c : name) {
        c = static_cast<char>(std::tolower(c));
      }
      configs.emplace_back("hotset_" + name + "_s" + std::to_string(max_shards),
                           FleetRunJson(s));
    }
    table.Print();

    double scaling = thr_first > 0 ? thr_last / thr_first : 0;
    std::printf("\nhotset aggregate throughput %d -> %d shards: %.2fx\n", shard_counts.front(),
                max_shards, scaling);
    if (!flags.smoke) {
      // Acceptance: >= 1.7x from 1 to 4 shards.
      CHECK(scaling >= 1.7);
    }
    configs.emplace_back("summary_scaling",
                         "{\"shards_low\":" + Int(static_cast<uint64_t>(shard_counts.front())) +
                             ",\"shards_high\":" + Int(static_cast<uint64_t>(max_shards)) +
                             ",\"throughput_ratio\":" + Num(scaling) + "}");

    // --- 2. Boot storm, metadata tier off/on --------------------------------
    std::printf("\nBoot storm: every client cold-walks every shard's boot tree\n");
    metrics::Table storm(
        {"Config", "files", "elapsed s", "ops/s", "client RPC", "shard getattr+lookup", "errors"});
    FleetBenchConfig storm_config;
    storm_config.shards = max_shards;
    storm_config.clients = clients;
    storm_config.work = FleetWork::kBootStorm;
    storm_config.shape = shape;
    storm_config.trace_on = trace_on;
    FleetRunStats without = RunFleet(storm_config);
    PrintRunRow(storm, "NFS " + std::to_string(max_shards) + " shard", without);
    configs.emplace_back("bootstorm_nfs_s" + std::to_string(max_shards), FleetRunJson(without));

    storm_config.cache = true;
    FleetRunStats with = RunFleet(storm_config);
    PrintRunRow(storm, "NFS " + std::to_string(max_shards) + " shard+cache", with);
    configs.emplace_back("bootstorm_nfs_s" + std::to_string(max_shards) + "_cache",
                         FleetRunJson(with));
    storm.Print();

    double cut =
        without.shard_meta_rpcs > 0
            ? 100.0 * (1.0 - static_cast<double>(with.shard_meta_rpcs) /
                                 static_cast<double>(without.shard_meta_rpcs))
            : 0;
    std::printf("\nmetadata tier cut of shard-side getattr+lookup: %.1f%% (%llu -> %llu)\n", cut,
                static_cast<unsigned long long>(without.shard_meta_rpcs),
                static_cast<unsigned long long>(with.shard_meta_rpcs));
    if (!flags.smoke) {
      // Acceptance: the tier absorbs >= 50% of the shard-side probes.
      CHECK(cut >= 50.0);
    }
    configs.emplace_back(
        "summary_bootstorm",
        "{\"shard_meta_rpcs\":" + Int(without.shard_meta_rpcs) +
            ",\"shard_meta_rpcs_cached\":" + Int(with.shard_meta_rpcs) +
            ",\"meta_rpc_cut_pct\":" + Num(cut) + "}");
  }

  // --- 4. Fault sweep -------------------------------------------------------
  std::printf("\nFleet fault sweep (trace-checked)\n");
  {
    FleetBenchConfig config;
    config.shards = 2;
    config.clients = 4;
    config.ops_per_client = flags.smoke ? 150 : 600;
    config.shape = shape;
    config.fault = FleetFault::kShardCrash;
    config.fault_at = flags.smoke ? sim::Msec(300) : sim::Sec(1);
    config.fault_duration = flags.smoke ? sim::Msec(600) : sim::Sec(2);
    config.mutator_writes = flags.smoke ? 10 : 30;
    FleetRunStats s = RunFleet(config);
    ReportViolations("shard-crash", s);
    configs.emplace_back("fault_shard_crash", FleetRunJson(s));
  }
  {
    FleetBenchConfig config;
    config.shards = 2;
    config.clients = 4;
    config.cache = true;
    config.ops_per_client = flags.smoke ? 150 : 600;
    config.shape = shape;
    config.fault = FleetFault::kCachePartition;
    config.fault_at = flags.smoke ? sim::Msec(300) : sim::Sec(1);
    config.fault_duration = flags.smoke ? sim::Msec(600) : sim::Sec(2);
    config.mutator_writes = flags.smoke ? 10 : 30;
    FleetRunStats s = RunFleet(config);
    ReportViolations("cache-partition", s);
    configs.emplace_back("fault_cache_partition", FleetRunJson(s));
  }

  if (!flags.json_path.empty()) {
    bench::WriteBenchJson(flags.json_path, "fleet", configs);
  }
  if (!flags.trace_path.empty() && !last_chrome_json.empty()) {
    bench::WriteTextFile(flags.trace_path, last_chrome_json);
  }
  return 0;
}
