#include "bench/bench_util.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <memory>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace bench {

using testbed::Protocol;
using testbed::Rig;
using testbed::RigOptions;

BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--trace=", 0) == 0) {
      flags.trace_path = arg.substr(8);
    } else {
      std::fprintf(stderr, "usage: %s [--json=<path>] [--trace=<path>]\n", argv[0]);
      std::exit(2);
    }
  }
  return flags;
}

namespace {

// Harvests the recorder into the run's trace fields and uninstalls it.
// Shared by the Andrew and Sort drivers via their identical field layout.
template <typename Run>
void HarvestTrace(std::unique_ptr<trace::Recorder>& recorder, Run& run) {
  trace::SetActive(nullptr);
  run.rpc_latency = recorder->SpanDurationsBy("rpc.call", "op");
  run.trace_events = recorder->events().size();
  run.trace_checksum = recorder->Checksum();
  run.chrome_json = recorder->ToChromeJson();
  recorder.reset();
}

}  // namespace

AndrewRun RunAndrewConfig(Protocol protocol, bool remote_tmp, RigOptions options, int trials,
                          bool enable_trace) {
  options.protocol = protocol;
  options.remote_tmp = remote_tmp;
  Rig rig(options);

  workload::AndrewShape shape;  // full-size: 70 files, ~200 KB
  rig.simulator().Spawn(workload::PopulateAndrewTree(rig.data_fs(), rig.data_parent(), shape));
  rig.simulator().Run();

  AndrewRun run;
  for (int trial = 0; trial < trials; ++trial) {
    workload::AndrewConfig config;
    config.src_root = rig.data_root() + "/src";
    config.target_root = rig.data_root() + "/t" + std::to_string(trial);
    config.tmp_dir = rig.tmp_dir();
    config.shape = shape;

    metrics::OpCounters before = rig.client_rpcs();
    uint64_t disk_w = rig.served_disk().writes();
    uint64_t disk_r = rig.served_disk().reads();
    sim::Duration cpu0 = rig.server() != nullptr ? rig.server()->cpu().busy_time() : 0;

    // Fresh recorder per trial so the reported (last) trial's trace is not
    // diluted by warm-up trials. Recording never schedules simulator events,
    // so timings are identical with or without it.
    std::unique_ptr<trace::Recorder> recorder;
    if (enable_trace) {
      recorder = std::make_unique<trace::Recorder>(rig.simulator());
      trace::SetActive(recorder.get());
    }

    bool ok = false;
    rig.simulator().Spawn(
        [](Rig& rig, workload::AndrewConfig config, AndrewRun* run, bool* ok) -> sim::Task<void> {
          auto report = co_await workload::RunAndrew(rig.simulator(), rig.client().vfs(),
                                                     rig.client().cpu(), config);
          CHECK(report.ok());
          run->report = *report;
          *ok = true;
        }(rig, config, &run, &ok));
    rig.simulator().Run();
    CHECK(ok);
    if (recorder != nullptr) {
      HarvestTrace(recorder, run);
    }

    run.rpcs = rig.client_rpcs().Diff(before);
    run.server_disk_writes = rig.served_disk().writes() - disk_w;
    run.server_disk_reads = rig.served_disk().reads() - disk_r;
    run.server_cpu_busy = rig.server() != nullptr ? rig.server()->cpu().busy_time() - cpu0 : 0;
    run.wall = run.report.total;
  }
  return run;
}

SortRun RunSortConfig(Protocol protocol, uint64_t input_bytes, bool sync_daemon,
                      size_t usable_cache_blocks, RigOptions options, bool enable_trace) {
  options.protocol = protocol;
  options.remote_tmp = protocol != Protocol::kLocal;  // only the temp dir varies
  options.client.cache.enable_sync_daemon = sync_daemon;
  // In the Table 5-3 regime the sort's working set does not fit the usable
  // share of the paper's 16 MB client cache (the kernel owns part of it).
  // The pressure matters: evicting a *dirty* block stalls the writer for a
  // server round trip under SNFS but is free under NFS (whose blocks are
  // clean, already written through) — one of the effects behind Table 5-3.
  options.client.cache.capacity_blocks = usable_cache_blocks;
  Rig rig(options);

  CHECK(rig.client().local_fs() != nullptr);
  rig.simulator().Spawn(workload::PopulateSortInput(
      *rig.client().local_fs(), rig.client().local_fs()->root(), "input", input_bytes, 7777));
  rig.simulator().Run();

  workload::SortConfig config;
  config.input_path = "/local/input";
  config.output_path = "/local/output";
  config.tmp_dir = rig.tmp_dir();

  metrics::OpCounters before = rig.client_rpcs();
  uint64_t disk_w = rig.served_disk().writes();
  sim::Duration cpu0 = rig.client().cpu().busy_time();

  // Installed after the input population so the trace covers just the sort.
  std::unique_ptr<trace::Recorder> recorder;
  if (enable_trace) {
    recorder = std::make_unique<trace::Recorder>(rig.simulator());
    trace::SetActive(recorder.get());
  }

  SortRun run;
  bool ok = false;
  rig.simulator().Spawn(
      [](Rig& rig, workload::SortConfig config, SortRun* run, bool* ok) -> sim::Task<void> {
        auto report = co_await workload::RunSort(rig.simulator(), rig.client().vfs(),
                                                 rig.client().cpu(), config);
        CHECK(report.ok());
        CHECK(report->verified);
        run->report = *report;
        *ok = true;
      }(rig, config, &run, &ok));
  rig.simulator().Run();
  CHECK(ok);
  if (recorder != nullptr) {
    HarvestTrace(recorder, run);
  }

  run.rpcs = rig.client_rpcs().Diff(before);
  run.server_disk_writes = rig.served_disk().writes() - disk_w;
  sim::Duration cpu_used = rig.client().cpu().busy_time() - cpu0;
  run.client_cpu_utilization =
      run.report.elapsed > 0
          ? static_cast<double>(cpu_used) / static_cast<double>(run.report.elapsed)
          : 0.0;
  return run;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonInt(uint64_t v) { return std::to_string(v); }

std::string ChecksumHex(uint64_t checksum) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, checksum);
  return buf;
}

}  // namespace

std::string RpcCountsJson(const metrics::OpCounters& rpcs) {
  std::string out = "{";
  bool first = true;
  rpcs.ForEachNonZero([&](proto::OpKind kind, uint64_t count) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + std::string(proto::OpKindName(kind)) + "\":" + JsonInt(count);
  });
  out += "}";
  return out;
}

std::string LatencyJson(const std::map<std::string, metrics::Histogram>& by_op) {
  std::string out = "{";
  bool first = true;
  for (const auto& [op, hist] : by_op) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + JsonEscape(op) + "\":{\"count\":" + JsonInt(hist.count()) +
           ",\"mean_us\":" + JsonNum(hist.Mean()) + ",\"p50_us\":" + JsonNum(hist.Percentile(50)) +
           ",\"p95_us\":" + JsonNum(hist.Percentile(95)) +
           ",\"p99_us\":" + JsonNum(hist.Percentile(99)) + "}";
  }
  out += "}";
  return out;
}

std::string RpcByMachineJson(std::vector<metrics::MachineOps> machines) {
  std::sort(machines.begin(), machines.end(),
            [](const metrics::MachineOps& a, const metrics::MachineOps& b) {
              return a.machine < b.machine;
            });
  std::string out = "{";
  for (size_t i = 0; i < machines.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "\"m" + std::to_string(machines[i].machine) + "\":" + RpcCountsJson(machines[i].ops);
  }
  out += "}";
  return out;
}

std::string LatencyByMachineJson(
    const std::map<int, std::map<std::string, metrics::Histogram>>& by_machine) {
  std::string out = "{";
  bool first = true;
  for (const auto& [machine, by_op] : by_machine) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"m" + std::to_string(machine) + "\":" + LatencyJson(by_op);
  }
  out += "}";
  return out;
}

std::string AndrewRunJson(const AndrewRun& run) {
  std::string out = "{";
  out += "\"elapsed_s\":" + JsonNum(sim::ToSeconds(run.report.total));
  out += ",\"phases_s\":{";
  for (int p = 0; p < workload::kNumAndrewPhases; ++p) {
    auto phase = static_cast<workload::AndrewPhase>(p);
    if (p > 0) {
      out += ",";
    }
    out += "\"" + std::string(workload::AndrewPhaseName(phase)) +
           "\":" + JsonNum(sim::ToSeconds(run.report.phase_time[p]));
  }
  out += "}";
  out += ",\"rpc\":" + RpcCountsJson(run.rpcs);
  out += ",\"rpc_total\":" + JsonInt(run.rpcs.Total());
  out += ",\"rpc_data_transfer\":" + JsonInt(run.rpcs.DataTransfer());
  out += ",\"server_cpu_pct\":" +
         JsonNum(run.wall > 0
                     ? 100.0 * static_cast<double>(run.server_cpu_busy) /
                           static_cast<double>(run.wall)
                     : 0.0);
  out += ",\"server_disk_writes\":" + JsonInt(run.server_disk_writes);
  out += ",\"server_disk_reads\":" + JsonInt(run.server_disk_reads);
  if (run.trace_events > 0) {
    out += ",\"rpc_latency_us\":" + LatencyJson(run.rpc_latency);
    out += ",\"trace_events\":" + JsonInt(run.trace_events);
    out += ",\"trace_checksum\":\"fnv1a:" + ChecksumHex(run.trace_checksum) + "\"";
  }
  out += "}";
  return out;
}

std::string SortRunJson(const SortRun& run) {
  std::string out = "{";
  out += "\"elapsed_s\":" + JsonNum(sim::ToSeconds(run.report.elapsed));
  out += ",\"input_bytes\":" + JsonInt(run.report.input_bytes);
  out += ",\"temp_bytes_written\":" + JsonInt(run.report.temp_bytes_written);
  out += ",\"rpc\":" + RpcCountsJson(run.rpcs);
  out += ",\"rpc_total\":" + JsonInt(run.rpcs.Total());
  out += ",\"rpc_data_transfer\":" + JsonInt(run.rpcs.DataTransfer());
  out += ",\"client_cpu_pct\":" + JsonNum(100.0 * run.client_cpu_utilization);
  out += ",\"server_disk_writes\":" + JsonInt(run.server_disk_writes);
  if (run.trace_events > 0) {
    out += ",\"rpc_latency_us\":" + LatencyJson(run.rpc_latency);
    out += ",\"trace_events\":" + JsonInt(run.trace_events);
    out += ",\"trace_checksum\":\"fnv1a:" + ChecksumHex(run.trace_checksum) + "\"";
  }
  out += "}";
  return out;
}

void WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  CHECK(f != nullptr);
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  CHECK(written == content.size());
  CHECK(std::fclose(f) == 0);
}

void WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<std::pair<std::string, std::string>>& configs) {
  std::string out = "{\"bench\":\"" + JsonEscape(bench_name) + "\",\"configs\":{";
  for (size_t i = 0; i < configs.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "\"" + JsonEscape(configs[i].first) + "\":" + configs[i].second;
  }
  out += "}}\n";
  WriteTextFile(path, out);
}

void PrintLatencyTable(const std::string& title,
                       const std::map<std::string, metrics::Histogram>& by_op) {
  std::printf("\n%s\n", title.c_str());
  metrics::Table table({"Operation", "count", "p50 ms", "p95 ms", "p99 ms"});
  for (const auto& [op, hist] : by_op) {
    table.AddRow({op, metrics::Table::Int(hist.count()),
                  metrics::Table::Num(hist.Percentile(50) / 1000.0, 3),
                  metrics::Table::Num(hist.Percentile(95) / 1000.0, 3),
                  metrics::Table::Num(hist.Percentile(99) / 1000.0, 3)});
  }
  table.Print();
}

}  // namespace bench
