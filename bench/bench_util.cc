#include "bench/bench_util.h"

#include "src/base/check.h"

namespace bench {

using testbed::Protocol;
using testbed::Rig;
using testbed::RigOptions;

AndrewRun RunAndrewConfig(Protocol protocol, bool remote_tmp, RigOptions options, int trials) {
  options.protocol = protocol;
  options.remote_tmp = remote_tmp;
  Rig rig(options);

  workload::AndrewShape shape;  // full-size: 70 files, ~200 KB
  rig.simulator().Spawn(workload::PopulateAndrewTree(rig.data_fs(), rig.data_parent(), shape));
  rig.simulator().Run();

  AndrewRun run;
  for (int trial = 0; trial < trials; ++trial) {
    workload::AndrewConfig config;
    config.src_root = rig.data_root() + "/src";
    config.target_root = rig.data_root() + "/t" + std::to_string(trial);
    config.tmp_dir = rig.tmp_dir();
    config.shape = shape;

    metrics::OpCounters before = rig.client_rpcs();
    uint64_t disk_w = rig.served_disk().writes();
    uint64_t disk_r = rig.served_disk().reads();
    sim::Duration cpu0 = rig.server() != nullptr ? rig.server()->cpu().busy_time() : 0;

    bool ok = false;
    rig.simulator().Spawn(
        [](Rig& rig, workload::AndrewConfig config, AndrewRun* run, bool* ok) -> sim::Task<void> {
          auto report = co_await workload::RunAndrew(rig.simulator(), rig.client().vfs(),
                                                     rig.client().cpu(), config);
          CHECK(report.ok());
          run->report = *report;
          *ok = true;
        }(rig, config, &run, &ok));
    rig.simulator().Run();
    CHECK(ok);

    run.rpcs = rig.client_rpcs().Diff(before);
    run.server_disk_writes = rig.served_disk().writes() - disk_w;
    run.server_disk_reads = rig.served_disk().reads() - disk_r;
    run.server_cpu_busy = rig.server() != nullptr ? rig.server()->cpu().busy_time() - cpu0 : 0;
    run.wall = run.report.total;
  }
  return run;
}

SortRun RunSortConfig(Protocol protocol, uint64_t input_bytes, bool sync_daemon,
                      size_t usable_cache_blocks, RigOptions options) {
  options.protocol = protocol;
  options.remote_tmp = protocol != Protocol::kLocal;  // only the temp dir varies
  options.client.cache.enable_sync_daemon = sync_daemon;
  // In the Table 5-3 regime the sort's working set does not fit the usable
  // share of the paper's 16 MB client cache (the kernel owns part of it).
  // The pressure matters: evicting a *dirty* block stalls the writer for a
  // server round trip under SNFS but is free under NFS (whose blocks are
  // clean, already written through) — one of the effects behind Table 5-3.
  options.client.cache.capacity_blocks = usable_cache_blocks;
  Rig rig(options);

  CHECK(rig.client().local_fs() != nullptr);
  rig.simulator().Spawn(workload::PopulateSortInput(
      *rig.client().local_fs(), rig.client().local_fs()->root(), "input", input_bytes, 7777));
  rig.simulator().Run();

  workload::SortConfig config;
  config.input_path = "/local/input";
  config.output_path = "/local/output";
  config.tmp_dir = rig.tmp_dir();

  metrics::OpCounters before = rig.client_rpcs();
  uint64_t disk_w = rig.served_disk().writes();
  sim::Duration cpu0 = rig.client().cpu().busy_time();

  SortRun run;
  bool ok = false;
  rig.simulator().Spawn(
      [](Rig& rig, workload::SortConfig config, SortRun* run, bool* ok) -> sim::Task<void> {
        auto report = co_await workload::RunSort(rig.simulator(), rig.client().vfs(),
                                                 rig.client().cpu(), config);
        CHECK(report.ok());
        CHECK(report->verified);
        run->report = *report;
        *ok = true;
      }(rig, config, &run, &ok));
  rig.simulator().Run();
  CHECK(ok);

  run.rpcs = rig.client_rpcs().Diff(before);
  run.server_disk_writes = rig.served_disk().writes() - disk_w;
  sim::Duration cpu_used = rig.client().cpu().busy_time() - cpu0;
  run.client_cpu_utilization =
      run.report.elapsed > 0
          ? static_cast<double>(cpu_used) / static_cast<double>(run.report.elapsed)
          : 0.0;
  return run;
}

}  // namespace bench
