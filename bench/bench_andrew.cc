// Reproduces paper Table 5-1 (Andrew benchmark elapsed times per phase for
// local / NFS / SNFS, with /tmp local and remote) and Table 5-2 (RPC call
// counts per operation for the remote configurations), extended with NQNFS
// columns: lease-based consistency should track SNFS's elapsed times while
// replacing all open/close traffic with a smaller number of lease RPCs.
//
// Absolute times depend on our simulator parameters; the properties the
// paper reports — SNFS ~25% faster Copy, 20-30% faster Make, ~5% slower
// ScanDir/ReadAll, 15-20% faster overall; SNFS needing ~6% fewer total and
// ~42% fewer data-transfer RPCs with /tmp remote; lookups ~half of all
// calls — are checked explicitly at the bottom.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/table.h"

namespace {

using bench::AndrewRun;
using bench::Ratio;
using bench::RunAndrewConfig;
using metrics::Table;
using testbed::Protocol;

std::string PhaseCell(const workload::AndrewReport& r, workload::AndrewPhase p) {
  return Table::Num(sim::ToSeconds(r.phase_time[static_cast<int>(p)]), 1);
}

void PrintShapeCheck(const char* what, double measured, double lo, double hi) {
  bool ok = measured >= lo && measured <= hi;
  std::printf("  [%s] %-58s measured=%6.3f expected=[%.2f, %.2f]\n", ok ? "ok" : "!!", what,
              measured, lo, hi);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bool traced = flags.tracing();

  std::printf("=== Table 5-1: Andrew benchmark, elapsed time in seconds ===\n");
  std::printf("(paper: SNFS ~25%% faster Copy, 20-30%% faster Make, ~5%% slower ScanDir/ReadAll,\n");
  std::printf(" 15-20%% faster overall; 10-trial averages on Titans; our substrate is a simulator)\n\n");

  AndrewRun local = RunAndrewConfig(Protocol::kLocal, false, {}, 2, traced);
  AndrewRun nfs_lt = RunAndrewConfig(Protocol::kNfs, /*remote_tmp=*/false, {}, 2, traced);
  AndrewRun nfs_rt = RunAndrewConfig(Protocol::kNfs, /*remote_tmp=*/true, {}, 2, traced);
  AndrewRun snfs_lt = RunAndrewConfig(Protocol::kSnfs, /*remote_tmp=*/false, {}, 2, traced);
  AndrewRun snfs_rt = RunAndrewConfig(Protocol::kSnfs, /*remote_tmp=*/true, {}, 2, traced);
  AndrewRun nqnfs_lt = RunAndrewConfig(Protocol::kNqnfs, /*remote_tmp=*/false, {}, 2, traced);
  AndrewRun nqnfs_rt = RunAndrewConfig(Protocol::kNqnfs, /*remote_tmp=*/true, {}, 2, traced);

  Table t1({"Phase", "Local", "NFS tmp=local", "SNFS tmp=local", "NQNFS tmp=local",
            "NFS tmp=remote", "SNFS tmp=remote", "NQNFS tmp=remote"});
  for (int p = 0; p < workload::kNumAndrewPhases; ++p) {
    auto phase = static_cast<workload::AndrewPhase>(p);
    t1.AddRow({std::string(workload::AndrewPhaseName(phase)), PhaseCell(local.report, phase),
               PhaseCell(nfs_lt.report, phase), PhaseCell(snfs_lt.report, phase),
               PhaseCell(nqnfs_lt.report, phase), PhaseCell(nfs_rt.report, phase),
               PhaseCell(snfs_rt.report, phase), PhaseCell(nqnfs_rt.report, phase)});
  }
  t1.AddRow({"Total", Table::Num(sim::ToSeconds(local.report.total), 1),
             Table::Num(sim::ToSeconds(nfs_lt.report.total), 1),
             Table::Num(sim::ToSeconds(snfs_lt.report.total), 1),
             Table::Num(sim::ToSeconds(nqnfs_lt.report.total), 1),
             Table::Num(sim::ToSeconds(nfs_rt.report.total), 1),
             Table::Num(sim::ToSeconds(snfs_rt.report.total), 1),
             Table::Num(sim::ToSeconds(nqnfs_rt.report.total), 1)});
  t1.Print();

  std::printf("\n=== Table 5-2: RPC calls for Andrew benchmark ===\n\n");
  Table t2({"Operation", "NFS tmp=local", "SNFS tmp=local", "NQNFS tmp=local",
            "NFS tmp=remote", "SNFS tmp=remote", "NQNFS tmp=remote"});
  const proto::OpKind kRows[] = {
      proto::OpKind::kLookup, proto::OpKind::kGetAttr, proto::OpKind::kRead,
      proto::OpKind::kWrite,  proto::OpKind::kOpen,    proto::OpKind::kClose,
      proto::OpKind::kGetLease,
      proto::OpKind::kCreate, proto::OpKind::kRemove,  proto::OpKind::kMkdir,
      proto::OpKind::kSetAttr, proto::OpKind::kReadDir};
  for (proto::OpKind kind : kRows) {
    t2.AddRow({std::string(proto::OpKindName(kind)), Table::Int(nfs_lt.rpcs.Get(kind)),
               Table::Int(snfs_lt.rpcs.Get(kind)), Table::Int(nqnfs_lt.rpcs.Get(kind)),
               Table::Int(nfs_rt.rpcs.Get(kind)), Table::Int(snfs_rt.rpcs.Get(kind)),
               Table::Int(nqnfs_rt.rpcs.Get(kind))});
  }
  t2.AddRow({"total", Table::Int(nfs_lt.rpcs.Total()), Table::Int(snfs_lt.rpcs.Total()),
             Table::Int(nqnfs_lt.rpcs.Total()), Table::Int(nfs_rt.rpcs.Total()),
             Table::Int(snfs_rt.rpcs.Total()), Table::Int(nqnfs_rt.rpcs.Total())});
  t2.AddRow({"data transfer (r+w)", Table::Int(nfs_lt.rpcs.DataTransfer()),
             Table::Int(snfs_lt.rpcs.DataTransfer()), Table::Int(nqnfs_lt.rpcs.DataTransfer()),
             Table::Int(nfs_rt.rpcs.DataTransfer()), Table::Int(snfs_rt.rpcs.DataTransfer()),
             Table::Int(nqnfs_rt.rpcs.DataTransfer())});
  t2.Print();

  std::printf("\nServer disk writes: NFS tmp=remote %llu, SNFS tmp=remote %llu (paper: SNFS 30-35%% lower)\n",
              static_cast<unsigned long long>(nfs_rt.server_disk_writes),
              static_cast<unsigned long long>(snfs_rt.server_disk_writes));

  std::printf("\n=== Shape checks against the paper ===\n");
  auto phase_s = [](const AndrewRun& r, workload::AndrewPhase p) {
    return sim::ToSeconds(r.report.phase_time[static_cast<int>(p)]);
  };
  PrintShapeCheck("SNFS/NFS Copy time (paper ~0.75, tmp local)",
                  Ratio(phase_s(snfs_lt, workload::AndrewPhase::kCopy),
                        phase_s(nfs_lt, workload::AndrewPhase::kCopy)),
                  0.55, 0.90);
  PrintShapeCheck("SNFS/NFS Make time (paper 0.70-0.80, tmp remote)",
                  Ratio(phase_s(snfs_rt, workload::AndrewPhase::kMake),
                        phase_s(nfs_rt, workload::AndrewPhase::kMake)),
                  0.60, 0.85);
  // The paper measured NFS slightly ahead here; in our build SNFS's warmer
  // cache (stable per-file versions instead of the prototype's global
  // counter, §4.3.3) keeps the two within ~10% either way.
  PrintShapeCheck("NFS/SNFS ScanDir+ReadAll time (paper ~0.95: NFS slightly better)",
                  Ratio(phase_s(nfs_rt, workload::AndrewPhase::kScanDir) +
                            phase_s(nfs_rt, workload::AndrewPhase::kReadAll),
                        phase_s(snfs_rt, workload::AndrewPhase::kScanDir) +
                            phase_s(snfs_rt, workload::AndrewPhase::kReadAll)),
                  0.85, 1.15);
  PrintShapeCheck("SNFS/NFS total time (paper 0.80-0.85)",
                  Ratio(sim::ToSeconds(snfs_rt.report.total),
                        sim::ToSeconds(nfs_rt.report.total)),
                  0.70, 0.90);
  PrintShapeCheck("SNFS/NFS total RPCs, tmp local (paper ~1.02: SNFS slightly more)",
                  Ratio(static_cast<double>(snfs_lt.rpcs.Total()),
                        static_cast<double>(nfs_lt.rpcs.Total())),
                  0.85, 1.15);
  PrintShapeCheck("SNFS/NFS total RPCs, tmp remote (paper ~0.94)",
                  Ratio(static_cast<double>(snfs_rt.rpcs.Total()),
                        static_cast<double>(nfs_rt.rpcs.Total())),
                  0.80, 1.00);
  // Paper: ~0.58. Our steady-state SNFS trial reads almost nothing (stable
  // per-file versions keep the warm cache valid across trials), so the
  // ratio lands lower; see EXPERIMENTS.md.
  PrintShapeCheck("SNFS/NFS data-transfer RPCs, tmp remote (paper ~0.58)",
                  Ratio(static_cast<double>(snfs_rt.rpcs.DataTransfer()),
                        static_cast<double>(nfs_rt.rpcs.DataTransfer())),
                  0.20, 0.70);
  PrintShapeCheck("lookup share of NFS RPCs (paper: roughly half)",
                  Ratio(static_cast<double>(nfs_rt.rpcs.Get(proto::OpKind::kLookup)),
                        static_cast<double>(nfs_rt.rpcs.Total())),
                  0.35, 0.65);
  PrintShapeCheck("SNFS/NFS server disk writes, tmp remote (paper 0.65-0.70)",
                  Ratio(static_cast<double>(snfs_rt.server_disk_writes),
                        static_cast<double>(nfs_rt.server_disk_writes)),
                  0.30, 0.80);
  // NQNFS columns: the delayed-write/caching behaviour matches SNFS, so the
  // totals land in the same band; the control traffic is leases instead of
  // opens and closes, and piggybacked extension keeps the lease count low.
  PrintShapeCheck("NQNFS/SNFS total time, tmp remote (leases match grants, ~1.0)",
                  Ratio(sim::ToSeconds(nqnfs_rt.report.total),
                        sim::ToSeconds(snfs_rt.report.total)),
                  0.80, 1.20);
  PrintShapeCheck("NQNFS/NFS total time, tmp remote (faster, like SNFS)",
                  Ratio(sim::ToSeconds(nqnfs_rt.report.total),
                        sim::ToSeconds(nfs_rt.report.total)),
                  0.60, 0.95);
  PrintShapeCheck("NQNFS open+close RPCs, tmp remote (no such RPCs, ==0)",
                  static_cast<double>(nqnfs_rt.rpcs.Get(proto::OpKind::kOpen) +
                                      nqnfs_rt.rpcs.Get(proto::OpKind::kClose)),
                  0.0, 0.5);
  PrintShapeCheck("NQNFS getlease / SNFS open+close RPCs, tmp remote (<0.6)",
                  Ratio(static_cast<double>(nqnfs_rt.rpcs.Get(proto::OpKind::kGetLease)),
                        static_cast<double>(snfs_rt.rpcs.Get(proto::OpKind::kOpen) +
                                            snfs_rt.rpcs.Get(proto::OpKind::kClose))),
                  0.0, 0.6);

  if (traced) {
    bench::PrintLatencyTable("=== RPC latency from rpc.call spans, NFS tmp=remote ===",
                             nfs_rt.rpc_latency);
    bench::PrintLatencyTable("=== RPC latency from rpc.call spans, SNFS tmp=remote ===",
                             snfs_rt.rpc_latency);
  }
  if (!flags.json_path.empty()) {
    bench::WriteBenchJson(flags.json_path, "andrew",
                          {{"local", bench::AndrewRunJson(local)},
                           {"nfs_tmp_local", bench::AndrewRunJson(nfs_lt)},
                           {"snfs_tmp_local", bench::AndrewRunJson(snfs_lt)},
                           {"nqnfs_tmp_local", bench::AndrewRunJson(nqnfs_lt)},
                           {"nfs_tmp_remote", bench::AndrewRunJson(nfs_rt)},
                           {"snfs_tmp_remote", bench::AndrewRunJson(snfs_rt)},
                           {"nqnfs_tmp_remote", bench::AndrewRunJson(nqnfs_rt)}});
    std::printf("\nwrote %s\n", flags.json_path.c_str());
  }
  if (!flags.trace_path.empty()) {
    bench::WriteTextFile(flags.trace_path, snfs_rt.chrome_json);
    std::printf("\nwrote Chrome trace of SNFS tmp=remote (last trial) to %s\n",
                flags.trace_path.c_str());
  }
  return 0;
}
