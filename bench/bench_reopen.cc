// Reproduces the §5.3 aside: the SunOS 4.0.3 microbenchmark highlighting the
// penalty for invalidating the client cache when closing a temporary file.
//
// "This benchmark writes a large file, closes it, and then opens and reads
// either the same file, or a different file of the same size. ... There was
// no significant difference in elapsed times, indicating that the
// (elapsed-time) cost of a read missing the client cache is negligible
// compared to the cost of writing through."
//
// We run write-close-reopen-read for: NFS with the invalidate-on-close bug
// (the paper's Ultrix client), NFS without it (the fixed reference port),
// SNFS, and NQNFS. The read-same vs read-different comparison shows the
// write-through cost dwarfing the reread cost under NFS, while SNFS and
// NQNFS avoid both (delayed writes under an open grant / a write lease).
#include <cstdio>

#include "src/metrics/table.h"
#include "src/testbed/rig.h"

namespace {

using metrics::Table;
using testbed::Protocol;
using testbed::Rig;
using testbed::RigOptions;

constexpr uint64_t kFileBytes = 1 << 20;  // 1 MB

struct ReopenResult {
  double write_close_s = 0;  // write + close (write-through cost)
  double reread_same_s = 0;  // reopen + read same file
  double reread_other_s = 0; // open + read a different file of equal size
  uint64_t read_rpcs = 0;
};

ReopenResult RunCase(Protocol protocol, bool invalidate_on_close) {
  RigOptions options;
  options.protocol = protocol;
  options.nfs.invalidate_on_close = invalidate_on_close;
  Rig rig(options);

  // The "different file of the same size" is populated server-side so the
  // client has never cached it.
  rig.simulator().Spawn([](Rig& rig) -> sim::Task<void> {
    fs::LocalFs& fs = rig.data_fs();
    auto file = co_await fs.Create(rig.data_parent(), "other", /*exclusive=*/true);
    CHECK(file.ok());
    std::vector<uint8_t> payload(kFileBytes);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(i * 31);
    }
    auto wrote = co_await fs.Write(file->fh, 0, payload, fs::LocalFs::WriteMode::kMemory);
    CHECK(wrote.ok());
  }(rig));
  rig.simulator().Run();

  ReopenResult result;
  bool done = false;
  rig.simulator().Spawn([](Rig& rig, ReopenResult& result, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = rig.client().vfs();
    std::vector<uint8_t> payload(kFileBytes);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(i * 31);
    }
    sim::Time t0 = rig.simulator().Now();
    CHECK((co_await v.WriteFile("/data/big", payload)).ok());
    sim::Time t1 = rig.simulator().Now();
    uint64_t reads0 = rig.client().peer().client_ops().Get(proto::OpKind::kRead);
    auto same = co_await v.ReadFile("/data/big");
    CHECK(same.ok() && same->size() == kFileBytes);
    sim::Time t2 = rig.simulator().Now();
    result.read_rpcs = rig.client().peer().client_ops().Get(proto::OpKind::kRead) - reads0;
    auto other = co_await v.ReadFile("/data/other");
    CHECK(other.ok() && other->size() == kFileBytes);
    sim::Time t3 = rig.simulator().Now();

    result.write_close_s = sim::ToSeconds(t1 - t0);
    result.reread_same_s = sim::ToSeconds(t2 - t1);
    result.reread_other_s = sim::ToSeconds(t3 - t2);
    done = true;
  }(rig, result, done));
  rig.simulator().Run();
  CHECK(done);
  return result;
}

void PrintShapeCheck(const char* what, double measured, double lo, double hi) {
  bool ok = measured >= lo && measured <= hi;
  std::printf("  [%s] %-58s measured=%6.3f expected=[%.2f, %.2f]\n", ok ? "ok" : "!!", what,
              measured, lo, hi);
}

}  // namespace

int main() {
  std::printf("=== §5.3 microbenchmark: write-close-reopen-read, 1 MB file ===\n\n");

  ReopenResult nfs_bug = RunCase(Protocol::kNfs, /*invalidate_on_close=*/true);
  ReopenResult nfs_fixed = RunCase(Protocol::kNfs, /*invalidate_on_close=*/false);
  ReopenResult snfs = RunCase(Protocol::kSnfs, true);
  ReopenResult nqnfs = RunCase(Protocol::kNqnfs, true);

  Table t({"Client", "write+close", "reread same", "read other", "read RPCs"});
  t.AddRow({"NFS (Ultrix bug)", Table::Seconds(nfs_bug.write_close_s),
            Table::Seconds(nfs_bug.reread_same_s), Table::Seconds(nfs_bug.reread_other_s),
            Table::Int(nfs_bug.read_rpcs)});
  t.AddRow({"NFS (fixed)", Table::Seconds(nfs_fixed.write_close_s),
            Table::Seconds(nfs_fixed.reread_same_s), Table::Seconds(nfs_fixed.reread_other_s),
            Table::Int(nfs_fixed.read_rpcs)});
  t.AddRow({"SNFS", Table::Seconds(snfs.write_close_s), Table::Seconds(snfs.reread_same_s),
            Table::Seconds(snfs.reread_other_s), Table::Int(snfs.read_rpcs)});
  t.AddRow({"NQNFS", Table::Seconds(nqnfs.write_close_s), Table::Seconds(nqnfs.reread_same_s),
            Table::Seconds(nqnfs.reread_other_s), Table::Int(nqnfs.read_rpcs)});
  t.Print();

  std::printf("\n=== Shape checks against the paper ===\n");
  // "No significant difference in elapsed times" between reading the same
  // file (invalidated cache) and a different one under buggy NFS...
  PrintShapeCheck("NFS(bug) reread-same / read-other (paper ~1.0)",
                  nfs_bug.reread_same_s / nfs_bug.reread_other_s, 0.5, 1.5);
  // ...because both are negligible next to the write-through cost.
  PrintShapeCheck("NFS(bug) reread-same / write-close (paper: negligible, <0.4)",
                  nfs_bug.reread_same_s / nfs_bug.write_close_s, 0.0, 0.4);
  // The fixed client serves the reread from its cache.
  PrintShapeCheck("NFS(fixed) reread-same / reread-other (cache hit, <0.3)",
                  nfs_fixed.reread_same_s / nfs_fixed.reread_other_s, 0.0, 0.3);
  // SNFS avoids the write-through entirely.
  PrintShapeCheck("SNFS write-close / NFS write-close (delayed, <0.2)",
                  snfs.write_close_s / nfs_bug.write_close_s, 0.0, 0.2);
  PrintShapeCheck("SNFS reread read-RPC count (cache valid, ==0)",
                  static_cast<double>(snfs.read_rpcs), 0.0, 0.5);
  // NQNFS writes are delayed under a write lease, like SNFS — and the
  // reread is served from cache under the same (extended) lease.
  PrintShapeCheck("NQNFS write-close / NFS write-close (delayed, <0.2)",
                  nqnfs.write_close_s / nfs_bug.write_close_s, 0.0, 0.2);
  PrintShapeCheck("NQNFS reread read-RPC count (lease live, ==0)",
                  static_cast<double>(nqnfs.read_rpcs), 0.0, 0.5);
  return 0;
}
