// Reproduces paper Table 5-3 (sort benchmark elapsed time for three input
// sizes with /usr/tmp local, NFS, and SNFS) and Table 5-4 (RPC calls for
// the 2816 KB input), with an NQNFS column alongside: leases should match
// SNFS's delayed-write win without any open/close RPC traffic at all.
//
// Paper values (Table 5-3, elapsed seconds):
//   input 281 k  (temp  304 k):  local  4   NFS   8    SNFS   4
//   input 1408 k (temp 2170 k):  local 33   NFS 105    SNFS  48
//   input 2816 k (temp 7764 k):  local 74   NFS 234    SNFS 127
// Shape: SNFS ~2x faster than NFS; client CPU utilization higher under
// SNFS (I/O latency is the bottleneck); SNFS does far fewer read RPCs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/metrics/table.h"

namespace {

using bench::Ratio;
using bench::RunSortConfig;
using bench::SortRun;
using metrics::Table;
using testbed::Protocol;

void PrintShapeCheck(const char* what, double measured, double lo, double hi) {
  bool ok = measured >= lo && measured <= hi;
  std::printf("  [%s] %-58s measured=%6.3f expected=[%.2f, %.2f]\n", ok ? "ok" : "!!", what,
              measured, lo, hi);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bool traced = flags.tracing();

  std::printf("=== Table 5-3: Sort benchmark, elapsed time in seconds ===\n");
  std::printf("(paper: 281k: 4/8/4; 1408k: 33/105/48; 2816k: 74/234/127 for local/NFS/SNFS)\n\n");

  const uint64_t kSizes[] = {281 * 1024, 1408 * 1024, 2816 * 1024};
  SortRun local[3];
  SortRun nfs[3];
  SortRun snfs[3];
  SortRun nqnfs[3];

  Table t3({"File size", "Temp storage", "local /usr/tmp", "NFS /usr/tmp", "SNFS /usr/tmp",
            "NQNFS /usr/tmp"});
  for (int i = 0; i < 3; ++i) {
    local[i] = RunSortConfig(Protocol::kLocal, kSizes[i], true, 1280, {}, traced);
    nfs[i] = RunSortConfig(Protocol::kNfs, kSizes[i], true, 1280, {}, traced);
    snfs[i] = RunSortConfig(Protocol::kSnfs, kSizes[i], true, 1280, {}, traced);
    nqnfs[i] = RunSortConfig(Protocol::kNqnfs, kSizes[i], true, 1280, {}, traced);
    t3.AddRow({Table::Int(kSizes[i] / 1024) + " k",
               Table::Int(local[i].report.temp_bytes_written / 1024) + " k",
               Table::Seconds(sim::ToSeconds(local[i].report.elapsed)),
               Table::Seconds(sim::ToSeconds(nfs[i].report.elapsed)),
               Table::Seconds(sim::ToSeconds(snfs[i].report.elapsed)),
               Table::Seconds(sim::ToSeconds(nqnfs[i].report.elapsed))});
  }
  t3.Print();

  std::printf("\n=== Table 5-4: RPC calls for Sort benchmark (2816 kB input) ===\n\n");
  Table t4({"Operation", "NFS", "SNFS", "NQNFS"});
  const proto::OpKind kRows[] = {proto::OpKind::kLookup, proto::OpKind::kGetAttr,
                                 proto::OpKind::kRead,   proto::OpKind::kWrite,
                                 proto::OpKind::kOpen,   proto::OpKind::kClose,
                                 proto::OpKind::kGetLease,
                                 proto::OpKind::kCreate, proto::OpKind::kRemove};
  for (proto::OpKind kind : kRows) {
    t4.AddRow({std::string(proto::OpKindName(kind)), Table::Int(nfs[2].rpcs.Get(kind)),
               Table::Int(snfs[2].rpcs.Get(kind)), Table::Int(nqnfs[2].rpcs.Get(kind))});
  }
  t4.AddRow({"total", Table::Int(nfs[2].rpcs.Total()), Table::Int(snfs[2].rpcs.Total()),
             Table::Int(nqnfs[2].rpcs.Total())});
  t4.Print();

  std::printf("\nClient CPU utilization (2816k): NFS %.0f%%, SNFS %.0f%% "
              "(paper: higher for SNFS; I/O latency is the bottleneck)\n",
              nfs[2].client_cpu_utilization * 100, snfs[2].client_cpu_utilization * 100);
  std::printf("Server CPU-relevant RPC totals (2816k): NFS %llu, SNFS %llu "
              "(paper: SNFS ~40%% fewer)\n",
              static_cast<unsigned long long>(nfs[2].rpcs.Total()),
              static_cast<unsigned long long>(snfs[2].rpcs.Total()));

  std::printf("\n=== Shape checks against the paper ===\n");
  PrintShapeCheck("SNFS/NFS elapsed, 2816k (paper ~0.54: SNFS ~2x faster)",
                  Ratio(sim::ToSeconds(snfs[2].report.elapsed),
                        sim::ToSeconds(nfs[2].report.elapsed)),
                  0.35, 0.75);
  PrintShapeCheck("SNFS/NFS elapsed, 1408k (paper ~0.46)",
                  Ratio(sim::ToSeconds(snfs[1].report.elapsed),
                        sim::ToSeconds(nfs[1].report.elapsed)),
                  0.30, 0.75);
  PrintShapeCheck("NFS/local elapsed, 2816k (paper ~3.2)",
                  Ratio(sim::ToSeconds(nfs[2].report.elapsed),
                        sim::ToSeconds(local[2].report.elapsed)),
                  1.8, 4.5);
  PrintShapeCheck("SNFS/local elapsed, 2816k (paper ~1.7)",
                  Ratio(sim::ToSeconds(snfs[2].report.elapsed),
                        sim::ToSeconds(local[2].report.elapsed)),
                  1.0, 2.5);
  PrintShapeCheck("SNFS/NFS read RPCs, 2816k (paper: far fewer, <0.3)",
                  Ratio(static_cast<double>(snfs[2].rpcs.Get(proto::OpKind::kRead)),
                        static_cast<double>(nfs[2].rpcs.Get(proto::OpKind::kRead))),
                  0.0, 0.30);
  // Paper ~0.61. Our counter snapshot ends with the workload, while some of
  // SNFS's delayed write-backs land just after it (the paper's back-to-back
  // trials charge them to the next trial); the ratio is sensitive to that
  // boundary, so the band is wide.
  PrintShapeCheck("SNFS/NFS total RPCs, 2816k (paper ~0.61: ~40% fewer)",
                  Ratio(static_cast<double>(snfs[2].rpcs.Total()),
                        static_cast<double>(nfs[2].rpcs.Total())),
                  0.15, 0.80);
  PrintShapeCheck("temp/input volume, 2816k (paper ~2.76)",
                  Ratio(static_cast<double>(snfs[2].report.temp_bytes_written),
                        static_cast<double>(snfs[2].report.input_bytes)),
                  2.0, 3.5);
  PrintShapeCheck("temp/input volume, 281k (paper ~1.08)",
                  Ratio(static_cast<double>(snfs[0].report.temp_bytes_written),
                        static_cast<double>(snfs[0].report.input_bytes)),
                  0.9, 1.6);
  double cpu_shape = snfs[2].client_cpu_utilization - nfs[2].client_cpu_utilization;
  PrintShapeCheck("SNFS minus NFS client CPU utilization (paper: positive)", cpu_shape, 0.01,
                  1.0);
  // NQNFS: same delayed-write regime as SNFS, so elapsed time lands in the
  // same band — with no open/close traffic and only a handful of lease RPCs.
  PrintShapeCheck("NQNFS/SNFS elapsed, 2816k (leases match grants, ~1.0)",
                  Ratio(sim::ToSeconds(nqnfs[2].report.elapsed),
                        sim::ToSeconds(snfs[2].report.elapsed)),
                  0.7, 1.3);
  PrintShapeCheck("NQNFS/NFS total RPCs, 2816k (fewer, like SNFS)",
                  Ratio(static_cast<double>(nqnfs[2].rpcs.Total()),
                        static_cast<double>(nfs[2].rpcs.Total())),
                  0.15, 0.80);
  PrintShapeCheck("NQNFS open+close RPCs, 2816k (no such RPCs, ==0)",
                  static_cast<double>(nqnfs[2].rpcs.Get(proto::OpKind::kOpen) +
                                      nqnfs[2].rpcs.Get(proto::OpKind::kClose)),
                  0.0, 0.5);

  if (traced) {
    bench::PrintLatencyTable("=== RPC latency from rpc.call spans, NFS 2816k ===",
                             nfs[2].rpc_latency);
    bench::PrintLatencyTable("=== RPC latency from rpc.call spans, SNFS 2816k ===",
                             snfs[2].rpc_latency);
  }
  if (!flags.json_path.empty()) {
    std::vector<std::pair<std::string, std::string>> configs;
    const char* kSizeNames[] = {"281k", "1408k", "2816k"};
    for (int i = 0; i < 3; ++i) {
      configs.emplace_back(std::string("local_") + kSizeNames[i], bench::SortRunJson(local[i]));
      configs.emplace_back(std::string("nfs_") + kSizeNames[i], bench::SortRunJson(nfs[i]));
      configs.emplace_back(std::string("snfs_") + kSizeNames[i], bench::SortRunJson(snfs[i]));
      configs.emplace_back(std::string("nqnfs_") + kSizeNames[i], bench::SortRunJson(nqnfs[i]));
    }
    bench::WriteBenchJson(flags.json_path, "sort", configs);
    std::printf("\nwrote %s\n", flags.json_path.c_str());
  }
  if (!flags.trace_path.empty()) {
    bench::WriteTextFile(flags.trace_path, snfs[2].chrome_json);
    std::printf("\nwrote Chrome trace of SNFS 2816k to %s\n", flags.trace_path.c_str());
  }
  return 0;
}
