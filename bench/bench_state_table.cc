// Reproduces paper Table 4-1: the SNFS server state transitions. The state
// table is driven through every (state, event) pair and the realized
// transition — new state, cachability, and callbacks — is printed in the
// paper's layout.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/metrics/table.h"
#include "src/snfs/state_table.h"

namespace {

using metrics::Table;
using snfs::CallbackAction;
using snfs::FileState;
using snfs::FileStateName;
using snfs::OpenResult;
using snfs::StateTable;

const proto::FileHandle kFile{1, 1, 0};
constexpr int kA = 1;  // "this client"
constexpr int kB = 2;  // "another client"

std::string DescribeCallbacks(const std::vector<CallbackAction>& callbacks) {
  if (callbacks.empty()) {
    return "none";
  }
  std::string out;
  for (const CallbackAction& cb : callbacks) {
    if (!out.empty()) {
      out += "; ";
    }
    out += "to ";
    out += cb.host == kA ? "A" : "B";
    out += ":";
    if (cb.writeback) {
      out += " writeback";
    }
    if (cb.invalidate) {
      out += " invalidate";
    }
  }
  return out;
}

// Drive the table into a named starting state using host A (and B for the
// multi-client states).
void Prepare(StateTable& t, FileState state) {
  switch (state) {
    case FileState::kClosed:
      t.OnOpen(kFile, kA, false, 1);
      t.OnClose(kFile, kA, false, false);
      break;
    case FileState::kClosedDirty:
      t.OnOpen(kFile, kA, true, 1);
      t.OnClose(kFile, kA, true, /*has_dirty=*/true);
      break;
    case FileState::kOneReader:
      t.OnOpen(kFile, kA, false, 1);
      break;
    case FileState::kOneRdrDirty:
      t.OnOpen(kFile, kA, true, 1);
      t.OnClose(kFile, kA, true, true);
      t.OnOpen(kFile, kA, false, 1);
      break;
    case FileState::kMultReaders:
      t.OnOpen(kFile, kA, false, 1);
      t.OnOpen(kFile, kB, false, 1);
      break;
    case FileState::kOneWriter:
      t.OnOpen(kFile, kA, true, 1);
      break;
    case FileState::kWriteShared:
      t.OnOpen(kFile, kA, true, 1);
      t.OnOpen(kFile, kB, false, 1);
      break;
  }
}

}  // namespace

int main() {
  std::printf("=== Table 4-1: SNFS server state transitions ===\n");
  std::printf("(host A holds the starting state; events come from A or a new client B)\n\n");

  struct Event {
    const char* name;
    std::function<OpenResult(StateTable&)> apply;
  };
  const std::vector<Event> kEvents = {
      {"open read by A", [](StateTable& t) { return t.OnOpen(kFile, kA, false, 1); }},
      {"open write by A", [](StateTable& t) { return t.OnOpen(kFile, kA, true, 1); }},
      {"open read by B", [](StateTable& t) { return t.OnOpen(kFile, kB, false, 1); }},
      {"open write by B", [](StateTable& t) { return t.OnOpen(kFile, kB, true, 1); }},
  };
  const FileState kStates[] = {FileState::kClosed,      FileState::kClosedDirty,
                               FileState::kOneReader,   FileState::kOneRdrDirty,
                               FileState::kMultReaders, FileState::kOneWriter,
                               FileState::kWriteShared};

  Table table({"Current state", "Event", "New state", "Cachable", "Callbacks"});
  for (FileState state : kStates) {
    for (const Event& event : kEvents) {
      StateTable t;
      Prepare(t, state);
      const StateTable::Entry* before = t.Lookup(kFile);
      CHECK(before != nullptr && before->state == state);
      OpenResult result = event.apply(t);
      t.CheckInvariants();
      table.AddRow({std::string(FileStateName(state)), event.name,
                    std::string(FileStateName(result.state)),
                    result.cache_enabled ? "yes" : "NO",
                    DescribeCallbacks(result.callbacks)});
    }
  }
  table.Print();

  std::printf("\n=== Close transitions ===\n\n");
  Table closes({"Current state", "Event", "New state"});
  {
    StateTable t;
    t.OnOpen(kFile, kA, true, 1);
    auto r = t.OnClose(kFile, kA, true, /*has_dirty=*/true);
    closes.AddRow({"ONE_WRITER", "final close (dirty)", std::string(FileStateName(r.state))});
  }
  {
    StateTable t;
    t.OnOpen(kFile, kA, true, 1);
    auto r = t.OnClose(kFile, kA, true, false);
    closes.AddRow({"ONE_WRITER", "final close (clean)", std::string(FileStateName(r.state))});
  }
  {
    StateTable t;
    t.OnOpen(kFile, kA, false, 1);
    t.OnOpen(kFile, kA, true, 1);
    auto r = t.OnClose(kFile, kA, true, true);
    closes.AddRow(
        {"ONE_WRITER", "close write, A still reading (dirty)", std::string(FileStateName(r.state))});
  }
  {
    StateTable t;
    t.OnOpen(kFile, kA, false, 1);
    t.OnOpen(kFile, kB, false, 1);
    auto r = t.OnClose(kFile, kB, false, false);
    closes.AddRow({"MULT_READERS", "final close by B", std::string(FileStateName(r.state))});
  }
  {
    StateTable t;
    t.OnOpen(kFile, kA, true, 1);
    t.OnOpen(kFile, kB, false, 1);
    auto r = t.OnClose(kFile, kA, true, false);
    closes.AddRow({"WRITE_SHARED", "writer closes, reader remains",
                   std::string(FileStateName(r.state))});
  }
  {
    StateTable t;
    t.OnOpen(kFile, kA, true, 1);
    t.OnClose(kFile, kA, true, true);
    t.OnOpen(kFile, kA, false, 1);
    auto r = t.OnClose(kFile, kA, false, /*has_dirty=*/true);
    closes.AddRow({"ONE_RDR_DIRTY", "final close (still dirty)",
                   std::string(FileStateName(r.state))});
  }
  closes.Print();

  std::printf("\nState table entry cost: %zu bytes/entry in the paper's implementation (68);\n",
              sizeof(StateTable::Entry));
  std::printf("1000 simultaneously open files within ~%zu KB of table data (paper: ~70 KB).\n",
              1000 * sizeof(StateTable::Entry) / 1024);
  return 0;
}
