// Reproduces paper Table 5-5 (sort benchmark with the /etc/update process
// disabled — "infinite write-delay") and Table 5-6 (RPC calls for the
// 2816 kB input with and without the update daemon).
//
// Paper Table 5-6 (2816 kB input):
//            update?   reads   writes   others
//   NFS      yes        1340     1452      353
//   NFS      no         1227     1451      368
//   SNFS     yes          67     1441      412
//   SNFS     no           65       33      407
//
// Shape: with infinite write-delay, SNFS does almost no write RPCs and
// "matches or beats local-disk performance"; NFS is unchanged.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/metrics/table.h"

namespace {

using bench::Ratio;
using bench::RunSortConfig;
using bench::SortRun;
using metrics::Table;
using testbed::Protocol;

void PrintShapeCheck(const char* what, double measured, double lo, double hi) {
  bool ok = measured >= lo && measured <= hi;
  std::printf("  [%s] %-58s measured=%6.3f expected=[%.2f, %.2f]\n", ok ? "ok" : "!!", what,
              measured, lo, hi);
}

std::string RpcRow(const SortRun& run) {
  return Table::Int(run.rpcs.Get(proto::OpKind::kRead)) + " / " +
         Table::Int(run.rpcs.Get(proto::OpKind::kWrite)) + " / " +
         Table::Int(run.rpcs.Others());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bool traced = flags.tracing();

  constexpr uint64_t kInput = 2816 * 1024;

  std::printf("=== Table 5-5: Sort benchmark with infinite write-delay ===\n");
  std::printf("(paper: with /etc/update disabled, SNFS matches or beats local;\n");
  std::printf(" NFS performance is unchanged within measurement error)\n\n");

  // §5.1: the delete-before-writeback benefit applies when the temporaries
  // "fit easily into the client cache" — this experiment runs with the full
  // 16 MB cache available, unlike the pressured Table 5-3 regime.
  constexpr size_t kFullCache = 4096;
  SortRun local_on =
      RunSortConfig(Protocol::kLocal, kInput, /*sync_daemon=*/true, kFullCache, {}, traced);
  SortRun local_off =
      RunSortConfig(Protocol::kLocal, kInput, /*sync_daemon=*/false, kFullCache, {}, traced);
  SortRun nfs_on = RunSortConfig(Protocol::kNfs, kInput, true, kFullCache, {}, traced);
  SortRun nfs_off = RunSortConfig(Protocol::kNfs, kInput, false, kFullCache, {}, traced);
  SortRun snfs_on = RunSortConfig(Protocol::kSnfs, kInput, true, kFullCache, {}, traced);
  SortRun snfs_off = RunSortConfig(Protocol::kSnfs, kInput, false, kFullCache, {}, traced);

  Table t5({"Version", "update daemon", "elapsed"});
  t5.AddRow({"local", "yes", Table::Seconds(sim::ToSeconds(local_on.report.elapsed))});
  t5.AddRow({"local", "no", Table::Seconds(sim::ToSeconds(local_off.report.elapsed))});
  t5.AddRow({"NFS", "yes", Table::Seconds(sim::ToSeconds(nfs_on.report.elapsed))});
  t5.AddRow({"NFS", "no", Table::Seconds(sim::ToSeconds(nfs_off.report.elapsed))});
  t5.AddRow({"SNFS", "yes", Table::Seconds(sim::ToSeconds(snfs_on.report.elapsed))});
  t5.AddRow({"SNFS", "no", Table::Seconds(sim::ToSeconds(snfs_off.report.elapsed))});
  t5.Print();

  std::printf("\n=== Table 5-6: RPC calls (reads / writes / others), 2816 kB input ===\n");
  std::printf("(paper: NFS yes 1340/1452/353, NFS no 1227/1451/368,\n");
  std::printf("        SNFS yes 67/1441/412, SNFS no 65/33/407)\n\n");
  Table t6({"Version", "update?", "Reads / Writes / Others"});
  t6.AddRow({"NFS", "yes", RpcRow(nfs_on)});
  t6.AddRow({"NFS", "no", RpcRow(nfs_off)});
  t6.AddRow({"SNFS", "yes", RpcRow(snfs_on)});
  t6.AddRow({"SNFS", "no", RpcRow(snfs_off)});
  t6.Print();

  std::printf("\n=== Shape checks against the paper ===\n");
  PrintShapeCheck("SNFS-no-update write RPCs / SNFS-update write RPCs (paper ~0.02)",
                  Ratio(static_cast<double>(snfs_off.rpcs.Get(proto::OpKind::kWrite)),
                        static_cast<double>(snfs_on.rpcs.Get(proto::OpKind::kWrite)) + 1),
                  0.0, 0.25);
  PrintShapeCheck("NFS elapsed unchanged without update (paper ~1.0)",
                  Ratio(sim::ToSeconds(nfs_off.report.elapsed),
                        sim::ToSeconds(nfs_on.report.elapsed)),
                  0.90, 1.10);
  PrintShapeCheck("NFS write RPCs unchanged without update (paper ~1.0)",
                  Ratio(static_cast<double>(nfs_off.rpcs.Get(proto::OpKind::kWrite)),
                        static_cast<double>(nfs_on.rpcs.Get(proto::OpKind::kWrite))),
                  0.95, 1.05);
  PrintShapeCheck("SNFS-no-update vs local-no-update elapsed (paper: matches or beats, <=1.1)",
                  Ratio(sim::ToSeconds(snfs_off.report.elapsed),
                        sim::ToSeconds(local_off.report.elapsed)),
                  0.3, 1.10);
  // In our build the update-on run already cancels most temp writes before
  // the daemon reaches them, so the further speedup from disabling it is
  // small here; the large elapsed-time effect lives in the pressured
  // Table 5-3 regime (see bench_sort).
  PrintShapeCheck("SNFS speedup from disabling update (ratio <= 1.0)",
                  Ratio(sim::ToSeconds(snfs_off.report.elapsed),
                        sim::ToSeconds(snfs_on.report.elapsed)),
                  0.2, 1.0);

  if (traced) {
    bench::PrintLatencyTable("=== RPC latency from rpc.call spans, SNFS no-update ===",
                             snfs_off.rpc_latency);
  }
  if (!flags.json_path.empty()) {
    bench::WriteBenchJson(flags.json_path, "sort_nodelay",
                          {{"local_update", bench::SortRunJson(local_on)},
                           {"local_noupdate", bench::SortRunJson(local_off)},
                           {"nfs_update", bench::SortRunJson(nfs_on)},
                           {"nfs_noupdate", bench::SortRunJson(nfs_off)},
                           {"snfs_update", bench::SortRunJson(snfs_on)},
                           {"snfs_noupdate", bench::SortRunJson(snfs_off)}});
    std::printf("\nwrote %s\n", flags.json_path.c_str());
  }
  if (!flags.trace_path.empty()) {
    bench::WriteTextFile(flags.trace_path, snfs_off.chrome_json);
    std::printf("\nwrote Chrome trace of SNFS no-update to %s\n", flags.trace_path.c_str());
  }
  return 0;
}
