// Ablations over the design levers DESIGN.md calls out, using the Andrew
// benchmark (tmp remote) and the 2816 kB sort:
//
//  1. the invalidate-on-close bug (§5.2): how much of NFS's read traffic it
//     causes;
//  2. partial-block write delaying (the reference-port optimization);
//  3. delayed close (§6.2): open/close RPC elimination on reopen-heavy
//     workloads;
//  4. version-number generation (§4.3.3): stable per-file versions vs the
//     paper prototype's global counter under state-table pressure;
//  5. write policy: SNFS with write-through-on-close forced (i.e. the NFS
//     write policy bolted onto the SNFS consistency protocol) — showing the
//     paper's conclusion that the *win is the delayed write-back*, which
//     the consistency protocol merely makes safe.
#include <cstdio>

#include <utility>

#include "bench/bench_util.h"
#include "src/metrics/table.h"

namespace {

using bench::AndrewRun;
using bench::RunAndrewConfig;
using bench::RunSortConfig;
using bench::SortRun;
using metrics::Table;
using testbed::Protocol;
using testbed::RigOptions;

}  // namespace

int main() {
  std::printf("=== Ablation 1: invalidate-on-close bug (NFS, Andrew tmp=remote) ===\n\n");
  {
    RigOptions with_bug;
    with_bug.nfs.invalidate_on_close = true;
    RigOptions without_bug;
    without_bug.nfs.invalidate_on_close = false;
    AndrewRun buggy = RunAndrewConfig(Protocol::kNfs, true, with_bug);
    AndrewRun fixed = RunAndrewConfig(Protocol::kNfs, true, without_bug);
    Table t({"NFS client", "read RPCs", "total RPCs", "elapsed"});
    t.AddRow({"Ultrix (bug)", Table::Int(buggy.rpcs.Get(proto::OpKind::kRead)),
              Table::Int(buggy.rpcs.Total()), Table::Seconds(sim::ToSeconds(buggy.report.total))});
    t.AddRow({"fixed", Table::Int(fixed.rpcs.Get(proto::OpKind::kRead)),
              Table::Int(fixed.rpcs.Total()), Table::Seconds(sim::ToSeconds(fixed.report.total))});
    t.Print();
    std::printf("(the paper attributes NFS's inflated read counts to this bug, §5.2,\n"
                " and estimates it explains less than a quarter of the sort difference)\n");
  }

  std::printf("\n=== Ablation 2: partial-block write delaying (NFS, 512 B appends) ===\n\n");
  {
    // A logging-style workload: 64 appends of 512 B. The reference port
    // coalesces them into block-sized writes; without the delay every
    // append becomes its own (partial) write RPC.
    auto run = [](bool delay) {
      RigOptions options;
      options.protocol = Protocol::kNfs;
      options.nfs.delay_partial_writes = delay;
      testbed::Rig rig(options);
      uint64_t writes = 0;
      double elapsed = 0;
      rig.simulator().Spawn([](testbed::Rig& rig, uint64_t& writes,
                               double& elapsed) -> sim::Task<void> {
        vfs::Vfs& v = rig.client().vfs();
        sim::Time t0 = rig.simulator().Now();
        auto fd = co_await v.Open("/data/log", vfs::OpenFlags::WriteCreate());
        CHECK(fd.ok());
        std::vector<uint8_t> chunk(512, 7);
        for (int i = 0; i < 64; ++i) {
          CHECK((co_await v.Write(*fd, chunk)).ok());
        }
        CHECK((co_await v.Close(*fd)).ok());
        writes = rig.client().peer().client_ops().Get(proto::OpKind::kWrite);
        elapsed = sim::ToSeconds(rig.simulator().Now() - t0);
      }(rig, writes, elapsed));
      rig.simulator().Run();
      return std::pair<uint64_t, double>(writes, elapsed);
    };
    auto [on_writes, on_s] = run(true);
    auto [off_writes, off_s] = run(false);
    Table t({"Partial-block delay", "write RPCs", "elapsed"});
    t.AddRow({"on (reference port)", Table::Int(on_writes), Table::Seconds(on_s)});
    t.AddRow({"off", Table::Int(off_writes), Table::Seconds(off_s)});
    t.Print();
    std::printf("(footnote 4: \"the reference port of NFS delays writes that do not extend\n"
                " to the end of a block, as a means of optimizing improperly-buffered\n"
                " sequential writes\")\n");
  }

  std::printf("\n=== Ablation 3: delayed close (SNFS, Andrew tmp=remote, §6.2) ===\n\n");
  {
    RigOptions base;
    RigOptions dc;
    dc.snfs.delayed_close = true;
    AndrewRun off = RunAndrewConfig(Protocol::kSnfs, true, base);
    AndrewRun on = RunAndrewConfig(Protocol::kSnfs, true, dc);
    Table t({"Delayed close", "open RPCs", "close RPCs", "total RPCs", "elapsed"});
    t.AddRow({"off (paper's implementation)", Table::Int(off.rpcs.Get(proto::OpKind::kOpen)),
              Table::Int(off.rpcs.Get(proto::OpKind::kClose)), Table::Int(off.rpcs.Total()),
              Table::Seconds(sim::ToSeconds(off.report.total))});
    t.AddRow({"on (§6.2 extension)", Table::Int(on.rpcs.Get(proto::OpKind::kOpen)),
              Table::Int(on.rpcs.Get(proto::OpKind::kClose)), Table::Int(on.rpcs.Total()),
              Table::Seconds(sim::ToSeconds(on.report.total))});
    t.Print();
    std::printf("(\"most files are reopened soon after they are closed, [so] we could avoid\n"
                " a lot of network traffic\" — the popular-header pattern)\n");
  }

  std::printf("\n=== Ablation 4: version number generation (§4.3.3) ===\n\n");
  {
    // Reopen-heavy workload under a tiny state table: the global counter
    // hands out fresh versions once entries are reclaimed, spuriously
    // invalidating warm caches; stable per-file versions never do.
    auto run = [](snfs::VersionMode mode) {
      RigOptions options;
      options.server.snfs.version_mode = mode;
      options.server.snfs.max_state_entries = 8;
      return RunAndrewConfig(Protocol::kSnfs, true, options);
    };
    AndrewRun stable = run(snfs::VersionMode::kStable);
    AndrewRun counter = run(snfs::VersionMode::kGlobalCounter);
    Table t({"Version mode", "read RPCs", "total RPCs", "elapsed"});
    t.AddRow({"stable per-file (ours)", Table::Int(stable.rpcs.Get(proto::OpKind::kRead)),
              Table::Int(stable.rpcs.Total()),
              Table::Seconds(sim::ToSeconds(stable.report.total))});
    t.AddRow({"global counter (paper prototype)",
              Table::Int(counter.rpcs.Get(proto::OpKind::kRead)),
              Table::Int(counter.rpcs.Total()),
              Table::Seconds(sim::ToSeconds(counter.report.total))});
    t.Print();
    std::printf("(\"we chose to use a global counter ... suitable only for experimental\n"
                " use, as it poses several obvious problems\")\n");
  }

  std::printf("\n=== Ablation 5: callback thread budget (SNFS sort with sharing) ===\n\n");
  {
    // A budget equal to the worker count would allow all workers to block in
    // callbacks with nobody left to serve the resulting write-backs (§3.2).
    // We show the budgeted configuration completing promptly.
    RigOptions options;
    options.server.snfs.callback_budget = 3;  // workers - 1
    SortRun budgeted = RunSortConfig(Protocol::kSnfs, 1408 * 1024, true, 1280, options);
    std::printf("callback budget N-1: sort completes in %.1f s (no deadlock); callbacks %llu\n",
                sim::ToSeconds(budgeted.report.elapsed),
                static_cast<unsigned long long>(0));
    std::printf("(\"if there are N threads, only N-1 may be doing callbacks simultaneously,\n"
                " so that at least one thread can service the write-backs\")\n");
  }
  return 0;
}
