// Fault matrix: the seed-sweep driver run across a grid of fault mixes and
// all three remote protocols, reporting aggregate recovery behaviour. Every
// (mix, protocol) cell runs the same two-client read/write workload under
// N seeds, asserting the protocol invariants (data-integrity oracle,
// duplicate-cache bound, state-table invariants, no ghost replies) and
// measuring:
//
//   recovery  mean time from the schedule's last server reboot to the
//             first operation that completes afterwards;
//   retrans   RPC retransmissions per seed (client + server roles);
//   dup supp  duplicate requests absorbed by the server's cache;
//   stale     ghost replies computed by a dead server generation, dropped.
//
// A non-OK cell means a seed violated an invariant; its seed number and
// the first violation are printed for replay.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/fault/sweep.h"
#include "src/metrics/table.h"

namespace {

using fault::SeedStats;
using fault::SweepOptions;
using fault::SweepResult;
using metrics::Table;
using testbed::ServerProtocol;

// --seeds=N overrides; --trace-check records a causal trace per seed and
// runs trace::CheckTrace over it (violations fail the seed like any other
// invariant).
int g_seeds = 20;
bool g_trace_check = false;

struct Mix {
  const char* name;
  SweepOptions options;  // protocol filled in per run
};

std::vector<Mix> FaultMixes() {
  std::vector<Mix> mixes;

  {
    Mix m{"loss 10%", {}};
    m.options.plan.loss = 0.10;
    mixes.push_back(m);
  }
  {
    Mix m{"dup+reorder", {}};
    m.options.plan.duplicate = 0.10;
    m.options.plan.reorder_jitter = sim::Msec(5);
    mixes.push_back(m);
  }
  {
    Mix m{"partition", {}};
    // Cut client 1 (host 2: server=0, clients=1,2) off from the server for
    // ten seconds mid-run.
    m.options.plan.partitions.push_back(
        fault::Partition{.host_a = 0, .host_b = 2, .start = sim::Sec(30), .heal = sim::Sec(40)});
    mixes.push_back(m);
  }
  {
    Mix m{"server crash", {}};
    m.options.schedule.CrashServerAt(sim::Sec(20))
        .RebootServerAt(sim::Sec(26))
        .CrashServerInHandlerAt(sim::Sec(50))
        .RebootServerAt(sim::Sec(55));
    mixes.push_back(m);
  }
  {
    Mix m{"chaos", {}};
    m.options.plan.loss = 0.05;
    m.options.plan.duplicate = 0.05;
    m.options.plan.reorder_jitter = sim::Msec(2);
    m.options.schedule.CrashServerAt(sim::Sec(20))
        .RebootServerAt(sim::Sec(28))
        .CrashClientAt(sim::Sec(45), 1)
        .RestartClientAt(sim::Sec(55), 1)
        .CrashServerInHandlerAt(sim::Sec(65))
        .RebootServerAt(sim::Sec(70));
    mixes.push_back(m);
  }
  return mixes;
}

struct CellResult {
  bool ok = true;
  std::string detail;   // failing seed + invariant, when !ok
  double recovery_s = -1;
  double retrans = 0;
  double dup_suppressed = 0;
  double stale = 0;
  double ops_ok = 0;
};

CellResult RunCell(const Mix& mix, ServerProtocol protocol) {
  SweepOptions options = mix.options;
  options.protocol = protocol;
  options.trace_check = g_trace_check;
  SweepResult result = fault::RunFaultSweep(options, /*first_seed=*/1, g_seeds);

  CellResult cell;
  double recovery_sum = 0;
  int recovery_n = 0;
  for (const SeedStats& s : result.seeds) {
    cell.retrans += static_cast<double>(s.retransmissions) / g_seeds;
    cell.dup_suppressed += static_cast<double>(s.duplicates_suppressed) / g_seeds;
    cell.stale += static_cast<double>(s.stale_replies_dropped) / g_seeds;
    cell.ops_ok += static_cast<double>(s.ops_ok) / g_seeds;
    if (s.recovery_latency >= 0) {
      recovery_sum += static_cast<double>(s.recovery_latency) / 1e6;
      ++recovery_n;
    }
  }
  if (recovery_n > 0) {
    cell.recovery_s = recovery_sum / recovery_n;
  }
  if (const SeedStats* failure = result.first_failure(); failure != nullptr) {
    cell.ok = false;
    cell.detail = "seed " + std::to_string(failure->seed) + ": " + failure->failure;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace-check") {
      g_trace_check = true;
    } else if (arg.rfind("--seeds=", 0) == 0 && std::atoi(arg.c_str() + 8) > 0) {
      g_seeds = std::atoi(arg.c_str() + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--trace-check] [--seeds=<n>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Fault matrix: %d seeds per cell, two clients, 90 s workload\n", g_seeds);
  std::printf("(recovery = mean time from last server reboot to first completed op)\n");
  if (g_trace_check) {
    std::printf("(trace checker enabled: every seed's causal trace is validated)\n");
  }
  std::printf("\n");

  Table table({"fault mix", "protocol", "ok", "ops/seed", "recovery",
               "retrans/seed", "dup supp/seed", "stale dropped"});
  bool all_ok = true;
  for (const Mix& mix : FaultMixes()) {
    for (ServerProtocol protocol :
         {ServerProtocol::kNfs, ServerProtocol::kSnfs, ServerProtocol::kNqnfs}) {
      CellResult cell = RunCell(mix, protocol);
      all_ok = all_ok && cell.ok;
      table.AddRow({mix.name,
                    protocol == ServerProtocol::kNfs
                        ? "NFS"
                        : protocol == ServerProtocol::kSnfs ? "SNFS" : "NQNFS",
                    cell.ok ? "yes" : "NO: " + cell.detail, Table::Num(cell.ops_ok, 0),
                    cell.recovery_s >= 0 ? Table::Seconds(cell.recovery_s) : "-",
                    Table::Num(cell.retrans, 1), Table::Num(cell.dup_suppressed, 1),
                    Table::Num(cell.stale, 2)});
    }
  }
  table.Print();
  if (!all_ok) {
    std::printf("\nINVARIANT VIOLATIONS — rerun the printed seed to replay.\n");
    return 1;
  }
  return 0;
}
