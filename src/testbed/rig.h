// Rig: one benchmark configuration — a client machine, optionally a file
// server, and the mount layout the paper's tables vary:
//
//   kLocal          /data and the temp dir both on the client's local disk;
//   kNfs/kSnfs/kNqnfs
//                   /data remote; temp dir either local or remote per
//                   `remote_tmp` ("one with just the data files remotely
//                   mounted but temporary files kept locally, and the last
//                   with both data and temporary files remotely mounted").
//
// The rig always provides /local (the client's own disk) for benchmark
// inputs/outputs that are not under test.
#ifndef SRC_TESTBED_RIG_H_
#define SRC_TESTBED_RIG_H_

#include <memory>
#include <string>

#include "src/fault/schedule.h"
#include "src/testbed/machine.h"

namespace testbed {

enum class Protocol { kLocal, kNfs, kSnfs, kNqnfs };

std::string_view ProtocolName(Protocol protocol);

struct RigOptions {
  Protocol protocol = Protocol::kLocal;
  bool remote_tmp = false;  // meaningful for kNfs / kSnfs
  nfs::NfsClientParams nfs;
  snfs::SnfsClientParams snfs;
  nqnfs::NqnfsClientParams nqnfs;
  ClientMachineParams client;
  ServerMachineParams server;
  net::NetworkParams network;  // network.faults enables link-fault injection
  // Scripted crash/restart points, applied when the rig is built. Ignored
  // for machines the configuration does not have (no server under kLocal).
  fault::FaultSchedule faults;
};

class Rig {
 public:
  explicit Rig(RigOptions options);

  // Where benchmark data / temporaries should go.
  const std::string& data_root() const { return data_root_; }    // "/data"
  const std::string& tmp_dir() const { return tmp_dir_; }        // varies
  const std::string& local_root() const { return local_root_; }  // "/local"

  // The file system that holds /data (for out-of-band population) and the
  // directory handle /data is mounted on.
  fs::LocalFs& data_fs();
  proto::FileHandle data_parent() const { return data_parent_; }

  sim::Simulator& simulator() { return simulator_; }
  ClientMachine& client() { return *client_; }
  ServerMachine* server() { return server_.get(); }
  net::Network& network() { return network_; }
  const RigOptions& options() const { return options_; }

  // RPC issued by the client (all zero in the local configuration).
  const metrics::OpCounters& client_rpcs() const { return client_->peer().client_ops(); }
  // Server disk counters (the client's own disk for kLocal).
  disk::Disk& served_disk();

 private:
  RigOptions options_;
  sim::Simulator simulator_;
  net::Network network_;
  std::unique_ptr<ServerMachine> server_;
  std::unique_ptr<ClientMachine> client_;
  std::string data_root_ = "/data";
  std::string tmp_dir_;
  std::string local_root_ = "/local";
  proto::FileHandle data_parent_;
};

}  // namespace testbed

#endif  // SRC_TESTBED_RIG_H_
