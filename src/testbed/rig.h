// Rig: one benchmark configuration — a client machine, optionally a file
// server, and the mount layout the paper's tables vary:
//
//   kLocal          /data and the temp dir both on the client's local disk;
//   kNfs/kSnfs/kNqnfs
//                   /data remote; temp dir either local or remote per
//                   `remote_tmp` ("one with just the data files remotely
//                   mounted but temporary files kept locally, and the last
//                   with both data and temporary files remotely mounted").
//
// The rig always provides /local (the client's own disk) for benchmark
// inputs/outputs that are not under test.
//
// Fleet topology (src/fleet): setting RigOptions::fleet grows the rig from
// the classic one-server-one-client pair to N shard servers × M clients.
// Shard k exports its tree at "/data/s<k>" (fsid 1+k) and every client
// mounts all shards, so the vfs mount table does the client-side
// longest-prefix routing and the one logical namespace spans the fleet.
// With fleet.meta_cache (NFS only) a fleet::MetaCache is interposed on the
// network path: clients mount the shards with the cache's address as the
// server, and the cache answers getattr/lookup or forwards by fsid.
#ifndef SRC_TESTBED_RIG_H_
#define SRC_TESTBED_RIG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fault/schedule.h"
#include "src/fleet/meta_cache.h"
#include "src/fleet/shard_map.h"
#include "src/testbed/machine.h"

namespace testbed {

enum class Protocol { kLocal, kNfs, kSnfs, kNqnfs };

std::string_view ProtocolName(Protocol protocol);

// N-server × M-client fleet topology. The defaults (1×1, no cache) keep the
// rig on its classic single-server construction path, byte for byte.
struct FleetOptions {
  int servers = 1;
  int clients = 1;
  // Interpose a fleet::MetaCache between the clients and the shards.
  // NFS only: SNFS/NQNFS callbacks address the peer the server saw the
  // open/lease from, which would be the cache.
  bool meta_cache = false;
  fleet::MetaCacheParams meta;

  bool active() const { return servers > 1 || clients > 1 || meta_cache; }
};

struct RigOptions {
  Protocol protocol = Protocol::kLocal;
  bool remote_tmp = false;  // meaningful for kNfs / kSnfs
  nfs::NfsClientParams nfs;
  snfs::SnfsClientParams snfs;
  nqnfs::NqnfsClientParams nqnfs;
  ClientMachineParams client;
  ServerMachineParams server;
  net::NetworkParams network;  // network.faults enables link-fault injection
  // Scripted crash/restart points, applied when the rig is built. Ignored
  // for machines the configuration does not have (no server under kLocal).
  // Not supported in fleet mode (fleet benches script faults directly).
  fault::FaultSchedule faults;
  FleetOptions fleet;
};

class Rig {
 public:
  explicit Rig(RigOptions options);

  // Where benchmark data / temporaries should go.
  const std::string& data_root() const { return data_root_; }    // "/data"
  const std::string& tmp_dir() const { return tmp_dir_; }        // varies
  const std::string& local_root() const { return local_root_; }  // "/local"

  // The file system that holds /data (for out-of-band population) and the
  // directory handle /data is mounted on. In fleet mode: shard 0's.
  fs::LocalFs& data_fs();
  proto::FileHandle data_parent() const { return data_parent_; }

  sim::Simulator& simulator() { return simulator_; }
  ClientMachine& client(int i = 0) { return *clients_[static_cast<size_t>(i)]; }
  ServerMachine* server() { return servers_.empty() ? nullptr : servers_[0].get(); }
  net::Network& network() { return network_; }
  const RigOptions& options() const { return options_; }

  // RPC issued by client 0 (all zero in the local configuration).
  const metrics::OpCounters& client_rpcs() const { return clients_[0]->peer().client_ops(); }
  // Server disk counters (the client's own disk for kLocal).
  disk::Disk& served_disk();

  // --- fleet topology -------------------------------------------------------
  bool fleet_mode() const { return options_.fleet.active(); }
  int num_shards() const { return static_cast<int>(servers_.size()); }
  int num_clients() const { return static_cast<int>(clients_.size()); }
  ServerMachine& shard(int s) { return *servers_[static_cast<size_t>(s)]; }
  fleet::MetaCache* meta_cache() { return meta_cache_.get(); }
  const fleet::ShardMap& shard_map() const { return shard_map_; }
  fs::LocalFs& shard_fs(int s) { return servers_[static_cast<size_t>(s)]->fs(); }
  proto::FileHandle shard_data_parent(int s) const {
    return data_parents_[static_cast<size_t>(s)];
  }
  // Namespace prefix shard s exports, "/data/s<s>".
  static std::string ShardRoot(int s);

 private:
  void BuildClassic();
  void BuildFleet();

  RigOptions options_;
  sim::Simulator simulator_;
  net::Network network_;
  std::vector<std::unique_ptr<ServerMachine>> servers_;
  std::unique_ptr<fleet::MetaCache> meta_cache_;
  std::vector<std::unique_ptr<ClientMachine>> clients_;
  fleet::ShardMap shard_map_;  // fleet mode only
  std::string data_root_ = "/data";
  std::string tmp_dir_;
  std::string local_root_ = "/local";
  proto::FileHandle data_parent_;
  std::vector<proto::FileHandle> data_parents_;  // fleet mode: per shard
};

}  // namespace testbed

#endif  // SRC_TESTBED_RIG_H_
