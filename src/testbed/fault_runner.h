// Interprets a fault::FaultSchedule against real testbed machines: crash
// and reboot the server, crash and restart clients, and — via rpc::Peer's
// worker hook — crash the server from inside an RPC handler dispatch, the
// adversarial timing that exercises the ghost-reply and duplicate-cache
// paths in the recovery machinery.
#ifndef SRC_TESTBED_FAULT_RUNNER_H_
#define SRC_TESTBED_FAULT_RUNNER_H_

#include <vector>

#include "src/fault/schedule.h"
#include "src/testbed/machine.h"

namespace testbed {

// Schedules every event in `schedule` on `simulator`. Client events index
// into `clients`; server events require `server` != null. Events whose
// target does not exist are ignored. kCrashServerInHandler installs a
// worker hook on the server's peer (replacing any previous hook): the
// first handler dispatch at or after the event time triggers a crash that
// lands mid-dispatch, while the handler coroutine is in flight.
void ApplyFaultSchedule(sim::Simulator& simulator, net::Network& network,
                        ServerMachine* server, std::vector<ClientMachine*> clients,
                        const fault::FaultSchedule& schedule);

}  // namespace testbed

#endif  // SRC_TESTBED_FAULT_RUNNER_H_
