// Testbed: simulated machines wired onto a shared network.
//
// A ClientMachine bundles CPU, RPC endpoint, buffer cache, VFS, and an
// optional local disk; helpers mount NFS/SNFS/NQNFS/local file systems and
// route incoming callbacks (SNFS and NQNFS share the channel) to the right
// client by fsid. A ServerMachine bundles CPU, disk, LocalFs, and an NFS,
// SNFS, or NQNFS server.
//
// Default parameters approximate the paper's testbed: Titan-class CPUs,
// a 10 Mbit/s Ethernet, RA81-class disks, a 16 MB client cache and a
// 3.5 MB server cache, 4 KB blocks.
#ifndef SRC_TESTBED_MACHINE_H_
#define SRC_TESTBED_MACHINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/disk/disk.h"
#include "src/fs/local_fs.h"
#include "src/fs/local_mount.h"
#include "src/net/network.h"
#include "src/nfs/client.h"
#include "src/nfs/server.h"
#include "src/nqnfs/client.h"
#include "src/nqnfs/server.h"
#include "src/rpc/peer.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/snfs/client.h"
#include "src/snfs/server.h"
#include "src/vfs/vfs.h"

namespace testbed {

struct ClientMachineParams {
  rpc::PeerOptions peer;
  cache::BufferCacheParams cache;        // 16 MB default
  bool with_local_disk = true;
  disk::DiskParams disk;
  fs::LocalFsParams local_fs{.fsid = 9000, .cache_blocks = 0};
};

class ClientMachine {
 public:
  ClientMachine(sim::Simulator& simulator, net::Network& network, std::string name,
                ClientMachineParams params = {});

  ClientMachine(const ClientMachine&) = delete;
  ClientMachine& operator=(const ClientMachine&) = delete;

  // Mount helpers. Each returns the created client for metric access.
  nfs::NfsClient& MountNfs(const std::string& path, net::Address server,
                           proto::FileHandle root_fh, nfs::NfsClientParams params = {});
  snfs::SnfsClient& MountSnfs(const std::string& path, net::Address server,
                              proto::FileHandle root_fh, snfs::SnfsClientParams params = {});
  nqnfs::NqnfsClient& MountNqnfs(const std::string& path, net::Address server,
                                 proto::FileHandle root_fh, nqnfs::NqnfsClientParams params = {});
  fs::LocalMount& MountLocal(const std::string& path);

  // Bring daemons up (RPC endpoint, sync daemon, SNFS client daemons).
  void Start();
  // Crash simulation: drop off the network and lose all cached state.
  void Crash(net::Network& network);
  // Bring a crashed client back: rejoin the network and restart daemons
  // (the caches start cold; SNFS recovery re-asserts state with the server).
  void Restart(net::Network& network);

  sim::Simulator& simulator() { return simulator_; }
  sim::Cpu& cpu() { return cpu_; }
  rpc::Peer& peer() { return *peer_; }
  cache::BufferCache& buffer_cache() { return *cache_; }
  vfs::Vfs& vfs() { return *vfs_; }
  disk::Disk* local_disk() { return disk_.get(); }
  fs::LocalFs* local_fs() { return local_fs_.get(); }
  const std::string& name() const { return name_; }
  net::Address address() const { return peer_->address(); }
  bool started() const { return started_; }
  // Bumped on every Crash(). Lets a workload detect that the machine died
  // under an operation it had in flight: such an operation's results are
  // void — the issuing process died with the kernel — even though the
  // coroutine itself runs to completion against the reset client state.
  int crash_generation() const { return crash_generation_; }

 private:
  sim::Task<proto::Reply> HandleRequest(proto::Request request, net::Address from);

  sim::Simulator& simulator_;
  std::string name_;
  sim::Cpu cpu_;
  std::unique_ptr<rpc::Peer> peer_;
  std::unique_ptr<cache::BufferCache> cache_;
  std::unique_ptr<vfs::Vfs> vfs_;
  std::unique_ptr<disk::Disk> disk_;
  std::unique_ptr<fs::LocalFs> local_fs_;
  std::vector<std::unique_ptr<vfs::FileSystem>> mounts_;
  std::vector<snfs::SnfsClient*> snfs_clients_;
  std::vector<nqnfs::NqnfsClient*> nqnfs_clients_;
  bool started_ = false;
  int crash_generation_ = 0;
};

enum class ServerProtocol { kNfs, kSnfs, kNqnfs };

struct ServerMachineParams {
  rpc::PeerOptions peer;
  disk::DiskParams disk;
  fs::LocalFsParams fs{.fsid = 1, .cache_blocks = 896};  // 3.5 MB server cache
  snfs::SnfsServerParams snfs;     // used when protocol == kSnfs
  nqnfs::NqnfsServerParams nqnfs;  // used when protocol == kNqnfs
};

class ServerMachine {
 public:
  ServerMachine(sim::Simulator& simulator, net::Network& network, std::string name,
                ServerProtocol protocol, ServerMachineParams params = {});

  ServerMachine(const ServerMachine&) = delete;
  ServerMachine& operator=(const ServerMachine&) = delete;

  void Start();

  // Crash + reboot support (SNFS recovery experiments).
  void Crash(net::Network& network);
  void Reboot(net::Network& network);

  sim::Simulator& simulator() { return simulator_; }
  sim::Cpu& cpu() { return cpu_; }
  rpc::Peer& peer() { return *peer_; }
  disk::Disk& disk() { return disk_; }
  fs::LocalFs& fs() { return *fs_; }
  net::Address address() const { return peer_->address(); }
  proto::FileHandle root() const { return fs_->root(); }
  snfs::SnfsServer* snfs_server() { return snfs_server_.get(); }
  nqnfs::NqnfsServer* nqnfs_server() { return nqnfs_server_.get(); }
  nfs::NfsServer* nfs_server() { return nfs_server_.get(); }

 private:
  sim::Simulator& simulator_;
  std::string name_;
  sim::Cpu cpu_;
  disk::Disk disk_;
  std::unique_ptr<fs::LocalFs> fs_;
  std::unique_ptr<rpc::Peer> peer_;
  std::unique_ptr<nfs::NfsServer> nfs_server_;
  std::unique_ptr<snfs::SnfsServer> snfs_server_;
  std::unique_ptr<nqnfs::NqnfsServer> nqnfs_server_;
};

}  // namespace testbed

#endif  // SRC_TESTBED_MACHINE_H_
