#include "src/testbed/rig.h"

#include "src/base/log.h"
#include "src/testbed/fault_runner.h"

namespace testbed {

std::string_view ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kLocal:
      return "local";
    case Protocol::kNfs:
      return "NFS";
    case Protocol::kSnfs:
      return "SNFS";
    case Protocol::kNqnfs:
      return "NQNFS";
  }
  return "?";
}

namespace {
ServerProtocol ServerProtocolFor(Protocol protocol) {
  switch (protocol) {
    case Protocol::kNfs:
      return ServerProtocol::kNfs;
    case Protocol::kNqnfs:
      return ServerProtocol::kNqnfs;
    default:
      return ServerProtocol::kSnfs;
  }
}
}  // namespace

Rig::Rig(RigOptions options)
    : options_(options), network_(simulator_, options.network, /*seed=*/11) {
  bool remote = options_.protocol != Protocol::kLocal;
  if (remote) {
    server_ = std::make_unique<ServerMachine>(simulator_, network_, "server",
                                              ServerProtocolFor(options_.protocol),
                                              options_.server);
  }
  client_ = std::make_unique<ClientMachine>(simulator_, network_, "client", options_.client);

  // Carve out the exported directories before wiring any mounts.
  proto::FileHandle tmp_parent;
  if (remote) {
    simulator_.Spawn([](Rig& rig, proto::FileHandle* tmp_parent) -> sim::Task<void> {
      fs::LocalFs& fs = rig.server_->fs();
      auto data = co_await fs.Mkdir(fs.root(), "data");
      CHECK(data.ok());
      rig.data_parent_ = data->fh;
      auto tmp = co_await fs.Mkdir(fs.root(), "tmp");
      CHECK(tmp.ok());
      *tmp_parent = tmp->fh;
    }(*this, &tmp_parent));
    simulator_.Run();
  }

  // /local: the client's own disk, always present.
  client_->MountLocal(local_root_);

  switch (options_.protocol) {
    case Protocol::kLocal: {
      client_->MountLocal(data_root_);
      // In the local configuration /data and /local share the client disk;
      // the data tree's parent is the local fs root.
      data_parent_ = data_fs().root();
      tmp_dir_ = "/local/tmp";
      break;
    }
    case Protocol::kNfs: {
      client_->MountNfs(data_root_, server_->address(), data_parent_, options_.nfs);
      if (options_.remote_tmp) {
        client_->MountNfs("/rtmp", server_->address(), tmp_parent, options_.nfs);
        tmp_dir_ = "/rtmp";
      } else {
        tmp_dir_ = "/local/tmp";
      }
      break;
    }
    case Protocol::kSnfs: {
      client_->MountSnfs(data_root_, server_->address(), data_parent_, options_.snfs);
      if (options_.remote_tmp) {
        client_->MountSnfs("/rtmp", server_->address(), tmp_parent, options_.snfs);
        tmp_dir_ = "/rtmp";
      } else {
        tmp_dir_ = "/local/tmp";
      }
      break;
    }
    case Protocol::kNqnfs: {
      client_->MountNqnfs(data_root_, server_->address(), data_parent_, options_.nqnfs);
      if (options_.remote_tmp) {
        client_->MountNqnfs("/rtmp", server_->address(), tmp_parent, options_.nqnfs);
        tmp_dir_ = "/rtmp";
      } else {
        tmp_dir_ = "/local/tmp";
      }
      break;
    }
  }

  if (remote) {
    server_->Start();
  }
  client_->Start();

  if (!options_.faults.empty()) {
    ApplyFaultSchedule(simulator_, network_, server_.get(), {client_.get()}, options_.faults);
  }

  // Create the local temp directory if the configuration uses one.
  if (tmp_dir_ == "/local/tmp") {
    simulator_.Spawn([](Rig& rig) -> sim::Task<void> {
      auto made = co_await rig.client_->vfs().MkdirPath("/local/tmp");
      CHECK(made.ok());
    }(*this));
    simulator_.Run();
  }
}

fs::LocalFs& Rig::data_fs() {
  if (options_.protocol == Protocol::kLocal) {
    // The client's own disk hosts the data in the local configuration.
    CHECK(client_->local_fs() != nullptr);
    return *client_->local_fs();
  }
  return server_->fs();
}

disk::Disk& Rig::served_disk() {
  if (options_.protocol == Protocol::kLocal) {
    return *client_->local_disk();
  }
  return server_->disk();
}

}  // namespace testbed
