#include "src/testbed/rig.h"

#include "src/base/log.h"
#include "src/testbed/fault_runner.h"

namespace testbed {

std::string_view ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kLocal:
      return "local";
    case Protocol::kNfs:
      return "NFS";
    case Protocol::kSnfs:
      return "SNFS";
    case Protocol::kNqnfs:
      return "NQNFS";
  }
  return "?";
}

namespace {
ServerProtocol ServerProtocolFor(Protocol protocol) {
  switch (protocol) {
    case Protocol::kNfs:
      return ServerProtocol::kNfs;
    case Protocol::kNqnfs:
      return ServerProtocol::kNqnfs;
    default:
      return ServerProtocol::kSnfs;
  }
}
}  // namespace

std::string Rig::ShardRoot(int s) { return "/data/s" + std::to_string(s); }

Rig::Rig(RigOptions options)
    : options_(options), network_(simulator_, options.network, /*seed=*/11) {
  if (options_.fleet.active()) {
    BuildFleet();
  } else {
    BuildClassic();
  }
}

void Rig::BuildClassic() {
  bool remote = options_.protocol != Protocol::kLocal;
  if (remote) {
    servers_.push_back(std::make_unique<ServerMachine>(simulator_, network_, "server",
                                                       ServerProtocolFor(options_.protocol),
                                                       options_.server));
  }
  clients_.push_back(
      std::make_unique<ClientMachine>(simulator_, network_, "client", options_.client));

  // Carve out the exported directories before wiring any mounts.
  proto::FileHandle tmp_parent;
  if (remote) {
    simulator_.Spawn([](Rig& rig, proto::FileHandle* tmp_parent) -> sim::Task<void> {
      auto data = co_await rig.servers_[0]->fs().Mkdir(rig.servers_[0]->fs().root(), "data");
      CHECK(data.ok());
      rig.data_parent_ = data->fh;
      auto tmp = co_await rig.servers_[0]->fs().Mkdir(rig.servers_[0]->fs().root(), "tmp");
      CHECK(tmp.ok());
      *tmp_parent = tmp->fh;
    }(*this, &tmp_parent));
    simulator_.Run();
  }

  // /local: the client's own disk, always present.
  clients_[0]->MountLocal(local_root_);

  switch (options_.protocol) {
    case Protocol::kLocal: {
      clients_[0]->MountLocal(data_root_);
      // In the local configuration /data and /local share the client disk;
      // the data tree's parent is the local fs root.
      data_parent_ = data_fs().root();
      tmp_dir_ = "/local/tmp";
      break;
    }
    case Protocol::kNfs: {
      clients_[0]->MountNfs(data_root_, servers_[0]->address(), data_parent_, options_.nfs);
      if (options_.remote_tmp) {
        clients_[0]->MountNfs("/rtmp", servers_[0]->address(), tmp_parent, options_.nfs);
        tmp_dir_ = "/rtmp";
      } else {
        tmp_dir_ = "/local/tmp";
      }
      break;
    }
    case Protocol::kSnfs: {
      clients_[0]->MountSnfs(data_root_, servers_[0]->address(), data_parent_, options_.snfs);
      if (options_.remote_tmp) {
        clients_[0]->MountSnfs("/rtmp", servers_[0]->address(), tmp_parent, options_.snfs);
        tmp_dir_ = "/rtmp";
      } else {
        tmp_dir_ = "/local/tmp";
      }
      break;
    }
    case Protocol::kNqnfs: {
      clients_[0]->MountNqnfs(data_root_, servers_[0]->address(), data_parent_, options_.nqnfs);
      if (options_.remote_tmp) {
        clients_[0]->MountNqnfs("/rtmp", servers_[0]->address(), tmp_parent, options_.nqnfs);
        tmp_dir_ = "/rtmp";
      } else {
        tmp_dir_ = "/local/tmp";
      }
      break;
    }
  }

  if (remote) {
    servers_[0]->Start();
  }
  clients_[0]->Start();

  if (!options_.faults.empty()) {
    ApplyFaultSchedule(simulator_, network_, servers_.empty() ? nullptr : servers_[0].get(),
                       {clients_[0].get()}, options_.faults);
  }

  // Create the local temp directory if the configuration uses one.
  if (tmp_dir_ == "/local/tmp") {
    simulator_.Spawn([](Rig& rig) -> sim::Task<void> {
      auto made = co_await rig.clients_[0]->vfs().MkdirPath("/local/tmp");
      CHECK(made.ok());
    }(*this));
    simulator_.Run();
  }
}

void Rig::BuildFleet() {
  CHECK(options_.protocol != Protocol::kLocal);  // a fleet is remote by definition
  CHECK(!options_.remote_tmp);                   // temporaries stay on the client disk
  CHECK(options_.faults.empty());                // fleet benches script faults directly
  if (options_.fleet.meta_cache) {
    CHECK(options_.protocol == Protocol::kNfs);
  }
  int shards = options_.fleet.servers;
  int num_clients = options_.fleet.clients;
  CHECK_GE(shards, 1);
  CHECK_GE(num_clients, 1);

  // Hosts attach in a fixed order — shards, then the cache, then clients —
  // so host ids (and thus trace machine ids) are deterministic.
  for (int s = 0; s < shards; ++s) {
    ServerMachineParams params = options_.server;
    params.fs.fsid = static_cast<uint32_t>(1 + s);  // fsid names the shard
    servers_.push_back(std::make_unique<ServerMachine>(
        simulator_, network_, "server" + std::to_string(s),
        ServerProtocolFor(options_.protocol), params));
  }

  // Carve each shard's exported directory before wiring any mounts.
  data_parents_.resize(static_cast<size_t>(shards));
  simulator_.Spawn([](Rig& rig) -> sim::Task<void> {
    for (size_t s = 0; s < rig.servers_.size(); ++s) {
      auto data = co_await rig.servers_[s]->fs().Mkdir(rig.servers_[s]->fs().root(), "data");
      CHECK(data.ok());
      rig.data_parents_[s] = data->fh;
    }
  }(*this));
  simulator_.Run();
  data_parent_ = data_parents_[0];

  for (int s = 0; s < shards; ++s) {
    shard_map_.AddShard(fleet::Shard{s, ShardRoot(s), servers_[static_cast<size_t>(s)]->fs().fsid(),
                                     servers_[static_cast<size_t>(s)]->address(),
                                     data_parents_[static_cast<size_t>(s)]});
  }

  if (options_.fleet.meta_cache) {
    meta_cache_ = std::make_unique<fleet::MetaCache>(simulator_, network_, "metacache",
                                                     shard_map_, options_.fleet.meta);
  }

  for (int c = 0; c < num_clients; ++c) {
    clients_.push_back(std::make_unique<ClientMachine>(
        simulator_, network_, "client" + std::to_string(c), options_.client));
  }

  // Every client mounts every shard at its namespace prefix; the vfs mount
  // table's longest-prefix rule then routes by path, and the mount's root
  // handle carries the shard's fsid for handle-based routing from there on.
  tmp_dir_ = "/local/tmp";
  for (size_t c = 0; c < clients_.size(); ++c) {
    ClientMachine& client = *clients_[c];
    client.MountLocal(local_root_);
    for (int s = 0; s < shards; ++s) {
      net::Address shard_addr = servers_[static_cast<size_t>(s)]->address();
      proto::FileHandle root = data_parents_[static_cast<size_t>(s)];
      switch (options_.protocol) {
        case Protocol::kNfs: {
          // With the metadata tier the cache *is* the server as far as the
          // NFS client can tell; it routes forwards by the handles' fsid.
          net::Address target =
              meta_cache_ != nullptr ? meta_cache_->address() : shard_addr;
          client.MountNfs(ShardRoot(s), target, root, options_.nfs);
          break;
        }
        case Protocol::kSnfs:
          client.MountSnfs(ShardRoot(s), shard_addr, root, options_.snfs);
          break;
        case Protocol::kNqnfs:
          client.MountNqnfs(ShardRoot(s), shard_addr, root, options_.nqnfs);
          break;
        case Protocol::kLocal:
          break;  // unreachable, checked above
      }
    }
  }

  for (size_t s = 0; s < servers_.size(); ++s) {
    servers_[s]->Start();
  }
  if (meta_cache_ != nullptr) {
    meta_cache_->Start();
  }
  for (size_t c = 0; c < clients_.size(); ++c) {
    clients_[c]->Start();
  }

  simulator_.Spawn([](Rig& rig) -> sim::Task<void> {
    for (size_t c = 0; c < rig.clients_.size(); ++c) {
      auto made = co_await rig.clients_[c]->vfs().MkdirPath("/local/tmp");
      CHECK(made.ok());
    }
  }(*this));
  simulator_.Run();
}

fs::LocalFs& Rig::data_fs() {
  if (options_.protocol == Protocol::kLocal) {
    // The client's own disk hosts the data in the local configuration.
    CHECK(clients_[0]->local_fs() != nullptr);
    return *clients_[0]->local_fs();
  }
  return servers_[0]->fs();
}

disk::Disk& Rig::served_disk() {
  if (options_.protocol == Protocol::kLocal) {
    return *clients_[0]->local_disk();
  }
  return servers_[0]->disk();
}

}  // namespace testbed
