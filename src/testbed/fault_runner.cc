#include "src/testbed/fault_runner.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "src/base/log.h"

namespace testbed {

void ApplyFaultSchedule(sim::Simulator& simulator, net::Network& network,
                        ServerMachine* server, std::vector<ClientMachine*> clients,
                        const fault::FaultSchedule& schedule) {
  // Times at which the next handler dispatch should take the server down.
  // Shared with the worker hook, which outlives this call.
  auto handler_crashes = std::make_shared<std::deque<sim::Time>>();

  for (const fault::FaultEvent& ev : schedule.events) {
    switch (ev.kind) {
      case fault::FaultEventKind::kCrashServer:
        if (server != nullptr) {
          simulator.ScheduleAt(ev.at, [server, &network] {
            LOG_INFO("fault", "scheduled server crash");
            server->Crash(network);
          }, /*background=*/true);
        }
        break;
      case fault::FaultEventKind::kRebootServer:
        if (server != nullptr) {
          simulator.ScheduleAt(ev.at, [server, &network] {
            LOG_INFO("fault", "scheduled server reboot");
            server->Reboot(network);
          }, /*background=*/true);
        }
        break;
      case fault::FaultEventKind::kCrashClient:
        if (ev.client >= 0 && ev.client < static_cast<int>(clients.size())) {
          ClientMachine* client = clients[ev.client];
          simulator.ScheduleAt(ev.at, [client, &network] {
            LOG_INFO("fault", "scheduled crash of %s", client->name().c_str());
            client->Crash(network);
          }, /*background=*/true);
        }
        break;
      case fault::FaultEventKind::kRestartClient:
        if (ev.client >= 0 && ev.client < static_cast<int>(clients.size())) {
          ClientMachine* client = clients[ev.client];
          simulator.ScheduleAt(ev.at, [client, &network] {
            LOG_INFO("fault", "scheduled restart of %s", client->name().c_str());
            client->Restart(network);
          }, /*background=*/true);
        }
        break;
      case fault::FaultEventKind::kCrashServerInHandler:
        if (server != nullptr) {
          handler_crashes->push_back(ev.at);
        }
        break;
    }
  }

  if (!handler_crashes->empty()) {
    std::sort(handler_crashes->begin(), handler_crashes->end());
    ServerMachine* srv = server;
    net::Network* net = &network;
    srv->peer().set_worker_hook(
        [handler_crashes, srv, net, &simulator](const rpc::WorkerEvent& event) {
          if (event.phase != rpc::WorkerEvent::Phase::kBeforeHandler) {
            return;
          }
          if (handler_crashes->empty() || simulator.Now() < handler_crashes->front()) {
            return;
          }
          handler_crashes->pop_front();
          // Crash via a zero-delay event rather than synchronously: the
          // dispatching worker proceeds into its CPU charge / handler first,
          // so the crash lands while the handler coroutine is in flight.
          simulator.Schedule(0, [srv, net] {
            LOG_INFO("fault", "crashing server mid-handler");
            srv->Crash(*net);
          }, /*background=*/true);
        });
  }
}

}  // namespace testbed
