#include "src/testbed/machine.h"

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace testbed {

ClientMachine::ClientMachine(sim::Simulator& simulator, net::Network& network, std::string name,
                             ClientMachineParams params)
    : simulator_(simulator), name_(std::move(name)), cpu_(simulator) {
  peer_ = std::make_unique<rpc::Peer>(simulator, network, cpu_, name_, params.peer);
  cache_ = std::make_unique<cache::BufferCache>(simulator, params.cache);
  vfs_ = std::make_unique<vfs::Vfs>(simulator);
  if (params.with_local_disk) {
    disk_ = std::make_unique<disk::Disk>(simulator, params.disk);
    local_fs_ = std::make_unique<fs::LocalFs>(simulator, *disk_, params.local_fs);
  }
  peer_->set_handler([this](const proto::Request& request, net::Address from) {
    return HandleRequest(request, from);
  });
}

sim::Task<proto::Reply> ClientMachine::HandleRequest(proto::Request request,
                                                     net::Address from) {
  // Client machines only serve the callback RPC (§4.2.2) — SNFS callbacks
  // and NQNFS vacates arrive over the same channel.
  if (const auto* cb = std::get_if<proto::CallbackReq>(&request)) {
    for (snfs::SnfsClient* client : snfs_clients_) {
      if (client->Owns(cb->fh)) {
        co_return co_await client->HandleCallback(*cb);
      }
    }
    for (nqnfs::NqnfsClient* client : nqnfs_clients_) {
      if (client->Owns(cb->fh)) {
        co_return co_await client->HandleCallback(*cb);
      }
    }
    // No mount tracks the file (e.g. reclaimed after we dropped the node);
    // nothing to write back or invalidate.
    co_return proto::OkReply(proto::CallbackRep{});
  }
  co_return proto::ErrorReply(base::ErrNotSupported());
}

nfs::NfsClient& ClientMachine::MountNfs(const std::string& path, net::Address server,
                                        proto::FileHandle root_fh,
                                        nfs::NfsClientParams params) {
  auto client =
      std::make_unique<nfs::NfsClient>(simulator_, *peer_, server, root_fh, *cache_, params);
  nfs::NfsClient& ref = *client;
  vfs_->Mount(path, client.get());
  mounts_.push_back(std::move(client));
  return ref;
}

snfs::SnfsClient& ClientMachine::MountSnfs(const std::string& path, net::Address server,
                                           proto::FileHandle root_fh,
                                           snfs::SnfsClientParams params) {
  auto client =
      std::make_unique<snfs::SnfsClient>(simulator_, *peer_, server, root_fh, *cache_, params);
  snfs::SnfsClient& ref = *client;
  snfs_clients_.push_back(client.get());
  vfs_->Mount(path, client.get());
  mounts_.push_back(std::move(client));
  if (started_) {
    ref.Start();
  }
  return ref;
}

nqnfs::NqnfsClient& ClientMachine::MountNqnfs(const std::string& path, net::Address server,
                                              proto::FileHandle root_fh,
                                              nqnfs::NqnfsClientParams params) {
  auto client =
      std::make_unique<nqnfs::NqnfsClient>(simulator_, *peer_, server, root_fh, *cache_, params);
  nqnfs::NqnfsClient& ref = *client;
  nqnfs_clients_.push_back(client.get());
  vfs_->Mount(path, client.get());
  mounts_.push_back(std::move(client));
  if (started_) {
    ref.Start();
  }
  return ref;
}

fs::LocalMount& ClientMachine::MountLocal(const std::string& path) {
  CHECK(local_fs_ != nullptr);
  auto mount = std::make_unique<fs::LocalMount>(simulator_, *local_fs_, *cache_, &cpu_);
  fs::LocalMount& ref = *mount;
  vfs_->Mount(path, mount.get());
  mounts_.push_back(std::move(mount));
  return ref;
}

void ClientMachine::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  peer_->Start();
  cache_->Start();
  for (snfs::SnfsClient* client : snfs_clients_) {
    client->Start();
  }
  for (nqnfs::NqnfsClient* client : nqnfs_clients_) {
    client->Start();
  }
}

void ClientMachine::Crash(net::Network& network) {
  TRACE_INSTANT("machine.crash", address().host, "kind=client");
  network.SetHostUp(address(), false);
  peer_->Shutdown();
  for (snfs::SnfsClient* client : snfs_clients_) {
    client->Stop();
    client->Reset();
  }
  for (nqnfs::NqnfsClient* client : nqnfs_clients_) {
    client->Stop();
    client->Reset();
  }
  cache_->Stop();
  cache_->DropAll();  // cached blocks, clean and dirty, die with the kernel
  started_ = false;
  ++crash_generation_;
}

void ClientMachine::Restart(net::Network& network) {
  TRACE_INSTANT("machine.restart", address().host, "kind=client");
  network.SetHostUp(address(), true);
  Start();
}

ServerMachine::ServerMachine(sim::Simulator& simulator, net::Network& network, std::string name,
                             ServerProtocol protocol, ServerMachineParams params)
    : simulator_(simulator), name_(std::move(name)), cpu_(simulator), disk_(simulator, params.disk) {
  fs_ = std::make_unique<fs::LocalFs>(simulator, disk_, params.fs);
  peer_ = std::make_unique<rpc::Peer>(simulator, network, cpu_, name_, params.peer);
  if (protocol == ServerProtocol::kNfs) {
    nfs_server_ = std::make_unique<nfs::NfsServer>(*fs_, *peer_);
  } else if (protocol == ServerProtocol::kSnfs) {
    snfs_server_ = std::make_unique<snfs::SnfsServer>(simulator, *fs_, *peer_, params.snfs);
  } else {
    nqnfs_server_ = std::make_unique<nqnfs::NqnfsServer>(simulator, *fs_, *peer_, params.nqnfs);
  }
}

void ServerMachine::Start() { peer_->Start(); }

void ServerMachine::Crash(net::Network& network) {
  TRACE_INSTANT("machine.crash", address().host, "kind=server");
  network.SetHostUp(address(), false);
  peer_->Shutdown();
  if (snfs_server_ != nullptr) {
    snfs_server_->Crash();
  }
  if (nqnfs_server_ != nullptr) {
    nqnfs_server_->Crash();
  }
}

void ServerMachine::Reboot(net::Network& network) {
  TRACE_INSTANT("machine.restart", address().host, "kind=server");
  network.SetHostUp(address(), true);
  if (snfs_server_ != nullptr) {
    snfs_server_->Restart();
  }
  if (nqnfs_server_ != nullptr) {
    nqnfs_server_->Restart();
  }
  peer_->Start();
}

}  // namespace testbed
