#include "src/nqnfs/server.h"

#include <string>
#include <utility>

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace nqnfs {

NqnfsServer::NqnfsServer(sim::Simulator& simulator, fs::LocalFs& fs, rpc::Peer& peer,
                         NqnfsServerParams params)
    : simulator_(simulator),
      fs_(fs),
      peer_(peer),
      params_(params),
      vacate_budget_(simulator, params.vacate_budget) {
  nfs_ = std::make_unique<nfs::NfsServer>(fs, peer);
  // NfsServer installed itself; take over the dispatch.
  peer_.set_handler([this](const proto::Request& request, net::Address from) {
    return Handle(request, from);
  });
  simulator_.Spawn(LeaseDaemon());
}

void NqnfsServer::Crash() {
  leases_.Clear();
  file_locks_.clear();
  vacates_in_progress_.clear();
  inconsistent_files_.clear();
  leaseless_bursts_.clear();
}

void NqnfsServer::Restart() {
  // Every lease a previous incarnation could have granted lapses within one
  // lease term of now; until then, grant nothing and serve data uncached.
  no_grant_until_ = simulator_.Now() + params_.lease_term;
}

sim::Mutex& NqnfsServer::FileLock(const proto::FileHandle& fh) {
  auto it = file_locks_.find(fh.fileid);
  if (it == file_locks_.end()) {
    it = file_locks_.emplace(fh.fileid, std::make_unique<sim::Mutex>(simulator_)).first;
  }
  return *it->second;
}

sim::Task<void> NqnfsServer::LeaseDaemon() {
  while (true) {
    co_await sim::Sleep(simulator_, params_.lease_scan, /*background=*/true);
    for (const auto& [key, lease] : leases_.Expired(simulator_.Now())) {
      leases_.Erase(key.fileid, key.host);
      ++lease_expiries_;
      // No callback and no trace event: expiry is by the clock alone, and
      // the trace checker retires write-lease grants the same way.
    }
  }
}

sim::Task<void> NqnfsServer::VacateOne(proto::FileHandle fh, snfs::LeaseKey key,
                                       snfs::Lease lease) {
  ++vacates_issued_;
  co_await vacate_budget_.Acquire();
  uint64_t in_progress_key = (key.fileid << 16) ^ static_cast<uint64_t>(key.host);
  vacates_in_progress_.insert(in_progress_key);
  trace::Span span;
  if (trace::Active() != nullptr) {
    span.Begin("nqnfs.vacate", peer_.address().host,
               "file=" + std::to_string(key.fileid) + " host=" + std::to_string(key.host) +
                   " wb=" + (lease.write ? "1" : "0"));
  }
  proto::CallbackReq req;
  req.fh = fh;
  req.writeback = lease.write;
  req.invalidate = true;
  auto reply = co_await peer_.Call(net::Address{key.host}, req, params_.vacate_call);
  bool delivered = reply.ok() && reply->status.ok();
  span.End(std::string("ok=") + (delivered ? "1" : "0"));
  vacate_budget_.Release();
  if (!delivered) {
    ++vacates_failed_;
    LOG_INFO("nqnfs", "vacate to host %d failed (%s); waiting out the lease on file %llu",
             key.host, reply.ok() ? "error reply" : "timeout",
             static_cast<unsigned long long>(key.fileid));
    // The holder is unreachable but its lease is still a promise; the only
    // correct move is to wait for it to lapse. A dead write-lease holder
    // takes its un-flushed dirty blocks with it. The in-progress marker
    // stays up for the whole wait so a holder that comes back mid-wait
    // cannot extend the lease through the piggyback path; the loop re-finds
    // the lease after every sleep so an extension that landed before the
    // marker went up is waited out too — a live lease is never erased.
    while (true) {
      snfs::Lease* current = leases_.Find(key.fileid, key.host);
      if (current == nullptr || current->expires <= simulator_.Now()) {
        break;
      }
      co_await sim::Sleep(simulator_, current->expires - simulator_.Now());
    }
    if (lease.write) {
      inconsistent_files_.insert(key.fileid);
    }
  }
  vacates_in_progress_.erase(in_progress_key);
  leases_.Erase(key.fileid, key.host);
  if (delivered && lease.write) {
    TRACE_INSTANT("nqnfs.write_lease_end", peer_.address().host,
                  "file=" + std::to_string(key.fileid) + " host=" + std::to_string(key.host) +
                      " reason=vacate");
  }
}

sim::Task<void> NqnfsServer::VacateConflicting(proto::FileHandle fh, int host, bool write) {
  // Re-scan from scratch after every awaited vacate: the table can change
  // arbitrarily while we wait (expiry scans, piggybacked extensions).
  while (true) {
    bool found = false;
    snfs::LeaseKey victim_key;
    snfs::Lease victim;
    sim::Time now = simulator_.Now();
    for (const auto& [key, lease] : leases_.HoldersOf(fh.fileid)) {
      if (key.host == host || (!write && !lease.write)) {
        continue;  // read leases coexist; the requester's own lease never conflicts
      }
      if (lease.expires <= now) {
        // Already lapsed; no callback owed. Count the expiry exactly as the
        // daemon's scan would have, so retiring it here does not undercount.
        leases_.Erase(key.fileid, key.host);
        ++lease_expiries_;
        continue;
      }
      victim_key = key;
      victim = lease;
      found = true;
      break;
    }
    if (!found) {
      co_return;
    }
    co_await VacateOne(fh, victim_key, victim);
  }
}

// Ownership of the file lock transfers out through the return value on the
// leaseless path; Handle releases it after the delegated write lands.
// lint: lock-escapes
sim::Task<sim::Mutex*> NqnfsServer::PrepareForeignWrite(proto::FileHandle fh, int host) {
  if (VacateInProgress(fh.fileid, host)) {
    co_return nullptr;  // a write-back we requested; covered by the lease being vacated
  }
  snfs::Lease* mine = leases_.Find(fh.fileid, host);
  if (mine != nullptr && mine->write && mine->expires > simulator_.Now()) {
    co_return nullptr;  // lease-covered flush: the grant already bumped the version
  }
  // Leaseless write-through (an uncached client, or a post-expiry flush):
  // serialize against grants, force every cached copy out, and bump the
  // version so no stale cache can revalidate against the overwritten data.
  // One bump per burst suffices — every later write in the same run from
  // the same host leaves other caches just as stale as the first did —
  // and bumping per RPC would only push the burst writer's own coherent
  // cache further from the prev_version it revalidates with.
  sim::Mutex& lock = FileLock(fh);
  co_await lock.Acquire();
  co_await VacateConflicting(fh, host, /*write=*/true);
  auto burst = leaseless_bursts_.find(fh.fileid);
  if (burst == leaseless_bursts_.end() || burst->second.host != host) {
    auto stable = fs_.Version(fh);
    auto bumped = fs_.BumpVersion(fh);
    if (stable.ok() && bumped.ok()) {
      leaseless_bursts_[fh.fileid] = LeaselessBurst{host, *stable};
    }  // ErrStale (racing remove): the write itself fails the same way
  }
  inconsistent_files_.erase(fh.fileid);
  // The lock stays held until the delegated write has landed: releasing it
  // here would open a window where a foreign GetLease grants a read lease
  // whose holder caches the pre-write data at the post-bump version.
  co_return &lock;
}

sim::Task<proto::Reply> NqnfsServer::HandleGetLease(proto::GetLeaseReq req, net::Address from) {
  auto attr = fs_.GetAttr(req.fh);
  if (!attr.ok()) {
    co_return proto::ErrorReply(attr.status());
  }
  if (in_quiet_window()) {
    ++grants_denied_;
    proto::GetLeaseRep rep;
    rep.granted = false;
    rep.retry_after = no_grant_until_;
    rep.attr = *attr;
    co_return proto::OkReply(rep);
  }
  sim::Mutex& lock = FileLock(req.fh);
  co_await lock.Acquire();
  co_await VacateConflicting(req.fh, from.host, req.write_mode);

  snfs::Lease* mine = leases_.Find(req.fh.fileid, from.host);
  if (mine != nullptr && mine->expires <= simulator_.Now()) {
    // Our previous grant to this host lapsed while we vacated; start fresh
    // (counting the expiry, exactly as the daemon's scan would have).
    leases_.Erase(req.fh.fileid, from.host);
    ++lease_expiries_;
    mine = nullptr;
  }
  const bool already_writing = mine != nullptr && mine->write;
  auto stable = fs_.Version(req.fh);
  if (!stable.ok()) {
    lock.Release();
    co_return proto::ErrorReply(stable.status());
  }
  uint64_t version = *stable;
  uint64_t prev_version = *stable;
  if (req.write_mode && !already_writing) {
    // Pessimistic bump, exactly as an SNFS write open (§3.1): the grantee
    // may write, and readers revalidating later must notice.
    auto bumped = fs_.BumpVersion(req.fh);
    if (!bumped.ok()) {
      lock.Release();
      co_return proto::ErrorReply(bumped.status());
    }
    version = *bumped;
  }
  // A leaseless burst bumped the version exactly once; the burst writer's
  // cache is coherent with the data it wrote through, so let it revalidate
  // against the pre-bump version. The grant retags its cache at `version`,
  // after which the record is spent. A write grant to anyone else lets the
  // data move on, making the burst writer's copy genuinely stale.
  if (auto burst = leaseless_bursts_.find(req.fh.fileid); burst != leaseless_bursts_.end()) {
    if (burst->second.host == from.host) {
      prev_version = burst->second.prev_version;
      leaseless_bursts_.erase(burst);
    } else if (req.write_mode) {
      leaseless_bursts_.erase(burst);
    }
  }
  sim::Time expires = simulator_.Now() + params_.lease_term;
  bool write_mode = req.write_mode || already_writing;
  leases_.Put(req.fh.fileid, from.host, snfs::Lease{req.fh, write_mode, expires});
  ++leases_granted_;
  bool inconsistent = inconsistent_files_.erase(req.fh.fileid) > 0;
  // Vacated write-backs may have changed size and mtime.
  attr = fs_.GetAttr(req.fh);
  lock.Release();
  if (!attr.ok()) {
    co_return proto::ErrorReply(attr.status());
  }
  if (write_mode) {
    TRACE_INSTANT("nqnfs.write_lease_grant", peer_.address().host,
                  "file=" + std::to_string(req.fh.fileid) + " host=" + std::to_string(from.host) +
                      " expires=" + std::to_string(expires));
  }
  proto::GetLeaseRep rep;
  rep.granted = true;
  rep.version = version;
  rep.prev_version = prev_version;
  rep.expires = expires;
  rep.attr = *attr;
  rep.possibly_inconsistent = inconsistent;
  co_return proto::OkReply(rep);
}

sim::Task<proto::Reply> NqnfsServer::Handle(proto::Request request, net::Address from) {
  uint64_t data_target = 0;       // file whose reply may carry a lease extension
  sim::Mutex* write_lock = nullptr;  // held across a leaseless write-through
  switch (proto::KindOf(request)) {
    case proto::OpKind::kGetLease:
      co_return co_await HandleGetLease(std::get<proto::GetLeaseReq>(request), from);
    case proto::OpKind::kRead:
      data_target = std::get<proto::ReadReq>(request).fh.fileid;
      break;
    case proto::OpKind::kGetAttr:
      data_target = std::get<proto::GetAttrReq>(request).fh.fileid;
      break;
    case proto::OpKind::kWrite: {
      const auto& req = std::get<proto::WriteReq>(request);
      data_target = req.fh.fileid;
      write_lock = co_await PrepareForeignWrite(req.fh, from.host);
      break;
    }
    case proto::OpKind::kSetAttr: {
      const auto& req = std::get<proto::SetAttrReq>(request);
      data_target = req.fh.fileid;
      write_lock = co_await PrepareForeignWrite(req.fh, from.host);
      break;
    }
    case proto::OpKind::kRemove: {
      // Drop lease state for the victim so holders stop receiving vacates
      // for a dead handle; their client-side leases lapse on their own.
      const auto& req = std::get<proto::RemoveReq>(request);
      auto looked = co_await fs_.Lookup(req.dir, req.name);
      if (looked.ok()) {
        for (const auto& [key, lease] : leases_.HoldersOf(looked->fh.fileid)) {
          leases_.Erase(key.fileid, key.host);
        }
        inconsistent_files_.erase(looked->fh.fileid);
      }
      break;
    }
    default:
      break;  // namespace traffic and everything else passes straight through
  }

  proto::Reply reply = co_await nfs_->Handle(std::move(request), from);
  if (write_lock != nullptr) {
    write_lock->Release();
  }

  // Piggyback a lease extension on successful data replies to a live
  // holder ("the lease is extended as a side effect of other RPCs"), so
  // actively-used files never pay a lease-renewal round trip. Never extend
  // a lease we are in the middle of vacating.
  if (reply.status.ok() && data_target != 0 && !VacateInProgress(data_target, from.host)) {
    snfs::Lease* lease = leases_.Find(data_target, from.host);
    if (lease != nullptr && lease->expires > simulator_.Now()) {
      lease->expires = simulator_.Now() + params_.lease_term;
      reply.lease_file = data_target;
      reply.lease_expires = lease->expires;
      if (lease->write) {
        TRACE_INSTANT("nqnfs.write_lease_extend", peer_.address().host,
                      "file=" + std::to_string(data_target) +
                          " host=" + std::to_string(from.host) +
                          " expires=" + std::to_string(lease->expires));
      }
    }
  }
  co_return reply;
}

}  // namespace nqnfs
