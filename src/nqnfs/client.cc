#include "src/nqnfs/client.h"

#include <algorithm>
#include <string>

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace nqnfs {

using cache::kBlockSize;

NqnfsClient::NqnfsClient(sim::Simulator& simulator, rpc::Peer& peer, net::Address server,
                         proto::FileHandle root_fh, cache::BufferCache& cache,
                         NqnfsClientParams params)
    : simulator_(simulator),
      peer_(peer),
      server_(server),
      root_fh_(root_fh),
      cache_(cache),
      params_(params) {
  cache::Backing backing;
  backing.fetch = [this](uint64_t fileid, uint64_t block)
      -> sim::Task<base::Result<std::vector<uint8_t>>> {
    auto it = nodes_.find(fileid);
    if (it == nodes_.end()) {
      co_return base::ErrStale();
    }
    proto::ReadReq req;
    req.fh = it->second->fh;
    req.offset = block * kBlockSize;
    req.count = kBlockSize;
    auto rep = rpc::Expect<proto::ReadRep>(co_await Call(proto::Request(req)));
    if (!rep.ok()) {
      co_return rep.status();
    }
    co_return std::move(rep->data);
  };
  backing.store = [this](uint64_t fileid, uint64_t block,
                         std::vector<uint8_t> data) -> sim::Task<base::Result<void>> {
    auto it = nodes_.find(fileid);
    if (it == nodes_.end()) {
      co_return base::ErrStale();
    }
    proto::WriteReq req;
    req.fh = it->second->fh;
    req.offset = block * kBlockSize;
    req.data = std::move(data);
    auto rep = rpc::Expect<proto::AttrRep>(co_await Call(proto::Request(req)));
    if (!rep.ok()) {
      co_return rep.status();
    }
    co_return base::OkStatus();
  };
  // Attribute this mount's dirty-state transitions to the NQNFS protocol on
  // this host, so the trace checker can enforce single-writer caching.
  backing.trace_name = "nqnfs";
  backing.trace_machine = peer_.address().host;
  mount_id_ = cache_.RegisterMount(std::move(backing));
}

void NqnfsClient::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++daemon_generation_;
  simulator_.Spawn(ExpiryDaemon(daemon_generation_));
}

void NqnfsClient::Stop() { running_ = false; }

void NqnfsClient::Reset() {
  // Workload code may hold GnodeRefs across a crash; unlike SNFS (where the
  // server holds the authority), an NQNFS node's lease_expires IS the
  // client's licence to serve cached data, so it must not survive a reboot.
  for (auto& [fileid, node] : nodes_) {  // lint: ordered-ok (independent field resets)
    node->lease_expires = 0;
    node->lease_write = false;
    node->have_cached_data = false;
    node->retry_grant_after = 0;
  }
  nodes_.clear();
}

NqnfsClient::NodeRef NqnfsClient::AsNode(const vfs::GnodeRef& node) {
  return std::static_pointer_cast<NqnfsNode>(node);
}

NqnfsClient::NodeRef NqnfsClient::Intern(const proto::FileHandle& fh, const proto::Attr& attr) {
  auto it = nodes_.find(fh.fileid);
  if (it != nodes_.end() && it->second->fh == fh) {
    // Attributes for files we hold dirty data on are locally authoritative.
    if (!cache_.HasDirty(mount_id_, fh.fileid)) {
      proto::Attr merged = attr;
      merged.size = std::max(merged.size, it->second->attr.size);
      it->second->attr = merged;
    }
    return it->second;
  }
  auto node = std::make_shared<NqnfsNode>();
  node->fh = fh;
  node->attr = attr;
  nodes_[fh.fileid] = node;
  return node;
}

// --- lease machinery ---------------------------------------------------------

sim::Task<base::Result<proto::Reply>> NqnfsClient::Call(proto::Request request) {
  auto reply = co_await peer_.Call(server_, std::move(request));
  if (reply.ok()) {
    ApplyExtension(*reply);
  }
  co_return reply;
}

void NqnfsClient::ApplyExtension(const proto::Reply& reply) {
  if (reply.lease_file == 0) {
    return;
  }
  auto it = nodes_.find(reply.lease_file);
  if (it == nodes_.end()) {
    return;
  }
  NodeRef node = it->second;
  // Only a still-live lease can be extended: a vacate or local expiry that
  // raced this reply wins.
  if (node->lease_expires != 0 && reply.lease_expires > node->lease_expires) {
    node->lease_expires = reply.lease_expires;
    TRACE_INSTANT("nqnfs.lease_extend", peer_.address().host,
                  "file=" + std::to_string(reply.lease_file) +
                      " expires=" + std::to_string(reply.lease_expires));
  }
}

void NqnfsClient::DropLease(NodeRef node, const char* reason) {
  if (node->lease_expires == 0) {
    return;
  }
  node->lease_expires = 0;
  node->lease_write = false;
  TRACE_INSTANT("nqnfs.lease_end", peer_.address().host,
                "file=" + std::to_string(node->fh.fileid) + " reason=" + reason);
}

sim::Task<void> NqnfsClient::EnsureLease(NodeRef node, bool write) {
  sim::Time now = simulator_.Now();
  if (node->lease_expires > now && (node->lease_write || !write)) {
    co_return;  // live lease already covers this access mode
  }
  if (now < node->retry_grant_after) {
    co_return;  // recently denied; run uncached instead of hammering the server
  }
  if (cache_.HasDirty(mount_id_, node->fh.fileid)) {
    // The lease lapsed with dirty blocks the expiry daemon has not pushed
    // out yet. Flush first — as leaseless write-throughs the server bumps
    // the version for, so no other cache can miss them — before asking for
    // a fresh grant.
    (void)co_await cache_.FlushFile(mount_id_, node->fh.fileid);
  }

  proto::GetLeaseReq req;
  req.fh = node->fh;
  req.write_mode = write;
  auto rep = rpc::Expect<proto::GetLeaseRep>(co_await Call(proto::Request(req)));
  now = simulator_.Now();
  if (!rep.ok()) {
    node->retry_grant_after = now + params_.denied_retry;
    co_return;
  }
  if (!rep->granted) {
    // Server quiet window: run uncached until it closes. The denial also
    // proves the server rebooted and lost its lease table — it can no
    // longer vacate us — so any lease a previous incarnation granted on
    // this file is unenforceable and must not license cached service.
    ++grants_denied_seen_;
    DropLease(node, "denied");
    node->retry_grant_after = std::max(rep->retry_after, now + params_.denied_retry);
    if (node->have_cached_data) {
      cache_.InvalidateFile(mount_id_, node->fh.fileid);
      node->have_cached_data = false;
      TRACE_INSTANT("nqnfs.invalidated", peer_.address().host,
                    "file=" + std::to_string(node->fh.fileid) + " reason=denied");
    }
    if (!cache_.HasDirty(mount_id_, node->fh.fileid)) {
      node->attr = rep->attr;
    }
    co_return;
  }

  // Cache validation, exactly as an SNFS open (§3.1): cached blocks are
  // good if they match the latest version or the previous one. The server
  // reports a distinct prev_version only when a cache at that version on
  // this host is known coherent: a write grant's own pessimistic bump, or
  // a version bump caused by this host's leaseless write-through burst.
  bool cache_valid = node->have_cached_data &&
                     (node->cached_version == rep->version ||
                      node->cached_version == rep->prev_version);
  if (node->have_cached_data && !cache_valid) {
    cache_.InvalidateFile(mount_id_, node->fh.fileid);
    node->have_cached_data = false;
    TRACE_INSTANT("nqnfs.invalidated", peer_.address().host,
                  "file=" + std::to_string(node->fh.fileid) + " reason=version");
  }
  node->cached_version = rep->version;
  node->lease_write = write;
  node->lease_expires = rep->expires;
  node->retry_grant_after = 0;
  node->possibly_inconsistent = rep->possibly_inconsistent;
  if (rep->possibly_inconsistent) {
    ++inconsistent_grants_;
  }
  // The grant carries attributes, replacing NFS's open-time getattr.
  if (!cache_.HasDirty(mount_id_, node->fh.fileid)) {
    node->attr = rep->attr;
  }
  ++leases_acquired_;
  TRACE_INSTANT("nqnfs.lease_grant", peer_.address().host,
                "file=" + std::to_string(node->fh.fileid) +
                    " version=" + std::to_string(rep->version) +
                    " write=" + (write ? "1" : "0") +
                    " expires=" + std::to_string(rep->expires));
}

sim::Task<void> NqnfsClient::ExpiryDaemon(uint64_t generation) {
  while (running_ && generation == daemon_generation_) {
    co_await sim::Sleep(simulator_, params_.lease_scan, /*background=*/true);
    if (!running_ || generation != daemon_generation_) {
      break;
    }
    // Flushes are awaited RPCs, so walk in fileid order to keep the event
    // queue independent of hash order.
    std::vector<uint64_t> fileids;
    fileids.reserve(nodes_.size());
    for (const auto& [fileid, node] : nodes_) {  // lint: ordered-ok (sorted below)
      fileids.push_back(fileid);
    }
    std::sort(fileids.begin(), fileids.end());
    for (uint64_t fileid : fileids) {
      auto it = nodes_.find(fileid);
      if (it == nodes_.end()) {
        continue;  // removed while an earlier flush was in flight
      }
      NodeRef node = it->second;  // hold a ref: awaits below may mutate nodes_
      if (node->lease_expires == 0) {
        continue;
      }
      sim::Time now = simulator_.Now();
      if (node->lease_expires <= now) {
        // Lapsed. Stop trusting the cache first, then push any dirty blocks
        // out as plain write-throughs. Clean blocks stay for version
        // revalidation at the next grant.
        bool was_write = node->lease_write;
        DropLease(node, "expire");
        ++lease_expiries_;
        if (was_write && cache_.HasDirty(mount_id_, fileid)) {
          (void)co_await cache_.FlushFile(mount_id_, fileid);
        }
      } else if (node->lease_write && node->lease_expires - now <= params_.flush_margin &&
                 cache_.HasDirty(mount_id_, fileid)) {
        // Nearing expiry with dirty data: push blocks out one at a time
        // until a write reply's piggybacked extension renews the lease
        // (usually the first one does) or the file runs clean. Flushing the
        // whole file here would write through delayed data that a remove or
        // the sync daemon may still handle for free — a large regression on
        // temp-file workloads.
        while (running_ && cache_.HasDirty(mount_id_, fileid)) {
          now = simulator_.Now();
          if (node->lease_expires <= now || node->lease_expires - now > params_.flush_margin) {
            break;  // lapsed (next scan write-through-flushes) or extended
          }
          (void)co_await cache_.FlushFile(mount_id_, fileid, /*max_blocks=*/1);
        }
      }
    }
  }
}

// --- callbacks ----------------------------------------------------------------

sim::Task<proto::Reply> NqnfsClient::HandleCallback(proto::CallbackReq req) {
  ++callbacks_served_;
  trace::Span serve_span;
  if (trace::Active() != nullptr) {
    serve_span.Begin("nqnfs.callback_serve", peer_.address().host,
                     "file=" + std::to_string(req.fh.fileid) +
                         " wb=" + (req.writeback ? "1" : "0") +
                         " inv=" + (req.invalidate ? "1" : "0"));
  }
  auto it = nodes_.find(req.fh.fileid);
  if (it == nodes_.end() || !(it->second->fh == req.fh)) {
    co_return proto::OkReply(proto::CallbackRep{});
  }
  NodeRef node = it->second;
  if (req.writeback) {
    // "The client should not return from the callback RPC until all the
    // dirty blocks have been written back to the server."
    (void)co_await cache_.FlushFile(mount_id_, node->fh.fileid);
  }
  if (req.invalidate) {
    cache_.InvalidateFile(mount_id_, node->fh.fileid);
    node->have_cached_data = false;
    DropLease(node, "vacate");
    TRACE_INSTANT("nqnfs.invalidated", peer_.address().host,
                  "file=" + std::to_string(node->fh.fileid) + " reason=callback");
  }
  co_return proto::OkReply(proto::CallbackRep{});
}

// --- namespace & data ----------------------------------------------------------

sim::Task<base::Result<vfs::GnodeRef>> NqnfsClient::Root() {
  auto it = nodes_.find(root_fh_.fileid);
  if (it != nodes_.end()) {
    co_return vfs::GnodeRef(it->second);
  }
  proto::GetAttrReq req;
  req.fh = root_fh_;
  auto rep = rpc::Expect<proto::AttrRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(root_fh_, rep->attr));
}

sim::Task<base::Result<vfs::GnodeRef>> NqnfsClient::Lookup(vfs::GnodeRef dir,
                                                           std::string name) {
  proto::LookupReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::LookupRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(rep->fh, rep->attr));
}

sim::Task<base::Result<vfs::GnodeRef>> NqnfsClient::Create(vfs::GnodeRef dir,
                                                           std::string name,
                                                           bool exclusive) {
  proto::CreateReq req;
  req.dir = dir->fh;
  req.name = name;
  req.exclusive = exclusive;
  auto rep = rpc::Expect<proto::CreateRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(rep->fh, rep->attr));
}

sim::Task<base::Result<vfs::GnodeRef>> NqnfsClient::Mkdir(vfs::GnodeRef dir,
                                                          std::string name) {
  proto::MkdirReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::CreateRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(rep->fh, rep->attr));
}

sim::Task<base::Result<void>> NqnfsClient::Open(vfs::GnodeRef gnode, bool write) {
  NodeRef node = AsNode(gnode);
  co_await EnsureLease(node, write);
  if (write) {
    ++node->open_writes;
  } else {
    ++node->open_reads;
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NqnfsClient::Close(vfs::GnodeRef gnode, bool write) {
  NodeRef node = AsNode(gnode);
  if (write) {
    CHECK_GT(node->open_writes, 0u);
    --node->open_writes;
  } else {
    CHECK_GT(node->open_reads, 0u);
    --node->open_reads;
  }
  // No RPC and no flush: the lease outlives the open, and delayed writes
  // proceed asynchronously across closes exactly as in Sprite.
  co_return base::OkStatus();
}

sim::Task<base::Result<std::vector<uint8_t>>> NqnfsClient::Read(vfs::GnodeRef gnode,
                                                                uint64_t offset, uint32_t count) {
  NodeRef node = AsNode(gnode);
  co_await EnsureLease(node, /*write=*/false);
  if (node->lease_expires <= simulator_.Now()) {
    // No lease: every read goes through to the server, read-ahead disabled.
    proto::ReadReq req;
    req.fh = node->fh;
    req.offset = offset;
    req.count = count;
    auto rep = rpc::Expect<proto::ReadRep>(co_await Call(proto::Request(req)));
    if (!rep.ok()) {
      co_return rep.status();
    }
    if (!cache_.HasDirty(mount_id_, node->fh.fileid)) {
      node->attr = rep->attr;
    }
    co_return std::move(rep->data);
  }
  // Observation point for the lease-expired-read invariant: a cached read
  // may only be served inside a live lease, at the version it granted.
  TRACE_INSTANT("nqnfs.read_observe", peer_.address().host,
                "file=" + std::to_string(node->fh.fileid) +
                    " version=" + std::to_string(node->cached_version));
  auto data = co_await cache_.Read(mount_id_, node->fh.fileid, offset, count, node->attr.size,
                                   /*read_ahead=*/true);
  if (data.ok() && !data->empty()) {
    node->have_cached_data = true;
  }
  co_return data;
}

sim::Task<base::Result<void>> NqnfsClient::Write(vfs::GnodeRef gnode, uint64_t offset,
                                                 std::vector<uint8_t> data) {
  NodeRef node = AsNode(gnode);
  co_await EnsureLease(node, /*write=*/true);
  if (node->lease_expires <= simulator_.Now() || !node->lease_write) {
    // No write lease: revert to synchronous write-through. Our own cached
    // blocks would miss this write, so stop trusting them. This drops cache
    // residency, not the lease — a live read lease (e.g. after a failed
    // upgrade) stays valid — so emit a distinct event: `nqnfs.invalidated`
    // would make the trace checker retire the lease record and flag the
    // next cached read as spurious.
    if (node->have_cached_data) {
      cache_.InvalidateFile(mount_id_, node->fh.fileid);
      node->have_cached_data = false;
      TRACE_INSTANT("nqnfs.self_invalidate", peer_.address().host,
                    "file=" + std::to_string(node->fh.fileid) + " reason=write_through");
    }
    proto::WriteReq req;
    req.fh = node->fh;
    req.offset = offset;
    req.data = data;
    auto rep = rpc::Expect<proto::AttrRep>(co_await Call(proto::Request(req)));
    if (!rep.ok()) {
      co_return rep.status();
    }
    node->attr = rep->attr;
    co_return base::OkStatus();
  }
  CO_RETURN_IF_ERROR(
      co_await cache_.WriteDelayed(mount_id_, node->fh.fileid, offset, data, node->attr.size));
  node->have_cached_data = true;
  node->attr.size = std::max(node->attr.size, offset + data.size());
  node->attr.mtime = simulator_.Now();
  co_return base::OkStatus();
}

sim::Task<base::Result<proto::Attr>> NqnfsClient::GetAttr(vfs::GnodeRef gnode) {
  NodeRef node = AsNode(gnode);
  if (node->lease_expires > simulator_.Now()) {
    // A live lease keeps the attribute cache valid: any foreign write would
    // have vacated us first.
    co_return node->attr;
  }
  proto::GetAttrReq req;
  req.fh = node->fh;
  auto rep = rpc::Expect<proto::AttrRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  if (!cache_.HasDirty(mount_id_, node->fh.fileid)) {
    node->attr = rep->attr;
  }
  co_return node->attr;
}

sim::Task<base::Result<void>> NqnfsClient::Truncate(vfs::GnodeRef gnode, uint64_t size) {
  NodeRef node = AsNode(gnode);
  cache_.CancelDirty(mount_id_, node->fh.fileid);
  cache_.InvalidateFile(mount_id_, node->fh.fileid);
  node->have_cached_data = false;
  proto::SetAttrReq req;
  req.fh = node->fh;
  req.size = size;
  auto rep = rpc::Expect<proto::AttrRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  node->attr = rep->attr;
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NqnfsClient::Remove(vfs::GnodeRef dir, std::string name,
                                                  vfs::GnodeRef target) {
  NodeRef victim = AsNode(target);
  // Deleting a file cancels its delayed writes, exactly as in Sprite/SNFS.
  cache_.CancelDirty(mount_id_, victim->fh.fileid);
  cache_.InvalidateFile(mount_id_, victim->fh.fileid);
  victim->have_cached_data = false;
  DropLease(victim, "remove");
  proto::RemoveReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::NullRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  nodes_.erase(victim->fh.fileid);
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NqnfsClient::Rmdir(vfs::GnodeRef dir, std::string name) {
  proto::RmdirReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::NullRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NqnfsClient::Rename(vfs::GnodeRef from_dir,
                                                  std::string from_name,
                                                  vfs::GnodeRef to_dir,
                                                  std::string to_name) {
  proto::RenameReq req;
  req.from_dir = from_dir->fh;
  req.from_name = from_name;
  req.to_dir = to_dir->fh;
  req.to_name = to_name;
  auto rep = rpc::Expect<proto::NullRep>(co_await Call(proto::Request(req)));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<std::vector<proto::DirEntry>>> NqnfsClient::ReadDir(vfs::GnodeRef dir) {
  std::vector<proto::DirEntry> all;
  uint64_t cookie = 0;
  while (true) {
    proto::ReadDirReq req;
    req.dir = dir->fh;
    req.cookie = cookie;
    req.count = 64;
    auto rep = rpc::Expect<proto::ReadDirRep>(co_await Call(proto::Request(req)));
    if (!rep.ok()) {
      co_return rep.status();
    }
    for (auto& e : rep->entries) {
      cookie = e.cookie;
      all.push_back(std::move(e));
    }
    if (rep->eof) {
      break;
    }
  }
  co_return all;
}

sim::Task<base::Result<void>> NqnfsClient::Fsync(vfs::GnodeRef gnode) {
  NodeRef node = AsNode(gnode);
  co_return co_await cache_.FlushFile(mount_id_, node->fh.fileid);
}

}  // namespace nqnfs
