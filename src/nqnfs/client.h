// The NQNFS client: lease-based caching with no open/close RPCs at all.
//
// Where the SNFS client registers every open and close with the server, the
// NQNFS client asks for a read or write *lease* the first time it touches a
// file (and when an existing lease no longer covers the access mode), then
// just uses its cache for as long as the lease is live. The lease is
// extended for free — the server piggybacks a new expiry on every data-RPC
// reply — so an actively-used file never pays a lease-renewal round trip.
//
// Expiry is the whole consistency story:
//  * a write lease nearing expiry gets its dirty blocks flushed early (the
//    flush replies carry extensions, usually keeping the lease alive);
//  * a lease that lapses is simply dropped: dirty blocks are pushed out as
//    plain write-throughs, clean blocks are kept for version revalidation
//    at the next grant, and reads fall back to going through to the server;
//  * a vacate callback from the server (write-back + invalidate over the
//    SNFS callback channel) ends the lease immediately.
//
// There is no reopen, no keepalive, and no recovery protocol: after a
// server reboot the client's leases lapse on their own, and new grants are
// refused only until the server's quiet window closes. Close does nothing
// but bookkeeping — delayed writes survive across closes exactly as in
// Sprite and SNFS.
#ifndef SRC_NQNFS_CLIENT_H_
#define SRC_NQNFS_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/simulator.h"
#include "src/vfs/vfs.h"

namespace nqnfs {

struct NqnfsClientParams {
  // Flush dirty blocks when a write lease has less than this left to run,
  // instead of racing the expiry scan.
  sim::Duration flush_margin = sim::Sec(5);
  sim::Duration lease_scan = sim::Sec(1);
  // After a grant is denied (server quiet window) or the GetLease RPC
  // fails, run uncached and do not re-ask before this much time passes.
  sim::Duration denied_retry = sim::Sec(1);
};

class NqnfsClient : public vfs::FileSystem {
 public:
  NqnfsClient(sim::Simulator& simulator, rpc::Peer& peer, net::Address server,
              proto::FileHandle root_fh, cache::BufferCache& cache,
              NqnfsClientParams params = {});

  // Spawns the lease-expiry daemon.
  void Start();
  void Stop();

  // Crash simulation: lease state lives in kernel memory and dies with the
  // machine. The buffer cache is dropped separately by the machine.
  void Reset();

  bool Owns(const proto::FileHandle& fh) const {
    auto it = nodes_.find(fh.fileid);
    return it != nodes_.end() && it->second->fh == fh;
  }

  // Service a vacate callback from the server (routed by the testbed over
  // the same channel as SNFS callbacks).
  sim::Task<proto::Reply> HandleCallback(proto::CallbackReq req);

  // --- vfs::FileSystem ------------------------------------------------------
  sim::Task<base::Result<vfs::GnodeRef>> Root() override;
  sim::Task<base::Result<vfs::GnodeRef>> Lookup(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<vfs::GnodeRef>> Create(vfs::GnodeRef dir, std::string name,
                                                bool exclusive) override;
  sim::Task<base::Result<vfs::GnodeRef>> Mkdir(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<void>> Open(vfs::GnodeRef node, bool write) override;
  sim::Task<base::Result<void>> Close(vfs::GnodeRef node, bool write) override;
  sim::Task<base::Result<std::vector<uint8_t>>> Read(vfs::GnodeRef node, uint64_t offset,
                                                     uint32_t count) override;
  sim::Task<base::Result<void>> Write(vfs::GnodeRef node, uint64_t offset,
                                      std::vector<uint8_t> data) override;
  sim::Task<base::Result<proto::Attr>> GetAttr(vfs::GnodeRef node) override;
  sim::Task<base::Result<void>> Truncate(vfs::GnodeRef node, uint64_t size) override;
  sim::Task<base::Result<void>> Remove(vfs::GnodeRef dir, std::string name,
                                       vfs::GnodeRef target) override;
  sim::Task<base::Result<void>> Rmdir(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<void>> Rename(vfs::GnodeRef from_dir, std::string from_name,
                                       vfs::GnodeRef to_dir, std::string to_name) override;
  sim::Task<base::Result<std::vector<proto::DirEntry>>> ReadDir(vfs::GnodeRef dir) override;
  sim::Task<base::Result<void>> Fsync(vfs::GnodeRef node) override;

  int mount_id() const { return mount_id_; }
  uint32_t fsid() const { return root_fh_.fsid; }
  uint64_t leases_acquired() const { return leases_acquired_; }
  uint64_t grants_denied_seen() const { return grants_denied_seen_; }
  uint64_t lease_expiries() const { return lease_expiries_; }
  uint64_t callbacks_served() const { return callbacks_served_; }
  uint64_t inconsistent_grants() const { return inconsistent_grants_; }

 private:
  struct NqnfsNode : vfs::Gnode {
    bool have_cached_data = false;  // any blocks might be in the cache
    uint64_t cached_version = 0;    // version the cached blocks correspond to
    bool lease_write = false;
    sim::Time lease_expires = 0;  // 0 = no lease; cache is not consulted
    sim::Time retry_grant_after = 0;
    bool possibly_inconsistent = false;
  };
  using NodeRef = std::shared_ptr<NqnfsNode>;

  static NodeRef AsNode(const vfs::GnodeRef& node);
  NodeRef Intern(const proto::FileHandle& fh, const proto::Attr& attr);

  // All data RPCs go through here so piggybacked lease extensions on the
  // replies are applied — including the cache's own flush traffic.
  sim::Task<base::Result<proto::Reply>> Call(proto::Request request);
  void ApplyExtension(const proto::Reply& reply);

  // Make sure a lease covering `write` access is in hand if the server will
  // give us one. Never fails the operation: on denial or RPC failure the
  // node is left leaseless and the caller runs uncached.
  sim::Task<void> EnsureLease(NodeRef node, bool write);

  void DropLease(NodeRef node, const char* reason);
  sim::Task<void> ExpiryDaemon(uint64_t generation);

  sim::Simulator& simulator_;
  rpc::Peer& peer_;
  net::Address server_;
  proto::FileHandle root_fh_;
  cache::BufferCache& cache_;
  NqnfsClientParams params_;
  int mount_id_;
  bool running_ = false;
  // Bumped on every Start: daemons from a previous incarnation observe the
  // change and exit instead of running alongside their replacements.
  uint64_t daemon_generation_ = 0;
  std::unordered_map<uint64_t, NodeRef> nodes_;
  uint64_t leases_acquired_ = 0;
  uint64_t grants_denied_seen_ = 0;
  uint64_t lease_expiries_ = 0;
  uint64_t callbacks_served_ = 0;
  uint64_t inconsistent_grants_ = 0;
};

}  // namespace nqnfs

#endif  // SRC_NQNFS_CLIENT_H_
