// The NQNFS server: Spritely-NFS consistency rebuilt on Gray/Cheriton
// leases (SNIPPETS.md, freebsd 06.nfs/2.t "Not Quite NFS").
//
// Clients ask for read or write leases instead of registering opens; the
// server vacates conflicting holders over the existing callback channel
// (write-back + invalidate) before granting, extends a holder's lease by
// piggybacking the new expiry on every data-RPC reply, and lets idle leases
// lapse on a periodic scan. Because every promise the server makes is
// time-bounded, a crash needs no recovery protocol at all: after a reboot
// the server simply refuses to issue *new* leases for one maximum lease
// term (the "quiet window", covering every lease a previous incarnation
// could still have outstanding) while serving uncached data RPCs
// immediately — lease expiry IS recovery, and there is no reopen grace
// period anywhere.
//
// Like the SNFS server, "our only modification to the original NFS server
// code" is additive: data operations are delegated to a wrapped NfsServer,
// with the lease machinery layered in front.
#ifndef SRC_NQNFS_SERVER_H_
#define SRC_NQNFS_SERVER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/fs/local_fs.h"
#include "src/net/network.h"
#include "src/nfs/server.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/snfs/lease_table.h"

namespace nqnfs {

struct NqnfsServerParams {
  // Maximum lease term; also the length of the post-reboot quiet window.
  sim::Duration lease_term = sim::Sec(30);
  sim::Duration lease_scan = sim::Sec(1);
  // At most workers-1 concurrent vacate callbacks, so one worker always
  // remains to service the write-backs the vacates trigger (§3.2's budget
  // argument applies unchanged to leases).
  int vacate_budget = 3;
  rpc::CallOptions vacate_call{.timeout = sim::Sec(2), .max_attempts = 4, .backoff = 2.0};
};

class NqnfsServer {
 public:
  // Installs itself as `peer`'s request handler (owning an NfsServer whose
  // handler it overrides, hybrid-server style).
  NqnfsServer(sim::Simulator& simulator, fs::LocalFs& fs, rpc::Peer& peer,
              NqnfsServerParams params = {});

  NqnfsServer(const NqnfsServer&) = delete;
  NqnfsServer& operator=(const NqnfsServer&) = delete;

  proto::FileHandle root() const { return fs_.root(); }

  sim::Task<proto::Reply> Handle(proto::Request request, net::Address from);

  // Crash simulation: the lease table lives in kernel memory and dies with
  // it. The caller also marks the host down and calls peer.Shutdown().
  void Crash();

  // Reboot: open the quiet window — no new leases until every lease a dead
  // incarnation could have granted has lapsed. Data RPCs serve immediately.
  void Restart();

  bool in_quiet_window() const { return simulator_.Now() < no_grant_until_; }

  uint64_t leases_granted() const { return leases_granted_; }
  uint64_t grants_denied() const { return grants_denied_; }
  uint64_t vacates_issued() const { return vacates_issued_; }
  uint64_t vacates_failed() const { return vacates_failed_; }
  uint64_t lease_expiries() const { return lease_expiries_; }
  size_t active_leases() const { return leases_.size(); }

 private:
  sim::Task<proto::Reply> HandleGetLease(proto::GetLeaseReq req, net::Address from);

  // Vacate every holder whose lease conflicts with `host` accessing the
  // file in `write` mode. Runs under the file lock; loops re-scanning the
  // table after every awaited callback.
  sim::Task<void> VacateConflicting(proto::FileHandle fh, int host, bool write);

  // One vacate callback under the budget. On delivery failure the server
  // cannot force the holder off the file, so it waits out the remainder of
  // the lease — the one promise it can still keep.
  sim::Task<void> VacateOne(proto::FileHandle fh, snfs::LeaseKey key, snfs::Lease lease);

  // Leaseless writes (write-through clients, post-expiry flushes) must
  // vacate other holders and bump the file version so stale caches can
  // never revalidate against the overwritten data. Returns the file lock,
  // still held, when it took that path — the caller releases it only after
  // the delegated write has landed, so no grant can slip between the bump
  // and the write — or nullptr when the write was already lease-covered.
  // lint: lock-escapes
  sim::Task<sim::Mutex*> PrepareForeignWrite(proto::FileHandle fh, int host);

  sim::Task<void> LeaseDaemon();

  bool VacateInProgress(uint64_t fileid, int host) const {
    return vacates_in_progress_.contains((fileid << 16) ^ static_cast<uint64_t>(host));
  }

  sim::Mutex& FileLock(const proto::FileHandle& fh);

  sim::Simulator& simulator_;
  fs::LocalFs& fs_;
  rpc::Peer& peer_;
  NqnfsServerParams params_;
  std::unique_ptr<nfs::NfsServer> nfs_;
  snfs::LeaseTable leases_;
  sim::Semaphore vacate_budget_;
  std::unordered_map<uint64_t, std::unique_ptr<sim::Mutex>> file_locks_;
  std::unordered_set<uint64_t> vacates_in_progress_;
  // Files whose last write-lease holder could not be reached for its final
  // write-back; cleared by the next successful foreign write.
  std::unordered_set<uint64_t> inconsistent_files_;
  // Run of leaseless write-throughs from a single host (typically a client
  // flushing after its write lease lapsed). The version is bumped once at
  // the start of the burst — that is enough to fail revalidation for every
  // other cache — and `prev_version` remembers the pre-bump version so the
  // burst writer's own (still coherent) cache can revalidate at its next
  // grant. Invalidated by any event that lets the data diverge from what
  // the burst writer holds: a write-lease grant or a leaseless write by
  // another host.
  struct LeaselessBurst {
    int host = -1;
    uint64_t prev_version = 0;
  };
  std::unordered_map<uint64_t, LeaselessBurst> leaseless_bursts_;
  sim::Time no_grant_until_ = 0;
  uint64_t leases_granted_ = 0;
  uint64_t grants_denied_ = 0;
  uint64_t vacates_issued_ = 0;
  uint64_t vacates_failed_ = 0;
  uint64_t lease_expiries_ = 0;
};

}  // namespace nqnfs

#endif  // SRC_NQNFS_SERVER_H_
