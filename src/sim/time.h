// Virtual time for the discrete-event simulator.
//
// All simulated time is int64 microseconds. Helpers construct durations in
// the units the rest of the codebase speaks (disk latencies in ms, probe
// intervals in seconds).
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace sim {

// A point in virtual time, microseconds since simulation start.
using Time = int64_t;
// A span of virtual time, microseconds.
using Duration = int64_t;

constexpr Duration Usec(int64_t us) { return us; }
constexpr Duration Msec(int64_t ms) { return ms * 1000; }
constexpr Duration Sec(int64_t s) { return s * 1000 * 1000; }

// Fractional seconds, e.g. SecF(0.5) == 500ms.
constexpr Duration SecF(double s) { return static_cast<Duration>(s * 1e6); }

constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e3; }

}  // namespace sim

#endif  // SRC_SIM_TIME_H_
