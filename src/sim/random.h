// Deterministic pseudo-random numbers for the simulator (splitmix64 core).
// Every stochastic component takes an explicit Rng so runs are reproducible
// from a single seed, and components can be given independent streams.
#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>

#include "src/base/check.h"

namespace sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi], inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CHECK_LE(lo, hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Fork an independent stream (for per-component determinism).
  Rng Fork() { return Rng(Next()); }

 private:
  uint64_t state_;
};

}  // namespace sim

#endif  // SRC_SIM_RANDOM_H_
