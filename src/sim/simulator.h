// The discrete-event simulator core: a virtual clock and an event queue.
//
// Determinism: events at the same virtual time run in scheduling order
// (FIFO via a monotone sequence number), so a given seed always produces an
// identical execution. All coroutine resumptions go through this queue.
//
// Hot-path design (see DESIGN.md §9). Events are arena-recycled nodes in
// one of three lanes, chosen by how far in the future they land:
//
//   now lane    when == Now(): an intrusive FIFO. This is the dominant
//               case — Ready()/Spawn() resumptions and zero-delay
//               schedules — and costs one free-list pop and two pointer
//               writes, no comparisons and no heap allocation.
//   wheel       0 < when - Now() < kWheelSpan: a timing wheel with one
//               bucket per microsecond (the clock's full resolution, so a
//               bucket never holds two distinct times and FIFO append is
//               already seq order). An occupancy bitmap makes "next
//               nonempty bucket" a word scan.
//   far heap    when - Now() >= kWheelSpan: a binary min-heap of node
//               pointers ordered by (at, seq) — RPC timeouts, daemon
//               periods, crash schedules.
//
// When the now lane drains, the next bucket-or-heap time is found and every
// node at that exact time is spliced into the now lane, merging the wheel
// and heap runs by seq so the FIFO-at-equal-time contract holds across
// lanes. Coroutine resumptions carry a bare coroutine handle — no
// std::function, no closure state; only genuinely closure-shaped events
// (packet deliveries, timers with payloads) pay for one.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Valid at any point, including before Run.
  Time Now() const { return now_; }

  // Enqueue `fn` to run at Now() + delay. delay must be >= 0. Background
  // events (periodic daemon wakeups) do not keep Run() alive: Run() returns
  // once only background events remain.
  void Schedule(Duration delay, std::function<void()> fn, bool background = false);

  // Enqueue at an absolute virtual time (>= Now()).
  void ScheduleAt(Time when, std::function<void()> fn, bool background = false);

  // Closure-free variants for coroutine resumptions: the event carries the
  // bare handle. Sleep, Ready, and Spawn route through these.
  void ScheduleResume(Duration delay, std::coroutine_handle<> h, bool background = false);
  void ScheduleResumeAt(Time when, std::coroutine_handle<> h, bool background = false);

  // Start a detached coroutine. The task begins running at the current
  // virtual time (via the event queue) and owns itself until completion.
  void Spawn(Task<void> task);

  // Process events until no foreground events remain. Returns the final
  // time. Parked coroutines (channel receivers with nothing to receive) and
  // background timers do not count as pending work.
  Time Run();

  // Process events until virtual time exceeds `deadline`; events at exactly
  // `deadline` still run. Returns the time of the last processed event.
  Time RunUntil(Time deadline);

  // Safety valve: on overflow, abort with the current virtual time, the
  // pending-event counts, and the last event's trace span (catches
  // accidental infinite event loops in tests and fault sweeps).
  void set_max_events(uint64_t n) { max_events_ = n; }

  uint64_t events_processed() const { return events_processed_; }
  uint64_t foreground_pending() const { return foreground_pending_; }
  uint64_t background_pending() const { return background_pending_; }

  // Resume a coroutine through the event queue at the current time. This is
  // the only way sync primitives wake waiters: it guarantees FIFO fairness
  // and avoids unbounded recursion through resume chains.
  void Ready(std::coroutine_handle<> h) { ScheduleResumeAt(now_, h); }

  // Test hook: observe every executed event's (time, seq) just before it
  // runs. The (at, seq) stream is the simulator's definition of execution
  // order; the determinism tests checksum it.
  using StepObserver = std::function<void(Time at, uint64_t seq)>;
  void set_step_observer(StepObserver observer) { step_observer_ = std::move(observer); }

 private:
  // One queued event. `handle` set: a coroutine resumption; otherwise `fn`
  // runs. Nodes are arena-owned and recycled through a free list; `next`
  // links both the free list and the now-lane / wheel-bucket FIFOs.
  struct EventNode {
    Time at = 0;
    uint64_t seq = 0;
    EventNode* next = nullptr;
    std::coroutine_handle<> handle;
    std::function<void()> fn;
    bool background = false;
  };

  // Wheel geometry: one bucket per microsecond of near future. 8192
  // buckets cover 8.2 ms — network latencies, CPU costs, and disk I/O land
  // here; second-scale timers fall through to the far heap.
  static constexpr int kWheelBits = 13;
  static constexpr Time kWheelSpan = Time{1} << kWheelBits;
  static constexpr uint64_t kWheelMask = kWheelSpan - 1;
  static constexpr size_t kBitmapWords = kWheelSpan / 64;
  static constexpr size_t kChunkNodes = 256;
  static constexpr Time kNoTime = INT64_MAX;

  EventNode* AllocNode();
  void FreeNode(EventNode* node);
  void Enqueue(Time when, EventNode* node);
  void PushNowLane(EventNode* node);
  void PushWheel(EventNode* node);
  Time NextWheelTime() const;
  // Advance the clock to the next event time and splice every node at that
  // time into the now lane (merging wheel and heap runs by seq). False if
  // no events remain.
  bool RefillNowLane();
  // Time of the next event without advancing the clock; kNoTime if none.
  Time PeekNextTime() const;
  bool Step();  // run one event; false if queue empty
  [[noreturn]] void ReportEventOverflow(Time at, uint64_t seq, bool background);

  Time now_ = 0;
  uint64_t foreground_pending_ = 0;
  uint64_t background_pending_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t max_events_ = 2'000'000'000;
  // Trace span left ambient by the most recently completed event; reported
  // by ReportEventOverflow so runaway loops name their causal span.
  uint64_t last_event_span_ = 0;

  // Now lane: intrusive FIFO of events at exactly now_.
  EventNode* now_head_ = nullptr;
  EventNode* now_tail_ = nullptr;

  // Timing wheel: per-bucket FIFO (head/tail) plus an occupancy bitmap.
  struct Bucket {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };
  std::unique_ptr<Bucket[]> wheel_;
  uint64_t bitmap_[kBitmapWords] = {};
  size_t wheel_count_ = 0;

  // Far heap: node pointers ordered by (at, seq), min at front.
  std::vector<EventNode*> far_;

  // Node arena: fixed-size chunks, recycled through an intrusive free list.
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  size_t chunk_used_ = kChunkNodes;
  EventNode* free_ = nullptr;

  StepObserver step_observer_;
};

// Awaitable: suspend the current coroutine for `d` of virtual time.
//   co_await sim::Sleep(sim, sim::Msec(30));
struct Sleep {
  Simulator& simulator;
  Duration duration;
  bool background;

  // `background` marks the sleep of a periodic daemon; it does not keep
  // Simulator::Run() alive.
  Sleep(Simulator& s, Duration d, bool background = false)
      : simulator(s), duration(d), background(background) {}

  bool await_ready() const noexcept { return duration <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    simulator.ScheduleResume(duration, h, background);
  }
  void await_resume() const noexcept {}
};

}  // namespace sim

#endif  // SRC_SIM_SIMULATOR_H_
