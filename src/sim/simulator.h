// The discrete-event simulator core: a virtual clock and an event queue.
//
// Determinism: events at the same virtual time run in scheduling order
// (FIFO via a monotone sequence number), so a given seed always produces an
// identical execution. All coroutine resumptions go through this queue.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/check.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Valid at any point, including before Run.
  Time Now() const { return now_; }

  // Enqueue `fn` to run at Now() + delay. delay must be >= 0. Background
  // events (periodic daemon wakeups) do not keep Run() alive: Run() returns
  // once only background events remain.
  void Schedule(Duration delay, std::function<void()> fn, bool background = false);

  // Enqueue at an absolute virtual time (>= Now()).
  void ScheduleAt(Time when, std::function<void()> fn, bool background = false);

  // Start a detached coroutine. The task begins running at the current
  // virtual time (via the event queue) and owns itself until completion.
  void Spawn(Task<void> task);

  // Process events until no foreground events remain. Returns the final
  // time. Parked coroutines (channel receivers with nothing to receive) and
  // background timers do not count as pending work.
  Time Run();

  // Process events until virtual time exceeds `deadline`; events at exactly
  // `deadline` still run. Returns the time of the last processed event.
  Time RunUntil(Time deadline);

  // Safety valve: abort if a single Run processes more than this many events
  // (catches accidental infinite event loops in tests).
  void set_max_events(uint64_t n) { max_events_ = n; }

  uint64_t events_processed() const { return events_processed_; }

  // Resume a coroutine through the event queue at the current time. This is
  // the only way sync primitives wake waiters: it guarantees FIFO fairness
  // and avoids unbounded recursion through resume chains.
  void Ready(std::coroutine_handle<> h);

 private:
  struct Event {
    Time at;
    uint64_t seq;
    std::function<void()> fn;
    bool background = false;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  bool Step();  // run one event; false if queue empty

  Time now_ = 0;
  uint64_t foreground_pending_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t max_events_ = 2'000'000'000;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

// Awaitable: suspend the current coroutine for `d` of virtual time.
//   co_await sim::Sleep(sim, sim::Msec(30));
struct Sleep {
  Simulator& simulator;
  Duration duration;
  bool background;

  // `background` marks the sleep of a periodic daemon; it does not keep
  // Simulator::Run() alive.
  Sleep(Simulator& s, Duration d, bool background = false)
      : simulator(s), duration(d), background(background) {}

  bool await_ready() const noexcept { return duration <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    simulator.Schedule(duration, [h]() { h.resume(); }, background);
  }
  void await_resume() const noexcept {}
};

}  // namespace sim

#endif  // SRC_SIM_SIMULATOR_H_
