// Ambient causal-trace context for the simulator.
//
// The tracing subsystem (src/trace) attributes events to *spans*; a span id
// is propagated implicitly along the causal chain of execution:
//
//  - a coroutine captures the ambient span at creation and restores it when
//    it first runs (Task's initial awaiter);
//  - every co_await saves the ambient span at suspension and restores it at
//    resumption (Task's await_transform), so interleaved coroutines cannot
//    leak their spans into each other;
//  - the Simulator clears the ambient span before each event, so plain
//    scheduled lambdas (timers, packet deliveries) run unattributed unless
//    they captured a span explicitly.
//
// The simulator is single-threaded by construction, so the context is a
// plain global. Span id 0 means "no span". This header is deliberately
// free of any dependency on src/trace: the sim layer only carries the id.
#ifndef SRC_SIM_TRACE_CTX_H_
#define SRC_SIM_TRACE_CTX_H_

#include <cstdint>

namespace sim {
namespace tracectx {

inline uint64_t current_span = 0;

}  // namespace tracectx

// Scoped override of the ambient span, for non-coroutine code that wants to
// run a block under a specific span (e.g. a packet-delivery lambda
// attributing the receive to the sender's span).
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(uint64_t span) : saved_(tracectx::current_span) {
    tracectx::current_span = span;
  }
  ~ScopedTraceSpan() { tracectx::current_span = saved_; }
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  uint64_t saved_;
};

}  // namespace sim

#endif  // SRC_SIM_TRACE_CTX_H_
