#include "src/sim/simulator.h"

#include "src/base/log.h"

namespace sim {
namespace {

// The most recently running simulator, exposed to the logger so log lines
// carry virtual timestamps. Single-threaded by construction.
Simulator* g_current = nullptr;

int64_t LogNow() { return g_current != nullptr ? g_current->Now() : -1; }

}  // namespace

Simulator::Simulator() {
  g_current = this;
  base::SetLogNowHook(&LogNow);
}

Simulator::~Simulator() {
  if (g_current == this) {
    g_current = nullptr;
    base::SetLogNowHook(nullptr);
  }
}

void Simulator::Schedule(Duration delay, std::function<void()> fn, bool background) {
  CHECK_GE(delay, 0);
  ScheduleAt(now_ + delay, std::move(fn), background);
}

void Simulator::ScheduleAt(Time when, std::function<void()> fn, bool background) {
  CHECK_GE(when, now_);
  if (!background) {
    ++foreground_pending_;
  }
  queue_.push(Event{when, next_seq_++, std::move(fn), background});
}

void Simulator::Spawn(Task<void> task) {
  auto handle = task.Release();
  CHECK(handle);
  handle.promise().detached = true;
  handle.promise().started = true;
  Schedule(0, [handle]() { handle.resume(); });
}

void Simulator::Ready(std::coroutine_handle<> h) {
  Schedule(0, [h]() { h.resume(); });
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // std::priority_queue::top is const; moving the closure out requires the
  // usual const_cast dance. Safe: we pop immediately after.
  Event& top = const_cast<Event&>(queue_.top());
  Time at = top.at;
  bool background = top.background;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  if (!background) {
    CHECK_GT(foreground_pending_, 0u);
    --foreground_pending_;
  }
  CHECK_GE(at, now_);
  now_ = at;
  ++events_processed_;
  CHECK_LT(events_processed_, max_events_);
  g_current = this;
  // Plain scheduled lambdas (timers, packet deliveries) run unattributed;
  // coroutine resumptions restore their own span via Task's awaiter hooks.
  tracectx::current_span = 0;
  fn();
  return true;
}

Time Simulator::Run() {
  while (foreground_pending_ > 0 && Step()) {
  }
  return now_;
}

Time Simulator::RunUntil(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace sim
