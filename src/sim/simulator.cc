#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "src/base/log.h"
#include "src/sim/coro_ctx.h"
#include "src/sim/trace_ctx.h"

namespace sim {
namespace {

// The most recently running simulator, exposed to the logger so log lines
// carry virtual timestamps. Single-threaded by construction.
//
// Lifecycle: simulators can nest and interleave within one test binary (a
// fixture's rig plus a scratch simulator, a sweep running cells back to
// back), so a plain set-on-construct/clear-on-destruct pair would leave the
// logger reading virtual time from a destroyed instance. A stack of live
// simulators keeps the hook valid under any construction/destruction order:
// destroying the current simulator falls back to the most recently
// constructed one still alive; destroying the last one uninstalls the hook.
Simulator* g_current = nullptr;

std::vector<Simulator*>& LiveSimulators() {
  static std::vector<Simulator*> live;
  return live;
}

int64_t LogNow() { return g_current != nullptr ? g_current->Now() : -1; }

// Far-heap order: min (at, seq) at the front.
struct FarLater {
  bool operator()(const auto* a, const auto* b) const {
    if (a->at != b->at) {
      return a->at > b->at;
    }
    return a->seq > b->seq;
  }
};

}  // namespace

Simulator::Simulator() : wheel_(std::make_unique<Bucket[]>(kWheelSpan)) {
  LiveSimulators().push_back(this);
  g_current = this;
  base::SetLogNowHook(&LogNow);
}

Simulator::~Simulator() {
  std::vector<Simulator*>& live = LiveSimulators();
  live.erase(std::remove(live.begin(), live.end(), this), live.end());
  if (g_current == this) {
    g_current = live.empty() ? nullptr : live.back();
  }
  if (live.empty()) {
    base::SetLogNowHook(nullptr);
  }
}

Simulator::EventNode* Simulator::AllocNode() {
  if (free_ != nullptr) {
    EventNode* node = free_;
    free_ = node->next;
    node->next = nullptr;
    return node;
  }
  if (chunk_used_ == kChunkNodes) {
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkNodes));
    chunk_used_ = 0;
  }
  return &chunks_.back()[chunk_used_++];
}

void Simulator::FreeNode(EventNode* node) {
  node->handle = nullptr;
  if (node->fn) {
    node->fn = nullptr;
  }
  node->next = free_;
  free_ = node;
}

void Simulator::PushNowLane(EventNode* node) {
  if (now_tail_ != nullptr) {
    now_tail_->next = node;
  } else {
    now_head_ = node;
  }
  now_tail_ = node;
}

void Simulator::PushWheel(EventNode* node) {
  uint64_t idx = static_cast<uint64_t>(node->at) & kWheelMask;
  Bucket& bucket = wheel_[idx];
  if (bucket.head == nullptr) {
    bucket.head = bucket.tail = node;
    bitmap_[idx >> 6] |= uint64_t{1} << (idx & 63);
    ++wheel_count_;  // counts occupied buckets
  } else {
    // Appending keeps the bucket in seq order: one bucket holds exactly one
    // microsecond, and seq is globally monotone.
    bucket.tail->next = node;
    bucket.tail = node;
  }
}

Time Simulator::NextWheelTime() const {
  if (wheel_count_ == 0) {
    return kNoTime;
  }
  // Every occupied bucket holds a time in (now_, now_ + kWheelSpan); the
  // first set bit circularly after now_ is therefore the soonest.
  uint64_t start = static_cast<uint64_t>(now_ + 1) & kWheelMask;
  Time scanned = 0;
  while (scanned < kWheelSpan) {
    uint64_t pos = (start + static_cast<uint64_t>(scanned)) & kWheelMask;
    uint64_t bits = bitmap_[pos >> 6] >> (pos & 63);
    if (bits != 0) {
      Time dist = scanned + std::countr_zero(bits);
      CHECK_LT(dist, kWheelSpan);
      return now_ + 1 + dist;
    }
    scanned += 64 - static_cast<Time>(pos & 63);  // jump to next word
  }
  CHECK(false);  // wheel_count_ > 0 guarantees a set bit
  return kNoTime;
}

void Simulator::Enqueue(Time when, EventNode* node) {
  CHECK_GE(when, now_);
  node->at = when;
  node->seq = next_seq_++;
  node->next = nullptr;
  if (node->background) {
    ++background_pending_;
  } else {
    ++foreground_pending_;
  }
  if (when == now_) {
    PushNowLane(node);
  } else if (when - now_ < kWheelSpan) {
    PushWheel(node);
  } else {
    far_.push_back(node);
    std::push_heap(far_.begin(), far_.end(), FarLater{});
  }
}

Time Simulator::PeekNextTime() const {
  if (now_head_ != nullptr) {
    return now_;
  }
  Time wheel_t = NextWheelTime();
  Time far_t = far_.empty() ? kNoTime : far_.front()->at;
  return wheel_t < far_t ? wheel_t : far_t;
}

bool Simulator::RefillNowLane() {
  Time wheel_t = NextWheelTime();
  Time far_t = far_.empty() ? kNoTime : far_.front()->at;
  Time t = wheel_t < far_t ? wheel_t : far_t;
  if (t == kNoTime) {
    return false;
  }
  now_ = t;

  EventNode* wheel_head = nullptr;
  EventNode* wheel_tail = nullptr;
  if (wheel_t == t) {
    uint64_t idx = static_cast<uint64_t>(t) & kWheelMask;
    Bucket& bucket = wheel_[idx];
    wheel_head = bucket.head;
    wheel_tail = bucket.tail;
    bucket.head = bucket.tail = nullptr;
    bitmap_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
    --wheel_count_;
  }
  if (far_t != t) {
    now_head_ = wheel_head;
    now_tail_ = wheel_tail;
    return true;
  }

  // Far-heap run at exactly t: pops come out in seq order.
  EventNode* far_head = nullptr;
  EventNode* far_tail = nullptr;
  while (!far_.empty() && far_.front()->at == t) {
    std::pop_heap(far_.begin(), far_.end(), FarLater{});
    EventNode* node = far_.back();
    far_.pop_back();
    node->next = nullptr;
    if (far_tail != nullptr) {
      far_tail->next = node;
    } else {
      far_head = node;
    }
    far_tail = node;
  }

  // Merge the two seq-ascending runs so FIFO-at-equal-time holds across
  // lanes (an event scheduled far ahead must still run before a later-
  // scheduled event at the same time).
  EventNode dummy;
  EventNode* tail = &dummy;
  EventNode* a = wheel_head;
  EventNode* b = far_head;
  while (a != nullptr && b != nullptr) {
    EventNode** take = a->seq < b->seq ? &a : &b;
    EventNode* node = *take;
    *take = node->next;
    tail->next = node;
    tail = node;
  }
  if (a != nullptr) {
    tail->next = a;
    now_tail_ = wheel_tail;
  } else if (b != nullptr) {
    tail->next = b;
    now_tail_ = far_tail;
  } else {
    tail->next = nullptr;
    now_tail_ = tail == &dummy ? nullptr : tail;
  }
  now_head_ = dummy.next;
  return now_head_ != nullptr;
}

void Simulator::Schedule(Duration delay, std::function<void()> fn, bool background) {
  CHECK_GE(delay, 0);
  ScheduleAt(now_ + delay, std::move(fn), background);
}

void Simulator::ScheduleAt(Time when, std::function<void()> fn, bool background) {
  EventNode* node = AllocNode();
  node->fn = std::move(fn);
  node->background = background;
  Enqueue(when, node);
}

void Simulator::ScheduleResume(Duration delay, std::coroutine_handle<> h, bool background) {
  CHECK_GE(delay, 0);
  ScheduleResumeAt(now_ + delay, h, background);
}

void Simulator::ScheduleResumeAt(Time when, std::coroutine_handle<> h, bool background) {
  EventNode* node = AllocNode();
  node->handle = h;
  node->background = background;
  Enqueue(when, node);
}

void Simulator::Spawn(Task<void> task) {
  auto handle = task.Release();
  CHECK(handle);
  handle.promise().detached = true;
  handle.promise().started = true;
  // A spawned task is a new top-level chain, not part of the spawner's
  // activity — re-mint so lock-ownership checks see it as a stranger.
  handle.promise().activity = coroctx::NewActivity();
  ScheduleResumeAt(now_, handle);
}

void Simulator::ReportEventOverflow(Time at, uint64_t seq, bool background) {
  std::fprintf(
      stderr,
      "sim::Simulator: event budget exhausted after %llu events (set_max_events)\n"
      "  virtual time: %lld us\n"
      "  offending event: at=%lld us seq=%llu %s\n"
      "  pending: %llu foreground + %llu background events\n"
      "  last completed event's trace span: %llu\n"
      "Likely a runaway event loop; if the workload is genuinely this large,\n"
      "raise the budget with set_max_events().\n",
      static_cast<unsigned long long>(events_processed_), static_cast<long long>(now_),
      static_cast<long long>(at), static_cast<unsigned long long>(seq),
      background ? "background" : "foreground",
      static_cast<unsigned long long>(foreground_pending_),
      static_cast<unsigned long long>(background_pending_),
      static_cast<unsigned long long>(last_event_span_));
  std::abort();
}

bool Simulator::Step() {
  if (now_head_ == nullptr && !RefillNowLane()) {
    return false;
  }
  EventNode* node = now_head_;
  now_head_ = node->next;
  if (now_head_ == nullptr) {
    now_tail_ = nullptr;
  }
  if (node->background) {
    CHECK_GT(background_pending_, 0u);
    --background_pending_;
  } else {
    CHECK_GT(foreground_pending_, 0u);
    --foreground_pending_;
  }
  ++events_processed_;
  if (events_processed_ >= max_events_) {
    ReportEventOverflow(node->at, node->seq, node->background);
  }
  if (step_observer_) {
    step_observer_(node->at, node->seq);
  }
  g_current = this;
  // Plain scheduled lambdas (timers, packet deliveries) run unattributed;
  // coroutine resumptions restore their own span and activity via Task's
  // awaiter hooks.
  tracectx::current_span = 0;
  coroctx::current_activity = 0;
  if (node->handle) {
    std::coroutine_handle<> h = node->handle;
    FreeNode(node);
    h.resume();
  } else {
    std::function<void()> fn = std::move(node->fn);
    FreeNode(node);
    fn();
  }
  last_event_span_ = tracectx::current_span;
  return true;
}

Time Simulator::Run() {
  while (foreground_pending_ > 0 && Step()) {
  }
  return now_;
}

Time Simulator::RunUntil(Time deadline) {
  while (true) {
    Time next = PeekNextTime();
    if (next == kNoTime || next > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace sim
