// Ambient activity context for simulated coroutines.
//
// An *activity* is one logical chain of Task frames linked by co_await:
// a spawned top-level task plus every child task it awaits (children run
// to completion before the parent resumes, so exactly one frame of the
// chain runs at a time). The ambient id is maintained by the same Task
// awaiter hooks that restore the trace span (src/sim/task.h): a child
// created under a running activity inherits its id, Simulator::Spawn
// mints a fresh id for the new top-level chain, and the Simulator clears
// the ambient before each plain-lambda event.
//
// sim::Mutex uses the ambient id for ownership checks: the activity that
// acquired the lock (not the individual frame) must be the one releasing
// it, which keeps the PrepareForeignWrite pattern — acquire in a child,
// release in the awaiting parent — legal while still catching releases
// from unrelated coroutines and same-activity re-acquires (self-deadlock
// on a FIFO mutex).
//
// Plain global, like tracectx::current_span: the simulator is
// single-threaded, so no TLS needed.
#ifndef SRC_SIM_CORO_CTX_H_
#define SRC_SIM_CORO_CTX_H_

#include <cstdint>

namespace sim::coroctx {

// 0 = no activity (plain scheduled lambdas, code outside the simulator).
inline uint64_t current_activity = 0;
inline uint64_t next_activity = 1;

inline uint64_t NewActivity() { return next_activity++; }

}  // namespace sim::coroctx

#endif  // SRC_SIM_CORO_CTX_H_
