// Synchronization primitives for simulated coroutines.
//
// All wakeups are funneled through Simulator::Ready, so waiters resume in
// FIFO order at the current virtual time — deterministic and fair.
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/sim/coro_ctx.h"
#include "src/sim/simulator.h"

namespace sim {

// FIFO mutex. Use Acquire/Release directly or the ScopedLock helper:
//   co_await mutex.Acquire();
//   ... critical section (may co_await) ...
//   mutex.Release();
//
// Ownership is tracked per *activity* (the co_await chain, see
// src/sim/coro_ctx.h): re-acquiring a mutex the current activity already
// holds is a guaranteed self-deadlock on a FIFO mutex, and releasing a
// mutex some other activity holds corrupts the critical section — both
// CHECK-fail immediately instead of hanging or silently interleaving.
// Acquiring in a child task and releasing in the awaiting parent (the
// PrepareForeignWrite pattern) is one activity and stays legal.
class Mutex {
 public:
  explicit Mutex(Simulator& simulator) : simulator_(simulator) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  struct Acquirer {
    Mutex& mutex;
    bool await_ready() const noexcept {
      if (!mutex.locked_) {
        mutex.locked_ = true;
        mutex.owner_ = coroctx::current_activity;
        return true;
      }
      CHECK(mutex.owner_ != coroctx::current_activity);  // self-deadlock
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      mutex.waiters_.push_back(Waiter{h, coroctx::current_activity});
    }
    void await_resume() const noexcept {}
  };

  Acquirer Acquire() { return Acquirer{*this}; }

  void Release() {
    CHECK(locked_);
    CHECK(owner_ == coroctx::current_activity);  // release by non-owner
    if (!waiters_.empty()) {
      // Ownership transfers directly to the first waiter.
      Waiter next = waiters_.front();
      waiters_.pop_front();
      owner_ = next.activity;
      simulator_.Ready(next.handle);
    } else {
      locked_ = false;
      owner_ = 0;
    }
  }

  bool locked() const { return locked_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    uint64_t activity;
  };

  Simulator& simulator_;
  bool locked_ = false;
  uint64_t owner_ = 0;
  std::deque<Waiter> waiters_;
};

// Awaitable RAII guard for Mutex: co_await acquires, the destructor
// releases if still held. For critical sections that end with their
// enclosing scope:
//   sim::ScopedLock lock(mutex);
//   co_await lock;
//   ... critical section (may co_await) ...
// Keep manual Acquire/Release where ownership escapes the scope (early
// release before more work, or transfer to another coroutine).
class ScopedLock {
 public:
  explicit ScopedLock(Mutex& mutex) : mutex_(mutex) {}

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

  ~ScopedLock() {
    if (held_) {
      mutex_.Release();
    }
  }

  bool await_ready() const noexcept { return Mutex::Acquirer{mutex_}.await_ready(); }
  void await_suspend(std::coroutine_handle<> h) { Mutex::Acquirer{mutex_}.await_suspend(h); }
  void await_resume() noexcept { held_ = true; }

  bool held() const { return held_; }

 private:
  Mutex& mutex_;
  bool held_ = false;
};

// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Simulator& simulator, int64_t initial) : simulator_(simulator), count_(initial) {
    CHECK_GE(initial, 0);
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct Acquirer {
    Semaphore& sem;
    bool await_ready() const noexcept {
      if (sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  Acquirer Acquire() { return Acquirer{*this}; }

  void Release() {
    if (!waiters_.empty()) {
      std::coroutine_handle<> next = waiters_.front();
      waiters_.pop_front();
      simulator_.Ready(next);
    } else {
      ++count_;
    }
  }

  int64_t count() const { return count_; }
  size_t waiting() const { return waiters_.size(); }

 private:
  Simulator& simulator_;
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Wait for a set of activities to finish (Go-style).
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& simulator) : simulator_(simulator) {}

  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void Add(int64_t n = 1) { count_ += n; }

  void Done() {
    CHECK_GT(count_, 0);
    if (--count_ == 0) {
      for (std::coroutine_handle<> h : waiters_) {
        simulator_.Ready(h);
      }
      waiters_.clear();
    }
  }

  struct Waiter {
    WaitGroup& wg;
    bool await_ready() const noexcept { return wg.count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) { wg.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  Waiter Wait() { return Waiter{*this}; }

  int64_t count() const { return count_; }

 private:
  Simulator& simulator_;
  int64_t count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Unbounded FIFO channel. Recv yields std::optional<T>: nullopt once the
// channel is closed and drained. Daemons use Close as their stop signal.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& simulator) : simulator_(simulator) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void Send(T value) {
    CHECK(!closed_);
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.slot->emplace(std::move(value));
      simulator_.Ready(w.handle);
      return;
    }
    queue_.push_back(std::move(value));
  }

  // Close the channel: queued items still drain, then Recv returns nullopt.
  void Close() {
    if (closed_) {
      return;
    }
    closed_ = true;
    for (const Waiter& w : waiters_) {
      simulator_.Ready(w.handle);  // slot stays empty -> nullopt
    }
    waiters_.clear();
  }

  struct Receiver {
    Channel& channel;
    std::optional<T> result;

    bool await_ready() {
      if (!channel.queue_.empty()) {
        result.emplace(std::move(channel.queue_.front()));
        channel.queue_.pop_front();
        return true;
      }
      return channel.closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      channel.waiters_.push_back(Waiter{h, &result});
    }
    std::optional<T> await_resume() { return std::move(result); }
  };

  Receiver Recv() { return Receiver{*this, std::nullopt}; }

  size_t size() const { return queue_.size(); }
  bool closed() const { return closed_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  Simulator& simulator_;
  bool closed_ = false;
  std::deque<T> queue_;
  std::deque<Waiter> waiters_;
};

}  // namespace sim

#endif  // SRC_SIM_SYNC_H_
