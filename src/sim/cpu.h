// A single-core CPU resource with FIFO scheduling and busy-time accounting.
//
// Every compute cost in the system — RPC processing, compile phases, kernel
// path-name handling — is `co_await cpu.Run(cost)`. Contending activities
// queue; the integral of busy time drives the server-utilization figures
// (paper Figures 5-1 / 5-2).
#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {

class Cpu {
 public:
  explicit Cpu(Simulator& simulator) : simulator_(simulator), mutex_(simulator) {}

  // Occupy the CPU for `cost` of virtual time (queueing behind other users).
  Task<void> Run(Duration cost) {
    if (cost <= 0) {
      co_return;
    }
    co_await mutex_.Acquire();
    co_await Sleep(simulator_, cost);
    busy_us_ += cost;
    mutex_.Release();
  }

  // Cumulative busy time; utilization over a window is the delta of this
  // divided by the window length.
  Duration busy_time() const { return busy_us_; }

 private:
  Simulator& simulator_;
  Mutex mutex_;
  Duration busy_us_ = 0;
};

}  // namespace sim

#endif  // SRC_SIM_CPU_H_
