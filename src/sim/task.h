// Task<T>: the coroutine type for all simulated activities.
//
// Tasks are lazy: creating one does nothing until it is either awaited
// (`co_await ChildOp()`, which runs the child to completion before the
// parent resumes) or handed to Simulator::Spawn (detached top-level
// activity, e.g. a client workload or a daemon).
//
// Lifetime rules:
//  - An awaited task completes before the awaiter resumes, so the Task
//    object always outlives the coroutine frame.
//  - A spawned task owns itself; its frame is destroyed at final-suspend.
//  - Destroying a Task that was started but is not finished is a bug
//    (some awaitable still holds its handle); we CHECK against it.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <utility>

#include "src/base/check.h"
#include "src/sim/coro_ctx.h"
#include "src/sim/frame_pool.h"
#include "src/sim/trace_ctx.h"

namespace sim {

template <typename T>
class Task;

namespace detail {

// Wraps every awaitable co_awaited inside a Task coroutine: the ambient
// trace span and activity id are saved when the coroutine suspends and
// restored when it resumes, so both follow the causal chain instead of
// whichever coroutine happens to run next. The `suspended` flag keeps the
// no-suspend fast path (await_ready() == true, e.g. an uncontended Mutex)
// from touching the context at all.
template <typename A>
struct TraceAwaiter {
  A awaitable;
  uint64_t saved_span = 0;
  uint64_t saved_activity = 0;
  bool suspended = false;

  bool await_ready() { return awaitable.await_ready(); }

  template <typename Promise>
  auto await_suspend(std::coroutine_handle<Promise> h) {
    saved_span = tracectx::current_span;
    saved_activity = coroctx::current_activity;
    suspended = true;
    return awaitable.await_suspend(h);
  }

  decltype(auto) await_resume() {
    if (suspended) {
      tracectx::current_span = saved_span;
      coroctx::current_activity = saved_activity;
    }
    return awaitable.await_resume();
  }
};

struct PromiseBase {
  // Coroutine frames allocate through the size-class pool: every simulated
  // activity is a Task, so this removes a malloc/free pair per activity on
  // the hot path (frame_pool.h).
  static void* operator new(size_t n) { return framepool::Alloc(n); }
  static void operator delete(void* p, size_t n) { framepool::Free(p, n); }

  std::coroutine_handle<> continuation;
  bool detached = false;
  bool started = false;
  std::exception_ptr exception;
  // Ambient span at coroutine creation; restored when the body first runs.
  uint64_t trace_span = tracectx::current_span;
  // Activity chain this frame belongs to: a child created while an activity
  // runs inherits its id; a root created outside any activity mints a fresh
  // one. Simulator::Spawn re-mints, so spawned tasks are always new chains.
  uint64_t activity =
      coroctx::current_activity != 0 ? coroctx::current_activity : coroctx::NewActivity();

  // Restores the creator's trace context on first resumption (covers both
  // Spawn-scheduled starts and symmetric-transfer starts from co_await).
  struct InitialAwaiter {
    PromiseBase* promise;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {
      tracectx::current_span = promise->trace_span;
      coroctx::current_activity = promise->activity;
    }
  };

  template <typename A>
  TraceAwaiter<A> await_transform(A&& awaitable) {
    return TraceAwaiter<A>{std::forward<A>(awaitable)};
  }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
      PromiseBase& p = h.promise();
      if (p.continuation) {
        return p.continuation;
      }
      if (p.detached) {
        if (p.exception) {
          std::fprintf(stderr, "sim::Task: unhandled exception in detached task\n");
          std::abort();
        }
        h.destroy();
      }
      return std::noop_coroutine();
    }

    void await_resume() const noexcept {}
  };
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    InitialAwaiter initial_suspend() noexcept { return InitialAwaiter{this}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { this->exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;
  using FinalAwaiter = detail::PromiseBase::FinalAwaiter;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Reset();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Reset(); }

  bool valid() const { return static_cast<bool>(handle_); }

  // Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  // once the task completes, yielding its value.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    CHECK(handle_ && !handle_.promise().started);
    handle_.promise().started = true;
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  T await_resume() {
    promise_type& p = handle_.promise();
    if (p.exception) {
      std::rethrow_exception(p.exception);
    }
    CHECK(p.value.has_value());
    return std::move(*p.value);
  }

  // Relinquish ownership (used by Simulator::Spawn).
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  void Reset() {
    if (handle_) {
      // Either never started, or ran to completion under co_await.
      CHECK(!handle_.promise().started || handle_.done());
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    InitialAwaiter initial_suspend() noexcept { return InitialAwaiter{this}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { this->exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;
  using FinalAwaiter = detail::PromiseBase::FinalAwaiter;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Reset();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Reset(); }

  bool valid() const { return static_cast<bool>(handle_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    CHECK(handle_ && !handle_.promise().started);
    handle_.promise().started = true;
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    promise_type& p = handle_.promise();
    if (p.exception) {
      std::rethrow_exception(p.exception);
    }
  }

  Handle Release() { return std::exchange(handle_, {}); }

 private:
  void Reset() {
    if (handle_) {
      CHECK(!handle_.promise().started || handle_.done());
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

}  // namespace sim

#endif  // SRC_SIM_TASK_H_
