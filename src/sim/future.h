// One-shot Future<T>/Promise<T> pair for the simulator.
//
// A Promise may be fulfilled at most once; TrySet is idempotent and reports
// whether this call won. This is the primitive behind RPC timeouts: the
// reply path and the timeout event race to TrySet the same promise, and the
// loser's value is discarded.
//
// Future and Promise share state via shared_ptr and are freely copyable.
#ifndef SRC_SIM_FUTURE_H_
#define SRC_SIM_FUTURE_H_

#include <coroutine>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/sim/simulator.h"

namespace sim {

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  explicit Promise(Simulator& simulator) : state_(std::make_shared<State>(simulator)) {}

  Future<T> GetFuture() const { return Future<T>(state_); }

  // Fulfill the promise. Returns false if it was already fulfilled (the
  // value is then dropped). Waiters are resumed through the event queue.
  bool TrySet(T value) {
    if (state_->value.has_value()) {
      return false;
    }
    state_->value.emplace(std::move(value));
    for (std::coroutine_handle<> waiter : state_->waiters) {
      state_->simulator.Ready(waiter);
    }
    state_->waiters.clear();
    return true;
  }

  void Set(T value) { CHECK(TrySet(std::move(value))); }

  bool IsSet() const { return state_->value.has_value(); }

 private:
  friend class Future<T>;
  struct State {
    explicit State(Simulator& s) : simulator(s) {}
    Simulator& simulator;
    std::optional<T> value;
    std::vector<std::coroutine_handle<>> waiters;
  };

  std::shared_ptr<State> state_;
};

template <typename T>
class [[nodiscard]] Future {
 public:
  Future() = default;

  bool await_ready() const noexcept { return state_->value.has_value(); }
  void await_suspend(std::coroutine_handle<> h) { state_->waiters.push_back(h); }
  // Futures can be awaited by several coroutines; each gets a copy.
  T await_resume() {
    CHECK(state_->value.has_value());
    return *state_->value;
  }

  bool IsSet() const { return state_->value.has_value(); }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<typename Promise<T>::State> s) : state_(std::move(s)) {}

  std::shared_ptr<typename Promise<T>::State> state_;
};

}  // namespace sim

#endif  // SRC_SIM_FUTURE_H_
