// Size-bucketed free-list recycling for coroutine frames.
//
// Every simulated activity is a Task<T> coroutine, so the allocator sees a
// steady churn of small frame allocations (an RPC round trip alone is half
// a dozen frames: the call, the handler, and a cpu.Run per cost charge).
// Frames cluster into a handful of sizes, which makes a size-class pool
// ideal: O(1) alloc/free, no malloc on the steady state, and — because the
// simulator is single-threaded by construction — no locking.
//
// Task's promise types route their frame allocation here via operator
// new/delete (see task.h). Blocks above kMaxPooledBytes fall through to the
// global allocator; pooled blocks are kept until process exit (they remain
// reachable through the class heads, so leak checkers stay quiet).
#ifndef SRC_SIM_FRAME_POOL_H_
#define SRC_SIM_FRAME_POOL_H_

#include <cstddef>
#include <new>

namespace sim {
namespace framepool {

// 64-byte classes up to 2 KB cover every coroutine frame in the repo; the
// tail of larger frames (if any appear) is rare enough for plain new.
inline constexpr size_t kClassBytes = 64;
inline constexpr size_t kMaxPooledBytes = 2048;
inline constexpr size_t kNumClasses = kMaxPooledBytes / kClassBytes;

struct FreeBlock {
  FreeBlock* next;
};

inline FreeBlock* g_free[kNumClasses] = {};

// Class index for a request of n bytes; kNumClasses if not pooled.
inline size_t ClassOf(size_t n) {
  return n == 0 ? 0 : (n + kClassBytes - 1) / kClassBytes - 1;
}

inline void* Alloc(size_t n) {
  size_t cls = ClassOf(n);
  if (cls >= kNumClasses) {
    return ::operator new(n);
  }
  FreeBlock* block = g_free[cls];
  if (block != nullptr) {
    g_free[cls] = block->next;
    return block;
  }
  return ::operator new((cls + 1) * kClassBytes);
}

inline void Free(void* p, size_t n) {
  size_t cls = ClassOf(n);
  if (cls >= kNumClasses) {
    ::operator delete(p);
    return;
  }
  auto* block = static_cast<FreeBlock*>(p);
  block->next = g_free[cls];
  g_free[cls] = block;
}

}  // namespace framepool
}  // namespace sim

#endif  // SRC_SIM_FRAME_POOL_H_
