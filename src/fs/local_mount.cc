#include "src/fs/local_mount.h"

#include <algorithm>

#include "src/base/log.h"

namespace fs {

LocalMount::LocalMount(sim::Simulator& simulator, LocalFs& fs, cache::BufferCache& cache,
                       sim::Cpu* cpu, LocalMountCosts costs)
    : simulator_(simulator), fs_(fs), cache_(cache), cpu_(cpu), costs_(costs) {
  cache::Backing backing;
  backing.fetch = [this](uint64_t fileid, uint64_t block)
      -> sim::Task<base::Result<std::vector<uint8_t>>> {
    auto it = nodes_.find(fileid);
    if (it == nodes_.end()) {
      co_return base::ErrStale();
    }
    auto rep = co_await fs_.Read(it->second->fh, block * kBlockSize, kBlockSize);
    if (!rep.ok()) {
      co_return rep.status();
    }
    co_return std::move(rep->data);
  };
  backing.store = [this](uint64_t fileid, uint64_t block,
                         std::vector<uint8_t> data) -> sim::Task<base::Result<void>> {
    auto it = nodes_.find(fileid);
    if (it == nodes_.end()) {
      co_return base::ErrStale();  // deleted before the delayed write ran
    }
    auto rep = co_await fs_.Write(it->second->fh, block * kBlockSize, data,
                                  LocalFs::WriteMode::kFlush);
    if (!rep.ok()) {
      co_return rep.status();
    }
    co_return base::OkStatus();
  };
  mount_id_ = cache_.RegisterMount(std::move(backing));
}

sim::Task<void> LocalMount::Charge(sim::Duration cost) {
  if (cpu_ != nullptr) {
    co_await cpu_->Run(cost);
  }
}

vfs::GnodeRef LocalMount::NodeFor(const proto::FileHandle& fh, const proto::Attr& attr) {
  auto it = nodes_.find(fh.fileid);
  if (it != nodes_.end() && it->second->fh == fh) {
    return it->second;
  }
  auto node = std::make_shared<vfs::Gnode>();
  node->fh = fh;
  node->attr = attr;
  nodes_[fh.fileid] = node;
  return node;
}

sim::Task<base::Result<vfs::GnodeRef>> LocalMount::Root() {
  co_await Charge(costs_.per_op);
  proto::FileHandle root = fs_.root();
  CO_ASSIGN_OR_RETURN(proto::Attr attr, fs_.GetAttr(root));
  co_return NodeFor(root, attr);
}

sim::Task<base::Result<vfs::GnodeRef>> LocalMount::Lookup(vfs::GnodeRef dir,
                                                          std::string name) {
  co_await Charge(costs_.per_op);
  CO_ASSIGN_OR_RETURN(proto::LookupRep rep, co_await fs_.Lookup(dir->fh, name));
  vfs::GnodeRef node = NodeFor(rep.fh, rep.attr);
  // Delayed writes make the gnode's size authoritative over the on-disk one.
  if (!cache_.HasDirty(mount_id_, rep.fh.fileid)) {
    node->attr = rep.attr;
  }
  co_return node;
}

sim::Task<base::Result<vfs::GnodeRef>> LocalMount::Create(vfs::GnodeRef dir,
                                                          std::string name,
                                                          bool exclusive) {
  co_await Charge(costs_.per_op);
  CO_ASSIGN_OR_RETURN(proto::CreateRep rep, co_await fs_.Create(dir->fh, name, exclusive));
  co_return NodeFor(rep.fh, rep.attr);
}

sim::Task<base::Result<vfs::GnodeRef>> LocalMount::Mkdir(vfs::GnodeRef dir,
                                                         std::string name) {
  co_await Charge(costs_.per_op);
  CO_ASSIGN_OR_RETURN(proto::CreateRep rep, co_await fs_.Mkdir(dir->fh, name));
  co_return NodeFor(rep.fh, rep.attr);
}

sim::Task<base::Result<void>> LocalMount::Open(vfs::GnodeRef node, bool write) {
  co_await Charge(costs_.per_op);
  if (write) {
    ++node->open_writes;
  } else {
    ++node->open_reads;
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> LocalMount::Close(vfs::GnodeRef node, bool write) {
  co_await Charge(costs_.per_op);
  if (write) {
    CHECK_GT(node->open_writes, 0u);
    --node->open_writes;
  } else {
    CHECK_GT(node->open_reads, 0u);
    --node->open_reads;
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<std::vector<uint8_t>>> LocalMount::Read(vfs::GnodeRef node, uint64_t offset,
                                                               uint32_t count) {
  CO_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                      co_await cache_.Read(mount_id_, node->fh.fileid, offset, count,
                                           node->attr.size, /*read_ahead=*/true));
  co_await Charge(costs_.per_op +
                  costs_.per_block * static_cast<int64_t>(1 + data.size() / kBlockSize));
  co_return data;
}

sim::Task<base::Result<void>> LocalMount::Write(vfs::GnodeRef node, uint64_t offset,
                                                std::vector<uint8_t> data) {
  co_await Charge(costs_.per_op +
                  costs_.per_block * static_cast<int64_t>(1 + data.size() / kBlockSize));
  CO_RETURN_IF_ERROR(
      co_await cache_.WriteDelayed(mount_id_, node->fh.fileid, offset, data, node->attr.size));
  node->attr.size = std::max<uint64_t>(node->attr.size, offset + data.size());
  node->attr.mtime = simulator_.Now();
  co_return base::OkStatus();
}

sim::Task<base::Result<proto::Attr>> LocalMount::GetAttr(vfs::GnodeRef node) {
  co_await Charge(costs_.per_op);
  if (cache_.HasDirty(mount_id_, node->fh.fileid)) {
    co_return node->attr;  // in-memory inode reflects delayed writes
  }
  auto attr = fs_.GetAttr(node->fh);
  if (attr.ok()) {
    // Preserve the locally tracked size if it is ahead (clean cache blocks
    // flushed but attr caching raced); sizes only grow in our workloads.
    proto::Attr merged = *attr;
    merged.size = std::max(merged.size, node->attr.size);
    node->attr = merged;
  }
  co_return node->attr;
}

sim::Task<base::Result<void>> LocalMount::Truncate(vfs::GnodeRef node, uint64_t size) {
  co_await Charge(costs_.per_op);
  cache_.CancelDirty(mount_id_, node->fh.fileid);
  cache_.InvalidateFile(mount_id_, node->fh.fileid);
  proto::SetAttrReq req;
  req.size = size;
  CO_ASSIGN_OR_RETURN(proto::Attr attr, co_await fs_.SetAttr(node->fh, req));
  node->attr = attr;
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> LocalMount::Remove(vfs::GnodeRef dir, std::string name,
                                                 vfs::GnodeRef target) {
  co_await Charge(costs_.per_op);
  // The delete-before-writeback optimization: pending delayed writes for
  // the victim never reach the disk.
  cache_.CancelDirty(mount_id_, target->fh.fileid);
  cache_.InvalidateFile(mount_id_, target->fh.fileid);
  CO_RETURN_IF_ERROR(co_await fs_.Remove(dir->fh, name));
  nodes_.erase(target->fh.fileid);
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> LocalMount::Rmdir(vfs::GnodeRef dir, std::string name) {
  co_await Charge(costs_.per_op);
  co_return co_await fs_.Rmdir(dir->fh, name);
}

sim::Task<base::Result<void>> LocalMount::Rename(vfs::GnodeRef from_dir,
                                                 std::string from_name,
                                                 vfs::GnodeRef to_dir,
                                                 std::string to_name) {
  co_await Charge(costs_.per_op);
  co_return co_await fs_.Rename(from_dir->fh, from_name, to_dir->fh, to_name);
}

sim::Task<base::Result<std::vector<proto::DirEntry>>> LocalMount::ReadDir(vfs::GnodeRef dir) {
  co_await Charge(costs_.per_op);
  std::vector<proto::DirEntry> all;
  uint64_t cookie = 0;
  while (true) {
    CO_ASSIGN_OR_RETURN(proto::ReadDirRep rep, co_await fs_.ReadDir(dir->fh, cookie, 64));
    for (auto& e : rep.entries) {
      cookie = e.cookie;
      all.push_back(std::move(e));
    }
    if (rep.eof) {
      break;
    }
  }
  co_return all;
}

sim::Task<base::Result<void>> LocalMount::Fsync(vfs::GnodeRef node) {
  co_await Charge(costs_.per_op);
  co_return co_await cache_.FlushFile(mount_id_, node->fh.fileid);
}

}  // namespace fs
