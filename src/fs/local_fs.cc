#include "src/fs/local_fs.h"

#include <algorithm>

#include "src/base/log.h"

namespace fs {

LocalFs::LocalFs(sim::Simulator& simulator, disk::Disk& disk, LocalFsParams params)
    : simulator_(simulator), disk_(disk), params_(params) {
  Inode& root = AllocInode(proto::FileType::kDirectory);
  root_ = HandleFor(root);
}

LocalFs::Inode& LocalFs::AllocInode(proto::FileType type) {
  uint64_t id = next_ino_++;
  Inode inode;
  inode.id = id;
  inode.type = type;
  inode.mtime = simulator_.Now();
  inode.ctime = simulator_.Now();
  auto [it, inserted] = inodes_.emplace(id, std::move(inode));
  CHECK(inserted);
  return it->second;
}

void LocalFs::DestroyInode(uint64_t id) {
  CacheEvictFile(id);
  inodes_.erase(id);
}

proto::FileHandle LocalFs::HandleFor(const Inode& inode) const {
  return proto::FileHandle{params_.fsid, inode.id, inode.gen};
}

proto::Attr LocalFs::AttrFor(const Inode& inode) const {
  proto::Attr attr;
  attr.type = inode.type;
  attr.size = inode.type == proto::FileType::kRegular ? inode.data.size() : inode.entries.size();
  attr.nlink = inode.nlink;
  attr.mtime = inode.mtime;
  attr.ctime = inode.ctime;
  attr.fileid = inode.id;
  return attr;
}

base::Result<LocalFs::Inode*> LocalFs::Resolve(proto::FileHandle fh) {
  if (fh.fsid != params_.fsid) {
    return base::ErrStale();
  }
  auto it = inodes_.find(fh.fileid);
  if (it == inodes_.end() || it->second.gen != fh.gen) {
    return base::ErrStale();
  }
  return &it->second;
}

base::Result<LocalFs::Inode*> LocalFs::ResolveDir(proto::FileHandle fh) {
  ASSIGN_OR_RETURN(Inode * inode, Resolve(fh));
  if (inode->type != proto::FileType::kDirectory) {
    return base::ErrNotDir();
  }
  return inode;
}

sim::Task<void> LocalFs::MetadataWrite() {
  if (params_.sync_metadata) {
    co_await disk_.Write(kBlockSize);
  }
}

// --- Server block cache (timing only) ---------------------------------------

bool LocalFs::CacheHit(uint64_t fileid, uint64_t block) {
  auto it = cache_.find(CacheKey{fileid, block});
  if (it == cache_.end()) {
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void LocalFs::CacheInsert(uint64_t fileid, uint64_t block) {
  CacheKey key{fileid, block};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  cache_[key] = lru_.begin();
  while (cache_.size() > params_.cache_blocks) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

void LocalFs::CacheEvictFile(uint64_t fileid) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first == fileid) {
      cache_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- Namespace ---------------------------------------------------------------

sim::Task<base::Result<proto::LookupRep>> LocalFs::Lookup(proto::FileHandle dir,
                                                          std::string name) {
  CO_ASSIGN_OR_RETURN(Inode * parent, ResolveDir(dir));
  auto it = parent->entries.find(name);
  if (it == parent->entries.end()) {
    co_return base::ErrNoEnt();
  }
  auto child = inodes_.find(it->second);
  CHECK(child != inodes_.end());
  proto::LookupRep rep;
  rep.fh = HandleFor(child->second);
  rep.attr = AttrFor(child->second);
  co_return rep;
}

sim::Task<base::Result<proto::CreateRep>> LocalFs::Create(proto::FileHandle dir,
                                                          std::string name,
                                                          bool exclusive) {
  CO_ASSIGN_OR_RETURN(Inode * parent, ResolveDir(dir));
  if (name.empty() || name == "." || name == "..") {
    co_return base::ErrInval();
  }
  auto it = parent->entries.find(name);
  if (it != parent->entries.end()) {
    if (exclusive) {
      co_return base::ErrExist();
    }
    Inode& existing = inodes_.at(it->second);
    if (existing.type == proto::FileType::kDirectory) {
      co_return base::ErrIsDir();
    }
    proto::CreateRep rep;
    rep.fh = HandleFor(existing);
    rep.attr = AttrFor(existing);
    co_return rep;
  }
  Inode& child = AllocInode(proto::FileType::kRegular);
  parent->entries[name] = child.id;
  parent->mtime = simulator_.Now();
  // Snapshot the reply before suspending: the entry is already visible, so a
  // concurrent Remove during the metadata write would destroy `child`.
  proto::CreateRep rep;
  rep.fh = HandleFor(child);
  rep.attr = AttrFor(child);
  co_await MetadataWrite();
  co_return rep;
}

sim::Task<base::Result<proto::CreateRep>> LocalFs::Mkdir(proto::FileHandle dir,
                                                         std::string name) {
  CO_ASSIGN_OR_RETURN(Inode * parent, ResolveDir(dir));
  if (name.empty() || parent->entries.contains(name)) {
    co_return parent->entries.contains(name) ? base::ErrExist() : base::ErrInval();
  }
  Inode& child = AllocInode(proto::FileType::kDirectory);
  child.nlink = 2;
  parent->entries[name] = child.id;
  parent->mtime = simulator_.Now();
  // Snapshot the reply before suspending: the entry is already visible, so a
  // concurrent Rmdir during the metadata write would destroy `child`.
  proto::CreateRep rep;
  rep.fh = HandleFor(child);
  rep.attr = AttrFor(child);
  co_await MetadataWrite();
  co_return rep;
}

sim::Task<base::Result<void>> LocalFs::Remove(proto::FileHandle dir, std::string name) {
  CO_ASSIGN_OR_RETURN(Inode * parent, ResolveDir(dir));
  auto it = parent->entries.find(name);
  if (it == parent->entries.end()) {
    co_return base::ErrNoEnt();
  }
  Inode& victim = inodes_.at(it->second);
  if (victim.type == proto::FileType::kDirectory) {
    co_return base::ErrIsDir();
  }
  parent->entries.erase(it);
  parent->mtime = simulator_.Now();
  DestroyInode(victim.id);
  co_await MetadataWrite();
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> LocalFs::Rmdir(proto::FileHandle dir, std::string name) {
  CO_ASSIGN_OR_RETURN(Inode * parent, ResolveDir(dir));
  auto it = parent->entries.find(name);
  if (it == parent->entries.end()) {
    co_return base::ErrNoEnt();
  }
  Inode& victim = inodes_.at(it->second);
  if (victim.type != proto::FileType::kDirectory) {
    co_return base::ErrNotDir();
  }
  if (!victim.entries.empty()) {
    co_return base::ErrNotEmpty();
  }
  parent->entries.erase(it);
  parent->mtime = simulator_.Now();
  DestroyInode(victim.id);
  co_await MetadataWrite();
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> LocalFs::Rename(proto::FileHandle from_dir,
                                              std::string from_name,
                                              proto::FileHandle to_dir,
                                              std::string to_name) {
  CO_ASSIGN_OR_RETURN(Inode * src, ResolveDir(from_dir));
  CO_ASSIGN_OR_RETURN(Inode * dst, ResolveDir(to_dir));
  auto it = src->entries.find(from_name);
  if (it == src->entries.end()) {
    co_return base::ErrNoEnt();
  }
  uint64_t moving = it->second;
  auto existing = dst->entries.find(to_name);
  if (existing != dst->entries.end() && existing->second != moving) {
    Inode& victim = inodes_.at(existing->second);
    if (victim.type == proto::FileType::kDirectory) {
      if (!victim.entries.empty()) {
        co_return base::ErrNotEmpty();
      }
    }
    DestroyInode(victim.id);
  }
  src->entries.erase(it);
  dst->entries[to_name] = moving;
  src->mtime = simulator_.Now();
  dst->mtime = simulator_.Now();
  co_await MetadataWrite();
  co_return base::OkStatus();
}

sim::Task<base::Result<proto::ReadDirRep>> LocalFs::ReadDir(proto::FileHandle dir, uint64_t cookie,
                                                            uint32_t count) {
  CO_ASSIGN_OR_RETURN(Inode * parent, ResolveDir(dir));
  proto::ReadDirRep rep;
  uint64_t index = 0;
  for (const auto& [name, ino] : parent->entries) {
    if (index++ < cookie) {
      continue;
    }
    if (rep.entries.size() >= count) {
      rep.eof = false;
      co_return rep;
    }
    proto::DirEntry entry;
    entry.fileid = ino;
    entry.name = name;
    entry.cookie = index;
    rep.entries.push_back(std::move(entry));
  }
  rep.eof = true;
  co_return rep;
}

// --- Attributes --------------------------------------------------------------

base::Result<proto::Attr> LocalFs::GetAttr(proto::FileHandle fh) {
  ASSIGN_OR_RETURN(Inode * inode, Resolve(fh));
  return AttrFor(*inode);
}

sim::Task<base::Result<proto::Attr>> LocalFs::SetAttr(proto::FileHandle fh,
                                                      proto::SetAttrReq req) {
  CO_ASSIGN_OR_RETURN(Inode * inode, Resolve(fh));
  if (req.size.has_value()) {
    if (inode->type != proto::FileType::kRegular) {
      co_return base::ErrIsDir();
    }
    inode->data.resize(*req.size);
    inode->mtime = simulator_.Now();
    CacheEvictFile(inode->id);
    co_await MetadataWrite();
    // The inode may have been deleted while we were waiting on the disk.
    CO_ASSIGN_OR_RETURN(inode, Resolve(fh));
  }
  if (req.mtime.has_value()) {
    inode->mtime = *req.mtime;
  }
  inode->ctime = simulator_.Now();
  co_return AttrFor(*inode);
}

// --- Data --------------------------------------------------------------------

sim::Task<base::Result<proto::ReadRep>> LocalFs::Read(proto::FileHandle fh, uint64_t offset,
                                                      uint32_t count) {
  CO_ASSIGN_OR_RETURN(Inode * inode, Resolve(fh));
  if (inode->type != proto::FileType::kRegular) {
    co_return base::ErrIsDir();
  }
  proto::ReadRep rep;
  uint64_t size = inode->data.size();
  uint64_t end = std::min<uint64_t>(size, offset + count);
  // Charge disk time for blocks missing from the server cache.
  if (offset < end) {
    uint64_t first_block = offset / kBlockSize;
    uint64_t last_block = (end - 1) / kBlockSize;
    // Copy the id out of the inode: each ReadBlock suspends, and the inode
    // can be destroyed by a concurrent Remove while the disk is busy.
    uint64_t fileid = inode->id;
    for (uint64_t b = first_block; b <= last_block; ++b) {
      if (!CacheHit(fileid, b)) {
        co_await disk_.ReadBlock(fileid, b, kBlockSize);
        CacheInsert(fileid, b);
      }
    }
    // The inode may have been deleted while we were waiting on the disk.
    CO_ASSIGN_OR_RETURN(inode, Resolve(fh));
    size = inode->data.size();
    end = std::min<uint64_t>(size, offset + count);
  }
  if (offset < end) {
    rep.data.assign(inode->data.begin() + static_cast<int64_t>(offset),
                    inode->data.begin() + static_cast<int64_t>(end));
  }
  rep.eof = offset + rep.data.size() >= size;
  rep.attr = AttrFor(*inode);
  co_return rep;
}

sim::Task<base::Result<proto::Attr>> LocalFs::Write(proto::FileHandle fh, uint64_t offset,
                                                    std::vector<uint8_t> data,
                                                    WriteMode mode) {
  CO_ASSIGN_OR_RETURN(Inode * inode, Resolve(fh));
  if (inode->type != proto::FileType::kRegular) {
    co_return base::ErrIsDir();
  }
  uint64_t fileid = inode->id;
  if (mode != WriteMode::kMemory && !data.empty()) {
    uint64_t first_block = offset / kBlockSize;
    uint64_t last_block = (offset + data.size() - 1) / kBlockSize;
    for (uint64_t b = first_block; b <= last_block; ++b) {
      co_await disk_.WriteBlock(fileid, b, kBlockSize);
      CacheInsert(fileid, b);
    }
    if (mode == WriteMode::kSync) {
      // Stable-storage contract: the inode update goes out with the data.
      co_await disk_.Write(512);
    }
    // Re-resolve: the file may have been removed while the disk was busy.
    CO_ASSIGN_OR_RETURN(inode, Resolve(fh));
  }
  if (offset + data.size() > inode->data.size()) {
    inode->data.resize(offset + data.size());
  }
  std::copy(data.begin(), data.end(), inode->data.begin() + static_cast<int64_t>(offset));
  inode->mtime = simulator_.Now();
  if (mode == WriteMode::kMemory) {
    // Data arrived in memory only; blocks are resident in the cache for
    // subsequent reads.
    uint64_t first_block = offset / kBlockSize;
    uint64_t last_block = data.empty() ? first_block : (offset + data.size() - 1) / kBlockSize;
    for (uint64_t b = first_block; b <= last_block; ++b) {
      CacheInsert(inode->id, b);
    }
  }
  co_return AttrFor(*inode);
}

// --- SNFS version support ------------------------------------------------------

base::Result<uint64_t> LocalFs::Version(proto::FileHandle fh) {
  ASSIGN_OR_RETURN(Inode * inode, Resolve(fh));
  return inode->version;
}

base::Result<uint64_t> LocalFs::BumpVersion(proto::FileHandle fh) {
  ASSIGN_OR_RETURN(Inode * inode, Resolve(fh));
  return ++inode->version;
}

}  // namespace fs
