// LocalMount: the local-disk configuration — LocalFs mounted directly on a
// machine through the shared buffer cache with the traditional Unix delayed
// write policy (data blocks age in the cache; /etc/update syncs them every
// 30 s; deleting a file cancels its pending writes; namespace operations
// write metadata synchronously).
//
// This is the "local" column of the paper's tables.
#ifndef SRC_FS_LOCAL_MOUNT_H_
#define SRC_FS_LOCAL_MOUNT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/fs/local_fs.h"
#include "src/sim/cpu.h"
#include "src/vfs/vfs.h"

namespace fs {

struct LocalMountCosts {
  sim::Duration per_op = sim::Usec(150);     // syscall + namei component work
  sim::Duration per_block = sim::Usec(80);   // copyin/copyout per data block
};

class LocalMount : public vfs::FileSystem {
 public:
  // `cpu` may be null (no compute charged, e.g. in unit tests).
  LocalMount(sim::Simulator& simulator, LocalFs& fs, cache::BufferCache& cache, sim::Cpu* cpu,
             LocalMountCosts costs = {});

  sim::Task<base::Result<vfs::GnodeRef>> Root() override;
  sim::Task<base::Result<vfs::GnodeRef>> Lookup(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<vfs::GnodeRef>> Create(vfs::GnodeRef dir, std::string name,
                                                bool exclusive) override;
  sim::Task<base::Result<vfs::GnodeRef>> Mkdir(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<void>> Open(vfs::GnodeRef node, bool write) override;
  sim::Task<base::Result<void>> Close(vfs::GnodeRef node, bool write) override;
  sim::Task<base::Result<std::vector<uint8_t>>> Read(vfs::GnodeRef node, uint64_t offset,
                                                     uint32_t count) override;
  sim::Task<base::Result<void>> Write(vfs::GnodeRef node, uint64_t offset,
                                      std::vector<uint8_t> data) override;
  sim::Task<base::Result<proto::Attr>> GetAttr(vfs::GnodeRef node) override;
  sim::Task<base::Result<void>> Truncate(vfs::GnodeRef node, uint64_t size) override;
  sim::Task<base::Result<void>> Remove(vfs::GnodeRef dir, std::string name,
                                       vfs::GnodeRef target) override;
  sim::Task<base::Result<void>> Rmdir(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<void>> Rename(vfs::GnodeRef from_dir, std::string from_name,
                                       vfs::GnodeRef to_dir, std::string to_name) override;
  sim::Task<base::Result<std::vector<proto::DirEntry>>> ReadDir(vfs::GnodeRef dir) override;
  sim::Task<base::Result<void>> Fsync(vfs::GnodeRef node) override;

  cache::BufferCache& buffer_cache() { return cache_; }
  int mount_id() const { return mount_id_; }

 private:
  vfs::GnodeRef NodeFor(const proto::FileHandle& fh, const proto::Attr& attr);
  sim::Task<void> Charge(sim::Duration cost);

  sim::Simulator& simulator_;
  LocalFs& fs_;
  cache::BufferCache& cache_;
  sim::Cpu* cpu_;
  LocalMountCosts costs_;
  int mount_id_;
  std::unordered_map<uint64_t, vfs::GnodeRef> nodes_;
};

}  // namespace fs

#endif  // SRC_FS_LOCAL_MOUNT_H_
