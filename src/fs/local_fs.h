// LocalFs: an in-memory Unix-like file system over a simulated disk.
//
// This is the substrate under every configuration: NFS and SNFS servers
// translate RPCs into LocalFs operations (as the Ultrix server code
// "simply translates RPC requests into GFS operations"), and the
// local-disk benchmark configurations mount it directly.
//
// Timing model (FFS-vintage):
//  * data reads go through a block-presence LRU ("server buffer cache");
//    misses cost a disk read;
//  * data writes cost a synchronous disk write when `sync` is set (the NFS
//    server requirement) and otherwise only update memory (the caller — a
//    client buffer cache — owns delay/flush policy);
//  * namespace operations (create/remove/rename/mkdir/rmdir/truncate)
//    perform a synchronous structural (metadata) disk write, which is why
//    even a "never writes data" workload still pays some disk time
//    (paper §5.4).
#ifndef SRC_FS_LOCAL_FS_H_
#define SRC_FS_LOCAL_FS_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/disk/disk.h"
#include "src/proto/messages.h"
#include "src/proto/types.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace fs {

inline constexpr uint32_t kBlockSize = 4096;  // the paper's test block size

struct LocalFsParams {
  uint32_t fsid = 1;
  // Server buffer cache size in blocks (paper: ~3.5 MB on the server).
  size_t cache_blocks = 896;
  bool sync_metadata = true;  // FFS-style synchronous structural writes
};

class LocalFs {
 public:
  LocalFs(sim::Simulator& simulator, disk::Disk& disk, LocalFsParams params = {});

  LocalFs(const LocalFs&) = delete;
  LocalFs& operator=(const LocalFs&) = delete;

  uint32_t fsid() const { return params_.fsid; }
  proto::FileHandle root() const { return root_; }

  // --- Namespace operations -------------------------------------------------
  sim::Task<base::Result<proto::LookupRep>> Lookup(proto::FileHandle dir, std::string name);
  sim::Task<base::Result<proto::CreateRep>> Create(proto::FileHandle dir, std::string name,
                                                   bool exclusive);
  sim::Task<base::Result<proto::CreateRep>> Mkdir(proto::FileHandle dir, std::string name);
  sim::Task<base::Result<void>> Remove(proto::FileHandle dir, std::string name);
  sim::Task<base::Result<void>> Rmdir(proto::FileHandle dir, std::string name);
  sim::Task<base::Result<void>> Rename(proto::FileHandle from_dir, std::string from_name,
                                       proto::FileHandle to_dir, std::string to_name);
  sim::Task<base::Result<proto::ReadDirRep>> ReadDir(proto::FileHandle dir, uint64_t cookie,
                                                     uint32_t count);

  // --- Attributes -----------------------------------------------------------
  base::Result<proto::Attr> GetAttr(proto::FileHandle fh);
  sim::Task<base::Result<proto::Attr>> SetAttr(proto::FileHandle fh, proto::SetAttrReq req);

  // How a write is charged against the disk.
  enum class WriteMode {
    // Stable write as the NFS server must perform per write RPC: each data
    // block at full positioning cost plus one synchronous metadata (inode)
    // update per call.
    kSync,
    // Background flush of delayed blocks (local FS / server write-behind):
    // positional block writes that benefit from sequential clustering, no
    // per-call metadata write.
    kFlush,
    // Memory only (population helpers, data handed over asynchronously);
    // no disk time charged.
    kMemory,
  };

  // --- Data -----------------------------------------------------------------
  // Read up to `count` bytes; reads past EOF return what exists (eof set).
  sim::Task<base::Result<proto::ReadRep>> Read(proto::FileHandle fh, uint64_t offset,
                                               uint32_t count);
  sim::Task<base::Result<proto::Attr>> Write(proto::FileHandle fh, uint64_t offset,
                                             std::vector<uint8_t> data, WriteMode mode);

  // --- SNFS version support -------------------------------------------------
  // The version number lives with the file (as Sprite keeps it on stable
  // storage; the paper's global-counter shortcut is noted in §4.3.3 as
  // "suitable only for experimental use").
  base::Result<uint64_t> Version(proto::FileHandle fh);
  base::Result<uint64_t> BumpVersion(proto::FileHandle fh);  // returns the new version

  // Number of live inodes (tests).
  size_t inode_count() const { return inodes_.size(); }

  disk::Disk& disk() { return disk_; }

 private:
  struct Inode {
    uint64_t id = 0;
    uint32_t gen = 0;
    proto::FileType type = proto::FileType::kRegular;
    std::vector<uint8_t> data;                    // regular files
    std::map<std::string, uint64_t> entries;      // directories (sorted for readdir)
    uint32_t nlink = 1;
    sim::Time mtime = 0;
    sim::Time ctime = 0;
    uint64_t version = 1;
  };

  base::Result<Inode*> Resolve(proto::FileHandle fh);
  base::Result<Inode*> ResolveDir(proto::FileHandle fh);
  proto::FileHandle HandleFor(const Inode& inode) const;
  proto::Attr AttrFor(const Inode& inode) const;
  Inode& AllocInode(proto::FileType type);  // lint: unstable-source
  void DestroyInode(uint64_t id);

  // Structural (metadata) write: synchronous when params_.sync_metadata.
  sim::Task<void> MetadataWrite();

  // Block-presence server cache (timing only; data lives in the inode).
  bool CacheHit(uint64_t fileid, uint64_t block);
  void CacheInsert(uint64_t fileid, uint64_t block);
  void CacheEvictFile(uint64_t fileid);

  sim::Simulator& simulator_;
  disk::Disk& disk_;
  LocalFsParams params_;
  proto::FileHandle root_;
  uint64_t next_ino_ = 1;
  std::unordered_map<uint64_t, Inode> inodes_;

  using CacheKey = std::pair<uint64_t, uint64_t>;
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return std::hash<uint64_t>()(k.first * 1000003ULL + k.second);
    }
  };
  std::list<CacheKey> lru_;  // front = most recent
  std::unordered_map<CacheKey, std::list<CacheKey>::iterator, CacheKeyHash> cache_;
};

}  // namespace fs

#endif  // SRC_FS_LOCAL_FS_H_
