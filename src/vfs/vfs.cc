#include "src/vfs/vfs.h"

#include <algorithm>

#include "src/base/log.h"

namespace vfs {

void Vfs::Mount(const std::string& path, FileSystem* fs) {
  CHECK(fs != nullptr);
  CHECK(!path.empty() && path[0] == '/');
  std::string prefix = path;
  while (prefix.size() > 1 && prefix.back() == '/') {
    prefix.pop_back();
  }
  mounts_.push_back(MountPoint{prefix, fs});
  // Longest prefix first for resolution.
  std::sort(mounts_.begin(), mounts_.end(),
            [](const MountPoint& a, const MountPoint& b) { return a.prefix.size() > b.prefix.size(); });
}

std::vector<std::string> Vfs::SplitComponents(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      parts.emplace_back(path.substr(start, i - start));
    }
  }
  return parts;
}

base::Result<Vfs::MountPoint*> Vfs::FindMount(const std::string& path, std::string* rest) {
  if (path.empty() || path[0] != '/') {
    return base::ErrInval();
  }
  for (MountPoint& m : mounts_) {
    if (m.prefix == "/") {
      *rest = path;
      return &m;
    }
    if (path.size() >= m.prefix.size() && path.compare(0, m.prefix.size(), m.prefix) == 0 &&
        (path.size() == m.prefix.size() || path[m.prefix.size()] == '/')) {
      *rest = path.substr(m.prefix.size());
      return &m;
    }
  }
  return base::ErrNoEnt();
}

sim::Task<base::Result<Vfs::Resolved>> Vfs::ResolvePath(std::string path) {
  std::string rest;
  CO_ASSIGN_OR_RETURN(MountPoint * mount, FindMount(path, &rest));
  // Copy the filesystem pointer out of the mount entry before suspending: a
  // Mount() while we walk the path would grow mounts_ and move its elements.
  FileSystem* fs = mount->fs;
  CO_ASSIGN_OR_RETURN(GnodeRef node, co_await fs->Root());
  for (const std::string& comp : SplitComponents(rest)) {
    CO_ASSIGN_OR_RETURN(node, co_await fs->Lookup(node, comp));
  }
  co_return Resolved{fs, std::move(node)};
}

sim::Task<base::Result<Vfs::ResolvedParent>> Vfs::ResolveParent(std::string path) {
  std::string rest;
  CO_ASSIGN_OR_RETURN(MountPoint * mount, FindMount(path, &rest));
  std::vector<std::string> comps = SplitComponents(rest);
  if (comps.empty()) {
    co_return base::ErrInval();  // operating on a mount root
  }
  // Copy the filesystem pointer out of the mount entry before suspending
  // (see ResolvePath).
  FileSystem* fs = mount->fs;
  CO_ASSIGN_OR_RETURN(GnodeRef node, co_await fs->Root());
  for (size_t i = 0; i + 1 < comps.size(); ++i) {
    CO_ASSIGN_OR_RETURN(node, co_await fs->Lookup(node, comps[i]));
  }
  co_return ResolvedParent{fs, std::move(node), comps.back()};
}

base::Result<Vfs::FdEntry*> Vfs::GetFd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return base::ErrBadFd();
  }
  return &it->second;
}

sim::Task<base::Result<int>> Vfs::Open(std::string path, OpenFlags flags) {
  CO_ASSIGN_OR_RETURN(ResolvedParent parent, co_await ResolveParent(path));
  GnodeRef node;
  auto lookup = co_await parent.fs->Lookup(parent.dir, parent.leaf);
  if (lookup.ok()) {
    if (flags.create && flags.exclusive) {
      co_return base::ErrExist();
    }
    node = std::move(*lookup);
    if (node->attr.type == proto::FileType::kDirectory && flags.write) {
      co_return base::ErrIsDir();
    }
  } else if (lookup.status() == base::ErrNoEnt() && flags.create) {
    CO_ASSIGN_OR_RETURN(node, co_await parent.fs->Create(parent.dir, parent.leaf,
                                                         flags.exclusive));
  } else {
    co_return lookup.status();
  }

  CO_RETURN_IF_ERROR(co_await parent.fs->Open(node, flags.write));
  if (flags.truncate && flags.write && node->attr.size > 0) {
    auto trunc = co_await parent.fs->Truncate(node, 0);
    if (!trunc.ok()) {
      (void)co_await parent.fs->Close(node, flags.write);
      co_return trunc.status();
    }
  }

  int fd = next_fd_++;
  fds_[fd] = FdEntry{parent.fs, std::move(node), 0, flags.write};
  co_return fd;
}

sim::Task<base::Result<void>> Vfs::Close(int fd) {
  CO_ASSIGN_OR_RETURN(FdEntry * entry, GetFd(fd));
  FileSystem* fs = entry->fs;
  GnodeRef node = entry->node;
  bool write = entry->write;
  fds_.erase(fd);
  co_return co_await fs->Close(node, write);
}

sim::Task<base::Result<std::vector<uint8_t>>> Vfs::Read(int fd, uint32_t count) {
  CO_ASSIGN_OR_RETURN(FdEntry * entry, GetFd(fd));
  uint64_t offset = entry->offset;
  CO_ASSIGN_OR_RETURN(std::vector<uint8_t> data, co_await entry->fs->Read(entry->node, offset, count));
  // Refetch: the fd table may have rehashed while the read was suspended.
  CO_ASSIGN_OR_RETURN(entry, GetFd(fd));
  entry->offset = offset + data.size();
  co_return data;
}

sim::Task<base::Result<void>> Vfs::Write(int fd, std::vector<uint8_t> data) {
  CO_ASSIGN_OR_RETURN(FdEntry * entry, GetFd(fd));
  if (!entry->write) {
    co_return base::ErrAccess();
  }
  uint64_t offset = entry->offset;
  CO_RETURN_IF_ERROR(co_await entry->fs->Write(entry->node, offset, data));
  CO_ASSIGN_OR_RETURN(entry, GetFd(fd));
  entry->offset = offset + data.size();
  co_return base::OkStatus();
}

sim::Task<base::Result<std::vector<uint8_t>>> Vfs::Pread(int fd, uint64_t offset, uint32_t count) {
  CO_ASSIGN_OR_RETURN(FdEntry * entry, GetFd(fd));
  co_return co_await entry->fs->Read(entry->node, offset, count);
}

sim::Task<base::Result<void>> Vfs::Pwrite(int fd, uint64_t offset,
                                          std::vector<uint8_t> data) {
  CO_ASSIGN_OR_RETURN(FdEntry * entry, GetFd(fd));
  if (!entry->write) {
    co_return base::ErrAccess();
  }
  co_return co_await entry->fs->Write(entry->node, offset, data);
}

base::Result<uint64_t> Vfs::Seek(int fd, uint64_t offset) {
  ASSIGN_OR_RETURN(FdEntry * entry, GetFd(fd));
  entry->offset = offset;
  return offset;
}

sim::Task<base::Result<proto::Attr>> Vfs::Stat(std::string path) {
  CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolvePath(path));
  co_return co_await r.fs->GetAttr(r.node);
}

sim::Task<base::Result<proto::Attr>> Vfs::Fstat(int fd) {
  CO_ASSIGN_OR_RETURN(FdEntry * entry, GetFd(fd));
  co_return co_await entry->fs->GetAttr(entry->node);
}

sim::Task<base::Result<void>> Vfs::Unlink(std::string path) {
  CO_ASSIGN_OR_RETURN(ResolvedParent parent, co_await ResolveParent(path));
  // namei resolves the victim on the way to the unlink (this is how the
  // client learns the fileid whose delayed writes it can cancel).
  CO_ASSIGN_OR_RETURN(GnodeRef target, co_await parent.fs->Lookup(parent.dir, parent.leaf));
  co_return co_await parent.fs->Remove(parent.dir, parent.leaf, std::move(target));
}

sim::Task<base::Result<void>> Vfs::MkdirPath(std::string path) {
  CO_ASSIGN_OR_RETURN(ResolvedParent parent, co_await ResolveParent(path));
  auto made = co_await parent.fs->Mkdir(parent.dir, parent.leaf);
  if (!made.ok()) {
    co_return made.status();
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> Vfs::RmdirPath(std::string path) {
  CO_ASSIGN_OR_RETURN(ResolvedParent parent, co_await ResolveParent(path));
  co_return co_await parent.fs->Rmdir(parent.dir, parent.leaf);
}

sim::Task<base::Result<void>> Vfs::Rename(std::string from, std::string to) {
  CO_ASSIGN_OR_RETURN(ResolvedParent src, co_await ResolveParent(from));
  CO_ASSIGN_OR_RETURN(ResolvedParent dst, co_await ResolveParent(to));
  if (src.fs != dst.fs) {
    // Cross-mount (and therefore cross-shard) rename cannot be done as one
    // namespace operation; surface the Unix EXDEV error rather than
    // silently misrouting the rename to one of the two file systems.
    co_return base::ErrXDev();
  }
  co_return co_await src.fs->Rename(src.dir, src.leaf, dst.dir, dst.leaf);
}

sim::Task<base::Result<std::vector<proto::DirEntry>>> Vfs::ReadDir(std::string path) {
  CO_ASSIGN_OR_RETURN(Resolved r, co_await ResolvePath(path));
  co_return co_await r.fs->ReadDir(r.node);
}

sim::Task<base::Result<void>> Vfs::Fsync(int fd) {
  CO_ASSIGN_OR_RETURN(FdEntry * entry, GetFd(fd));
  co_return co_await entry->fs->Fsync(entry->node);
}

sim::Task<base::Result<std::vector<uint8_t>>> Vfs::ReadFile(std::string path,
                                                            uint32_t chunk) {
  CO_ASSIGN_OR_RETURN(int fd, co_await Open(path, OpenFlags::ReadOnly()));
  std::vector<uint8_t> out;
  while (true) {
    auto data = co_await Read(fd, chunk);
    if (!data.ok()) {
      (void)co_await Close(fd);
      co_return data.status();
    }
    if (data->empty()) {
      break;
    }
    out.insert(out.end(), data->begin(), data->end());
  }
  CO_RETURN_IF_ERROR(co_await Close(fd));
  co_return out;
}

sim::Task<base::Result<void>> Vfs::WriteFile(std::string path,
                                             std::vector<uint8_t> data, uint32_t chunk) {
  CO_ASSIGN_OR_RETURN(int fd, co_await Open(path, OpenFlags::WriteCreate()));
  uint64_t offset = 0;
  while (offset < data.size()) {
    uint64_t n = std::min<uint64_t>(chunk, data.size() - offset);
    std::vector<uint8_t> slice(data.begin() + static_cast<int64_t>(offset),
                               data.begin() + static_cast<int64_t>(offset + n));
    auto written = co_await Write(fd, slice);
    if (!written.ok()) {
      (void)co_await Close(fd);
      co_return written.status();
    }
    offset += n;
  }
  co_return co_await Close(fd);
}

}  // namespace vfs
