// The GFS-style vnode layer: a file-system-independent syscall API.
//
// Vfs owns the mount table, per-process-style file descriptors, and
// component-at-a-time path resolution (each component of a remote path
// costs one lookup RPC — the paper observes "roughly half of the RPC calls
// are file name lookups", and reproducing that ratio requires resolving
// names the way Ultrix did).
//
// Each mounted file system implements the FileSystem interface with its own
// Gnode subclass; gnodes are shared machine-wide per (mount, fileid), which
// is what lets the SNFS client keep one per-file consistency state no
// matter how many simulated processes have the file open.
#ifndef SRC_VFS_VFS_H_
#define SRC_VFS_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/proto/messages.h"
#include "src/proto/types.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace vfs {

// In-memory node, one per active file per mount (the Ultrix "gnode").
// Protocol clients subclass this to hang their per-file state off it.
class Gnode {
 public:
  virtual ~Gnode() = default;

  proto::FileHandle fh;
  proto::Attr attr;        // most recently known attributes
  uint32_t open_reads = 0;   // local (this-machine) open counts
  uint32_t open_writes = 0;
};

using GnodeRef = std::shared_ptr<Gnode>;

struct OpenFlags {
  bool write = false;
  bool create = false;
  bool truncate = false;
  bool exclusive = false;

  static OpenFlags ReadOnly() { return {}; }
  static OpenFlags WriteCreate() { return {.write = true, .create = true, .truncate = true}; }
  static OpenFlags ReadWrite() { return {.write = true}; }
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual sim::Task<base::Result<GnodeRef>> Root() = 0;
  virtual sim::Task<base::Result<GnodeRef>> Lookup(GnodeRef dir, std::string name) = 0;
  virtual sim::Task<base::Result<GnodeRef>> Create(GnodeRef dir, std::string name,
                                                   bool exclusive) = 0;
  virtual sim::Task<base::Result<GnodeRef>> Mkdir(GnodeRef dir, std::string name) = 0;

  // Consistency actions at open/close time (NFS: getattr probe / flush +
  // possibly invalidate; SNFS: open / close RPCs).
  virtual sim::Task<base::Result<void>> Open(GnodeRef node, bool write) = 0;
  virtual sim::Task<base::Result<void>> Close(GnodeRef node, bool write) = 0;

  virtual sim::Task<base::Result<std::vector<uint8_t>>> Read(GnodeRef node, uint64_t offset,
                                                             uint32_t count) = 0;
  virtual sim::Task<base::Result<void>> Write(GnodeRef node, uint64_t offset,
                                              std::vector<uint8_t> data) = 0;

  virtual sim::Task<base::Result<proto::Attr>> GetAttr(GnodeRef node) = 0;
  virtual sim::Task<base::Result<void>> Truncate(GnodeRef node, uint64_t size) = 0;

  // `target` is the already-resolved victim (namei resolves it on the way
  // to the syscall); protocols use it to cancel delayed writes.
  virtual sim::Task<base::Result<void>> Remove(GnodeRef dir, std::string name,
                                               GnodeRef target) = 0;
  virtual sim::Task<base::Result<void>> Rmdir(GnodeRef dir, std::string name) = 0;
  virtual sim::Task<base::Result<void>> Rename(GnodeRef from_dir, std::string from_name,
                                               GnodeRef to_dir, std::string to_name) = 0;
  virtual sim::Task<base::Result<std::vector<proto::DirEntry>>> ReadDir(GnodeRef dir) = 0;

  // Force dirty data to stable storage (fsync / explicit flush).
  virtual sim::Task<base::Result<void>> Fsync(GnodeRef node) = 0;
};

class Vfs {
 public:
  explicit Vfs(sim::Simulator& simulator) : simulator_(simulator) {}

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // Mount `fs` at `path` ("/" or "/data" or "/usr/tmp", ...). Resolution
  // picks the longest matching mount prefix, so nested mounts work.
  void Mount(const std::string& path, FileSystem* fs);

  // --- Unix-flavoured syscalls ----------------------------------------------
  sim::Task<base::Result<int>> Open(std::string path, OpenFlags flags);
  sim::Task<base::Result<void>> Close(int fd);
  // Sequential read/write advancing the fd offset.
  sim::Task<base::Result<std::vector<uint8_t>>> Read(int fd, uint32_t count);
  sim::Task<base::Result<void>> Write(int fd, std::vector<uint8_t> data);
  // Positional forms.
  sim::Task<base::Result<std::vector<uint8_t>>> Pread(int fd, uint64_t offset, uint32_t count);
  sim::Task<base::Result<void>> Pwrite(int fd, uint64_t offset, std::vector<uint8_t> data);
  base::Result<uint64_t> Seek(int fd, uint64_t offset);
  sim::Task<base::Result<proto::Attr>> Stat(std::string path);
  sim::Task<base::Result<proto::Attr>> Fstat(int fd);
  sim::Task<base::Result<void>> Unlink(std::string path);
  sim::Task<base::Result<void>> MkdirPath(std::string path);
  sim::Task<base::Result<void>> RmdirPath(std::string path);
  sim::Task<base::Result<void>> Rename(std::string from, std::string to);
  sim::Task<base::Result<std::vector<proto::DirEntry>>> ReadDir(std::string path);
  sim::Task<base::Result<void>> Fsync(int fd);

  // Convenience: read/write a whole file through open/loop/close, with the
  // caller's preferred I/O chunk size (defaults to one block).
  sim::Task<base::Result<std::vector<uint8_t>>> ReadFile(std::string path,
                                                         uint32_t chunk = 4096);
  sim::Task<base::Result<void>> WriteFile(std::string path,
                                          std::vector<uint8_t> data, uint32_t chunk = 4096);

  int open_fd_count() const { return static_cast<int>(fds_.size()); }

 private:
  struct MountPoint {
    std::string prefix;  // normalized, no trailing slash except "/"
    FileSystem* fs;
  };
  struct FdEntry {
    FileSystem* fs = nullptr;
    GnodeRef node;
    uint64_t offset = 0;
    bool write = false;
  };
  struct Resolved {
    FileSystem* fs = nullptr;
    GnodeRef node;
  };
  struct ResolvedParent {
    FileSystem* fs = nullptr;
    GnodeRef dir;
    std::string leaf;
  };

  // Longest-prefix mount match; returns remaining components.
  base::Result<MountPoint*> FindMount(const std::string& path, std::string* rest);
  sim::Task<base::Result<Resolved>> ResolvePath(std::string path);
  sim::Task<base::Result<ResolvedParent>> ResolveParent(std::string path);
  base::Result<FdEntry*> GetFd(int fd);

  static std::vector<std::string> SplitComponents(std::string_view path);

  sim::Simulator& simulator_;
  std::vector<MountPoint> mounts_;
  std::unordered_map<int, FdEntry> fds_;
  int next_fd_ = 3;
};

}  // namespace vfs

#endif  // SRC_VFS_VFS_H_
