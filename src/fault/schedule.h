// FaultSchedule: a declarative script of crash/restart points for the
// machines in a testbed, at exact simulated times. The schedule itself is
// pure data (so it can live below the testbed in the dependency graph);
// testbed::Rig and the fault sweep driver interpret it against real
// machines, including "crash mid-RPC-handler" via rpc::Peer's worker hook.
#ifndef SRC_FAULT_SCHEDULE_H_
#define SRC_FAULT_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace fault {

enum class FaultEventKind : uint8_t {
  kCrashServer,           // server host down, peer shutdown, state lost
  kRebootServer,          // server host up, epoch bump, recovery grace
  kCrashClient,           // client host down, daemons stopped
  kRestartClient,         // client host up, daemons restarted
  kCrashServerInHandler,  // crash the server from inside the next RPC
                          // handler dispatched at/after `at` (worker hook)
};

struct FaultEvent {
  sim::Time at = 0;
  FaultEventKind kind = FaultEventKind::kCrashServer;
  int client = 0;  // which client machine, for the client events
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  // Builder-style helpers so schedules read as scripts:
  //   FaultSchedule s;
  //   s.CrashServerAt(sim::Sec(3)).RebootServerAt(sim::Sec(5));
  FaultSchedule& CrashServerAt(sim::Time at) {
    events.push_back({at, FaultEventKind::kCrashServer, 0});
    return *this;
  }
  FaultSchedule& RebootServerAt(sim::Time at) {
    events.push_back({at, FaultEventKind::kRebootServer, 0});
    return *this;
  }
  FaultSchedule& CrashClientAt(sim::Time at, int client = 0) {
    events.push_back({at, FaultEventKind::kCrashClient, client});
    return *this;
  }
  FaultSchedule& RestartClientAt(sim::Time at, int client = 0) {
    events.push_back({at, FaultEventKind::kRestartClient, client});
    return *this;
  }
  FaultSchedule& CrashServerInHandlerAt(sim::Time at) {
    events.push_back({at, FaultEventKind::kCrashServerInHandler, 0});
    return *this;
  }

  bool empty() const { return events.empty(); }
};

}  // namespace fault

#endif  // SRC_FAULT_SCHEDULE_H_
