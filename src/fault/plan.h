// Deterministic fault injection for the simulated network (ROADMAP:
// "handles as many scenarios as you can imagine").
//
// A FaultPlan is a declarative description of link-level misbehaviour:
// seeded per-link loss, packet duplication, bounded reordering (extra
// delivery jitter), and host-pair partitions with scheduled heal times.
// The Network consults a FaultInjector built from the plan on every Send;
// a null plan leaves the zero-fault fast path untouched, byte-identical
// to a network built without one.
//
// Determinism: the injector owns its own Rng (seeded from the plan), so
// enabling faults never perturbs the Network's pre-existing loss stream,
// and the same (plan, workload) pair replays the same fault sequence.
#ifndef SRC_FAULT_PLAN_H_
#define SRC_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace fault {

inline constexpr sim::Time kNever = std::numeric_limits<sim::Time>::max();

// Faults applied to packets from `src` to `dst`; -1 is a wildcard matching
// any host. The first matching rule wins; packets matching no rule use the
// plan-wide defaults.
struct LinkFaults {
  int src = -1;
  int dst = -1;
  double loss = 0.0;                 // per-packet drop probability
  double duplicate = 0.0;            // per-packet duplication probability
  sim::Duration reorder_jitter = 0;  // extra delay, uniform in [0, jitter]

  bool Matches(int s, int d) const {
    return (src == -1 || src == s) && (dst == -1 || dst == d);
  }
};

// Both directions between host_a and host_b are cut while
// start <= now < heal; -1 is a wildcard (partition a host from everyone).
struct Partition {
  int host_a = -1;
  int host_b = -1;
  sim::Time start = 0;
  sim::Time heal = kNever;

  bool Active(int s, int d, sim::Time now) const {
    if (now < start || now >= heal) {
      return false;
    }
    bool fwd = (host_a == -1 || host_a == s) && (host_b == -1 || host_b == d);
    bool rev = (host_a == -1 || host_a == d) && (host_b == -1 || host_b == s);
    return fwd || rev;
  }
};

struct FaultPlan {
  uint64_t seed = 1;
  // Plan-wide defaults, overridable per link.
  double loss = 0.0;
  double duplicate = 0.0;
  sim::Duration reorder_jitter = 0;
  std::vector<LinkFaults> links;
  std::vector<Partition> partitions;

  bool enabled() const {
    return loss > 0 || duplicate > 0 || reorder_jitter > 0 || !links.empty() ||
           !partitions.empty();
  }
};

// The verdict for one packet. A dropped packet is never delivered; a
// duplicated one is delivered twice, the copy after an extra jitter delay.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  sim::Duration extra_delay = 0;      // reordering: added to the delivery delay
  sim::Duration dup_extra_delay = 0;  // added again for the duplicate copy
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

  FaultDecision OnSend(int src, int dst, sim::Time now);

  uint64_t drops() const { return drops_; }
  uint64_t partition_drops() const { return partition_drops_; }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t delayed() const { return delayed_; }

 private:
  const FaultPlan plan_;
  sim::Rng rng_;
  uint64_t drops_ = 0;
  uint64_t partition_drops_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t delayed_ = 0;
};

}  // namespace fault

#endif  // SRC_FAULT_PLAN_H_
