#include "src/fault/sweep.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/log.h"
#include "src/cache/buffer_cache.h"
#include "src/sim/simulator.h"
#include "src/snfs/server.h"
#include "src/snfs/state_table.h"
#include "src/testbed/fault_runner.h"
#include "src/trace/checker.h"
#include "src/trace/trace.h"
#include "src/vfs/vfs.h"

namespace fault {
namespace {

// Per-file ground truth. Files are single-writer (client i writes only its
// own files), so two counters pin down every legal read: any readable block
// must be a uniform fill with committed <= version <= written_max.
struct FileOracle {
  uint64_t written_max = 0;  // newest version any write attempted
  uint64_t committed = 0;    // newest version a successful Fsync covered
};

struct SeedRun {
  const SweepOptions* options = nullptr;
  SeedStats stats;
  sim::Time last_reboot = -1;  // schedule's last kRebootServer, for latency
  std::vector<std::vector<FileOracle>> oracles;  // [client][file]
};

void Fail(SeedRun& run, std::string why) {
  if (run.stats.ok) {
    run.stats.ok = false;
    run.stats.failure = std::move(why);
    LOG_INFO("fault", "seed %llu invariant violated: %s",
             static_cast<unsigned long long>(run.stats.seed), run.stats.failure.c_str());
  }
}

std::string FilePath(int client, int file) {
  return "/data/c" + std::to_string(client) + "_f" + std::to_string(file);
}

// `committed_before` must be captured before the read was issued: the
// writer can commit a newer version while the read is in flight, but the
// data the read observes is at least as new as that older commit point.
void VerifyBlock(SeedRun& run, const std::vector<uint8_t>& data, uint64_t committed_before,
                 const FileOracle& oracle, const std::string& path) {
  if (data.empty()) {
    if (committed_before > 0) {
      Fail(run, "committed file " + path + " read back empty");
    }
    return;  // created but never written: legal
  }
  uint8_t fill = data[0];
  for (uint8_t b : data) {
    if (b != fill) {
      Fail(run, "torn block in " + path + " (mixed fill bytes)");
      return;
    }
  }
  // Writers cap versions at 255, so the fill byte IS the version.
  uint64_t version = fill;
  uint64_t lo = std::max<uint64_t>(1, committed_before);
  if (version < lo || version > oracle.written_max) {
    Fail(run, "version " + std::to_string(version) + " of " + path + " outside [" +
                  std::to_string(lo) + ", " + std::to_string(oracle.written_max) + "]");
  }
}

sim::Task<void> ClientWorkload(sim::Simulator& simulator, SeedRun& run,
                               testbed::ClientMachine& machine, int index, uint64_t seed) {
  const SweepOptions& opt = *run.options;
  sim::Rng rng(seed * 1000 + static_cast<uint64_t>(index) + 1);
  // Oracles are sized once in RunFaultSeed and never resized, so references
  // into them stay valid across suspensions.
  std::vector<FileOracle>& files = run.oracles[index];  // lint: await-stale-ref-ok

  while (simulator.Now() < opt.horizon) {
    sim::Duration gap = opt.mean_op_gap;
    co_await sim::Sleep(simulator, rng.UniformInt(gap / 2, gap + gap / 2));
    if (!machine.started()) {
      continue;  // crashed: idle until the schedule restarts us
    }
    int f = static_cast<int>(rng.UniformInt(0, opt.files_per_client - 1));
    FileOracle& oracle = files[f];  // lint: await-stale-ref-ok (never resized)
    std::string path = FilePath(index, f);
    vfs::Vfs& vfs = machine.vfs();
    ++run.stats.ops_attempted;
    bool ok = false;
    // If the machine crashes while this op is in flight, the coroutine
    // still runs to completion against the reset client, but the process
    // that issued the op died with the kernel: whatever the op reports is
    // void. In particular an Fsync that "succeeds" against the freshly
    // dropped cache (nothing left dirty) must not count as a commit.
    int gen = machine.crash_generation();

    if (oracle.written_max < 255 && rng.Bernoulli(0.5)) {
      // Write the next version as a uniform one-block fill. No truncate on
      // open: a crash between create and write must not be confusable with
      // data loss.
      bool do_fsync = rng.Bernoulli(0.5);
      auto fd = co_await vfs.Open(path, vfs::OpenFlags{.write = true, .create = true});
      if (fd.ok()) {
        uint64_t version = oracle.written_max + 1;
        oracle.written_max = version;  // before any byte can land anywhere
        std::vector<uint8_t> block(cache::kBlockSize, static_cast<uint8_t>(version));
        auto wrote = co_await vfs.Pwrite(*fd, 0, block);
        bool committed = false;
        if (wrote.ok() && do_fsync) {
          auto synced = co_await vfs.Fsync(*fd);
          if (synced.ok() && machine.crash_generation() == gen) {
            oracle.committed = version;
            committed = true;
          }
        }
        auto closed = co_await vfs.Close(*fd);
        ok = wrote.ok() && closed.ok() && (!do_fsync || committed) &&
             machine.crash_generation() == gen;
      }
    } else {
      uint64_t committed_before = oracle.committed;
      auto fd = co_await vfs.Open(path, vfs::OpenFlags::ReadOnly());
      if (fd.ok()) {
        auto data = co_await vfs.Pread(*fd, 0, cache::kBlockSize);
        (void)co_await vfs.Close(*fd);
        if (data.ok() && machine.crash_generation() == gen) {
          ok = true;
          ++run.stats.reads_verified;
          VerifyBlock(run, *data, committed_before, oracle, path);
        }
      }
    }

    if (ok) {
      ++run.stats.ops_ok;
      if (run.last_reboot >= 0 && run.stats.recovery_latency < 0 &&
          simulator.Now() >= run.last_reboot) {
        run.stats.recovery_latency = simulator.Now() - run.last_reboot;
      }
    } else {
      ++run.stats.ops_failed;
    }
  }
}

void CheckDupBound(SeedRun& run, rpc::Peer& peer, size_t cap, const std::string& who) {
  size_t size = peer.dup_cache_size();
  size_t in_progress = peer.dup_cache_in_progress();
  if (size > cap + in_progress) {
    Fail(run, who + " dup cache over bound: " + std::to_string(size) + " entries, cap " +
                  std::to_string(cap) + " + " + std::to_string(in_progress) + " in progress");
  }
}

sim::Task<void> InvariantChecker(
    sim::Simulator& simulator, SeedRun& run, testbed::ServerMachine& server,
    std::vector<std::unique_ptr<testbed::ClientMachine>>& clients) {
  const SweepOptions& opt = *run.options;
  while (simulator.Now() < opt.horizon) {
    co_await sim::Sleep(simulator, opt.check_interval);
    ++run.stats.invariant_checks;
    CheckDupBound(run, server.peer(), opt.server.peer.dup_cache_entries, "server");
    for (const auto& client : clients) {
      CheckDupBound(run, client->peer(), opt.client.peer.dup_cache_entries, client->name());
    }
    if (server.peer().running() && server.snfs_server() != nullptr) {
      // CHECK-aborts on violation; runs after every callback round because
      // the tick interleaves with handler completions.
      server.snfs_server()->state_table().CheckInvariants();
    }
  }
}

// Strict end-of-run oracle: with the world quiesced and the server up,
// every file that ever committed a version must read back as a uniform
// fill in [committed, written_max].
sim::Task<void> FinalReadback(sim::Simulator& simulator, SeedRun& run,
                              testbed::ServerMachine& server, testbed::ClientMachine& machine,
                              int index) {
  if (!server.peer().running() || !machine.started()) {
    co_return;  // the schedule left this pair down; nothing to assert
  }
  const SweepOptions& opt = *run.options;
  for (int f = 0; f < opt.files_per_client; ++f) {
    FileOracle& oracle = run.oracles[index][f];  // lint: await-stale-ref-ok (never resized)
    if (oracle.committed == 0) {
      continue;
    }
    uint64_t committed_before = oracle.committed;
    std::string path = FilePath(index, f);
    auto data = co_await machine.vfs().ReadFile(path);
    if (!data.ok()) {
      Fail(run, "final read-back of committed file " + path + " failed");
      continue;
    }
    ++run.stats.reads_verified;
    VerifyBlock(run, *data, committed_before, oracle, path);
  }
}

}  // namespace

SeedStats RunFaultSeed(const SweepOptions& options, uint64_t seed) {
  SeedRun run;
  run.options = &options;
  run.stats.seed = seed;
  run.oracles.assign(static_cast<size_t>(options.num_clients),
                     std::vector<FileOracle>(static_cast<size_t>(options.files_per_client)));
  for (const FaultEvent& ev : options.schedule.events) {
    if (ev.kind == FaultEventKind::kRebootServer) {
      run.last_reboot = std::max(run.last_reboot, ev.at);
    }
  }

  sim::Simulator simulator;
  net::NetworkParams net_params = options.network;
  if (options.plan.enabled()) {
    auto plan = std::make_shared<FaultPlan>(options.plan);
    plan->seed = seed;  // each sweep seed replays its own fault sequence
    net_params.faults = std::move(plan);
  }
  net::Network network(simulator, net_params, /*seed=*/11);

  // Install the recorder before any machine exists so span ids are assigned
  // identically on every replay of this (options, seed) pair.
  std::unique_ptr<trace::Recorder> recorder;
  if (options.trace_check) {
    recorder = std::make_unique<trace::Recorder>(simulator);
    trace::SetActive(recorder.get());
  }

  testbed::ServerMachine server(simulator, network, "server", options.protocol, options.server);
  std::vector<std::unique_ptr<testbed::ClientMachine>> clients;
  std::vector<testbed::ClientMachine*> client_ptrs;
  for (int i = 0; i < options.num_clients; ++i) {
    clients.push_back(std::make_unique<testbed::ClientMachine>(
        simulator, network, "client" + std::to_string(i), options.client));
    client_ptrs.push_back(clients.back().get());
  }
  server.Start();
  for (auto& client : clients) {
    client->Start();
  }
  for (auto& client : clients) {
    switch (options.protocol) {
      case testbed::ServerProtocol::kNfs:
        client->MountNfs("/data", server.address(), server.root(), options.nfs);
        break;
      case testbed::ServerProtocol::kSnfs:
        client->MountSnfs("/data", server.address(), server.root(), options.snfs);
        break;
      case testbed::ServerProtocol::kNqnfs:
        client->MountNqnfs("/data", server.address(), server.root(), options.nqnfs);
        break;
    }
  }

  testbed::ApplyFaultSchedule(simulator, network, &server, client_ptrs, options.schedule);
  for (int i = 0; i < options.num_clients; ++i) {
    simulator.Spawn(ClientWorkload(simulator, run, *clients[i], i, seed));
  }
  simulator.Spawn(InvariantChecker(simulator, run, server, clients));
  simulator.RunUntil(options.horizon);

  for (int i = 0; i < options.num_clients; ++i) {
    simulator.Spawn(FinalReadback(simulator, run, server, *clients[i], i));
  }
  simulator.RunUntil(options.horizon + options.drain);

  if (recorder != nullptr) {
    trace::SetActive(nullptr);
    run.stats.trace_events = recorder->events().size();
    std::vector<trace::Violation> violations = trace::CheckTrace(recorder->events());
    run.stats.trace_violations = violations.size();
    if (!violations.empty()) {
      Fail(run, "trace checker: [" + violations.front().rule + "] " + violations.front().message);
    }
  }

  run.stats.retransmissions = server.peer().retransmissions();
  run.stats.duplicates_suppressed = server.peer().duplicates_suppressed();
  run.stats.stale_replies_dropped = server.peer().stale_replies_dropped();
  for (auto& client : clients) {
    run.stats.retransmissions += client->peer().retransmissions();
    run.stats.duplicates_suppressed += client->peer().duplicates_suppressed();
    run.stats.stale_replies_dropped += client->peer().stale_replies_dropped();
  }
  run.stats.packets_dropped = network.packets_dropped();
  run.stats.packets_duplicated = network.packets_duplicated();
  return std::move(run.stats);
}

SweepResult RunFaultSweep(const SweepOptions& options, uint64_t first_seed, int num_seeds) {
  SweepResult result;
  for (int i = 0; i < num_seeds; ++i) {
    result.seeds.push_back(RunFaultSeed(options, first_seed + static_cast<uint64_t>(i)));
  }
  return result;
}

}  // namespace fault
