// Seed-sweep driver: run a small multi-client workload under a FaultPlan
// and FaultSchedule for N different seeds, asserting protocol invariants
// throughout:
//
//  * data integrity — every readable block is a uniform fill whose version
//    lies between the last fsync-committed version and the newest written
//    version of that file (single-writer files make the oracle exact);
//  * duplicate-cache bound — the server's cache never exceeds its
//    configured capacity by more than the number of in-progress entries;
//  * state-table invariants — snfs::StateTable::CheckInvariants() on a
//    periodic tick (SNFS only; it CHECK-aborts on violation);
//  * no ghost replies — replies computed by a crashed server generation
//    are dropped, never sent (counted via Peer::stale_replies_dropped).
//
// Each seed gets its own simulator, network, machines, fault-injector RNG
// stream, and workload RNG streams, so a failing seed replays exactly.
#ifndef SRC_FAULT_SWEEP_H_
#define SRC_FAULT_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/plan.h"
#include "src/fault/schedule.h"
#include "src/net/network.h"
#include "src/nfs/client.h"
#include "src/nqnfs/client.h"
#include "src/sim/time.h"
#include "src/snfs/client.h"
#include "src/testbed/machine.h"

namespace fault {

struct SweepOptions {
  testbed::ServerProtocol protocol = testbed::ServerProtocol::kSnfs;
  int num_clients = 2;
  int files_per_client = 3;
  sim::Duration horizon = sim::Sec(90);      // workload runs until this time
  sim::Duration drain = sim::Sec(120);       // extra time for final read-back
  sim::Duration mean_op_gap = sim::Msec(200);
  sim::Duration check_interval = sim::Sec(1);

  // Link faults; `plan.seed` is overridden with the sweep seed per run.
  FaultPlan plan;
  // Scripted crash/restart points, identical across seeds.
  FaultSchedule schedule;

  net::NetworkParams network;
  testbed::ServerMachineParams server;
  testbed::ClientMachineParams client;
  nfs::NfsClientParams nfs;
  snfs::SnfsClientParams snfs;
  nqnfs::NqnfsClientParams nqnfs;

  // Record a causal trace of the whole run and validate it with
  // trace::CheckTrace; violations fail the seed like any other invariant.
  bool trace_check = false;

  SweepOptions() {
    // Recovery on by default: the sweep exists to exercise the crash paths.
    server.snfs.enable_recovery = true;
    server.snfs.recovery_grace = sim::Sec(8);
    snfs.enable_recovery = true;
    snfs.keepalive_interval = sim::Sec(5);
    client.with_local_disk = false;
  }
};

struct SeedStats {
  uint64_t seed = 0;
  bool ok = true;
  std::string failure;  // first violated invariant, when !ok

  uint64_t ops_attempted = 0;
  uint64_t ops_ok = 0;
  uint64_t ops_failed = 0;
  uint64_t reads_verified = 0;
  uint64_t invariant_checks = 0;

  uint64_t trace_events = 0;      // events recorded (0 unless trace_check)
  uint64_t trace_violations = 0;  // checker findings (first one fails the seed)

  uint64_t retransmissions = 0;        // summed over all peers
  uint64_t duplicates_suppressed = 0;  // summed over all peers
  uint64_t stale_replies_dropped = 0;  // summed over all peers
  uint64_t packets_dropped = 0;        // network (loss + partitions + down hosts)
  uint64_t packets_duplicated = 0;     // network (fault injector)

  // First successful operation completion after the schedule's last server
  // reboot, relative to that reboot; -1 if the schedule has no reboot or no
  // operation succeeded afterwards.
  sim::Duration recovery_latency = -1;
};

struct SweepResult {
  std::vector<SeedStats> seeds;

  bool all_ok() const {
    for (const SeedStats& s : seeds) {
      if (!s.ok) {
        return false;
      }
    }
    return true;
  }
  const SeedStats* first_failure() const {
    for (const SeedStats& s : seeds) {
      if (!s.ok) {
        return &s;
      }
    }
    return nullptr;
  }
};

// Run the workload once under `seed`; deterministic for a fixed
// (options, seed) pair.
SeedStats RunFaultSeed(const SweepOptions& options, uint64_t seed);

// Run seeds first_seed .. first_seed + num_seeds - 1.
SweepResult RunFaultSweep(const SweepOptions& options, uint64_t first_seed, int num_seeds);

}  // namespace fault

#endif  // SRC_FAULT_SWEEP_H_
