#include "src/fault/plan.h"

namespace fault {

FaultDecision FaultInjector::OnSend(int src, int dst, sim::Time now) {
  FaultDecision decision;
  for (const Partition& p : plan_.partitions) {
    if (p.Active(src, dst, now)) {
      ++partition_drops_;
      decision.drop = true;
      return decision;
    }
  }

  double loss = plan_.loss;
  double duplicate = plan_.duplicate;
  sim::Duration jitter = plan_.reorder_jitter;
  for (const LinkFaults& link : plan_.links) {
    if (link.Matches(src, dst)) {
      loss = link.loss;
      duplicate = link.duplicate;
      jitter = link.reorder_jitter;
      break;
    }
  }

  if (loss > 0 && rng_.Bernoulli(loss)) {
    ++drops_;
    decision.drop = true;
    return decision;
  }
  if (jitter > 0) {
    decision.extra_delay = rng_.UniformInt(0, jitter);
    if (decision.extra_delay > 0) {
      ++delayed_;
    }
  }
  if (duplicate > 0 && rng_.Bernoulli(duplicate)) {
    ++duplicates_;
    decision.duplicate = true;
    // The copy trails the original so duplicates also exercise reordering;
    // with zero jitter it arrives one latency quantum later.
    decision.dup_extra_delay =
        jitter > 0 ? rng_.UniformInt(1, jitter) : sim::Usec(100);
  }
  return decision;
}

}  // namespace fault
