#include "src/net/network.h"

#include <string>
#include <utility>

#include "src/base/check.h"
#include "src/base/log.h"
#include "src/trace/trace.h"

namespace net {

Address Network::AttachHost() {
  Host host;
  host.rx = std::make_unique<sim::Channel<Packet>>(simulator_);
  hosts_.push_back(std::move(host));
  return Address{static_cast<int>(hosts_.size()) - 1};
}

sim::Channel<Packet>& Network::Rx(Address address) {
  CHECK_GE(address.host, 0);
  CHECK_LT(static_cast<size_t>(address.host), hosts_.size());
  return *hosts_[address.host].rx;
}

void Network::Send(Packet packet) {
  CHECK_GE(packet.src.host, 0);
  CHECK_GE(packet.dst.host, 0);
  CHECK_LT(static_cast<size_t>(packet.dst.host), hosts_.size());
  ++packets_sent_;
  uint32_t bytes = proto::WireSize(packet.envelope);
  bytes_sent_ += bytes;
  TRACE_INSTANT("net.send", packet.src.host,
                "dst=" + std::to_string(packet.dst.host) + " bytes=" + std::to_string(bytes));

  if (!hosts_[packet.src.host].up || !hosts_[packet.dst.host].up) {
    ++packets_dropped_;
    TRACE_INSTANT("net.drop", packet.src.host,
                  "dst=" + std::to_string(packet.dst.host) + " reason=down");
    return;
  }
  if (params_.loss_rate > 0 && rng_.Bernoulli(params_.loss_rate)) {
    ++packets_dropped_;
    TRACE_INSTANT("net.drop", packet.src.host,
                  "dst=" + std::to_string(packet.dst.host) + " reason=loss");
    LOG_DEBUG("net", "dropped packet %d->%d (%u bytes)", packet.src.host, packet.dst.host, bytes);
    return;
  }

  sim::Duration serialization =
      static_cast<sim::Duration>(static_cast<double>(bytes) * 8.0 / params_.bandwidth_bps * 1e6);
  sim::Duration delay = params_.latency + serialization;

  if (injector_ != nullptr) {
    fault::FaultDecision d =
        injector_->OnSend(packet.src.host, packet.dst.host, simulator_.Now());
    if (d.drop) {
      ++packets_dropped_;
      TRACE_INSTANT("net.drop", packet.src.host,
                    "dst=" + std::to_string(packet.dst.host) + " reason=fault");
      LOG_DEBUG("net", "fault-dropped packet %d->%d (%u bytes)", packet.src.host,
                packet.dst.host, bytes);
      return;
    }
    delay += d.extra_delay;
    if (d.duplicate) {
      ++packets_duplicated_;
      Deliver(packet, delay + d.dup_extra_delay);  // the copy trails the original
    }
  }

  Deliver(std::move(packet), delay);
}

Network::PacketSlot* Network::AcquireSlot() {
  if (free_slots_ != nullptr) {
    PacketSlot* slot = free_slots_;
    free_slots_ = slot->next;
    return slot;
  }
  slot_arena_.push_back(std::make_unique<PacketSlot>());
  return slot_arena_.back().get();
}

void Network::ReleaseSlot(PacketSlot* slot) {
  slot->next = free_slots_;
  free_slots_ = slot;
}

void Network::Deliver(Packet packet, sim::Duration delay) {
  PacketSlot* slot = AcquireSlot();
  slot->packet = std::move(packet);
  // Capture the sender's ambient span: delivery runs from the event loop
  // (ambient reset to 0), so receive-side instants must be attributed
  // explicitly to stay causally linked to the send.
  slot->send_span = sim::tracectx::current_span;
  simulator_.Schedule(delay, [this, slot] { DeliverSlot(slot); });
}

void Network::DeliverSlot(PacketSlot* slot) {
  int dst = slot->packet.dst.host;
  uint64_t send_span = slot->send_span;
  // Re-check liveness at delivery time: the receiver may have crashed while
  // the packet was in flight.
  if (!hosts_[dst].up) {
    ReleaseSlot(slot);
    ++packets_dropped_;
    if (trace::Recorder* recorder = trace::Active()) {
      recorder->InstantInSpan(send_span, "net.drop", dst, "reason=down");
    }
    return;
  }
  Packet packet = std::move(slot->packet);
  ReleaseSlot(slot);
  if (trace::Recorder* recorder = trace::Active()) {
    recorder->InstantInSpan(send_span, "net.recv", dst, "src=" + std::to_string(packet.src.host));
  }
  hosts_[dst].rx->Send(std::move(packet));
}

void Network::SetHostUp(Address address, bool up) {
  CHECK_GE(address.host, 0);
  CHECK_LT(static_cast<size_t>(address.host), hosts_.size());
  hosts_[address.host].up = up;
}

bool Network::IsHostUp(Address address) const {
  CHECK_GE(address.host, 0);
  CHECK_LT(static_cast<size_t>(address.host), hosts_.size());
  return hosts_[address.host].up;
}

}  // namespace net
