// Simulated datagram network: hosts attach one endpoint each; packets incur
// a fixed propagation latency plus a serialization delay proportional to
// size, and may be dropped (probabilistically, or because a host is down —
// used by the crash-recovery experiments).
//
// The model is an unswitched 10 Mbit/s Ethernet by default (the paper's
// testbed); shared-medium contention is not modeled because the benchmark
// load never approaches saturation.
//
// Fault injection: NetworkParams::faults optionally names a fault::FaultPlan
// (seeded per-link loss, duplication, bounded reordering, partitions with
// heal times). Without a plan the Send path is byte-identical to a network
// built before fault injection existed — no extra random draws, no extra
// scheduling — so calibrated benchmark numbers do not move.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fault/plan.h"
#include "src/proto/messages.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"

namespace net {

// Host number on the simulated network; assigned by Network::AttachHost.
struct Address {
  int host = -1;

  friend bool operator==(const Address&, const Address&) = default;
};

struct Packet {
  Address src;
  Address dst;
  proto::Envelope envelope;
};

struct NetworkParams {
  sim::Duration latency = sim::Usec(200);      // propagation + interface
  double bandwidth_bps = 10e6;                 // 10 Mbit/s Ethernet
  double loss_rate = 0.0;                      // per-packet drop probability
  // Optional deterministic fault plan (loss, duplication, reordering,
  // partitions); null or a disabled plan leaves the fast path untouched.
  std::shared_ptr<const fault::FaultPlan> faults;
};

class Network {
 public:
  Network(sim::Simulator& simulator, NetworkParams params, uint64_t seed = 1)
      : simulator_(simulator), params_(params), rng_(seed) {
    if (params_.faults != nullptr && params_.faults->enabled()) {
      injector_ = std::make_unique<fault::FaultInjector>(*params_.faults);
    }
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attach a new host; returns its address. The host reads packets from the
  // returned channel (owned by the Network).
  Address AttachHost();

  sim::Channel<Packet>& Rx(Address address);

  // Inject a packet. Delivery is scheduled after latency + size/bandwidth,
  // unless the packet is lost or either end is down.
  void Send(Packet packet);

  // Crash simulation: a down host neither sends nor receives.
  void SetHostUp(Address address, bool up);
  bool IsHostUp(Address address) const;

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t packets_duplicated() const { return packets_duplicated_; }

  // Null when no fault plan is active.
  const fault::FaultInjector* fault_injector() const { return injector_.get(); }

 private:
  struct Host {
    std::unique_ptr<sim::Channel<Packet>> rx;
    bool up = true;
  };

  // In-flight packet state lives in pooled slots so the delivery closure
  // captures only {this, slot} — small enough for std::function's inline
  // buffer, i.e. no heap allocation per packet in flight. Slots are owned by
  // the arena and recycled through an intrusive free list at delivery.
  struct PacketSlot {
    Packet packet;
    uint64_t send_span = 0;
    PacketSlot* next = nullptr;
  };

  PacketSlot* AcquireSlot();
  void ReleaseSlot(PacketSlot* slot);
  void Deliver(Packet packet, sim::Duration delay);
  void DeliverSlot(PacketSlot* slot);

  sim::Simulator& simulator_;
  NetworkParams params_;
  sim::Rng rng_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<Host> hosts_;
  std::vector<std::unique_ptr<PacketSlot>> slot_arena_;
  PacketSlot* free_slots_ = nullptr;
  uint64_t packets_sent_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t packets_duplicated_ = 0;
};

}  // namespace net

#endif  // SRC_NET_NETWORK_H_
