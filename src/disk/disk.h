// Simulated disk (RA81/RA82-class): a FIFO request queue where each
// operation costs a positioning latency plus size/transfer-rate.
//
// Sequential accesses are detected per (file, block) stream: a block
// following the previous one on the same file pays only the sequential
// (track-buffered) latency. This reproduces the 1989 asymmetry the paper's
// results turn on: a local file system flushing delayed writes gets
// clustered sequential transfers, while a stateless NFS server performing
// one synchronous data+inode update per write RPC pays full positioning
// twice per call ("writes are always synchronous with the disk at the
// server, unlike reads which often hit in the server cache").
#ifndef SRC_DISK_DISK_H_
#define SRC_DISK_DISK_H_

#include <cstdint>
#include <string>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"
#include "src/trace/trace.h"

namespace disk {

struct DiskParams {
  // Full positioning (seek + rotation) for a random access. RA81: ~28 ms
  // average seek plus 8.3 ms half-rotation.
  sim::Duration access_latency = sim::Msec(36);
  // Positioning for a sequential continuation (track buffer / same
  // cylinder).
  sim::Duration sequential_latency = sim::Msec(4);
  // Media transfer rate. RA81: ~2.2 MB/s.
  double transfer_bytes_per_sec = 2.2e6;
};

class Disk {
 public:
  Disk(sim::Simulator& simulator, DiskParams params = {})
      : simulator_(simulator), params_(params), queue_(simulator) {}

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Positional block access: sequential continuation of the last access on
  // this stream is cheap. `stream` identifies a file, `block` its index.
  sim::Task<void> ReadBlock(uint64_t stream, uint64_t block, uint32_t bytes) {
    return Access(stream, block, bytes, /*is_write=*/false);
  }
  sim::Task<void> WriteBlock(uint64_t stream, uint64_t block, uint32_t bytes) {
    return Access(stream, block, bytes, /*is_write=*/true);
  }

  // Non-positional access (metadata, untracked): always full positioning.
  sim::Task<void> Read(uint32_t bytes) { return Access(kNoStream, 0, bytes, false); }
  sim::Task<void> Write(uint32_t bytes) { return Access(kNoStream, 0, bytes, true); }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t sequential_hits() const { return sequential_hits_; }
  sim::Duration busy_time() const { return busy_us_; }

 private:
  static constexpr uint64_t kNoStream = ~0ULL;

  sim::Task<void> Access(uint64_t stream, uint64_t block, uint32_t bytes, bool is_write) {
    // Span covers queue wait + service time; the machine is inherited from
    // the causing span (the disk itself has no network host id).
    trace::Span io_span;
    if (trace::Active() != nullptr) {
      io_span.Begin(is_write ? "disk.write" : "disk.read", trace::kInheritMachine,
                    "bytes=" + std::to_string(bytes) +
                        (stream == kNoStream ? std::string(" stream=meta")
                                             : " stream=" + std::to_string(stream) +
                                                   " block=" + std::to_string(block)));
    }
    co_await queue_.Acquire();
    bool sequential =
        stream != kNoStream && stream == last_stream_ && block == last_block_ + 1;
    if (sequential) {
      ++sequential_hits_;
    }
    last_stream_ = stream;
    last_block_ = stream == kNoStream ? 0 : block;
    sim::Duration service =
        (sequential ? params_.sequential_latency : params_.access_latency) +
        static_cast<sim::Duration>(static_cast<double>(bytes) / params_.transfer_bytes_per_sec *
                                   1e6);
    co_await sim::Sleep(simulator_, service);
    busy_us_ += service;
    if (is_write) {
      ++writes_;
      bytes_written_ += bytes;
    } else {
      ++reads_;
      bytes_read_ += bytes;
    }
    io_span.End(sequential ? "seq=1" : "seq=0");
    queue_.Release();
  }

  sim::Simulator& simulator_;
  DiskParams params_;
  sim::Mutex queue_;
  uint64_t last_stream_ = kNoStream;
  uint64_t last_block_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t sequential_hits_ = 0;
  sim::Duration busy_us_ = 0;
};

}  // namespace disk

#endif  // SRC_DISK_DISK_H_
