#include "src/cache/buffer_cache.h"

#include <algorithm>
#include <string>

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace cache {

BufferCache::BufferCache(sim::Simulator& simulator, BufferCacheParams params)
    : simulator_(simulator),
      params_(params),
      flush_behind_(simulator, params.flush_behind_slots) {}

sim::Mutex& BufferCache::FileGate(const FileKey& fk) {
  auto it = file_gates_.find(fk);
  if (it == file_gates_.end()) {
    it = file_gates_.emplace(fk, std::make_unique<sim::Mutex>(simulator_)).first;
  }
  return *it->second;
}

int BufferCache::RegisterMount(Backing backing) {
  mounts_.push_back(std::move(backing));
  return static_cast<int>(mounts_.size()) - 1;
}

void BufferCache::Start() {
  if (!params_.enable_sync_daemon) {
    return;
  }
  if (running_) {
    // Restart racing the previous daemon's exit: cancel the pending stop so
    // the surviving daemon simply keeps running.
    stop_requested_ = false;
    return;
  }
  running_ = true;
  stop_requested_ = false;
  simulator_.Spawn(SyncDaemon());
}

void BufferCache::Stop() { stop_requested_ = true; }

sim::Task<void> BufferCache::SyncDaemon() {
  while (!stop_requested_) {
    co_await sim::Sleep(simulator_, params_.sync_interval, /*background=*/true);
    if (stop_requested_) {
      break;
    }
    if (params_.sync_policy == SyncPolicy::kSyncAll) {
      co_await FlushAll();
    } else {
      // Age-based: flush blocks that have been dirty for >= dirty_age.
      sim::Time cutoff = simulator_.Now() - params_.dirty_age;
      std::vector<Key> old_blocks;
      // The flush order of aged blocks is part of the modeled behaviour the
      // benchmarks lock in; it is stable for a fixed insertion sequence.
      for (const auto& [fk, blocks] : dirty_blocks_) {  // lint: ordered-ok
        for (uint64_t b : blocks) {
          Key key{fk.mount, fk.fileid, b};
          auto it = entries_.find(key);
          if (it != entries_.end() && it->second.dirty && it->second.dirty_since <= cutoff) {
            old_blocks.push_back(key);
          }
        }
      }
      for (const Key& key : old_blocks) {
        auto it = entries_.find(key);
        if (it == entries_.end() || !it->second.dirty) {
          continue;  // cancelled or flushed while we were writing others
        }
        std::vector<uint8_t> data = it->second.data;
        MarkClean(key, it->second);
        (void)co_await StoreBlock(key, std::move(data));
      }
    }
  }
  running_ = false;
}

BufferCache::Entry* BufferCache::Find(const Key& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void BufferCache::Touch(Entry& entry, const Key& key) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

BufferCache::Entry& BufferCache::InsertEntry(const Key& key, std::vector<uint8_t> data,
                                             bool dirty) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.data = std::move(data);
    Touch(it->second, key);
    if (dirty) {
      MarkDirty(key, it->second);
    }
    return it->second;
  }
  lru_.push_front(key);
  Entry entry;
  entry.data = std::move(data);
  entry.lru_it = lru_.begin();
  auto [ins, ok] = entries_.emplace(key, std::move(entry));
  CHECK(ok);
  if (dirty) {
    MarkDirty(key, ins->second);
  }
  return ins->second;
}

void BufferCache::EraseEntry(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.dirty) {
    MarkClean(key, it->second);
  }
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void BufferCache::NoteDirtyTransition(const FileKey& fk, bool was_dirty) {
  trace::Recorder* recorder = trace::Active();
  if (recorder == nullptr) {
    return;
  }
  const Backing& backing = mounts_[fk.mount];
  if (backing.trace_name.empty()) {
    return;
  }
  bool now_dirty = HasDirty(fk.mount, fk.fileid);
  if (now_dirty == was_dirty) {
    return;
  }
  recorder->Instant(now_dirty ? "cache.file_dirty" : "cache.file_clean", backing.trace_machine,
                    "scope=" + backing.trace_name + " file=" + std::to_string(fk.fileid));
}

void BufferCache::MarkDirty(const Key& key, Entry& entry) {
  if (!entry.dirty) {
    FileKey fk{key.mount, key.fileid};
    bool was_dirty = trace::Active() != nullptr && HasDirty(fk.mount, fk.fileid);
    entry.dirty = true;
    entry.dirty_since = simulator_.Now();
    dirty_blocks_[fk].insert(key.block);
    NoteDirtyTransition(fk, was_dirty);
  }
}

void BufferCache::MarkClean(const Key& key, Entry& entry) {
  if (entry.dirty) {
    entry.dirty = false;
    FileKey fk{key.mount, key.fileid};
    bool was_dirty = trace::Active() != nullptr && HasDirty(fk.mount, fk.fileid);
    auto it = dirty_blocks_.find(fk);
    if (it != dirty_blocks_.end()) {
      it->second.erase(key.block);
      if (it->second.empty()) {
        dirty_blocks_.erase(it);
      }
    }
    NoteDirtyTransition(fk, was_dirty);
  }
}

void BufferCache::RegisterStore(const Key& key) {
  FileKey fk{key.mount, key.fileid};
  bool was_dirty = trace::Active() != nullptr && HasDirty(fk.mount, fk.fileid);
  ++flushing_files_[fk];
  auto [it, inserted] = in_flight_stores_.emplace(key, sim::Promise<bool>(simulator_));
  CHECK(inserted);
  NoteDirtyTransition(fk, was_dirty);
}

void BufferCache::FinishStore(const Key& key) {
  auto it = in_flight_stores_.find(key);
  if (it != in_flight_stores_.end()) {
    it->second.TrySet(true);
    in_flight_stores_.erase(it);
  }
  FileKey fk{key.mount, key.fileid};
  bool was_dirty = trace::Active() != nullptr && HasDirty(fk.mount, fk.fileid);
  auto fit = flushing_files_.find(fk);
  CHECK(fit != flushing_files_.end());
  if (--fit->second == 0) {
    flushing_files_.erase(fit);
  }
  NoteDirtyTransition(fk, was_dirty);
}

// Registered store: the caller already called RegisterStore(key).
sim::Task<bool> BufferCache::PerformStore(Key key, std::vector<uint8_t> data) {
  ++stats_.writebacks;
  trace::Span store_span;
  if (trace::Active() != nullptr) {
    store_span.Begin("cache.writeback", mounts_[key.mount].trace_machine,
                     "scope=" + mounts_[key.mount].trace_name +
                         " file=" + std::to_string(key.fileid) +
                         " block=" + std::to_string(key.block));
  }
  auto result = co_await mounts_[key.mount].store(key.fileid, key.block, std::move(data));
  store_span.End(std::string("ok=") + (result.ok() ? "1" : "0"));
  FinishStore(key);
  if (!result.ok()) {
    LOG_ERROR("cache", "writeback failed for file %llu block %llu: %s",
              static_cast<unsigned long long>(key.fileid),
              static_cast<unsigned long long>(key.block), std::string(result.status().name()).c_str());
  }
  co_return result.ok();
}

// Unregistered store: waits out any in-flight store of the same block
// (the block was re-dirtied and re-cleaned), then registers and performs.
sim::Task<bool> BufferCache::StoreBlock(Key key, std::vector<uint8_t> data) {
  while (true) {
    auto it = in_flight_stores_.find(key);
    if (it == in_flight_stores_.end()) {
      break;
    }
    sim::Future<bool> prior = it->second.GetFuture();
    co_await prior;
  }
  RegisterStore(key);
  co_return co_await PerformStore(key, std::move(data));
}

sim::Task<void> BufferCache::AsyncStore(Key key, std::vector<uint8_t> data) {
  (void)co_await PerformStore(key, std::move(data));
  flush_behind_.Release();
}

// Dirty victims hand their block to a spawned AsyncStore with the
// flush-behind slot still held; the spawned coroutine releases it.
// lint: lock-escapes
sim::Task<void> BufferCache::EvictIfNeeded() {
  while (entries_.size() > params_.capacity_blocks) {
    // Find the least-recently-used entry. Dirty victims are handed to the
    // bounded write-behind pipeline: the evictor stalls only when every
    // slot is occupied (the writer has outrun the backing store).
    CHECK(!lru_.empty());
    Key victim = lru_.back();
    auto it = entries_.find(victim);
    CHECK(it != entries_.end());
    ++stats_.evictions;
    if (it->second.dirty) {
      if (in_flight_stores_.contains(victim)) {
        // A previous store of this very block is still in flight; wait for
        // it before starting another, then re-evaluate.
        sim::Future<bool> prior = in_flight_stores_.at(victim).GetFuture();
        co_await prior;
        continue;
      }
      std::vector<uint8_t> data = it->second.data;
      MarkClean(victim, it->second);
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
      RegisterStore(victim);
      co_await flush_behind_.Acquire();
      simulator_.Spawn(AsyncStore(victim, std::move(data)));
    } else {
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
    }
  }
}

sim::Task<base::Result<void>> BufferCache::FetchInto(Key key, uint64_t file_size) {
  ++stats_.misses;
  // An evicted dirty block may still be on its way to the backing store;
  // fetching before it lands would resurrect stale data.
  auto flight = in_flight_stores_.find(key);
  if (flight != in_flight_stores_.end()) {
    sim::Future<bool> done = flight->second.GetFuture();
    co_await done;
  }
  trace::Span fetch_span;
  if (trace::Active() != nullptr) {
    fetch_span.Begin("cache.fetch", mounts_[key.mount].trace_machine,
                     "scope=" + mounts_[key.mount].trace_name +
                         " file=" + std::to_string(key.fileid) +
                         " block=" + std::to_string(key.block));
  }
  auto fetched = co_await mounts_[key.mount].fetch(key.fileid, key.block);
  fetch_span.End(std::string("ok=") + (fetched.ok() ? "1" : "0"));
  if (!fetched.ok()) {
    co_return fetched.status();
  }
  // A concurrent write may have populated (and dirtied) the block while the
  // fetch was in flight; the local copy wins.
  if (Entry* existing = Find(key); existing == nullptr) {
    InsertEntry(key, std::move(*fetched), /*dirty=*/false);
    co_await EvictIfNeeded();
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<std::vector<uint8_t>>> BufferCache::Read(int mount, uint64_t fileid,
                                                                uint64_t offset, uint32_t count,
                                                                uint64_t file_size,
                                                                bool read_ahead) {
  std::vector<uint8_t> out;
  uint64_t end = std::min<uint64_t>(file_size, offset + count);
  if (offset >= end) {
    co_return out;
  }
  out.reserve(end - offset);
  uint64_t first_block = offset / kBlockSize;
  uint64_t last_block = (end - 1) / kBlockSize;
  for (uint64_t b = first_block; b <= last_block; ++b) {
    Key key{mount, fileid, b};
    uint64_t block_start = b * kBlockSize;
    uint64_t want_from = std::max<uint64_t>(offset, block_start) - block_start;
    uint64_t want_to = std::min<uint64_t>(end, block_start + kBlockSize) - block_start;

    Entry* entry = Find(key);
    bool usable = entry != nullptr && (entry->dirty || entry->data.size() >= want_to);
    if (usable) {
      ++stats_.hits;
      Touch(*entry, key);
    } else {
      CO_RETURN_IF_ERROR(co_await FetchInto(key, file_size));
      entry = Find(key);
      if (entry == nullptr) {
        // Evicted between fetch and use under extreme pressure; treat the
        // fetched bytes as gone and retry once via the backing store
        // (waiting out any in-flight write-back of this block first).
        auto flight = in_flight_stores_.find(key);
        if (flight != in_flight_stores_.end()) {
          sim::Future<bool> done = flight->second.GetFuture();
          co_await done;
        }
        auto direct = co_await mounts_[mount].fetch(fileid, b);
        if (!direct.ok()) {
          co_return direct.status();
        }
        const std::vector<uint8_t>& data = *direct;
        uint64_t avail = std::min<uint64_t>(want_to, data.size());
        for (uint64_t i = want_from; i < avail; ++i) {
          out.push_back(data[i]);
        }
        continue;
      }
      Touch(*entry, key);
    }
    uint64_t avail = std::min<uint64_t>(want_to, entry->data.size());
    for (uint64_t i = want_from; i < avail; ++i) {
      out.push_back(entry->data[i]);
    }
  }

  if (read_ahead) {
    uint64_t next = last_block + 1;
    if (next * kBlockSize < file_size && Find(Key{mount, fileid, next}) == nullptr) {
      ++stats_.read_aheads;
      // Asynchronous prefetch: don't block the reader.
      simulator_.Spawn([](BufferCache& cache, int mount, uint64_t fileid, uint64_t next,
                          uint64_t file_size) -> sim::Task<void> {
        (void)co_await cache.FetchInto(Key{mount, fileid, next}, file_size);
      }(*this, mount, fileid, next, file_size));
    }
  }
  co_return out;
}

sim::Task<base::Result<void>> BufferCache::WriteDelayed(int mount, uint64_t fileid,
                                                        uint64_t offset,
                                                        std::vector<uint8_t> data,
                                                        uint64_t old_file_size) {
  if (data.empty()) {
    co_return base::OkStatus();
  }
  if (params_.flush_blocks_writers) {
    sim::Mutex& gate = FileGate(FileKey{mount, fileid});
    if (gate.locked()) {
      // This file is being flushed; stall on the busy buffers like a
      // 4.3BSD writer would.
      sim::ScopedLock stall(gate);
      co_await stall;
    }
  }
  uint64_t end = offset + data.size();
  uint64_t first_block = offset / kBlockSize;
  uint64_t last_block = (end - 1) / kBlockSize;
  for (uint64_t b = first_block; b <= last_block; ++b) {
    Key key{mount, fileid, b};
    uint64_t block_start = b * kBlockSize;
    uint64_t to_from = std::max<uint64_t>(offset, block_start) - block_start;
    uint64_t to_to = std::min<uint64_t>(end, block_start + kBlockSize) - block_start;

    Entry* entry = Find(key);
    if (entry == nullptr) {
      // Partial update of a block that has pre-existing backing data needs
      // a fetch-before-write; whole-block overwrites and appends past the
      // old EOF do not.
      bool partial = to_from > 0 || (to_to < kBlockSize && block_start + to_to < old_file_size);
      bool has_backing = block_start < old_file_size;
      if (partial && has_backing) {
        CO_RETURN_IF_ERROR(co_await FetchInto(key, old_file_size));
        entry = Find(key);
      }
      if (entry == nullptr) {
        entry = &InsertEntry(key, {}, /*dirty=*/false);
      }
    } else {
      Touch(*entry, key);
    }
    if (entry->data.size() < to_to) {
      entry->data.resize(to_to);
    }
    std::copy(data.begin() + static_cast<int64_t>(block_start + to_from - offset),
              data.begin() + static_cast<int64_t>(block_start + to_to - offset),
              entry->data.begin() + static_cast<int64_t>(to_from));
    ++stats_.delayed_writes;
    MarkDirty(key, *entry);
  }
  co_await EvictIfNeeded();
  co_return base::OkStatus();
}

void BufferCache::InsertClean(int mount, uint64_t fileid, uint64_t offset,
                              const std::vector<uint8_t>& data) {
  if (data.empty()) {
    return;
  }
  uint64_t end = offset + data.size();
  uint64_t first_block = offset / kBlockSize;
  uint64_t last_block = (end - 1) / kBlockSize;
  for (uint64_t b = first_block; b <= last_block; ++b) {
    Key key{mount, fileid, b};
    uint64_t block_start = b * kBlockSize;
    uint64_t to_from = std::max<uint64_t>(offset, block_start) - block_start;
    uint64_t to_to = std::min<uint64_t>(end, block_start + kBlockSize) - block_start;
    Entry* entry = Find(key);
    if (entry == nullptr) {
      if (to_from != 0) {
        continue;  // can't represent a hole; skip caching this fragment
      }
      entry = &InsertEntry(key, {}, /*dirty=*/false);
    } else {
      Touch(*entry, key);
    }
    if (entry->data.size() < to_to) {
      entry->data.resize(to_to);
    }
    std::copy(data.begin() + static_cast<int64_t>(block_start + to_from - offset),
              data.begin() + static_cast<int64_t>(block_start + to_to - offset),
              entry->data.begin() + static_cast<int64_t>(to_from));
  }
  // Synchronous trim: InsertClean is not a coroutine, so evict clean blocks
  // only; dirty overflow is handled by the next coroutine operation.
  while (entries_.size() > params_.capacity_blocks && !lru_.empty()) {
    Key victim = lru_.back();
    auto it = entries_.find(victim);
    if (it->second.dirty) {
      break;
    }
    ++stats_.evictions;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
}

sim::Task<base::Result<void>> BufferCache::FlushFile(int mount, uint64_t fileid,
                                                     uint64_t max_blocks) {
  FileKey fk{mount, fileid};
  sim::Mutex* gate = nullptr;
  if (params_.flush_blocks_writers && HasDirty(mount, fileid)) {
    gate = &FileGate(fk);
    co_await gate->Acquire();
  }
  uint64_t flushed = 0;
  bool all_stored = true;
  while (max_blocks == 0 || flushed < max_blocks) {
    auto it = dirty_blocks_.find(fk);
    if (it == dirty_blocks_.end() || it->second.empty()) {
      break;
    }
    ++flushed;
    uint64_t block = *it->second.begin();
    Key key{mount, fileid, block};
    auto eit = entries_.find(key);
    CHECK(eit != entries_.end());
    std::vector<uint8_t> data = eit->second.data;
    MarkClean(key, eit->second);
    if (!co_await StoreBlock(key, std::move(data))) {
      all_stored = false;
    }
  }
  if (gate != nullptr) {
    gate->Release();
  }
  // A failed store leaves the block clean in the cache but absent from the
  // backing store; callers using FlushFile as a durability barrier (NQNFS
  // fsync, SNFS close) must see the failure, not a silent OK.
  if (!all_stored) {
    co_return base::ErrIo();
  }
  co_return base::OkStatus();
}

sim::Task<void> BufferCache::FlushAll() {
  while (!dirty_blocks_.empty()) {
    FileKey fk = dirty_blocks_.begin()->first;
    (void)co_await FlushFile(fk.mount, fk.fileid);
  }
}

void BufferCache::InvalidateFile(int mount, uint64_t fileid) {
  std::vector<Key> victims;
  // Every matching entry is erased and EraseEntry has no cross-entry
  // effects, so collection order is immaterial.
  for (const auto& [key, entry] : entries_) {  // lint: ordered-ok
    if (key.mount == mount && key.fileid == fileid) {
      victims.push_back(key);
    }
  }
  for (const Key& key : victims) {
    EraseEntry(key);
  }
}

uint64_t BufferCache::CancelDirty(int mount, uint64_t fileid) {
  FileKey fk{mount, fileid};
  auto it = dirty_blocks_.find(fk);
  if (it == dirty_blocks_.end()) {
    return 0;
  }
  std::vector<uint64_t> blocks(it->second.begin(), it->second.end());
  for (uint64_t b : blocks) {
    EraseEntry(Key{mount, fileid, b});
  }
  stats_.cancelled_writes += blocks.size();
  return blocks.size();
}

void BufferCache::DropAll() {
  if (trace::Active() != nullptr) {
    // The dirty data just died with the kernel: close out the traced dirty
    // state so the checker does not blame this machine for blocks it no
    // longer holds. (std::set gives deterministic event order.)
    std::set<FileKey> dirty_files;
    for (const auto& [fk, blocks] : dirty_blocks_) {  // lint: ordered-ok (sorted below)
      dirty_files.insert(fk);
    }
    entries_.clear();
    lru_.clear();
    dirty_blocks_.clear();
    // NoteDirtyTransition reads live state: a file with a write-back still
    // in flight stays dirty (flushing_files_) and emits nothing here.
    for (const FileKey& fk : dirty_files) {
      NoteDirtyTransition(fk, /*was_dirty=*/true);
    }
    return;
  }
  entries_.clear();
  lru_.clear();
  dirty_blocks_.clear();
}

bool BufferCache::HasDirty(int mount, uint64_t fileid) const {
  FileKey fk{mount, fileid};
  auto it = dirty_blocks_.find(fk);
  if (it != dirty_blocks_.end() && !it->second.empty()) {
    return true;
  }
  // Blocks being written back have not reached the backing store yet.
  return flushing_files_.contains(fk);
}

size_t BufferCache::DirtyBlockCount() const {
  size_t n = 0;
  for (const auto& [fk, blocks] : dirty_blocks_) {  // lint: ordered-ok (commutative sum)
    n += blocks.size();
  }
  return n;
}

}  // namespace cache
