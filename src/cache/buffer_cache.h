// The GFS block buffer cache (client side).
//
// One cache per machine, shared by every mounted file system (as Ultrix GFS
// "manages the file system block buffer cache"), keyed by
// (mount, fileid, block). It supports:
//
//  * read caching with optional one-block read-ahead (disabled by SNFS for
//    non-cachable files, §4.2.1);
//  * delayed writes: dirty blocks age in the cache and are written back by
//    a periodic sync daemon (/etc/update's 30 s sync — §4.2.3), by cache
//    pressure (LRU eviction), or by explicit flush (SNFS callbacks, NFS
//    close);
//  * cancellation of delayed writes when a file is deleted ("Sprite and
//    SNFS take advantage of this behavior by cancelling delayed writes
//    when a file is deleted", §4.2.3) — the mechanism behind the paper's
//    temporary-file results (Tables 5-5/5-6);
//  * whole-file invalidation (NFS timestamp mismatch, SNFS callbacks).
//
// Policy (when to delay, when to write through, when to flush) belongs to
// the protocol clients; the cache provides mechanism only.
#ifndef SRC_CACHE_BUFFER_CACHE_H_
#define SRC_CACHE_BUFFER_CACHE_H_

#include <cstdint>
#include <memory>
#include <functional>
#include <list>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/sim/future.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace cache {

inline constexpr uint32_t kBlockSize = 4096;

// How the sync daemon picks blocks to write back.
enum class SyncPolicy {
  // Traditional Unix /etc/update: every interval, write ALL dirty blocks.
  kSyncAll,
  // Sprite: write blocks once they reach `dirty_age` in age.
  kAgeBased,
};

struct BufferCacheParams {
  size_t capacity_blocks = 4096;        // 16 MB — the paper's client cache
  sim::Duration sync_interval = sim::Sec(30);
  sim::Duration dirty_age = sim::Sec(30);  // used by kAgeBased
  SyncPolicy sync_policy = SyncPolicy::kSyncAll;
  bool enable_sync_daemon = true;       // off = "infinite write-delay" (§5.4)
  // 4.3BSD-style sync(): while the update daemon is pushing a file's dirty
  // buffers, a writer to the same file stalls on the busy buffers. This is
  // the mechanism that keeps the paper's SNFS sort slower than the local
  // sort despite identical CPU use: the stall lasts as long as the flush,
  // and remote flushes are an order of magnitude slower per block.
  bool flush_blocks_writers = true;
  // Dirty evictions go through a bounded asynchronous write-behind
  // pipeline; the evicting writer stalls only when all slots are busy
  // (i.e. the process outruns the backing store's drain rate).
  int flush_behind_slots = 4;
};

// Per-mount backing store callbacks (issue RPCs / local disk ops).
struct Backing {
  // Fetch one block; returns the bytes present (possibly short at EOF).
  std::function<sim::Task<base::Result<std::vector<uint8_t>>>(uint64_t fileid, uint64_t block)>
      fetch;
  // Store `data` (block-aligned at `block`); len == data.size() <= kBlockSize.
  std::function<sim::Task<base::Result<void>>(uint64_t fileid, uint64_t block,
                                              std::vector<uint8_t> data)>
      store;
  // Trace attribution (src/trace). Empty trace_name = untraced mount; the
  // SNFS client sets "snfs" so the trace checker can watch its dirty files.
  std::string trace_name;
  int trace_machine = -1;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t delayed_writes = 0;     // blocks dirtied
  uint64_t writebacks = 0;         // blocks pushed to backing
  uint64_t cancelled_writes = 0;   // dirty blocks dropped by delete
  uint64_t evictions = 0;
  uint64_t read_aheads = 0;
};

class BufferCache {
 public:
  BufferCache(sim::Simulator& simulator, BufferCacheParams params = {});

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  // Register a mount's backing store; returns the mount id used in all ops.
  int RegisterMount(Backing backing);

  // Spawn the periodic sync daemon (no-op if disabled by params).
  void Start();
  void Stop();

  // Read `count` bytes at `offset` from a file whose current size is
  // `file_size`; missing blocks are fetched from the backing store. With
  // `read_ahead`, the block after the last one touched is prefetched.
  sim::Task<base::Result<std::vector<uint8_t>>> Read(int mount, uint64_t fileid, uint64_t offset,
                                                     uint32_t count, uint64_t file_size,
                                                     bool read_ahead);

  // Delayed write: update cached blocks and mark them dirty. Partial-block
  // updates of blocks with existing backing data fetch the block first.
  sim::Task<base::Result<void>> WriteDelayed(int mount, uint64_t fileid, uint64_t offset,
                                             std::vector<uint8_t> data,
                                             uint64_t old_file_size);

  // Insert already-written-through data as clean blocks (NFS client write
  // path: the RPC carried the data; keep a copy for subsequent reads).
  void InsertClean(int mount, uint64_t fileid, uint64_t offset, const std::vector<uint8_t>& data);

  // Write the file's dirty blocks (lowest-numbered first) to the backing
  // store; with `max_blocks` > 0, stop after that many. Fails if any store
  // was rejected by the backing (the block stays clean but undurable, so
  // durability barriers must surface the error).
  sim::Task<base::Result<void>> FlushFile(int mount, uint64_t fileid, uint64_t max_blocks = 0);

  // Write every dirty block (sync daemon body; also usable at shutdown).
  sim::Task<void> FlushAll();

  // Drop every cached block of the file (including dirty ones — callers
  // must flush first if the data matters).
  void InvalidateFile(int mount, uint64_t fileid);

  // Drop the file's dirty blocks without writing them (delete optimization).
  // Returns the number of writes averted.
  uint64_t CancelDirty(int mount, uint64_t fileid);

  // Crash simulation: every cached block, clean or dirty, vanishes with the
  // kernel. Write-backs already in flight keep their bookkeeping; their
  // coroutines run to completion against the backing store and clean up.
  void DropAll();

  bool HasDirty(int mount, uint64_t fileid) const;
  size_t DirtyBlockCount() const;
  size_t size_blocks() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Key {
    int mount;
    uint64_t fileid;
    uint64_t block;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.fileid * 0x9E3779B97F4A7C15ULL + k.block;
      h ^= static_cast<uint64_t>(k.mount) << 56;
      h *= 0xBF58476D1CE4E5B9ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct FileKey {
    int mount;
    uint64_t fileid;
    friend bool operator==(const FileKey&, const FileKey&) = default;
    friend auto operator<=>(const FileKey&, const FileKey&) = default;
  };
  struct FileKeyHash {
    size_t operator()(const FileKey& k) const {
      return std::hash<uint64_t>()(k.fileid * 1000003ULL + static_cast<uint64_t>(k.mount));
    }
  };
  struct Entry {
    std::vector<uint8_t> data;  // bytes known for this block (<= kBlockSize)
    bool dirty = false;
    sim::Time dirty_since = 0;
    std::list<Key>::iterator lru_it;
  };

  Entry* Find(const Key& key);
  void Touch(Entry& entry, const Key& key);
  Entry& InsertEntry(const Key& key, std::vector<uint8_t> data, bool dirty);  // lint: unstable-source
  void EraseEntry(const Key& key);
  void MarkDirty(const Key& key, Entry& entry);
  void MarkClean(const Key& key, Entry& entry);
  // Emits a cache.file_dirty / cache.file_clean trace instant when the
  // file's HasDirty state differs from `was_dirty` (no-op when untraced).
  void NoteDirtyTransition(const FileKey& fk, bool was_dirty);
  // May exit holding a flush-behind slot that the spawned AsyncStore
  // releases when the write-back lands.
  sim::Task<void> EvictIfNeeded();  // lint: lock-escapes
  sim::Task<void> AsyncStore(Key key, std::vector<uint8_t> data);
  sim::Task<void> SyncDaemon();
  // In-flight store registration must be synchronous with the decision to
  // write a block back, or a concurrent fetch could read stale backing data.
  void RegisterStore(const Key& key);
  void FinishStore(const Key& key);
  // Both return whether the backing store accepted the block.
  sim::Task<bool> PerformStore(Key key, std::vector<uint8_t> data);
  sim::Task<bool> StoreBlock(Key key, std::vector<uint8_t> data);
  sim::Task<base::Result<void>> FetchInto(Key key, uint64_t file_size);
  sim::Mutex& FileGate(const FileKey& fk);

  sim::Simulator& simulator_;
  BufferCacheParams params_;
  std::vector<Backing> mounts_;
  std::unordered_map<FileKey, std::unique_ptr<sim::Mutex>, FileKeyHash> file_gates_;
  sim::Semaphore flush_behind_;
  bool running_ = false;
  bool stop_requested_ = false;

  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  // front = most recently used
  std::unordered_map<FileKey, std::set<uint64_t>, FileKeyHash> dirty_blocks_;
  // Blocks whose write-back is in flight: a fetch of the same block must
  // wait, or it would read stale backing data (evicted-dirty-block race).
  std::unordered_map<Key, sim::Promise<bool>, KeyHash> in_flight_stores_;
  // Files with write-backs in flight: they still count as dirty (their data
  // has not reached the backing store yet).
  std::unordered_map<FileKey, int, FileKeyHash> flushing_files_;
  CacheStats stats_;
};

}  // namespace cache

#endif  // SRC_CACHE_BUFFER_CACHE_H_
