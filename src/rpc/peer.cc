#include "src/rpc/peer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace rpc {

Peer::Peer(sim::Simulator& simulator, net::Network& network, sim::Cpu& cpu, std::string name,
           PeerOptions options)
    : simulator_(simulator),
      network_(network),
      cpu_(cpu),
      name_(std::move(name)),
      options_(options) {
  address_ = network_.AttachHost();
  work_queue_ = std::make_unique<sim::Channel<Incoming>>(simulator_);
}

void Peer::Start() {
  CHECK(!running_);
  running_ = true;
  if (!receive_loop_spawned_) {
    receive_loop_spawned_ = true;
    simulator_.Spawn(ReceiveLoop());
  }
  if (work_queue_->closed()) {
    // Restart after a crash: the old worker pool exited when the queue
    // closed; stale duplicate-cache state died with the "kernel".
    work_queue_ = std::make_unique<sim::Channel<Incoming>>(simulator_);
    dup_cache_.clear();
    dup_order_.clear();
    ++pool_generation_;
  }
  for (int i = 0; i < options_.num_workers; ++i) {
    simulator_.Spawn(Worker(pool_generation_));
  }
}

void Peer::Shutdown() {
  if (!running_) {
    return;
  }
  running_ = false;
  work_queue_->Close();
  // Fail out any calls still waiting for replies, and forget them: a late
  // reply that straggles in after a restart must not resolve a promise from
  // the previous incarnation, and the map must not leak across crash cycles.
  // Resolving a promise resumes its awaiter, so resume the callers in xid
  // (issue) order rather than hash order.
  std::vector<uint64_t> xids;
  xids.reserve(pending_.size());
  for (const auto& [xid, promise] : pending_) {  // lint: ordered-ok (sorted below)
    xids.push_back(xid);
  }
  std::sort(xids.begin(), xids.end());
  for (uint64_t xid : xids) {
    pending_.at(xid).TrySet(proto::ErrorReply(base::ErrUnavailable()));
  }
  pending_.clear();
}

sim::Duration Peer::PayloadCost(uint32_t wire_bytes) const {
  return options_.costs.per_kb * static_cast<sim::Duration>(wire_bytes) / 1024;
}

void Peer::SendEnvelope(net::Address dst, proto::Envelope envelope) {
  network_.Send(net::Packet{address_, dst, std::move(envelope)});
}

sim::Task<base::Result<proto::Reply>> Peer::Call(net::Address dst, proto::Request request) {
  return Call(dst, std::move(request), options_.default_call);
}

sim::Task<base::Result<proto::Reply>> Peer::Call(net::Address dst, proto::Request request,
                                                 CallOptions options) {
  if (!running_) {
    // Calls issued on a crashed (not yet restarted) host fail fast rather
    // than aborting: fault schedules can crash a machine out from under a
    // workload coroutine that is about to issue an RPC.
    co_return base::ErrUnavailable();
  }
  uint64_t xid = next_xid_++;
  client_ops_.Add(proto::KindOf(request));

  trace::Span call_span;
  if (trace::Active() != nullptr) {
    call_span.Begin("rpc.call", address_.host,
                    "op=" + std::string(proto::OpKindName(proto::KindOf(request))) +
                        " xid=" + std::to_string(xid) + " dst=" + std::to_string(dst.host));
  }

  uint32_t wire = proto::WireSize(request);
  co_await cpu_.Run(options_.costs.client_per_call + PayloadCost(wire));

  sim::Duration timeout = options.timeout;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retransmissions_;
      TRACE_INSTANT("rpc.retransmit", address_.host,
                    "xid=" + std::to_string(xid) + " attempt=" + std::to_string(attempt + 1));
      LOG_DEBUG("rpc", "%s retransmit xid=%llu attempt=%d", name_.c_str(),
                static_cast<unsigned long long>(xid), attempt + 1);
    }
    sim::Promise<proto::Reply> promise(simulator_);
    pending_.insert_or_assign(xid, promise);

    trace::Span attempt_span;
    if (trace::Active() != nullptr) {
      attempt_span.Begin("rpc.attempt", address_.host,
                         "attempt=" + std::to_string(attempt + 1));
    }

    proto::Envelope env;
    env.xid = xid;
    env.is_reply = false;
    env.trace_span = attempt_span.id();
    env.request = request;  // copy retained for retransmission
    SendEnvelope(dst, std::move(env));

    // The timeout races the reply for the promise.
    simulator_.Schedule(timeout, [promise]() mutable {
      promise.TrySet(proto::ErrorReply(base::ErrTimedOut()));
    });

    proto::Reply reply = co_await promise.GetFuture();
    if (reply.status != base::ErrTimedOut()) {
      pending_.erase(xid);
      co_await cpu_.Run(PayloadCost(proto::WireSize(reply)));
      attempt_span.End("status=reply");
      call_span.End("status=done attempts=" + std::to_string(attempt + 1));
      co_return reply;
    }
    attempt_span.End("status=timeout");
    timeout = static_cast<sim::Duration>(static_cast<double>(timeout) * options.backoff);
  }
  pending_.erase(xid);
  call_span.End("status=timeout attempts=" + std::to_string(options.max_attempts));
  co_return base::ErrTimedOut();
}

sim::Task<void> Peer::ReceiveLoop() {
  sim::Channel<net::Packet>& rx = network_.Rx(address_);
  while (true) {
    std::optional<net::Packet> packet = co_await rx.Recv();
    if (!packet.has_value()) {
      co_return;
    }
    if (!running_) {
      continue;  // crashed host: discard anything queued
    }
    if (packet->envelope.is_reply) {
      HandleIncomingReply(std::move(*packet));
    } else {
      HandleIncomingRequest(std::move(*packet));
    }
  }
}

void Peer::HandleIncomingReply(net::Packet packet) {
  auto it = pending_.find(packet.envelope.xid);
  if (it == pending_.end()) {
    // Late duplicate reply after the call completed; drop it.
    return;
  }
  it->second.TrySet(std::move(packet.envelope.reply));
}

void Peer::HandleIncomingRequest(net::Packet packet) {
  DupKey key{packet.src.host, packet.envelope.xid};
  auto it = dup_cache_.find(key);
  if (it != dup_cache_.end()) {
    ++duplicates_suppressed_;
    if (trace::Recorder* recorder = trace::Active()) {
      recorder->InstantInSpan(packet.envelope.trace_span, "rpc.dup_hit", address_.host,
                              "from=" + std::to_string(packet.src.host) +
                                  " xid=" + std::to_string(packet.envelope.xid) +
                                  " done=" + (it->second.done ? "1" : "0"));
    }
    if (it->second.done) {
      // Resend the cached reply without re-executing (exactly-once effect).
      proto::Envelope env;
      env.xid = packet.envelope.xid;
      env.is_reply = true;
      env.reply = it->second.reply;
      SendEnvelope(packet.src, std::move(env));
    }
    // else: still executing; the client will retry again.
    return;
  }
  dup_cache_.emplace(key, DupEntry{});
  dup_order_.push_back(key);
  // Evict oldest-first, skipping in-progress entries *in place*: rotating
  // them to the back would scramble FIFO order and, worse, stop eviction
  // entirely while any entry is in flight, letting the cache grow without
  // bound. The deque can only hold more than dup_cache_entries keys while
  // the excess is all in-progress (bounded by the worker pool + queue).
  for (auto it = dup_order_.begin();
       dup_cache_.size() > options_.dup_cache_entries && it != dup_order_.end();) {
    auto vit = dup_cache_.find(*it);
    if (vit != dup_cache_.end() && !vit->second.done) {
      ++it;  // in flight: keep it, and keep its place in line
      continue;
    }
    if (vit != dup_cache_.end()) {
      dup_cache_.erase(vit);
    }
    it = dup_order_.erase(it);
  }
  work_queue_->Send(Incoming{packet.src, packet.envelope.xid, std::move(packet.envelope.request),
                             packet.envelope.trace_span});
}

sim::Task<void> Peer::Worker(uint64_t generation) {
  while (generation == pool_generation_) {
    std::optional<Incoming> incoming = co_await work_queue_->Recv();
    if (!incoming.has_value() || generation != pool_generation_) {
      co_return;
    }
    if (worker_hook_) {
      worker_hook_(WorkerEvent{WorkerEvent::Phase::kBeforeHandler, incoming->xid,
                               incoming->from.host, &incoming->request});
    }
    trace::Span handle_span;
    if (trace::Active() != nullptr) {
      // Parent under the client attempt's span (carried in the envelope), so
      // the server-side execution hangs off the call that caused it.
      handle_span.BeginUnder(
          incoming->trace_span, "rpc.handle", address_.host,
          "op=" + std::string(proto::OpKindName(proto::KindOf(incoming->request))) +
              " from=" + std::to_string(incoming->from.host) +
              " xid=" + std::to_string(incoming->xid) + " gen=" + std::to_string(generation));
    }
    uint32_t wire = proto::WireSize(incoming->request);
    co_await cpu_.Run(options_.costs.server_per_call + PayloadCost(wire));
    if (generation != pool_generation_) {
      // Crashed before the handler ran: the request died with the kernel.
      co_return;
    }

    proto::Reply reply;
    if (handler_) {
      server_ops_.Add(proto::KindOf(incoming->request));
      // The request is moved into the handler — it arrived by value over the
      // (simulated) wire and nothing else needs it; see the WorkerEvent note
      // about what the kAfterHandler hook may observe.
      reply = co_await handler_(std::move(incoming->request), incoming->from);
    } else {
      reply = proto::ErrorReply(base::ErrNotSupported());
    }
    if (worker_hook_) {
      worker_hook_(WorkerEvent{WorkerEvent::Phase::kAfterHandler, incoming->xid,
                               incoming->from.host, &incoming->request});
    }
    if (generation != pool_generation_) {
      // The server crashed (and possibly restarted) while the handler was
      // running. The reply reflects pre-crash state: sending it would be a
      // ghost reply from a dead generation, and recording it would poison
      // the *new* generation's duplicate cache under the same key as the
      // client's retransmission. Drop both.
      ++stale_replies_dropped_;
      LOG_DEBUG("rpc", "%s dropped stale reply xid=%llu gen=%llu", name_.c_str(),
                static_cast<unsigned long long>(incoming->xid),
                static_cast<unsigned long long>(generation));
      co_return;
    }

    DupKey key{incoming->from.host, incoming->xid};
    auto it = dup_cache_.find(key);
    if (it != dup_cache_.end()) {
      it->second.done = true;
      it->second.reply = reply;
    }

    bool handler_ok = reply.status.ok();
    proto::Envelope env;
    env.xid = incoming->xid;
    env.is_reply = true;
    env.trace_span = handle_span.id();
    env.reply = std::move(reply);
    SendEnvelope(incoming->from, std::move(env));
    handle_span.End(std::string("ok=") + (handler_ok ? "1" : "0"));
  }
}

}  // namespace rpc
