// rpc::Peer — one RPC endpoint per host, playing both roles:
//
//  * client stub: Call() assigns an XID, charges client CPU, transmits, and
//    waits for the matching reply with timeout + exponential-backoff
//    retransmission (Sun-RPC-over-UDP style);
//  * server: a pool of worker threads (simulated) drains a request queue
//    and runs the registered handler. A duplicate-request cache (after
//    Juszczak [3], cited by the paper) suppresses re-execution of retried
//    non-idempotent operations: retransmits of in-progress calls are
//    dropped, retransmits of completed calls get the cached reply.
//
// SNFS needs both roles on both machines: clients must serve the server's
// callback RPCs (§4.2.2 "we simply use the existing NFS server code").
#ifndef SRC_RPC_PEER_H_
#define SRC_RPC_PEER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/base/result.h"
#include "src/metrics/op_counters.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/sim/cpu.h"
#include "src/sim/future.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace rpc {

// CPU cost charged per RPC at each end. The per-kilobyte term models data
// copies / checksums for read and write payloads.
struct CostModel {
  sim::Duration client_per_call = sim::Usec(400);
  sim::Duration server_per_call = sim::Usec(600);
  sim::Duration per_kb = sim::Usec(120);
};

struct CallOptions {
  sim::Duration timeout = sim::Sec(1);
  int max_attempts = 6;
  double backoff = 2.0;
};

struct PeerOptions {
  int num_workers = 4;
  CostModel costs;
  CallOptions default_call;
  size_t dup_cache_entries = 1024;
};

// Observation points inside the server worker loop, used by the fault
// harness to script "crash mid-RPC-handler": a kBeforeHandler hook can
// schedule (or synchronously trigger) a crash that lands while the handler
// coroutine is still running.
//
// `request` is valid to inspect at kBeforeHandler. At kAfterHandler the
// worker has already moved the request into the handler, so the pointee is
// in a moved-from (valid but unspecified) state; hooks that need request
// contents must capture them at kBeforeHandler.
struct WorkerEvent {
  enum class Phase { kBeforeHandler, kAfterHandler };
  Phase phase;
  uint64_t xid = 0;
  int from_host = -1;
  const proto::Request* request = nullptr;
};

class Peer {
 public:
  using Handler =
      std::function<sim::Task<proto::Reply>(proto::Request, net::Address from)>;
  using WorkerHook = std::function<void(const WorkerEvent&)>;

  Peer(sim::Simulator& simulator, net::Network& network, sim::Cpu& cpu, std::string name,
       PeerOptions options = {});

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  net::Address address() const { return address_; }
  const std::string& name() const { return name_; }

  // Server role: install the request handler. May be left unset on pure
  // clients; requests then get kNotSupported replies.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  // Fault-injection hook: observe worker dispatches (before the handler
  // starts and after it returns). Unset in production configurations.
  void set_worker_hook(WorkerHook hook) { worker_hook_ = std::move(hook); }

  // Spawn the receive loop and worker pool.
  void Start();

  // Stop accepting traffic and wake parked daemons so they exit. In-flight
  // handlers run to completion but their replies are dropped if the host is
  // marked down in the Network.
  void Shutdown();

  // Issue an RPC and await the reply (or kTimedOut after retries).
  sim::Task<base::Result<proto::Reply>> Call(net::Address dst, proto::Request request);
  sim::Task<base::Result<proto::Reply>> Call(net::Address dst, proto::Request request,
                                             CallOptions options);

  // Counters: calls this peer issued (client role) and calls it executed
  // (server role, duplicates excluded).
  metrics::OpCounters& client_ops() { return client_ops_; }
  metrics::OpCounters& server_ops() { return server_ops_; }
  const metrics::OpCounters& client_ops() const { return client_ops_; }
  const metrics::OpCounters& server_ops() const { return server_ops_; }

  uint64_t retransmissions() const { return retransmissions_; }
  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  // Replies a worker finished computing after its generation died (server
  // crash/restart mid-handler) and therefore discarded.
  uint64_t stale_replies_dropped() const { return stale_replies_dropped_; }

  // Introspection for the fault harness and regression tests.
  size_t dup_cache_size() const { return dup_cache_.size(); }
  size_t dup_cache_in_progress() const {
    size_t n = 0;
    for (const auto& [key, entry] : dup_cache_) {  // lint: ordered-ok (commutative count)
      if (!entry.done) {
        ++n;
      }
    }
    return n;
  }
  size_t pending_calls() const { return pending_.size(); }
  uint64_t generation() const { return pool_generation_; }
  bool running() const { return running_; }

  sim::Cpu& cpu() { return cpu_; }

 private:
  struct DupKey {
    int host;
    uint64_t xid;
    friend bool operator==(const DupKey&, const DupKey&) = default;
  };
  struct DupKeyHash {
    size_t operator()(const DupKey& k) const {
      return std::hash<uint64_t>()(k.xid * 1000003ULL + static_cast<uint64_t>(k.host));
    }
  };
  struct DupEntry {
    bool done = false;
    proto::Reply reply;  // valid when done
  };
  struct Incoming {
    net::Address from;
    uint64_t xid;
    proto::Request request;
    uint64_t trace_span = 0;  // sender's span, parents the handler span
  };

  sim::Task<void> ReceiveLoop();
  sim::Task<void> Worker(uint64_t generation);
  void HandleIncomingRequest(net::Packet packet);
  void HandleIncomingReply(net::Packet packet);
  void SendEnvelope(net::Address dst, proto::Envelope envelope);
  sim::Duration PayloadCost(uint32_t wire_bytes) const;

  sim::Simulator& simulator_;
  net::Network& network_;
  sim::Cpu& cpu_;
  std::string name_;
  PeerOptions options_;
  net::Address address_;
  Handler handler_;
  WorkerHook worker_hook_;
  bool running_ = false;
  bool receive_loop_spawned_ = false;
  uint64_t pool_generation_ = 0;

  uint64_t next_xid_ = 1;
  std::unordered_map<uint64_t, sim::Promise<proto::Reply>> pending_;

  std::unique_ptr<sim::Channel<Incoming>> work_queue_;
  std::unordered_map<DupKey, DupEntry, DupKeyHash> dup_cache_;
  std::deque<DupKey> dup_order_;  // FIFO eviction

  metrics::OpCounters client_ops_;
  metrics::OpCounters server_ops_;
  uint64_t retransmissions_ = 0;
  uint64_t duplicates_suppressed_ = 0;
  uint64_t stale_replies_dropped_ = 0;
};

// Helper to unwrap a typed reply body from a generic Reply.
template <typename T>
base::Result<T> Expect(base::Result<proto::Reply> reply) {
  if (!reply.ok()) {
    return reply.status();
  }
  if (!reply->status.ok()) {
    return reply->status;
  }
  T* body = std::get_if<T>(&reply->body);
  if (body == nullptr) {
    return base::ErrIo();
  }
  return std::move(*body);
}

}  // namespace rpc

#endif  // SRC_RPC_PEER_H_
