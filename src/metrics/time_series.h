// Time-series collection for the server-load figures (5-1/5-2): a sampler
// daemon reads cumulative quantities (CPU busy time, RPC counts) every
// window and stores per-window rates.
#ifndef SRC_METRICS_TIME_SERIES_H_
#define SRC_METRICS_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace metrics {

struct Sample {
  sim::Time at = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  void Push(sim::Time at, double value) { samples_.push_back({at, value}); }

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  double Max() const {
    double m = 0;
    for (const Sample& s : samples_) {
      m = s.value > m ? s.value : m;
    }
    return m;
  }

  double Mean() const {
    if (samples_.empty()) {
      return 0;
    }
    double sum = 0;
    for (const Sample& s : samples_) {
      sum += s.value;
    }
    return sum / static_cast<double>(samples_.size());
  }

  // Pearson correlation of the two series over the timestamps present in
  // BOTH. Samples are matched by `at` (two-pointer merge over the
  // time-ordered series), not by index, so a series that missed a sampling
  // window does not shift every later pair against the wrong partner.
  // Returns 0 when fewer than two timestamps align, or when either aligned
  // sub-series has zero variance (the correlation is undefined; 0 reads as
  // "no linear relationship observed").
  // The paper observes server load is strongly correlated with aggregate
  // call rate but not with read/write rate.
  static double Correlation(const TimeSeries& a, const TimeSeries& b);

 private:
  std::vector<Sample> samples_;
};

}  // namespace metrics

#endif  // SRC_METRICS_TIME_SERIES_H_
