// Aligned text-table output for benchmark binaries. Each bench prints the
// paper's table layout with our measured values (and, where the paper's
// numbers are legible, the paper's values side by side).
#ifndef SRC_METRICS_TABLE_H_
#define SRC_METRICS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string Num(double v, int precision = 1);
  static std::string Int(uint64_t v);
  static std::string Pct(double fraction, int precision = 1);  // 0.17 -> "17.0%"
  static std::string Seconds(double v);                        // "127.3 s"

  // Render with a header rule and column padding.
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace metrics

#endif  // SRC_METRICS_TABLE_H_
