#include "src/metrics/table.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"

namespace metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::Seconds(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f s", v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace metrics
