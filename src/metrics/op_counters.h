// Per-operation RPC counters, the currency of the paper's Tables 5-2, 5-4
// and 5-6 ("RPC calls for ... benchmark") and of the call-rate curves in
// Figures 5-1/5-2.
#ifndef SRC_METRICS_OP_COUNTERS_H_
#define SRC_METRICS_OP_COUNTERS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/proto/messages.h"

namespace metrics {

class OpCounters {
 public:
  void Add(proto::OpKind kind, uint64_t n = 1) { counts_[Index(kind)] += n; }

  uint64_t Get(proto::OpKind kind) const { return counts_[Index(kind)]; }

  uint64_t Total() const {
    uint64_t sum = 0;
    for (uint64_t c : counts_) {
      sum += c;
    }
    return sum;
  }

  // "Data transfer operations" in the paper's Table 5-2 analysis.
  uint64_t DataTransfer() const {
    return Get(proto::OpKind::kRead) + Get(proto::OpKind::kWrite);
  }

  // Everything that is neither a read nor a write (Table 5-6's "Others").
  uint64_t Others() const { return Total() - DataTransfer(); }

  // Visits (kind, count) for every non-zero counter, in OpKind declaration
  // order. The order is a guarantee: exporters (bench --json) rely on it to
  // produce byte-stable output across runs and platforms.
  template <typename Fn>
  void ForEachNonZero(Fn&& fn) const {
    for (int i = 0; i < proto::kNumOpKinds; ++i) {
      if (counts_[static_cast<size_t>(i)] != 0) {
        fn(static_cast<proto::OpKind>(i), counts_[static_cast<size_t>(i)]);
      }
    }
  }

  OpCounters Diff(const OpCounters& earlier) const {
    OpCounters d;
    for (int i = 0; i < proto::kNumOpKinds; ++i) {
      d.counts_[i] = counts_[i] - earlier.counts_[i];
    }
    return d;
  }

  void Reset() { counts_.fill(0); }

 private:
  static constexpr size_t Index(proto::OpKind kind) { return static_cast<size_t>(kind); }

  std::array<uint64_t, proto::kNumOpKinds> counts_{};
};

// One machine's counters, tagged with its testbed machine id. Fleet benches
// collect one of these per server / per client.
struct MachineOps {
  int machine = 0;
  OpCounters ops;
};

// Sums counters across machines. The input is sorted by machine id first
// (ids must be distinct) so the result — and anything an exporter derives
// from the sorted copy — is deterministic regardless of collection order.
OpCounters SumAcrossMachines(std::vector<MachineOps> machines);

}  // namespace metrics

#endif  // SRC_METRICS_OP_COUNTERS_H_
