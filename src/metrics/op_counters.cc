#include "src/metrics/op_counters.h"

#include <algorithm>

#include "src/base/check.h"

namespace metrics {

OpCounters SumAcrossMachines(std::vector<MachineOps> machines) {
  std::sort(machines.begin(), machines.end(),
            [](const MachineOps& a, const MachineOps& b) { return a.machine < b.machine; });
  OpCounters sum;
  for (size_t i = 0; i < machines.size(); ++i) {
    if (i > 0) {
      CHECK_NE(machines[i].machine, machines[i - 1].machine);
    }
    machines[i].ops.ForEachNonZero(
        [&sum](proto::OpKind kind, uint64_t n) { sum.Add(kind, n); });
  }
  return sum;
}

}  // namespace metrics
