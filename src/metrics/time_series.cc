#include "src/metrics/time_series.h"

#include <cmath>

#include "src/base/check.h"

namespace metrics {

double TimeSeries::Correlation(const TimeSeries& a, const TimeSeries& b) {
  size_t n = a.samples_.size() < b.samples_.size() ? a.samples_.size() : b.samples_.size();
  if (n < 2) {
    return 0.0;
  }
  double mean_a = 0;
  double mean_b = 0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a.samples_[i].value;
    mean_b += b.samples_[i].value;
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0;
  double var_a = 0;
  double var_b = 0;
  for (size_t i = 0; i < n; ++i) {
    double da = a.samples_[i].value - mean_a;
    double db = b.samples_[i].value - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0 || var_b == 0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace metrics
