#include "src/metrics/time_series.h"

#include <cmath>
#include <utility>
#include <vector>

#include "src/base/check.h"

namespace metrics {

double TimeSeries::Correlation(const TimeSeries& a, const TimeSeries& b) {
  // Align by timestamp: both series are pushed in time order by the sampler
  // daemons, but one may have missed windows (machine down, late start).
  // Pairing by index would then correlate values sampled at different times.
  std::vector<std::pair<double, double>> aligned;
  size_t i = 0;
  size_t j = 0;
  while (i < a.samples_.size() && j < b.samples_.size()) {
    if (a.samples_[i].at < b.samples_[j].at) {
      ++i;
    } else if (b.samples_[j].at < a.samples_[i].at) {
      ++j;
    } else {
      aligned.emplace_back(a.samples_[i].value, b.samples_[j].value);
      ++i;
      ++j;
    }
  }
  size_t n = aligned.size();
  if (n < 2) {
    return 0.0;  // correlation needs at least two aligned points
  }
  double mean_a = 0;
  double mean_b = 0;
  for (const auto& [va, vb] : aligned) {
    mean_a += va;
    mean_b += vb;
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0;
  double var_a = 0;
  double var_b = 0;
  for (const auto& [va, vb] : aligned) {
    double da = va - mean_a;
    double db = vb - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0 || var_b == 0) {
    return 0.0;  // a constant series correlates with nothing
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace metrics
