// A simple value histogram for per-op latency percentiles (p50/p95/p99 in
// the bench output). Values are kept exactly and percentiles computed by
// nearest-rank on demand; bench-scale populations (thousands of RPCs) make
// the O(n log n) sort irrelevant.
#ifndef SRC_METRICS_HISTOGRAM_H_
#define SRC_METRICS_HISTOGRAM_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace metrics {

class Histogram {
 public:
  void Add(double value) { values_.push_back(value); }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Min() const {
    return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
  }
  double Max() const {
    return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
  }

  double Mean() const {
    if (values_.empty()) {
      return 0.0;
    }
    double sum = 0;
    for (double v : values_) {
      sum += v;
    }
    return sum / static_cast<double>(values_.size());
  }

  // Nearest-rank percentile: the smallest value such that at least p percent
  // of the population is <= it. `p` in [0, 100].
  double Percentile(double p) const {
    if (values_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0) {
      return sorted.front();
    }
    size_t rank = static_cast<size_t>(p / 100.0 * static_cast<double>(sorted.size()) + 0.999999);
    if (rank == 0) {
      rank = 1;
    }
    if (rank > sorted.size()) {
      rank = sorted.size();
    }
    return sorted[rank - 1];
  }

 private:
  std::vector<double> values_;
};

}  // namespace metrics

#endif  // SRC_METRICS_HISTOGRAM_H_
