// Shared protocol data types: file handles and attributes.
//
// These mirror the NFS v2 notions the paper builds on: a FileHandle is an
// opaque server-issued identifier (here: fs id + inode number + generation)
// and Attr is the getattr record (type, size, mtime, ...). SNFS adds a file
// version number used to validate client caches across opens (§3.1).
#ifndef SRC_PROTO_TYPES_H_
#define SRC_PROTO_TYPES_H_

#include <cstdint>
#include <functional>

#include "src/sim/time.h"

namespace proto {

struct FileHandle {
  uint32_t fsid = 0;     // which exported file system
  uint64_t fileid = 0;   // inode number
  uint32_t gen = 0;      // inode generation (guards against reuse)

  friend bool operator==(const FileHandle&, const FileHandle&) = default;
  friend auto operator<=>(const FileHandle&, const FileHandle&) = default;
};

struct FileHandleHash {
  size_t operator()(const FileHandle& fh) const {
    uint64_t h = fh.fileid * 0x9E3779B97F4A7C15ULL;
    h ^= (static_cast<uint64_t>(fh.fsid) << 32) | fh.gen;
    h *= 0xBF58476D1CE4E5B9ULL;
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

enum class FileType : uint8_t {
  kRegular,
  kDirectory,
};

struct Attr {
  FileType type = FileType::kRegular;
  uint64_t size = 0;
  uint32_t nlink = 1;
  sim::Time mtime = 0;   // data modification time
  sim::Time ctime = 0;   // attribute change time
  uint64_t fileid = 0;

  friend bool operator==(const Attr&, const Attr&) = default;
};

}  // namespace proto

#endif  // SRC_PROTO_TYPES_H_
