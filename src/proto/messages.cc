#include "src/proto/messages.h"

namespace proto {
namespace {

// RPC + UDP + IP + Ethernet framing overhead per message.
constexpr uint32_t kHeaderBytes = 110;
// File handle on the wire (NFS uses 32 bytes).
constexpr uint32_t kFhBytes = 32;
// Attribute record (NFS fattr is 68 bytes).
constexpr uint32_t kAttrBytes = 68;

struct RequestSize {
  uint32_t operator()(const NullReq&) const { return 0; }
  uint32_t operator()(const GetAttrReq&) const { return kFhBytes; }
  uint32_t operator()(const SetAttrReq&) const { return kFhBytes + 24; }
  uint32_t operator()(const LookupReq& r) const {
    return kFhBytes + 4 + static_cast<uint32_t>(r.name.size());
  }
  uint32_t operator()(const ReadReq&) const { return kFhBytes + 12; }
  uint32_t operator()(const WriteReq& r) const {
    return kFhBytes + 12 + static_cast<uint32_t>(r.data.size());
  }
  uint32_t operator()(const CreateReq& r) const {
    return kFhBytes + 4 + static_cast<uint32_t>(r.name.size()) + 16;
  }
  uint32_t operator()(const RemoveReq& r) const {
    return kFhBytes + 4 + static_cast<uint32_t>(r.name.size());
  }
  uint32_t operator()(const RenameReq& r) const {
    return 2 * kFhBytes + 8 + static_cast<uint32_t>(r.from_name.size() + r.to_name.size());
  }
  uint32_t operator()(const MkdirReq& r) const {
    return kFhBytes + 4 + static_cast<uint32_t>(r.name.size());
  }
  uint32_t operator()(const RmdirReq& r) const {
    return kFhBytes + 4 + static_cast<uint32_t>(r.name.size());
  }
  uint32_t operator()(const ReadDirReq&) const { return kFhBytes + 12; }
  uint32_t operator()(const OpenReq&) const { return kFhBytes + 4; }
  uint32_t operator()(const CloseReq&) const { return kFhBytes + 8; }
  uint32_t operator()(const CallbackReq&) const { return kFhBytes + 12; }
  uint32_t operator()(const PingReq&) const { return 8; }
  uint32_t operator()(const ReopenReq&) const { return kFhBytes + 20; }
  uint32_t operator()(const GetLeaseReq&) const { return kFhBytes + 4; }
  uint32_t operator()(const MetaInvalReq& r) const {
    uint32_t n = 12;  // counts + drop_all flag
    n += static_cast<uint32_t>(r.handles.size()) * kFhBytes;
    for (const MetaInvalEntry& e : r.entries) {
      n += kFhBytes + 4 + static_cast<uint32_t>(e.name.size());
    }
    return n;
  }
};

struct ReplySize {
  uint32_t operator()(const std::monostate&) const { return 4; }
  uint32_t operator()(const NullRep&) const { return 4; }
  uint32_t operator()(const AttrRep&) const { return kAttrBytes; }
  uint32_t operator()(const LookupRep&) const { return kFhBytes + kAttrBytes; }
  uint32_t operator()(const ReadRep& r) const {
    return kAttrBytes + 8 + static_cast<uint32_t>(r.data.size());
  }
  uint32_t operator()(const CreateRep&) const { return kFhBytes + kAttrBytes; }
  uint32_t operator()(const ReadDirRep& r) const {
    uint32_t n = 8;
    for (const DirEntry& e : r.entries) {
      n += 16 + static_cast<uint32_t>(e.name.size());
    }
    return n;
  }
  uint32_t operator()(const OpenRep&) const { return 20 + kAttrBytes; }
  uint32_t operator()(const CloseRep&) const { return 4; }
  uint32_t operator()(const CallbackRep&) const { return 4; }
  uint32_t operator()(const PingRep&) const { return 12; }
  uint32_t operator()(const ReopenRep&) const { return 12; }
  uint32_t operator()(const GetLeaseRep&) const { return 40 + kAttrBytes; }
  uint32_t operator()(const MetaInvalRep&) const { return 4; }
};

// Bytes added to a reply that carries a piggybacked lease extension
// (fileid + expiry timestamp).
constexpr uint32_t kLeaseExtensionBytes = 12;

}  // namespace

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kNull:
      return "null";
    case OpKind::kGetAttr:
      return "getattr";
    case OpKind::kSetAttr:
      return "setattr";
    case OpKind::kLookup:
      return "lookup";
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kCreate:
      return "create";
    case OpKind::kRemove:
      return "remove";
    case OpKind::kRename:
      return "rename";
    case OpKind::kMkdir:
      return "mkdir";
    case OpKind::kRmdir:
      return "rmdir";
    case OpKind::kReadDir:
      return "readdir";
    case OpKind::kOpen:
      return "open";
    case OpKind::kClose:
      return "close";
    case OpKind::kCallback:
      return "callback";
    case OpKind::kPing:
      return "ping";
    case OpKind::kReopen:
      return "reopen";
    case OpKind::kGetLease:
      return "getlease";
    case OpKind::kMetaInval:
      return "metainval";
    case OpKind::kOpCount:
      break;
  }
  return "unknown";
}

OpKind KindOf(const Request& request) {
  struct Visitor {
    OpKind operator()(const NullReq&) const { return OpKind::kNull; }
    OpKind operator()(const GetAttrReq&) const { return OpKind::kGetAttr; }
    OpKind operator()(const SetAttrReq&) const { return OpKind::kSetAttr; }
    OpKind operator()(const LookupReq&) const { return OpKind::kLookup; }
    OpKind operator()(const ReadReq&) const { return OpKind::kRead; }
    OpKind operator()(const WriteReq&) const { return OpKind::kWrite; }
    OpKind operator()(const CreateReq&) const { return OpKind::kCreate; }
    OpKind operator()(const RemoveReq&) const { return OpKind::kRemove; }
    OpKind operator()(const RenameReq&) const { return OpKind::kRename; }
    OpKind operator()(const MkdirReq&) const { return OpKind::kMkdir; }
    OpKind operator()(const RmdirReq&) const { return OpKind::kRmdir; }
    OpKind operator()(const ReadDirReq&) const { return OpKind::kReadDir; }
    OpKind operator()(const OpenReq&) const { return OpKind::kOpen; }
    OpKind operator()(const CloseReq&) const { return OpKind::kClose; }
    OpKind operator()(const CallbackReq&) const { return OpKind::kCallback; }
    OpKind operator()(const PingReq&) const { return OpKind::kPing; }
    OpKind operator()(const ReopenReq&) const { return OpKind::kReopen; }
    OpKind operator()(const GetLeaseReq&) const { return OpKind::kGetLease; }
    OpKind operator()(const MetaInvalReq&) const { return OpKind::kMetaInval; }
  };
  return std::visit(Visitor{}, request);
}

uint32_t WireSize(const Request& request) {
  return kHeaderBytes + std::visit(RequestSize{}, request);
}

uint32_t WireSize(const Reply& reply) {
  return kHeaderBytes + std::visit(ReplySize{}, reply.body) +
         (reply.lease_file != 0 ? kLeaseExtensionBytes : 0);
}

uint32_t WireSize(const Envelope& envelope) {
  return envelope.is_reply ? WireSize(envelope.reply) : WireSize(envelope.request);
}

}  // namespace proto
