// The full RPC vocabulary: NFS procedures, the two SNFS client-to-server
// additions (open / close, §3.1), the SNFS server-to-client callback (§3.2),
// and the crash-recovery extension procedures (§2.4 / Welch's mechanism).
//
// Requests and replies are plain structs gathered into std::variants; the
// simulated transport carries them by value, and WireSize() feeds the
// network bandwidth model.
#ifndef SRC_PROTO_MESSAGES_H_
#define SRC_PROTO_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/base/status.h"
#include "src/proto/types.h"

namespace proto {

// Operation kinds, used for metric accounting (paper Tables 5-2/5-4/5-6
// bucket RPCs by operation).
enum class OpKind : uint8_t {
  kNull = 0,
  kGetAttr,
  kSetAttr,
  kLookup,
  kRead,
  kWrite,
  kCreate,
  kRemove,
  kRename,
  kMkdir,
  kRmdir,
  kReadDir,
  // SNFS additions.
  kOpen,
  kClose,
  kCallback,
  // Recovery extension.
  kPing,
  kReopen,
  // NQNFS lease addition.
  kGetLease,
  // Fleet metadata-cache invalidation.
  kMetaInval,
  kOpCount,  // sentinel
};

constexpr int kNumOpKinds = static_cast<int>(OpKind::kOpCount);

std::string_view OpKindName(OpKind kind);

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

struct NullReq {};

struct GetAttrReq {
  FileHandle fh;
};

// Only the fields NFS setattr supports that our workloads need.
struct SetAttrReq {
  FileHandle fh;
  std::optional<uint64_t> size;   // truncate
  std::optional<sim::Time> mtime;
};

struct LookupReq {
  FileHandle dir;
  std::string name;
};

struct ReadReq {
  FileHandle fh;
  uint64_t offset = 0;
  uint32_t count = 0;
};

struct WriteReq {
  FileHandle fh;
  uint64_t offset = 0;
  std::vector<uint8_t> data;
};

struct CreateReq {
  FileHandle dir;
  std::string name;
  bool exclusive = false;
  std::optional<uint64_t> truncate_to;  // create with size (usually 0)
};

struct RemoveReq {
  FileHandle dir;
  std::string name;
};

struct RenameReq {
  FileHandle from_dir;
  std::string from_name;
  FileHandle to_dir;
  std::string to_name;
};

struct MkdirReq {
  FileHandle dir;
  std::string name;
};

struct RmdirReq {
  FileHandle dir;
  std::string name;
};

struct ReadDirReq {
  FileHandle dir;
  uint64_t cookie = 0;   // resume point
  uint32_t count = 64;   // max entries per reply
};

// SNFS open (§3.1): declares intent, returns cachability + version numbers.
struct OpenReq {
  FileHandle fh;
  bool write_mode = false;
};

// SNFS close (§3.1): must carry the mode of the matching open.
struct CloseReq {
  FileHandle fh;
  bool write_mode = false;
  // Set when the client still holds dirty blocks for the file at final
  // close; lets the server enter CLOSED_DIRTY and record the last writer.
  bool has_dirty = false;
};

// SNFS callback (§3.2), server-to-client.
struct CallbackReq {
  FileHandle fh;
  bool writeback = false;    // push dirty blocks to the server now
  bool invalidate = false;   // drop cached blocks, disable caching
  // Delayed-close extension (§6.2): ask the client to relinquish a file it
  // holds in the locally-closed state so the server can reclaim the entry.
  bool relinquish = false;
};

// Recovery keepalive (§2.4): exchanged periodically; the epoch lets each
// side detect the other's reboot.
struct PingReq {
  uint64_t sender_epoch = 0;
};

// Recovery reopen: after a server reboot, each client re-asserts its state
// for one file so the server can rebuild its state table.
struct ReopenReq {
  FileHandle fh;
  uint32_t read_count = 0;    // local processes holding it open for read
  uint32_t write_count = 0;   // ... for write
  bool has_dirty = false;     // client holds dirty blocks
  uint64_t cached_version = 0;
};

// NQNFS lease request (SNIPPETS.md, freebsd 06.nfs/2.t): the client asks for
// a read or write lease on a file instead of issuing SNFS open/close pairs.
// Idempotent by construction — re-executing a grant is just an extension —
// so it needs no duplicate-request caching to be retransmit-safe.
struct GetLeaseReq {
  FileHandle fh;
  bool write_mode = false;
};

// Fleet metadata-cache invalidation (src/fleet/meta_cache.h): drop cached
// attributes for `handles`, cached name bindings for `entries`, or (for
// `drop_all`) the whole cache. Idempotent — dropping an entry twice is a
// no-op — so it is retransmit-safe without duplicate-request caching.
struct MetaInvalEntry {
  FileHandle dir;
  std::string name;
};

struct MetaInvalReq {
  std::vector<FileHandle> handles;
  std::vector<MetaInvalEntry> entries;
  bool drop_all = false;
};

using Request =
    std::variant<NullReq, GetAttrReq, SetAttrReq, LookupReq, ReadReq, WriteReq, CreateReq,
                 RemoveReq, RenameReq, MkdirReq, RmdirReq, ReadDirReq, OpenReq, CloseReq,
                 CallbackReq, PingReq, ReopenReq, GetLeaseReq, MetaInvalReq>;

OpKind KindOf(const Request& request);

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

struct NullRep {};

struct AttrRep {  // getattr, setattr, write
  Attr attr;
};

struct LookupRep {
  FileHandle fh;
  Attr attr;
};

struct ReadRep {
  std::vector<uint8_t> data;
  bool eof = false;
  Attr attr;
};

struct CreateRep {
  FileHandle fh;
  Attr attr;
};

struct DirEntry {
  uint64_t fileid = 0;
  std::string name;
  uint64_t cookie = 0;
};

struct ReadDirRep {
  std::vector<DirEntry> entries;
  bool eof = false;
};

// SNFS open reply (§3.1): cachability verdict plus both version numbers.
// "A client's cache is valid if the latest version number matches the
// version of the cached copy. If the client is opening the file for write,
// its cache is also valid if it matches the previous version number."
struct OpenRep {
  bool cache_enabled = true;
  uint64_t version = 0;
  uint64_t prev_version = 0;
  Attr attr;  // obviates the getattr NFS performs at open time
  // §3.2: set when a callback to a dead client could not complete, so the
  // file's content may not reflect that client's lost dirty blocks.
  bool possibly_inconsistent = false;
};

struct CloseRep {};

struct CallbackRep {};

struct PingRep {
  uint64_t responder_epoch = 0;
  bool in_recovery = false;
};

struct ReopenRep {
  bool cache_enabled = true;
  uint64_t version = 0;
};

// NQNFS lease reply. Version semantics match OpenRep: a cache is valid if
// the cached version matches `version`, or (for a write lease, whose grant
// caused the bump) `prev_version`. `granted` is false during the rebooted
// server's quiet window — the client then runs uncached until `retry_after`.
struct GetLeaseRep {
  bool granted = true;
  uint64_t version = 0;
  uint64_t prev_version = 0;
  sim::Time expires = 0;      // absolute virtual time the lease lapses
  sim::Time retry_after = 0;  // when !granted: when grants resume
  Attr attr;  // obviates the getattr NFS performs at open time
  // Set when a vacate callback to a dead holder could not complete before
  // its lease expired, so the holder's lost dirty blocks may be missing.
  bool possibly_inconsistent = false;
};

struct MetaInvalRep {};

using ReplyBody =
    std::variant<std::monostate, NullRep, AttrRep, LookupRep, ReadRep, CreateRep, ReadDirRep,
                 OpenRep, CloseRep, CallbackRep, PingRep, ReopenRep, GetLeaseRep, MetaInvalRep>;

struct Reply {
  base::Status status;
  ReplyBody body;
  // NQNFS piggybacked lease extension: when `lease_file` is nonzero the
  // server has extended the caller's lease on that file to `lease_expires`.
  // Always zero on NFS/SNFS replies, and WireSize() charges the extension
  // only when present, so the other protocols' timings are untouched.
  uint64_t lease_file = 0;
  sim::Time lease_expires = 0;
};

inline Reply ErrorReply(base::Status status) { return Reply{status, std::monostate{}}; }

template <typename T>
Reply OkReply(T body) {
  return Reply{base::OkStatus(), ReplyBody(std::move(body))};
}

// ---------------------------------------------------------------------------
// Wire envelope and size model
// ---------------------------------------------------------------------------

struct Envelope {
  uint64_t xid = 0;
  bool is_reply = false;
  // Causal trace span of the sender (src/trace): requests carry the client
  // attempt's span so the server handler can parent under it; replies carry
  // the handler's span. Debug metadata — deliberately excluded from
  // WireSize() so enabling tracing cannot change simulated timings.
  uint64_t trace_span = 0;
  Request request;  // valid when !is_reply
  Reply reply;      // valid when is_reply

  // The transport moves envelopes end to end; the only legitimate copy is
  // the fault injector duplicating an in-flight packet. The copy operations
  // count themselves so a guard test (network_test.cc) can pin that
  // invariant: accidental copies of write payloads are a real simulator
  // slowdown and this keeps them from creeping back in. Moves stay
  // defaulted (and therefore free of bookkeeping).
  Envelope() = default;
  Envelope(Envelope&&) noexcept = default;
  Envelope& operator=(Envelope&&) noexcept = default;
  Envelope(const Envelope& other)
      : xid(other.xid),
        is_reply(other.is_reply),
        trace_span(other.trace_span),
        request(other.request),
        reply(other.reply) {
    ++copies_;
  }
  Envelope& operator=(const Envelope& other) {
    if (this != &other) {
      xid = other.xid;
      is_reply = other.is_reply;
      trace_span = other.trace_span;
      request = other.request;
      reply = other.reply;
      ++copies_;
    }
    return *this;
  }

  static uint64_t copy_count() { return copies_; }
  static void reset_copy_count() { copies_ = 0; }

 private:
  static inline uint64_t copies_ = 0;
};

// Approximate on-the-wire bytes (RPC/UDP/IP headers plus payload); drives
// the network serialization-delay model.
uint32_t WireSize(const Request& request);
uint32_t WireSize(const Reply& reply);
uint32_t WireSize(const Envelope& envelope);

}  // namespace proto

#endif  // SRC_PROTO_MESSAGES_H_
