// Minimal leveled logging for the simulator.
//
// Logging is off by default (benchmarks must not pay for it); tests and
// examples enable it with base::SetLogLevel. The simulator injects the
// current virtual time via a thread-local hook so log lines are ordered by
// simulated time, not wall-clock time.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <cstdarg>
#include <cstdint>

namespace base {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Hook the simulator installs so log lines carry virtual timestamps
// (microseconds). Returns -1 when no simulator is running.
using NowHook = int64_t (*)();
void SetLogNowHook(NowHook hook);
// Null when no hook is installed (i.e. no simulator is live); lets tests
// verify the hook lifecycle across interleaved simulator lifetimes.
NowHook GetLogNowHook();

// printf-style. Prefer the LOG_* macros below, which skip argument
// evaluation when the level is disabled.
void LogVprintf(LogLevel level, const char* tag, const char* fmt, va_list ap);
void Logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace base

#define LOG_ENABLED(level) (::base::GetLogLevel() >= (level))

#define LOG_ERROR(tag, ...)                                        \
  do {                                                             \
    if (LOG_ENABLED(::base::LogLevel::kError)) {                   \
      ::base::Logf(::base::LogLevel::kError, (tag), __VA_ARGS__);  \
    }                                                              \
  } while (0)

#define LOG_INFO(tag, ...)                                         \
  do {                                                             \
    if (LOG_ENABLED(::base::LogLevel::kInfo)) {                    \
      ::base::Logf(::base::LogLevel::kInfo, (tag), __VA_ARGS__);   \
    }                                                              \
  } while (0)

#define LOG_DEBUG(tag, ...)                                        \
  do {                                                             \
    if (LOG_ENABLED(::base::LogLevel::kDebug)) {                   \
      ::base::Logf(::base::LogLevel::kDebug, (tag), __VA_ARGS__);  \
    }                                                              \
  } while (0)

#endif  // SRC_BASE_LOG_H_
