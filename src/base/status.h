// Error codes used throughout the Spritely NFS reproduction.
//
// The codes mirror the errno values a Unix file system / NFS implementation
// would surface, plus transport-level conditions (timeouts, stale handles).
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>
#include <string_view>

namespace base {

enum class Code : uint8_t {
  kOk = 0,
  kNoEnt,         // ENOENT: no such file or directory
  kExist,         // EEXIST: file exists
  kIsDir,         // EISDIR: is a directory
  kNotDir,        // ENOTDIR: not a directory
  kNotEmpty,      // ENOTEMPTY: directory not empty
  kAccess,        // EACCES: permission denied
  kNoSpace,       // ENOSPC: out of blocks / inodes
  kInval,         // EINVAL: invalid argument
  kBadFd,         // EBADF: bad file descriptor
  kStale,         // ESTALE: stale file handle (server lost the file)
  kTimedOut,      // ETIMEDOUT: RPC gave up after retransmissions
  kIo,            // EIO: disk or transport failure
  kBusy,          // EBUSY: resource busy
  kNotSupported,  // operation not implemented by this file system
  kUnavailable,   // server down / in recovery grace period
  kInconsistent,  // SNFS: file may be inconsistent (dead-client callback, §3.2)
  kXDev,          // EXDEV: cross-device (cross-mount / cross-shard) rename
};

// Returns the canonical lowercase name, e.g. "stale" for Code::kStale.
std::string_view CodeName(Code code);

// A lightweight status word: an error code only, no message allocation.
// Simulation-scale error handling never needs dynamic messages; callers that
// want context attach it at the logging site.
class [[nodiscard]] Status {
 public:
  constexpr Status() : code_(Code::kOk) {}
  constexpr explicit Status(Code code) : code_(code) {}

  [[nodiscard]] static constexpr Status Ok() { return Status(); }

  constexpr bool ok() const { return code_ == Code::kOk; }
  constexpr Code code() const { return code_; }
  std::string_view name() const { return CodeName(code_); }

  friend constexpr bool operator==(Status a, Status b) { return a.code_ == b.code_; }
  friend constexpr bool operator!=(Status a, Status b) { return a.code_ != b.code_; }

 private:
  Code code_;
};

[[nodiscard]] constexpr Status OkStatus() { return Status(); }
[[nodiscard]] constexpr Status ErrNoEnt() { return Status(Code::kNoEnt); }
[[nodiscard]] constexpr Status ErrExist() { return Status(Code::kExist); }
[[nodiscard]] constexpr Status ErrIsDir() { return Status(Code::kIsDir); }
[[nodiscard]] constexpr Status ErrNotDir() { return Status(Code::kNotDir); }
[[nodiscard]] constexpr Status ErrNotEmpty() { return Status(Code::kNotEmpty); }
[[nodiscard]] constexpr Status ErrAccess() { return Status(Code::kAccess); }
[[nodiscard]] constexpr Status ErrNoSpace() { return Status(Code::kNoSpace); }
[[nodiscard]] constexpr Status ErrInval() { return Status(Code::kInval); }
[[nodiscard]] constexpr Status ErrBadFd() { return Status(Code::kBadFd); }
[[nodiscard]] constexpr Status ErrStale() { return Status(Code::kStale); }
[[nodiscard]] constexpr Status ErrTimedOut() { return Status(Code::kTimedOut); }
[[nodiscard]] constexpr Status ErrIo() { return Status(Code::kIo); }
[[nodiscard]] constexpr Status ErrBusy() { return Status(Code::kBusy); }
[[nodiscard]] constexpr Status ErrNotSupported() { return Status(Code::kNotSupported); }
[[nodiscard]] constexpr Status ErrUnavailable() { return Status(Code::kUnavailable); }
[[nodiscard]] constexpr Status ErrInconsistent() { return Status(Code::kInconsistent); }
[[nodiscard]] constexpr Status ErrXDev() { return Status(Code::kXDev); }

}  // namespace base

#endif  // SRC_BASE_STATUS_H_
