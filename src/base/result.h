// Result<T>: value-or-Status, the return type of all fallible operations.
//
// C++20 has no std::expected, so this is a small dedicated implementation.
// Usage:
//   base::Result<int> r = Parse(s);
//   if (!r.ok()) return r.status();
//   Use(r.value());
#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <optional>
#include <utility>

#include "src/base/check.h"
#include "src/base/status.h"

namespace base {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value and from Status, so `return value;` and
  // `return base::ErrNoEnt();` both work.
  Result(T value) : status_(OkStatus()), value_(std::move(value)) {}
  Result(Status status) : status_(status) { CHECK(!status.ok()); }
  Result(Code code) : status_(Status(code)) { CHECK(code != Code::kOk); }

  bool ok() const { return status_.ok(); }
  Status status() const { return status_; }

  T& value() & {
    CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    CHECK(ok());
    return *value_;
  }
  T&& value() && {
    CHECK(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Result<void>: just a Status with the Result interface, so generic code
// (coroutine return types, RETURN_IF_ERROR) treats fallible void operations
// uniformly.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : status_(OkStatus()) {}
  Result(Status status) : status_(status) {}
  Result(Code code) : status_(Status(code)) {}

  bool ok() const { return status_.ok(); }
  Status status() const { return status_; }

 private:
  Status status_;
};

// Propagate an error from a Result or Status expression.
//
//   RETURN_IF_ERROR(co_await fs.Remove(dir, name));
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    auto _status = ::base::GetStatus((expr));   \
    if (!_status.ok()) {                        \
      return _status;                           \
    }                                           \
  } while (0)

// Coroutine flavour: co_return the error instead.
#define CO_RETURN_IF_ERROR(expr)                \
  do {                                          \
    auto _status = ::base::GetStatus((expr));   \
    if (!_status.ok()) {                        \
      co_return _status;                        \
    }                                           \
  } while (0)

inline Status GetStatus(Status s) { return s; }
template <typename T>
Status GetStatus(const Result<T>& r) {
  return r.status();
}

// ASSIGN_OR_RETURN(lhs, rexpr): evaluate rexpr (a Result<T>); on error return
// (or co_return with the CO_ variant) the status, else assign the value.
#define ASSIGN_OR_RETURN(lhs, rexpr) ASSIGN_OR_RETURN_IMPL_(BASE_CONCAT_(_r, __LINE__), lhs, rexpr, return)
#define CO_ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL_(BASE_CONCAT_(_r, __LINE__), lhs, rexpr, co_return)

#define ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr, ret) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) {                                   \
    ret tmp.status();                                \
  }                                                  \
  lhs = std::move(tmp).value()

#define BASE_CONCAT_INNER_(a, b) a##b
#define BASE_CONCAT_(a, b) BASE_CONCAT_INNER_(a, b)

}  // namespace base

#endif  // SRC_BASE_RESULT_H_
