// CHECK macros: invariant enforcement that aborts with location info.
// These stay enabled in release builds; a simulator with silently corrupted
// state produces plausible-looking but wrong results.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace base {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace base

#define CHECK(expr)                                  \
  do {                                               \
    if (!(expr)) {                                   \
      ::base::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                \
  } while (0)

#define CHECK_EQ(a, b) CHECK((a) == (b))
#define CHECK_NE(a, b) CHECK((a) != (b))
#define CHECK_LT(a, b) CHECK((a) < (b))
#define CHECK_LE(a, b) CHECK((a) <= (b))
#define CHECK_GT(a, b) CHECK((a) > (b))
#define CHECK_GE(a, b) CHECK((a) >= (b))
#define CHECK_OK(expr) CHECK((expr).ok())

#endif  // SRC_BASE_CHECK_H_
