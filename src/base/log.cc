#include "src/base/log.h"

#include <cstdio>

namespace base {
namespace {

LogLevel g_level = LogLevel::kNone;
NowHook g_now_hook = nullptr;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }
void SetLogNowHook(NowHook hook) { g_now_hook = hook; }
NowHook GetLogNowHook() { return g_now_hook; }

void LogVprintf(LogLevel level, const char* tag, const char* fmt, va_list ap) {
  int64_t now_us = g_now_hook != nullptr ? g_now_hook() : -1;
  if (now_us >= 0) {
    std::fprintf(stderr, "[%s %10.6fs %-8s] ", LevelTag(level),
                 static_cast<double>(now_us) / 1e6, tag);
  } else {
    std::fprintf(stderr, "[%s %-8s] ", LevelTag(level), tag);
  }
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
}

void Logf(LogLevel level, const char* tag, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  LogVprintf(level, tag, fmt, ap);
  va_end(ap);
}

}  // namespace base
