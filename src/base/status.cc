#include "src/base/status.h"

namespace base {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "ok";
    case Code::kNoEnt:
      return "noent";
    case Code::kExist:
      return "exist";
    case Code::kIsDir:
      return "isdir";
    case Code::kNotDir:
      return "notdir";
    case Code::kNotEmpty:
      return "notempty";
    case Code::kAccess:
      return "access";
    case Code::kNoSpace:
      return "nospace";
    case Code::kInval:
      return "inval";
    case Code::kBadFd:
      return "badfd";
    case Code::kStale:
      return "stale";
    case Code::kTimedOut:
      return "timedout";
    case Code::kIo:
      return "io";
    case Code::kBusy:
      return "busy";
    case Code::kNotSupported:
      return "notsupported";
    case Code::kUnavailable:
      return "unavailable";
    case Code::kInconsistent:
      return "inconsistent";
    case Code::kXDev:
      return "xdev";
  }
  return "unknown";
}

}  // namespace base
