#include "src/nfs/server.h"

namespace nfs {
namespace {

template <typename T>
proto::Reply FromResult(base::Result<T> result) {
  if (!result.ok()) {
    return proto::ErrorReply(result.status());
  }
  return proto::OkReply(std::move(*result));
}

proto::Reply FromStatus(base::Result<void> result) {
  if (!result.ok()) {
    return proto::ErrorReply(result.status());
  }
  return proto::OkReply(proto::NullRep{});
}

}  // namespace

NfsServer::NfsServer(fs::LocalFs& fs, rpc::Peer& peer) : fs_(fs), peer_(peer) {
  peer_.set_handler([this](const proto::Request& request, net::Address from) {
    return Handle(request, from);
  });
}

sim::Task<proto::Reply> NfsServer::Handle(proto::Request request, net::Address from) {
  switch (proto::KindOf(request)) {
    case proto::OpKind::kNull:
      co_return proto::OkReply(proto::NullRep{});
    case proto::OpKind::kGetAttr: {
      const auto& req = std::get<proto::GetAttrReq>(request);
      auto attr = fs_.GetAttr(req.fh);
      if (!attr.ok()) {
        co_return proto::ErrorReply(attr.status());
      }
      co_return proto::OkReply(proto::AttrRep{*attr});
    }
    case proto::OpKind::kSetAttr: {
      const auto& req = std::get<proto::SetAttrReq>(request);
      auto attr = co_await fs_.SetAttr(req.fh, req);
      if (!attr.ok()) {
        co_return proto::ErrorReply(attr.status());
      }
      co_return proto::OkReply(proto::AttrRep{*attr});
    }
    case proto::OpKind::kLookup: {
      const auto& req = std::get<proto::LookupReq>(request);
      co_return FromResult(co_await fs_.Lookup(req.dir, req.name));
    }
    case proto::OpKind::kRead: {
      const auto& req = std::get<proto::ReadReq>(request);
      co_return FromResult(co_await fs_.Read(req.fh, req.offset, req.count));
    }
    case proto::OpKind::kWrite: {
      const auto& req = std::get<proto::WriteReq>(request);
      // Stateless-server requirement: data reaches stable storage before
      // the reply goes out.
      auto attr = co_await fs_.Write(req.fh, req.offset, req.data, fs::LocalFs::WriteMode::kSync);
      if (!attr.ok()) {
        co_return proto::ErrorReply(attr.status());
      }
      co_return proto::OkReply(proto::AttrRep{*attr});
    }
    case proto::OpKind::kCreate: {
      const auto& req = std::get<proto::CreateReq>(request);
      co_return FromResult(co_await fs_.Create(req.dir, req.name, req.exclusive));
    }
    case proto::OpKind::kRemove: {
      const auto& req = std::get<proto::RemoveReq>(request);
      co_return FromStatus(co_await fs_.Remove(req.dir, req.name));
    }
    case proto::OpKind::kRename: {
      const auto& req = std::get<proto::RenameReq>(request);
      co_return FromStatus(
          co_await fs_.Rename(req.from_dir, req.from_name, req.to_dir, req.to_name));
    }
    case proto::OpKind::kMkdir: {
      const auto& req = std::get<proto::MkdirReq>(request);
      co_return FromResult(co_await fs_.Mkdir(req.dir, req.name));
    }
    case proto::OpKind::kRmdir: {
      const auto& req = std::get<proto::RmdirReq>(request);
      co_return FromStatus(co_await fs_.Rmdir(req.dir, req.name));
    }
    case proto::OpKind::kReadDir: {
      const auto& req = std::get<proto::ReadDirReq>(request);
      co_return FromResult(co_await fs_.ReadDir(req.dir, req.cookie, req.count));
    }
    default:
      // open/close/callback/ping/reopen are SNFS vocabulary; "a hybrid
      // client could distinguish between SNFS and NFS servers, since the
      // latter will reject an open operation" (§6.1).
      co_return proto::ErrorReply(base::ErrNotSupported());
  }
}

}  // namespace nfs
