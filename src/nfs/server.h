// The NFS server: stateless, translating each RPC into LocalFs operations.
//
// Per the stateless-server contract, every write RPC is synchronous with
// the disk ("an NFS server is required to write data to stable storage
// before returning from the remote procedure call"); the server retains no
// per-client or per-open-file state, so crash recovery is "the server
// simply restarts".
#ifndef SRC_NFS_SERVER_H_
#define SRC_NFS_SERVER_H_

#include "src/fs/local_fs.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/task.h"

namespace nfs {

class NfsServer {
 public:
  // Installs itself as `peer`'s request handler.
  NfsServer(fs::LocalFs& fs, rpc::Peer& peer);

  NfsServer(const NfsServer&) = delete;
  NfsServer& operator=(const NfsServer&) = delete;

  proto::FileHandle root() const { return fs_.root(); }

  sim::Task<proto::Reply> Handle(proto::Request request, net::Address from);

 private:
  fs::LocalFs& fs_;
  rpc::Peer& peer_;
};

}  // namespace nfs

#endif  // SRC_NFS_SERVER_H_
