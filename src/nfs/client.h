// The NFS client, modeled on the Ultrix 2.2 reference-port behaviour the
// paper benchmarks:
//
//  * attribute cache with adaptive timeout (3–60 s): files that changed
//    recently are re-probed sooner ("the interval between probes in Ultrix
//    varies ... depending on the recent history of the file");
//  * a consistency probe (getattr) on every open; a changed mtime
//    invalidates the cached data for the file;
//  * write-through via a pool of asynchronous block I/O daemons (biods):
//    the writing process hands the block off and continues, but close
//    synchronously drains pending writes ("an NFS client synchronously
//    finishes all pending write-throughs when the file is closed");
//  * partial-block writes are delayed until the block fills, a later write
//    passes the block boundary, or the file is closed ("the reference port
//    of NFS delays writes that do not extend to the end of a block");
//  * optionally, the invalidate-on-close bug the paper diagnoses in §5.2
//    ("our version of the NFS code invalidates the client data cache when
//    a file is closed") — on by default to match the measured system.
#ifndef SRC_NFS_CLIENT_H_
#define SRC_NFS_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/vfs/vfs.h"

namespace nfs {

struct NfsClientParams {
  sim::Duration attr_timeout_min = sim::Sec(3);
  sim::Duration attr_timeout_max = sim::Sec(60);
  int num_biods = 8;
  bool invalidate_on_close = true;   // the Ultrix bug (§5.2)
  bool delay_partial_writes = true;  // reference-port optimization
};

class NfsClient : public vfs::FileSystem {
 public:
  NfsClient(sim::Simulator& simulator, rpc::Peer& peer, net::Address server,
            proto::FileHandle root_fh, cache::BufferCache& cache, NfsClientParams params = {});

  // --- vfs::FileSystem ------------------------------------------------------
  sim::Task<base::Result<vfs::GnodeRef>> Root() override;
  sim::Task<base::Result<vfs::GnodeRef>> Lookup(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<vfs::GnodeRef>> Create(vfs::GnodeRef dir, std::string name,
                                                bool exclusive) override;
  sim::Task<base::Result<vfs::GnodeRef>> Mkdir(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<void>> Open(vfs::GnodeRef node, bool write) override;
  sim::Task<base::Result<void>> Close(vfs::GnodeRef node, bool write) override;
  sim::Task<base::Result<std::vector<uint8_t>>> Read(vfs::GnodeRef node, uint64_t offset,
                                                     uint32_t count) override;
  sim::Task<base::Result<void>> Write(vfs::GnodeRef node, uint64_t offset,
                                      std::vector<uint8_t> data) override;
  sim::Task<base::Result<proto::Attr>> GetAttr(vfs::GnodeRef node) override;
  sim::Task<base::Result<void>> Truncate(vfs::GnodeRef node, uint64_t size) override;
  sim::Task<base::Result<void>> Remove(vfs::GnodeRef dir, std::string name,
                                       vfs::GnodeRef target) override;
  sim::Task<base::Result<void>> Rmdir(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<void>> Rename(vfs::GnodeRef from_dir, std::string from_name,
                                       vfs::GnodeRef to_dir, std::string to_name) override;
  sim::Task<base::Result<std::vector<proto::DirEntry>>> ReadDir(vfs::GnodeRef dir) override;
  sim::Task<base::Result<void>> Fsync(vfs::GnodeRef node) override;

  int mount_id() const { return mount_id_; }
  uint64_t attr_probes() const { return attr_probes_; }
  uint64_t cache_invalidations() const { return cache_invalidations_; }

 private:
  struct NfsNode : vfs::Gnode {
    sim::Time attr_fetched = -1;             // virtual time of last server attrs
    sim::Duration attr_timeout = 0;          // current adaptive timeout
    sim::Time cached_data_mtime = -1;        // mtime the cached blocks match (-1: none)
    int pending_writes = 0;                  // async write RPCs in flight
    base::Status write_error;                // first async write failure (reported at close)
    std::vector<std::coroutine_handle<>> write_waiters;
    // Delayed partial-block buffers: block -> bytes [block start, len).
    std::map<uint64_t, std::vector<uint8_t>> partial;
  };
  using NodeRef = std::shared_ptr<NfsNode>;

  static NodeRef AsNode(const vfs::GnodeRef& node);
  NodeRef Intern(const proto::FileHandle& fh, const proto::Attr& attr);
  void UpdateAttrs(NfsNode& node, const proto::Attr& attr);
  void AdaptTimeout(NfsNode& node, bool changed);
  void InvalidateData(NfsNode& node);

  // Issue a getattr and invalidate cached data if mtime moved.
  sim::Task<base::Result<void>> Probe(NodeRef node);
  sim::Task<base::Result<void>> ProbeIfStale(NodeRef node);

  // Write-behind machinery.
  void SpawnAsyncWrite(NodeRef node, uint64_t offset, std::vector<uint8_t> data);
  sim::Task<void> AsyncWriteBody(NodeRef node, uint64_t offset, std::vector<uint8_t> data);
  sim::Task<base::Result<void>> FlushPartials(NodeRef node);
  sim::Task<void> DrainWrites(NodeRef node);

  struct WriteDrainAwaiter {
    NfsNode& node;
    bool await_ready() const noexcept { return node.pending_writes == 0; }
    void await_suspend(std::coroutine_handle<> h) { node.write_waiters.push_back(h); }
    void await_resume() const noexcept {}
  };

  sim::Simulator& simulator_;
  rpc::Peer& peer_;
  net::Address server_;
  proto::FileHandle root_fh_;
  cache::BufferCache& cache_;
  NfsClientParams params_;
  int mount_id_;
  sim::Semaphore biods_;
  std::unordered_map<uint64_t, NodeRef> nodes_;
  uint64_t attr_probes_ = 0;
  uint64_t cache_invalidations_ = 0;
};

}  // namespace nfs

#endif  // SRC_NFS_CLIENT_H_
