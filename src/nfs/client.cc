#include "src/nfs/client.h"

#include <algorithm>
#include <string>

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace nfs {

using cache::kBlockSize;

NfsClient::NfsClient(sim::Simulator& simulator, rpc::Peer& peer, net::Address server,
                     proto::FileHandle root_fh, cache::BufferCache& cache, NfsClientParams params)
    : simulator_(simulator),
      peer_(peer),
      server_(server),
      root_fh_(root_fh),
      cache_(cache),
      params_(params),
      biods_(simulator, params.num_biods) {
  cache::Backing backing;
  backing.fetch = [this](uint64_t fileid, uint64_t block)
      -> sim::Task<base::Result<std::vector<uint8_t>>> {
    auto it = nodes_.find(fileid);
    if (it == nodes_.end()) {
      co_return base::ErrStale();
    }
    NodeRef node = it->second;
    proto::ReadReq req;
    req.fh = node->fh;
    req.offset = block * kBlockSize;
    req.count = kBlockSize;
    auto rep = rpc::Expect<proto::ReadRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      co_return rep.status();
    }
    UpdateAttrs(*node, rep->attr);
    if (node->cached_data_mtime < 0) {
      node->cached_data_mtime = rep->attr.mtime;
    }
    co_return std::move(rep->data);
  };
  // NFS never write-backs through the cache (the client writes through via
  // biods); the store hook only exists for interface completeness.
  backing.store = [this](uint64_t fileid, uint64_t block,
                         std::vector<uint8_t> data) -> sim::Task<base::Result<void>> {
    auto it = nodes_.find(fileid);
    if (it == nodes_.end()) {
      co_return base::ErrStale();
    }
    proto::WriteReq req;
    req.fh = it->second->fh;
    req.offset = block * kBlockSize;
    req.data = std::move(data);
    auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      co_return rep.status();
    }
    co_return base::OkStatus();
  };
  backing.trace_name = "nfs";
  backing.trace_machine = peer_.address().host;
  mount_id_ = cache_.RegisterMount(std::move(backing));
}

NfsClient::NodeRef NfsClient::AsNode(const vfs::GnodeRef& node) {
  return std::static_pointer_cast<NfsNode>(node);
}

NfsClient::NodeRef NfsClient::Intern(const proto::FileHandle& fh, const proto::Attr& attr) {
  auto it = nodes_.find(fh.fileid);
  if (it != nodes_.end() && it->second->fh == fh) {
    UpdateAttrs(*it->second, attr);
    return it->second;
  }
  auto node = std::make_shared<NfsNode>();
  node->fh = fh;
  node->attr = attr;
  node->attr_fetched = simulator_.Now();
  node->attr_timeout = params_.attr_timeout_min;
  nodes_[fh.fileid] = node;
  return node;
}

void NfsClient::UpdateAttrs(NfsNode& node, const proto::Attr& attr) {
  // Our own in-flight writes keep the local size ahead of the server's.
  uint64_t local_size = node.pending_writes > 0 || !node.partial.empty()
                            ? std::max(node.attr.size, attr.size)
                            : attr.size;
  node.attr = attr;
  node.attr.size = local_size;
  node.attr_fetched = simulator_.Now();
}

void NfsClient::AdaptTimeout(NfsNode& node, bool changed) {
  if (changed) {
    node.attr_timeout = params_.attr_timeout_min;
  } else {
    node.attr_timeout = std::min<sim::Duration>(node.attr_timeout * 2, params_.attr_timeout_max);
  }
}

void NfsClient::InvalidateData(NfsNode& node) {
  cache_.InvalidateFile(mount_id_, node.fh.fileid);
  node.cached_data_mtime = -1;
  ++cache_invalidations_;
  TRACE_INSTANT("nfs.invalidated", peer_.address().host,
                "file=" + std::to_string(node.fh.fileid) + " reason=mtime");
}

sim::Task<base::Result<void>> NfsClient::Probe(NodeRef node) {
  ++attr_probes_;
  proto::GetAttrReq req;
  req.fh = node->fh;
  auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  bool changed =
      node->cached_data_mtime >= 0 && rep->attr.mtime != node->cached_data_mtime;
  if (changed) {
    InvalidateData(*node);
    node->cached_data_mtime = rep->attr.mtime;
  } else if (node->cached_data_mtime < 0) {
    node->cached_data_mtime = rep->attr.mtime;
  }
  AdaptTimeout(*node, changed);
  UpdateAttrs(*node, rep->attr);
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NfsClient::ProbeIfStale(NodeRef node) {
  if (node->attr_fetched >= 0 &&
      simulator_.Now() - node->attr_fetched < node->attr_timeout) {
    co_return base::OkStatus();
  }
  co_return co_await Probe(node);
}

// --- Write-behind ------------------------------------------------------------

void NfsClient::SpawnAsyncWrite(NodeRef node, uint64_t offset, std::vector<uint8_t> data) {
  ++node->pending_writes;
  simulator_.Spawn(AsyncWriteBody(std::move(node), offset, std::move(data)));
}

sim::Task<void> NfsClient::AsyncWriteBody(NodeRef node, uint64_t offset,
                                          std::vector<uint8_t> data) {
  co_await biods_.Acquire();
  proto::WriteReq req;
  req.fh = node->fh;
  req.offset = offset;
  req.data = std::move(data);
  auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
  biods_.Release();
  if (rep.ok()) {
    // The write bumped the server mtime; adopt it so our own writes don't
    // look like another client's modifications at the next probe.
    node->cached_data_mtime = std::max(node->cached_data_mtime, rep->attr.mtime);
    UpdateAttrs(*node, rep->attr);
  } else if (node->write_error.ok()) {
    node->write_error = rep.status();
  }
  if (--node->pending_writes == 0) {
    for (std::coroutine_handle<> h : node->write_waiters) {
      simulator_.Ready(h);
    }
    node->write_waiters.clear();
  }
}

sim::Task<base::Result<void>> NfsClient::FlushPartials(NodeRef node) {
  while (!node->partial.empty()) {
    auto it = node->partial.begin();
    uint64_t block = it->first;
    std::vector<uint8_t> data = std::move(it->second);
    node->partial.erase(it);
    SpawnAsyncWrite(node, block * kBlockSize, std::move(data));
  }
  co_return base::OkStatus();
}

sim::Task<void> NfsClient::DrainWrites(NodeRef node) {
  co_await WriteDrainAwaiter{*node};
}

// --- FileSystem interface ------------------------------------------------------

sim::Task<base::Result<vfs::GnodeRef>> NfsClient::Root() {
  auto it = nodes_.find(root_fh_.fileid);
  if (it != nodes_.end()) {
    co_return vfs::GnodeRef(it->second);
  }
  proto::GetAttrReq req;
  req.fh = root_fh_;
  auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(root_fh_, rep->attr));
}

sim::Task<base::Result<vfs::GnodeRef>> NfsClient::Lookup(vfs::GnodeRef dir,
                                                         std::string name) {
  proto::LookupReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::LookupRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(rep->fh, rep->attr));
}

sim::Task<base::Result<vfs::GnodeRef>> NfsClient::Create(vfs::GnodeRef dir,
                                                         std::string name,
                                                         bool exclusive) {
  proto::CreateReq req;
  req.dir = dir->fh;
  req.name = name;
  req.exclusive = exclusive;
  auto rep = rpc::Expect<proto::CreateRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  NodeRef node = Intern(rep->fh, rep->attr);
  node->cached_data_mtime = rep->attr.mtime;  // fresh file: we know its (empty) content
  co_return vfs::GnodeRef(node);
}

sim::Task<base::Result<vfs::GnodeRef>> NfsClient::Mkdir(vfs::GnodeRef dir,
                                                        std::string name) {
  proto::MkdirReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::CreateRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(rep->fh, rep->attr));
}

sim::Task<base::Result<void>> NfsClient::Open(vfs::GnodeRef gnode, bool write) {
  NodeRef node = AsNode(gnode);
  // "The check is also made each time the client opens a file."
  CO_RETURN_IF_ERROR(co_await Probe(node));
  if (write) {
    ++node->open_writes;
  } else {
    ++node->open_reads;
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NfsClient::Close(vfs::GnodeRef gnode, bool write) {
  NodeRef node = AsNode(gnode);
  // Push out delayed partial blocks, then synchronously finish all pending
  // write-throughs.
  CO_RETURN_IF_ERROR(co_await FlushPartials(node));
  co_await DrainWrites(node);
  if (write) {
    CHECK_GT(node->open_writes, 0u);
    --node->open_writes;
  } else {
    CHECK_GT(node->open_reads, 0u);
    --node->open_reads;
  }
  if (params_.invalidate_on_close && node->open_writes + node->open_reads == 0) {
    InvalidateData(*node);
  }
  base::Status err = node->write_error;
  node->write_error = base::OkStatus();
  co_return base::Result<void>(err);
}

sim::Task<base::Result<std::vector<uint8_t>>> NfsClient::Read(vfs::GnodeRef gnode,
                                                              uint64_t offset, uint32_t count) {
  NodeRef node = AsNode(gnode);
  // Periodic consistency check while the file is in use.
  CO_RETURN_IF_ERROR(co_await ProbeIfStale(node));
  co_return co_await cache_.Read(mount_id_, node->fh.fileid, offset, count, node->attr.size,
                                 /*read_ahead=*/true);
}

sim::Task<base::Result<void>> NfsClient::Write(vfs::GnodeRef gnode, uint64_t offset,
                                               std::vector<uint8_t> data) {
  NodeRef node = AsNode(gnode);
  if (data.empty()) {
    co_return base::OkStatus();
  }
  uint64_t end = offset + data.size();
  uint64_t first_block = offset / kBlockSize;
  uint64_t last_block = (end - 1) / kBlockSize;
  for (uint64_t b = first_block; b <= last_block; ++b) {
    uint64_t block_start = b * kBlockSize;
    uint64_t seg_from = std::max<uint64_t>(offset, block_start);
    uint64_t seg_to = std::min<uint64_t>(end, block_start + kBlockSize);
    std::vector<uint8_t> segment(data.begin() + static_cast<int64_t>(seg_from - offset),
                                 data.begin() + static_cast<int64_t>(seg_to - offset));

    // Merge with any delayed partial buffer for this block.
    auto pit = node->partial.find(b);
    bool have_partial = pit != node->partial.end();
    uint64_t partial_len = have_partial ? pit->second.size() : 0;
    bool contiguous = have_partial && block_start + partial_len == seg_from;

    if (have_partial && !contiguous) {
      // Non-sequential write into a block with a pending partial: flush the
      // old partial first to keep things simple (rare in practice).
      std::vector<uint8_t> old = std::move(pit->second);
      node->partial.erase(pit);
      SpawnAsyncWrite(node, b * kBlockSize, std::move(old));
      have_partial = false;
    }

    bool reaches_block_end = seg_to == block_start + kBlockSize;
    if (params_.delay_partial_writes && !reaches_block_end) {
      // Delay: stash the (possibly extended) partial buffer.
      if (contiguous && have_partial) {
        auto& buf = node->partial[b];
        buf.insert(buf.end(), segment.begin(), segment.end());
      } else if (seg_from == block_start) {
        node->partial[b] = segment;
      } else {
        // Partial not starting at block head and no buffered prefix: write
        // through immediately (cannot buffer a hole).
        SpawnAsyncWrite(node, seg_from, segment);
      }
    } else {
      if (contiguous && have_partial) {
        std::vector<uint8_t> buf = std::move(node->partial[b]);
        node->partial.erase(b);
        buf.insert(buf.end(), segment.begin(), segment.end());
        SpawnAsyncWrite(node, block_start, std::move(buf));
      } else {
        SpawnAsyncWrite(node, seg_from, segment);
      }
    }
    // Either way the client cache holds the new data for its own reads.
    cache_.InsertClean(mount_id_, node->fh.fileid, seg_from, segment);
  }
  node->attr.size = std::max(node->attr.size, end);
  node->attr.mtime = simulator_.Now();
  co_return base::OkStatus();
}

sim::Task<base::Result<proto::Attr>> NfsClient::GetAttr(vfs::GnodeRef gnode) {
  NodeRef node = AsNode(gnode);
  CO_RETURN_IF_ERROR(co_await ProbeIfStale(node));
  co_return node->attr;
}

sim::Task<base::Result<void>> NfsClient::Truncate(vfs::GnodeRef gnode, uint64_t size) {
  NodeRef node = AsNode(gnode);
  node->partial.clear();
  co_await DrainWrites(node);
  proto::SetAttrReq req;
  req.fh = node->fh;
  req.size = size;
  auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  InvalidateData(*node);
  node->cached_data_mtime = rep->attr.mtime;
  UpdateAttrs(*node, rep->attr);
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NfsClient::Remove(vfs::GnodeRef dir, std::string name,
                                                vfs::GnodeRef target) {
  NodeRef victim = AsNode(target);
  // NFS cannot cancel anything: data was written through already. Just make
  // sure nothing is still in flight, then drop the cached copies.
  victim->partial.clear();
  co_await DrainWrites(victim);
  proto::RemoveReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::NullRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  cache_.InvalidateFile(mount_id_, victim->fh.fileid);
  nodes_.erase(victim->fh.fileid);
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NfsClient::Rmdir(vfs::GnodeRef dir, std::string name) {
  proto::RmdirReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::NullRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> NfsClient::Rename(vfs::GnodeRef from_dir,
                                                std::string from_name,
                                                vfs::GnodeRef to_dir,
                                                std::string to_name) {
  proto::RenameReq req;
  req.from_dir = from_dir->fh;
  req.from_name = from_name;
  req.to_dir = to_dir->fh;
  req.to_name = to_name;
  auto rep = rpc::Expect<proto::NullRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<std::vector<proto::DirEntry>>> NfsClient::ReadDir(vfs::GnodeRef dir) {
  std::vector<proto::DirEntry> all;
  uint64_t cookie = 0;
  while (true) {
    proto::ReadDirReq req;
    req.dir = dir->fh;
    req.cookie = cookie;
    req.count = 64;
    auto rep = rpc::Expect<proto::ReadDirRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      co_return rep.status();
    }
    for (auto& e : rep->entries) {
      cookie = e.cookie;
      all.push_back(std::move(e));
    }
    if (rep->eof) {
      break;
    }
  }
  co_return all;
}

sim::Task<base::Result<void>> NfsClient::Fsync(vfs::GnodeRef gnode) {
  NodeRef node = AsNode(gnode);
  CO_RETURN_IF_ERROR(co_await FlushPartials(node));
  co_await DrainWrites(node);
  base::Status err = node->write_error;
  node->write_error = base::OkStatus();
  co_return base::Result<void>(err);
}

}  // namespace nfs
