// trace::Checker — replays a recorded event trace and validates the
// cache-consistency invariants the paper's protocol is supposed to provide,
// *per event* rather than only at quiescence:
//
//  stale-read        A cached read on a client never observes data older
//                    than the version established for that client by the
//                    serialization of opens/closes/callbacks: every
//                    `snfs.read_observe` must carry a version >= the version
//                    of the client's most recent `snfs.open_granted` for the
//                    file, and must not occur at all without a grant.
//                    Shard-aware extension (src/fleet): a getattr/lookup the
//                    meta-cache answers from its cache (`fleet.meta_serve`,
//                    keyed by fsid+file so each shard's namespace is
//                    tracked separately) must reflect the owning shard's
//                    latest committed version (`fleet.commit`, emitted when
//                    a mutation's reply passes through the cache).
//  concurrent-dirty  No two clients hold write-dirty cached blocks of the
//                    same file at the same time (`cache.file_dirty` /
//                    `cache.file_clean` transitions with scope=snfs). A
//                    client crash (`machine.crash`) clears its dirty state —
//                    the blocks died with the kernel.
//  retransmit-once   A retransmitted RPC is either absorbed by the server's
//                    duplicate-request cache or idempotent: within one
//                    server generation, a non-idempotent operation must not
//                    produce two `rpc.handle` executions for the same
//                    (client, xid). Re-execution across generations (the
//                    dup cache died with the server) is legal.
//  lease-expired-read
//                    NQNFS: a cached read is only ever served inside a live
//                    lease, at a version no older than the lease granted:
//                    every `nqnfs.read_observe` needs a preceding
//                    `nqnfs.lease_grant` (extended by `nqnfs.lease_extend`)
//                    whose expiry lies strictly after the read's timestamp.
//                    `nqnfs.lease_end` / `nqnfs.invalidated` retire the
//                    lease, as does a client `machine.crash`.
//                    (`nqnfs.self_invalidate` — a client dropping its own
//                    cached blocks around a write-through while a read
//                    lease stays live — deliberately does not.)
//  dual-write-lease  NQNFS: the server never has two un-lapsed write leases
//                    on one file (`nqnfs.write_lease_grant` / `_extend` /
//                    `_end`, with `host=`). Leases are retired by an
//                    explicit end event or by their expiry time — NOT by a
//                    server `machine.crash`, because the promise to the
//                    holder outlives the lease table; a rebooted server
//                    granting before its quiet window closes is exactly the
//                    bug this rule exists to catch.
//
// The checker is pure: it consumes the event vector and produces violations;
// it never mutates simulator state, so it can run after the simulation or
// over a hand-built fixture trace.
#ifndef SRC_TRACE_CHECKER_H_
#define SRC_TRACE_CHECKER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace trace {

struct Violation {
  // "stale-read", "concurrent-dirty", "retransmit-once",
  // "lease-expired-read", or "dual-write-lease".
  std::string rule;
  size_t event_index;  // index into the checked event vector
  std::string message;
};

// True for operations whose re-execution is observably equivalent to a
// single execution (reads, attribute fetches, absolute-state writes).
bool IsIdempotentOp(std::string_view op);

std::vector<Violation> CheckTrace(const std::vector<Event>& events);

inline std::vector<Violation> CheckTrace(const Recorder& recorder) {
  return CheckTrace(recorder.events());
}

}  // namespace trace

#endif  // SRC_TRACE_CHECKER_H_
