// Deterministic causal event tracing.
//
// A trace::Recorder collects fixed-schema events — span begin/end, instants,
// counters — stamped with the virtual time, the machine (network host id)
// they occurred on, and a causal span id. Span ids are assigned from a
// sequential counter and propagated implicitly through the simulator's
// ambient trace context (src/sim/trace_ctx.h): coroutines inherit the span
// active when they were created and keep it across suspensions, and the RPC
// layer carries span ids in proto::Envelope so a client operation's span
// parents the server-side handler, buffer-cache activity, and disk I/O it
// causes — across machines.
//
// Zero cost when disabled: instrumentation sites test trace::Active() (a
// plain global pointer) and do nothing when no recorder is installed.
// Recording never schedules simulator events or suspends, so enabling
// tracing cannot perturb a simulation's results.
//
// Exporters: ToChromeJson() produces a chrome://tracing / Perfetto-loadable
// trace_event array; ToCompactText() is a canonical one-line-per-event text
// form whose FNV-1a checksum is stable across runs for a fixed seed
// (pinned by trace_test).
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/sim/time.h"
#include "src/sim/trace_ctx.h"

namespace sim {
class Simulator;
}  // namespace sim

namespace trace {

enum class EventKind : uint8_t { kSpanBegin, kSpanEnd, kInstant, kCounter };

std::string_view EventKindName(EventKind kind);

// Machine id for events that should inherit the enclosing span's machine
// (e.g. buffer-cache and disk activity, which have no host of their own).
inline constexpr int kInheritMachine = -1;

struct Event {
  EventKind kind = EventKind::kInstant;
  sim::Time at = 0;
  int machine = -1;    // network host id; -1 if unattributed
  uint64_t span = 0;   // span begun/ended, or the span an instant belongs to
  uint64_t parent = 0; // begin events only: causal parent span (0 = root)
  std::string name;    // dotted event name, e.g. "rpc.call"
  std::string args;    // deterministic "k=v k=v ..." detail string
  double value = 0.0;  // counter events only
};

class Recorder {
 public:
  explicit Recorder(sim::Simulator& simulator) : simulator_(simulator) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Starts a span whose parent is the ambient span; installs the new span as
  // ambient. Returns its id (never 0).
  uint64_t BeginSpan(std::string name, int machine = kInheritMachine, std::string args = {});
  // Same, with an explicit parent (cross-machine causality: the RPC worker
  // parents its handler span from the span id carried in the envelope).
  uint64_t BeginSpanUnder(uint64_t parent, std::string name, int machine, std::string args = {});

  // Ends `span`. Does not touch the ambient context (the Span guard and the
  // TRACE_SPAN_END macro restore it).
  void EndSpan(uint64_t span, std::string args = {});
  // Macro form: ends the span and restores the ambient context to its parent.
  void EndSpanRestore(uint64_t span, std::string args = {});

  void Instant(std::string name, int machine = kInheritMachine, std::string args = {});
  // Instant attributed to an explicit span (for code holding a captured span
  // id, e.g. a packet-delivery lambda).
  void InstantInSpan(uint64_t span, std::string name, int machine, std::string args = {});
  void Counter(std::string name, int machine, double value);

  const std::vector<Event>& events() const { return events_; }
  uint64_t spans_begun() const { return next_span_ - 1; }
  // Machine a span was begun on (-1 for unknown span / unattributed).
  int SpanMachine(uint64_t span) const;
  uint64_t SpanParent(uint64_t span) const;

  // Deterministic one-line-per-event form, and its FNV-1a 64 checksum.
  std::string ToCompactText() const;
  uint64_t Checksum() const;

  // Chrome trace_event JSON (load in chrome://tracing or ui.perfetto.dev).
  // pid 0 holds every machine as a tid; span/parent ids ride in args.
  std::string ToChromeJson() const;

  // Durations (in virtual microseconds) of completed spans named `name`,
  // grouped by the value of `key` in their begin args (e.g. name="rpc.call",
  // key="op" buckets RPC latency per operation).
  std::map<std::string, metrics::Histogram> SpanDurationsBy(std::string_view name,
                                                            std::string_view key) const;

  // Same, additionally grouped by the machine the span began on — the fleet
  // benches use this to report per-server RPC latency percentiles.
  std::map<int, std::map<std::string, metrics::Histogram>> SpanDurationsByMachine(
      std::string_view name, std::string_view key) const;

 private:
  struct SpanInfo {
    int machine = -1;
    uint64_t parent = 0;
  };

  sim::Time Now() const;
  int ResolveMachine(int machine, uint64_t parent) const;

  sim::Simulator& simulator_;
  std::vector<Event> events_;
  std::vector<SpanInfo> spans_;  // index = span id - 1
  uint64_t next_span_ = 1;
};

// The active recorder, installed by the testbed (or a test) for the
// duration of a run. Null means tracing is disabled.
Recorder* Active();
void SetActive(Recorder* recorder);

// Extracts the value of `key` from a "k=v k=v" args string ("" if absent).
std::string_view ArgValue(std::string_view args, std::string_view key);

// RAII span guard: begins a span on construction (no-op when tracing is
// disabled) and ends it — restoring the ambient context — on destruction or
// at an explicit End(). Safe to destroy after the recorder was deactivated.
class Span {
 public:
  Span() = default;
  Span(std::string name, int machine = kInheritMachine, std::string args = {}) {
    Begin(std::move(name), machine, std::move(args));
  }
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void Begin(std::string name, int machine = kInheritMachine, std::string args = {});
  void BeginUnder(uint64_t parent, std::string name, int machine, std::string args = {});
  void End(std::string args = {});

  bool active() const { return id_ != 0; }
  uint64_t id() const { return id_; }

 private:
  uint64_t id_ = 0;
  uint64_t saved_ambient_ = 0;
};

}  // namespace trace

// Manual span macros, for spans that cannot be scoped to a C++ block (e.g.
// one iteration of a daemon loop with early exits). Every TRACE_SPAN_BEGIN
// must reach a matching TRACE_SPAN_END on all paths — enforced by the
// snfslint `trace-span-balance` rule; prefer the trace::Span RAII guard
// where a block scope fits.
#define TRACE_SPAN_BEGIN(var, name, machine, args)                                       \
  uint64_t var = trace::Active() != nullptr                                              \
                     ? trace::Active()->BeginSpan((name), (machine), (args))             \
                     : 0

#define TRACE_SPAN_END(var, args)                                                        \
  do {                                                                                   \
    if (trace::Active() != nullptr && (var) != 0) {                                      \
      trace::Active()->EndSpanRestore((var), (args));                                    \
    }                                                                                    \
  } while (0)

#define TRACE_INSTANT(name, machine, args)                                               \
  do {                                                                                   \
    if (trace::Recorder* trace_recorder_ = trace::Active()) {                            \
      trace_recorder_->Instant((name), (machine), (args));                               \
    }                                                                                    \
  } while (0)

#define TRACE_COUNTER(name, machine, value)                                              \
  do {                                                                                   \
    if (trace::Recorder* trace_recorder_ = trace::Active()) {                            \
      trace_recorder_->Counter((name), (machine), (value));                              \
    }                                                                                    \
  } while (0)

#endif  // SRC_TRACE_TRACE_H_
