#include "src/trace/trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"
#include "src/sim/simulator.h"

namespace trace {
namespace {

Recorder* g_active = nullptr;

// FNV-1a 64-bit.
uint64_t Fnv1a(std::string_view text) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin:
      return "B";
    case EventKind::kSpanEnd:
      return "E";
    case EventKind::kInstant:
      return "I";
    case EventKind::kCounter:
      return "C";
  }
  return "?";
}

Recorder* Active() { return g_active; }

void SetActive(Recorder* recorder) { g_active = recorder; }

std::string_view ArgValue(std::string_view args, std::string_view key) {
  size_t pos = 0;
  while (pos < args.size()) {
    size_t end = args.find(' ', pos);
    if (end == std::string_view::npos) {
      end = args.size();
    }
    std::string_view pair = args.substr(pos, end - pos);
    size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = end + 1;
  }
  return {};
}

sim::Time Recorder::Now() const { return simulator_.Now(); }

int Recorder::ResolveMachine(int machine, uint64_t parent) const {
  if (machine != kInheritMachine) {
    return machine;
  }
  return SpanMachine(parent);
}

int Recorder::SpanMachine(uint64_t span) const {
  if (span == 0 || span >= next_span_) {
    return -1;
  }
  return spans_[span - 1].machine;
}

uint64_t Recorder::SpanParent(uint64_t span) const {
  if (span == 0 || span >= next_span_) {
    return 0;
  }
  return spans_[span - 1].parent;
}

uint64_t Recorder::BeginSpan(std::string name, int machine, std::string args) {
  return BeginSpanUnder(sim::tracectx::current_span, std::move(name), machine, std::move(args));
}

uint64_t Recorder::BeginSpanUnder(uint64_t parent, std::string name, int machine,
                                  std::string args) {
  uint64_t id = next_span_++;
  int resolved = ResolveMachine(machine, parent);
  spans_.push_back(SpanInfo{resolved, parent});
  events_.push_back(Event{EventKind::kSpanBegin, Now(), resolved, id, parent, std::move(name),
                          std::move(args), 0.0});
  sim::tracectx::current_span = id;
  return id;
}

void Recorder::EndSpan(uint64_t span, std::string args) {
  if (span == 0 || span >= next_span_) {
    return;
  }
  events_.push_back(Event{EventKind::kSpanEnd, Now(), spans_[span - 1].machine, span, 0,
                          std::string(), std::move(args), 0.0});
}

void Recorder::EndSpanRestore(uint64_t span, std::string args) {
  uint64_t parent = SpanParent(span);
  EndSpan(span, std::move(args));
  sim::tracectx::current_span = parent;
}

void Recorder::Instant(std::string name, int machine, std::string args) {
  InstantInSpan(sim::tracectx::current_span, std::move(name), machine, std::move(args));
}

void Recorder::InstantInSpan(uint64_t span, std::string name, int machine, std::string args) {
  events_.push_back(Event{EventKind::kInstant, Now(), ResolveMachine(machine, span), span, 0,
                          std::move(name), std::move(args), 0.0});
}

void Recorder::Counter(std::string name, int machine, double value) {
  events_.push_back(Event{EventKind::kCounter, Now(),
                          ResolveMachine(machine, sim::tracectx::current_span),
                          sim::tracectx::current_span, 0, std::move(name), std::string(), value});
}

std::string Recorder::ToCompactText() const {
  std::string out;
  out.reserve(events_.size() * 48);
  char buf[160];
  for (const Event& e : events_) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " m%d %s %" PRIu64 "<%" PRIu64 " ",
                  static_cast<int64_t>(e.at), e.machine,
                  std::string(EventKindName(e.kind)).c_str(), e.span, e.parent);
    out += buf;
    out += e.name;
    if (e.kind == EventKind::kCounter) {
      std::snprintf(buf, sizeof(buf), "=%.6g", e.value);
      out += buf;
    }
    if (!e.args.empty()) {
      out += ' ';
      out += e.args;
    }
    out += '\n';
  }
  return out;
}

uint64_t Recorder::Checksum() const { return Fnv1a(ToCompactText()); }

std::string Recorder::ToChromeJson() const {
  std::string out = "[\n";
  char buf[192];
  bool first = true;
  for (const Event& e : events_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    const char* ph = "i";
    switch (e.kind) {
      case EventKind::kSpanBegin:
        ph = "B";
        break;
      case EventKind::kSpanEnd:
        ph = "E";
        break;
      case EventKind::kInstant:
        ph = "i";
        break;
      case EventKind::kCounter:
        ph = "C";
        break;
    }
    out += "{\"ph\":\"";
    out += ph;
    out += "\",\"name\":\"";
    // End events reuse their begin's name slot as empty; chrome pairs B/E by
    // nesting per tid, so an empty name is acceptable, but emitting the span
    // id keeps traces debuggable.
    AppendJsonEscaped(out, e.name);
    out += "\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%" PRId64 ",\"pid\":0,\"tid\":%d",
                  static_cast<int64_t>(e.at), e.machine < 0 ? 99 : e.machine);
    out += buf;
    if (e.kind == EventKind::kInstant) {
      out += ",\"s\":\"t\"";
    }
    if (e.kind == EventKind::kCounter) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.6g}", e.value);
      out += buf;
    } else {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"span\":%" PRIu64 ",\"parent\":%" PRIu64,
                    e.span, e.parent);
      out += buf;
      out += ",\"detail\":\"";
      AppendJsonEscaped(out, e.args);
      out += "\"}";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::map<std::string, metrics::Histogram> Recorder::SpanDurationsBy(std::string_view name,
                                                                    std::string_view key) const {
  // span id -> (begin time, bucket) for spans matching `name`.
  std::map<uint64_t, std::pair<sim::Time, std::string>> open;
  std::map<std::string, metrics::Histogram> out;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kSpanBegin && e.name == name) {
      open.emplace(e.span, std::make_pair(e.at, std::string(ArgValue(e.args, key))));
    } else if (e.kind == EventKind::kSpanEnd) {
      auto it = open.find(e.span);
      if (it != open.end()) {
        out[it->second.second].Add(static_cast<double>(e.at - it->second.first));
        open.erase(it);
      }
    }
  }
  return out;
}

std::map<int, std::map<std::string, metrics::Histogram>> Recorder::SpanDurationsByMachine(
    std::string_view name, std::string_view key) const {
  struct Open {
    sim::Time begin;
    int machine;
    std::string bucket;
  };
  std::map<uint64_t, Open> open;
  std::map<int, std::map<std::string, metrics::Histogram>> out;
  for (const Event& e : events_) {
    if (e.kind == EventKind::kSpanBegin && e.name == name) {
      open.emplace(e.span, Open{e.at, e.machine, std::string(ArgValue(e.args, key))});
    } else if (e.kind == EventKind::kSpanEnd) {
      auto it = open.find(e.span);
      if (it != open.end()) {
        out[it->second.machine][it->second.bucket].Add(
            static_cast<double>(e.at - it->second.begin));
        open.erase(it);
      }
    }
  }
  return out;
}

void Span::Begin(std::string name, int machine, std::string args) {
  Recorder* recorder = Active();
  if (recorder == nullptr || id_ != 0) {
    return;
  }
  saved_ambient_ = sim::tracectx::current_span;
  id_ = recorder->BeginSpan(std::move(name), machine, std::move(args));
}

void Span::BeginUnder(uint64_t parent, std::string name, int machine, std::string args) {
  Recorder* recorder = Active();
  if (recorder == nullptr || id_ != 0) {
    return;
  }
  saved_ambient_ = sim::tracectx::current_span;
  id_ = recorder->BeginSpanUnder(parent, std::move(name), machine, std::move(args));
}

void Span::End(std::string args) {
  if (id_ == 0) {
    return;
  }
  if (Recorder* recorder = Active()) {
    recorder->EndSpan(id_, std::move(args));
  }
  sim::tracectx::current_span = saved_ambient_;
  id_ = 0;
}

}  // namespace trace
