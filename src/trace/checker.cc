#include "src/trace/checker.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace trace {
namespace {

uint64_t ParseU64(std::string_view s) {
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      break;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

struct FileKey {
  int machine;
  uint64_t file;
  friend auto operator<=>(const FileKey&, const FileKey&) = default;
};

struct ExecKey {
  int server;
  uint64_t from;
  uint64_t xid;
  uint64_t gen;
  friend auto operator<=>(const ExecKey&, const ExecKey&) = default;
};

// Shard-aware stale-read: a file in the fleet is identified by
// (fsid, fileid) — the fsid names the owning shard, so one checker map
// covers every shard at once.
struct ShardFileKey {
  uint64_t fsid;
  uint64_t file;
  friend auto operator<=>(const ShardFileKey&, const ShardFileKey&) = default;
};

// lease-expired-read: what an NQNFS client holds for one file.
struct ClientLease {
  uint64_t version = 0;
  sim::Time expires = 0;
};

}  // namespace

bool IsIdempotentOp(std::string_view op) {
  // Reads and attribute ops are trivially idempotent; write and setattr set
  // absolute state (offset writes, absolute sizes); reopen re-asserts
  // absolute per-client counts. open/close/callback mutate reference counts
  // and create/remove/rename/mkdir/rmdir mutate the namespace — re-executing
  // any of those is observable.
  // metainval drops cache entries; dropping twice is a no-op.
  return op == "null" || op == "getattr" || op == "setattr" || op == "lookup" || op == "read" ||
         op == "write" || op == "readdir" || op == "ping" || op == "reopen" ||
         op == "getlease" || op == "metainval";
}

std::vector<Violation> CheckTrace(const std::vector<Event>& events) {
  std::vector<Violation> out;
  // stale-read: (client machine, file) -> granted version.
  std::map<FileKey, uint64_t> granted;
  // concurrent-dirty: file -> set of dirty client machines.
  std::map<uint64_t, std::set<int>> dirty;
  // retransmit-once: executions per (server, client, xid, generation).
  std::map<ExecKey, std::pair<int, std::string>> execs;
  // lease-expired-read: (client machine, file) -> live lease.
  std::map<FileKey, ClientLease> leases;
  // dual-write-lease: file -> (holder host -> expiry). Never cleared by a
  // machine.crash: a dead server's promises are retired by the clock alone.
  std::map<uint64_t, std::map<int, sim::Time>> write_leases;
  // shard-aware stale-read: (fsid, file) -> highest version committed
  // through the meta-cache (the linearization point for fleet mutations).
  std::map<ShardFileKey, uint64_t> fleet_committed;

  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.kind == EventKind::kInstant && e.name == "snfs.open_granted") {
      FileKey key{e.machine, ParseU64(ArgValue(e.args, "file"))};
      granted[key] = ParseU64(ArgValue(e.args, "version"));
    } else if (e.kind == EventKind::kInstant && e.name == "snfs.read_observe") {
      FileKey key{e.machine, ParseU64(ArgValue(e.args, "file"))};
      uint64_t version = ParseU64(ArgValue(e.args, "version"));
      auto it = granted.find(key);
      if (it == granted.end()) {
        out.push_back(Violation{"stale-read", i,
                                "client m" + std::to_string(e.machine) +
                                    " served a cached read of file " +
                                    std::to_string(key.file) + " without an open grant"});
      } else if (version < it->second) {
        out.push_back(Violation{
            "stale-read", i,
            "client m" + std::to_string(e.machine) + " read version " + std::to_string(version) +
                " of file " + std::to_string(key.file) + " but holds a grant for version " +
                std::to_string(it->second)});
      }
    } else if (e.kind == EventKind::kInstant && e.name == "snfs.invalidated") {
      granted.erase(FileKey{e.machine, ParseU64(ArgValue(e.args, "file"))});
    } else if (e.kind == EventKind::kInstant && e.name == "nqnfs.lease_grant") {
      FileKey key{e.machine, ParseU64(ArgValue(e.args, "file"))};
      leases[key] = ClientLease{ParseU64(ArgValue(e.args, "version")),
                                static_cast<sim::Time>(ParseU64(ArgValue(e.args, "expires")))};
    } else if (e.kind == EventKind::kInstant && e.name == "nqnfs.lease_extend") {
      FileKey key{e.machine, ParseU64(ArgValue(e.args, "file"))};
      auto it = leases.find(key);
      sim::Time expires = static_cast<sim::Time>(ParseU64(ArgValue(e.args, "expires")));
      if (it != leases.end() && expires > it->second.expires) {
        it->second.expires = expires;
      }
    } else if (e.kind == EventKind::kInstant && e.name == "nqnfs.read_observe") {
      FileKey key{e.machine, ParseU64(ArgValue(e.args, "file"))};
      uint64_t version = ParseU64(ArgValue(e.args, "version"));
      auto it = leases.find(key);
      if (it == leases.end()) {
        out.push_back(Violation{"lease-expired-read", i,
                                "client m" + std::to_string(e.machine) +
                                    " served a cached read of file " + std::to_string(key.file) +
                                    " without a lease"});
      } else if (e.at >= it->second.expires) {
        out.push_back(Violation{
            "lease-expired-read", i,
            "client m" + std::to_string(e.machine) + " served a cached read of file " +
                std::to_string(key.file) + " at t=" + std::to_string(e.at) +
                " but its lease expired at t=" + std::to_string(it->second.expires)});
      } else if (version < it->second.version) {
        out.push_back(Violation{
            "lease-expired-read", i,
            "client m" + std::to_string(e.machine) + " read version " + std::to_string(version) +
                " of file " + std::to_string(key.file) + " but holds a lease for version " +
                std::to_string(it->second.version)});
      }
    } else if (e.kind == EventKind::kInstant &&
               (e.name == "nqnfs.lease_end" || e.name == "nqnfs.invalidated")) {
      leases.erase(FileKey{e.machine, ParseU64(ArgValue(e.args, "file"))});
    } else if (e.kind == EventKind::kInstant && e.name == "nqnfs.write_lease_grant") {
      uint64_t file = ParseU64(ArgValue(e.args, "file"));
      int host = static_cast<int>(ParseU64(ArgValue(e.args, "host")));
      std::map<int, sim::Time>& holders = write_leases[file];
      for (auto it = holders.begin(); it != holders.end();) {
        if (it->second <= e.at) {
          it = holders.erase(it);  // lapsed by time; no longer a promise
          continue;
        }
        if (it->first != host) {
          out.push_back(Violation{
              "dual-write-lease", i,
              "server m" + std::to_string(e.machine) + " granted host " + std::to_string(host) +
                  " a write lease on file " + std::to_string(file) + " while host " +
                  std::to_string(it->first) + "'s write lease runs until t=" +
                  std::to_string(it->second) + " (grant at t=" + std::to_string(e.at) + ")"});
        }
        ++it;
      }
      holders[host] = static_cast<sim::Time>(ParseU64(ArgValue(e.args, "expires")));
    } else if (e.kind == EventKind::kInstant && e.name == "nqnfs.write_lease_extend") {
      uint64_t file = ParseU64(ArgValue(e.args, "file"));
      int host = static_cast<int>(ParseU64(ArgValue(e.args, "host")));
      sim::Time expires = static_cast<sim::Time>(ParseU64(ArgValue(e.args, "expires")));
      auto file_it = write_leases.find(file);
      if (file_it != write_leases.end()) {
        auto it = file_it->second.find(host);
        if (it != file_it->second.end() && expires > it->second) {
          it->second = expires;
        }
      }
    } else if (e.kind == EventKind::kInstant && e.name == "nqnfs.write_lease_end") {
      uint64_t file = ParseU64(ArgValue(e.args, "file"));
      int host = static_cast<int>(ParseU64(ArgValue(e.args, "host")));
      auto file_it = write_leases.find(file);
      if (file_it != write_leases.end()) {
        file_it->second.erase(host);
      }
    } else if (e.kind == EventKind::kInstant && e.name == "cache.file_dirty" &&
               (ArgValue(e.args, "scope") == "snfs" || ArgValue(e.args, "scope") == "nqnfs")) {
      uint64_t file = ParseU64(ArgValue(e.args, "file"));
      std::set<int>& holders = dirty[file];
      holders.insert(e.machine);
      if (holders.size() > 1) {
        std::string who;
        for (int m : holders) {
          who += (who.empty() ? "m" : ",m") + std::to_string(m);
        }
        out.push_back(Violation{"concurrent-dirty", i,
                                "file " + std::to_string(file) +
                                    " is write-dirty on two clients concurrently (" + who + ")"});
      }
    } else if (e.kind == EventKind::kInstant && e.name == "cache.file_clean" &&
               (ArgValue(e.args, "scope") == "snfs" || ArgValue(e.args, "scope") == "nqnfs")) {
      dirty[ParseU64(ArgValue(e.args, "file"))].erase(e.machine);
    } else if (e.kind == EventKind::kInstant && e.name == "fleet.commit") {
      // A mutation's reply passed through the meta-cache: the owning
      // shard's committed version for this file is now at least `v`.
      // Replies of racing mutations can be observed out of order, so the
      // floor only ever rises.
      ShardFileKey key{ParseU64(ArgValue(e.args, "fsid")), ParseU64(ArgValue(e.args, "file"))};
      uint64_t version = ParseU64(ArgValue(e.args, "v"));
      uint64_t& floor = fleet_committed[key];
      if (version > floor) {
        floor = version;
      }
    } else if (e.kind == EventKind::kInstant && e.name == "fleet.meta_serve") {
      // The meta-cache answered a getattr/lookup from its cache. It must
      // reflect the owning shard's latest committed version — serving
      // anything older is the shard-aware stale read.
      ShardFileKey key{ParseU64(ArgValue(e.args, "fsid")), ParseU64(ArgValue(e.args, "file"))};
      uint64_t version = ParseU64(ArgValue(e.args, "v"));
      auto it = fleet_committed.find(key);
      if (it != fleet_committed.end() && version < it->second) {
        out.push_back(Violation{
            "stale-read", i,
            "meta-cache m" + std::to_string(e.machine) + " served file " +
                std::to_string(key.file) + " of shard fsid " + std::to_string(key.fsid) +
                " at version " + std::to_string(version) +
                " but the shard's latest committed version is " + std::to_string(it->second)});
      }
    } else if (e.kind == EventKind::kInstant && e.name == "machine.crash") {
      // Cached state — grants, client-held leases, dirty blocks — died with
      // the kernel. Server-side write-lease records deliberately survive:
      // they expire by time, not by crash.
      for (auto it = granted.begin(); it != granted.end();) {
        it = it->first.machine == e.machine ? granted.erase(it) : std::next(it);
      }
      for (auto it = leases.begin(); it != leases.end();) {
        it = it->first.machine == e.machine ? leases.erase(it) : std::next(it);
      }
      for (auto& [file, holders] : dirty) {
        holders.erase(e.machine);
      }
    } else if (e.kind == EventKind::kSpanBegin && e.name == "rpc.handle") {
      ExecKey key{e.machine, ParseU64(ArgValue(e.args, "from")),
                  ParseU64(ArgValue(e.args, "xid")), ParseU64(ArgValue(e.args, "gen"))};
      std::string op(ArgValue(e.args, "op"));
      auto [it, inserted] = execs.emplace(key, std::make_pair(0, op));
      ++it->second.first;
      if (it->second.first > 1 && !IsIdempotentOp(it->second.second)) {
        out.push_back(Violation{
            "retransmit-once", i,
            "server m" + std::to_string(key.server) + " executed non-idempotent op '" +
                it->second.second + "' " + std::to_string(it->second.first) +
                " times for xid " + std::to_string(key.xid) + " from host " +
                std::to_string(key.from) + " within generation " + std::to_string(key.gen)});
      }
    }
  }
  return out;
}

}  // namespace trace
