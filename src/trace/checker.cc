#include "src/trace/checker.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace trace {
namespace {

uint64_t ParseU64(std::string_view s) {
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      break;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

struct FileKey {
  int machine;
  uint64_t file;
  friend auto operator<=>(const FileKey&, const FileKey&) = default;
};

struct ExecKey {
  int server;
  uint64_t from;
  uint64_t xid;
  uint64_t gen;
  friend auto operator<=>(const ExecKey&, const ExecKey&) = default;
};

}  // namespace

bool IsIdempotentOp(std::string_view op) {
  // Reads and attribute ops are trivially idempotent; write and setattr set
  // absolute state (offset writes, absolute sizes); reopen re-asserts
  // absolute per-client counts. open/close/callback mutate reference counts
  // and create/remove/rename/mkdir/rmdir mutate the namespace — re-executing
  // any of those is observable.
  return op == "null" || op == "getattr" || op == "setattr" || op == "lookup" || op == "read" ||
         op == "write" || op == "readdir" || op == "ping" || op == "reopen";
}

std::vector<Violation> CheckTrace(const std::vector<Event>& events) {
  std::vector<Violation> out;
  // stale-read: (client machine, file) -> granted version.
  std::map<FileKey, uint64_t> granted;
  // concurrent-dirty: file -> set of dirty client machines.
  std::map<uint64_t, std::set<int>> dirty;
  // retransmit-once: executions per (server, client, xid, generation).
  std::map<ExecKey, std::pair<int, std::string>> execs;

  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.kind == EventKind::kInstant && e.name == "snfs.open_granted") {
      FileKey key{e.machine, ParseU64(ArgValue(e.args, "file"))};
      granted[key] = ParseU64(ArgValue(e.args, "version"));
    } else if (e.kind == EventKind::kInstant && e.name == "snfs.read_observe") {
      FileKey key{e.machine, ParseU64(ArgValue(e.args, "file"))};
      uint64_t version = ParseU64(ArgValue(e.args, "version"));
      auto it = granted.find(key);
      if (it == granted.end()) {
        out.push_back(Violation{"stale-read", i,
                                "client m" + std::to_string(e.machine) +
                                    " served a cached read of file " +
                                    std::to_string(key.file) + " without an open grant"});
      } else if (version < it->second) {
        out.push_back(Violation{
            "stale-read", i,
            "client m" + std::to_string(e.machine) + " read version " + std::to_string(version) +
                " of file " + std::to_string(key.file) + " but holds a grant for version " +
                std::to_string(it->second)});
      }
    } else if (e.kind == EventKind::kInstant && e.name == "snfs.invalidated") {
      granted.erase(FileKey{e.machine, ParseU64(ArgValue(e.args, "file"))});
    } else if (e.kind == EventKind::kInstant && e.name == "cache.file_dirty" &&
               ArgValue(e.args, "scope") == "snfs") {
      uint64_t file = ParseU64(ArgValue(e.args, "file"));
      std::set<int>& holders = dirty[file];
      holders.insert(e.machine);
      if (holders.size() > 1) {
        std::string who;
        for (int m : holders) {
          who += (who.empty() ? "m" : ",m") + std::to_string(m);
        }
        out.push_back(Violation{"concurrent-dirty", i,
                                "file " + std::to_string(file) +
                                    " is write-dirty on two clients concurrently (" + who + ")"});
      }
    } else if (e.kind == EventKind::kInstant && e.name == "cache.file_clean" &&
               ArgValue(e.args, "scope") == "snfs") {
      dirty[ParseU64(ArgValue(e.args, "file"))].erase(e.machine);
    } else if (e.kind == EventKind::kInstant && e.name == "machine.crash") {
      // Cached state — grants and dirty blocks — died with the kernel.
      for (auto it = granted.begin(); it != granted.end();) {
        it = it->first.machine == e.machine ? granted.erase(it) : std::next(it);
      }
      for (auto& [file, holders] : dirty) {
        holders.erase(e.machine);
      }
    } else if (e.kind == EventKind::kSpanBegin && e.name == "rpc.handle") {
      ExecKey key{e.machine, ParseU64(ArgValue(e.args, "from")),
                  ParseU64(ArgValue(e.args, "xid")), ParseU64(ArgValue(e.args, "gen"))};
      std::string op(ArgValue(e.args, "op"));
      auto [it, inserted] = execs.emplace(key, std::make_pair(0, op));
      ++it->second.first;
      if (it->second.first > 1 && !IsIdempotentOp(it->second.second)) {
        out.push_back(Violation{
            "retransmit-once", i,
            "server m" + std::to_string(key.server) + " executed non-idempotent op '" +
                it->second.second + "' " + std::to_string(it->second.first) +
                " times for xid " + std::to_string(key.xid) + " from host " +
                std::to_string(key.from) + " within generation " + std::to_string(key.gen)});
      }
    }
  }
  return out;
}

}  // namespace trace
