#include "src/workload/fleet.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/base/check.h"

namespace workload {
namespace {

std::string DirName(int d) { return "d" + std::to_string(d); }
std::string FileName(int f) { return "f" + std::to_string(f); }

std::vector<uint8_t> SyntheticBytes(sim::Rng& rng, uint32_t n) {
  std::vector<uint8_t> v(n);
  for (uint32_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

// Cumulative Zipf(s) distribution over ranks 0..n-1, normalized to [0, 1].
std::vector<double> ZipfCdf(int n, double s) {
  std::vector<double> cdf(static_cast<size_t>(n));
  double total = 0;
  for (int i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[static_cast<size_t>(i)] = total;
  }
  for (double& c : cdf) {
    c /= total;
  }
  return cdf;
}

int SampleZipf(const std::vector<double>& cdf, sim::Rng& rng) {
  double r = rng.UniformDouble();
  auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
  if (it == cdf.end()) {
    return static_cast<int>(cdf.size()) - 1;
  }
  return static_cast<int>(it - cdf.begin());
}

// Catalog slot i -> path: round-robin across shards, then row-major within
// the shard's tree, so the hot head of a skewed distribution touches every
// shard.
std::string CatalogPath(const std::vector<std::string>& shard_roots, const std::string& tree,
                        FleetTreeShape shape, int i) {
  int shards = static_cast<int>(shard_roots.size());
  int shard = i % shards;
  int within = i / shards;
  int dir = within / shape.files_per_dir;
  int file = within % shape.files_per_dir;
  return shard_roots[static_cast<size_t>(shard)] + "/" + tree + "/" + DirName(dir) + "/" +
         FileName(file);
}

}  // namespace

sim::Task<void> PopulateFleetTree(fs::LocalFs& fs, proto::FileHandle parent,
                                  std::string tree_name, FleetTreeShape shape) {
  sim::Rng rng(shape.seed);
  auto tree = co_await fs.Mkdir(parent, tree_name);
  CHECK(tree.ok());
  for (int d = 0; d < shape.dirs; ++d) {
    auto dir = co_await fs.Mkdir(tree->fh, DirName(d));
    CHECK(dir.ok());
    for (int f = 0; f < shape.files_per_dir; ++f) {
      auto file = co_await fs.Create(dir->fh, FileName(f), /*exclusive=*/true);
      CHECK(file.ok());
      auto wrote = co_await fs.Write(file->fh, 0, SyntheticBytes(rng, shape.file_bytes),
                                     fs::LocalFs::WriteMode::kMemory);
      CHECK(wrote.ok());
    }
  }
}

sim::Task<base::Result<BootStormReport>> RunBootStorm(sim::Simulator& simulator, vfs::Vfs& vfs,
                                                      sim::Cpu& cpu, BootStormConfig config) {
  BootStormReport report;
  sim::Time start = simulator.Now();
  for (size_t s = 0; s < config.shard_roots.size(); ++s) {
    std::string tree = config.shard_roots[s] + "/" + config.tree_name;
    auto dirs = co_await vfs.ReadDir(tree);
    if (!dirs.ok()) {
      ++report.errors;
      continue;
    }
    for (size_t d = 0; d < dirs->size(); ++d) {
      std::string dir_path = tree + "/" + (*dirs)[d].name;
      auto dir_attr = co_await vfs.Stat(dir_path);
      if (!dir_attr.ok()) {
        ++report.errors;
        continue;
      }
      co_await cpu.Run(config.cpu.stat_per_file);
      auto files = co_await vfs.ReadDir(dir_path);
      if (!files.ok()) {
        ++report.errors;
        continue;
      }
      for (size_t f = 0; f < files->size(); ++f) {
        std::string file_path = dir_path + "/" + (*files)[f].name;
        auto attr = co_await vfs.Stat(file_path);
        if (!attr.ok()) {
          ++report.errors;
          continue;
        }
        co_await cpu.Run(config.cpu.stat_per_file);
        auto data = co_await vfs.ReadFile(file_path);
        if (!data.ok()) {
          ++report.errors;
          continue;
        }
        ++report.files_read;
        report.bytes_read += data->size();
        co_await cpu.Run(config.cpu.read_per_kb *
                         static_cast<int64_t>(1 + data->size() / 1024));
      }
    }
  }
  report.elapsed = simulator.Now() - start;
  co_return report;
}

sim::Task<base::Result<HotsetReport>> RunHotset(sim::Simulator& simulator, vfs::Vfs& vfs,
                                                sim::Cpu& cpu, HotsetConfig config) {
  int catalog = static_cast<int>(config.shard_roots.size()) * config.shape.dirs *
                config.shape.files_per_dir;
  CHECK_GT(catalog, 0);
  std::vector<double> cdf = ZipfCdf(catalog, config.zipf_s);
  sim::Rng rng(config.seed);

  HotsetReport report;
  sim::Time start = simulator.Now();
  for (int op = 0; op < config.ops; ++op) {
    int slot = SampleZipf(cdf, rng);
    std::string path = CatalogPath(config.shard_roots, config.tree_name, config.shape, slot);
    auto fd = co_await vfs.Open(path, vfs::OpenFlags::ReadOnly());
    if (!fd.ok()) {
      ++report.errors;
      continue;
    }
    auto data = co_await vfs.Pread(*fd, 0, config.read_bytes);
    if (!data.ok()) {
      ++report.errors;
    } else {
      ++report.ops_done;
      report.bytes_read += data->size();
      co_await cpu.Run(config.cpu.read_per_kb * static_cast<int64_t>(1 + data->size() / 1024));
    }
    auto closed = co_await vfs.Close(*fd);
    if (!closed.ok()) {
      ++report.errors;
    }
  }
  report.elapsed = simulator.Now() - start;
  co_return report;
}

}  // namespace workload
