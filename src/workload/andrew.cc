#include "src/workload/andrew.h"

#include <algorithm>

#include "src/base/log.h"

namespace workload {
namespace {

std::string DirName(int d) { return "dir" + std::to_string(d); }
std::string FileName(int f) { return "file" + std::to_string(f) + ".c"; }
std::string HeaderName(int h) { return "hdr" + std::to_string(h) + ".h"; }
std::string ObjectName(int f) { return "file" + std::to_string(f) + ".o"; }

std::vector<uint8_t> SyntheticBytes(sim::Rng& rng, uint32_t n) {
  std::vector<uint8_t> v(n);
  for (uint32_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(rng.Next());
  }
  return v;
}

uint32_t FileBytes(const AndrewShape& shape, sim::Rng& rng) {
  return static_cast<uint32_t>(rng.UniformInt(shape.min_file_bytes, shape.max_file_bytes));
}

}  // namespace

std::string_view AndrewPhaseName(AndrewPhase phase) {
  switch (phase) {
    case AndrewPhase::kMakeDir:
      return "MakeDir";
    case AndrewPhase::kCopy:
      return "Copy";
    case AndrewPhase::kScanDir:
      return "ScanDir";
    case AndrewPhase::kReadAll:
      return "ReadAll";
    case AndrewPhase::kMake:
      return "Make";
  }
  return "?";
}

sim::Task<void> PopulateAndrewTree(fs::LocalFs& fs, proto::FileHandle parent,
                                   AndrewShape shape) {
  sim::Rng rng(shape.seed);
  auto src = co_await fs.Mkdir(parent, "src");
  CHECK(src.ok());
  auto include = co_await fs.Mkdir(src->fh, "include");
  CHECK(include.ok());
  for (int h = 0; h < shape.num_headers; ++h) {
    auto file = co_await fs.Create(include->fh, HeaderName(h), /*exclusive=*/true);
    CHECK(file.ok());
    auto wrote = co_await fs.Write(file->fh, 0, SyntheticBytes(rng, shape.header_bytes),
                                   fs::LocalFs::WriteMode::kMemory);
    CHECK(wrote.ok());
  }
  for (int d = 0; d < shape.dirs; ++d) {
    auto dir = co_await fs.Mkdir(src->fh, DirName(d));
    CHECK(dir.ok());
    for (int f = 0; f < shape.files_per_dir; ++f) {
      auto file = co_await fs.Create(dir->fh, FileName(f), /*exclusive=*/true);
      CHECK(file.ok());
      auto wrote =
          co_await fs.Write(file->fh, 0, SyntheticBytes(rng, FileBytes(shape, rng)),
                            fs::LocalFs::WriteMode::kMemory);
      CHECK(wrote.ok());
    }
  }
}

namespace {

// Phase 1: construct a target subtree identical in structure to the source.
sim::Task<base::Result<void>> PhaseMakeDir(vfs::Vfs& vfs, AndrewConfig config) {
  CO_RETURN_IF_ERROR(co_await vfs.MkdirPath(config.target_root));
  CO_RETURN_IF_ERROR(co_await vfs.MkdirPath(config.target_root + "/include"));
  for (int d = 0; d < config.shape.dirs; ++d) {
    CO_RETURN_IF_ERROR(co_await vfs.MkdirPath(config.target_root + "/" + DirName(d)));
  }
  co_return base::OkStatus();
}

// Phase 2: copy every file from the source subtree to the target subtree.
sim::Task<base::Result<uint64_t>> PhaseCopy(vfs::Vfs& vfs, sim::Cpu& cpu,
                                            AndrewConfig config) {
  uint64_t bytes = 0;
  for (int h = 0; h < config.shape.num_headers; ++h) {
    std::string name = "/include/" + HeaderName(h);
    co_await cpu.Run(config.cpu.copy_per_file);
    CO_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                        co_await vfs.ReadFile(config.src_root + name));
    CO_RETURN_IF_ERROR(co_await vfs.WriteFile(config.target_root + name, data));
    bytes += data.size();
  }
  for (int d = 0; d < config.shape.dirs; ++d) {
    for (int f = 0; f < config.shape.files_per_dir; ++f) {
      std::string name = "/" + DirName(d) + "/" + FileName(f);
      co_await cpu.Run(config.cpu.copy_per_file);
      CO_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                          co_await vfs.ReadFile(config.src_root + name));
      CO_RETURN_IF_ERROR(co_await vfs.WriteFile(config.target_root + name, data));
      bytes += data.size();
    }
  }
  co_return bytes;
}

// Phase 3: recursively traverse the target subtree, stat-ing every file
// without reading contents.
sim::Task<base::Result<void>> PhaseScanDir(sim::Simulator& simulator, vfs::Vfs& vfs,
                                           sim::Cpu& cpu, AndrewConfig config) {
  std::vector<std::string> stack{config.target_root};
  while (!stack.empty()) {
    std::string dir = stack.back();
    stack.pop_back();
    CO_ASSIGN_OR_RETURN(std::vector<proto::DirEntry> entries, co_await vfs.ReadDir(dir));
    for (const proto::DirEntry& entry : entries) {
      std::string path = dir + "/" + entry.name;
      CO_ASSIGN_OR_RETURN(proto::Attr attr, co_await vfs.Stat(path));
      co_await cpu.Run(config.cpu.scan_per_file);
      if (attr.type == proto::FileType::kDirectory) {
        stack.push_back(path);
      }
    }
  }
  co_return base::OkStatus();
}

// Phase 4: read every byte of every file in the target subtree.
sim::Task<base::Result<void>> PhaseReadAll(vfs::Vfs& vfs, sim::Cpu& cpu,
                                           AndrewConfig config) {
  std::vector<std::string> stack{config.target_root};
  while (!stack.empty()) {
    std::string dir = stack.back();
    stack.pop_back();
    CO_ASSIGN_OR_RETURN(std::vector<proto::DirEntry> entries, co_await vfs.ReadDir(dir));
    for (const proto::DirEntry& entry : entries) {
      std::string path = dir + "/" + entry.name;
      CO_ASSIGN_OR_RETURN(proto::Attr attr, co_await vfs.Stat(path));
      if (attr.type == proto::FileType::kDirectory) {
        stack.push_back(path);
        continue;
      }
      CO_ASSIGN_OR_RETURN(std::vector<uint8_t> data, co_await vfs.ReadFile(path));
      co_await cpu.Run(config.cpu.read_per_kb * static_cast<int64_t>(1 + data.size() / 1024));
    }
  }
  co_return base::OkStatus();
}

// One synthetic compilation: reads the source and the popular headers,
// produces a temporary (preprocessor/assembler) file in tmp, burns CPU,
// writes the object into the target tree, deletes the temporary.
sim::Task<base::Result<uint64_t>> CompileOne(sim::Simulator& simulator, vfs::Vfs& vfs,
                                             sim::Cpu& cpu, AndrewConfig config, int d,
                                             int f, sim::Rng& rng) {
  std::string src = config.target_root + "/" + DirName(d) + "/" + FileName(f);
  CO_ASSIGN_OR_RETURN(std::vector<uint8_t> source, co_await vfs.ReadFile(src));

  // The popular-header pattern: a handful of headers are opened and read by
  // every compile ("a popular header file is read repeatedly during the
  // course of some seconds. This pattern is actually quite common.").
  uint64_t header_bytes = 0;
  for (int i = 0; i < config.shape.headers_per_compile; ++i) {
    int h = static_cast<int>(rng.UniformInt(0, config.shape.num_headers - 1));
    std::string hdr = config.target_root + "/include/" + HeaderName(h);
    CO_ASSIGN_OR_RETURN(std::vector<uint8_t> data, co_await vfs.ReadFile(hdr));
    header_bytes += data.size();
  }

  // Preprocessor output: short-lived temporary (expanded source + headers).
  std::string tmp_path =
      config.tmp_dir + "/cc" + std::to_string(d) + "_" + std::to_string(f) + ".s";
  std::vector<uint8_t> temp(static_cast<size_t>(
      static_cast<double>(source.size() + header_bytes) * config.shape.temp_multiplier));
  for (size_t i = 0; i < temp.size(); ++i) {
    temp[i] = static_cast<uint8_t>(i * 7);
  }
  CO_RETURN_IF_ERROR(co_await vfs.WriteFile(tmp_path, temp));

  // Compile proper (cost follows the source, not the expanded temporary).
  co_await cpu.Run(config.cpu.compile_base +
                   config.cpu.compile_per_kb * static_cast<int64_t>(1 + source.size() / 1024));

  // Read the temporary back (assembler pass), emit the object file.
  CO_ASSIGN_OR_RETURN(std::vector<uint8_t> reread, co_await vfs.ReadFile(tmp_path));
  std::vector<uint8_t> object(
      static_cast<size_t>(static_cast<double>(source.size()) * config.shape.object_multiplier) +
      config.shape.object_base_bytes);
  for (size_t i = 0; i < object.size(); ++i) {
    object[i] = static_cast<uint8_t>(i * 13);
  }
  std::string obj_path = config.target_root + "/" + DirName(d) + "/" + ObjectName(f);
  CO_RETURN_IF_ERROR(co_await vfs.WriteFile(obj_path, object));

  // The temporary dies young — the delete-before-writeback opportunity.
  CO_RETURN_IF_ERROR(co_await vfs.Unlink(tmp_path));
  co_return static_cast<uint64_t>(object.size());
}

// Phase 5: compile every source file, then link the objects.
sim::Task<base::Result<uint64_t>> PhaseMake(sim::Simulator& simulator, vfs::Vfs& vfs,
                                            sim::Cpu& cpu, AndrewConfig config) {
  sim::Rng rng(config.shape.seed ^ 0xABCD);
  uint64_t compiled = 0;
  uint64_t object_bytes = 0;
  for (int d = 0; d < config.shape.dirs; ++d) {
    for (int f = 0; f < config.shape.files_per_dir; ++f) {
      CO_ASSIGN_OR_RETURN(uint64_t obj,
                          co_await CompileOne(simulator, vfs, cpu, config, d, f, rng));
      object_bytes += obj;
      ++compiled;
    }
  }
  // Link: read every object, burn CPU, write the final binary.
  for (int d = 0; d < config.shape.dirs; ++d) {
    for (int f = 0; f < config.shape.files_per_dir; ++f) {
      std::string obj_path = config.target_root + "/" + DirName(d) + "/" + ObjectName(f);
      CO_ASSIGN_OR_RETURN(std::vector<uint8_t> data, co_await vfs.ReadFile(obj_path));
      (void)data;
    }
  }
  co_await cpu.Run(config.cpu.link_base +
                   config.cpu.link_per_kb * static_cast<int64_t>(1 + object_bytes / 1024));
  std::vector<uint8_t> binary(object_bytes * 9 / 10);
  for (size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<uint8_t>(i);
  }
  CO_RETURN_IF_ERROR(co_await vfs.WriteFile(config.target_root + "/a.out", binary));
  co_return compiled;
}

}  // namespace

sim::Task<base::Result<AndrewReport>> RunAndrew(sim::Simulator& simulator, vfs::Vfs& vfs,
                                                sim::Cpu& cpu, AndrewConfig config) {
  AndrewReport report;
  sim::Time start = simulator.Now();
  sim::Time phase_start = start;

  auto end_phase = [&](AndrewPhase phase) {
    sim::Time now = simulator.Now();
    report.phase_time[static_cast<int>(phase)] = now - phase_start;
    phase_start = now;
  };

  CO_RETURN_IF_ERROR(co_await PhaseMakeDir(vfs, config));
  end_phase(AndrewPhase::kMakeDir);

  CO_ASSIGN_OR_RETURN(report.bytes_copied, co_await PhaseCopy(vfs, cpu, config));
  end_phase(AndrewPhase::kCopy);

  CO_RETURN_IF_ERROR(co_await PhaseScanDir(simulator, vfs, cpu, config));
  end_phase(AndrewPhase::kScanDir);

  CO_RETURN_IF_ERROR(co_await PhaseReadAll(vfs, cpu, config));
  end_phase(AndrewPhase::kReadAll);

  CO_ASSIGN_OR_RETURN(report.files_compiled, co_await PhaseMake(simulator, vfs, cpu, config));
  end_phase(AndrewPhase::kMake);

  report.total = simulator.Now() - start;
  co_return report;
}

}  // namespace workload
