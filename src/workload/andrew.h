// The Andrew benchmark (Howard et al. [2], as used in the paper's §5.2):
// five phases over a source subtree — MakeDir, Copy, ScanDir, ReadAll, and
// Make (a synthetic compile-and-link pass reproducing the I/O pattern of
// the portable-compiler variant the paper used: read sources, repeatedly
// reread popular headers, write and delete temporary files, write objects,
// link).
#ifndef SRC_WORKLOAD_ANDREW_H_
#define SRC_WORKLOAD_ANDREW_H_

#include <array>
#include <string>

#include "src/base/result.h"
#include "src/fs/local_fs.h"
#include "src/sim/cpu.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/vfs/vfs.h"

namespace workload {

// Shape of the benchmark tree (the original: ~70 files, ~200 KB of source,
// in a handful of directories).
struct AndrewShape {
  int dirs = 5;
  int files_per_dir = 14;              // 70 source files total
  uint32_t min_file_bytes = 800;
  uint32_t max_file_bytes = 7200;      // mean ~2.9 KB -> ~200 KB total
  int num_headers = 8;
  uint32_t header_bytes = 2000;
  int headers_per_compile = 5;         // popular headers reread per compile
  // Compiler artifact sizing: the preprocessor temporary is roughly the
  // source plus included headers scaled by expansion; the (portable,
  // unoptimized) object code is several times the source.
  double temp_multiplier = 1.5;
  double object_multiplier = 4.0;
  uint32_t object_base_bytes = 4096;
  uint64_t seed = 1989;
};

// CPU model for the synthetic compiler (Titan-class, per §5.2 the Make
// phase dominates the benchmark).
struct AndrewCpuModel {
  sim::Duration compile_base = sim::Msec(1500);   // cc/cpp/as process overhead
  sim::Duration compile_per_kb = sim::Msec(90);   // per source KB
  sim::Duration copy_per_file = sim::Msec(200);   // cp process overhead
  sim::Duration link_base = sim::Msec(3000);
  sim::Duration link_per_kb = sim::Msec(20);
  sim::Duration scan_per_file = sim::Msec(15);    // stat-processing time
  sim::Duration read_per_kb = sim::Msec(5);
};

struct AndrewConfig {
  std::string src_root = "/data/src";      // pre-populated source subtree
  std::string target_root = "/data/target";
  std::string tmp_dir = "/tmp";            // compiler temporaries
  AndrewShape shape;
  AndrewCpuModel cpu;
};

enum class AndrewPhase { kMakeDir = 0, kCopy, kScanDir, kReadAll, kMake };
inline constexpr int kNumAndrewPhases = 5;

std::string_view AndrewPhaseName(AndrewPhase phase);

struct AndrewReport {
  std::array<sim::Duration, kNumAndrewPhases> phase_time{};
  sim::Duration total = 0;
  uint64_t files_compiled = 0;
  uint64_t bytes_copied = 0;
};

// Build the benchmark's read-only source subtree (a "src" directory under
// `parent`) directly in the (server or local) file system, bypassing the
// protocols so population costs nothing.
sim::Task<void> PopulateAndrewTree(fs::LocalFs& fs, proto::FileHandle parent,
                                   AndrewShape shape);

// Run all five phases through `vfs`, charging compute to `cpu`.
sim::Task<base::Result<AndrewReport>> RunAndrew(sim::Simulator& simulator, vfs::Vfs& vfs,
                                                sim::Cpu& cpu, AndrewConfig config);

}  // namespace workload

#endif  // SRC_WORKLOAD_ANDREW_H_
