// Fleet-scale workloads (AutoClient/BaBar-style stress cases, PAPERS.md):
//
//   Boot storm    every client cold-walks and reads the same boot tree on
//                 every shard at once — the pathological shared-metadata
//                 storm (stat + lookup per component, then reads) that a
//                 network metadata-cache tier exists to absorb.
//
//   Zipf hotset   each client runs open-read-close loops over a shared file
//                 catalog with Zipf-distributed popularity; files are
//                 spread round-robin across shards so aggregate throughput
//                 scales with the shard count when the servers are the
//                 bottleneck.
//
// Both workloads are pure vfs consumers: they run unchanged against a
// single server, a sharded fleet, or a fleet behind the meta-cache tier.
#ifndef SRC_WORKLOAD_FLEET_H_
#define SRC_WORKLOAD_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/fs/local_fs.h"
#include "src/sim/cpu.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/vfs/vfs.h"

namespace workload {

// Shape of one shard's slice of a fleet tree.
struct FleetTreeShape {
  int dirs = 2;
  int files_per_dir = 8;
  uint32_t file_bytes = 8192;
  uint64_t seed = 1989;
};

// Out-of-band population of `tree_name` under one shard's exported
// directory (direct LocalFs access, no RPCs — mirrors PopulateAndrewTree).
sim::Task<void> PopulateFleetTree(fs::LocalFs& fs, proto::FileHandle parent,
                                  std::string tree_name, FleetTreeShape shape);

// CPU model for the fleet clients (stat-processing and read-processing
// costs in the spirit of the Andrew scan/read phases, but lighter — these
// are daemons booting, not compilers).
struct FleetCpuModel {
  sim::Duration stat_per_file = sim::Msec(2);
  sim::Duration read_per_kb = sim::Msec(1);
};

struct BootStormConfig {
  std::vector<std::string> shard_roots;  // e.g. {"/data/s0", "/data/s1"}
  std::string tree_name = "boot";
  FleetTreeShape shape;
  FleetCpuModel cpu;
};

struct BootStormReport {
  uint64_t files_read = 0;
  uint64_t bytes_read = 0;
  uint64_t errors = 0;
  sim::Duration elapsed = 0;
};

// One client's boot: walk every shard root's boot tree (readdir + stat every
// entry) and read every file. Errors are counted, not fatal — fault-sweep
// runs boot clients through shard crashes.
sim::Task<base::Result<BootStormReport>> RunBootStorm(sim::Simulator& simulator, vfs::Vfs& vfs,
                                                      sim::Cpu& cpu, BootStormConfig config);

struct HotsetConfig {
  std::vector<std::string> shard_roots;
  std::string tree_name = "hot";
  FleetTreeShape shape;   // per-shard slice; catalog = shards * dirs * files
  FleetCpuModel cpu;
  int ops = 200;          // open-read-close iterations
  double zipf_s = 0.9;    // popularity skew (s=0 is uniform)
  uint32_t read_bytes = 4096;
  uint64_t seed = 1;      // per-client stream
};

struct HotsetReport {
  uint64_t ops_done = 0;
  uint64_t bytes_read = 0;
  uint64_t errors = 0;
  sim::Duration elapsed = 0;
};

// One client's share of the hotset load: `ops` open-read-close iterations
// over the catalog, file picked per-op from a Zipf distribution. File i
// lives on shard i % num_shards, so the hot head of the distribution is
// spread across the whole fleet.
sim::Task<base::Result<HotsetReport>> RunHotset(sim::Simulator& simulator, vfs::Vfs& vfs,
                                                sim::Cpu& cpu, HotsetConfig config);

}  // namespace workload

#endif  // SRC_WORKLOAD_FLEET_H_
