// The sort benchmark (§5.3): an external merge sort implemented against the
// VFS API, "which does an external sort and so makes heavy use of temporary
// files". Run generation writes sorted runs into the temp directory; k-way
// merge passes rewrite them until one run remains, which becomes the
// output; temporaries are deleted as they are consumed.
//
// The paper's three input sizes (281 k / 1408 k / 2816 k) with temp storage
// growing faster than the input (304 k / 2170 k / 7764 k) emerge from the
// run-buffer size and merge order below.
#ifndef SRC_WORKLOAD_SORT_H_
#define SRC_WORKLOAD_SORT_H_

#include <string>

#include "src/base/result.h"
#include "src/fs/local_fs.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/vfs/vfs.h"

namespace workload {

inline constexpr uint32_t kSortRecordBytes = 64;

struct SortCpuModel {
  // Per-record costs of 1989 sort(1): line parsing, key extraction, and
  // comparisons dominate (the paper's local 2816 kB sort takes 74 s).
  sim::Duration per_record_sort = sim::Usec(600);
  sim::Duration per_record_merge = sim::Usec(400);
};

struct SortConfig {
  std::string input_path = "/local/input";
  std::string tmp_dir = "/usr/tmp";       // the location the paper varies
  std::string output_path = "/local/output";
  uint32_t buffer_bytes = 96 * 1024;       // run size
  int merge_order = 4;
  SortCpuModel cpu;
};

struct SortReport {
  sim::Duration elapsed = 0;
  uint64_t input_bytes = 0;
  uint64_t temp_bytes_written = 0;  // total volume written to the temp dir
  uint64_t runs_created = 0;
  uint64_t merge_passes = 0;
  bool verified = false;            // output is sorted and a permutation
};

// Create an input file of `bytes` (rounded down to whole records) filled
// with deterministic pseudo-random records, directly in `fs`.
sim::Task<void> PopulateSortInput(fs::LocalFs& fs, proto::FileHandle parent,
                                  std::string name, uint64_t bytes, uint64_t seed);

// Run the external sort through `vfs`. Verifies the output ordering.
sim::Task<base::Result<SortReport>> RunSort(sim::Simulator& simulator, vfs::Vfs& vfs,
                                            sim::Cpu& cpu, SortConfig config);

}  // namespace workload

#endif  // SRC_WORKLOAD_SORT_H_
