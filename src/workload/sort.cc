#include "src/workload/sort.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/base/log.h"
#include "src/sim/random.h"

namespace workload {
namespace {

// A record is kSortRecordBytes bytes whose first 8 bytes are the big-endian
// key (so byte-wise comparison equals key comparison).
void FillRecord(uint8_t* rec, uint64_t key, sim::Rng& rng) {
  for (int i = 0; i < 8; ++i) {
    rec[i] = static_cast<uint8_t>(key >> (56 - 8 * i));
  }
  for (uint32_t i = 8; i < kSortRecordBytes; ++i) {
    rec[i] = static_cast<uint8_t>(rng.Next());
  }
}

bool RecordLess(const uint8_t* a, const uint8_t* b) {
  return std::memcmp(a, b, kSortRecordBytes) < 0;
}

std::string RunName(const std::string& tmp_dir, int pass, uint64_t index) {
  return tmp_dir + "/srt" + std::to_string(pass) + "_" + std::to_string(index);
}

}  // namespace

sim::Task<void> PopulateSortInput(fs::LocalFs& fs, proto::FileHandle parent,
                                  std::string name, uint64_t bytes, uint64_t seed) {
  sim::Rng rng(seed);
  uint64_t records = bytes / kSortRecordBytes;
  auto file = co_await fs.Create(parent, name, /*exclusive=*/false);
  CHECK(file.ok());
  // Write in 64 KB slabs to keep allocation sane.
  constexpr uint64_t kSlabRecords = 1024;
  std::vector<uint8_t> slab;
  uint64_t offset = 0;
  for (uint64_t r = 0; r < records; r += kSlabRecords) {
    uint64_t n = std::min(kSlabRecords, records - r);
    slab.assign(n * kSortRecordBytes, 0);
    for (uint64_t i = 0; i < n; ++i) {
      FillRecord(&slab[i * kSortRecordBytes], rng.Next(), rng);
    }
    auto wrote = co_await fs.Write(file->fh, offset, slab, fs::LocalFs::WriteMode::kMemory);
    CHECK(wrote.ok());
    offset += slab.size();
  }
}

namespace {

// Read `count` bytes at the fd's current position, looping on short reads.
sim::Task<base::Result<std::vector<uint8_t>>> ReadFully(vfs::Vfs& vfs, int fd, uint32_t count) {
  std::vector<uint8_t> out;
  while (out.size() < count) {
    CO_ASSIGN_OR_RETURN(std::vector<uint8_t> chunk,
                        co_await vfs.Read(fd, count - static_cast<uint32_t>(out.size())));
    if (chunk.empty()) {
      break;  // EOF
    }
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  co_return out;
}

struct MergeSource {
  int fd = -1;
  std::vector<uint8_t> buffer;
  size_t pos = 0;  // byte offset of the next record in buffer
  bool exhausted = false;
};

// Refill a merge source's buffer if it has been consumed.
sim::Task<base::Result<void>> Refill(vfs::Vfs& vfs, MergeSource& src, uint32_t chunk) {
  if (src.exhausted || src.pos < src.buffer.size()) {
    co_return base::OkStatus();
  }
  CO_ASSIGN_OR_RETURN(src.buffer, co_await ReadFully(vfs, src.fd, chunk));
  src.pos = 0;
  if (src.buffer.empty()) {
    src.exhausted = true;
  }
  co_return base::OkStatus();
}

}  // namespace

sim::Task<base::Result<SortReport>> RunSort(sim::Simulator& simulator, vfs::Vfs& vfs,
                                            sim::Cpu& cpu, SortConfig config) {
  SortReport report;
  sim::Time start = simulator.Now();

  // --- Run generation: read buffer-sized chunks, sort, write to tmp. ----
  CO_ASSIGN_OR_RETURN(int in_fd, co_await vfs.Open(config.input_path, vfs::OpenFlags::ReadOnly()));
  std::vector<std::string> runs;
  uint32_t run_bytes = config.buffer_bytes / kSortRecordBytes * kSortRecordBytes;
  while (true) {
    CO_ASSIGN_OR_RETURN(std::vector<uint8_t> buffer, co_await ReadFully(vfs, in_fd, run_bytes));
    if (buffer.empty()) {
      break;
    }
    report.input_bytes += buffer.size();
    uint64_t nrec = buffer.size() / kSortRecordBytes;
    // In-memory sort of the run (indices, then permute).
    std::vector<uint32_t> order(nrec);
    for (uint64_t i = 0; i < nrec; ++i) {
      order[i] = static_cast<uint32_t>(i);
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return RecordLess(&buffer[a * kSortRecordBytes], &buffer[b * kSortRecordBytes]);
    });
    std::vector<uint8_t> sorted(buffer.size());
    for (uint64_t i = 0; i < nrec; ++i) {
      std::memcpy(&sorted[i * kSortRecordBytes], &buffer[order[i] * kSortRecordBytes],
                  kSortRecordBytes);
    }
    co_await cpu.Run(config.cpu.per_record_sort * static_cast<int64_t>(nrec));

    std::string run = RunName(config.tmp_dir, 0, runs.size());
    CO_RETURN_IF_ERROR(co_await vfs.WriteFile(run, sorted));
    report.temp_bytes_written += sorted.size();
    runs.push_back(std::move(run));
  }
  CO_RETURN_IF_ERROR(co_await vfs.Close(in_fd));
  report.runs_created = runs.size();

  // --- Merge passes: k-way merge until one run remains. -----------------
  int pass = 1;
  const uint32_t kMergeChunk = 16 * 1024;
  while (runs.size() > 1) {
    ++report.merge_passes;
    std::vector<std::string> next;
    for (size_t group = 0; group < runs.size();
         group += static_cast<size_t>(config.merge_order)) {
      size_t group_end = std::min(runs.size(), group + static_cast<size_t>(config.merge_order));
      bool final_merge = runs.size() - (group_end - group) + 1 == 1 && group == 0 &&
                         group_end == runs.size();
      std::string out_path =
          final_merge ? config.output_path : RunName(config.tmp_dir, pass, next.size());

      std::vector<MergeSource> sources(group_end - group);
      for (size_t i = 0; i < sources.size(); ++i) {
        CO_ASSIGN_OR_RETURN(sources[i].fd,
                            co_await vfs.Open(runs[group + i], vfs::OpenFlags::ReadOnly()));
        CO_RETURN_IF_ERROR(co_await Refill(vfs, sources[i], kMergeChunk));
      }
      CO_ASSIGN_OR_RETURN(int out_fd, co_await vfs.Open(out_path, vfs::OpenFlags::WriteCreate()));

      std::vector<uint8_t> out_buffer;
      uint64_t merged_records = 0;
      while (true) {
        int best = -1;
        for (size_t i = 0; i < sources.size(); ++i) {
          if (sources[i].exhausted) {
            continue;
          }
          if (best < 0 ||
              RecordLess(&sources[i].buffer[sources[i].pos],
                         &sources[static_cast<size_t>(best)]
                              .buffer[sources[static_cast<size_t>(best)].pos])) {
            best = static_cast<int>(i);
          }
        }
        if (best < 0) {
          break;
        }
        // Refill mutates the source in place while it awaits the disk, but
        // `sources` is coroutine-local and never resized during the merge,
        // so no interleaved coroutine can invalidate the reference.
        // lint: suspend-escape-ok
        MergeSource& src = sources[static_cast<size_t>(best)];
        out_buffer.insert(out_buffer.end(), src.buffer.begin() + static_cast<int64_t>(src.pos),
                          src.buffer.begin() + static_cast<int64_t>(src.pos + kSortRecordBytes));
        src.pos += kSortRecordBytes;
        ++merged_records;
        CO_RETURN_IF_ERROR(co_await Refill(vfs, src, kMergeChunk));
        if (out_buffer.size() >= kMergeChunk) {
          CO_RETURN_IF_ERROR(co_await vfs.Write(out_fd, out_buffer));
          if (!final_merge) {
            report.temp_bytes_written += out_buffer.size();
          }
          out_buffer.clear();
        }
      }
      if (!out_buffer.empty()) {
        CO_RETURN_IF_ERROR(co_await vfs.Write(out_fd, out_buffer));
        if (!final_merge) {
          report.temp_bytes_written += out_buffer.size();
        }
      }
      co_await cpu.Run(config.cpu.per_record_merge * static_cast<int64_t>(merged_records));
      CO_RETURN_IF_ERROR(co_await vfs.Close(out_fd));
      for (size_t i = 0; i < sources.size(); ++i) {
        CO_RETURN_IF_ERROR(co_await vfs.Close(sources[i].fd));
        // Consumed runs die young: SNFS/local cancel their delayed writes.
        CO_RETURN_IF_ERROR(co_await vfs.Unlink(runs[group + i]));
      }
      if (!final_merge) {
        next.push_back(out_path);
      }
    }
    runs = std::move(next);
    ++pass;
    if (runs.empty()) {
      break;  // the last group was the final merge
    }
  }
  if (runs.size() == 1) {
    // Single run: it IS the sorted output; "rename" by copy + delete.
    CO_ASSIGN_OR_RETURN(std::vector<uint8_t> data, co_await vfs.ReadFile(runs[0]));
    CO_RETURN_IF_ERROR(co_await vfs.WriteFile(config.output_path, data));
    CO_RETURN_IF_ERROR(co_await vfs.Unlink(runs[0]));
  }

  report.elapsed = simulator.Now() - start;

  // --- Verify the output (outside the timed region). ----------------------
  CO_ASSIGN_OR_RETURN(std::vector<uint8_t> output, co_await vfs.ReadFile(config.output_path));
  report.verified = output.size() == report.input_bytes;
  for (uint64_t i = kSortRecordBytes; report.verified && i < output.size();
       i += kSortRecordBytes) {
    if (RecordLess(&output[i], &output[i - kSortRecordBytes])) {
      report.verified = false;
    }
  }

  co_return report;
}

}  // namespace workload
