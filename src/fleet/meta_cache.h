// fleet::MetaCache — an in-network metadata cache in front of a shard fleet,
// in the spirit of Fletch's in-switch caching (PAPERS.md): the machine sits
// on the network path between NFS clients and the shard servers, answers
// getattr and lookup from a bounded versioned cache, and forwards everything
// else to the owning shard (routed by the ShardMap).
//
// Interposition makes the cache coherent by construction: clients mount the
// shards with the cache's address as the server address, so every mutation's
// reply passes through the cache — the cache raises that file's committed
// floor and refreshes (or drops) the affected entries before the client ever
// sees the reply. A getattr/lookup miss is forwarded once and its reply is
// admitted only if it is not older than the committed floor, which closes
// the race where an in-flight miss reply would otherwise re-install
// pre-mutation attributes. Concurrent misses for the same key coalesce
// behind one forwarded RPC.
//
// The cache is NFS-only: SNFS/NQNFS servers address callbacks and leases to
// the network peer they saw the open/lease request from, which would be the
// cache, breaking the callback channel. (Those protocols carry their own
// consistency state and do not need the tier — it exists to absorb NFS's
// per-open getattr probe and lookup storms.)
//
// Versions are (mtime, ctime) reduced to max(mtime, ctime): LocalFs bumps
// one of the two on every mutation, so the floor is monotone per file.
// Trace hooks (`fleet.commit` on mutation replies, `fleet.meta_serve` on
// cache hits) feed the shard-aware stale-read rule in trace::Checker.
#ifndef SRC_FLEET_META_CACHE_H_
#define SRC_FLEET_META_CACHE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fleet/shard_map.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/cpu.h"
#include "src/sim/future.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace fleet {

struct MetaCacheParams {
  // Switch-resident: per-call costs far below a full server's RPC stack.
  rpc::PeerOptions peer{
      .num_workers = 16,
      .costs = {.client_per_call = sim::Usec(30),
                .server_per_call = sim::Usec(30),
                .per_kb = sim::Usec(20)},
      .default_call = {},
      .dup_cache_entries = 1024};
  // Bound for each of the attribute and name-binding tables (LRU eviction).
  size_t max_entries = 4096;
};

class MetaCache {
 public:
  MetaCache(sim::Simulator& simulator, net::Network& network, std::string name,
            ShardMap shards, MetaCacheParams params = {});

  MetaCache(const MetaCache&) = delete;
  MetaCache& operator=(const MetaCache&) = delete;

  // Bring the RPC endpoint (receive loop + worker pool) up.
  void Start();

  net::Address address() const { return peer_->address(); }
  rpc::Peer& peer() { return *peer_; }
  sim::Cpu& cpu() { return cpu_; }
  const ShardMap& shards() const { return shards_; }
  const std::string& name() const { return name_; }

  // Statistics.
  uint64_t attr_hits() const { return attr_hits_; }
  uint64_t lookup_hits() const { return lookup_hits_; }
  uint64_t hits() const { return attr_hits_ + lookup_hits_; }
  uint64_t misses() const { return misses_; }        // forwarded fill RPCs
  uint64_t coalesced() const { return coalesced_; }  // joins on in-flight fills
  uint64_t forwarded() const { return forwarded_; }  // all pass-through RPCs
  uint64_t evictions() const { return evictions_; }
  uint64_t invalidations() const { return invalidations_; }
  uint64_t stale_fills_rejected() const { return stale_fills_rejected_; }
  size_t attr_entries() const { return attrs_.size(); }
  size_t lookup_entries() const { return lookups_.size(); }

 private:
  struct AttrEntry {
    proto::Attr attr;
    std::list<proto::FileHandle>::iterator lru;
  };

  struct NameKey {
    proto::FileHandle dir;
    std::string name;
    friend bool operator==(const NameKey&, const NameKey&) = default;
  };
  struct NameKeyHash {
    size_t operator()(const NameKey& k) const {
      return proto::FileHandleHash()(k.dir) * 1315423911ULL ^ std::hash<std::string>()(k.name);
    }
  };
  struct LookupEntry {
    proto::FileHandle child;
    std::list<NameKey>::iterator lru;
  };

  // Everything Absorb() needs from a request, captured before the request
  // is moved into the forwarded Call.
  struct AbsorbCtx {
    proto::OpKind kind = proto::OpKind::kNull;
    int shard = -1;
    proto::FileHandle fh;   // target of getattr/read/write/setattr
    proto::FileHandle dir;  // parent of lookup/create/remove/mkdir/rmdir/rename-from
    proto::FileHandle dir2; // rename-to parent
    std::string name;
    std::string name2;      // rename-to name
  };

  sim::Task<proto::Reply> Handle(proto::Request request, net::Address from);
  // Miss path for getattr/lookup: coalesce on `key`, forward once.
  sim::Task<proto::Reply> MissFill(std::string key, proto::Request request);
  // Route to the owning shard, forward, and absorb the reply into the cache.
  sim::Task<proto::Reply> Forward(proto::Request request);

  void Absorb(const AbsorbCtx& ctx, const proto::Reply& reply);
  void ApplyInval(const proto::MetaInvalReq& req);

  // Cache maintenance (all synchronous; never called across a suspension).
  void InsertGuarded(proto::FileHandle fh, const proto::Attr& attr);
  void Commit(proto::FileHandle fh, const proto::Attr& attr, int shard);
  void DropAttr(proto::FileHandle fh);
  void BindName(proto::FileHandle dir, std::string name, proto::FileHandle child);
  void DropName(const NameKey& key, bool drop_child_attr);
  void RaiseFloor(proto::FileHandle fh, uint64_t version);
  uint64_t Floor(proto::FileHandle fh) const;
  void TouchAttr(std::unordered_map<proto::FileHandle, AttrEntry,
                                    proto::FileHandleHash>::iterator it);

  int host() const { return peer_->address().host; }

  sim::Simulator& simulator_;
  std::string name_;
  ShardMap shards_;
  MetaCacheParams params_;
  sim::Cpu cpu_;
  std::unique_ptr<rpc::Peer> peer_;

  // Attribute cache: fh -> attrs, LRU-bounded at params_.max_entries.
  std::unordered_map<proto::FileHandle, AttrEntry, proto::FileHandleHash> attrs_;
  std::list<proto::FileHandle> attr_lru_;  // front = coldest

  // Name-binding cache: (dir, name) -> child fh, LRU-bounded likewise.
  std::unordered_map<NameKey, LookupEntry, NameKeyHash> lookups_;
  std::list<NameKey> lookup_lru_;  // front = coldest

  // Committed floors: the highest mutation version seen per file. Floors
  // outlive cache entries (they guard re-insertion) and are bounded FIFO at
  // 4x max_entries; evicting a floor only widens a race the checker watches.
  std::unordered_map<proto::FileHandle, uint64_t, proto::FileHandleHash> floors_;
  std::deque<proto::FileHandle> floor_order_;

  // One promise per in-flight cache fill; concurrent misses for the same
  // key await the leader's future instead of duplicating its shard RPC
  // (the Fletch-style storm absorption).
  std::unordered_map<std::string, sim::Promise<proto::Reply>> inflight_;

  uint64_t attr_hits_ = 0;
  uint64_t lookup_hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t coalesced_ = 0;
  uint64_t forwarded_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t stale_fills_rejected_ = 0;
};

}  // namespace fleet

#endif  // SRC_FLEET_META_CACHE_H_
