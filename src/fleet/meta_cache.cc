#include "src/fleet/meta_cache.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "src/base/check.h"
#include "src/trace/trace.h"

namespace fleet {
namespace {

// A file's version for floor/guard purposes. LocalFs bumps mtime on data
// mutations and ctime on attribute mutations, so the max is monotone across
// every mutation kind.
uint64_t VersionOf(const proto::Attr& attr) {
  return static_cast<uint64_t>(std::max(attr.mtime, attr.ctime));
}

std::string FileArgs(proto::FileHandle fh, uint64_t version) {
  return "fsid=" + std::to_string(fh.fsid) + " file=" + std::to_string(fh.fileid) +
         " v=" + std::to_string(version);
}

std::string AttrFillKey(proto::FileHandle fh) {
  return "a:" + std::to_string(fh.fsid) + ":" + std::to_string(fh.fileid) + ":" +
         std::to_string(fh.gen);
}

std::string LookupFillKey(proto::FileHandle dir, const std::string& name) {
  return "l:" + std::to_string(dir.fsid) + ":" + std::to_string(dir.fileid) + ":" +
         std::to_string(dir.gen) + ":" + name;
}

}  // namespace

MetaCache::MetaCache(sim::Simulator& simulator, net::Network& network, std::string name,
                     ShardMap shards, MetaCacheParams params)
    : simulator_(simulator),
      name_(std::move(name)),
      shards_(std::move(shards)),
      params_(params),
      cpu_(simulator) {
  CHECK_GT(shards_.num_shards(), 0);
  CHECK_GT(params_.max_entries, 0u);
  peer_ = std::make_unique<rpc::Peer>(simulator_, network, cpu_, name_, params_.peer);
  peer_->set_handler([this](proto::Request request, net::Address from) {
    return Handle(std::move(request), from);
  });
}

void MetaCache::Start() { peer_->Start(); }

sim::Task<proto::Reply> MetaCache::Handle(proto::Request request, net::Address from) {
  (void)from;
  switch (proto::KindOf(request)) {
    case proto::OpKind::kNull:
      co_return proto::OkReply(proto::NullRep{});
    case proto::OpKind::kGetAttr: {
      proto::FileHandle fh = std::get<proto::GetAttrReq>(request).fh;
      auto it = attrs_.find(fh);
      if (it != attrs_.end()) {
        ++attr_hits_;
        TouchAttr(it);
        proto::Attr attr = it->second.attr;
        TRACE_INSTANT("fleet.meta_serve", host(), FileArgs(fh, VersionOf(attr)) + " src=attr");
        co_return proto::OkReply(proto::AttrRep{attr});
      }
      co_return co_await MissFill(AttrFillKey(fh), std::move(request));
    }
    case proto::OpKind::kLookup: {
      const auto& req = std::get<proto::LookupReq>(request);
      auto bound = lookups_.find(NameKey{req.dir, req.name});
      if (bound != lookups_.end()) {
        auto attr_it = attrs_.find(bound->second.child);
        if (attr_it != attrs_.end()) {
          ++lookup_hits_;
          proto::FileHandle child = bound->second.child;
          lookup_lru_.splice(lookup_lru_.end(), lookup_lru_, bound->second.lru);
          TouchAttr(attr_it);
          proto::Attr attr = attr_it->second.attr;
          TRACE_INSTANT("fleet.meta_serve", host(),
                        FileArgs(child, VersionOf(attr)) + " src=lookup");
          co_return proto::OkReply(proto::LookupRep{child, attr});
        }
      }
      std::string key = LookupFillKey(req.dir, req.name);
      co_return co_await MissFill(std::move(key), std::move(request));
    }
    case proto::OpKind::kMetaInval: {
      ApplyInval(std::get<proto::MetaInvalReq>(request));
      co_return proto::OkReply(proto::MetaInvalRep{});
    }
    default:
      co_return co_await Forward(std::move(request));
  }
}

sim::Task<proto::Reply> MetaCache::MissFill(std::string key, proto::Request request) {
  auto found = inflight_.find(key);
  if (found != inflight_.end()) {
    // Someone is already filling this key: park behind their RPC instead of
    // duplicating it — the Fletch-style storm absorption. The future's
    // shared state outlives the map entry, so the leader erasing the key
    // cannot strand a parked joiner.
    ++coalesced_;
    sim::Future<proto::Reply> fill = found->second.GetFuture();
    co_return co_await fill;
  }
  ++misses_;
  sim::Promise<proto::Reply> fill(simulator_);
  inflight_.emplace(key, fill);
  proto::Reply reply = co_await Forward(std::move(request));
  inflight_.erase(key);
  fill.Set(reply);
  co_return reply;
}

sim::Task<proto::Reply> MetaCache::Forward(proto::Request request) {
  base::Result<int> shard = ShardForRequest(shards_, request);
  if (!shard.ok()) {
    co_return proto::ErrorReply(shard.status());
  }

  AbsorbCtx ctx;
  ctx.kind = proto::KindOf(request);
  ctx.shard = *shard;
  switch (ctx.kind) {
    case proto::OpKind::kGetAttr:
      ctx.fh = std::get<proto::GetAttrReq>(request).fh;
      break;
    case proto::OpKind::kSetAttr:
      ctx.fh = std::get<proto::SetAttrReq>(request).fh;
      break;
    case proto::OpKind::kRead:
      ctx.fh = std::get<proto::ReadReq>(request).fh;
      break;
    case proto::OpKind::kWrite:
      ctx.fh = std::get<proto::WriteReq>(request).fh;
      break;
    case proto::OpKind::kLookup: {
      const auto& r = std::get<proto::LookupReq>(request);
      ctx.dir = r.dir;
      ctx.name = r.name;
      break;
    }
    case proto::OpKind::kCreate: {
      const auto& r = std::get<proto::CreateReq>(request);
      ctx.dir = r.dir;
      ctx.name = r.name;
      break;
    }
    case proto::OpKind::kMkdir: {
      const auto& r = std::get<proto::MkdirReq>(request);
      ctx.dir = r.dir;
      ctx.name = r.name;
      break;
    }
    case proto::OpKind::kRemove: {
      const auto& r = std::get<proto::RemoveReq>(request);
      ctx.dir = r.dir;
      ctx.name = r.name;
      break;
    }
    case proto::OpKind::kRmdir: {
      const auto& r = std::get<proto::RmdirReq>(request);
      ctx.dir = r.dir;
      ctx.name = r.name;
      break;
    }
    case proto::OpKind::kRename: {
      const auto& r = std::get<proto::RenameReq>(request);
      ctx.dir = r.from_dir;
      ctx.name = r.from_name;
      ctx.dir2 = r.to_dir;
      ctx.name2 = r.to_name;
      break;
    }
    default:
      break;
  }

  net::Address dst = shards_.shard(*shard).address;
  ++forwarded_;
  base::Result<proto::Reply> reply = co_await peer_->Call(dst, std::move(request));
  if (!reply.ok()) {
    co_return proto::ErrorReply(reply.status());
  }
  if (reply->status.ok()) {
    Absorb(ctx, *reply);
  }
  co_return *std::move(reply);
}

void MetaCache::Absorb(const AbsorbCtx& ctx, const proto::Reply& reply) {
  switch (ctx.kind) {
    case proto::OpKind::kGetAttr: {
      if (const auto* rep = std::get_if<proto::AttrRep>(&reply.body)) {
        InsertGuarded(ctx.fh, rep->attr);
      }
      break;
    }
    case proto::OpKind::kRead: {
      // Reads piggyback fresh attributes; admit them under the same guard.
      if (const auto* rep = std::get_if<proto::ReadRep>(&reply.body)) {
        InsertGuarded(ctx.fh, rep->attr);
      }
      break;
    }
    case proto::OpKind::kLookup: {
      if (const auto* rep = std::get_if<proto::LookupRep>(&reply.body)) {
        InsertGuarded(rep->fh, rep->attr);
        BindName(ctx.dir, ctx.name, rep->fh);
      }
      break;
    }
    case proto::OpKind::kWrite:
    case proto::OpKind::kSetAttr: {
      // The linearization point for fleet mutations: the shard has applied
      // the mutation and its reply is passing through the cache.
      if (const auto* rep = std::get_if<proto::AttrRep>(&reply.body)) {
        Commit(ctx.fh, rep->attr, ctx.shard);
      }
      break;
    }
    case proto::OpKind::kCreate:
    case proto::OpKind::kMkdir: {
      if (const auto* rep = std::get_if<proto::CreateRep>(&reply.body)) {
        Commit(rep->fh, rep->attr, ctx.shard);
        BindName(ctx.dir, ctx.name, rep->fh);
        // The parent's mtime changed and the reply does not carry the new
        // value; drop the parent's attrs and let a later getattr refill.
        DropAttr(ctx.dir);
      }
      break;
    }
    case proto::OpKind::kRemove:
    case proto::OpKind::kRmdir: {
      DropName(NameKey{ctx.dir, ctx.name}, /*drop_child_attr=*/true);
      DropAttr(ctx.dir);
      break;
    }
    case proto::OpKind::kRename: {
      DropName(NameKey{ctx.dir, ctx.name}, /*drop_child_attr=*/false);
      DropName(NameKey{ctx.dir2, ctx.name2}, /*drop_child_attr=*/true);
      DropAttr(ctx.dir);
      DropAttr(ctx.dir2);
      break;
    }
    default:
      break;
  }
}

void MetaCache::ApplyInval(const proto::MetaInvalReq& req) {
  ++invalidations_;
  for (proto::FileHandle fh : req.handles) {
    DropAttr(fh);
  }
  for (const proto::MetaInvalEntry& entry : req.entries) {
    DropName(NameKey{entry.dir, entry.name}, /*drop_child_attr=*/false);
  }
  if (req.drop_all) {
    attrs_.clear();
    attr_lru_.clear();
    lookups_.clear();
    lookup_lru_.clear();
    // Floors survive: they are safety information, not cached data.
  }
  TRACE_INSTANT("fleet.meta_inval", host(),
                "handles=" + std::to_string(req.handles.size()) +
                    " entries=" + std::to_string(req.entries.size()) +
                    " drop_all=" + std::to_string(req.drop_all ? 1 : 0));
}

void MetaCache::InsertGuarded(proto::FileHandle fh, const proto::Attr& attr) {
  uint64_t version = VersionOf(attr);
  if (version < Floor(fh)) {
    // An in-flight fill raced a mutation: the reply predates the committed
    // floor, so admitting it would serve stale metadata.
    ++stale_fills_rejected_;
    return;
  }
  auto it = attrs_.find(fh);
  if (it != attrs_.end()) {
    if (version < VersionOf(it->second.attr)) {
      ++stale_fills_rejected_;
      return;
    }
    it->second.attr = attr;
    TouchAttr(it);
    return;
  }
  if (attrs_.size() >= params_.max_entries) {
    proto::FileHandle coldest = attr_lru_.front();
    attr_lru_.pop_front();
    attrs_.erase(coldest);
    ++evictions_;
  }
  attr_lru_.push_back(fh);
  attrs_.emplace(fh, AttrEntry{attr, std::prev(attr_lru_.end())});
}

void MetaCache::Commit(proto::FileHandle fh, const proto::Attr& attr, int shard) {
  uint64_t version = VersionOf(attr);
  RaiseFloor(fh, version);
  InsertGuarded(fh, attr);
  TRACE_INSTANT("fleet.commit", host(),
                FileArgs(fh, version) + " shard=" + std::to_string(shard));
}

void MetaCache::DropAttr(proto::FileHandle fh) {
  auto it = attrs_.find(fh);
  if (it == attrs_.end()) {
    return;
  }
  attr_lru_.erase(it->second.lru);
  attrs_.erase(it);
}

void MetaCache::BindName(proto::FileHandle dir, std::string name, proto::FileHandle child) {
  NameKey key{dir, std::move(name)};
  auto it = lookups_.find(key);
  if (it != lookups_.end()) {
    it->second.child = child;
    lookup_lru_.splice(lookup_lru_.end(), lookup_lru_, it->second.lru);
    return;
  }
  if (lookups_.size() >= params_.max_entries) {
    NameKey coldest = lookup_lru_.front();
    lookup_lru_.pop_front();
    lookups_.erase(coldest);
    ++evictions_;
  }
  lookup_lru_.push_back(key);
  lookups_.emplace(std::move(key), LookupEntry{child, std::prev(lookup_lru_.end())});
}

void MetaCache::DropName(const NameKey& key, bool drop_child_attr) {
  auto it = lookups_.find(key);
  if (it == lookups_.end()) {
    return;
  }
  if (drop_child_attr) {
    DropAttr(it->second.child);
  }
  lookup_lru_.erase(it->second.lru);
  lookups_.erase(it);
}

void MetaCache::RaiseFloor(proto::FileHandle fh, uint64_t version) {
  auto it = floors_.find(fh);
  if (it != floors_.end()) {
    if (version > it->second) {
      it->second = version;
    }
    return;
  }
  if (floors_.size() >= 4 * params_.max_entries) {
    floors_.erase(floor_order_.front());
    floor_order_.pop_front();
  }
  floors_.emplace(fh, version);
  floor_order_.push_back(fh);
}

uint64_t MetaCache::Floor(proto::FileHandle fh) const {
  auto it = floors_.find(fh);
  return it == floors_.end() ? 0 : it->second;
}

void MetaCache::TouchAttr(
    std::unordered_map<proto::FileHandle, AttrEntry, proto::FileHandleHash>::iterator it) {
  attr_lru_.splice(attr_lru_.end(), attr_lru_, it->second.lru);
}

}  // namespace fleet
