#include "src/fleet/shard_map.h"

#include <variant>

#include "src/base/check.h"

namespace fleet {
namespace {

// Mount-table prefix match: `prefix` must be a whole-component prefix of
// `path` ("/data/s1" matches "/data/s1/f" but not "/data/s10").
bool PrefixMatches(std::string_view prefix, std::string_view path) {
  if (path.substr(0, prefix.size()) != prefix) {
    return false;
  }
  return path.size() == prefix.size() || prefix == "/" || path[prefix.size()] == '/';
}

}  // namespace

void ShardMap::AddShard(Shard shard) {
  CHECK_EQ(shard.id, static_cast<int>(shards_.size()));  // dense, in order
  for (const Shard& existing : shards_) {
    CHECK(existing.prefix != shard.prefix);
    CHECK(existing.fsid != shard.fsid);
  }
  shards_.push_back(std::move(shard));
}

const Shard& ShardMap::shard(int id) const {
  CHECK_GE(id, 0);
  CHECK_LT(id, num_shards());
  return shards_[static_cast<size_t>(id)];
}

base::Result<int> ShardMap::ShardForPath(std::string_view path) const {
  int best = -1;
  size_t best_len = 0;
  for (const Shard& s : shards_) {
    if (PrefixMatches(s.prefix, path) && (best == -1 || s.prefix.size() > best_len)) {
      best = s.id;
      best_len = s.prefix.size();
    }
  }
  if (best == -1) {
    return base::ErrNoEnt();
  }
  return best;
}

base::Result<int> ShardMap::ShardForHandle(proto::FileHandle fh) const {
  for (const Shard& s : shards_) {
    if (s.fsid == fh.fsid) {
      return s.id;
    }
  }
  return base::ErrStale();
}

base::Result<int> ShardForRequest(const ShardMap& map, const proto::Request& request) {
  struct Visitor {
    const ShardMap& map;
    base::Result<int> operator()(const proto::NullReq&) const { return base::ErrInval(); }
    base::Result<int> operator()(const proto::PingReq&) const { return base::ErrInval(); }
    base::Result<int> operator()(const proto::MetaInvalReq&) const { return base::ErrInval(); }
    base::Result<int> operator()(const proto::GetAttrReq& r) const {
      return map.ShardForHandle(r.fh);
    }
    base::Result<int> operator()(const proto::SetAttrReq& r) const {
      return map.ShardForHandle(r.fh);
    }
    base::Result<int> operator()(const proto::LookupReq& r) const {
      return map.ShardForHandle(r.dir);
    }
    base::Result<int> operator()(const proto::ReadReq& r) const {
      return map.ShardForHandle(r.fh);
    }
    base::Result<int> operator()(const proto::WriteReq& r) const {
      return map.ShardForHandle(r.fh);
    }
    base::Result<int> operator()(const proto::CreateReq& r) const {
      return map.ShardForHandle(r.dir);
    }
    base::Result<int> operator()(const proto::RemoveReq& r) const {
      return map.ShardForHandle(r.dir);
    }
    base::Result<int> operator()(const proto::RenameReq& r) const {
      ASSIGN_OR_RETURN(int from, map.ShardForHandle(r.from_dir));
      ASSIGN_OR_RETURN(int to, map.ShardForHandle(r.to_dir));
      if (from != to) {
        return base::ErrXDev();  // cross-shard rename is not one operation
      }
      return from;
    }
    base::Result<int> operator()(const proto::MkdirReq& r) const {
      return map.ShardForHandle(r.dir);
    }
    base::Result<int> operator()(const proto::RmdirReq& r) const {
      return map.ShardForHandle(r.dir);
    }
    base::Result<int> operator()(const proto::ReadDirReq& r) const {
      return map.ShardForHandle(r.dir);
    }
    base::Result<int> operator()(const proto::OpenReq& r) const {
      return map.ShardForHandle(r.fh);
    }
    base::Result<int> operator()(const proto::CloseReq& r) const {
      return map.ShardForHandle(r.fh);
    }
    base::Result<int> operator()(const proto::CallbackReq& r) const {
      return map.ShardForHandle(r.fh);
    }
    base::Result<int> operator()(const proto::ReopenReq& r) const {
      return map.ShardForHandle(r.fh);
    }
    base::Result<int> operator()(const proto::GetLeaseReq& r) const {
      return map.ShardForHandle(r.fh);
    }
  };
  return std::visit(Visitor{map}, request);
}

}  // namespace fleet
