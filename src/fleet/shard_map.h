// fleet::ShardMap — the routing contract for a sharded server fleet.
//
// One logical namespace ("/data") is partitioned across N ServerMachines by
// mount-table prefixes: shard k exports its tree under a path prefix (e.g.
// "/data/s2") and owns one fsid, so a file is routed two ways:
//
//   * by path   — longest-prefix match, the same rule vfs::Vfs uses for its
//                 mount table, so nested shard exports compose;
//   * by handle — proto::FileHandle carries the owning shard's fsid, which
//                 makes every post-lookup RPC (getattr/read/write/...)
//                 routable without consulting the namespace again.
//
// The map is a value type: the testbed builds one while wiring a fleet rig
// and hands copies to whoever routes (clients, the meta-cache tier).
// Cross-shard renames cannot be one namespace operation; routing them
// reports base::ErrXDev() rather than silently picking one of the shards.
#ifndef SRC_FLEET_SHARD_MAP_H_
#define SRC_FLEET_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/proto/types.h"

namespace fleet {

struct Shard {
  int id = -1;                 // dense, 0..num_shards-1
  std::string prefix;          // namespace prefix, e.g. "/data/s0"
  uint64_t fsid = 0;           // fsid of the shard's exported file system
  net::Address address;        // the shard server's RPC endpoint
  proto::FileHandle root;      // handle of the exported directory
};

class ShardMap {
 public:
  // Shards must be added with dense ids in order (0, 1, 2, ...) and with
  // distinct prefixes and fsids; violations are programming errors.
  void AddShard(Shard shard);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const Shard& shard(int id) const;

  // Longest-prefix route for an absolute path (mount-table semantics: the
  // prefix must end at a component boundary). kNoEnt if nothing matches.
  base::Result<int> ShardForPath(std::string_view path) const;

  // Route for a file handle by owning fsid. kStale if no shard owns it —
  // the handle refers to a file system this fleet does not serve.
  base::Result<int> ShardForHandle(proto::FileHandle fh) const;

 private:
  std::vector<Shard> shards_;  // index == id
};

// Extracts the routing handle from a request and routes it. Rename routes
// both directories and reports kXDev when they live on different shards;
// requests with no file handle (null, ping) and cache-administration ops
// (metainval) are not routable and report kInval.
base::Result<int> ShardForRequest(const ShardMap& map, const proto::Request& request);

}  // namespace fleet

#endif  // SRC_FLEET_SHARD_MAP_H_
