#include "src/snfs/lease_table.h"

#include <limits>

namespace snfs {

Lease* LeaseTable::Find(uint64_t fileid, int host) {
  auto it = leases_.find(LeaseKey{fileid, host});
  return it == leases_.end() ? nullptr : &it->second;
}

const Lease* LeaseTable::Find(uint64_t fileid, int host) const {
  auto it = leases_.find(LeaseKey{fileid, host});
  return it == leases_.end() ? nullptr : &it->second;
}

void LeaseTable::Put(uint64_t fileid, int host, Lease lease) {
  leases_[LeaseKey{fileid, host}] = lease;
}

sim::Time LeaseTable::ExtendTo(uint64_t fileid, int host, sim::Time expires) {
  Lease* lease = Find(fileid, host);
  if (lease == nullptr) {
    return 0;
  }
  if (expires > lease->expires) {
    lease->expires = expires;
  }
  return lease->expires;
}

bool LeaseTable::Erase(uint64_t fileid, int host) {
  return leases_.erase(LeaseKey{fileid, host}) > 0;
}

std::vector<std::pair<LeaseKey, Lease>> LeaseTable::Expired(sim::Time now) const {
  std::vector<std::pair<LeaseKey, Lease>> out;
  for (const auto& [key, lease] : leases_) {
    if (lease.expires <= now) {
      out.emplace_back(key, lease);
    }
  }
  return out;
}

std::vector<std::pair<LeaseKey, Lease>> LeaseTable::HoldersOf(uint64_t fileid) const {
  std::vector<std::pair<LeaseKey, Lease>> out;
  for (auto it = leases_.lower_bound(LeaseKey{fileid, std::numeric_limits<int>::min()});
       it != leases_.end(); ++it) {
    if (it->first.fileid != fileid) {
      break;
    }
    out.emplace_back(it->first, it->second);
  }
  return out;
}

}  // namespace snfs
