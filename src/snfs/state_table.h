// The SNFS server state table manager (§4.3) — "most of the code added to
// support SNFS is in the state table manager module".
//
// Each entry tracks one file: its consistency state (the seven states of
// §4.3.4 / Table 4-1), its version numbers, and a client information block
// per client host with reader/writer counts. OnOpen/OnClose compute the
// Table 4-1 transition, mutate the entry, and report which callbacks the
// server must issue. The class is pure bookkeeping — no I/O — so the
// transition relation can be tested exhaustively.
#ifndef SRC_SNFS_STATE_TABLE_H_
#define SRC_SNFS_STATE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/proto/types.h"

namespace snfs {

enum class FileState : uint8_t {
  kClosed,        // not open by any client
  kClosedDirty,   // not open; last writer may still have dirty blocks
  kOneReader,     // open read-only by one client
  kOneRdrDirty,   // open read-only by one client that may have dirty blocks
  kMultReaders,   // open read-only by two or more clients
  kOneWriter,     // open read-write by one client
  kWriteShared,   // open by >= 2 clients including >= 1 writer: no caching
};

std::string_view FileStateName(FileState state);

// A callback the server must issue before completing the current open.
struct CallbackAction {
  int host = -1;
  bool writeback = false;
  bool invalidate = false;
  bool relinquish = false;

  friend bool operator==(const CallbackAction&, const CallbackAction&) = default;
};

struct OpenResult {
  bool cache_enabled = true;
  uint64_t version = 0;        // latest version (post-bump for write opens)
  uint64_t prev_version = 0;   // version before the latest write-open bump
  bool version_bumped = false; // caller persists the bump to stable storage
  bool possibly_inconsistent = false;
  FileState state = FileState::kClosed;  // resulting state
  std::vector<CallbackAction> callbacks;
};

struct CloseResult {
  FileState state = FileState::kClosed;
  bool entry_known = true;  // false: close for an entry we have no record of
};

struct StateTableParams {
  size_t max_entries = 1000;  // §4.3.1: bounded kernel memory (~68 B/entry)
};

class StateTable {
 public:
  struct ClientInfo {
    int host = -1;
    uint32_t readers = 0;
    uint32_t writers = 0;
  };

  struct Entry {
    proto::FileHandle fh;
    FileState state = FileState::kClosed;
    uint64_t version = 0;
    uint64_t prev_version = 0;
    std::vector<ClientInfo> clients;
    int last_writer = -1;  // valid in the *_DIRTY states
    bool inconsistent = false;
  };

  explicit StateTable(StateTableParams params = {});

  // Apply an open. `stable_version` seeds the entry's version when the file
  // is first tracked (from the file system, where versions persist).
  OpenResult OnOpen(const proto::FileHandle& fh, int host, bool write, uint64_t stable_version);

  // Apply a close; `has_dirty` is the client's declaration that it still
  // holds dirty blocks for the file.
  CloseResult OnClose(const proto::FileHandle& fh, int host, bool write, bool has_dirty);

  // The file was removed: drop any record of it.
  void Forget(const proto::FileHandle& fh);

  // A callback to the last writer completed (its dirty blocks are now at
  // the server): CLOSED_DIRTY becomes CLOSED, ONE_RDR_DIRTY becomes
  // ONE_READER. No-op in other states.
  void MarkFlushed(const proto::FileHandle& fh);

  // A callback could not be delivered (client presumed dead): remember that
  // the file may be inconsistent, and drop the dead client's opens.
  void MarkInconsistent(const proto::FileHandle& fh, int dead_host);

  // Recovery (§2.4): a client re-asserts its state after our reboot.
  OpenResult ApplyReopen(const proto::FileHandle& fh, int host, uint32_t read_count,
                         uint32_t write_count, bool has_dirty, uint64_t cached_version,
                         uint64_t stable_version);

  // Reclaim support (§4.3.1): entries whose clients should be asked to give
  // the file up. CLOSED entries are reclaimed internally; CLOSED_DIRTY need
  // a writeback callback to `last_writer` followed by MarkFlushed+Forget.
  struct ReclaimPlan {
    proto::FileHandle fh;
    CallbackAction callback;
  };
  std::vector<ReclaimPlan> PlanReclaim();

  const Entry* Lookup(const proto::FileHandle& fh) const;

  // True when `host` has at least one open (reader or writer) recorded.
  bool HostHasOpen(const proto::FileHandle& fh, int host) const;
  size_t size() const { return entries_.size(); }
  bool over_limit() const { return entries_.size() > params_.max_entries; }

  // Drop every entry (server crash: "the state ... is lost").
  void Clear() { entries_.clear(); }

  // Invariant checks used by property tests; aborts on violation.
  void CheckInvariants() const;

 private:
  Entry& GetOrCreate(const proto::FileHandle& fh, uint64_t stable_version);  // lint: unstable-source
  static ClientInfo* FindClient(Entry& entry, int host);
  static uint32_t TotalOpens(const Entry& entry);
  static uint32_t TotalWriters(const Entry& entry);
  void DropClosedEntries();

  StateTableParams params_;
  std::unordered_map<proto::FileHandle, Entry, proto::FileHandleHash> entries_;
};

}  // namespace snfs

#endif  // SRC_SNFS_STATE_TABLE_H_
