// NFS/SNFS coexistence (§6.1): a hybrid server exporting one file system to
// both protocols at once.
//
// "One approach is to treat any NFS access to a file already open under
// SNFS as implying an SNFS open operation. The server also has to keep,
// for a period no less than the longest reasonable NFS attributes-probe
// interval, a record of all other files accessed via NFS. By using this
// information, the server can manage the caches of SNFS clients so as to
// guarantee their consistency, and still provide 'normal' NFS consistency
// to the NFS clients."
//
// Implementation: clients are distinguished by behaviour — "SNFS clients
// always perform open operations before other file operations" — so a read
// or write RPC from a host with no open recorded in the state table is an
// NFS access. It acquires an implicit SNFS open (triggering whatever
// callbacks the state table demands, so SNFS clients stay consistent) held
// as a lease that is extended on access and closed after the NFS
// attribute-probe horizon.
#ifndef SRC_SNFS_HYBRID_H_
#define SRC_SNFS_HYBRID_H_

#include <memory>

#include "src/snfs/lease_table.h"
#include "src/snfs/server.h"

namespace snfs {

struct HybridServerParams {
  SnfsServerParams snfs;
  // How long an implicit NFS open lingers after the last access; "no less
  // than the longest reasonable NFS attributes-probe interval".
  sim::Duration nfs_lease = sim::Sec(60);
  sim::Duration lease_scan = sim::Sec(10);
};

class HybridServer {
 public:
  // Installs itself as `peer`'s request handler (owning an SnfsServer whose
  // handler it overrides).
  HybridServer(sim::Simulator& simulator, fs::LocalFs& fs, rpc::Peer& peer,
               HybridServerParams params = {});

  HybridServer(const HybridServer&) = delete;
  HybridServer& operator=(const HybridServer&) = delete;

  proto::FileHandle root() const { return snfs_->root(); }
  SnfsServer& snfs_server() { return *snfs_; }

  sim::Task<proto::Reply> Handle(proto::Request request, net::Address from);

  uint64_t implicit_opens() const { return implicit_opens_; }
  uint64_t lease_closes() const { return lease_closes_; }
  size_t active_leases() const { return leases_.size(); }

 private:
  // Ensure the NFS client `host` holds an (implicit) open covering `write`
  // access to `fh`; triggers SNFS callbacks exactly as an explicit open.
  sim::Task<void> TouchLease(proto::FileHandle fh, int host, bool write);
  sim::Task<void> LeaseDaemon();

  sim::Simulator& simulator_;
  rpc::Peer& peer_;
  HybridServerParams params_;
  std::unique_ptr<SnfsServer> snfs_;
  LeaseTable leases_;
  uint64_t implicit_opens_ = 0;
  uint64_t lease_closes_ = 0;
};

}  // namespace snfs

#endif  // SRC_SNFS_HYBRID_H_
