// The SNFS server: the NFS server plus the state table manager, the two new
// open/close RPC services (§4.3.1: "our only modification to the original
// NFS server code was to add the two new RPC service functions"), callback
// issuance with a deadlock-avoiding thread budget (§3.2: "if there are N
// threads, only N-1 may be doing callbacks simultaneously"), state-table
// entry reclamation, and the crash-recovery extension (§2.4).
#ifndef SRC_SNFS_SERVER_H_
#define SRC_SNFS_SERVER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/fs/local_fs.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/snfs/state_table.h"

namespace snfs {

// How version numbers are generated (§4.3.3). The paper's prototype used a
// global counter ("suitable only for experimental use"): when a file's
// state-table entry has been dropped, its reopen draws a fresh number from
// the counter, spuriously invalidating client caches. kStable keeps the
// version with the file (as Sprite does) and never invalidates spuriously.
enum class VersionMode { kStable, kGlobalCounter };

struct SnfsServerParams {
  size_t max_state_entries = 1000;
  VersionMode version_mode = VersionMode::kStable;
  // At most workers-1 concurrent callbacks, so one worker always remains to
  // service the write-backs the callbacks trigger.
  int callback_budget = 3;
  // Callbacks trigger write-backs that are themselves multi-RPC operations,
  // so the callback call must be patient ("usually the callback, together
  // with any required write-backs, should finish long before the RPC times
  // out, but this is not guaranteed"). The opener's own retry budget covers
  // the wait; a truly dead client costs ~30 s before the file is flagged.
  rpc::CallOptions callback_call{.timeout = sim::Sec(2), .max_attempts = 4, .backoff = 2.0};
  // Recovery: how long after a reboot the server accepts only reopen
  // traffic while clients re-assert their state.
  sim::Duration recovery_grace = sim::Sec(45);
  bool enable_recovery = false;
};

class SnfsServer {
 public:
  // Installs itself as `peer`'s request handler.
  SnfsServer(sim::Simulator& simulator, fs::LocalFs& fs, rpc::Peer& peer,
             SnfsServerParams params = {});

  SnfsServer(const SnfsServer&) = delete;
  SnfsServer& operator=(const SnfsServer&) = delete;

  proto::FileHandle root() const { return fs_.root(); }
  StateTable& state_table() { return table_; }
  uint64_t epoch() const { return epoch_; }
  bool in_recovery() const { return simulator_.Now() < recovery_until_; }

  sim::Task<proto::Reply> Handle(proto::Request request, net::Address from);

  // Crash simulation: lose all state (the state table lives in kernel
  // memory). The caller also marks the host down in the Network and calls
  // peer.Shutdown().
  void Crash();

  // Reboot: bump the epoch and enter the recovery grace period. The caller
  // brings the host back up and calls peer.Start().
  void Restart();

  // True while a callback for (fh -> host) is outstanding. The hybrid
  // server uses this to let the resulting write-backs through without
  // treating them as fresh NFS accesses.
  bool CallbackInProgress(const proto::FileHandle& fh, int host) const {
    return callbacks_in_progress_.contains((fh.fileid << 16) ^ static_cast<uint64_t>(host));
  }

  uint64_t callbacks_issued() const { return callbacks_issued_; }
  uint64_t callbacks_failed() const { return callbacks_failed_; }
  uint64_t reclaims() const { return reclaims_; }

 private:
  sim::Task<proto::Reply> HandleOpen(proto::OpenReq req, net::Address from);
  sim::Task<proto::Reply> HandleClose(proto::CloseReq req, net::Address from);
  sim::Task<proto::Reply> HandleReopen(proto::ReopenReq req, net::Address from);
  sim::Task<proto::Reply> HandleData(proto::Request request, net::Address from);

  // Issue one callback under the thread budget; marks the file inconsistent
  // and drops the client if the callback cannot be delivered.
  sim::Task<void> IssueCallback(proto::FileHandle fh, CallbackAction action);

  // Reclaim CLOSED_DIRTY entries when the table is over its limit.
  sim::Task<void> ReclaimEntries();

  sim::Mutex& FileLock(const proto::FileHandle& fh);

  sim::Simulator& simulator_;
  fs::LocalFs& fs_;
  rpc::Peer& peer_;
  SnfsServerParams params_;
  StateTable table_;
  sim::Semaphore callback_budget_;
  std::unordered_map<uint64_t, std::unique_ptr<sim::Mutex>> file_locks_;
  uint64_t epoch_ = 1;
  uint64_t global_version_counter_ = 1;
  sim::Time recovery_until_ = 0;
  bool reclaim_scheduled_ = false;
  std::unordered_set<uint64_t> callbacks_in_progress_;
  uint64_t callbacks_issued_ = 0;
  uint64_t callbacks_failed_ = 0;
  uint64_t reclaims_ = 0;
};

}  // namespace snfs

#endif  // SRC_SNFS_SERVER_H_
