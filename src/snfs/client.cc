#include "src/snfs/client.h"

#include <algorithm>
#include <string>

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace snfs {

using cache::kBlockSize;

SnfsClient::SnfsClient(sim::Simulator& simulator, rpc::Peer& peer, net::Address server,
                       proto::FileHandle root_fh, cache::BufferCache& cache,
                       SnfsClientParams params)
    : simulator_(simulator),
      peer_(peer),
      server_(server),
      root_fh_(root_fh),
      cache_(cache),
      params_(params) {
  cache::Backing backing;
  backing.fetch = [this](uint64_t fileid, uint64_t block)
      -> sim::Task<base::Result<std::vector<uint8_t>>> {
    auto it = nodes_.find(fileid);
    if (it == nodes_.end()) {
      co_return base::ErrStale();
    }
    proto::ReadReq req;
    req.fh = it->second->fh;
    req.offset = block * kBlockSize;
    req.count = kBlockSize;
    auto rep = rpc::Expect<proto::ReadRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      co_return rep.status();
    }
    co_return std::move(rep->data);
  };
  backing.store = [this](uint64_t fileid, uint64_t block,
                         std::vector<uint8_t> data) -> sim::Task<base::Result<void>> {
    auto it = nodes_.find(fileid);
    if (it == nodes_.end()) {
      co_return base::ErrStale();
    }
    proto::WriteReq req;
    req.fh = it->second->fh;
    req.offset = block * kBlockSize;
    req.data = std::move(data);
    auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      co_return rep.status();
    }
    co_return base::OkStatus();
  };
  // Attribute this mount's dirty-state transitions to the SNFS protocol on
  // this host, so the trace checker can enforce single-writer caching.
  backing.trace_name = "snfs";
  backing.trace_machine = peer_.address().host;
  mount_id_ = cache_.RegisterMount(std::move(backing));
}

void SnfsClient::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++daemon_generation_;
  if (params_.delayed_close) {
    simulator_.Spawn(DelayedCloseDaemon(daemon_generation_));
  }
  if (params_.enable_recovery) {
    simulator_.Spawn(KeepaliveDaemon(daemon_generation_));
  }
}

void SnfsClient::Stop() { running_ = false; }

void SnfsClient::Reset() {
  nodes_.clear();
  last_seen_epoch_ = 0;
}

SnfsClient::NodeRef SnfsClient::AsNode(const vfs::GnodeRef& node) {
  return std::static_pointer_cast<SnfsNode>(node);
}

SnfsClient::NodeRef SnfsClient::Intern(const proto::FileHandle& fh, const proto::Attr& attr) {
  auto it = nodes_.find(fh.fileid);
  if (it != nodes_.end() && it->second->fh == fh) {
    // Attributes for files we hold dirty data on are locally authoritative.
    if (!cache_.HasDirty(mount_id_, fh.fileid)) {
      proto::Attr merged = attr;
      merged.size = std::max(merged.size, it->second->attr.size);
      it->second->attr = merged;
    }
    return it->second;
  }
  auto node = std::make_shared<SnfsNode>();
  node->fh = fh;
  node->attr = attr;
  nodes_[fh.fileid] = node;
  return node;
}

// --- open/close --------------------------------------------------------------

sim::Task<base::Result<void>> SnfsClient::SendOpen(NodeRef node, bool write) {
  proto::OpenReq req;
  req.fh = node->fh;
  req.write_mode = write;
  for (int attempt = 0;; ++attempt) {
    auto rep = rpc::Expect<proto::OpenRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      if (rep.status() == base::ErrUnavailable() && attempt < params_.open_retry_limit) {
        // Server is rebooting / in its recovery grace period.
        co_await sim::Sleep(simulator_, params_.open_retry_delay);
        continue;
      }
      co_return rep.status();
    }

    // Cache validation (§3.1): valid if the cached version matches the
    // latest version; a writer's cache is also valid if it matches the
    // previous version (the bump was caused by this very open).
    bool cache_valid = node->have_cached_data &&
                       (node->cached_version == rep->version ||
                        (write && node->cached_version == rep->prev_version));
    if (node->have_cached_data && !cache_valid) {
      cache_.InvalidateFile(mount_id_, node->fh.fileid);
      node->have_cached_data = false;
      TRACE_INSTANT("snfs.invalidated", peer_.address().host,
                    "file=" + std::to_string(node->fh.fileid) + " reason=version");
    }
    node->cached_version = rep->version;
    node->cache_enabled = rep->cache_enabled;
    TRACE_INSTANT("snfs.open_granted", peer_.address().host,
                  "file=" + std::to_string(node->fh.fileid) +
                      " version=" + std::to_string(rep->version) +
                      " write=" + (write ? "1" : "0") +
                      " cache=" + (rep->cache_enabled ? "1" : "0"));
    if (!rep->cache_enabled) {
      // Write-shared: nobody caches. Any dirty blocks should already have
      // been called back, but be safe.
      if (cache_.HasDirty(mount_id_, node->fh.fileid)) {
        (void)co_await cache_.FlushFile(mount_id_, node->fh.fileid);
      }
      cache_.InvalidateFile(mount_id_, node->fh.fileid);
      node->have_cached_data = false;
    }
    node->possibly_inconsistent = rep->possibly_inconsistent;
    if (rep->possibly_inconsistent) {
      ++inconsistent_opens_;
    }
    // The open reply carries attributes, replacing NFS's open-time getattr.
    if (!cache_.HasDirty(mount_id_, node->fh.fileid)) {
      node->attr = rep->attr;
    }
    if (write) {
      ++node->server_writes;
    } else {
      ++node->server_reads;
    }
    co_return base::OkStatus();
  }
}

sim::Task<void> SnfsClient::SendClose(NodeRef node, bool write) {
  proto::CloseReq req;
  req.fh = node->fh;
  req.write_mode = write;
  req.has_dirty = cache_.HasDirty(mount_id_, node->fh.fileid);
  (void)co_await peer_.Call(server_, req);
  if (write) {
    CHECK_GT(node->server_writes, 0u);
    --node->server_writes;
  } else {
    CHECK_GT(node->server_reads, 0u);
    --node->server_reads;
  }
}

sim::Task<void> SnfsClient::FlushOwedCloses(NodeRef node) {
  while (OwedWrites(*node) > 0) {
    co_await SendClose(node, /*write=*/true);
  }
  while (OwedReads(*node) > 0) {
    co_await SendClose(node, /*write=*/false);
  }
}

sim::Task<base::Result<void>> SnfsClient::Open(vfs::GnodeRef gnode, bool write) {
  NodeRef node = AsNode(gnode);
  bool need_rpc = true;
  if (params_.delayed_close) {
    // Reuse a server-side open we never closed, if its mode covers us.
    if (write ? OwedWrites(*node) > 0 : (OwedReads(*node) > 0 || OwedWrites(*node) > 0)) {
      ++delayed_close_hits_;
      need_rpc = false;
    }
  }
  if (need_rpc) {
    CO_RETURN_IF_ERROR(co_await SendOpen(node, write));
  }
  if (write) {
    ++node->open_writes;
  } else {
    ++node->open_reads;
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> SnfsClient::Close(vfs::GnodeRef gnode, bool write) {
  NodeRef node = AsNode(gnode);
  if (write) {
    CHECK_GT(node->open_writes, 0u);
    --node->open_writes;
  } else {
    CHECK_GT(node->open_reads, 0u);
    --node->open_reads;
  }
  node->last_close = simulator_.Now();
  if (!params_.delayed_close) {
    // No flush of dirty data here — that is the whole point of SNFS.
    co_await SendClose(node, write);
  }
  // With delayed close, the close RPC is owed: server counts stay high
  // until a callback, the scan daemon, or an unlink settles the debt.
  co_return base::OkStatus();
}

sim::Task<void> SnfsClient::DelayedCloseDaemon(uint64_t generation) {
  while (running_ && generation == daemon_generation_) {
    co_await sim::Sleep(simulator_, params_.delayed_close_scan, /*background=*/true);
    if (!running_ || generation != daemon_generation_) {
      break;
    }
    sim::Time cutoff = simulator_.Now() - params_.delayed_close_timeout;
    // Spontaneously close files not reopened for a while (§6.2). Close RPCs
    // are issued in fileid order so the scan is hash-order independent.
    std::vector<NodeRef> victims;
    for (const auto& [fileid, node] : nodes_) {  // lint: ordered-ok (sorted below)
      if ((OwedReads(*node) > 0 || OwedWrites(*node) > 0) && node->last_close <= cutoff) {
        victims.push_back(node);
      }
    }
    std::sort(victims.begin(), victims.end(),
              [](const NodeRef& a, const NodeRef& b) { return a->fh.fileid < b->fh.fileid; });
    if (!victims.empty()) {
      TRACE_INSTANT("snfs.delayed_close_scan", peer_.address().host,
                    "victims=" + std::to_string(victims.size()));
    }
    for (const NodeRef& node : victims) {
      co_await FlushOwedCloses(node);
    }
  }
}

// --- callbacks ----------------------------------------------------------------

sim::Task<proto::Reply> SnfsClient::HandleCallback(proto::CallbackReq req) {
  ++callbacks_served_;
  trace::Span serve_span;
  if (trace::Active() != nullptr) {
    serve_span.Begin("snfs.callback_serve", peer_.address().host,
                     "file=" + std::to_string(req.fh.fileid) +
                         " wb=" + (req.writeback ? "1" : "0") +
                         " inv=" + (req.invalidate ? "1" : "0") +
                         " rel=" + (req.relinquish ? "1" : "0"));
  }
  auto it = nodes_.find(req.fh.fileid);
  if (it == nodes_.end() || !(it->second->fh == req.fh)) {
    co_return proto::OkReply(proto::CallbackRep{});
  }
  NodeRef node = it->second;
  if (req.writeback) {
    // "The client should not return from the callback RPC until all the
    // dirty blocks have been written back to the server."
    (void)co_await cache_.FlushFile(mount_id_, node->fh.fileid);
  }
  if (req.invalidate) {
    cache_.InvalidateFile(mount_id_, node->fh.fileid);
    node->have_cached_data = false;
    node->cache_enabled = false;
    TRACE_INSTANT("snfs.invalidated", peer_.address().host,
                  "file=" + std::to_string(node->fh.fileid) + " reason=callback");
  }
  // §6.2: "if a client with a delayed-close file receives a callback for
  // that file, the appropriate response is to close the file so that it can
  // be cached by the new client host". Deferred: issuing close RPCs from
  // inside the callback would deadlock against the server-side per-file
  // lock held by our caller.
  bool fully_closed_locally = node->open_reads + node->open_writes == 0;
  bool owes_closes = OwedReads(*node) > 0 || OwedWrites(*node) > 0;
  if (params_.delayed_close && owes_closes && (req.relinquish || fully_closed_locally)) {
    simulator_.Spawn(FlushOwedCloses(node));
  }
  co_return proto::OkReply(proto::CallbackRep{});
}

// --- recovery -----------------------------------------------------------------

sim::Task<void> SnfsClient::KeepaliveDaemon(uint64_t generation) {
  // First ping runs immediately to establish the epoch baseline; then the
  // loop settles into the keepalive cadence.
  bool suspected_down = false;
  bool first = true;
  rpc::CallOptions ping_opts;
  ping_opts.timeout = sim::Sec(2);
  ping_opts.max_attempts = 2;
  while (running_ && generation == daemon_generation_) {
    if (!first) {
      co_await sim::Sleep(simulator_, params_.keepalive_interval, /*background=*/true);
    }
    first = false;
    if (!running_ || generation != daemon_generation_) {
      break;
    }
    proto::PingReq req;
    req.sender_epoch = 1;
    auto rep = rpc::Expect<proto::PingRep>(co_await peer_.Call(server_, req, ping_opts));
    if (!running_ || generation != daemon_generation_) {
      co_return;  // the client crashed while the ping was in flight
    }
    if (!rep.ok()) {
      // Missed keepalive: the server may have crashed (or the network
      // partitioned); recover once it answers again.
      suspected_down = true;
      continue;
    }
    bool epoch_changed = last_seen_epoch_ != 0 && rep->responder_epoch != last_seen_epoch_;
    if (epoch_changed || (suspected_down && last_seen_epoch_ != 0)) {
      LOG_INFO("snfs", "detected server reboot (epoch %llu -> %llu); running recovery",
               static_cast<unsigned long long>(last_seen_epoch_),
               static_cast<unsigned long long>(rep->responder_epoch));
      co_await RunRecovery();
    }
    suspected_down = false;
    last_seen_epoch_ = rep->responder_epoch;
  }
}

sim::Task<void> SnfsClient::RunRecovery() {
  ++recoveries_run_;
  // Reopen files in fileid order: each reopen is an awaited RPC, so the
  // walk order feeds the event queue and must not depend on hashing.
  std::vector<uint64_t> fileids;
  fileids.reserve(nodes_.size());
  for (const auto& [fileid, node] : nodes_) {  // lint: ordered-ok (sorted below)
    fileids.push_back(fileid);
  }
  std::sort(fileids.begin(), fileids.end());
  for (uint64_t fileid : fileids) {
    auto node_it = nodes_.find(fileid);
    if (node_it == nodes_.end()) {
      continue;
    }
    NodeRef node = node_it->second;  // hold a ref: awaits below may mutate nodes_
    bool has_dirty = cache_.HasDirty(mount_id_, fileid);
    if (node->server_reads == 0 && node->server_writes == 0 && !has_dirty) {
      continue;
    }
    proto::ReopenReq req;
    req.fh = node->fh;
    req.read_count = node->server_reads;
    req.write_count = node->server_writes;
    req.has_dirty = has_dirty;
    req.cached_version = node->cached_version;
    auto rep = rpc::Expect<proto::ReopenRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      LOG_INFO("snfs", "reopen for file %llu failed: %s",
               static_cast<unsigned long long>(fileid),
               std::string(rep.status().name()).c_str());
      continue;
    }
    node->cached_version = rep->version;
    TRACE_INSTANT("snfs.open_granted", peer_.address().host,
                  "file=" + std::to_string(fileid) + " version=" + std::to_string(rep->version) +
                      " write=" + (node->server_writes > 0 ? "1" : "0") +
                      " cache=" + (rep->cache_enabled ? "1" : "0") + " reopen=1");
    if (!rep->cache_enabled) {
      if (has_dirty) {
        (void)co_await cache_.FlushFile(mount_id_, fileid);
      }
      cache_.InvalidateFile(mount_id_, fileid);
      node->have_cached_data = false;
      node->cache_enabled = false;
      TRACE_INSTANT("snfs.invalidated", peer_.address().host,
                    "file=" + std::to_string(fileid) + " reason=reopen");
    }
  }
}

// --- namespace & data ----------------------------------------------------------

sim::Task<base::Result<vfs::GnodeRef>> SnfsClient::Root() {
  auto it = nodes_.find(root_fh_.fileid);
  if (it != nodes_.end()) {
    co_return vfs::GnodeRef(it->second);
  }
  proto::GetAttrReq req;
  req.fh = root_fh_;
  auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(root_fh_, rep->attr));
}

sim::Task<base::Result<vfs::GnodeRef>> SnfsClient::Lookup(vfs::GnodeRef dir,
                                                          std::string name) {
  proto::LookupReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::LookupRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(rep->fh, rep->attr));
}

sim::Task<base::Result<vfs::GnodeRef>> SnfsClient::Create(vfs::GnodeRef dir,
                                                          std::string name,
                                                          bool exclusive) {
  proto::CreateReq req;
  req.dir = dir->fh;
  req.name = name;
  req.exclusive = exclusive;
  auto rep = rpc::Expect<proto::CreateRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(rep->fh, rep->attr));
}

sim::Task<base::Result<vfs::GnodeRef>> SnfsClient::Mkdir(vfs::GnodeRef dir,
                                                         std::string name) {
  proto::MkdirReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::CreateRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return vfs::GnodeRef(Intern(rep->fh, rep->attr));
}

sim::Task<base::Result<std::vector<uint8_t>>> SnfsClient::Read(vfs::GnodeRef gnode,
                                                               uint64_t offset, uint32_t count) {
  NodeRef node = AsNode(gnode);
  if (!node->cache_enabled) {
    // Write-shared: every read goes to the server, read-ahead disabled.
    proto::ReadReq req;
    req.fh = node->fh;
    req.offset = offset;
    req.count = count;
    auto rep = rpc::Expect<proto::ReadRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      co_return rep.status();
    }
    node->attr = rep->attr;
    co_return std::move(rep->data);
  }
  // Observation point for the stale-read invariant: a cached read may only
  // see the version the server granted at open.
  TRACE_INSTANT("snfs.read_observe", peer_.address().host,
                "file=" + std::to_string(node->fh.fileid) +
                    " version=" + std::to_string(node->cached_version));
  auto data = co_await cache_.Read(mount_id_, node->fh.fileid, offset, count, node->attr.size,
                                   /*read_ahead=*/true);
  if (data.ok() && !data->empty()) {
    node->have_cached_data = true;
  }
  co_return data;
}

sim::Task<base::Result<void>> SnfsClient::Write(vfs::GnodeRef gnode, uint64_t offset,
                                                std::vector<uint8_t> data) {
  NodeRef node = AsNode(gnode);
  if (!node->cache_enabled) {
    // Reverts to (synchronous) write-through, giving single-copy
    // consistency between writer and server.
    proto::WriteReq req;
    req.fh = node->fh;
    req.offset = offset;
    req.data = data;
    auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      co_return rep.status();
    }
    node->attr = rep->attr;
    co_return base::OkStatus();
  }
  CO_RETURN_IF_ERROR(
      co_await cache_.WriteDelayed(mount_id_, node->fh.fileid, offset, data, node->attr.size));
  node->have_cached_data = true;
  node->attr.size = std::max(node->attr.size, offset + data.size());
  node->attr.mtime = simulator_.Now();
  co_return base::OkStatus();
}

sim::Task<base::Result<proto::Attr>> SnfsClient::GetAttr(vfs::GnodeRef gnode) {
  NodeRef node = AsNode(gnode);
  if (node->cache_enabled) {
    // "In SNFS, the attributes cache needs no refreshing if the file is
    // cachable."
    co_return node->attr;
  }
  proto::GetAttrReq req;
  req.fh = node->fh;
  auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  node->attr = rep->attr;
  co_return node->attr;
}

sim::Task<base::Result<void>> SnfsClient::Truncate(vfs::GnodeRef gnode, uint64_t size) {
  NodeRef node = AsNode(gnode);
  cache_.CancelDirty(mount_id_, node->fh.fileid);
  cache_.InvalidateFile(mount_id_, node->fh.fileid);
  node->have_cached_data = false;
  proto::SetAttrReq req;
  req.fh = node->fh;
  req.size = size;
  auto rep = rpc::Expect<proto::AttrRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  node->attr = rep->attr;
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> SnfsClient::Remove(vfs::GnodeRef dir, std::string name,
                                                 vfs::GnodeRef target) {
  NodeRef victim = AsNode(target);
  // "Sprite and SNFS take advantage of this behavior by 'cancelling'
  // delayed writes when a file is deleted."
  cache_.CancelDirty(mount_id_, victim->fh.fileid);
  cache_.InvalidateFile(mount_id_, victim->fh.fileid);
  // Settle any delayed closes so the server can drop its entry cleanly.
  if (params_.delayed_close) {
    co_await FlushOwedCloses(victim);
  }
  proto::RemoveReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::NullRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  nodes_.erase(victim->fh.fileid);
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> SnfsClient::Rmdir(vfs::GnodeRef dir, std::string name) {
  proto::RmdirReq req;
  req.dir = dir->fh;
  req.name = name;
  auto rep = rpc::Expect<proto::NullRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<void>> SnfsClient::Rename(vfs::GnodeRef from_dir,
                                                 std::string from_name,
                                                 vfs::GnodeRef to_dir,
                                                 std::string to_name) {
  proto::RenameReq req;
  req.from_dir = from_dir->fh;
  req.from_name = from_name;
  req.to_dir = to_dir->fh;
  req.to_name = to_name;
  auto rep = rpc::Expect<proto::NullRep>(co_await peer_.Call(server_, req));
  if (!rep.ok()) {
    co_return rep.status();
  }
  co_return base::OkStatus();
}

sim::Task<base::Result<std::vector<proto::DirEntry>>> SnfsClient::ReadDir(vfs::GnodeRef dir) {
  std::vector<proto::DirEntry> all;
  uint64_t cookie = 0;
  while (true) {
    proto::ReadDirReq req;
    req.dir = dir->fh;
    req.cookie = cookie;
    req.count = 64;
    auto rep = rpc::Expect<proto::ReadDirRep>(co_await peer_.Call(server_, req));
    if (!rep.ok()) {
      co_return rep.status();
    }
    for (auto& e : rep->entries) {
      cookie = e.cookie;
      all.push_back(std::move(e));
    }
    if (rep->eof) {
      break;
    }
  }
  co_return all;
}

sim::Task<base::Result<void>> SnfsClient::Fsync(vfs::GnodeRef gnode) {
  NodeRef node = AsNode(gnode);
  // "If reliability is more important than performance, an application can
  // use explicit file-flushing operations to cause write-through."
  co_return co_await cache_.FlushFile(mount_id_, node->fh.fileid);
}

}  // namespace snfs
