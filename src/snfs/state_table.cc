#include "src/snfs/state_table.h"

#include <algorithm>

#include "src/base/check.h"

namespace snfs {

std::string_view FileStateName(FileState state) {
  switch (state) {
    case FileState::kClosed:
      return "CLOSED";
    case FileState::kClosedDirty:
      return "CLOSED_DIRTY";
    case FileState::kOneReader:
      return "ONE_READER";
    case FileState::kOneRdrDirty:
      return "ONE_RDR_DIRTY";
    case FileState::kMultReaders:
      return "MULT_READERS";
    case FileState::kOneWriter:
      return "ONE_WRITER";
    case FileState::kWriteShared:
      return "WRITE_SHARED";
  }
  return "UNKNOWN";
}

StateTable::StateTable(StateTableParams params) : params_(params) {}

StateTable::Entry& StateTable::GetOrCreate(const proto::FileHandle& fh, uint64_t stable_version) {
  auto it = entries_.find(fh);
  if (it != entries_.end()) {
    return it->second;
  }
  Entry entry;
  entry.fh = fh;
  entry.version = stable_version;
  entry.prev_version = stable_version;
  auto [ins, ok] = entries_.emplace(fh, std::move(entry));
  CHECK(ok);
  return ins->second;
}

StateTable::ClientInfo* StateTable::FindClient(Entry& entry, int host) {
  for (ClientInfo& c : entry.clients) {
    if (c.host == host) {
      return &c;
    }
  }
  return nullptr;
}

uint32_t StateTable::TotalOpens(const Entry& entry) {
  uint32_t n = 0;
  for (const ClientInfo& c : entry.clients) {
    n += c.readers + c.writers;
  }
  return n;
}

uint32_t StateTable::TotalWriters(const Entry& entry) {
  uint32_t n = 0;
  for (const ClientInfo& c : entry.clients) {
    n += c.writers;
  }
  return n;
}

OpenResult StateTable::OnOpen(const proto::FileHandle& fh, int host, bool write,
                              uint64_t stable_version) {
  Entry& entry = GetOrCreate(fh, stable_version);
  OpenResult result;
  result.possibly_inconsistent = entry.inconsistent;

  // Version bookkeeping: "the server keeps a version number for each file,
  // which increases every time the file is opened for writing".
  if (write) {
    entry.prev_version = entry.version;
    ++entry.version;
    result.version_bumped = true;
  }
  result.version = entry.version;
  result.prev_version = entry.prev_version;

  ClientInfo* me = FindClient(entry, host);
  bool new_client = me == nullptr;
  if (new_client) {
    entry.clients.push_back(ClientInfo{host, 0, 0});
    me = &entry.clients.back();
  }

  // Pre-transition facts.
  FileState old_state = entry.state;
  int last_writer = entry.last_writer;

  if (write) {
    ++me->writers;
  } else {
    ++me->readers;
  }

  auto to_write_shared = [&](bool old_holder_dirty, int old_holder) {
    // Everyone stops caching. Each *other* client gets an invalidate
    // callback, with writeback first if it may hold dirty blocks.
    for (const ClientInfo& c : entry.clients) {
      if (c.host == host) {
        continue;
      }
      CallbackAction cb;
      cb.host = c.host;
      cb.invalidate = true;
      cb.writeback = old_holder_dirty && c.host == old_holder;
      result.callbacks.push_back(cb);
    }
    entry.state = FileState::kWriteShared;
    entry.last_writer = -1;
    result.cache_enabled = false;
  };

  switch (old_state) {
    case FileState::kClosed:
      entry.state = write ? FileState::kOneWriter : FileState::kOneReader;
      break;

    case FileState::kClosedDirty:
      if (host == last_writer) {
        // The dirty data lives at the opener; its cache is valid by the
        // version rules (prev_version for write opens).
        entry.state = write ? FileState::kOneWriter : FileState::kOneRdrDirty;
        if (!write) {
          // stays recorded as last writer while reading its own dirty data
        } else {
          entry.last_writer = -1;
        }
      } else {
        // Retrieve the dirty blocks from the previous writer first.
        result.callbacks.push_back(CallbackAction{last_writer, /*writeback=*/true,
                                                  /*invalidate=*/false, /*relinquish=*/false});
        entry.state = write ? FileState::kOneWriter : FileState::kOneReader;
        entry.last_writer = -1;
      }
      break;

    case FileState::kOneReader:
      if (write) {
        if (entry.clients.size() == 1) {
          entry.state = FileState::kOneWriter;  // same client upgrades
        } else {
          to_write_shared(false, -1);
        }
      } else {
        entry.state = entry.clients.size() == 1 ? FileState::kOneReader : FileState::kMultReaders;
      }
      break;

    case FileState::kOneRdrDirty:
      if (entry.clients.size() == 1 && host == entry.clients.front().host) {
        // Same (dirty-holding) client opens again.
        if (write) {
          entry.state = FileState::kOneWriter;
          entry.last_writer = -1;
        }
        // read: stays ONE_RDR_DIRTY
      } else {
        if (write) {
          to_write_shared(true, last_writer);
        } else {
          result.callbacks.push_back(CallbackAction{last_writer, /*writeback=*/true,
                                                    /*invalidate=*/false, /*relinquish=*/false});
          entry.state = FileState::kMultReaders;
          entry.last_writer = -1;
        }
      }
      break;

    case FileState::kMultReaders:
      if (write) {
        to_write_shared(false, -1);
      }
      // read: stays MULT_READERS
      break;

    case FileState::kOneWriter: {
      bool same_client = !new_client && entry.clients.size() == 1;
      if (same_client) {
        // "no transition ... if a client that has a file open read-write
        // issues another open of any sort".
      } else {
        int old_writer = -1;
        for (const ClientInfo& c : entry.clients) {
          if (c.host != host) {
            old_writer = c.host;
            break;
          }
        }
        to_write_shared(/*old_holder_dirty=*/true, old_writer);
      }
      break;
    }

    case FileState::kWriteShared:
      // stays WRITE_SHARED; new arrivals don't cache either.
      break;
  }

  if (entry.state == FileState::kWriteShared) {
    result.cache_enabled = false;
  }
  result.state = entry.state;
  return result;
}

CloseResult StateTable::OnClose(const proto::FileHandle& fh, int host, bool write,
                                bool has_dirty) {
  auto it = entries_.find(fh);
  if (it == entries_.end()) {
    return CloseResult{FileState::kClosed, /*entry_known=*/false};
  }
  Entry& entry = it->second;
  ClientInfo* me = FindClient(entry, host);
  if (me == nullptr) {
    return CloseResult{entry.state, /*entry_known=*/false};
  }
  if (write) {
    if (me->writers > 0) {
      --me->writers;
    }
  } else {
    if (me->readers > 0) {
      --me->readers;
    }
  }
  bool client_done = me->readers + me->writers == 0;
  if (client_done) {
    entry.clients.erase(
        std::remove_if(entry.clients.begin(), entry.clients.end(),
                       [host](const ClientInfo& c) { return c.host == host; }),
        entry.clients.end());
  }

  uint32_t opens = TotalOpens(entry);
  uint32_t writers = TotalWriters(entry);

  if (opens == 0) {
    // Final close anywhere; the closing client's has_dirty declaration is
    // authoritative (in ONE_RDR_DIRTY the closer is the dirty holder).
    if (has_dirty) {
      entry.state = FileState::kClosedDirty;
      entry.last_writer = host;
    } else {
      entry.state = FileState::kClosed;
      entry.last_writer = -1;
    }
    return CloseResult{entry.state, true};
  }

  switch (entry.state) {
    case FileState::kWriteShared:
      // No downgrade until everyone is gone: caching cannot be re-enabled
      // mid-open (there is no "enable" callback), so remaining clients keep
      // going uncached.
      break;
    case FileState::kOneWriter:
      if (write && writers == 0) {
        // "Final close for write, client still reading" (Table 4-1).
        entry.state = has_dirty ? FileState::kOneRdrDirty : FileState::kOneReader;
        entry.last_writer = has_dirty ? host : -1;
      }
      break;
    case FileState::kMultReaders:
      if (entry.clients.size() == 1) {
        entry.state = FileState::kOneReader;
      }
      break;
    case FileState::kOneReader:
    case FileState::kOneRdrDirty:
      break;  // same client, multiple read opens
    case FileState::kClosed:
    case FileState::kClosedDirty:
      // Unreachable with opens > 0.
      break;
  }
  return CloseResult{entry.state, true};
}

void StateTable::Forget(const proto::FileHandle& fh) { entries_.erase(fh); }

void StateTable::MarkFlushed(const proto::FileHandle& fh) {
  auto it = entries_.find(fh);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  if (entry.state == FileState::kClosedDirty) {
    entry.state = FileState::kClosed;
    entry.last_writer = -1;
  } else if (entry.state == FileState::kOneRdrDirty) {
    entry.state = FileState::kOneReader;
    entry.last_writer = -1;
  }
}

void StateTable::MarkInconsistent(const proto::FileHandle& fh, int dead_host) {
  auto it = entries_.find(fh);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  entry.inconsistent = true;
  // Drop the dead client's opens; it must reopen before touching the file
  // again ("it must be prevented from making further use of the file until
  // it ... reopens the file", §3.2).
  entry.clients.erase(std::remove_if(entry.clients.begin(), entry.clients.end(),
                                     [dead_host](const ClientInfo& c) {
                                       return c.host == dead_host;
                                     }),
                      entry.clients.end());
  if (entry.last_writer == dead_host) {
    entry.last_writer = -1;
  }
  // Recompute a consistent state for the survivors.
  uint32_t opens = TotalOpens(entry);
  uint32_t writers = TotalWriters(entry);
  if (opens == 0) {
    entry.state = FileState::kClosed;
  } else if (writers > 0) {
    entry.state = entry.clients.size() == 1 ? FileState::kOneWriter : FileState::kWriteShared;
  } else {
    entry.state = entry.clients.size() == 1 ? FileState::kOneReader : FileState::kMultReaders;
  }
}

OpenResult StateTable::ApplyReopen(const proto::FileHandle& fh, int host, uint32_t read_count,
                                   uint32_t write_count, bool has_dirty, uint64_t cached_version,
                                   uint64_t stable_version) {
  Entry& entry = GetOrCreate(fh, std::max(cached_version, stable_version));
  entry.version = std::max(entry.version, std::max(cached_version, stable_version));

  ClientInfo* me = FindClient(entry, host);
  if (me == nullptr) {
    entry.clients.push_back(ClientInfo{host, 0, 0});
    me = &entry.clients.back();
  }
  me->readers = read_count;
  me->writers = write_count;
  if (has_dirty) {
    entry.last_writer = host;
  }
  // Drop clients with no remaining opens (a reopen may assert zero counts
  // plus dirty data only).
  entry.clients.erase(std::remove_if(entry.clients.begin(), entry.clients.end(),
                                     [](const ClientInfo& c) {
                                       return c.readers + c.writers == 0;
                                     }),
                      entry.clients.end());

  uint32_t opens = TotalOpens(entry);
  uint32_t writers = TotalWriters(entry);
  bool dirty = entry.last_writer >= 0;
  if (opens == 0) {
    entry.state = dirty ? FileState::kClosedDirty : FileState::kClosed;
  } else if (writers > 0) {
    entry.state = entry.clients.size() == 1 ? FileState::kOneWriter : FileState::kWriteShared;
  } else if (entry.clients.size() > 1) {
    entry.state = FileState::kMultReaders;
  } else {
    entry.state = dirty ? FileState::kOneRdrDirty : FileState::kOneReader;
  }

  OpenResult result;
  result.version = entry.version;
  result.prev_version = entry.prev_version;
  result.cache_enabled = entry.state != FileState::kWriteShared;
  result.possibly_inconsistent = entry.inconsistent;
  result.state = entry.state;
  return result;
}

std::vector<StateTable::ReclaimPlan> StateTable::PlanReclaim() {
  DropClosedEntries();
  std::vector<ReclaimPlan> plans;
  if (!over_limit()) {
    return plans;
  }
  size_t need = entries_.size() - params_.max_entries;
  // Pick victims in file-handle order, not hash order: the resulting
  // callbacks are awaited RPCs, so the choice feeds the event queue.
  std::vector<proto::FileHandle> dirty;
  for (const auto& [fh, entry] : entries_) {  // lint: ordered-ok (sorted below)
    if (entry.state == FileState::kClosedDirty) {
      dirty.push_back(fh);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  for (const proto::FileHandle& fh : dirty) {
    if (plans.size() >= need) {
      break;
    }
    plans.push_back(ReclaimPlan{
        fh, CallbackAction{entries_.at(fh).last_writer, /*writeback=*/true,
                           /*invalidate=*/false, /*relinquish=*/false}});
  }
  return plans;
}

void StateTable::DropClosedEntries() {
  if (!over_limit()) {
    return;
  }
  // Drop clean closed entries in file-handle order so WHICH entries survive
  // an over-limit table does not depend on hash-iteration order.
  std::vector<proto::FileHandle> closed;
  for (const auto& [fh, entry] : entries_) {  // lint: ordered-ok (sorted below)
    if (entry.state == FileState::kClosed) {
      closed.push_back(fh);
    }
  }
  std::sort(closed.begin(), closed.end());
  for (const proto::FileHandle& fh : closed) {
    if (!over_limit()) {
      break;
    }
    entries_.erase(fh);
  }
}

const StateTable::Entry* StateTable::Lookup(const proto::FileHandle& fh) const {
  auto it = entries_.find(fh);
  return it == entries_.end() ? nullptr : &it->second;
}

bool StateTable::HostHasOpen(const proto::FileHandle& fh, int host) const {
  const Entry* entry = Lookup(fh);
  if (entry == nullptr) {
    return false;
  }
  for (const ClientInfo& c : entry->clients) {
    if (c.host == host && c.readers + c.writers > 0) {
      return true;
    }
  }
  return false;
}

void StateTable::CheckInvariants() const {
  // Read-only per-entry CHECKs; a violation aborts regardless of walk order.
  for (const auto& [fh, entry] : entries_) {  // lint: ordered-ok
    uint32_t opens = TotalOpens(entry);
    uint32_t writers = TotalWriters(entry);
    size_t nclients = entry.clients.size();
    for (const ClientInfo& c : entry.clients) {
      CHECK_GT(c.readers + c.writers, 0u);  // idle client blocks are removed
    }
    switch (entry.state) {
      case FileState::kClosed:
        CHECK_EQ(opens, 0u);
        CHECK_EQ(entry.last_writer, -1);
        break;
      case FileState::kClosedDirty:
        CHECK_EQ(opens, 0u);
        CHECK_GE(entry.last_writer, 0);
        break;
      case FileState::kOneReader:
        CHECK_EQ(nclients, 1u);
        CHECK_EQ(writers, 0u);
        CHECK_GT(opens, 0u);
        break;
      case FileState::kOneRdrDirty:
        CHECK_EQ(nclients, 1u);
        CHECK_EQ(writers, 0u);
        CHECK_GE(entry.last_writer, 0);
        break;
      case FileState::kMultReaders:
        CHECK_GE(nclients, 2u);
        CHECK_EQ(writers, 0u);
        break;
      case FileState::kOneWriter:
        CHECK_EQ(nclients, 1u);
        CHECK_GT(writers, 0u);
        break;
      case FileState::kWriteShared:
        CHECK_GT(opens, 0u);
        break;
    }
    CHECK_GE(entry.version, entry.prev_version);
  }
}

}  // namespace snfs
