// LeaseTable: the per-(file, host) lease bookkeeping shared by the hybrid
// server's implicit NFS opens (§6.1: a record "kept for a period no less
// than the longest reasonable NFS attributes-probe interval", extended on
// access) and the NQNFS server's Gray/Cheriton leases (SNIPPETS.md,
// freebsd 06.nfs/2.t), which use the identical expiry-scan / extend-on-
// access machinery but attach protocol meaning to expiry itself.
//
// The table is deliberately passive: lookups, insertions, expiry snapshots.
// Both owners run awaited RPCs (SNFS closes, vacate callbacks) between
// table operations, so every mutation is explicit and the owner re-finds
// entries after each suspension point — the table never holds iterators
// for the caller. Iteration is over a std::map so scan order (and therefore
// the event queue) is deterministic.
#ifndef SRC_SNFS_LEASE_TABLE_H_
#define SRC_SNFS_LEASE_TABLE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/proto/types.h"
#include "src/sim/time.h"

namespace snfs {

struct LeaseKey {
  uint64_t fileid = 0;
  int host = -1;
  friend auto operator<=>(const LeaseKey&, const LeaseKey&) = default;
};

struct Lease {
  proto::FileHandle fh;
  bool write = false;
  sim::Time expires = 0;
};

class LeaseTable {
 public:
  // nullptr when (fileid, host) holds no lease. The pointer is invalidated
  // by any mutation of the table — re-find after every suspension point.
  Lease* Find(uint64_t fileid, int host);
  const Lease* Find(uint64_t fileid, int host) const;

  // Insert or overwrite the lease for (fileid, host).
  void Put(uint64_t fileid, int host, Lease lease);

  // Extend an existing lease; no-op when absent. Returns the new expiry, or
  // 0 when no lease was found.
  sim::Time ExtendTo(uint64_t fileid, int host, sim::Time expires);

  bool Erase(uint64_t fileid, int host);

  // Snapshot of entries with expires <= now, in key order. Callers act on
  // the snapshot one entry at a time (erasing before any awaited follow-up,
  // so a concurrent grant for the same key is never clobbered afterwards).
  std::vector<std::pair<LeaseKey, Lease>> Expired(sim::Time now) const;

  // Every holder of a lease on `fileid`, in host order.
  std::vector<std::pair<LeaseKey, Lease>> HoldersOf(uint64_t fileid) const;

  size_t size() const { return leases_.size(); }
  void Clear() { leases_.clear(); }

 private:
  std::map<LeaseKey, Lease> leases_;
};

}  // namespace snfs

#endif  // SRC_SNFS_LEASE_TABLE_H_
