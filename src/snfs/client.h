// The SNFS client (§4.2): explicit open/close RPCs, version-validated
// client caching, server callbacks (write-back / invalidate), and the
// Sprite-style delayed-write policy.
//
// Key behavioural differences from the NFS client:
//  * no attribute-cache refreshing while a file is cachable — the explicit
//    protocol keeps attributes valid (§4.2.1);
//  * writes are delayed in the buffer cache and are NOT flushed at close
//    ("Sprite allows the client's writebacks to proceed asynchronously even
//    across file closes");
//  * deleting a file cancels its delayed writes (§4.2.3);
//  * non-cachable (write-shared) files bypass the cache entirely: every
//    read and write goes to the server, read-ahead is disabled, and
//    attributes always come from the server (§4.2.1);
//  * optional delayed-close (§6.2): the close RPC is deferred in
//    anticipation of a quick reopen, eliminating open/close traffic for
//    reopen-heavy patterns (popular header files).
#ifndef SRC_SNFS_CLIENT_H_
#define SRC_SNFS_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/simulator.h"
#include "src/vfs/vfs.h"

namespace snfs {

struct SnfsClientParams {
  // §6.2 delayed close.
  bool delayed_close = false;
  sim::Duration delayed_close_timeout = sim::Sec(180);  // spontaneous close after this
  sim::Duration delayed_close_scan = sim::Sec(30);
  // Crash-recovery extension (§2.4).
  bool enable_recovery = false;
  sim::Duration keepalive_interval = sim::Sec(30);
  // Retry policy while the server is in its recovery grace period.
  int open_retry_limit = 90;
  sim::Duration open_retry_delay = sim::Sec(1);
};

class SnfsClient : public vfs::FileSystem {
 public:
  SnfsClient(sim::Simulator& simulator, rpc::Peer& peer, net::Address server,
             proto::FileHandle root_fh, cache::BufferCache& cache, SnfsClientParams params = {});

  // Spawns the keepalive / delayed-close daemons when enabled.
  void Start();
  void Stop();

  // Crash simulation: the client kernel's per-file state (cached-data
  // flags, versions, open counts the server was told about) dies with the
  // machine. The buffer cache is dropped separately by the machine.
  void Reset();

  // True when this mount instance tracks the file (used by the machine's
  // callback dispatcher when several mounts come from the same server).
  bool Owns(const proto::FileHandle& fh) const {
    auto it = nodes_.find(fh.fileid);
    return it != nodes_.end() && it->second->fh == fh;
  }

  // Service a callback RPC from the server (the testbed routes CallbackReq
  // with our fsid here). Must not issue close RPCs inline — see §3.2's
  // deadlock discussion — so relinquish work is deferred.
  sim::Task<proto::Reply> HandleCallback(proto::CallbackReq req);

  // --- vfs::FileSystem ------------------------------------------------------
  sim::Task<base::Result<vfs::GnodeRef>> Root() override;
  sim::Task<base::Result<vfs::GnodeRef>> Lookup(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<vfs::GnodeRef>> Create(vfs::GnodeRef dir, std::string name,
                                                bool exclusive) override;
  sim::Task<base::Result<vfs::GnodeRef>> Mkdir(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<void>> Open(vfs::GnodeRef node, bool write) override;
  sim::Task<base::Result<void>> Close(vfs::GnodeRef node, bool write) override;
  sim::Task<base::Result<std::vector<uint8_t>>> Read(vfs::GnodeRef node, uint64_t offset,
                                                     uint32_t count) override;
  sim::Task<base::Result<void>> Write(vfs::GnodeRef node, uint64_t offset,
                                      std::vector<uint8_t> data) override;
  sim::Task<base::Result<proto::Attr>> GetAttr(vfs::GnodeRef node) override;
  sim::Task<base::Result<void>> Truncate(vfs::GnodeRef node, uint64_t size) override;
  sim::Task<base::Result<void>> Remove(vfs::GnodeRef dir, std::string name,
                                       vfs::GnodeRef target) override;
  sim::Task<base::Result<void>> Rmdir(vfs::GnodeRef dir, std::string name) override;
  sim::Task<base::Result<void>> Rename(vfs::GnodeRef from_dir, std::string from_name,
                                       vfs::GnodeRef to_dir, std::string to_name) override;
  sim::Task<base::Result<std::vector<proto::DirEntry>>> ReadDir(vfs::GnodeRef dir) override;
  sim::Task<base::Result<void>> Fsync(vfs::GnodeRef node) override;

  int mount_id() const { return mount_id_; }
  uint32_t fsid() const { return root_fh_.fsid; }
  uint64_t callbacks_served() const { return callbacks_served_; }
  uint64_t delayed_close_hits() const { return delayed_close_hits_; }
  uint64_t recoveries_run() const { return recoveries_run_; }
  uint64_t inconsistent_opens() const { return inconsistent_opens_; }

 private:
  struct SnfsNode : vfs::Gnode {
    bool cache_enabled = true;
    bool have_cached_data = false;   // any blocks might be in the cache
    uint64_t cached_version = 0;     // version the cached blocks correspond to
    // What the server believes about our opens (differs from open_reads /
    // open_writes when delayed-close is holding closes back).
    uint32_t server_reads = 0;
    uint32_t server_writes = 0;
    sim::Time last_close = 0;
    bool possibly_inconsistent = false;
  };
  using NodeRef = std::shared_ptr<SnfsNode>;

  static NodeRef AsNode(const vfs::GnodeRef& node);
  NodeRef Intern(const proto::FileHandle& fh, const proto::Attr& attr);
  sim::Task<base::Result<void>> SendOpen(NodeRef node, bool write);
  sim::Task<void> SendClose(NodeRef node, bool write);
  sim::Task<void> FlushOwedCloses(NodeRef node);
  sim::Task<void> DelayedCloseDaemon(uint64_t generation);
  sim::Task<void> KeepaliveDaemon(uint64_t generation);
  sim::Task<void> RunRecovery();

  uint32_t OwedReads(const SnfsNode& node) const {
    return node.server_reads - node.open_reads;
  }
  uint32_t OwedWrites(const SnfsNode& node) const {
    return node.server_writes - node.open_writes;
  }

  sim::Simulator& simulator_;
  rpc::Peer& peer_;
  net::Address server_;
  proto::FileHandle root_fh_;
  cache::BufferCache& cache_;
  SnfsClientParams params_;
  int mount_id_;
  bool running_ = false;
  // Bumped on every Start: daemons from a previous incarnation observe the
  // change and exit instead of running alongside their replacements.
  uint64_t daemon_generation_ = 0;
  uint64_t last_seen_epoch_ = 0;
  std::unordered_map<uint64_t, NodeRef> nodes_;
  uint64_t callbacks_served_ = 0;
  uint64_t delayed_close_hits_ = 0;
  uint64_t recoveries_run_ = 0;
  uint64_t inconsistent_opens_ = 0;
};

}  // namespace snfs

#endif  // SRC_SNFS_CLIENT_H_
