#include "src/snfs/server.h"

#include <string>

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace snfs {
namespace {

template <typename T>
proto::Reply FromResult(base::Result<T> result) {
  if (!result.ok()) {
    return proto::ErrorReply(result.status());
  }
  return proto::OkReply(std::move(*result));
}

proto::Reply FromStatus(base::Result<void> result) {
  if (!result.ok()) {
    return proto::ErrorReply(result.status());
  }
  return proto::OkReply(proto::NullRep{});
}

}  // namespace

SnfsServer::SnfsServer(sim::Simulator& simulator, fs::LocalFs& fs, rpc::Peer& peer,
                       SnfsServerParams params)
    : simulator_(simulator),
      fs_(fs),
      peer_(peer),
      params_(params),
      table_(StateTableParams{params.max_state_entries}),
      callback_budget_(simulator, params.callback_budget) {
  peer_.set_handler([this](const proto::Request& request, net::Address from) {
    return Handle(request, from);
  });
}

void SnfsServer::Crash() {
  table_.Clear();
  file_locks_.clear();
}

void SnfsServer::Restart() {
  ++epoch_;
  if (params_.enable_recovery) {
    recovery_until_ = simulator_.Now() + params_.recovery_grace;
  }
}

sim::Mutex& SnfsServer::FileLock(const proto::FileHandle& fh) {
  auto it = file_locks_.find(fh.fileid);
  if (it == file_locks_.end()) {
    it = file_locks_.emplace(fh.fileid, std::make_unique<sim::Mutex>(simulator_)).first;
  }
  return *it->second;
}

sim::Task<void> SnfsServer::IssueCallback(proto::FileHandle fh,
                                          CallbackAction action) {
  if (action.host < 0) {
    co_return;
  }
  ++callbacks_issued_;
  co_await callback_budget_.Acquire();
  uint64_t in_progress_key = (fh.fileid << 16) ^ static_cast<uint64_t>(action.host);
  callbacks_in_progress_.insert(in_progress_key);
  trace::Span cb_span;
  if (trace::Active() != nullptr) {
    cb_span.Begin("snfs.callback", peer_.address().host,
                  "file=" + std::to_string(fh.fileid) + " host=" + std::to_string(action.host) +
                      " wb=" + (action.writeback ? "1" : "0") +
                      " inv=" + (action.invalidate ? "1" : "0") +
                      " rel=" + (action.relinquish ? "1" : "0"));
  }
  proto::CallbackReq req;
  req.fh = fh;
  req.writeback = action.writeback;
  req.invalidate = action.invalidate;
  req.relinquish = action.relinquish;
  auto reply = co_await peer_.Call(net::Address{action.host}, req, params_.callback_call);
  cb_span.End(std::string("ok=") + (reply.ok() && reply->status.ok() ? "1" : "0"));
  callbacks_in_progress_.erase(in_progress_key);
  callback_budget_.Release();
  if (!reply.ok() || !reply->status.ok()) {
    // "If the client 'serving' the callback is down, the SNFS server can
    // honor the new open operation, but it should inform the new client
    // that the file may be in an inconsistent state."
    ++callbacks_failed_;
    LOG_INFO("snfs", "callback to host %d failed (%s); marking file %llu inconsistent",
             action.host, reply.ok() ? "error reply" : "timeout",
             static_cast<unsigned long long>(fh.fileid));
    table_.MarkInconsistent(fh, action.host);
  } else if (action.writeback) {
    table_.MarkFlushed(fh);
  }
}

sim::Task<proto::Reply> SnfsServer::HandleOpen(proto::OpenReq req, net::Address from) {
  if (in_recovery()) {
    co_return proto::ErrorReply(base::ErrUnavailable());
  }
  auto attr = fs_.GetAttr(req.fh);
  if (!attr.ok()) {
    co_return proto::ErrorReply(attr.status());
  }
  sim::Mutex& lock = FileLock(req.fh);
  co_await lock.Acquire();

  uint64_t seed_version;
  if (params_.version_mode == VersionMode::kStable) {
    auto stable_version = fs_.Version(req.fh);
    if (!stable_version.ok()) {
      lock.Release();
      co_return proto::ErrorReply(stable_version.status());
    }
    seed_version = *stable_version;
  } else {
    // Paper prototype: a file first seen (or seen again after its entry was
    // reclaimed) gets a fresh number from the global counter, which will
    // not match any client's cached version.
    seed_version = table_.Lookup(req.fh) != nullptr ? 0 : ++global_version_counter_;
  }
  OpenResult outcome = table_.OnOpen(req.fh, from.host, req.write_mode, seed_version);
  if (outcome.version_bumped && params_.version_mode == VersionMode::kStable) {
    // Persist the new version with the file (Sprite keeps it on stable
    // storage; §4.3.3 explains why the global-counter shortcut is unsound).
    auto bumped = fs_.BumpVersion(req.fh);
    CHECK(bumped.ok() && *bumped == outcome.version);
  }
  for (const CallbackAction& action : outcome.callbacks) {
    co_await IssueCallback(req.fh, action);
  }
  // Refresh attrs: callbacks may have written data back to us.
  attr = fs_.GetAttr(req.fh);
  const StateTable::Entry* entry = table_.Lookup(req.fh);
  bool inconsistent = entry != nullptr && entry->inconsistent;
  lock.Release();

  if (!attr.ok()) {
    co_return proto::ErrorReply(attr.status());
  }

  if (table_.over_limit() && !reclaim_scheduled_) {
    reclaim_scheduled_ = true;
    simulator_.Spawn(ReclaimEntries());
  }

  TRACE_INSTANT("snfs.version_grant", peer_.address().host,
                "file=" + std::to_string(req.fh.fileid) +
                    " version=" + std::to_string(outcome.version) +
                    " prev=" + std::to_string(outcome.prev_version) +
                    " host=" + std::to_string(from.host) +
                    " cache=" + (outcome.cache_enabled ? "1" : "0") +
                    " write=" + (req.write_mode ? "1" : "0"));

  proto::OpenRep rep;
  rep.cache_enabled = outcome.cache_enabled;
  rep.version = outcome.version;
  rep.prev_version = outcome.prev_version;
  rep.attr = *attr;
  rep.possibly_inconsistent = inconsistent;
  co_return proto::OkReply(rep);
}

sim::Task<proto::Reply> SnfsServer::HandleClose(proto::CloseReq req, net::Address from) {
  sim::ScopedLock lock(FileLock(req.fh));
  co_await lock;
  CloseResult result = table_.OnClose(req.fh, from.host, req.write_mode, req.has_dirty);
  (void)result;
  co_return proto::OkReply(proto::CloseRep{});
}

sim::Task<proto::Reply> SnfsServer::HandleReopen(proto::ReopenReq req, net::Address from) {
  auto stable_version = fs_.Version(req.fh);
  if (!stable_version.ok()) {
    co_return proto::ErrorReply(stable_version.status());
  }
  sim::ScopedLock lock(FileLock(req.fh));
  co_await lock;
  OpenResult outcome = table_.ApplyReopen(req.fh, from.host, req.read_count, req.write_count,
                                          req.has_dirty, req.cached_version, *stable_version);
  proto::ReopenRep rep;
  rep.cache_enabled = outcome.cache_enabled;
  rep.version = outcome.version;
  co_return proto::OkReply(rep);
}

sim::Task<void> SnfsServer::ReclaimEntries() {
  reclaim_scheduled_ = false;
  std::vector<StateTable::ReclaimPlan> plans = table_.PlanReclaim();
  for (const StateTable::ReclaimPlan& plan : plans) {
    ++reclaims_;
    TRACE_INSTANT("snfs.reclaim", peer_.address().host,
                  "file=" + std::to_string(plan.fh.fileid));
    sim::ScopedLock lock(FileLock(plan.fh));
    co_await lock;
    co_await IssueCallback(plan.fh, plan.callback);
    const StateTable::Entry* entry = table_.Lookup(plan.fh);
    if (entry != nullptr && entry->state == FileState::kClosed) {
      table_.Forget(plan.fh);
    }
  }
}

sim::Task<proto::Reply> SnfsServer::HandleData(proto::Request request, net::Address from) {
  switch (proto::KindOf(request)) {
    case proto::OpKind::kNull:
      co_return proto::OkReply(proto::NullRep{});
    case proto::OpKind::kGetAttr: {
      const auto& req = std::get<proto::GetAttrReq>(request);
      auto attr = fs_.GetAttr(req.fh);
      if (!attr.ok()) {
        co_return proto::ErrorReply(attr.status());
      }
      co_return proto::OkReply(proto::AttrRep{*attr});
    }
    case proto::OpKind::kSetAttr: {
      const auto& req = std::get<proto::SetAttrReq>(request);
      auto attr = co_await fs_.SetAttr(req.fh, req);
      if (!attr.ok()) {
        co_return proto::ErrorReply(attr.status());
      }
      co_return proto::OkReply(proto::AttrRep{*attr});
    }
    case proto::OpKind::kLookup: {
      const auto& req = std::get<proto::LookupReq>(request);
      co_return FromResult(co_await fs_.Lookup(req.dir, req.name));
    }
    case proto::OpKind::kRead: {
      const auto& req = std::get<proto::ReadReq>(request);
      co_return FromResult(co_await fs_.Read(req.fh, req.offset, req.count));
    }
    case proto::OpKind::kWrite: {
      const auto& req = std::get<proto::WriteReq>(request);
      // Client write-backs are synchronous with the disk at the server
      // ("writes are always synchronous with the disk at the server").
      auto attr = co_await fs_.Write(req.fh, req.offset, req.data, fs::LocalFs::WriteMode::kSync);
      if (!attr.ok()) {
        co_return proto::ErrorReply(attr.status());
      }
      co_return proto::OkReply(proto::AttrRep{*attr});
    }
    case proto::OpKind::kCreate: {
      const auto& req = std::get<proto::CreateReq>(request);
      co_return FromResult(co_await fs_.Create(req.dir, req.name, req.exclusive));
    }
    case proto::OpKind::kRemove: {
      const auto& req = std::get<proto::RemoveReq>(request);
      // Forget consistency state for the victim so stale write-backs from
      // its last writer are rejected with ESTALE rather than resurrecting
      // the file.
      auto looked = co_await fs_.Lookup(req.dir, req.name);
      if (looked.ok()) {
        table_.Forget(looked->fh);
      }
      co_return FromStatus(co_await fs_.Remove(req.dir, req.name));
    }
    case proto::OpKind::kRename: {
      const auto& req = std::get<proto::RenameReq>(request);
      co_return FromStatus(
          co_await fs_.Rename(req.from_dir, req.from_name, req.to_dir, req.to_name));
    }
    case proto::OpKind::kMkdir: {
      const auto& req = std::get<proto::MkdirReq>(request);
      co_return FromResult(co_await fs_.Mkdir(req.dir, req.name));
    }
    case proto::OpKind::kRmdir: {
      const auto& req = std::get<proto::RmdirReq>(request);
      co_return FromStatus(co_await fs_.Rmdir(req.dir, req.name));
    }
    case proto::OpKind::kReadDir: {
      const auto& req = std::get<proto::ReadDirReq>(request);
      co_return FromResult(co_await fs_.ReadDir(req.dir, req.cookie, req.count));
    }
    default:
      co_return proto::ErrorReply(base::ErrNotSupported());
  }
}

sim::Task<proto::Reply> SnfsServer::Handle(proto::Request request, net::Address from) {
  switch (proto::KindOf(request)) {
    case proto::OpKind::kOpen:
      co_return co_await HandleOpen(std::get<proto::OpenReq>(request), from);
    case proto::OpKind::kClose:
      co_return co_await HandleClose(std::get<proto::CloseReq>(request), from);
    case proto::OpKind::kReopen:
      co_return co_await HandleReopen(std::get<proto::ReopenReq>(request), from);
    case proto::OpKind::kPing: {
      proto::PingRep rep;
      rep.responder_epoch = epoch_;
      rep.in_recovery = in_recovery();
      co_return proto::OkReply(rep);
    }
    default:
      co_return co_await HandleData(request, from);
  }
}

}  // namespace snfs
