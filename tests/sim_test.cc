// Tests for the discrete-event simulation kernel: event ordering, coroutine
// tasks, sleeps, futures, and sync primitives.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/log.h"
#include "src/sim/cpu.h"
#include "src/sim/future.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(Msec(30), [&] { order.push_back(3); });
  s.Schedule(Msec(10), [&] { order.push_back(1); });
  s.Schedule(Msec(20), [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), Msec(30));
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.Schedule(Msec(5), [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, NestedSchedulingAdvancesClock) {
  Simulator s;
  Time inner_time = -1;
  s.Schedule(Sec(1), [&] { s.Schedule(Sec(2), [&] { inner_time = s.Now(); }); });
  s.Run();
  EXPECT_EQ(inner_time, Sec(3));
}

TEST(SimulatorTest, RunUntilRunsEventExactlyAtDeadline) {
  Simulator s;
  int fired = 0;
  s.Schedule(Sec(2), [&] { ++fired; });
  s.RunUntil(Sec(2));
  EXPECT_EQ(fired, 1);  // "events at exactly `deadline` still run"
  EXPECT_EQ(s.Now(), Sec(2));
}

TEST(SimulatorTest, RunUntilAdvancesThroughBackgroundOnlyEvents) {
  Simulator s;
  int fired = 0;
  // Only background events pending: Run() would return immediately, but
  // RunUntil must still process everything up to its deadline.
  s.Schedule(Msec(10), [&] { ++fired; }, /*background=*/true);
  s.Schedule(Sec(5), [&] { ++fired; }, /*background=*/true);
  Time end = s.RunUntil(Sec(1));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(end, Sec(1));
  EXPECT_EQ(s.background_pending(), 1u);
  EXPECT_EQ(s.foreground_pending(), 0u);
}

TEST(SimulatorTest, RunReturnsWhenOnlyBackgroundEventsRemain) {
  Simulator s;
  int foreground = 0;
  int background = 0;
  s.Schedule(Msec(1), [&] { ++foreground; });
  s.Schedule(Msec(2), [&] { ++background; }, /*background=*/true);
  s.Run();
  EXPECT_EQ(foreground, 1);
  EXPECT_EQ(background, 0);
  EXPECT_EQ(s.Now(), Msec(1));
  EXPECT_EQ(s.background_pending(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.Schedule(Sec(1), [&] { ++fired; });
  s.Schedule(Sec(5), [&] { ++fired; });
  s.RunUntil(Sec(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), Sec(2));
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(TaskTest, SpawnedTaskRunsAndSleeps) {
  Simulator s;
  Time woke = -1;
  s.Spawn([](Simulator& sim, Time& woke) -> Task<void> {
    co_await Sleep(sim, Msec(250));
    woke = sim.Now();
  }(s, woke));
  s.Run();
  EXPECT_EQ(woke, Msec(250));
}

Task<int> AddAfter(Simulator& s, int a, int b, Duration d) {
  co_await Sleep(s, d);
  co_return a + b;
}

TEST(TaskTest, AwaitedChildReturnsValue) {
  Simulator s;
  int result = 0;
  s.Spawn([](Simulator& sim, int& result) -> Task<void> {
    result = co_await AddAfter(sim, 2, 3, Msec(10));
    result += co_await AddAfter(sim, 10, 20, Msec(10));
  }(s, result));
  s.Run();
  EXPECT_EQ(result, 35);
  EXPECT_EQ(s.Now(), Msec(20));
}

Task<int> DeepChain(Simulator& s, int depth) {
  if (depth == 0) {
    co_await Sleep(s, Usec(1));
    co_return 0;
  }
  int below = co_await DeepChain(s, depth - 1);
  co_return below + 1;
}

TEST(TaskTest, DeepAwaitChainsDoNotOverflow) {
  Simulator s;
  int result = -1;
  s.Spawn([](Simulator& sim, int& result) -> Task<void> {
    result = co_await DeepChain(sim, 5000);
  }(s, result));
  s.Run();
  EXPECT_EQ(result, 5000);
}

TEST(FutureTest, AwaitAlreadySetFutureIsImmediate) {
  Simulator s;
  Promise<int> p(s);
  p.Set(42);
  int got = 0;
  s.Spawn([](Promise<int> p, int& got) -> Task<void> {
    got = co_await p.GetFuture();
  }(p, got));
  s.Run();
  EXPECT_EQ(got, 42);
}

TEST(FutureTest, MultipleWaitersAllResume) {
  Simulator s;
  Promise<std::string> p(s);
  std::vector<std::string> got;
  for (int i = 0; i < 3; ++i) {
    s.Spawn([](Promise<std::string> p, std::vector<std::string>& got) -> Task<void> {
      got.push_back(co_await p.GetFuture());
    }(p, got));
  }
  s.Schedule(Sec(1), [&] { p.Set("done"); });
  s.Run();
  ASSERT_EQ(got.size(), 3u);
  for (const auto& v : got) {
    EXPECT_EQ(v, "done");
  }
}

TEST(FutureTest, TrySetIsIdempotent) {
  Simulator s;
  Promise<int> p(s);
  EXPECT_TRUE(p.TrySet(1));
  EXPECT_FALSE(p.TrySet(2));
  int got = 0;
  s.Spawn([](Promise<int> p, int& got) -> Task<void> { got = co_await p.GetFuture(); }(p, got));
  s.Run();
  EXPECT_EQ(got, 1);
}

TEST(MutexTest, MutualExclusionAndFifo) {
  Simulator s;
  Mutex m(s);
  std::vector<int> order;
  int in_critical = 0;
  for (int i = 0; i < 4; ++i) {
    s.Spawn([](Simulator& sim, Mutex& m, std::vector<int>& order, int& in_critical,
               int id) -> Task<void> {
      co_await m.Acquire();
      ++in_critical;
      EXPECT_EQ(in_critical, 1);
      co_await Sleep(sim, Msec(10));
      order.push_back(id);
      --in_critical;
      m.Release();
    }(s, m, order, in_critical, i));
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.Now(), Msec(40));
  EXPECT_FALSE(m.locked());
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator s;
  Semaphore sem(s, 2);
  int running = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    s.Spawn([](Simulator& sim, Semaphore& sem, int& running, int& peak) -> Task<void> {
      co_await sem.Acquire();
      ++running;
      peak = std::max(peak, running);
      co_await Sleep(sim, Msec(10));
      --running;
      sem.Release();
    }(s, sem, running, peak));
  }
  s.Run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(s.Now(), Msec(30));
}

TEST(WaitGroupTest, WaitsForAll) {
  Simulator s;
  WaitGroup wg(s);
  Time done_at = -1;
  for (int i = 1; i <= 3; ++i) {
    wg.Add();
    s.Spawn([](Simulator& sim, WaitGroup& wg, int i) -> Task<void> {
      co_await Sleep(sim, Sec(i));
      wg.Done();
    }(s, wg, i));
  }
  s.Spawn([](Simulator& sim, WaitGroup& wg, Time& done_at) -> Task<void> {
    co_await wg.Wait();
    done_at = sim.Now();
  }(s, wg, done_at));
  s.Run();
  EXPECT_EQ(done_at, Sec(3));
}

TEST(ChannelTest, SendRecvAcrossTasks) {
  Simulator s;
  Channel<int> ch(s);
  std::vector<int> got;
  s.Spawn([](Channel<int>& ch, std::vector<int>& got) -> Task<void> {
    while (true) {
      std::optional<int> v = co_await ch.Recv();
      if (!v.has_value()) {
        break;
      }
      got.push_back(*v);
    }
  }(ch, got));
  s.Spawn([](Simulator& sim, Channel<int>& ch) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      ch.Send(i);
      co_await Sleep(sim, Msec(1));
    }
    ch.Close();
  }(s, ch));
  s.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, CloseWakesBlockedReceivers) {
  Simulator s;
  Channel<int> ch(s);
  bool got_nullopt = false;
  s.Spawn([](Channel<int>& ch, bool& got_nullopt) -> Task<void> {
    std::optional<int> v = co_await ch.Recv();
    got_nullopt = !v.has_value();
  }(ch, got_nullopt));
  s.Schedule(Sec(1), [&] { ch.Close(); });
  s.Run();
  EXPECT_TRUE(got_nullopt);
}

TEST(CpuTest, SerializesWorkAndAccountsBusyTime) {
  Simulator s;
  Cpu cpu(s);
  for (int i = 0; i < 3; ++i) {
    s.Spawn([](Cpu& cpu) -> Task<void> { co_await cpu.Run(Msec(100)); }(cpu));
  }
  s.Run();
  EXPECT_EQ(s.Now(), Msec(300));
  EXPECT_EQ(cpu.busy_time(), Msec(300));
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- log-now-hook lifecycle across simulator lifetimes ----------------------

TEST(SimulatorTest, LogNowHookTracksNestedLifetimes) {
  ASSERT_EQ(base::GetLogNowHook(), nullptr);
  {
    Simulator outer;
    outer.Schedule(Sec(1), [] {});
    outer.Run();
    ASSERT_NE(base::GetLogNowHook(), nullptr);
    EXPECT_EQ(base::GetLogNowHook()(), Sec(1));
    {
      Simulator inner;
      inner.Schedule(Msec(5), [] {});
      inner.Run();
      EXPECT_EQ(base::GetLogNowHook()(), Msec(5));
    }
    // The inner simulator died; log timestamps fall back to the outer one
    // instead of reading freed memory.
    ASSERT_NE(base::GetLogNowHook(), nullptr);
    EXPECT_EQ(base::GetLogNowHook()(), Sec(1));
  }
  EXPECT_EQ(base::GetLogNowHook(), nullptr);
}

TEST(SimulatorTest, LogNowHookSurvivesOutOfOrderDestruction) {
  auto older = std::make_unique<Simulator>();
  auto newer = std::make_unique<Simulator>();
  older->Schedule(Sec(2), [] {});
  older->Run();
  newer->Schedule(Sec(7), [] {});
  newer->Run();
  // Destroying the older simulator first must not disturb the hook, which
  // points at the newer (current) one.
  older.reset();
  ASSERT_NE(base::GetLogNowHook(), nullptr);
  EXPECT_EQ(base::GetLogNowHook()(), Sec(7));
  newer.reset();
  EXPECT_EQ(base::GetLogNowHook(), nullptr);
}

// --- execution-order contract ------------------------------------------------

// A load whose delays scatter events across all three queue lanes: zero
// (now lane), sub-span (timing wheel), the exact wheel-span boundary, and
// multi-second (far heap).
std::vector<std::pair<Time, uint64_t>> RunScatterLoad(uint64_t seed) {
  Simulator s;
  std::vector<std::pair<Time, uint64_t>> steps;
  s.set_step_observer([&steps](Time at, uint64_t seq) { steps.emplace_back(at, seq); });
  Rng rng(seed);
  int remaining = 4000;
  std::function<void()> hop = [&] {
    if (remaining == 0) {
      return;
    }
    --remaining;
    static constexpr Duration kDelays[] = {0,    Usec(1),        Usec(137), Msec(4),
                                           8191, 8192 /* span */, Sec(3)};
    s.Schedule(kDelays[rng.UniformInt(0, 6)], hop);
  };
  for (int i = 0; i < 8; ++i) {
    s.Schedule(Usec(i), hop);
  }
  s.Run();
  return steps;
}

// The executed (at, seq) stream is the simulator's definition of execution
// order: time-ordered, and FIFO in scheduling order at equal times. Because
// seq is assigned monotonically at schedule time, both together mean the
// stream must be lexicographically sorted — regardless of which lane each
// event traveled through.
TEST(SimulatorTest, ExecutionOrderIsLexicographicallySorted) {
  auto steps = RunScatterLoad(12345);
  ASSERT_GT(steps.size(), 4000u);
  for (size_t i = 1; i < steps.size(); ++i) {
    bool sorted = steps[i - 1].first < steps[i].first ||
                  (steps[i - 1].first == steps[i].first && steps[i - 1].second < steps[i].second);
    ASSERT_TRUE(sorted) << "step " << i << ": (" << steps[i - 1].first << ","
                        << steps[i - 1].second << ") then (" << steps[i].first << ","
                        << steps[i].second << ")";
  }
}

TEST(SimulatorTest, ExecutionOrderIsDeterministicAcrossRuns) {
  auto a = RunScatterLoad(777);
  auto b = RunScatterLoad(777);
  EXPECT_EQ(a, b);
  auto c = RunScatterLoad(778);
  EXPECT_NE(a, c);
}

// --- event-budget overflow diagnostics --------------------------------------

void RunawayLoop() {
  Simulator s;
  s.set_max_events(3);
  std::function<void()> loop;
  loop = [&] { s.Schedule(Usec(1), loop); };
  s.Schedule(Usec(1), loop);
  s.Schedule(Sec(1), [] {}, /*background=*/true);
  s.Run();
}

TEST(SimulatorDeathTest, EventBudgetOverflowReportsDiagnostics) {
  // The third pop of the self-rescheduling loop trips the budget at t=3us;
  // the report must carry the virtual time, the offending event's identity,
  // and the pending-event counts (the background timer is still queued).
  EXPECT_DEATH(RunawayLoop(), "event budget exhausted after 3 events");
  EXPECT_DEATH(RunawayLoop(), "virtual time: 3 us");
  EXPECT_DEATH(RunawayLoop(), "offending event: at=3 us seq=3 foreground");
  EXPECT_DEATH(RunawayLoop(), "pending: 0 foreground \\+ 1 background");
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng a(99);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace sim
