// Tests for the discrete-event simulation kernel: event ordering, coroutine
// tasks, sleeps, futures, and sync primitives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/future.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(Msec(30), [&] { order.push_back(3); });
  s.Schedule(Msec(10), [&] { order.push_back(1); });
  s.Schedule(Msec(20), [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), Msec(30));
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.Schedule(Msec(5), [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, NestedSchedulingAdvancesClock) {
  Simulator s;
  Time inner_time = -1;
  s.Schedule(Sec(1), [&] { s.Schedule(Sec(2), [&] { inner_time = s.Now(); }); });
  s.Run();
  EXPECT_EQ(inner_time, Sec(3));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.Schedule(Sec(1), [&] { ++fired; });
  s.Schedule(Sec(5), [&] { ++fired; });
  s.RunUntil(Sec(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), Sec(2));
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(TaskTest, SpawnedTaskRunsAndSleeps) {
  Simulator s;
  Time woke = -1;
  s.Spawn([](Simulator& sim, Time& woke) -> Task<void> {
    co_await Sleep(sim, Msec(250));
    woke = sim.Now();
  }(s, woke));
  s.Run();
  EXPECT_EQ(woke, Msec(250));
}

Task<int> AddAfter(Simulator& s, int a, int b, Duration d) {
  co_await Sleep(s, d);
  co_return a + b;
}

TEST(TaskTest, AwaitedChildReturnsValue) {
  Simulator s;
  int result = 0;
  s.Spawn([](Simulator& sim, int& result) -> Task<void> {
    result = co_await AddAfter(sim, 2, 3, Msec(10));
    result += co_await AddAfter(sim, 10, 20, Msec(10));
  }(s, result));
  s.Run();
  EXPECT_EQ(result, 35);
  EXPECT_EQ(s.Now(), Msec(20));
}

Task<int> DeepChain(Simulator& s, int depth) {
  if (depth == 0) {
    co_await Sleep(s, Usec(1));
    co_return 0;
  }
  int below = co_await DeepChain(s, depth - 1);
  co_return below + 1;
}

TEST(TaskTest, DeepAwaitChainsDoNotOverflow) {
  Simulator s;
  int result = -1;
  s.Spawn([](Simulator& sim, int& result) -> Task<void> {
    result = co_await DeepChain(sim, 5000);
  }(s, result));
  s.Run();
  EXPECT_EQ(result, 5000);
}

TEST(FutureTest, AwaitAlreadySetFutureIsImmediate) {
  Simulator s;
  Promise<int> p(s);
  p.Set(42);
  int got = 0;
  s.Spawn([](Promise<int> p, int& got) -> Task<void> {
    got = co_await p.GetFuture();
  }(p, got));
  s.Run();
  EXPECT_EQ(got, 42);
}

TEST(FutureTest, MultipleWaitersAllResume) {
  Simulator s;
  Promise<std::string> p(s);
  std::vector<std::string> got;
  for (int i = 0; i < 3; ++i) {
    s.Spawn([](Promise<std::string> p, std::vector<std::string>& got) -> Task<void> {
      got.push_back(co_await p.GetFuture());
    }(p, got));
  }
  s.Schedule(Sec(1), [&] { p.Set("done"); });
  s.Run();
  ASSERT_EQ(got.size(), 3u);
  for (const auto& v : got) {
    EXPECT_EQ(v, "done");
  }
}

TEST(FutureTest, TrySetIsIdempotent) {
  Simulator s;
  Promise<int> p(s);
  EXPECT_TRUE(p.TrySet(1));
  EXPECT_FALSE(p.TrySet(2));
  int got = 0;
  s.Spawn([](Promise<int> p, int& got) -> Task<void> { got = co_await p.GetFuture(); }(p, got));
  s.Run();
  EXPECT_EQ(got, 1);
}

TEST(MutexTest, MutualExclusionAndFifo) {
  Simulator s;
  Mutex m(s);
  std::vector<int> order;
  int in_critical = 0;
  for (int i = 0; i < 4; ++i) {
    s.Spawn([](Simulator& sim, Mutex& m, std::vector<int>& order, int& in_critical,
               int id) -> Task<void> {
      co_await m.Acquire();
      ++in_critical;
      EXPECT_EQ(in_critical, 1);
      co_await Sleep(sim, Msec(10));
      order.push_back(id);
      --in_critical;
      m.Release();
    }(s, m, order, in_critical, i));
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s.Now(), Msec(40));
  EXPECT_FALSE(m.locked());
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator s;
  Semaphore sem(s, 2);
  int running = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    s.Spawn([](Simulator& sim, Semaphore& sem, int& running, int& peak) -> Task<void> {
      co_await sem.Acquire();
      ++running;
      peak = std::max(peak, running);
      co_await Sleep(sim, Msec(10));
      --running;
      sem.Release();
    }(s, sem, running, peak));
  }
  s.Run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(s.Now(), Msec(30));
}

TEST(WaitGroupTest, WaitsForAll) {
  Simulator s;
  WaitGroup wg(s);
  Time done_at = -1;
  for (int i = 1; i <= 3; ++i) {
    wg.Add();
    s.Spawn([](Simulator& sim, WaitGroup& wg, int i) -> Task<void> {
      co_await Sleep(sim, Sec(i));
      wg.Done();
    }(s, wg, i));
  }
  s.Spawn([](Simulator& sim, WaitGroup& wg, Time& done_at) -> Task<void> {
    co_await wg.Wait();
    done_at = sim.Now();
  }(s, wg, done_at));
  s.Run();
  EXPECT_EQ(done_at, Sec(3));
}

TEST(ChannelTest, SendRecvAcrossTasks) {
  Simulator s;
  Channel<int> ch(s);
  std::vector<int> got;
  s.Spawn([](Channel<int>& ch, std::vector<int>& got) -> Task<void> {
    while (true) {
      std::optional<int> v = co_await ch.Recv();
      if (!v.has_value()) {
        break;
      }
      got.push_back(*v);
    }
  }(ch, got));
  s.Spawn([](Simulator& sim, Channel<int>& ch) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      ch.Send(i);
      co_await Sleep(sim, Msec(1));
    }
    ch.Close();
  }(s, ch));
  s.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, CloseWakesBlockedReceivers) {
  Simulator s;
  Channel<int> ch(s);
  bool got_nullopt = false;
  s.Spawn([](Channel<int>& ch, bool& got_nullopt) -> Task<void> {
    std::optional<int> v = co_await ch.Recv();
    got_nullopt = !v.has_value();
  }(ch, got_nullopt));
  s.Schedule(Sec(1), [&] { ch.Close(); });
  s.Run();
  EXPECT_TRUE(got_nullopt);
}

TEST(CpuTest, SerializesWorkAndAccountsBusyTime) {
  Simulator s;
  Cpu cpu(s);
  for (int i = 0; i < 3; ++i) {
    s.Spawn([](Cpu& cpu) -> Task<void> { co_await cpu.Run(Msec(100)); }(cpu));
  }
  s.Run();
  EXPECT_EQ(s.Now(), Msec(300));
  EXPECT_EQ(cpu.busy_time(), Msec(300));
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng a(99);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace sim
