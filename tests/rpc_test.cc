// Tests for the RPC layer: round trips, timeouts, retransmission under
// packet loss, duplicate-request suppression, and bidirectional calls
// (the callback pattern SNFS relies on).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"

namespace rpc {
namespace {

struct Rig {
  sim::Simulator simulator;
  net::Network network;
  sim::Cpu client_cpu{simulator};
  sim::Cpu server_cpu{simulator};
  Peer client;
  Peer server;

  explicit Rig(net::NetworkParams params = {}, PeerOptions server_opts = {})
      : network(simulator, params, /*seed=*/42),
        client(simulator, network, client_cpu, "client"),
        server(simulator, network, server_cpu, "server", server_opts) {
    client.Start();
    server.Start();
  }
};

proto::Request MakeLookup(const std::string& name) {
  proto::LookupReq req;
  req.dir = proto::FileHandle{1, 1, 0};
  req.name = name;
  return req;
}

TEST(RpcTest, BasicRoundTrip) {
  Rig rig;
  rig.server.set_handler(
      [](const proto::Request& req, net::Address) -> sim::Task<proto::Reply> {
        const auto& lookup = std::get<proto::LookupReq>(req);
        proto::LookupRep rep;
        rep.fh = proto::FileHandle{1, 99, 0};
        rep.attr.fileid = 99;
        rep.attr.size = lookup.name.size();
        co_return proto::OkReply(rep);
      });

  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    auto reply = co_await rig.client.Call(rig.server.address(), MakeLookup("hello"));
    auto body = Expect<proto::LookupRep>(std::move(reply));
    EXPECT_TRUE(body.ok());
    if (!body.ok()) {
      co_return;
    }
    EXPECT_EQ(body->fh.fileid, 99u);
    EXPECT_EQ(body->attr.size, 5u);
    done = true;
  }(rig, done));
  rig.simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.client.client_ops().Get(proto::OpKind::kLookup), 1u);
  EXPECT_EQ(rig.server.server_ops().Get(proto::OpKind::kLookup), 1u);
  EXPECT_GT(rig.simulator.Now(), 0);
}

TEST(RpcTest, ErrorStatusPropagates) {
  Rig rig;
  rig.server.set_handler([](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
    co_return proto::ErrorReply(base::ErrNoEnt());
  });
  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    auto body = Expect<proto::LookupRep>(
        co_await rig.client.Call(rig.server.address(), MakeLookup("missing")));
    EXPECT_FALSE(body.ok());
    EXPECT_EQ(body.status(), base::ErrNoEnt());
    done = true;
  }(rig, done));
  rig.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(RpcTest, UnhandledPeerRejectsCalls) {
  Rig rig;  // server has no handler
  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    auto reply = co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}));
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) {
      co_return;
    }
    EXPECT_EQ(reply->status, base::ErrNotSupported());
    done = true;
  }(rig, done));
  rig.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(RpcTest, RetransmitsUnderPacketLossAndSucceeds) {
  net::NetworkParams params;
  params.loss_rate = 0.3;
  Rig rig(params);
  int executions = 0;
  rig.server.set_handler(
      // lint: coro-lambda-ok (handler and captures share the test scope)
      [&executions](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
        ++executions;
        co_return proto::OkReply(proto::NullRep{});
      });
  int ok_count = 0;
  constexpr int kCalls = 50;
  for (int i = 0; i < kCalls; ++i) {
    rig.simulator.Spawn([](Rig& rig, int& ok_count) -> sim::Task<void> {
      CallOptions opts;
      opts.timeout = sim::Msec(500);
      opts.max_attempts = 10;
      auto reply =
          co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}), opts);
      if (reply.ok() && reply->status.ok()) {
        ++ok_count;
      }
    }(rig, ok_count));
  }
  rig.simulator.Run();
  EXPECT_EQ(ok_count, kCalls);
  EXPECT_GT(rig.client.retransmissions(), 0u);
}

TEST(RpcTest, DuplicateRequestsExecuteExactlyOnce) {
  // Drop every reply-direction packet for a while by making the server slow
  // instead: with loss, a retransmit can arrive while the original is still
  // executing (dropped) or after it completed (cached reply). Either way the
  // handler must run exactly once per XID.
  net::NetworkParams params;
  params.loss_rate = 0.4;
  Rig rig(params);
  int executions = 0;
  rig.server.set_handler(
      // lint: coro-lambda-ok (handler and captures share the test scope)
      [&executions, &rig](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
        ++executions;
        co_await sim::Sleep(rig.simulator, sim::Msec(200));
        co_return proto::OkReply(proto::NullRep{});
      });
  int completed = 0;
  constexpr int kCalls = 30;
  for (int i = 0; i < kCalls; ++i) {
    rig.simulator.Spawn([](Rig& rig, int& completed) -> sim::Task<void> {
      CallOptions opts;
      opts.timeout = sim::Msec(300);
      opts.max_attempts = 20;
      auto reply =
          co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}), opts);
      if (reply.ok() && reply->status.ok()) {
        ++completed;
      }
    }(rig, completed));
  }
  rig.simulator.Run();
  EXPECT_EQ(completed, kCalls);
  // Exactly-once: the duplicate cache must have prevented re-execution.
  EXPECT_EQ(executions, kCalls);
  EXPECT_GT(rig.server.duplicates_suppressed(), 0u);
}

TEST(RpcTest, CallToDeadHostTimesOut) {
  Rig rig;
  rig.network.SetHostUp(rig.server.address(), false);
  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    CallOptions opts;
    opts.timeout = sim::Msec(100);
    opts.max_attempts = 3;
    auto reply =
        co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}), opts);
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(reply.status(), base::ErrTimedOut());
    done = true;
  }(rig, done));
  rig.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(RpcTest, ServerCanCallBackIntoClient) {
  // The SNFS callback pattern: while serving a request from A, the server
  // calls B (here: calls A itself) and awaits the result before replying.
  Rig rig;
  rig.client.set_handler([](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
    co_return proto::OkReply(proto::CallbackRep{});
  });
  rig.server.set_handler(
      // lint: coro-lambda-ok (handler and captures share the test scope)
      [&rig](const proto::Request&, net::Address from) -> sim::Task<proto::Reply> {
        proto::CallbackReq cb;
        cb.invalidate = true;
        auto result = co_await rig.server.Call(from, proto::Request(cb));
        EXPECT_TRUE(result.ok());
        co_return proto::OkReply(proto::NullRep{});
      });
  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    auto reply = co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}));
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) {
      co_return;
    }
    EXPECT_TRUE(reply->status.ok());
    done = true;
  }(rig, done));
  rig.simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.server.client_ops().Get(proto::OpKind::kCallback), 1u);
}

TEST(RpcTest, WorkerPoolBoundsConcurrency) {
  PeerOptions opts;
  opts.num_workers = 2;
  Rig rig({}, opts);
  int running = 0;
  int peak = 0;
  rig.server.set_handler(
      // lint: coro-lambda-ok (handler and captures share the test scope)
      [&](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
        ++running;
        peak = std::max(peak, running);
        co_await sim::Sleep(rig.simulator, sim::Msec(50));
        --running;
        co_return proto::OkReply(proto::NullRep{});
      });
  for (int i = 0; i < 8; ++i) {
    rig.simulator.Spawn([](Rig& rig) -> sim::Task<void> {
      (void)co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}));
    }(rig));
  }
  rig.simulator.Run();
  EXPECT_EQ(peak, 2);
}

TEST(RpcTest, WireSizeScalesWithPayload) {
  proto::WriteReq small;
  small.data.resize(100);
  proto::WriteReq big;
  big.data.resize(4096);
  EXPECT_GT(proto::WireSize(proto::Request(big)), proto::WireSize(proto::Request(small)) + 3900);
}

TEST(RpcTest, ShutdownFailsPendingCalls) {
  Rig rig;
  // lint: coro-lambda-ok (handler and captures share the test scope)
  rig.server.set_handler([&rig](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
    co_await sim::Sleep(rig.simulator, sim::Sec(100));
    co_return proto::OkReply(proto::NullRep{});
  });
  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    auto reply = co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}));
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) {
      co_return;
    }
    EXPECT_FALSE(reply->status.ok());
    done = true;
  }(rig, done));
  rig.simulator.Schedule(sim::Msec(100), [&rig] { rig.client.Shutdown(); });
  rig.simulator.RunUntil(sim::Sec(10));
  EXPECT_TRUE(done);
}

TEST(RpcTest, GhostRepliesFromDeadGenerationAreDropped) {
  // A quick shutdown+restart while a handler is mid-flight: the old
  // generation's worker finishes *after* the restart. Its reply reflects
  // pre-crash state and must be dropped, not sent — and must not be
  // recorded in the new generation's duplicate cache, where it would mask
  // the retransmitted request's re-execution.
  Rig rig;
  int executions = 0;
  rig.server.set_handler(
      // lint: coro-lambda-ok (handler and captures share the test scope)
      [&executions, &rig](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
        int n = ++executions;
        co_await sim::Sleep(rig.simulator, sim::Msec(100));
        proto::LookupRep rep;
        rep.attr.size = static_cast<uint64_t>(n);
        co_return proto::OkReply(rep);
      });

  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    CallOptions opts;
    opts.timeout = sim::Msec(80);
    opts.max_attempts = 5;
    auto body = Expect<proto::LookupRep>(
        co_await rig.client.Call(rig.server.address(), MakeLookup("f"), opts));
    EXPECT_TRUE(body.ok());
    if (body.ok()) {
      // The reply must come from the post-restart execution, not the ghost.
      EXPECT_EQ(body->attr.size, 2u);
    }
    done = true;
  }(rig, done));
  // The host is never marked down in the network, so the ghost reply WOULD
  // be delivered if the worker sent it.
  rig.simulator.Schedule(sim::Msec(50), [&rig] { rig.server.Shutdown(); });
  rig.simulator.Schedule(sim::Msec(60), [&rig] { rig.server.Start(); });
  rig.simulator.RunUntil(sim::Sec(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(executions, 2);
  EXPECT_EQ(rig.server.stale_replies_dropped(), 1u);
}

TEST(RpcTest, ShutdownClearsPendingCallsImmediately) {
  // Shutdown must forget in-flight calls synchronously: a reply that
  // straggles in after a restart must find no promise from the previous
  // incarnation, and repeated crash cycles must not grow the map.
  Rig rig;
  // lint: coro-lambda-ok (handler and captures share the test scope)
  rig.server.set_handler([&rig](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
    co_await sim::Sleep(rig.simulator, sim::Sec(100));
    co_return proto::OkReply(proto::NullRep{});
  });
  rig.simulator.Spawn([](Rig& rig) -> sim::Task<void> {
    (void)co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}));
  }(rig));
  rig.simulator.Schedule(sim::Msec(100), [&rig] {
    EXPECT_EQ(rig.client.pending_calls(), 1u);
    rig.client.Shutdown();
    EXPECT_EQ(rig.client.pending_calls(), 0u);
  });
  rig.simulator.RunUntil(sim::Sec(1));
}

TEST(RpcTest, RetriedCallTracesOneLogicalSpanWithAttemptChildren) {
  // A handler slower than the client's timeout: attempt 1 times out, the
  // retransmit lands while the original execution is still in progress (a
  // dup-cache hit), and the eventual reply completes the call on attempt 2.
  // The trace must show ONE logical rpc.call span with two rpc.attempt
  // children, one rpc.handle execution, and the dup-cache hit as an instant
  // attributed to the second attempt.
  Rig rig;
  trace::Recorder recorder(rig.simulator);
  trace::SetActive(&recorder);

  // lint: coro-lambda-ok (handler and captures share the test scope)
  rig.server.set_handler([&rig](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
    co_await sim::Sleep(rig.simulator, sim::Msec(200));
    co_return proto::OkReply(proto::NullRep{});
  });

  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    CallOptions opts;
    opts.timeout = sim::Msec(150);
    opts.max_attempts = 3;
    auto reply =
        co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}), opts);
    EXPECT_TRUE(reply.ok());
    done = true;
  }(rig, done));
  rig.simulator.Run();
  trace::SetActive(nullptr);
  EXPECT_TRUE(done);

  uint64_t call_span = 0;
  std::string call_end_args;
  std::vector<uint64_t> attempt_spans;
  std::vector<uint64_t> attempt_parents;
  uint64_t handle_begins = 0;
  uint64_t dup_hit_span = 0;
  std::string dup_hit_args;
  uint64_t retransmits = 0;
  for (const trace::Event& e : recorder.events()) {
    if (e.kind == trace::EventKind::kSpanBegin && e.name == "rpc.call") {
      EXPECT_EQ(call_span, 0u) << "more than one logical rpc.call span";
      call_span = e.span;
    } else if (e.kind == trace::EventKind::kSpanEnd && e.span == call_span && call_span != 0) {
      call_end_args = e.args;
    } else if (e.kind == trace::EventKind::kSpanBegin && e.name == "rpc.attempt") {
      attempt_spans.push_back(e.span);
      attempt_parents.push_back(e.parent);
    } else if (e.kind == trace::EventKind::kSpanBegin && e.name == "rpc.handle") {
      ++handle_begins;
    } else if (e.name == "rpc.dup_hit") {
      dup_hit_span = e.span;
      dup_hit_args = e.args;
    } else if (e.name == "rpc.retransmit") {
      ++retransmits;
    }
  }
  ASSERT_NE(call_span, 0u);
  EXPECT_EQ(trace::ArgValue(call_end_args, "status"), "done");
  EXPECT_EQ(trace::ArgValue(call_end_args, "attempts"), "2");
  ASSERT_EQ(attempt_spans.size(), 2u);
  EXPECT_EQ(attempt_parents[0], call_span);
  EXPECT_EQ(attempt_parents[1], call_span);
  EXPECT_EQ(retransmits, 1u);
  // The handler ran once; the retransmit was absorbed by the dup cache while
  // the original was still executing, attributed to the retransmit's attempt.
  EXPECT_EQ(handle_begins, 1u);
  EXPECT_EQ(dup_hit_span, attempt_spans[1]);
  EXPECT_EQ(trace::ArgValue(dup_hit_args, "done"), "0");
}

TEST(RpcTest, DupCacheEvictionIsBoundedWithInProgressEntries) {
  // Six workers park forever on their first requests; a stream of quick
  // calls then flows through a 4-entry duplicate cache. Eviction must skip
  // the in-progress entries in place: the cache may exceed its capacity
  // only by the number of in-progress entries, no matter how the parked
  // entries interleave with completed ones in FIFO order.
  PeerOptions server_opts;
  server_opts.num_workers = 8;  // 6 get parked; 2 stay free for quick calls
  server_opts.dup_cache_entries = 4;
  Rig rig({}, server_opts);
  rig.server.set_handler(
      // lint: coro-lambda-ok (handler and captures share the test scope)
      [&rig](const proto::Request& req, net::Address) -> sim::Task<proto::Reply> {
        if (std::holds_alternative<proto::NullReq>(req)) {
          co_await sim::Sleep(rig.simulator, sim::Sec(5000));  // park
        }
        co_return proto::OkReply(proto::NullRep{});
      });

  bool done = false;
  rig.simulator.Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    CallOptions park_opts;
    park_opts.timeout = sim::Sec(30);
    park_opts.max_attempts = 1;
    for (int i = 0; i < 6; ++i) {
      // Fire-and-forget: these occupy all six workers.
      rig.simulator.Spawn([](Rig& rig, CallOptions opts) -> sim::Task<void> {
        (void)co_await rig.client.Call(rig.server.address(), proto::Request(proto::NullReq{}),
                                       opts);
      }(rig, park_opts));
    }
    co_await sim::Sleep(rig.simulator, sim::Msec(50));
    for (int i = 0; i < 20; ++i) {
      auto reply = co_await rig.client.Call(rig.server.address(), MakeLookup("q"));
      EXPECT_TRUE(reply.ok());
      size_t size = rig.server.dup_cache_size();
      size_t in_progress = rig.server.dup_cache_in_progress();
      EXPECT_LE(size, 4u + in_progress)
          << "dup cache over bound after call " << i << ": " << size << " entries, "
          << in_progress << " in progress";
    }
    done = true;
  }(rig, done));
  rig.simulator.RunUntil(sim::Sec(20));
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.server.dup_cache_in_progress(), 6u);
}

}  // namespace
}  // namespace rpc
