// Fleet tests: ShardMap routing edges, the N-server x M-client rig topology
// for all three protocols, and the fleet::MetaCache metadata tier
// (coherence through interposition, miss coalescing, bounded eviction, and
// the MetaInval administration RPC).
#include <gtest/gtest.h>

#include "src/fleet/meta_cache.h"
#include "src/fleet/shard_map.h"
#include "src/testbed/rig.h"

namespace fleet {
namespace {

using testbed::Protocol;
using testbed::Rig;
using testbed::RigOptions;

proto::FileHandle Fh(uint32_t fsid, uint64_t fileid) {
  return proto::FileHandle{fsid, fileid, 1};
}

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }
std::string Str(const std::vector<uint8_t>& v) { return {v.begin(), v.end()}; }

// --- ShardMap routing edges ------------------------------------------------

ShardMap TwoShardMap() {
  ShardMap map;
  map.AddShard(Shard{0, "/data/s0", 1, net::Address{10}, Fh(1, 1)});
  map.AddShard(Shard{1, "/data/s1", 2, net::Address{11}, Fh(2, 1)});
  return map;
}

TEST(ShardMapTest, RoutesByLongestPrefix) {
  // Nested exports: shard 0 serves the namespace root, shard 1 a subtree.
  ShardMap map;
  map.AddShard(Shard{0, "/data", 1, net::Address{10}, Fh(1, 1)});
  map.AddShard(Shard{1, "/data/hot", 2, net::Address{11}, Fh(2, 1)});

  auto cold = map.ShardForPath("/data/cold/f");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(*cold, 0);
  auto hot = map.ShardForPath("/data/hot/f");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(*hot, 1);
  // The prefix itself is routable.
  auto exact = map.ShardForPath("/data/hot");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 1);
}

TEST(ShardMapTest, PrefixMatchEndsAtComponentBoundary) {
  ShardMap map = TwoShardMap();
  // "/data/s10" shares the string prefix "/data/s1" but is a different
  // component — it must not route to shard 1.
  EXPECT_EQ(map.ShardForPath("/data/s10/f").status(), base::ErrNoEnt());
  EXPECT_EQ(map.ShardForPath("/elsewhere").status(), base::ErrNoEnt());
  auto ok = map.ShardForPath("/data/s1/f");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 1);
}

TEST(ShardMapTest, RoutesHandlesByFsid) {
  ShardMap map = TwoShardMap();
  auto s0 = map.ShardForHandle(Fh(1, 42));
  ASSERT_TRUE(s0.ok());
  EXPECT_EQ(*s0, 0);
  auto s1 = map.ShardForHandle(Fh(2, 42));
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, 1);
  // A handle from a file system this fleet does not serve is stale here.
  EXPECT_EQ(map.ShardForHandle(Fh(9, 42)).status(), base::ErrStale());
}

TEST(ShardMapTest, RoutesRequestsAndRejectsCrossShardRename) {
  ShardMap map = TwoShardMap();

  auto getattr = ShardForRequest(map, proto::Request{proto::GetAttrReq{Fh(2, 7)}});
  ASSERT_TRUE(getattr.ok());
  EXPECT_EQ(*getattr, 1);

  auto same = ShardForRequest(
      map, proto::Request{proto::RenameReq{Fh(1, 3), "a", Fh(1, 4), "b"}});
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, 0);

  EXPECT_EQ(ShardForRequest(map,
                            proto::Request{proto::RenameReq{Fh(1, 3), "a", Fh(2, 4), "b"}})
                .status(),
            base::ErrXDev());

  // Requests with no file handle are not routable.
  EXPECT_EQ(ShardForRequest(map, proto::Request{proto::NullReq{}}).status(), base::ErrInval());
}

// --- fleet rig -------------------------------------------------------------

RigOptions FleetOptions(Protocol protocol, int shards, int clients, bool cache = false) {
  RigOptions options;
  options.protocol = protocol;
  options.fleet.servers = shards;
  options.fleet.clients = clients;
  options.fleet.meta_cache = cache;
  return options;
}

TEST(FleetRigTest, NamespaceSpansShardsForAllProtocols) {
  for (Protocol protocol : {Protocol::kNfs, Protocol::kSnfs, Protocol::kNqnfs}) {
    SCOPED_TRACE(std::string(ProtocolName(protocol)));
    Rig rig(FleetOptions(protocol, 2, 2));
    bool done = false;
    rig.simulator().Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
      // Client 0 writes one file per shard; client 1 reads both back.
      EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s0/a", Bytes("alpha"))).ok());
      EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s1/b", Bytes("beta"))).ok());
      auto a = co_await rig.client(1).vfs().ReadFile("/data/s0/a");
      EXPECT_TRUE(a.ok());
      auto b = co_await rig.client(1).vfs().ReadFile("/data/s1/b");
      EXPECT_TRUE(b.ok());
      if (!a.ok() || !b.ok()) {
        co_return;
      }
      EXPECT_EQ(Str(*a), "alpha");
      EXPECT_EQ(Str(*b), "beta");
      done = true;
    }(rig, done));
    rig.simulator().Run();
    EXPECT_TRUE(done);

    // Each write landed on its owning shard, not anywhere else.
    EXPECT_GT(rig.shard(0).peer().server_ops().Get(proto::OpKind::kWrite), 0u);
    EXPECT_GT(rig.shard(1).peer().server_ops().Get(proto::OpKind::kWrite), 0u);
  }
}

TEST(FleetRigTest, CrossShardRenameSurfacesXDev) {
  Rig rig(FleetOptions(Protocol::kNfs, 2, 1));
  bool done = false;
  rig.simulator().Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s0/f", Bytes("x"))).ok());
    EXPECT_EQ((co_await rig.client(0).vfs().Rename("/data/s0/f", "/data/s1/f")).status(),
              base::ErrXDev());
    // Same-shard rename still works.
    EXPECT_TRUE((co_await rig.client(0).vfs().Rename("/data/s0/f", "/data/s0/g")).ok());
    done = true;
  }(rig, done));
  rig.simulator().Run();
  EXPECT_TRUE(done);
}

TEST(FleetRigTest, ShardCrashRecoverySmoke) {
  Rig rig(FleetOptions(Protocol::kNfs, 2, 1));
  bool done = false;
  rig.simulator().Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s1/f", Bytes("survives"))).ok());
    rig.shard(1).Crash(rig.network());
    co_await sim::Sleep(rig.simulator(), sim::Msec(500));
    rig.shard(1).Reboot(rig.network());
    // The client's RPC layer retransmits across the outage; NFS is
    // stateless, so the reboot needs no recovery protocol.
    auto got = co_await rig.client(0).vfs().ReadFile("/data/s1/f");
    EXPECT_TRUE(got.ok());
    if (!got.ok()) {
      co_return;
    }
    EXPECT_EQ(Str(*got), "survives");
    // The other shard was untouched throughout.
    EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s0/g", Bytes("up"))).ok());
    done = true;
  }(rig, done));
  rig.simulator().Run();
  EXPECT_TRUE(done);
}

// --- meta-cache tier -------------------------------------------------------

TEST(MetaCacheTest, ServesRepeatMetadataFromCache) {
  Rig rig(FleetOptions(Protocol::kNfs, 2, 2, /*cache=*/true));
  bool done = false;
  rig.simulator().Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s0/f", Bytes("v1"))).ok());
    // Both clients stat the file; client 1's probes cannot be answered by
    // any client-side state, so they must be cache-tier hits.
    EXPECT_TRUE((co_await rig.client(0).vfs().Stat("/data/s0/f")).ok());
    EXPECT_TRUE((co_await rig.client(1).vfs().Stat("/data/s0/f")).ok());
    EXPECT_TRUE((co_await rig.client(1).vfs().Stat("/data/s0/f")).ok());
    done = true;
  }(rig, done));
  rig.simulator().Run();
  EXPECT_TRUE(done);
  ASSERT_NE(rig.meta_cache(), nullptr);
  EXPECT_GT(rig.meta_cache()->hits(), 0u);
  EXPECT_GT(rig.meta_cache()->misses(), 0u);
}

TEST(MetaCacheTest, CoherentAcrossClientsAfterWriteThroughCache) {
  Rig rig(FleetOptions(Protocol::kNfs, 2, 2, /*cache=*/true));
  bool done = false;
  rig.simulator().Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s1/f", Bytes("one"))).ok());
    auto first = co_await rig.client(1).vfs().ReadFile("/data/s1/f");
    EXPECT_TRUE(first.ok());
    if (!first.ok()) {
      co_return;
    }
    EXPECT_EQ(Str(*first), "one");
    // The second write's reply passes through the cache, committing the new
    // version before client 0 sees the close; client 1's next open probe is
    // served by the cache and must reflect it (close-to-open consistency
    // preserved through the tier).
    EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s1/f", Bytes("two"))).ok());
    auto second = co_await rig.client(1).vfs().ReadFile("/data/s1/f");
    EXPECT_TRUE(second.ok());
    if (!second.ok()) {
      co_return;
    }
    EXPECT_EQ(Str(*second), "two");
    done = true;
  }(rig, done));
  rig.simulator().Run();
  EXPECT_TRUE(done);
}

TEST(MetaCacheTest, ConcurrentMissesCoalesceIntoOneFill) {
  Rig rig(FleetOptions(Protocol::kNfs, 2, 2, /*cache=*/true));
  // Two clients getattr the same cold handle at the same instant; the cache
  // must forward one fill and park the other request on it.
  proto::FileHandle target = rig.shard_data_parent(0);
  int replies = 0;
  for (int c = 0; c < 2; ++c) {
    rig.simulator().Spawn(
        [](Rig& rig, proto::FileHandle target, int c, int* replies) -> sim::Task<void> {
          auto reply = co_await rig.client(c).peer().Call(
              rig.meta_cache()->address(), proto::Request{proto::GetAttrReq{target}});
          EXPECT_TRUE(reply.ok());
          if (!reply.ok()) {
            co_return;
          }
          EXPECT_TRUE(reply->status.ok());
          ++*replies;
        }(rig, target, c, &replies));
  }
  rig.simulator().Run();
  EXPECT_EQ(replies, 2);
  EXPECT_EQ(rig.meta_cache()->misses(), 1u);
  EXPECT_EQ(rig.meta_cache()->coalesced(), 1u);
}

TEST(MetaCacheTest, MetaInvalDropsTargetedEntriesAndDropAllClears) {
  Rig rig(FleetOptions(Protocol::kNfs, 2, 1, /*cache=*/true));
  bool done = false;
  rig.simulator().Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile("/data/s0/f", Bytes("x"))).ok());
    EXPECT_TRUE((co_await rig.client(0).vfs().Stat("/data/s0/f")).ok());
    EXPECT_GT(rig.meta_cache()->attr_entries(), 0u);

    // Targeted invalidation of everything we know about, by handle.
    proto::MetaInvalReq inval;
    auto looked = co_await rig.shard_fs(0).Lookup(rig.shard_data_parent(0), "f");
    EXPECT_TRUE(looked.ok());
    if (!looked.ok()) {
      co_return;
    }
    inval.handles.push_back(looked->fh);
    inval.entries.push_back(proto::MetaInvalEntry{rig.shard_data_parent(0), "f"});
    auto reply = co_await rig.client(0).peer().Call(rig.meta_cache()->address(),
                                                    proto::Request{std::move(inval)});
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) {
      co_return;
    }
    EXPECT_TRUE(reply->status.ok());
    EXPECT_GT(rig.meta_cache()->invalidations(), 0u);

    // drop_all wipes both tables.
    proto::MetaInvalReq drop_all;
    drop_all.drop_all = true;
    auto wiped = co_await rig.client(0).peer().Call(rig.meta_cache()->address(),
                                                    proto::Request{std::move(drop_all)});
    EXPECT_TRUE(wiped.ok());
    if (!wiped.ok()) {
      co_return;
    }
    EXPECT_TRUE(wiped->status.ok());
    EXPECT_EQ(rig.meta_cache()->attr_entries(), 0u);
    EXPECT_EQ(rig.meta_cache()->lookup_entries(), 0u);

    // The namespace still works afterwards (entries refill on demand).
    auto got = co_await rig.client(0).vfs().ReadFile("/data/s0/f");
    EXPECT_TRUE(got.ok());
    if (!got.ok()) {
      co_return;
    }
    EXPECT_EQ(Str(*got), "x");
    done = true;
  }(rig, done));
  rig.simulator().Run();
  EXPECT_TRUE(done);
}

TEST(MetaCacheTest, EvictionKeepsTablesBounded) {
  RigOptions options = FleetOptions(Protocol::kNfs, 2, 1, /*cache=*/true);
  options.fleet.meta.max_entries = 2;
  Rig rig(options);
  bool done = false;
  rig.simulator().Spawn([](Rig& rig, bool& done) -> sim::Task<void> {
    for (int i = 0; i < 6; ++i) {
      std::string path = "/data/s0/f" + std::to_string(i);
      EXPECT_TRUE((co_await rig.client(0).vfs().WriteFile(path, Bytes("x"))).ok());
      EXPECT_TRUE((co_await rig.client(0).vfs().Stat(path)).ok());
    }
    done = true;
  }(rig, done));
  rig.simulator().Run();
  EXPECT_TRUE(done);
  EXPECT_GT(rig.meta_cache()->evictions(), 0u);
  EXPECT_LE(rig.meta_cache()->attr_entries(), 2u);
  EXPECT_LE(rig.meta_cache()->lookup_entries(), 2u);
}

}  // namespace
}  // namespace fleet
