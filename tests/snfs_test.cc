// End-to-end SNFS tests: delayed write-back, version-validated caching,
// callbacks on every sharing pattern, write cancellation on delete,
// non-cachable write-shared mode, delayed close, and state-table pressure.
#include <gtest/gtest.h>

#include "src/snfs/client.h"
#include "src/snfs/server.h"
#include "tests/testbed_util.h"

namespace snfs {
namespace {

using testbed::ClientMachineParams;
using testbed::ServerMachineParams;
using testbed::ServerProtocol;
using testbed::TestBytes;
using testbed::TestPattern;
using testbed::TestStr;
using testbed::World;

struct SnfsWorld : World {
  SnfsClient* fsa = nullptr;
  SnfsClient* fsb = nullptr;
  SnfsClient* fsc = nullptr;

  explicit SnfsWorld(SnfsClientParams params = {}, int num_clients = 3,
                     ServerMachineParams server_params = {})
      : World(ServerProtocol::kSnfs, num_clients, server_params) {
    fsa = &client(0).MountSnfs("/data", server->address(), server->root(), params);
    if (num_clients > 1) {
      fsb = &client(1).MountSnfs("/data", server->address(), server->root(), params);
    }
    if (num_clients > 2) {
      fsc = &client(2).MountSnfs("/data", server->address(), server->root(), params);
    }
  }

  StateTable& table() { return server->snfs_server()->state_table(); }
};

const proto::OpKind kWriteOp = proto::OpKind::kWrite;
const proto::OpKind kReadOp = proto::OpKind::kRead;

TEST(SnfsTest, WriteReadRoundTripSingleClient) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(3 * cache::kBlockSize + 99);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    auto got = co_await w.client(0).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, payload);
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, WritesAreDelayedPastClose) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await w.client(0).vfs().WriteFile("/data/f", TestPattern(6 * cache::kBlockSize)))
            .ok());
    // The whole point: close does NOT flush; no write RPCs yet.
    EXPECT_EQ(w.client(0).peer().client_ops().Get(kWriteOp), 0u);
    EXPECT_TRUE(w.client(0).buffer_cache().HasDirty(w.fsa->mount_id(), 2));
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
  // The 30 s sync daemon eventually pushes the data to the server.
  w.simulator.RunUntil(sim::Sec(65));
  EXPECT_EQ(w.client(0).peer().client_ops().Get(kWriteOp), 6u);
  EXPECT_GE(w.server->disk().writes(), 6u);
}

TEST(SnfsTest, ReopenReadsOwnCacheWithoutServerReads) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(4 * cache::kBlockSize);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    // Write-close-reopen-read: the cache stays valid (version rules), so no
    // read RPCs — the defect SNFS fixes relative to the buggy Ultrix NFS.
    auto got = co_await w.client(0).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok() && *got == payload);
    EXPECT_EQ(w.client(0).peer().client_ops().Get(kReadOp), 0u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, SequentialSharingTriggersWritebackCallback) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(5 * cache::kBlockSize);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    EXPECT_EQ(w.client(0).peer().client_ops().Get(kWriteOp), 0u);  // still dirty at A

    // B opens: the server must call back A to retrieve the dirty blocks
    // before B's open completes, so B reads current data.
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, payload);
    }
    EXPECT_GE(w.fsa->callbacks_served(), 1u);
    EXPECT_EQ(w.client(0).peer().client_ops().Get(kWriteOp), 5u);  // flushed by callback
    EXPECT_GE(w.server->snfs_server()->callbacks_issued(), 1u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, VersionMismatchInvalidatesStaleCache) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", TestBytes("one"))).ok());
    // A reads it back (A's cache holds version v).
    auto got_a = co_await w.client(0).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got_a.ok() && TestStr(*got_a) == "one");
    // B rewrites the file (version bumps).
    EXPECT_TRUE((co_await w.client(1).vfs().WriteFile("/data/f", TestBytes("two"))).ok());
    // A reopens: version mismatch invalidates its cache; it must see "two".
    auto got = co_await w.client(0).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "two");
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, WriteSharingDisablesCachingAndStaysConsistent) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    vfs::Vfs& b = w.client(1).vfs();
    EXPECT_TRUE((co_await a.WriteFile("/data/f", TestBytes("0000"))).ok());

    auto afd = co_await a.Open("/data/f", vfs::OpenFlags::ReadWrite());
    auto bfd = co_await b.Open("/data/f", vfs::OpenFlags::ReadOnly());
    EXPECT_TRUE(afd.ok() && bfd.ok());
    if (!afd.ok() || !bfd.ok()) {
      co_return;
    }
    // The file is now write-shared: every write goes through, every read
    // goes to the server; B observes each of A's writes immediately.
    for (int i = 1; i <= 4; ++i) {
      std::string v = "v" + std::to_string(i) + "!!";
      EXPECT_TRUE((co_await a.Pwrite(*afd, 0, TestBytes(v))).ok());
      auto got = co_await b.Pread(*bfd, 0, 4);
      EXPECT_TRUE(got.ok());
      if (got.ok()) {
        EXPECT_EQ(TestStr(*got), v);  // no staleness, unlike NFS
      }
    }
    const StateTable::Entry* entry = w.table().Lookup(
        proto::FileHandle{w.server->fs().fsid(), 2, 0});
    EXPECT_NE(entry, nullptr);
    if (entry != nullptr) {
      EXPECT_EQ(entry->state, FileState::kWriteShared);
    }
    EXPECT_TRUE((co_await a.Close(*afd)).ok());
    EXPECT_TRUE((co_await b.Close(*bfd)).ok());
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, DeleteCancelsDelayedWritesEntirely) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/tmp", TestPattern(10 * cache::kBlockSize))).ok());
    uint64_t disk_writes_before_delete = w.server->disk().writes();
    EXPECT_TRUE((co_await v.Unlink("/data/tmp")).ok());
    EXPECT_EQ(w.client(0).peer().client_ops().Get(kWriteOp), 0u);
    EXPECT_GE(w.client(0).buffer_cache().stats().cancelled_writes, 10u);
    done = true;
    (void)disk_writes_before_delete;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
  // Even after the sync interval: nothing to write.
  w.simulator.RunUntil(sim::Sec(65));
  EXPECT_EQ(w.client(0).peer().client_ops().Get(kWriteOp), 0u);
}

TEST(SnfsTest, OpenRepliesCarryAttributesNoGetattrNeeded) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/f", TestBytes("hello"))).ok());
    uint64_t getattrs = w.client(0).peer().client_ops().Get(proto::OpKind::kGetAttr);
    auto fd = co_await v.Open("/data/f", vfs::OpenFlags::ReadOnly());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    auto st = co_await v.Fstat(*fd);
    EXPECT_TRUE(st.ok());
    if (st.ok()) {
      EXPECT_EQ(st->size, 5u);
    }
    EXPECT_TRUE((co_await v.Close(*fd)).ok());
    // Cachable files never need getattr traffic (§4.2.1).
    EXPECT_EQ(w.client(0).peer().client_ops().Get(proto::OpKind::kGetAttr), getattrs);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, ThreeClientReadSharingAllCache) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(2 * cache::kBlockSize);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    for (int c = 0; c < 3; ++c) {
      auto got = co_await w.client(c).vfs().ReadFile("/data/f");
      EXPECT_TRUE(got.ok() && *got == payload);
    }
    // Everyone may cache; second reads are free.
    uint64_t reads_before[3];
    for (int c = 0; c < 3; ++c) {
      reads_before[c] = w.client(c).peer().client_ops().Get(kReadOp);
    }
    for (int c = 0; c < 3; ++c) {
      auto got = co_await w.client(c).vfs().ReadFile("/data/f");
      EXPECT_TRUE(got.ok() && *got == payload);
      EXPECT_EQ(w.client(c).peer().client_ops().Get(kReadOp), reads_before[c]);
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, DeadClientCallbackMarksFileInconsistent) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await w.client(0).vfs().WriteFile("/data/f", TestPattern(cache::kBlockSize))).ok());
    // A holds dirty blocks and dies.
    w.client(0).Crash(w.network);
    // B opens the file: the write-back callback to A cannot complete; the
    // open is honored but flagged.
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());  // open honored, stale (empty) data served
    EXPECT_GE(w.server->snfs_server()->callbacks_failed(), 1u);
    EXPECT_GE(w.fsb->inconsistent_opens(), 1u);
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(300));
  EXPECT_TRUE(done);
}

TEST(SnfsTest, StateTablePressureReclaimsClosedDirtyEntries) {
  ServerMachineParams sp;
  sp.snfs.max_state_entries = 8;
  SnfsWorld w({}, /*num_clients=*/1, sp);
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    // Create many dirty-closed files to blow past the entry limit.
    for (int i = 0; i < 24; ++i) {
      EXPECT_TRUE((co_await v.WriteFile("/data/f" + std::to_string(i),
                                        TestPattern(cache::kBlockSize, static_cast<uint8_t>(i))))
                      .ok());
    }
    co_await sim::Sleep(w.simulator, sim::Sec(5));
    // Reclaim callbacks forced some write-backs despite no sync daemon
    // expiry and no sharing.
    EXPECT_GE(w.server->snfs_server()->reclaims(), 1u);
    EXPECT_GT(w.client(0).peer().client_ops().Get(kWriteOp), 0u);
    EXPECT_LE(w.table().size(), 24u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, DelayedCloseElidesOpenCloseTraffic) {
  SnfsClientParams params;
  params.delayed_close = true;
  SnfsWorld w(params);
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/hdr", TestBytes("#include <paper>"))).ok());
    uint64_t opens_before = w.client(0).peer().client_ops().Get(proto::OpKind::kOpen);
    // The popular-header pattern: reopen the same file many times.
    for (int i = 0; i < 20; ++i) {
      auto got = co_await v.ReadFile("/data/hdr");
      EXPECT_TRUE(got.ok());
    }
    uint64_t opens_after = w.client(0).peer().client_ops().Get(proto::OpKind::kOpen);
    EXPECT_LE(opens_after - opens_before, 1u);
    EXPECT_GE(w.fsa->delayed_close_hits(), 19u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, DelayedCloseStillYieldsToNewWriter) {
  SnfsClientParams params;
  params.delayed_close = true;
  SnfsWorld w(params);
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    vfs::Vfs& b = w.client(1).vfs();
    EXPECT_TRUE((co_await a.WriteFile("/data/f", TestBytes("from-a"))).ok());
    (void)co_await a.ReadFile("/data/f");  // A holds a delayed-close open
    // B rewrites the file. The server sees apparent sharing with A and
    // calls back; A must settle its owed closes and stop caching.
    EXPECT_TRUE((co_await b.WriteFile("/data/f", TestBytes("from-b"))).ok());
    co_await sim::Sleep(w.simulator, sim::Sec(2));
    // A reopens and must see B's data.
    auto got = co_await a.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "from-b");
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, FsyncForcesWriteThrough) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    auto fd = co_await v.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await v.Write(*fd, TestPattern(3 * cache::kBlockSize))).ok());
    EXPECT_EQ(w.client(0).peer().client_ops().Get(kWriteOp), 0u);
    EXPECT_TRUE((co_await v.Fsync(*fd)).ok());
    EXPECT_EQ(w.client(0).peer().client_ops().Get(kWriteOp), 3u);
    EXPECT_TRUE((co_await v.Close(*fd)).ok());
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(SnfsTest, ServerTracksStatesThroughWorkloadLifecycle) {
  SnfsWorld w;
  bool done = false;
  w.simulator.Spawn([](SnfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    proto::FileHandle fh{w.server->fs().fsid(), 2, 0};

    auto fd = co_await a.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    const StateTable::Entry* e = w.table().Lookup(fh);
    EXPECT_NE(e, nullptr);
    if (e == nullptr) {
      co_return;
    }
    EXPECT_EQ(e->state, FileState::kOneWriter);

    EXPECT_TRUE((co_await a.Write(*fd, TestPattern(cache::kBlockSize))).ok());
    EXPECT_TRUE((co_await a.Close(*fd)).ok());
    e = w.table().Lookup(fh);
    EXPECT_NE(e, nullptr);
    if (e == nullptr) {
      co_return;
    }
    EXPECT_EQ(e->state, FileState::kClosedDirty);

    auto rfd = co_await a.Open("/data/f", vfs::OpenFlags::ReadOnly());
    EXPECT_TRUE(rfd.ok());
    if (!rfd.ok()) {
      co_return;
    }
    e = w.table().Lookup(fh);
    EXPECT_NE(e, nullptr);
    if (e == nullptr) {
      co_return;
    }
    EXPECT_EQ(e->state, FileState::kOneRdrDirty);
    EXPECT_TRUE((co_await a.Close(*rfd)).ok());
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace snfs
