// Tests for the protocol vocabulary: operation classification, wire sizes,
// handles, and the metrics that aggregate them.
#include <gtest/gtest.h>

#include "src/metrics/op_counters.h"
#include "src/metrics/table.h"
#include "src/metrics/time_series.h"
#include "src/proto/messages.h"

namespace proto {
namespace {

TEST(ProtoTest, KindOfClassifiesEveryRequest) {
  EXPECT_EQ(KindOf(Request(NullReq{})), OpKind::kNull);
  EXPECT_EQ(KindOf(Request(GetAttrReq{})), OpKind::kGetAttr);
  EXPECT_EQ(KindOf(Request(SetAttrReq{})), OpKind::kSetAttr);
  EXPECT_EQ(KindOf(Request(LookupReq{})), OpKind::kLookup);
  EXPECT_EQ(KindOf(Request(ReadReq{})), OpKind::kRead);
  EXPECT_EQ(KindOf(Request(WriteReq{})), OpKind::kWrite);
  EXPECT_EQ(KindOf(Request(CreateReq{})), OpKind::kCreate);
  EXPECT_EQ(KindOf(Request(RemoveReq{})), OpKind::kRemove);
  EXPECT_EQ(KindOf(Request(RenameReq{})), OpKind::kRename);
  EXPECT_EQ(KindOf(Request(MkdirReq{})), OpKind::kMkdir);
  EXPECT_EQ(KindOf(Request(RmdirReq{})), OpKind::kRmdir);
  EXPECT_EQ(KindOf(Request(ReadDirReq{})), OpKind::kReadDir);
  EXPECT_EQ(KindOf(Request(OpenReq{})), OpKind::kOpen);
  EXPECT_EQ(KindOf(Request(CloseReq{})), OpKind::kClose);
  EXPECT_EQ(KindOf(Request(CallbackReq{})), OpKind::kCallback);
  EXPECT_EQ(KindOf(Request(PingReq{})), OpKind::kPing);
  EXPECT_EQ(KindOf(Request(ReopenReq{})), OpKind::kReopen);
}

TEST(ProtoTest, OpKindNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumOpKinds; ++i) {
    names.insert(OpKindName(static_cast<OpKind>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumOpKinds));
}

TEST(ProtoTest, WireSizeIncludesHeadersAndScalesWithNames) {
  LookupReq short_name;
  short_name.name = "a";
  LookupReq long_name;
  long_name.name = std::string(200, 'x');
  EXPECT_EQ(WireSize(Request(long_name)), WireSize(Request(short_name)) + 199);
  EXPECT_GT(WireSize(Request(short_name)), 100u);  // RPC/UDP/IP headers
}

TEST(ProtoTest, ReadReplyWireSizeScalesWithData) {
  ReadRep small;
  small.data.resize(10);
  ReadRep big;
  big.data.resize(4096);
  EXPECT_EQ(WireSize(Reply{base::OkStatus(), ReplyBody(big)}),
            WireSize(Reply{base::OkStatus(), ReplyBody(small)}) + 4086);
}

TEST(ProtoTest, FileHandleEqualityAndHashing) {
  FileHandle a{1, 42, 0};
  FileHandle b{1, 42, 0};
  FileHandle c{1, 42, 1};  // different generation
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  FileHandleHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
}

TEST(OpCountersTest, TotalsAndDiffs) {
  metrics::OpCounters counters;
  counters.Add(OpKind::kRead, 10);
  counters.Add(OpKind::kWrite, 5);
  counters.Add(OpKind::kLookup, 20);
  EXPECT_EQ(counters.Total(), 35u);
  EXPECT_EQ(counters.DataTransfer(), 15u);
  EXPECT_EQ(counters.Others(), 20u);

  metrics::OpCounters later = counters;
  later.Add(OpKind::kRead, 3);
  metrics::OpCounters delta = later.Diff(counters);
  EXPECT_EQ(delta.Get(OpKind::kRead), 3u);
  EXPECT_EQ(delta.Total(), 3u);
}

TEST(TimeSeriesTest, CorrelationDetectsLinearRelation) {
  metrics::TimeSeries a;
  metrics::TimeSeries b;
  metrics::TimeSeries anti;
  for (int i = 0; i < 20; ++i) {
    a.Push(i, i * 2.0);
    b.Push(i, i * 5.0 + 1);
    anti.Push(i, -i * 1.0);
  }
  EXPECT_NEAR(metrics::TimeSeries::Correlation(a, b), 1.0, 1e-9);
  EXPECT_NEAR(metrics::TimeSeries::Correlation(a, anti), -1.0, 1e-9);
}

TEST(TimeSeriesTest, StatsOnEmptyAndConstantSeries) {
  metrics::TimeSeries empty;
  EXPECT_EQ(empty.Mean(), 0.0);
  EXPECT_EQ(empty.Max(), 0.0);
  metrics::TimeSeries flat;
  flat.Push(0, 3.0);
  flat.Push(1, 3.0);
  EXPECT_EQ(metrics::TimeSeries::Correlation(flat, flat), 0.0);  // zero variance
  EXPECT_EQ(flat.Mean(), 3.0);
}

TEST(TableTest, FormatsAlignedColumns) {
  metrics::Table table({"A", "Bee"});
  table.AddRow({"1", "2"});
  table.AddRow({"lengthy", "x"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| A       | Bee |"), std::string::npos);
  EXPECT_NE(out.find("| lengthy | x   |"), std::string::npos);
  EXPECT_EQ(metrics::Table::Pct(0.1234), "12.3%");
  EXPECT_EQ(metrics::Table::Int(42), "42");
}

}  // namespace
}  // namespace proto
