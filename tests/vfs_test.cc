// VFS-layer tests: mount resolution (longest prefix, nested mounts), fd
// table semantics, path handling edge cases, and error propagation.
#include <gtest/gtest.h>

#include "src/cache/buffer_cache.h"
#include "src/disk/disk.h"
#include "src/fs/local_fs.h"
#include "src/fs/local_mount.h"
#include "src/sim/simulator.h"
#include "src/vfs/vfs.h"

namespace vfs {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }
std::string Str(const std::vector<uint8_t>& v) { return {v.begin(), v.end()}; }

struct Rig {
  sim::Simulator simulator;
  disk::Disk disk{simulator};
  fs::LocalFs fs_a{simulator, disk, fs::LocalFsParams{.fsid = 1, .cache_blocks = 0}};
  fs::LocalFs fs_b{simulator, disk, fs::LocalFsParams{.fsid = 2, .cache_blocks = 0}};
  cache::BufferCache cache{simulator,
                           cache::BufferCacheParams{.enable_sync_daemon = false}};
  fs::LocalMount mount_a{simulator, fs_a, cache, nullptr};
  fs::LocalMount mount_b{simulator, fs_b, cache, nullptr};
  Vfs vfs{simulator};
};

#define RUN(rig, body)                                                               \
  do {                                                                               \
    bool completed = false;                                                          \
    (rig).simulator.Spawn([](Rig& rig, bool& completed) -> sim::Task<void> body(     \
        (rig), completed));                                                          \
    (rig).simulator.Run();                                                           \
    EXPECT_TRUE(completed);                                                          \
  } while (0)

TEST(VfsTest, LongestPrefixMountWins) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  rig.vfs.Mount("/data", &rig.mount_b);
  RUN(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/data/f", Bytes("in-b"))).ok());
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Bytes("in-a"))).ok());
    // The files landed in different file systems.
    EXPECT_EQ(rig.fs_b.inode_count(), 2u);  // root + f
    EXPECT_EQ(rig.fs_a.inode_count(), 2u);
    completed = true;
  });
}

TEST(VfsTest, PathsNormalizeRepeatedSlashes) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  RUN(rig, {
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/a")).ok());
    EXPECT_TRUE((co_await rig.vfs.WriteFile("//a///f", Bytes("x"))).ok());
    auto got = co_await rig.vfs.ReadFile("/a/f");
    EXPECT_TRUE(got.ok());
    completed = true;
  });
}

TEST(VfsTest, UnmountedPathFails) {
  Rig rig;
  rig.vfs.Mount("/data", &rig.mount_a);
  RUN(rig, {
    auto r = co_await rig.vfs.Open("/elsewhere/f", OpenFlags::ReadOnly());
    EXPECT_FALSE(r.ok());
    completed = true;
  });
}

TEST(VfsTest, BadFdOperationsFail) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  RUN(rig, {
    EXPECT_EQ((co_await rig.vfs.Read(99, 10)).status(), base::ErrBadFd());
    EXPECT_EQ((co_await rig.vfs.Close(99)).status(), base::ErrBadFd());
    EXPECT_EQ((co_await rig.vfs.Fsync(99)).status(), base::ErrBadFd());
    completed = true;
  });
}

TEST(VfsTest, WriteOnReadOnlyFdFails) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  RUN(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Bytes("data"))).ok());
    auto fd = co_await rig.vfs.Open("/f", OpenFlags::ReadOnly());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_EQ((co_await rig.vfs.Write(*fd, Bytes("nope"))).status(), base::ErrAccess());
    EXPECT_TRUE((co_await rig.vfs.Close(*fd)).ok());
    completed = true;
  });
}

TEST(VfsTest, ExclusiveCreateFailsOnExisting) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  RUN(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Bytes("v1"))).ok());
    OpenFlags excl;
    excl.write = true;
    excl.create = true;
    excl.exclusive = true;
    EXPECT_EQ((co_await rig.vfs.Open("/f", excl)).status(), base::ErrExist());
    completed = true;
  });
}

TEST(VfsTest, OpeningDirectoryForWriteFails) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  RUN(rig, {
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/d")).ok());
    EXPECT_EQ((co_await rig.vfs.Open("/d", OpenFlags::ReadWrite())).status(),
              base::ErrIsDir());
    completed = true;
  });
}

TEST(VfsTest, SeekRepositionsSequentialReads) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  RUN(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Bytes("abcdefgh"))).ok());
    auto fd = co_await rig.vfs.Open("/f", OpenFlags::ReadOnly());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE(rig.vfs.Seek(*fd, 4).ok());
    auto got = co_await rig.vfs.Read(*fd, 4);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(Str(*got), "efgh");
    }
    EXPECT_TRUE((co_await rig.vfs.Close(*fd)).ok());
    completed = true;
  });
}

TEST(VfsTest, RenameAcrossMountsRejected) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  rig.vfs.Mount("/data", &rig.mount_b);
  RUN(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Bytes("x"))).ok());
    EXPECT_EQ((co_await rig.vfs.Rename("/f", "/data/f")).status(), base::ErrXDev());
    completed = true;
  });
}

TEST(VfsTest, FdCountTracksOpenCloses) {
  Rig rig;
  rig.vfs.Mount("/", &rig.mount_a);
  RUN(rig, {
    EXPECT_EQ(rig.vfs.open_fd_count(), 0);
    auto fd1 = co_await rig.vfs.Open("/a", OpenFlags::WriteCreate());
    auto fd2 = co_await rig.vfs.Open("/b", OpenFlags::WriteCreate());
    EXPECT_TRUE(fd1.ok() && fd2.ok());
    EXPECT_EQ(rig.vfs.open_fd_count(), 2);
    if (fd1.ok()) {
      (void)co_await rig.vfs.Close(*fd1);
    }
    if (fd2.ok()) {
      (void)co_await rig.vfs.Close(*fd2);
    }
    EXPECT_EQ(rig.vfs.open_fd_count(), 0);
    completed = true;
  });
}

}  // namespace
}  // namespace vfs
