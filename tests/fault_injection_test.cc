// The deterministic fault-injection harness: FaultPlan semantics (loss,
// duplication, reordering, partitions, per-seed determinism), FaultSchedule
// interpretation against testbed machines (crash/reboot, crash
// mid-RPC-handler), and the seed-sweep driver's protocol invariants under
// NFS and SNFS.
#include <gtest/gtest.h>

#include <vector>

#include "src/fault/plan.h"
#include "src/fault/schedule.h"
#include "src/fault/sweep.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/testbed/fault_runner.h"
#include "src/vfs/vfs.h"
#include "tests/testbed_util.h"

namespace fault {
namespace {

using testbed::ServerProtocol;
using testbed::TestBytes;
using testbed::World;

// --- FaultInjector unit behaviour -------------------------------------------

TEST(FaultPlanTest, SameSeedReplaysTheSameDecisionSequence) {
  FaultPlan plan;
  plan.loss = 0.2;
  plan.duplicate = 0.2;
  plan.reorder_jitter = sim::Msec(5);
  plan.seed = 77;

  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 1000; ++i) {
    FaultDecision da = a.OnSend(0, 1, sim::Msec(i));
    FaultDecision db = b.OnSend(0, 1, sim::Msec(i));
    ASSERT_EQ(da.drop, db.drop);
    ASSERT_EQ(da.duplicate, db.duplicate);
    ASSERT_EQ(da.extra_delay, db.extra_delay);
    ASSERT_EQ(da.dup_extra_delay, db.dup_extra_delay);
  }
  EXPECT_GT(a.drops(), 0u);
  EXPECT_GT(a.duplicates(), 0u);
  EXPECT_GT(a.delayed(), 0u);
  EXPECT_EQ(a.drops(), b.drops());
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  FaultPlan plan;
  plan.loss = 0.5;
  plan.seed = 1;
  FaultInjector a(plan);
  plan.seed = 2;
  FaultInjector b(plan);
  int differ = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.OnSend(0, 1, 0).drop != b.OnSend(0, 1, 0).drop) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultPlanTest, LinkOverridesBeatPlanDefaults) {
  FaultPlan plan;
  plan.loss = 0.0;
  plan.links.push_back(LinkFaults{.src = 3, .dst = 4, .loss = 1.0});
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.OnSend(3, 4, 0).drop);    // matching link: always dropped
  EXPECT_FALSE(inj.OnSend(4, 3, 0).drop);   // reverse direction: defaults
  EXPECT_FALSE(inj.OnSend(0, 1, 0).drop);
}

TEST(FaultPlanTest, PartitionsCutBothDirectionsUntilHeal) {
  FaultPlan plan;
  plan.partitions.push_back(Partition{.host_a = 0, .host_b = 1,
                                      .start = sim::Sec(1), .heal = sim::Sec(3)});
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.OnSend(0, 1, sim::Msec(500)).drop);  // before start
  EXPECT_TRUE(inj.OnSend(0, 1, sim::Sec(2)).drop);      // active, forward
  EXPECT_TRUE(inj.OnSend(1, 0, sim::Sec(2)).drop);      // active, reverse
  EXPECT_FALSE(inj.OnSend(0, 2, sim::Sec(2)).drop);     // other pair untouched
  EXPECT_FALSE(inj.OnSend(0, 1, sim::Sec(3)).drop);     // healed
  EXPECT_EQ(inj.partition_drops(), 2u);
}

// --- Faults wired into the network + RPC layer ------------------------------

struct RpcRig {
  sim::Simulator simulator;
  net::Network network;
  sim::Cpu client_cpu{simulator};
  sim::Cpu server_cpu{simulator};
  rpc::Peer client;
  rpc::Peer server;

  explicit RpcRig(FaultPlan plan)
      : network(simulator, WithPlan(std::move(plan)), /*seed=*/42),
        client(simulator, network, client_cpu, "client"),
        server(simulator, network, server_cpu, "server") {
    client.Start();
    server.Start();
    server.set_handler([](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
      co_return proto::OkReply(proto::NullRep{});
    });
  }

  static net::NetworkParams WithPlan(FaultPlan plan) {
    net::NetworkParams params;
    params.faults = std::make_shared<FaultPlan>(std::move(plan));
    return params;
  }
};

TEST(FaultNetworkTest, DisabledPlanInstallsNoInjector) {
  sim::Simulator simulator;
  net::NetworkParams params;
  params.faults = std::make_shared<FaultPlan>();  // default: nothing enabled
  net::Network network(simulator, params);
  EXPECT_EQ(network.fault_injector(), nullptr);
}

TEST(FaultNetworkTest, DuplicatedRequestsAreSuppressedByTheDupCache) {
  FaultPlan plan;
  plan.duplicate = 1.0;  // every packet delivered twice
  plan.seed = 5;
  RpcRig rig(std::move(plan));
  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    rig.simulator.Spawn([](RpcRig& rig, int& ok) -> sim::Task<void> {
      auto reply = co_await rig.client.Call(rig.server.address(),
                                            proto::Request(proto::NullReq{}));
      if (reply.ok() && reply->status.ok()) {
        ++ok;
      }
    }(rig, ok));
  }
  rig.simulator.Run();
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(rig.network.packets_duplicated(), rig.network.packets_sent());
  // Every duplicated request hit the server's duplicate cache; none of the
  // copies re-executed the handler.
  EXPECT_GE(rig.server.duplicates_suppressed(), 20u);
  EXPECT_EQ(rig.server.server_ops().Get(proto::OpKind::kNull), 20u);
}

TEST(FaultNetworkTest, ReorderJitterDelaysButDelivers) {
  FaultPlan plan;
  plan.reorder_jitter = sim::Msec(20);
  plan.seed = 9;
  RpcRig rig(std::move(plan));
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    rig.simulator.Spawn([](RpcRig& rig, int& ok) -> sim::Task<void> {
      auto reply = co_await rig.client.Call(rig.server.address(),
                                            proto::Request(proto::NullReq{}));
      if (reply.ok() && reply->status.ok()) {
        ++ok;
      }
    }(rig, ok));
  }
  rig.simulator.Run();
  EXPECT_EQ(ok, 10);
  ASSERT_NE(rig.network.fault_injector(), nullptr);
  EXPECT_GT(rig.network.fault_injector()->delayed(), 0u);
}

TEST(FaultNetworkTest, PartitionStallsCallsUntilHeal) {
  // Hosts attach in construction order: client = 0, server = 1.
  FaultPlan plan;
  plan.partitions.push_back(Partition{.host_a = 0, .host_b = 1,
                                      .start = sim::Sec(1), .heal = sim::Sec(3)});
  RpcRig rig(std::move(plan));
  bool done = false;
  rig.simulator.Spawn([](RpcRig& rig, bool& done) -> sim::Task<void> {
    co_await sim::Sleep(rig.simulator, sim::Msec(1500));
    rpc::CallOptions opts;
    opts.timeout = sim::Msec(500);
    opts.max_attempts = 8;
    auto reply = co_await rig.client.Call(rig.server.address(),
                                          proto::Request(proto::NullReq{}), opts);
    EXPECT_TRUE(reply.ok());
    // The call cannot complete while the partition is up.
    EXPECT_GE(rig.simulator.Now(), sim::Sec(3));
    done = true;
  }(rig, done));
  rig.simulator.RunUntil(sim::Sec(30));
  EXPECT_TRUE(done);
  ASSERT_NE(rig.network.fault_injector(), nullptr);
  EXPECT_GT(rig.network.fault_injector()->partition_drops(), 0u);
  EXPECT_GT(rig.client.retransmissions(), 0u);
}

// --- FaultSchedule against testbed machines ---------------------------------

TEST(FaultScheduleTest, ScheduledServerCrashAndRebootAreApplied) {
  World w(ServerProtocol::kNfs, 1);
  w.client(0).MountNfs("/data", w.server->address(), w.server->root());

  FaultSchedule schedule;
  schedule.CrashServerAt(sim::Sec(2)).RebootServerAt(sim::Sec(4));
  testbed::ApplyFaultSchedule(w.simulator, w.network, w.server.get(),
                              {&w.client(0)}, schedule);

  bool done = false;
  w.simulator.Spawn([](World& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/f", TestBytes("before"))).ok());
    co_await sim::Sleep(w.simulator, sim::Sec(2) + sim::Msec(500));
    EXPECT_FALSE(w.server->peer().running());  // schedule crashed it at 2s
    // NFS is stateless: retransmissions bridge the outage once rebooted.
    auto got = co_await v.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    EXPECT_TRUE(w.server->peer().running());
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(60));
  EXPECT_TRUE(done);
}

TEST(FaultScheduleTest, ScheduledClientCrashAndRestartAreApplied) {
  World w(ServerProtocol::kNfs, 1);
  w.client(0).MountNfs("/data", w.server->address(), w.server->root());

  FaultSchedule schedule;
  schedule.CrashClientAt(sim::Sec(2), 0).RestartClientAt(sim::Sec(3), 0);
  testbed::ApplyFaultSchedule(w.simulator, w.network, w.server.get(),
                              {&w.client(0)}, schedule);

  bool done = false;
  w.simulator.Spawn([](World& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/f", TestBytes("durable"))).ok());
    EXPECT_TRUE((co_await v.ReadFile("/data/f")).ok());  // now cached
    co_await sim::Sleep(w.simulator, sim::Sec(2) + sim::Msec(500));
    EXPECT_FALSE(w.client(0).started());
    co_await sim::Sleep(w.simulator, sim::Sec(1));
    EXPECT_TRUE(w.client(0).started());
    // The cache died with the crash; the read refetches from the server.
    uint64_t reads_before = w.client(0).peer().client_ops().Get(proto::OpKind::kRead);
    auto got = co_await v.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    EXPECT_GT(w.client(0).peer().client_ops().Get(proto::OpKind::kRead), reads_before);
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(60));
  EXPECT_TRUE(done);
}

TEST(FaultScheduleTest, CrashMidHandlerKillsTheDispatchedRequest) {
  World w(ServerProtocol::kNfs, 1);
  w.client(0).MountNfs("/data", w.server->address(), w.server->root());

  FaultSchedule schedule;
  schedule.CrashServerInHandlerAt(sim::Sec(2)).RebootServerAt(sim::Sec(5));
  testbed::ApplyFaultSchedule(w.simulator, w.network, w.server.get(),
                              {&w.client(0)}, schedule);

  bool done = false;
  w.simulator.Spawn([](World& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    // Keep RPCs flowing so a handler dispatch lands at/after the trigger.
    for (int i = 0; i < 8; ++i) {
      (void)co_await v.WriteFile("/data/f", TestBytes("v" + std::to_string(i)));
      co_await sim::Sleep(w.simulator, sim::Msec(400));
    }
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(60));
  EXPECT_TRUE(done);
  // The hook fired: the server crashed out from under a dispatched request
  // (generation bumped by the scheduled reboot) and came back.
  EXPECT_GE(w.server->peer().generation(), 1u);
  EXPECT_TRUE(w.server->peer().running());
}

// --- Seed sweeps: protocol invariants under scripted chaos ------------------

SweepOptions ChaosOptions(ServerProtocol protocol) {
  SweepOptions options;
  options.protocol = protocol;
  options.num_clients = 2;
  options.plan.loss = 0.03;
  options.plan.duplicate = 0.03;
  options.plan.reorder_jitter = sim::Msec(2);
  options.schedule.CrashServerAt(sim::Sec(20))
      .RebootServerAt(sim::Sec(28))
      .CrashClientAt(sim::Sec(45), 1)
      .RestartClientAt(sim::Sec(55), 1)
      .CrashServerInHandlerAt(sim::Sec(65))
      .RebootServerAt(sim::Sec(70));
  return options;
}

void ExpectSweepClean(const SweepResult& result, int num_seeds) {
  ASSERT_EQ(static_cast<int>(result.seeds.size()), num_seeds);
  const SeedStats* failure = result.first_failure();
  EXPECT_TRUE(result.all_ok())
      << "seed " << (failure != nullptr ? failure->seed : 0) << ": "
      << (failure != nullptr ? failure->failure : "");
  uint64_t total_retransmissions = 0;
  for (const SeedStats& s : result.seeds) {
    EXPECT_GT(s.ops_ok, 0u) << "seed " << s.seed << " made no progress";
    EXPECT_GT(s.invariant_checks, 0u);
    // The schedule reboots the server; clients must get going again.
    EXPECT_GE(s.recovery_latency, 0) << "seed " << s.seed << " never recovered";
    total_retransmissions += s.retransmissions;
  }
  // The fault mix actually bit: losses forced retransmissions somewhere.
  EXPECT_GT(total_retransmissions, 0u);
}

TEST(FaultSweepTest, NfsSurvivesTwentySeedsOfChaos) {
  SweepResult result = RunFaultSweep(ChaosOptions(ServerProtocol::kNfs), 1, 20);
  ExpectSweepClean(result, 20);
}

TEST(FaultSweepTest, SnfsSurvivesTwentySeedsOfChaos) {
  SweepResult result = RunFaultSweep(ChaosOptions(ServerProtocol::kSnfs), 1, 20);
  ExpectSweepClean(result, 20);
}

TEST(FaultSweepTest, SeedRunsAreReproducible) {
  SweepOptions options = ChaosOptions(ServerProtocol::kSnfs);
  SeedStats a = RunFaultSeed(options, 7);
  SeedStats b = RunFaultSeed(options, 7);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ops_attempted, b.ops_attempted);
  EXPECT_EQ(a.ops_ok, b.ops_ok);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.packets_duplicated, b.packets_duplicated);
  EXPECT_EQ(a.recovery_latency, b.recovery_latency);
}

// Pinned golden for the event-queue rewrite: this cell was captured under
// the pre-rewrite simulator (std::function events in one binary heap) and
// every count below reproduced exactly after the three-lane queue replaced
// it. The counters are downstream of event order — retransmissions depend
// on timeout-vs-reply races, duplication counts on RNG draw order, the
// trace event count on every scheduling decision in the run — so a failure
// here means the determinism contract (time order, FIFO at equal time)
// moved, not just a statistic.
TEST(FaultSweepTest, SeedSevenChaosCellMatchesPinnedGolden) {
  SweepOptions options = ChaosOptions(ServerProtocol::kSnfs);
  options.trace_check = true;
  SeedStats s = RunFaultSeed(options, 7);
  EXPECT_TRUE(s.ok) << s.failure;
  EXPECT_EQ(s.ops_attempted, 221u);
  EXPECT_EQ(s.ops_ok, 218u);
  EXPECT_EQ(s.reads_verified, 109u);
  EXPECT_EQ(s.trace_events, 10165u);
  EXPECT_EQ(s.trace_violations, 0u);
  EXPECT_EQ(s.retransmissions, 71u);
  EXPECT_EQ(s.duplicates_suppressed, 53u);
  EXPECT_EQ(s.stale_replies_dropped, 0u);
  EXPECT_EQ(s.packets_dropped, 78u);
  EXPECT_EQ(s.packets_duplicated, 47u);
  EXPECT_EQ(s.recovery_latency, 8042839);
}

}  // namespace
}  // namespace fault
